// Command flexwattsd serves the paper's evaluations over HTTP/JSON as a
// long-lived service: all requests share one evaluation environment and its
// sharded memoizing cache, so concurrent clients hit warm cells instead of
// recomputing the grids.
//
// Usage:
//
//	flexwattsd                        # listen on :8080
//	flexwattsd -addr 127.0.0.1:9090   # explicit listen address
//	flexwattsd -parallel 4            # bound each request's sweep pool
//
// Endpoints:
//
//	GET  /healthz                     liveness + cache statistics
//	GET  /readyz                      readiness (503 until warm-start completes)
//	GET  /metrics                     Prometheus text exposition
//	GET  /debug/pprof/                profiling surface
//	GET  /v1/experiments              experiment ids
//	GET  /v1/experiments/{id}         one experiment; ?format=ascii|json|csv
//	POST /v1/evaluate                 batch of evaluation points
//	POST /v1/evaluate/stream          same batch, streamed back as NDJSON
//	POST /v1/optimize                 design-space Pareto search
//	POST /v1/optimize/stream          same search, progress + frontier events as NDJSON
//	GET/DELETE /v1/admin/cache        cache tier statistics / flush
//
// Admission control is tuned with -rate/-burst (per-client token bucket,
// shed with 429) and -max-inflight-points (server-wide budget, shed with
// 503); optimizer searches pin worker capacity for much longer than a
// sweep, so they draw on their own -max-inflight-optimize slot count
// instead. All shed paths set Retry-After. -access-log turns on one JSON
// line per request on stderr.
//
// -cache-dir enables the crash-safe persistent cache tier: evaluations are
// written behind to an append-only checksummed log and replayed into the
// in-memory cache at the next boot. Disk faults degrade the tier (requests
// keep computing), never a request; /readyz reports degraded:true.
//
// The -read-timeout/-write-timeout/-idle-timeout flags harden the listener
// against slow or stalled clients; /v1/evaluate/stream is exempt from the
// write timeout, managing its own rolling -stream-write-timeout per chunk.
//
// The server shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// get -grace (default 10s) to complete before the listener closes hard.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cachestore"
	"repro/internal/experiments"
	"repro/internal/server"
)

// run is the testable entry point: it builds the environment, listens on
// -addr (printing the resolved address, so tests and scripts can use port
// 0), and serves until ctx is canceled or a signal arrives.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flexwattsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	parallel := fs.Int("parallel", 0,
		"per-request sweep worker bound (0 = GOMAXPROCS, matching the engine default)")
	maxBatch := fs.Int("max-batch", server.DefaultMaxBatch,
		"maximum points accepted by one /v1/evaluate request")
	grace := fs.Duration("grace", 10*time.Second,
		"graceful shutdown window for in-flight requests")
	maxInflight := fs.Int("max-inflight-points", 0,
		"server-wide inflight-points budget; excess batches shed with 503 (0 = 16×max-batch)")
	maxInflightOptimize := fs.Int("max-inflight-optimize", 0,
		fmt.Sprintf("concurrent /v1/optimize searches; excess shed with 503 (0 = %d)",
			server.DefaultMaxInflightOptimize))
	rate := fs.Float64("rate", 0,
		"per-client request rate limit in requests/second; excess shed with 429 (0 = unlimited)")
	burst := fs.Float64("burst", 0,
		"per-client burst allowance for -rate (0 = max(1, rate))")
	maxBody := fs.Int64("max-body", server.DefaultMaxBodyBytes,
		"maximum request body size in bytes")
	streamWindow := fs.Int("stream-window", 0,
		"reorder window for /v1/evaluate/stream (0 = 4×workers)")
	retryAfter := fs.Duration("retry-after", server.DefaultRetryAfter,
		"Retry-After hint sent with 503 shed responses")
	accessLog := fs.Bool("access-log", false,
		"log one JSON line per request to stderr")
	cacheDir := fs.String("cache-dir", "",
		"directory for the crash-safe persistent cache tier (empty = memory only)")
	cacheQueue := fs.Int("cache-queue", 0,
		"write-behind queue length for the persistent tier (0 = default 4096)")
	readTimeout := fs.Duration("read-timeout", 30*time.Second,
		"maximum duration for reading an entire request, body included (0 = unlimited)")
	writeTimeout := fs.Duration("write-timeout", 60*time.Second,
		"maximum duration for writing a response; /v1/evaluate/stream is exempt (0 = unlimited)")
	idleTimeout := fs.Duration("idle-timeout", 120*time.Second,
		"how long a keep-alive connection may sit idle (0 = read-timeout)")
	streamWriteTimeout := fs.Duration("stream-write-timeout", server.DefaultStreamWriteTimeout,
		"rolling per-chunk write deadline on /v1/evaluate/stream")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	env, err := experiments.NewEnv()
	if err != nil {
		fmt.Fprintln(stderr, "flexwattsd:", err)
		return 1
	}
	opts := server.Options{
		Workers:             *parallel,
		MaxBatch:            *maxBatch,
		MaxBodyBytes:        *maxBody,
		MaxInflightPoints:   *maxInflight,
		MaxInflightOptimize: *maxInflightOptimize,
		RatePerClient:       *rate,
		BurstPerClient:      *burst,
		RetryAfter:          *retryAfter,
		StreamWindow:        *streamWindow,
		StreamWriteTimeout:  *streamWriteTimeout,
		ErrorLog:            log.New(stderr, "", log.LstdFlags),
	}
	if *accessLog {
		opts.AccessLog = log.New(stderr, "", 0)
	}
	if *cacheDir != "" {
		store, err := cachestore.Open(*cacheDir, cachestore.Options{
			Version:  env.CacheVersion(),
			QueueLen: *cacheQueue,
			Logf:     opts.ErrorLog.Printf,
		})
		if err != nil {
			// The only unrecoverable path: the directory cannot be created,
			// which is operator misconfiguration, not a runtime disk fault.
			fmt.Fprintln(stderr, "flexwattsd:", err)
			return 1
		}
		opts.Store = store
		defer store.Close()
	}
	srv := server.New(env, opts)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "flexwattsd:", err)
		return 1
	}
	fmt.Fprintf(stdout, "flexwattsd listening on %s\n", ln.Addr())

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		// ReadTimeout bounds slow-body uploads; WriteTimeout bounds stalled
		// response writes — the streaming route overrides it with its own
		// rolling per-chunk deadline, so long sweeps stream to completion
		// while a dead reader still gets disconnected.
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
		ErrorLog:     log.New(stderr, "", log.LstdFlags),
	}

	ctx, stop := signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(stderr, "flexwattsd:", err)
			return 1
		}
		return 0
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "flexwattsd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(stderr, "flexwattsd: shutdown:", err)
		httpSrv.Close()
		return 1
	}
	return 0
}

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}
