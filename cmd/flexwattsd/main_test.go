package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncWriter makes a strings.Builder safe to share between the server
// goroutine and the test.
type syncWriter struct {
	mu sync.Mutex
	b  strings.Builder
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

func TestHelpExitsZero(t *testing.T) {
	var out, errOut syncWriter
	if code := run(context.Background(), []string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h returned %d, want 0", code)
	}
	if !strings.Contains(errOut.String(), "-addr") {
		t.Errorf("help text %q does not describe -addr", errOut.String())
	}
}

func TestBadAddrFails(t *testing.T) {
	var out, errOut syncWriter
	if code := run(context.Background(), []string{"-addr", "no-such-host:bad"}, &out, &errOut); code != 1 {
		t.Errorf("bad addr returned %d, want 1", code)
	}
}

// TestServeAndGracefulShutdown boots the daemon on a free port, exercises
// the API end to end over real TCP, then cancels the context and expects a
// clean exit — the full service lifecycle in one test.
func TestServeAndGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out, errOut syncWriter
	done := make(chan int, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0"}, &out, &errOut)
	}()

	// The daemon prints the resolved address once it is listening.
	var base string
	deadline := time.Now().Add(30 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("server never reported its address; stderr: %s", errOut.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(line, "flexwattsd listening on ") {
				base = "http://" + strings.TrimPrefix(line, "flexwattsd listening on ")
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz status %d: %s", resp.StatusCode, body)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &health); err != nil || health.Status != "ok" {
		t.Fatalf("healthz body %q (err %v)", body, err)
	}

	resp, err = http.Get(base + "/v1/experiments/tab1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "Table 1") {
		t.Fatalf("experiment status %d body %q", resp.StatusCode, body)
	}

	cancel()
	select {
	case code := <-done:
		if code != 0 {
			t.Errorf("shutdown exit code %d; stderr: %s", code, errOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("no shutdown message in %q", out.String())
	}
}
