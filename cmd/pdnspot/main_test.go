package main

import (
	"strings"
	"testing"
)

func TestEvaluateDefaultPoint(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 0 {
		t.Fatalf("default run returned %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	for _, want := range []string{"IVR @ 4W TDP", "ETEE", "PNom / PIn", "losses:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestEvaluateCState(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-pdn", "LDO", "-cstate", "C8"}, &out, &errOut); code != 0 {
		t.Fatalf("cstate run returned %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "LDO in C8: ETEE") {
		t.Errorf("cstate output: %q", out.String())
	}
}

func TestValidateFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-pdn", "MBVR", "-tdp", "18", "-validate"}, &out, &errOut); code != 0 {
		t.Fatalf("-validate returned %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "validation: predicted") {
		t.Errorf("-validate output missing validation line: %q", out.String())
	}
}

func TestBadInputsExitNonZero(t *testing.T) {
	cases := map[string][]string{
		"unknown pdn":      {"-pdn", "XVR"},
		"flexwatts kind":   {"-pdn", "FlexWatts"},
		"unknown workload": {"-workload", "zz"},
		"bad ar":           {"-ar", "7"},
		"bad tdp":          {"-tdp", "900"},
		"unknown cstate":   {"-cstate", "C99"},
		"active cstate":    {"-cstate", "C0"},
	}
	for name, args := range cases {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code == 0 {
			t.Errorf("%s: exit code 0, want non-zero", name)
		}
		if errOut.Len() == 0 {
			t.Errorf("%s: no error message on stderr", name)
		}
	}
}

func TestBadFlagSyntaxExitsTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-tdp", "abc"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag value returned %d, want 2", code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h returned %d, want 0", code)
	}
	if !strings.Contains(errOut.String(), "-pdn") {
		t.Errorf("help text %q does not describe -pdn", errOut.String())
	}
}
