// Command pdnspot evaluates a PDN architecture at one operating point and
// prints the end-to-end efficiency, power flow, and loss breakdown.
//
// Usage:
//
//	pdnspot -pdn IVR -tdp 4 -workload mt -ar 0.6
//	pdnspot -pdn LDO -cstate C8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/domain"
	"repro/internal/units"
	"repro/pdnspot"
)

func parseKind(s string) (pdnspot.Kind, error) {
	switch strings.ToUpper(s) {
	case "IVR":
		return pdnspot.IVR, nil
	case "MBVR":
		return pdnspot.MBVR, nil
	case "LDO":
		return pdnspot.LDO, nil
	case "I+MBVR", "IMBVR":
		return pdnspot.IMBVR, nil
	default:
		return 0, fmt.Errorf("unknown PDN %q (IVR, MBVR, LDO, I+MBVR)", s)
	}
}

func parseCState(s string) (domain.CState, error) {
	for _, c := range domain.CStates() {
		if strings.EqualFold(c.String(), s) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown C-state %q", s)
}

func main() {
	kindF := flag.String("pdn", "IVR", "PDN architecture: IVR, MBVR, LDO, I+MBVR")
	tdp := flag.Float64("tdp", 4, "thermal design power (W)")
	wl := flag.String("workload", "mt", "workload class: st, mt, gfx")
	ar := flag.Float64("ar", 0.6, "application ratio (0,1]")
	cstate := flag.String("cstate", "", "evaluate a package C-state instead (C0MIN, C2..C8)")
	validate := flag.Bool("validate", false, "also run the time-stepped reference and report accuracy")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "pdnspot:", err)
		os.Exit(1)
	}

	kind, err := parseKind(*kindF)
	if err != nil {
		fail(err)
	}
	ps, err := pdnspot.New()
	if err != nil {
		fail(err)
	}

	if *cstate != "" {
		c, err := parseCState(*cstate)
		if err != nil {
			fail(err)
		}
		r, err := ps.EvaluateCState(kind, c)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s in %s: ETEE %s, PNom %s, PIn %s\n",
			kind, c, units.Percent(r.ETEE), units.FormatWatt(r.PNomTotal), units.FormatWatt(r.PIn))
		return
	}

	var wt = pdnspot.MultiThread
	switch strings.ToLower(*wl) {
	case "st":
		wt = pdnspot.SingleThread
	case "mt":
		wt = pdnspot.MultiThread
	case "gfx", "graphics":
		wt = pdnspot.Graphics
	default:
		fail(fmt.Errorf("unknown workload %q (st, mt, gfx)", *wl))
	}

	pt := pdnspot.Point{TDP: *tdp, Workload: wt, AR: *ar}
	r, err := ps.Evaluate(kind, pt)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s @ %gW TDP, %s, AR %s\n", kind, *tdp, wt, units.Percent(*ar))
	fmt.Printf("  ETEE        %s\n", units.Percent(r.ETEE))
	fmt.Printf("  PNom / PIn  %s / %s\n", units.FormatWatt(r.PNomTotal), units.FormatWatt(r.PIn))
	fmt.Printf("  chip input  %.2fA\n", r.ChipInputCurrent)
	b := r.Breakdown
	fmt.Printf("  losses: VR on-chip %s, VR off-chip %s, I2R compute %s, I2R uncore %s, guardband %s, power-gate %s\n",
		units.FormatWatt(b.OnChipVR), units.FormatWatt(b.OffChipVR),
		units.FormatWatt(b.CondCompute), units.FormatWatt(b.CondUncore),
		units.FormatWatt(b.Guardband), units.FormatWatt(b.PowerGate))

	if *validate {
		pred, meas, acc, err := ps.ValidateAgainstReference(kind, pt, 1)
		if err != nil {
			fail(err)
		}
		fmt.Printf("  validation: predicted %s, measured %s, accuracy %s\n",
			units.Percent(pred), units.Percent(meas), units.Percent(acc))
	}
}
