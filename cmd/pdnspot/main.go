// Command pdnspot evaluates a PDN architecture at one operating point and
// prints the end-to-end efficiency, power flow, and loss breakdown. It is
// built entirely on the public repro/flexwatts + repro/pdnspot surface.
//
// Usage:
//
//	pdnspot -pdn IVR -tdp 4 -workload mt -ar 0.6
//	pdnspot -pdn LDO -cstate C8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/flexwatts"
	"repro/pdnspot"
)

// pct renders a fraction as a percentage with one decimal.
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// run is the testable entry point: it parses args, evaluates, writes to the
// given streams, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pdnspot", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kindF := fs.String("pdn", "IVR", "PDN architecture: IVR, MBVR, LDO, I+MBVR")
	tdp := fs.Float64("tdp", 4, "thermal design power (W)")
	wl := fs.String("workload", "mt", "workload class: st, mt, gfx")
	ar := fs.Float64("ar", 0.6, "application ratio (0,1]")
	cstate := fs.String("cstate", "", "evaluate a package C-state instead (C0MIN, C2..C8)")
	validate := fs.Bool("validate", false, "also run the time-stepped reference and report accuracy")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	fail := func(err error) int {
		fmt.Fprintln(stderr, "pdnspot:", err)
		return 1
	}

	ctx := context.Background()
	kind, err := flexwatts.ParseKind(*kindF)
	if err != nil {
		return fail(err)
	}
	ps, err := pdnspot.New()
	if err != nil {
		return fail(err)
	}

	if *cstate != "" {
		c, err := flexwatts.ParseCState(*cstate)
		if err != nil {
			return fail(err)
		}
		if c == flexwatts.C0 {
			return fail(fmt.Errorf("C0 is the active state; drop -cstate and pass -tdp/-workload/-ar instead"))
		}
		r, err := ps.EvaluateCState(ctx, kind, c)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "%s in %s: ETEE %s, PNom %s, PIn %s\n",
			kind, c, pct(r.ETEE), r.PNomTotal, r.PIn)
		return 0
	}

	wt, err := flexwatts.ParseWorkloadType(*wl)
	if err != nil || wt == flexwatts.WorkloadUnset {
		return fail(fmt.Errorf("unknown workload %q (st, mt, gfx)", *wl))
	}

	pt := pdnspot.Point{TDP: flexwatts.Watt(*tdp), Workload: wt, AR: *ar}
	r, err := ps.Evaluate(ctx, kind, pt)
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stdout, "%s @ %gW TDP, %s, AR %s\n", kind, *tdp, wt, pct(*ar))
	fmt.Fprintf(stdout, "  ETEE        %s\n", pct(r.ETEE))
	fmt.Fprintf(stdout, "  PNom / PIn  %s / %s\n", r.PNomTotal, r.PIn)
	fmt.Fprintf(stdout, "  chip input  %.2fA\n", r.ChipInputCurrent)
	b := r.Breakdown
	fmt.Fprintf(stdout, "  losses: VR on-chip %s, VR off-chip %s, I2R compute %s, I2R uncore %s, guardband %s, power-gate %s\n",
		b.OnChipVR, b.OffChipVR, b.CondCompute, b.CondUncore, b.Guardband, b.PowerGate)

	if *validate {
		pred, meas, acc, err := ps.ValidateAgainstReference(ctx, kind, pt, 1)
		if err != nil {
			return fail(err)
		}
		fmt.Fprintf(stdout, "  validation: predicted %s, measured %s, accuracy %s\n",
			pct(pred), pct(meas), pct(acc))
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
