package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/experiments"
	"repro/internal/server"
)

var (
	envOnce sync.Once
	envVal  *experiments.Env
	envErr  error
)

func daemon(t *testing.T, opts server.Options) *httptest.Server {
	t.Helper()
	envOnce.Do(func() { envVal, envErr = experiments.NewEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	ts := httptest.NewServer(server.New(envVal, opts).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestHelpExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h returned %d, want 0", code)
	}
	if !strings.Contains(errOut.String(), "-rps") {
		t.Errorf("help text %q does not describe -rps", errOut.String())
	}
}

func TestBadFlagsRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(context.Background(), []string{"-rps", "0"}, &out, &errOut); code != 2 {
		t.Errorf("-rps 0 returned %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-addr", "ftp://x"}, &out, &errOut); code != 2 {
		t.Errorf("bad addr returned %d, want 2", code)
	}
}

// TestLoadgenAgainstDaemon drives both endpoints against a real handler
// for a short burst and checks the benchjson-compatible report line.
func TestLoadgenAgainstDaemon(t *testing.T) {
	ts := daemon(t, server.Options{})
	for _, mode := range []struct {
		name string
		args []string
		want string
	}{
		{"buffered", nil, "BenchmarkLoadgenBuffered "},
		{"stream", []string{"-stream"}, "BenchmarkLoadgenStream "},
	} {
		t.Run(mode.name, func(t *testing.T) {
			var out, errOut strings.Builder
			args := append([]string{
				"-addr", ts.URL, "-rps", "200", "-batch", "8", "-duration", "500ms",
			}, mode.args...)
			if code := run(context.Background(), args, &out, &errOut); code != 0 {
				t.Fatalf("exit %d; stderr: %s", code, errOut.String())
			}
			line := out.String()
			if !strings.HasPrefix(line, mode.want) {
				t.Fatalf("report %q does not start with %q", line, mode.want)
			}
			// benchjson's contract: even field count, value/unit pairs.
			fields := strings.Fields(line)
			if len(fields)%2 != 0 {
				t.Errorf("report has %d fields (odd): %q", len(fields), line)
			}
			for _, unit := range []string{"ns/op", "evals/s", "p50_s", "p95_s", "p99_s", "shed"} {
				if !strings.Contains(line, " "+unit) {
					t.Errorf("report %q missing unit %s", line, unit)
				}
			}
		})
	}
}

// TestLoadgenGridSweep pins the -grid batch-size sweep: one report line
// per size, in order, each naming the client worker count and its batch
// and carrying the benchjson value/unit shape.
func TestLoadgenGridSweep(t *testing.T) {
	ts := daemon(t, server.Options{})
	// Shrink the swept sizes: the mechanics and line format are what the
	// test pins, and the production 4096-point batch cannot finish inside
	// the short window when the in-process daemon runs under -race.
	defer func(orig []int) { gridBatchSizes = orig }(gridBatchSizes)
	gridBatchSizes = []int{4, 16, 64}
	var out, errOut strings.Builder
	args := []string{"-addr", ts.URL, "-rps", "100", "-duration", "400ms", "-grid", "-workers", "8"}
	if code := run(context.Background(), args, &out, &errOut); code != 0 {
		t.Fatalf("exit %d; stderr: %s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != len(gridBatchSizes) {
		t.Fatalf("got %d report lines, want %d:\n%s", len(lines), len(gridBatchSizes), out.String())
	}
	for i, n := range gridBatchSizes {
		want := fmt.Sprintf("BenchmarkLoadgenGrid/workers=8/batch=%d ", n)
		if !strings.HasPrefix(lines[i], want) {
			t.Errorf("line %d = %q, want prefix %q", i, lines[i], want)
		}
		if fields := strings.Fields(lines[i]); len(fields)%2 != 0 {
			t.Errorf("line %d has %d fields (odd): %q", i, len(fields), lines[i])
		}
	}
}

// TestLoadgenNoSuccessExitsOne: a daemon that sheds everything yields
// exit 1, so the SLO gate fails loudly instead of recording nothing.
func TestLoadgenNoSuccessExitsOne(t *testing.T) {
	ts := daemon(t, server.Options{RatePerClient: 0.0001, BurstPerClient: 1})
	var out, errOut strings.Builder
	// Consume the single burst token so every loadgen request is shed.
	args := []string{"-addr", ts.URL, "-rps", "50", "-batch", "4", "-duration", "300ms"}
	if code := run(context.Background(), args, &out, &errOut); code == 0 {
		// The first request may win the burst token; tolerate exit 0 only
		// if at least one success was recorded.
		if !strings.Contains(out.String(), "Benchmark") {
			t.Errorf("exit 0 with no report line; stderr: %s", errOut.String())
		}
		return
	}
	if !strings.Contains(errOut.String(), "no successful requests") {
		t.Errorf("stderr %q does not explain the failure", errOut.String())
	}
}
