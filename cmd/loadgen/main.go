// Command loadgen drives a running flexwattsd with a closed-loop constant
// request rate and reports what the daemon sustained: evaluations/second
// plus p50/p95/p99 request latency, in `go test -bench` line format so the
// numbers flow straight into the repository's BENCH_<pr>.json perf record
// via cmd/benchjson.
//
// Closed-loop means launch slots are minted on a fixed clock (-rps) and a
// bounded worker pool consumes them: when the daemon falls behind, slots
// are dropped and counted as missed instead of queueing unboundedly — the
// report then describes the offered rate the daemon actually absorbed,
// not a coordinated-omission fiction.
//
// Usage:
//
//	loadgen -addr http://localhost:8080 -rps 50 -batch 64 -duration 10s
//	loadgen -addr http://localhost:8080 -stream          # NDJSON endpoint
//	loadgen -addr http://localhost:8080 -optimize -rps 2 # design-space searches
//
// Exit status is 1 when the run completes without a single successful
// request, so scripts can gate on it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/flexwatts"
	"repro/flexwatts/api"
	"repro/flexwatts/client"
)

// points builds the batch evaluated by every request: a deterministic
// spread across the AR axis, so repeated requests hit the daemon's warm
// cache the way a steady-state fleet client would.
func points(batch int) []flexwatts.Point {
	pts := make([]flexwatts.Point, batch)
	for i := range pts {
		pts[i] = flexwatts.Point{
			PDN: flexwatts.FlexWatts, TDP: 18, Workload: flexwatts.MultiThread,
			AR: 0.40 + 0.5*float64(i)/float64(batch),
		}
	}
	return pts
}

// gridPoints builds a batch that exercises the daemon's batch-kernel
// prepass: static-baseline (IVR) points with a dense AR spread, the shape
// the server resolves through EvaluateGrid before answering.
func gridPoints(batch int) []flexwatts.Point {
	pts := make([]flexwatts.Point, batch)
	for i := range pts {
		pts[i] = flexwatts.Point{
			PDN: flexwatts.IVR, TDP: 18, Workload: flexwatts.MultiThread,
			AR: 0.40 + 0.5*float64(i)/float64(batch),
		}
	}
	return pts
}

// gridBatchSizes is the -grid sweep: points per request, small to large,
// bracketing the block size at which the server's grid prepass amortizes.
var gridBatchSizes = []int{64, 512, 4096}

// optimizeSpec is the -optimize request: an exhaustive search over every
// PDN topology at the default parameter scales (45 candidates), the shape
// of an architect's interactive what-if query. Seeded, so every request
// asks for byte-identical work and the report measures the daemon, not
// the workload. "evals" in the report counts candidates evaluated.
func optimizeSpec() flexwatts.OptimizeSpec {
	return flexwatts.OptimizeSpec{
		TDP: 18,
		PDNs: []flexwatts.Kind{
			flexwatts.FlexWatts, flexwatts.IVR, flexwatts.MBVR,
			flexwatts.LDO, flexwatts.IMBVR,
		},
		Seed: 1,
	}
}

// tally aggregates the run under one mutex; requests are hundreds per
// second, not millions, so contention is irrelevant next to the RTT.
type tally struct {
	mu        sync.Mutex
	latencies []time.Duration
	evals     int64
	shed      int64 // 429/503 after the client's retry budget
	errs      int64 // everything else
}

func (t *tally) success(d time.Duration, n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.latencies = append(t.latencies, d)
	t.evals += int64(n)
}

// quantile returns the q-th latency quantile of a sorted slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "http://localhost:8080", "flexwattsd base URL")
	rps := fs.Float64("rps", 50, "target request launch rate (requests/second)")
	batch := fs.Int("batch", 64, "points per request")
	duration := fs.Duration("duration", 10*time.Second, "run length")
	stream := fs.Bool("stream", false, "use POST /v1/evaluate/stream instead of /v1/evaluate")
	workers := fs.Int("workers", 0, "concurrent request slots (0 = ceil(rps), capped at 256)")
	name := fs.String("name", "", "benchmark line name (default LoadgenBuffered / LoadgenStream)")
	grid := fs.Bool("grid", false, "sweep grid-kernel batch sizes (64/512/4096 points/request) against /v1/evaluate, one report line per size")
	optimize := fs.Bool("optimize", false, "drive POST /v1/optimize design-space searches instead of evaluate batches (evals/s counts candidates)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *rps <= 0 || *batch <= 0 || *duration <= 0 {
		fmt.Fprintln(stderr, "loadgen: -rps, -batch and -duration must be positive")
		return 2
	}
	if *workers <= 0 {
		*workers = int(math.Ceil(*rps))
		if *workers > 256 {
			*workers = 256
		}
	}
	if *name == "" {
		switch {
		case *optimize:
			*name = "LoadgenOptimize"
		case *stream:
			*name = "LoadgenStream"
		default:
			*name = "LoadgenBuffered"
		}
	}

	c, err := client.New(*addr)
	if err != nil {
		fmt.Fprintln(stderr, "loadgen:", err)
		return 2
	}
	if *optimize {
		spec := optimizeSpec()
		return drive(ctx, *rps, *duration, *workers, 1, *name, stdout, stderr,
			func(ctx context.Context) (int, error) {
				res, err := c.Optimize(ctx, spec)
				return res.Evaluated, err
			})
	}
	if *grid {
		// Batch-size sweep: each size gets its own measurement window and
		// report line — named by the client concurrency too, so `make slo`
		// can sweep -workers and BENCH_<pr>.json records how request
		// throughput scales both with points per request riding the batch
		// kernel and with concurrent requests sharing the daemon's arenas
		// and cache shards.
		for _, n := range gridBatchSizes {
			lineName := fmt.Sprintf("LoadgenGrid/workers=%d/batch=%d", *workers, n)
			if code := drive(ctx, *rps, *duration, *workers, n, lineName, stdout, stderr,
				evaluateRequest(c, gridPoints(n), false)); code != 0 {
				return code
			}
		}
		return 0
	}
	return drive(ctx, *rps, *duration, *workers, *batch, *name, stdout, stderr,
		evaluateRequest(c, points(*batch), *stream))
}

// evaluateRequest builds the per-request callback for the evaluate
// endpoints: one buffered batch or one drained stream, returning how many
// points came back.
func evaluateRequest(c *client.Client, pts []flexwatts.Point, stream bool) func(context.Context) (int, error) {
	return func(ctx context.Context) (int, error) {
		if stream {
			got := 0
			err := c.EvaluateStream(ctx, pts, func(r api.EvalStreamResult) error {
				if r.Err() == nil {
					got++
				}
				return nil
			})
			return got, err
		}
		out, err := c.EvaluateBatch(ctx, pts)
		return len(out), err
	}
}

// drive runs one closed-loop measurement window against the daemon and
// prints its report; it returns the process exit code for the window.
// Each launch slot calls do once; do reports how many evaluations (points
// or search candidates) the request completed.
func drive(ctx context.Context, rps float64, duration time.Duration, workers, batch int, name string, stdout, stderr io.Writer, do func(context.Context) (int, error)) int {
	ctx, cancel := context.WithTimeout(ctx, duration)
	defer cancel()

	// The launch clock: one slot per tick; a full channel means every
	// worker is busy, so the slot is dropped and counted, not queued.
	slots := make(chan struct{}, workers)
	var missed atomic.Int64
	go func() {
		interval := time.Duration(float64(time.Second) / rps)
		if interval <= 0 {
			interval = time.Nanosecond
		}
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				close(slots)
				return
			case <-tick.C:
				select {
				case slots <- struct{}{}:
				default:
					missed.Add(1)
				}
			}
		}
	}()

	res := &tally{}
	oneRequest := func() {
		start := time.Now()
		got, err := do(ctx)
		if err == nil {
			res.success(time.Since(start), got)
		}
		switch {
		case err == nil:
		case ctx.Err() != nil:
			// The run clock expired mid-request; not a daemon failure.
		case errors.Is(err, api.ErrRateLimited) || errors.Is(err, api.ErrOverloaded):
			atomic.AddInt64(&res.shed, 1)
		default:
			atomic.AddInt64(&res.errs, 1)
		}
	}

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range slots {
				oneRequest()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res.mu.Lock()
	defer res.mu.Unlock()
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	n := len(res.latencies)
	if n == 0 {
		fmt.Fprintf(stderr, "loadgen: no successful requests (%d shed, %d errors)\n",
			res.shed, res.errs)
		return 1
	}
	var sum time.Duration
	for _, d := range res.latencies {
		sum += d
	}
	secs := elapsed.Seconds()

	// One `go test -bench`-shaped line: name, count, then value/unit
	// pairs — exactly what cmd/benchjson parses into the perf record.
	fmt.Fprintf(stdout,
		"Benchmark%s %d %.0f ns/op %.1f evals/s %.1f req/s %.6f p50_s %.6f p95_s %.6f p99_s %d shed %d request_errors %d missed_slots\n",
		name, n, float64(sum.Nanoseconds())/float64(n),
		float64(res.evals)/secs, float64(n)/secs,
		quantile(res.latencies, 0.50).Seconds(),
		quantile(res.latencies, 0.95).Seconds(),
		quantile(res.latencies, 0.99).Seconds(),
		res.shed, res.errs, missed.Load())
	fmt.Fprintf(stderr,
		"loadgen: %s: %d requests over %.1fs (batch %d, target %.0f rps): %.0f evals/s, p50 %s p95 %s p99 %s, %d shed, %d errors, %d missed slots\n",
		name, n, secs, batch, rps,
		float64(res.evals)/secs,
		quantile(res.latencies, 0.50).Round(time.Microsecond),
		quantile(res.latencies, 0.95).Round(time.Microsecond),
		quantile(res.latencies, 0.99).Round(time.Microsecond),
		res.shed, res.errs, missed.Load())
	return 0
}

func main() {
	os.Exit(run(context.Background(), os.Args[1:], os.Stdout, os.Stderr))
}
