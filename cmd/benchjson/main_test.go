package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEvaluateETEE-8   	 1303594	       907.3 ns/op	      48 B/op	       1 allocs/op
BenchmarkReferenceSim   	     420	   2876468 ns/op	 1029544 B/op	    6007 allocs/op
BenchmarkAblationOracle/oracle-4         	     100	   123456 ns/op	        3.21 J
PASS
ok  	repro	12.860s
`

func TestParse(t *testing.T) {
	r, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if r.Goos != "linux" || r.Goarch != "amd64" || r.Pkg != "repro" {
		t.Errorf("header = %+v", r)
	}
	if len(r.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(r.Benchmarks))
	}
	b := r.Benchmarks[0]
	if b.Name != "BenchmarkEvaluateETEE" || b.Iterations != 1303594 ||
		b.NsPerOp != 907.3 || b.BytesPerOp != 48 || b.AllocsPerOp != 1 {
		t.Errorf("first benchmark = %+v", b)
	}
	if r.Benchmarks[1].Name != "BenchmarkReferenceSim" {
		t.Errorf("GOMAXPROCS-less name mangled: %+v", r.Benchmarks[1])
	}
	if got := r.Benchmarks[2]; got.Name != "BenchmarkAblationOracle/oracle" || got.Metrics["J"] != 3.21 {
		t.Errorf("custom metric = %+v", got)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Error("no benchmark lines should be an error")
	}
}

func TestMergeKeepsOtherLabels(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")

	var out, errOut strings.Builder
	if code := run(strings.NewReader(sample), &out, &errOut, []string{"-label", "baseline", "-out", path}); code != 0 {
		t.Fatalf("first run exited %d: %s", code, errOut.String())
	}
	if code := run(strings.NewReader(sample), &out, &errOut, []string{"-label", "current", "-out", path}); code != 0 {
		t.Fatalf("second run exited %d: %s", code, errOut.String())
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != 1 {
		t.Errorf("schema = %d", doc.Schema)
	}
	for _, label := range []string{"baseline", "current"} {
		if _, ok := doc.Runs[label]; !ok {
			t.Errorf("run %q missing after merge: have %v", label, len(doc.Runs))
		}
	}
}

func TestStdoutMode(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(strings.NewReader(sample), &out, &errOut, nil); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var doc Document
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
	if len(doc.Runs["current"].Benchmarks) != 3 {
		t.Errorf("stdout doc = %+v", doc)
	}
}

// writeBaseline records sample output under the given label in a temp
// document and returns its path — the fixture for the -check gate tests.
func writeBaseline(t *testing.T, label, benchOutput string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	var out, errOut strings.Builder
	if code := run(strings.NewReader(benchOutput), &out, &errOut, []string{"-label", label, "-out", path}); code != 0 {
		t.Fatalf("recording baseline exited %d: %s", code, errOut.String())
	}
	return path
}

// TestCheckGate pins the perf-gate semantics end to end: a run within
// tolerance passes, a ns/op regression beyond it fails, and a throughput
// ("/s"-unit) drop beyond it fails — the self-test CI runs so the gate
// itself cannot silently rot.
func TestCheckGate(t *testing.T) {
	const baseline = `goos: linux
BenchmarkEvaluateETEE 1000 400.0 ns/op
BenchmarkEvaluateGrid/IVR 100 500000 ns/op 9000000 points/s
PASS
`
	path := writeBaseline(t, "current", baseline)
	cases := []struct {
		name, input string
		wantCode    int
	}{
		{"identical", baseline, 0},
		{"within-tolerance", `
BenchmarkEvaluateETEE 1000 440.0 ns/op
BenchmarkEvaluateGrid/IVR 100 510000 ns/op 8500000 points/s
`, 0},
		{"improvement", `
BenchmarkEvaluateETEE 1000 200.0 ns/op
BenchmarkEvaluateGrid/IVR 100 250000 ns/op 18000000 points/s
`, 0},
		{"nsop-regression", `
BenchmarkEvaluateETEE 1000 480.0 ns/op
BenchmarkEvaluateGrid/IVR 100 510000 ns/op 8500000 points/s
`, 1},
		{"throughput-regression", `
BenchmarkEvaluateETEE 1000 400.0 ns/op
BenchmarkEvaluateGrid/IVR 100 500000 ns/op 7000000 points/s
`, 1},
		{"nothing-shared", "BenchmarkUnrelated 10 5.0 ns/op\n", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errOut strings.Builder
			code := run(strings.NewReader(tc.input), &out, &errOut,
				[]string{"-check", "-baseline", path, "-tolerance", "0.15"})
			if code != tc.wantCode {
				t.Errorf("exit %d, want %d\nstdout:\n%s\nstderr:\n%s", code, tc.wantCode, out.String(), errOut.String())
			}
			if tc.wantCode != 0 && tc.name != "nothing-shared" && !strings.Contains(out.String(), "REGRESSED") {
				t.Errorf("regression verdict missing from output:\n%s", out.String())
			}
		})
	}
}

// TestCheckReportsAllRegressions pins the gate's whole-run reporting: when
// several metrics regress at once, every one gets its own REGRESSED verdict
// line in a single invocation (no stop-at-first-failure), the stderr count
// matches, and the run ends with the one-line summary.
func TestCheckReportsAllRegressions(t *testing.T) {
	path := writeBaseline(t, "current", `
BenchmarkEvaluateETEE 1000 400.0 ns/op
BenchmarkEvaluateGrid/IVR 100 500000 ns/op 9000000 points/s
BenchmarkEvaluateGridParallel/workers=4 50 1000000 ns/op 4000000 points/s
`)
	// Three distinct regressions: ETEE ns/op, grid points/s, parallel ns/op.
	input := `
BenchmarkEvaluateETEE 1000 900.0 ns/op
BenchmarkEvaluateGrid/IVR 100 500000 ns/op 1000000 points/s
BenchmarkEvaluateGridParallel/workers=4 50 9000000 ns/op 3900000 points/s
`
	var out, errOut strings.Builder
	code := run(strings.NewReader(input), &out, &errOut,
		[]string{"-check", "-baseline", path, "-tolerance", "0.15"})
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if got := strings.Count(out.String(), "REGRESSED"); got != 3 {
		t.Errorf("want 3 REGRESSED verdict lines in one run, got %d:\n%s", got, out.String())
	}
	if !strings.Contains(errOut.String(), "3 metric comparison(s) regressed") {
		t.Errorf("stderr count missing:\n%s", errOut.String())
	}
	if !strings.Contains(out.String(), "3 benchmark(s) compared, 5 metric line(s), 3 regression(s), 0 skipped") {
		t.Errorf("summary line missing or wrong:\n%s", out.String())
	}
}

// TestCheckGateFlagErrors pins the gate's operator errors: missing
// -baseline, an absent file, and an unknown label all fail loudly rather
// than passing vacuously.
func TestCheckGateFlagErrors(t *testing.T) {
	const input = "BenchmarkEvaluateETEE 1000 400.0 ns/op\n"
	path := writeBaseline(t, "other-label", input)
	for name, args := range map[string][]string{
		"no-baseline":   {"-check"},
		"missing-file":  {"-check", "-baseline", filepath.Join(t.TempDir(), "nope.json")},
		"unknown-label": {"-check", "-baseline", path, "-against", "current"},
	} {
		t.Run(name, func(t *testing.T) {
			var out, errOut strings.Builder
			if code := run(strings.NewReader(input), &out, &errOut, args); code == 0 {
				t.Errorf("exit 0, want non-zero; stderr:\n%s", errOut.String())
			}
		})
	}
}
