package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkEvaluateETEE-8   	 1303594	       907.3 ns/op	      48 B/op	       1 allocs/op
BenchmarkReferenceSim   	     420	   2876468 ns/op	 1029544 B/op	    6007 allocs/op
BenchmarkAblationOracle/oracle-4         	     100	   123456 ns/op	        3.21 J
PASS
ok  	repro	12.860s
`

func TestParse(t *testing.T) {
	r, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if r.Goos != "linux" || r.Goarch != "amd64" || r.Pkg != "repro" {
		t.Errorf("header = %+v", r)
	}
	if len(r.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(r.Benchmarks))
	}
	b := r.Benchmarks[0]
	if b.Name != "BenchmarkEvaluateETEE" || b.Iterations != 1303594 ||
		b.NsPerOp != 907.3 || b.BytesPerOp != 48 || b.AllocsPerOp != 1 {
		t.Errorf("first benchmark = %+v", b)
	}
	if r.Benchmarks[1].Name != "BenchmarkReferenceSim" {
		t.Errorf("GOMAXPROCS-less name mangled: %+v", r.Benchmarks[1])
	}
	if got := r.Benchmarks[2]; got.Name != "BenchmarkAblationOracle/oracle" || got.Metrics["J"] != 3.21 {
		t.Errorf("custom metric = %+v", got)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Error("no benchmark lines should be an error")
	}
}

func TestMergeKeepsOtherLabels(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")

	var out, errOut strings.Builder
	if code := run(strings.NewReader(sample), &out, &errOut, []string{"-label", "baseline", "-out", path}); code != 0 {
		t.Fatalf("first run exited %d: %s", code, errOut.String())
	}
	if code := run(strings.NewReader(sample), &out, &errOut, []string{"-label", "current", "-out", path}); code != 0 {
		t.Fatalf("second run exited %d: %s", code, errOut.String())
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != 1 {
		t.Errorf("schema = %d", doc.Schema)
	}
	for _, label := range []string{"baseline", "current"} {
		if _, ok := doc.Runs[label]; !ok {
			t.Errorf("run %q missing after merge: have %v", label, len(doc.Runs))
		}
	}
}

func TestStdoutMode(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(strings.NewReader(sample), &out, &errOut, nil); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var doc Document
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("stdout is not valid JSON: %v", err)
	}
	if len(doc.Runs["current"].Benchmarks) != 3 {
		t.Errorf("stdout doc = %+v", doc)
	}
}
