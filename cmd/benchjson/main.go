// Command benchjson converts `go test -bench` output read from stdin into a
// machine-readable JSON perf record, so the repository can track its
// benchmark trajectory across PRs (BENCH_<pr>.json) and CI can upload the
// numbers as an artifact.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -label current -out BENCH_2.json
//
// With -out, the file is read first (if it exists) and the labeled run is
// merged into its "runs" map — recording a new measurement never discards a
// committed baseline under a different label. Without -out, the document is
// written to stdout.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric units (e.g. "J", "switches").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Run is one recorded benchmark session.
type Run struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Document is the on-disk perf record: labeled runs (e.g. "baseline" from
// before an optimization PR and "current" after it).
type Document struct {
	Schema int            `json:"schema"`
	Runs   map[string]Run `json:"runs"`
}

// parse reads `go test -bench` output and collects header fields and
// benchmark lines; non-benchmark output (PASS, ok, test logs) is skipped.
func parse(r io.Reader) (Run, error) {
	var run Run
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			run.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			run.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			run.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			run.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseBenchLine(line)
		if ok {
			run.Benchmarks = append(run.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return Run{}, err
	}
	if len(run.Benchmarks) == 0 {
		return Run{}, errors.New("benchjson: no benchmark lines found on stdin")
	}
	return run, nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   1303594   907.3 ns/op   48 B/op   1 allocs/op   3.2 J
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix go test appends to the name.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// merge loads the existing document at path (if any) and sets runs[label].
func merge(path, label string, run Run) (Document, error) {
	doc := Document{Schema: 1, Runs: map[string]Run{}}
	if path != "" {
		data, err := os.ReadFile(path)
		switch {
		case err == nil:
			if err := json.Unmarshal(data, &doc); err != nil {
				return Document{}, fmt.Errorf("benchjson: %s: %w", path, err)
			}
			if doc.Runs == nil {
				doc.Runs = map[string]Run{}
			}
		case !errors.Is(err, os.ErrNotExist):
			return Document{}, err
		}
	}
	doc.Schema = 1
	doc.Runs[label] = run
	return doc, nil
}

func run(stdin io.Reader, stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	label := fs.String("label", "current", "run label to record under (e.g. baseline, current)")
	out := fs.String("out", "", "JSON file to merge the run into (stdout if empty)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	r, err := parse(stdin)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	doc, err := merge(*out, *label, r)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

func main() { os.Exit(run(os.Stdin, os.Stdout, os.Stderr, os.Args[1:])) }
