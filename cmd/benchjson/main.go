// Command benchjson converts `go test -bench` output read from stdin into a
// machine-readable JSON perf record, so the repository can track its
// benchmark trajectory across PRs (BENCH_<pr>.json) and CI can upload the
// numbers as an artifact.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -label current -out BENCH_2.json
//
// With -out, the file is read first (if it exists) and the labeled run is
// merged into its "runs" map — recording a new measurement never discards a
// committed baseline under a different label. Without -out, the document is
// written to stdout.
//
// With -check, benchjson is a perf gate instead of a recorder: it reads a
// fresh `go test -bench` run from stdin, compares it against a labeled run
// in the -baseline document, and exits non-zero when any shared benchmark
// regressed beyond -tolerance — ns/op growing past baseline×(1+tol), or a
// throughput metric (any custom unit ending in "/s", e.g. the grid
// kernels' points/s) dropping below baseline×(1−tol):
//
//	go test -run '^$' -bench . -benchmem . | benchjson -check -baseline BENCH_8.json -tolerance 0.15
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics holds custom b.ReportMetric units (e.g. "J", "switches").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Run is one recorded benchmark session.
type Run struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Document is the on-disk perf record: labeled runs (e.g. "baseline" from
// before an optimization PR and "current" after it).
type Document struct {
	Schema int            `json:"schema"`
	Runs   map[string]Run `json:"runs"`
}

// parse reads `go test -bench` output and collects header fields and
// benchmark lines; non-benchmark output (PASS, ok, test logs) is skipped.
func parse(r io.Reader) (Run, error) {
	var run Run
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			run.Goos = strings.TrimPrefix(line, "goos: ")
			continue
		case strings.HasPrefix(line, "goarch: "):
			run.Goarch = strings.TrimPrefix(line, "goarch: ")
			continue
		case strings.HasPrefix(line, "cpu: "):
			run.CPU = strings.TrimPrefix(line, "cpu: ")
			continue
		case strings.HasPrefix(line, "pkg: "):
			run.Pkg = strings.TrimPrefix(line, "pkg: ")
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseBenchLine(line)
		if ok {
			run.Benchmarks = append(run.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return Run{}, err
	}
	if len(run.Benchmarks) == 0 {
		return Run{}, errors.New("benchjson: no benchmark lines found on stdin")
	}
	return run, nil
}

// parseBenchLine parses one result line of the form
//
//	BenchmarkName-8   1303594   907.3 ns/op   48 B/op   1 allocs/op   3.2 J
//
// i.e. a name, an iteration count, then (value, unit) pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix go test appends to the name.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, true
}

// merge loads the existing document at path (if any) and sets runs[label].
func merge(path, label string, run Run) (Document, error) {
	doc := Document{Schema: 1, Runs: map[string]Run{}}
	if path != "" {
		data, err := os.ReadFile(path)
		switch {
		case err == nil:
			if err := json.Unmarshal(data, &doc); err != nil {
				return Document{}, fmt.Errorf("benchjson: %s: %w", path, err)
			}
			if doc.Runs == nil {
				doc.Runs = map[string]Run{}
			}
		case !errors.Is(err, os.ErrNotExist):
			return Document{}, err
		}
	}
	doc.Schema = 1
	doc.Runs[label] = run
	return doc, nil
}

// compare gates a fresh run against a baseline run: every benchmark present
// in both is compared on ns/op (higher is worse) and on each shared
// throughput metric — a custom unit ending in "/s" (lower is worse). The
// gate never stops at the first failure: it writes one verdict line per
// metric comparison, then a final one-line summary of the whole run
// (benchmarks compared, metric lines, regressions, skips), and returns the
// number of regressions beyond tolerance. Benchmarks present on only one
// side are reported but never fail the gate: short CI runs gate a subset
// via -bench regexes, and the baseline document may carry runs (SLO lines,
// retired benchmarks) the fresh output doesn't reproduce.
func compare(w io.Writer, current, baseline Run, tolerance float64) int {
	base := make(map[string]Benchmark, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		base[b.Name] = b
	}
	regressions, shared, comparisons, skipped := 0, 0, 0, 0
	verdict := func(name, metric string, cur, ref, worstOK float64, regressed bool) {
		comparisons++
		status := "ok"
		if regressed {
			status = "REGRESSED"
			regressions++
		}
		fmt.Fprintf(w, "%-9s %s %s: %g vs baseline %g (limit %g)\n",
			status, name, metric, cur, ref, worstOK)
	}
	for _, cur := range current.Benchmarks {
		ref, ok := base[cur.Name]
		if !ok {
			skipped++
			fmt.Fprintf(w, "skipped   %s: not in baseline\n", cur.Name)
			continue
		}
		shared++
		if ref.NsPerOp > 0 {
			limit := ref.NsPerOp * (1 + tolerance)
			verdict(cur.Name, "ns/op", cur.NsPerOp, ref.NsPerOp, limit, cur.NsPerOp > limit)
		}
		for unit, refV := range ref.Metrics {
			if !strings.HasSuffix(unit, "/s") || refV <= 0 {
				continue
			}
			curV, ok := cur.Metrics[unit]
			if !ok {
				continue
			}
			limit := refV * (1 - tolerance)
			verdict(cur.Name, unit, curV, refV, limit, curV < limit)
		}
	}
	for name := range base {
		found := false
		for _, cur := range current.Benchmarks {
			if cur.Name == name {
				found = true
				break
			}
		}
		if !found {
			skipped++
			fmt.Fprintf(w, "skipped   %s: not in this run\n", name)
		}
	}
	fmt.Fprintf(w, "benchjson: %d benchmark(s) compared, %d metric line(s), %d regression(s), %d skipped\n",
		shared, comparisons, regressions, skipped)
	if shared == 0 {
		fmt.Fprintln(w, "REGRESSED (no benchmark shared between run and baseline — gate has nothing to hold)")
		return 1
	}
	return regressions
}

// check runs the perf gate: stdin vs doc.Runs[label] of the baseline file.
func check(stdin io.Reader, stdout, stderr io.Writer, baselinePath, label string, tolerance float64) int {
	if baselinePath == "" {
		fmt.Fprintln(stderr, "benchjson: -check requires -baseline")
		return 2
	}
	cur, err := parse(stdin)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	var doc Document
	if err := json.Unmarshal(data, &doc); err != nil {
		fmt.Fprintf(stderr, "benchjson: %s: %v\n", baselinePath, err)
		return 1
	}
	ref, ok := doc.Runs[label]
	if !ok {
		fmt.Fprintf(stderr, "benchjson: %s has no run labeled %q\n", baselinePath, label)
		return 1
	}
	if n := compare(stdout, cur, ref, tolerance); n > 0 {
		fmt.Fprintf(stderr, "benchjson: %d metric comparison(s) regressed beyond %.0f%% of %s %q\n",
			n, tolerance*100, baselinePath, label)
		return 1
	}
	fmt.Fprintf(stdout, "benchjson: no regression beyond %.0f%% of %s %q\n",
		tolerance*100, baselinePath, label)
	return 0
}

func run(stdin io.Reader, stdout, stderr io.Writer, args []string) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	label := fs.String("label", "current", "run label to record under (e.g. baseline, current)")
	out := fs.String("out", "", "JSON file to merge the run into (stdout if empty)")
	doCheck := fs.Bool("check", false, "gate mode: compare stdin against -baseline instead of recording")
	baseline := fs.String("baseline", "", "baseline BENCH_<pr>.json document for -check")
	against := fs.String("against", "current", "run label inside -baseline to compare with")
	tolerance := fs.Float64("tolerance", 0.15, "allowed fractional regression in -check mode")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	if *doCheck {
		return check(stdin, stdout, stderr, *baseline, *against, *tolerance)
	}
	r, err := parse(stdin)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	doc, err := merge(*out, *label, r)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	data = append(data, '\n')
	if *out == "" {
		_, err = stdout.Write(data)
	} else {
		err = os.WriteFile(*out, data, 0o644)
	}
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return 0
}

func main() { os.Exit(run(os.Stdin, os.Stdout, os.Stderr, os.Args[1:])) }
