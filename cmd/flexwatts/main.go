// Command flexwatts regenerates the paper's tables and figures.
//
// Usage:
//
//	flexwatts -exp fig7                # one experiment
//	flexwatts -exp all                 # every registered experiment
//	flexwatts -exp all -parallel 8     # ... on an 8-worker sweep pool
//	flexwatts -list                    # list experiment ids
//	flexwatts -exp all -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The profiling flags cover the whole run (environment construction,
// predictor characterization, every sweep) so a full-suite profile needs no
// throwaway test harness: `go tool pprof cpu.pprof` on the output works
// directly.
//
// Experiment ids follow the paper's figure/table numbering (fig2a ... fig8e,
// tab1, tab2, obs); see DESIGN.md for the per-experiment index. The sweep
// engine collects results by grid index, so -parallel never changes the
// output bytes — only how fast they arrive.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/experiments"
)

// run is the testable entry point: it parses args, executes, and returns
// the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flexwatts", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "", "experiment id to run, or 'all'")
	list := fs.Bool("list", false, "list experiment ids and exit")
	parallel := fs.Int("parallel", runtime.NumCPU(),
		"sweep engine worker count (1 = serial; output is identical either way)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the whole run to `file`")
	memprofile := fs.String("memprofile", "", "write a heap profile at exit to `file`")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(stderr, "usage: flexwatts -exp <id>|all [-parallel N]   (or -list)")
		return 2
	}
	if *exp != "all" && !experiments.Known(*exp) {
		fmt.Fprintf(stderr, "flexwatts: unknown experiment %q; valid ids: all %s\n",
			*exp, strings.Join(experiments.IDs(), " "))
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "flexwatts:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "flexwatts:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "flexwatts: closing cpu profile:", err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "flexwatts:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "flexwatts: writing heap profile:", err)
			}
		}()
	}

	env, err := experiments.NewEnv()
	if err != nil {
		fmt.Fprintln(stderr, "flexwatts:", err)
		return 1
	}
	env.Workers = *parallel

	if *exp == "all" {
		if err := experiments.RunAll(env, stdout); err != nil {
			fmt.Fprintln(stderr, "flexwatts:", err)
			return 1
		}
		return 0
	}
	if err := experiments.Run(*exp, env, stdout); err != nil {
		fmt.Fprintln(stderr, "flexwatts:", err)
		return 1
	}
	fmt.Fprintln(stdout)
	return 0
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }
