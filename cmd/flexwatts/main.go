// Command flexwatts regenerates the paper's tables and figures.
//
// Usage:
//
//	flexwatts -exp fig7                # one experiment, ASCII to stdout
//	flexwatts -exp all                 # every registered experiment
//	flexwatts -exp fig7 -format json   # typed dataset as JSON
//	flexwatts -exp all -format csv -o all.csv
//	flexwatts -exp all -parallel 8     # ... on an 8-worker sweep pool
//	flexwatts -list                    # list experiment ids
//	flexwatts -exp all -cpuprofile cpu.pprof -memprofile mem.pprof
//
// -format selects the renderer: "ascii" (default, the goldens' layout),
// "json" (one dataset object, or an array of datasets for -exp all), or
// "csv" (one RFC 4180 block per table, blank line between blocks). -o
// writes the output to a file instead of stdout.
//
// -parallel bounds the sweep engine's worker pool. It defaults to 0, which
// means "size by runtime.GOMAXPROCS(0)" — exactly the sweep.Map contract —
// so the CLI default and the engine default can never drift; 1 is fully
// serial. The engine collects results by grid index, so -parallel never
// changes the output bytes — only how fast they arrive.
//
// The profiling flags cover the whole run (environment construction,
// predictor characterization, every sweep) so a full-suite profile needs no
// throwaway test harness: `go tool pprof cpu.pprof` on the output works
// directly.
//
// Experiment ids follow the paper's figure/table numbering (fig2a ... fig8e,
// tab1, tab2, obs); see DESIGN.md for the per-experiment index.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/flexwatts/report"
	"repro/internal/experiments"
)

// writeOutput renders the selected experiments in the selected format.
func writeOutput(env *experiments.Env, exp string, format report.Format, w io.Writer) error {
	if exp == "all" {
		switch format {
		case report.FormatASCII:
			return experiments.RunAll(env, w)
		case report.FormatJSON:
			ds, err := experiments.Datasets(env)
			if err != nil {
				return err
			}
			return report.WriteJSONAll(w, ds)
		default:
			ds, err := experiments.Datasets(env)
			if err != nil {
				return err
			}
			return report.WriteCSVAll(w, ds)
		}
	}
	d, err := experiments.Dataset(exp, env)
	if err != nil {
		return err
	}
	if format == report.FormatASCII {
		return d.WriteASCIIGolden(w)
	}
	return d.Write(w, format)
}

// run is the testable entry point: it parses args, executes, and returns
// the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flexwatts", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "", "experiment id to run, or 'all'")
	list := fs.Bool("list", false, "list experiment ids and exit")
	parallel := fs.Int("parallel", 0,
		"sweep engine worker count (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
	format := fs.String("format", "ascii", "output format: ascii, json or csv")
	outPath := fs.String("o", "", "write output to `file` instead of stdout")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the whole run to `file`")
	memprofile := fs.String("memprofile", "", "write a heap profile at exit to `file`")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Fprintln(stdout, id)
		}
		return 0
	}
	if *exp == "" {
		fmt.Fprintln(stderr, "usage: flexwatts -exp <id>|all [-format ascii|json|csv] [-o file] [-parallel N]   (or -list)")
		return 2
	}
	if *exp != "all" && !experiments.Known(*exp) {
		fmt.Fprintf(stderr, "flexwatts: unknown experiment %q; valid ids: all %s\n",
			*exp, strings.Join(experiments.IDs(), " "))
		return 2
	}
	fmtSel, err := report.ParseFormat(*format)
	if err != nil {
		fmt.Fprintln(stderr, "flexwatts:", err)
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(stderr, "flexwatts:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "flexwatts:", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(stderr, "flexwatts: closing cpu profile:", err)
			}
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(stderr, "flexwatts:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "flexwatts: writing heap profile:", err)
			}
		}()
	}

	env, err := experiments.NewEnv()
	if err != nil {
		fmt.Fprintln(stderr, "flexwatts:", err)
		return 1
	}
	env.Workers = *parallel

	if *outPath != "" {
		// Flush and close explicitly so a short write (full disk, failing
		// mount) fails the process instead of leaving a truncated file
		// behind an exit code of 0.
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "flexwatts:", err)
			return 1
		}
		bw := bufio.NewWriter(f)
		werr := writeOutput(env, *exp, fmtSel, bw)
		if err := bw.Flush(); werr == nil {
			werr = err
		}
		if err := f.Close(); werr == nil {
			werr = err
		}
		if werr != nil {
			fmt.Fprintln(stderr, "flexwatts:", werr)
			return 1
		}
		return 0
	}

	if err := writeOutput(env, *exp, fmtSel, stdout); err != nil {
		fmt.Fprintln(stderr, "flexwatts:", err)
		return 1
	}
	return 0
}

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }
