// Command flexwatts regenerates the paper's tables and figures.
//
// Usage:
//
//	flexwatts -exp fig7          # one experiment
//	flexwatts -exp all           # every registered experiment
//	flexwatts -list              # list experiment ids
//
// Experiment ids follow the paper's figure/table numbering (fig2a ... fig8e,
// tab1, tab2, obs); see DESIGN.md for the per-experiment index.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run, or 'all'")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "usage: flexwatts -exp <id>|all   (or -list)")
		os.Exit(2)
	}

	env, err := experiments.NewEnv()
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexwatts:", err)
		os.Exit(1)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for _, id := range ids {
		if err := experiments.Run(id, env, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "flexwatts: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
