package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestUnknownExperimentExitsNonZero(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-exp", "fig99"}, &out, &errOut)
	if code == 0 {
		t.Fatal("unknown -exp returned exit code 0")
	}
	msg := errOut.String()
	if !strings.Contains(msg, "fig99") {
		t.Errorf("stderr %q does not name the bad id", msg)
	}
	// The message must carry the valid id list so the user can recover.
	for _, id := range []string{"fig2a", "fig7", "tab1", "obs", "all"} {
		if !strings.Contains(msg, id) {
			t.Errorf("stderr does not list valid id %q: %s", id, msg)
		}
	}
	if out.Len() != 0 {
		t.Errorf("unknown -exp wrote to stdout: %q", out.String())
	}
}

func TestHelpExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h returned %d, want 0", code)
	}
	if !strings.Contains(errOut.String(), "-exp") {
		t.Errorf("help text %q does not describe -exp", errOut.String())
	}
}

func TestNoArgsUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args returned %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Errorf("stderr %q lacks usage line", errOut.String())
	}
}

func TestListExperiments(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list returned %d, stderr: %s", code, errOut.String())
	}
	for _, id := range []string{"fig2a", "fig8e", "tab2", "noise"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "tab1", "-parallel", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("-exp tab1 returned %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Errorf("tab1 output missing table title: %q", out.String())
	}
}

func TestParallelOutputMatchesSerial(t *testing.T) {
	// The CLI contract: -parallel only changes speed, never bytes.
	var serial, parallel, errOut strings.Builder
	if code := run([]string{"-exp", "fig4j", "-parallel", "1"}, &serial, &errOut); code != 0 {
		t.Fatalf("serial run failed: %s", errOut.String())
	}
	if code := run([]string{"-exp", "fig4j", "-parallel", "8"}, &parallel, &errOut); code != 0 {
		t.Fatalf("parallel run failed: %s", errOut.String())
	}
	if serial.String() != parallel.String() {
		t.Error("-parallel 8 output differs from -parallel 1")
	}
}

func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errOut strings.Builder
	code := run([]string{"-exp", "fig4j", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errOut.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	if out.Len() == 0 {
		t.Error("experiment output missing")
	}
}
