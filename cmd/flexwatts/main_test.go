package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/flexwatts/report"
)

func TestUnknownExperimentExitsNonZero(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-exp", "fig99"}, &out, &errOut)
	if code == 0 {
		t.Fatal("unknown -exp returned exit code 0")
	}
	msg := errOut.String()
	if !strings.Contains(msg, "fig99") {
		t.Errorf("stderr %q does not name the bad id", msg)
	}
	// The message must carry the valid id list so the user can recover.
	for _, id := range []string{"fig2a", "fig7", "tab1", "obs", "all"} {
		if !strings.Contains(msg, id) {
			t.Errorf("stderr does not list valid id %q: %s", id, msg)
		}
	}
	if out.Len() != 0 {
		t.Errorf("unknown -exp wrote to stdout: %q", out.String())
	}
}

func TestHelpExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h returned %d, want 0", code)
	}
	if !strings.Contains(errOut.String(), "-exp") {
		t.Errorf("help text %q does not describe -exp", errOut.String())
	}
}

func TestNoArgsUsage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run(nil, &out, &errOut); code != 2 {
		t.Errorf("no args returned %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Errorf("stderr %q lacks usage line", errOut.String())
	}
}

func TestListExperiments(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list returned %d, stderr: %s", code, errOut.String())
	}
	for _, id := range []string{"fig2a", "fig8e", "tab2", "noise"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("-list output missing %q", id)
		}
	}
}

func TestSingleExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "tab1", "-parallel", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("-exp tab1 returned %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Table 1") {
		t.Errorf("tab1 output missing table title: %q", out.String())
	}
}

func TestParallelOutputMatchesSerial(t *testing.T) {
	// The CLI contract: -parallel only changes speed, never bytes.
	var serial, parallel, errOut strings.Builder
	if code := run([]string{"-exp", "fig4j", "-parallel", "1"}, &serial, &errOut); code != 0 {
		t.Fatalf("serial run failed: %s", errOut.String())
	}
	if code := run([]string{"-exp", "fig4j", "-parallel", "8"}, &parallel, &errOut); code != 0 {
		t.Fatalf("parallel run failed: %s", errOut.String())
	}
	if serial.String() != parallel.String() {
		t.Error("-parallel 8 output differs from -parallel 1")
	}
}

func TestFormatJSON(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "tab2", "-format", "json"}, &out, &errOut); code != 0 {
		t.Fatalf("-format json returned %d, stderr: %s", code, errOut.String())
	}
	var d report.Dataset
	if err := json.Unmarshal([]byte(out.String()), &d); err != nil {
		t.Fatalf("output is not a JSON dataset: %v", err)
	}
	if d.ID != "tab2" || len(d.Tables) == 0 {
		t.Errorf("dataset = id %q with %d tables", d.ID, len(d.Tables))
	}
}

func TestFormatCSV(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "tab1", "-format", "csv"}, &out, &errOut); code != 0 {
		t.Fatalf("-format csv returned %d, stderr: %s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "# Table 1") {
		t.Errorf("CSV output missing title comment: %q", out.String())
	}
	if !strings.Contains(out.String(), "Domain,Description\n") {
		t.Errorf("CSV output missing header record: %q", out.String())
	}
}

func TestFormatUnknownRejected(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "tab1", "-format", "xml"}, &out, &errOut); code != 2 {
		t.Errorf("-format xml returned %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "xml") {
		t.Errorf("stderr %q does not name the bad format", errOut.String())
	}
}

func TestOutputFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tab1.txt")
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "tab1", "-o", path}, &out, &errOut); code != 0 {
		t.Fatalf("-o returned %d, stderr: %s", code, errOut.String())
	}
	if out.Len() != 0 {
		t.Errorf("-o still wrote to stdout: %q", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var direct strings.Builder
	if code := run([]string{"-exp", "tab1"}, &direct, &errOut); code != 0 {
		t.Fatal("direct run failed")
	}
	if string(data) != direct.String() {
		t.Error("-o file content differs from stdout content")
	}
}

// TestParallelDefaultMatchesEngine pins the satellite contract: the flag's
// default is 0, which sweep.Map documents as "size by GOMAXPROCS(0)" — the
// CLI no longer hardcodes runtime.NumCPU() and so cannot drift from the
// engine's semantics. The default-worker output must match the serial run.
func TestParallelDefaultMatchesEngine(t *testing.T) {
	var def, serial, errOut strings.Builder
	if code := run([]string{"-exp", "fig4j"}, &def, &errOut); code != 0 {
		t.Fatalf("default run failed: %s", errOut.String())
	}
	if code := run([]string{"-exp", "fig4j", "-parallel", "1"}, &serial, &errOut); code != 0 {
		t.Fatalf("serial run failed: %s", errOut.String())
	}
	if def.String() != serial.String() {
		t.Error("default -parallel output differs from -parallel 1")
	}
	// The default value itself is part of the contract (0 = engine default).
	var help strings.Builder
	run([]string{"-h"}, &strings.Builder{}, &help)
	if !strings.Contains(help.String(), "GOMAXPROCS") {
		t.Error("-parallel help text does not document the GOMAXPROCS default")
	}
}

func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out, errOut strings.Builder
	code := run([]string{"-exp", "fig4j", "-cpuprofile", cpu, "-memprofile", mem}, &out, &errOut)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, errOut.String())
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
	if out.Len() == 0 {
		t.Error("experiment output missing")
	}
}
