package main

import (
	"strings"
	"testing"
)

func TestMixedTraceCSV(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-kind", "mixed", "-n", "20", "-seed", "7"}, &out, &errOut); code != 0 {
		t.Fatalf("mixed run returned %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.HasPrefix(got, "# trace mixed-mt-7: 20 phases") {
		t.Errorf("header line: %q", got)
	}
	if !strings.Contains(got, "duration_s,type,cstate,ar\n") {
		t.Errorf("missing CSV header: %q", got)
	}
	// Header comment + CSV header + one row per phase.
	if lines := strings.Count(got, "\n"); lines != 22 {
		t.Errorf("%d lines, want 22", lines)
	}
}

func TestMixedTraceDeterministic(t *testing.T) {
	var a, b, errOut strings.Builder
	if code := run([]string{"-n", "50", "-seed", "3"}, &a, &errOut); code != 0 {
		t.Fatal(errOut.String())
	}
	if code := run([]string{"-n", "50", "-seed", "3"}, &b, &errOut); code != 0 {
		t.Fatal(errOut.String())
	}
	if a.String() != b.String() {
		t.Error("equal seeds produced different traces")
	}
	var c strings.Builder
	if code := run([]string{"-n", "50", "-seed", "4"}, &c, &errOut); code != 0 {
		t.Fatal(errOut.String())
	}
	if a.String() == c.String() {
		t.Error("different seeds produced identical traces")
	}
}

func TestBatteryTrace(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-kind", "battery", "-workload", "Video Playback", "-frames", "2"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("battery run returned %d, stderr: %s", code, errOut.String())
	}
	got := out.String()
	if !strings.Contains(got, "# trace Video Playback:") {
		t.Errorf("header: %q", got)
	}
	// Video playback cycles C0MIN -> C2 -> C8 each frame.
	for _, state := range []string{"C0MIN", "C2", "C8"} {
		if !strings.Contains(got, ","+state+",") {
			t.Errorf("missing %s phase: %q", state, got)
		}
	}
}

func TestBadInputsExitNonZero(t *testing.T) {
	cases := map[string][]string{
		"unknown kind":     {"-kind", "fractal"},
		"unknown type":     {"-type", "zz"},
		"unknown workload": {"-kind", "battery", "-workload", "Mining"},
		"bad idle":         {"-idle", "2"},
	}
	for name, args := range cases {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code == 0 {
			t.Errorf("%s: exit code 0, want non-zero", name)
		}
		if !strings.Contains(errOut.String(), "tracegen:") {
			t.Errorf("%s: stderr %q lacks error prefix", name, errOut.String())
		}
	}
}

func TestHelpExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-h"}, &out, &errOut); code != 0 {
		t.Errorf("-h returned %d, want 0", code)
	}
	if !strings.Contains(errOut.String(), "-kind") {
		t.Errorf("help text %q does not describe -kind", errOut.String())
	}
}
