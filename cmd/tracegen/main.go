// Command tracegen emits synthetic workload phase traces as CSV, standing
// in for the paper's ~5000 measured benchmark traces (§4.1). Each row is
// one phase: duration (s), workload type, package C-state, and application
// ratio.
//
// Usage:
//
//	tracegen -kind mixed -n 200 -seed 7
//	tracegen -kind battery -workload "Video Playback" -frames 20
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
)

func main() {
	kind := flag.String("kind", "mixed", "trace kind: mixed, battery")
	n := flag.Int("n", 100, "number of phases (mixed)")
	seed := flag.Int64("seed", 1, "random seed (mixed)")
	wtype := flag.String("type", "mt", "workload type for mixed traces: st, mt, gfx")
	idle := flag.Float64("idle", 0.2, "fraction of idle phases (mixed)")
	name := flag.String("workload", "Video Playback", "battery workload name")
	frames := flag.Int("frames", 10, "frames (battery)")
	flag.Parse()

	var tr workload.Trace
	switch *kind {
	case "mixed":
		t := workload.MultiThread
		switch *wtype {
		case "st":
			t = workload.SingleThread
		case "gfx":
			t = workload.Graphics
		}
		g := workload.NewGenerator(*seed)
		tr = g.Mixed(fmt.Sprintf("mixed-%s-%d", *wtype, *seed), t, *n, 0.3, 0.85, *idle)
	case "battery":
		var bw *workload.BatteryWorkload
		for _, w := range workload.BatteryLifeWorkloads() {
			if w.Name == *name {
				w := w
				bw = &w
				break
			}
		}
		if bw == nil {
			fmt.Fprintf(os.Stderr, "tracegen: unknown battery workload %q\n", *name)
			os.Exit(1)
		}
		tr = workload.BatteryTrace(*bw, *frames, 1.0/60)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown kind %q\n", *kind)
		os.Exit(1)
	}

	fmt.Printf("# trace %s: %d phases, %.3fs total\n", tr.Name, len(tr.Phases), tr.Duration())
	fmt.Println("duration_s,type,cstate,ar")
	for _, ph := range tr.Phases {
		fmt.Printf("%.6f,%s,%s,%.3f\n", ph.Duration, ph.Type, ph.CState, ph.AR)
	}
}
