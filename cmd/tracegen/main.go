// Command tracegen emits synthetic workload phase traces as CSV, standing
// in for the paper's ~5000 measured benchmark traces (§4.1). Each row is
// one phase: duration (s), workload type, package C-state, and application
// ratio. It is built entirely on the public repro/flexwatts surface.
//
// Usage:
//
//	tracegen -kind mixed -n 200 -seed 7
//	tracegen -kind battery -workload "Video Playback" -frames 20
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/flexwatts"
)

// run is the testable entry point: it parses args, generates the trace,
// writes the CSV to stdout, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	kind := fs.String("kind", "mixed", "trace kind: mixed, battery")
	n := fs.Int("n", 100, "number of phases (mixed)")
	seed := fs.Int64("seed", 1, "random seed (mixed)")
	wtype := fs.String("type", "mt", "workload type for mixed traces: st, mt, gfx")
	idle := fs.Float64("idle", 0.2, "fraction of idle phases (mixed)")
	name := fs.String("workload", "Video Playback", "battery workload name")
	frames := fs.Int("frames", 10, "frames (battery)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	fail := func(format string, a ...interface{}) int {
		fmt.Fprintf(stderr, "tracegen: "+format+"\n", a...)
		return 1
	}

	var tr flexwatts.Trace
	switch *kind {
	case "mixed":
		t, err := flexwatts.ParseWorkloadType(*wtype)
		if err != nil || t == flexwatts.WorkloadUnset {
			return fail("unknown workload type %q (st, mt, gfx)", *wtype)
		}
		if !(*idle >= 0 && *idle <= 1) {
			return fail("idle fraction %g outside [0,1]", *idle)
		}
		g := flexwatts.NewTraceGenerator(*seed)
		tr = g.Mixed(fmt.Sprintf("mixed-%s-%d", *wtype, *seed), t, *n, 0.3, 0.85, *idle)
	case "battery":
		var bw *flexwatts.BatteryWorkload
		for _, w := range flexwatts.BatteryLifeWorkloads() {
			if w.Name == *name {
				w := w
				bw = &w
				break
			}
		}
		if bw == nil {
			return fail("unknown battery workload %q", *name)
		}
		tr = flexwatts.BatteryTrace(*bw, *frames, 1.0/60)
	default:
		return fail("unknown kind %q (mixed, battery)", *kind)
	}

	fmt.Fprintf(stdout, "# trace %s: %d phases, %.3fs total\n", tr.Name, len(tr.Phases), tr.Duration())
	fmt.Fprintln(stdout, "duration_s,type,cstate,ar")
	for _, ph := range tr.Phases {
		fmt.Fprintf(stdout, "%.6f,%s,%s,%.3f\n", ph.Duration, ph.Workload, ph.CState, ph.AR)
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
