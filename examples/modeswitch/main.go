// modeswitch demonstrates FlexWatts' dynamic behavior: a bursty trace
// alternates between compute-heavy phases and idle periods, and the mode
// controller switches the hybrid PDN between IVR-Mode and LDO-Mode through
// the 94 µs voltage-noise-free flow. The example compares FlexWatts (with a
// realistic noisy activity sensor) against the static PDNs on the same
// trace and prints the switch count and overhead. Traces, sensors and the
// simulator are all part of the public flexwatts surface.
package main

import (
	"fmt"
	"log"

	"repro/flexwatts"
)

func main() {
	c, err := flexwatts.NewClient()
	if err != nil {
		log.Fatal(err)
	}

	// A bursty multi-threaded workload on an 18 W laptop: AR wanders over
	// a wide range with 30 % idle phases — the regime where neither static
	// mode wins everywhere.
	gen := flexwatts.NewTraceGenerator(7)
	tr := gen.Mixed("bursty-mt", flexwatts.MultiThread, 400, 0.30, 0.85, 0.30)
	const tdp = flexwatts.Watt(18)
	fmt.Printf("Trace %q: %d phases, %.2fs simulated, TDP %gW\n\n", tr.Name, len(tr.Phases), tr.Duration(), float64(tdp))

	fmt.Printf("%-10s %10s %9s %9s %9s\n", "PDN", "energy(J)", "avgP(W)", "ETEE", "switches")
	for _, k := range []flexwatts.Kind{flexwatts.IVR, flexwatts.MBVR, flexwatts.LDO} {
		rep, err := c.SimulateTrace(k, tdp, tr, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %10.3f %8.3fW %8.1f%% %9s\n", k, rep.Energy, float64(rep.AvgPower), rep.AvgETEE*100, "-")
	}

	rep, err := c.SimulateTrace(flexwatts.FlexWatts, tdp, tr, flexwatts.NewSensor(99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %10.3f %8.3fW %8.1f%% %9d\n", "FlexWatts", rep.Energy, float64(rep.AvgPower), rep.AvgETEE*100, rep.ModeSwitches)
	fmt.Printf("\nFlexWatts switch overhead: %.0fus total (%.4f%% of runtime)\n",
		rep.SwitchOverhead*1e6, rep.SwitchOverhead/rep.Duration*100)
	for mode, t := range rep.ModeTime {
		fmt.Printf("  %s residency: %.1f%%\n", mode, t/rep.Duration*100)
	}
}
