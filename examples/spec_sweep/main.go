// spec_sweep reproduces the paper's headline performance result (Fig 7 /
// Fig 8(a)): it sweeps the SPEC CPU2006 suite across TDPs and reports each
// PDN's average performance normalized to the IVR baseline, showing the
// crossover between LDO-friendly low TDPs and IVR-friendly high TDPs — and
// FlexWatts tracking the best of both.
package main

import (
	"fmt"
	"log"

	"repro/flexwatts"
	"repro/internal/core"
	"repro/internal/pdn"
	"repro/internal/perf"
	"repro/internal/workload"
	"repro/pdnspot"
)

func main() {
	ps, err := pdnspot.New()
	if err != nil {
		log.Fatal(err)
	}
	fw, err := flexwatts.New()
	if err != nil {
		log.Fatal(err)
	}

	suite := workload.SPECCPU2006()
	base, err := ps.Model(pdnspot.IVR)
	if err != nil {
		log.Fatal(err)
	}
	ev := perf.NewEvaluator(ps.Platform(), base)

	fmt.Println("SPEC CPU2006 average performance vs IVR (higher is better)")
	fmt.Printf("%-5s %8s %8s %8s %8s\n", "TDP", "MBVR", "LDO", "I+MBVR", "FlexWatts")
	for _, tdp := range workload.StandardTDPs() {
		candidates := []pdn.Model{}
		for _, k := range []pdnspot.Kind{pdnspot.MBVR, pdnspot.LDO, pdnspot.IMBVR} {
			m, err := ps.Model(k)
			if err != nil {
				log.Fatal(err)
			}
			candidates = append(candidates, m)
		}
		candidates = append(candidates, core.NewAutoModel(fw.Model(), fw.Predictor(), tdp))
		avg, err := ev.SuiteAverage(tdp, suite, candidates)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5g %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", tdp,
			avg[pdnspot.MBVR]*100, avg[pdnspot.LDO]*100,
			avg[pdnspot.IMBVR]*100, avg[pdn.FlexWatts]*100)
	}
	fmt.Println("\nAt 4W the hybrid runs LDO-Mode and gains like LDO; at 50W it runs")
	fmt.Println("IVR-Mode and keeps the IVR PDN's high-power efficiency.")
}
