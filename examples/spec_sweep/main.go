// spec_sweep reproduces the paper's headline performance result (Fig 7 /
// Fig 8(a)): it sweeps the SPEC CPU2006 suite across TDPs and reports each
// PDN's average performance normalized to the IVR baseline, showing the
// crossover between LDO-friendly low TDPs and IVR-friendly high TDPs — and
// FlexWatts tracking the best of both. One SuiteRelativePerformance call
// per TDP does what previously took internal model plumbing.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/flexwatts"
)

func main() {
	ctx := context.Background()
	c, err := flexwatts.NewClient()
	if err != nil {
		log.Fatal(err)
	}

	suite := flexwatts.SPECCPU2006()
	candidates := []flexwatts.Kind{flexwatts.MBVR, flexwatts.LDO, flexwatts.IMBVR, flexwatts.FlexWatts}

	fmt.Println("SPEC CPU2006 average performance vs IVR (higher is better)")
	fmt.Printf("%-5s %8s %8s %8s %8s\n", "TDP", "MBVR", "LDO", "I+MBVR", "FlexWatts")
	for _, tdp := range flexwatts.StandardTDPs() {
		avg, err := c.SuiteRelativePerformance(ctx, tdp, suite, candidates)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5g %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n", float64(tdp),
			avg[flexwatts.MBVR]*100, avg[flexwatts.LDO]*100,
			avg[flexwatts.IMBVR]*100, avg[flexwatts.FlexWatts]*100)
	}
	fmt.Println("\nAt 4W the hybrid runs LDO-Mode and gains like LDO; at 50W it runs")
	fmt.Println("IVR-Mode and keeps the IVR PDN's high-power efficiency.")
}
