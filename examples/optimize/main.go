// optimize runs the design-space optimizer end to end: a Pareto search
// over PDN architectures crossed with load-line, guardband and VR-sizing
// scales, scored on cost, area, battery drain and relative performance.
// It shows the buffered verb, the incremental streaming verb, and the
// seed-reproducibility contract — same seed, same spec, byte-identical
// frontier regardless of worker count.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	"repro/flexwatts"
)

func main() {
	ctx := context.Background()
	c, err := flexwatts.NewClient()
	if err != nil {
		log.Fatal(err)
	}

	// A compact exhaustive search: three architectures crossed with three
	// guardband scales, scored on the cost/battery plane.
	spec := flexwatts.OptimizeSpec{
		TDP:             15,
		PDNs:            []flexwatts.Kind{flexwatts.FlexWatts, flexwatts.IVR, flexwatts.LDO},
		LoadlineScales:  []float64{1},
		GuardbandScales: []float64{0.75, 1, 1.25},
		Objectives:      []flexwatts.Objective{flexwatts.ObjectiveCost, flexwatts.ObjectiveBattery},
	}
	res, err := c.Optimize(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s search: %d of %d candidates evaluated, %d on the cost/battery frontier\n",
		res.Strategy, res.Evaluated, res.SpaceSize, len(res.Frontier))
	for _, p := range res.Frontier {
		fmt.Printf("  %-9s gb x%.2f  cost %.2f  battery %.2f W\n",
			p.Config.PDN, p.Config.GuardbandScale, p.Scores.Cost, float64(p.Scores.BatteryPower))
	}

	// The full five-axis space with all four objectives: sample it with
	// seeded simulated-annealing chains instead of enumerating, and stream
	// the search to watch the frontier assemble.
	big := flexwatts.OptimizeSpec{
		TDP:             18,
		LoadlineScales:  []float64{0.5, 0.8, 1, 1.25, 2},
		GuardbandScales: []float64{0.5, 0.75, 1, 1.25, 2},
		VRScales:        []float64{0.8, 1, 1.5},
		Strategy:        flexwatts.StrategyAnneal,
		Seed:            42,
		Budget:          64,
		Chains:          4,
		MaxCost:         2.5, // feasibility ceiling: drop designs pricier than 2.5x IVR
	}
	var frontierEvents int
	stream, err := c.OptimizeStream(ctx, big, func(ev flexwatts.OptimizeEvent) error {
		if ev.Kind == flexwatts.OptimizeFrontier {
			frontierEvents++
		}
		return nil // returning an error here would abort the search
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s search: %d of %d candidates, %d frontier events, %d survivors\n",
		stream.Strategy, stream.Evaluated, stream.SpaceSize, frontierEvents, len(stream.Frontier))

	// Determinism: rerunning the same seeded spec reproduces the result
	// byte for byte, whatever the worker count.
	narrow, err := flexwatts.NewClient(flexwatts.WithWorkers(1))
	if err != nil {
		log.Fatal(err)
	}
	again, err := narrow.Optimize(ctx, big)
	if err != nil {
		log.Fatal(err)
	}
	a, _ := json.Marshal(stream)
	b, _ := json.Marshal(again)
	fmt.Printf("seed %d reproducible across worker counts: %v\n", big.Seed, string(a) == string(b))
}
