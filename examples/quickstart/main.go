// Quickstart: evaluate the three commonly-used PDNs and FlexWatts at one
// operating point and print their end-to-end efficiencies — the 30-second
// tour of the library. Everything here is the public repro/flexwatts +
// repro/pdnspot surface: no internal packages.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/flexwatts"
	"repro/pdnspot"
)

func main() {
	ctx := context.Background()
	ps, err := pdnspot.New()
	if err != nil {
		log.Fatal(err)
	}
	fw, err := flexwatts.NewClient()
	if err != nil {
		log.Fatal(err)
	}

	// A 4 W tablet running a multi-threaded workload at 60 % application
	// ratio — the regime where the paper finds the state-of-the-art IVR
	// PDN weakest.
	pt := pdnspot.Point{TDP: 4, Workload: pdnspot.MultiThread, AR: 0.6}
	fmt.Printf("Operating point: %gW TDP, %s, AR %.0f%%\n\n", float64(pt.TDP), pt.Workload, pt.AR*100)

	for _, k := range []pdnspot.Kind{pdnspot.IVR, pdnspot.MBVR, pdnspot.LDO, pdnspot.IMBVR} {
		r, err := ps.Evaluate(ctx, k, pt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s ETEE %.1f%%  (draws %.2fW for %.2fW of load)\n",
			k.String(), r.ETEE*100, float64(r.PIn), float64(r.PNomTotal))
	}

	fr, err := fw.Evaluate(ctx, flexwatts.Point{TDP: pt.TDP, Workload: pt.Workload, AR: pt.AR})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s ETEE %.1f%%  (Algorithm 1 selected %s)\n", "FlexWatts", fr.ETEE*100, fr.Mode)

	// Validate the IVR model against the time-stepped reference simulator,
	// the reproduction's stand-in for the paper's lab measurements.
	pred, meas, acc, err := ps.ValidateAgainstReference(ctx, pdnspot.IVR, pt, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPDNspot validation (IVR): predicted %.1f%%, measured %.1f%%, accuracy %.2f%%\n",
		pred*100, meas*100, acc*100)
}
