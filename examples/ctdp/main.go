// ctdp demonstrates the power-budget-management loop under configurable
// TDP (the paper's motivation for one PDN serving a whole product family):
// the PMU reallocates budget and DVFS points as the platform's TDP is
// reconfigured at runtime, and a higher-ETEE PDN sustains measurably higher
// clocks from the same TDP — the §3.3 mechanism end to end.
package main

import (
	"fmt"
	"log"

	"repro/internal/pdn"
	"repro/internal/pmu"
	"repro/internal/workload"
	"repro/pdnspot"
)

func main() {
	ps, err := pdnspot.New()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("PBM allocations for a multi-threaded workload (AR 60%) under cTDP")
	fmt.Printf("%-5s %-8s %10s %10s %10s %8s\n", "TDP", "PDN", "coreclk", "corebudget", "pdnloss", "ETEE")
	for _, tdp := range []float64{4, 10, 18, 36, 50} {
		for _, k := range []pdnspot.Kind{pdnspot.IVR, pdnspot.LDO} {
			m, err := ps.Model(k)
			if err != nil {
				log.Fatal(err)
			}
			mg := pmu.NewManager(ps.Platform(), m, tdp)
			a, err := mg.Allocate(workload.MultiThread, 0.6)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-5g %-8s %7.1fGHz %9.2fW %9.2fW %7.1f%%\n",
				tdp, k, a.CoreFreq/1e9, a.CoreBudget, a.PDNLossBudget, a.ETEE*100)
		}
	}

	// Runtime cTDP-down: the same manager reconfigured from 18W to 10W.
	m, _ := ps.Model(pdn.LDO)
	mg := pmu.NewManager(ps.Platform(), m, 18)
	before, _ := mg.Allocate(workload.MultiThread, 0.6)
	if err := mg.SetTDP(10); err != nil {
		log.Fatal(err)
	}
	after, _ := mg.Allocate(workload.MultiThread, 0.6)
	fmt.Printf("\ncTDP-down 18W -> 10W on LDO: core clock %.1fGHz -> %.1fGHz\n",
		before.CoreFreq/1e9, after.CoreFreq/1e9)
}
