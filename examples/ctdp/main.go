// ctdp demonstrates the power-budget-management loop under configurable
// TDP (the paper's motivation for one PDN serving a whole product family):
// the PMU reallocates budget and DVFS points as the platform's TDP is
// reconfigured at runtime, and a higher-ETEE PDN sustains measurably higher
// clocks from the same TDP — the §3.3 mechanism end to end, driven through
// flexwatts.Client.Allocate.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/flexwatts"
)

func main() {
	ctx := context.Background()
	c, err := flexwatts.NewClient()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("PBM allocations for a multi-threaded workload (AR 60%) under cTDP")
	fmt.Printf("%-5s %-8s %10s %10s %10s %8s\n", "TDP", "PDN", "coreclk", "corebudget", "pdnloss", "ETEE")
	for _, tdp := range []flexwatts.Watt{4, 10, 18, 36, 50} {
		for _, k := range []flexwatts.Kind{flexwatts.IVR, flexwatts.LDO} {
			a, err := c.Allocate(ctx, k, tdp, flexwatts.MultiThread, 0.6)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-5g %-8s %7.1fGHz %9.2fW %9.2fW %7.1f%%\n",
				float64(tdp), k, a.CoreFreq/1e9, float64(a.CoreBudget), float64(a.PDNLossBudget), a.ETEE*100)
		}
	}

	// Runtime cTDP-down: the same PDN reconfigured from 18W to 10W.
	before, err := c.Allocate(ctx, flexwatts.LDO, 18, flexwatts.MultiThread, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	after, err := c.Allocate(ctx, flexwatts.LDO, 10, flexwatts.MultiThread, 0.6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncTDP-down 18W -> 10W on LDO: core clock %.1fGHz -> %.1fGHz\n",
		before.CoreFreq/1e9, after.CoreFreq/1e9)
}
