// batterylife reproduces Fig 8(c): the average platform power of the four
// battery-life workloads (video playback, video conferencing, web browsing,
// light gaming) under each PDN, using the paper's residency-weighted state
// power formula. The IVR PDN pays its two-stage conversion losses even in
// deep package C-states, which is why FlexWatts (in LDO-Mode) cuts video
// playback power by ~11-12 %. One flexwatts.Client serves every PDN,
// including the hybrid.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/flexwatts"
)

func main() {
	ctx := context.Background()
	c, err := flexwatts.NewClient()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Battery-life average power (W); lower is better")
	fmt.Printf("%-16s %7s %7s %7s %7s %10s\n", "Workload", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")

	for _, bw := range flexwatts.BatteryLifeWorkloads() {
		fmt.Printf("%-16s", bw.Name)
		for _, k := range flexwatts.Kinds() {
			p, err := c.BatteryLifePower(ctx, k, bw)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %6.3fW", float64(p))
		}
		p, err := c.BatteryLifePower(ctx, flexwatts.FlexWatts, bw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" %8.3fW\n", float64(p))
	}
}
