// batterylife reproduces Fig 8(c): the average platform power of the four
// battery-life workloads (video playback, video conferencing, web browsing,
// light gaming) under each PDN, using the paper's residency-weighted state
// power formula. The IVR PDN pays its two-stage conversion losses even in
// deep package C-states, which is why FlexWatts (in LDO-Mode) cuts video
// playback power by ~11-12 %.
package main

import (
	"fmt"
	"log"

	"repro/flexwatts"
	"repro/internal/domain"
	"repro/internal/workload"
	"repro/pdnspot"
)

func main() {
	ps, err := pdnspot.New()
	if err != nil {
		log.Fatal(err)
	}
	fw, err := flexwatts.New()
	if err != nil {
		log.Fatal(err)
	}

	kinds := []pdnspot.Kind{pdnspot.IVR, pdnspot.MBVR, pdnspot.LDO, pdnspot.IMBVR}
	fmt.Println("Battery-life average power (W); lower is better")
	fmt.Printf("%-16s %7s %7s %7s %7s %10s\n", "Workload", "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")

	for _, bw := range workload.BatteryLifeWorkloads() {
		fmt.Printf("%-16s", bw.Name)
		for _, k := range kinds {
			p := bw.AveragePower(ps.Platform(), func(c domain.CState) float64 {
				r, err := ps.EvaluateCState(k, c)
				if err != nil {
					log.Fatal(err)
				}
				return r.ETEE
			})
			fmt.Printf(" %6.3fW", p)
		}
		p := bw.AveragePower(fw.Platform(), func(c domain.CState) float64 {
			r, err := fw.Evaluate(flexwatts.Point{CState: c})
			if err != nil {
				log.Fatal(err)
			}
			return r.ETEE
		})
		fmt.Printf(" %8.3fW\n", p)
	}
}
