// designspace uses PDNspot the way the paper intends architects to: as a
// multi-dimensional exploration tool. It sweeps two design parameters — the
// compute load-line impedance and the VR tolerance band — and shows how each
// PDN's ETEE responds, then sweeps the FlexWatts sharing penalty to show the
// cost of the hybrid's shared routing.
package main

import (
	"fmt"
	"log"

	"repro/flexwatts"
	"repro/internal/pdn"
	"repro/internal/units"
	"repro/pdnspot"
)

func main() {
	pt := pdnspot.Point{TDP: 18, Workload: pdnspot.MultiThread, AR: 0.6}
	fmt.Printf("Design-space exploration at %gW TDP, %s, AR %.0f%%\n\n", pt.TDP, pt.Workload, pt.AR*100)

	fmt.Println("ETEE vs compute load-line impedance (MBVR V_Cores rail)")
	for _, mul := range []float64{0.5, 1.0, 1.5, 2.0, 3.0} {
		p := pdn.DefaultParams()
		p.CoresLL *= mul
		p.GfxLL *= mul
		ps, err := pdnspot.NewWithParams(p)
		if err != nil {
			log.Fatal(err)
		}
		r, err := ps.Evaluate(pdnspot.MBVR, pt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  RLL x%.1f (%.2f mOhm): MBVR ETEE %.1f%%\n", mul, p.CoresLL/units.Milli, r.ETEE*100)
	}

	fmt.Println("\nETEE vs tolerance band (all PDNs)")
	for _, tobMV := range []float64{10, 20, 30, 40} {
		p := pdn.DefaultParams()
		p.TOBIVR = units.MilliVolt(tobMV)
		p.TOBMBVR = units.MilliVolt(tobMV)
		p.TOBLDO = units.MilliVolt(tobMV)
		ps, err := pdnspot.NewWithParams(p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  TOB %2.0fmV:", tobMV)
		for _, k := range []pdnspot.Kind{pdnspot.IVR, pdnspot.MBVR, pdnspot.LDO} {
			r, err := ps.Evaluate(k, pt)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s %.1f%%", k, r.ETEE*100)
		}
		fmt.Println()
	}

	fmt.Println("\nFlexWatts ETEE vs hybrid-VR sharing penalty (input load-line factor)")
	for _, pen := range []float64{1.0, 1.1, 1.25, 1.5, 2.0} {
		p := pdn.DefaultParams()
		p.FlexSharePenalty = pen
		fw, err := flexwatts.NewWithParams(p)
		if err != nil {
			log.Fatal(err)
		}
		r, err := fw.Evaluate(flexwatts.Point{TDP: pt.TDP, Workload: pt.Workload, AR: pt.AR})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  penalty x%.2f: ETEE %.1f%% (%s)\n", pen, r.ETEE*100, r.Mode)
	}
}
