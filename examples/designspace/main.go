// designspace uses PDNspot the way the paper intends architects to: as a
// multi-dimensional exploration tool. It sweeps two design parameters — the
// compute load-line impedance and the VR tolerance band — and shows how each
// PDN's ETEE responds, then sweeps the FlexWatts sharing penalty to show the
// cost of the hybrid's shared routing. Every knob is a field of the public
// flexwatts.Params struct.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/flexwatts"
)

func main() {
	ctx := context.Background()
	pt := flexwatts.Point{TDP: 18, Workload: flexwatts.MultiThread, AR: 0.6}
	fmt.Printf("Design-space exploration at %gW TDP, %s, AR %.0f%%\n\n", float64(pt.TDP), pt.Workload, pt.AR*100)

	fmt.Println("ETEE vs compute load-line impedance (MBVR V_Cores rail)")
	for _, mul := range []float64{0.5, 1.0, 1.5, 2.0, 3.0} {
		p := flexwatts.DefaultParams()
		p.CoresLL *= mul
		p.GfxLL *= mul
		c, err := flexwatts.NewClient(flexwatts.WithParams(p))
		if err != nil {
			log.Fatal(err)
		}
		r, err := c.EvaluateKind(ctx, flexwatts.MBVR, pt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  RLL x%.1f (%.2f mOhm): MBVR ETEE %.1f%%\n", mul, p.CoresLL*1e3, r.ETEE*100)
	}

	fmt.Println("\nETEE vs tolerance band (all PDNs)")
	for _, tobMV := range []float64{10, 20, 30, 40} {
		p := flexwatts.DefaultParams()
		p.TOBIVR = tobMV * 1e-3
		p.TOBMBVR = tobMV * 1e-3
		p.TOBLDO = tobMV * 1e-3
		c, err := flexwatts.NewClient(flexwatts.WithParams(p))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  TOB %2.0fmV:", tobMV)
		for _, k := range []flexwatts.Kind{flexwatts.IVR, flexwatts.MBVR, flexwatts.LDO} {
			r, err := c.EvaluateKind(ctx, k, pt)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %s %.1f%%", k, r.ETEE*100)
		}
		fmt.Println()
	}

	fmt.Println("\nFlexWatts ETEE vs hybrid-VR sharing penalty (input load-line factor)")
	for _, pen := range []float64{1.0, 1.1, 1.25, 1.5, 2.0} {
		p := flexwatts.DefaultParams()
		p.FlexSharePenalty = pen
		c, err := flexwatts.NewClient(flexwatts.WithParams(p))
		if err != nil {
			log.Fatal(err)
		}
		r, err := c.Evaluate(ctx, pt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  penalty x%.2f: ETEE %.1f%% (%s)\n", pen, r.ETEE*100, r.Mode)
	}
}
