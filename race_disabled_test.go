//go:build !race

package repro_test

// raceDetectorEnabled reports whether this binary was built with -race.
const raceDetectorEnabled = false
