// Allocation-regression tests for the evaluation hot path. PR 2 made the
// whole closed-form pipeline zero-alloc (array-backed scenarios, value-array
// rail storage, in-place reference stepping); these tests pin that property
// with testing.AllocsPerRun so a future change cannot silently reintroduce
// per-evaluation garbage — the full-suite run issues millions of Evaluate
// calls, and even one small heap object per call costs double-digit
// percentages of wall time in GC.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/experiments"
	"repro/internal/pdn"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// allocScenarios returns representative evaluation points: an active
// multi-threaded point, a graphics point (exercises the LDO/overvolt rail
// paths), and a deep-idle point (exercises the power-state selection).
func allocScenarios(tb testing.TB) map[string]pdn.Scenario {
	tb.Helper()
	e := benchEnv(tb)
	mt, err := workload.TDPScenario(e.Platform, 18, workload.MultiThread, 0.6)
	if err != nil {
		tb.Fatal(err)
	}
	gfx, err := workload.TDPScenario(e.Platform, 25, workload.Graphics, 0.5)
	if err != nil {
		tb.Fatal(err)
	}
	return map[string]pdn.Scenario{
		"multithread-18W": mt,
		"graphics-25W":    gfx,
		"idle-C6":         workload.CStateScenario(e.Platform, domain.C6),
	}
}

// TestEvaluateAllocFree pins Evaluate at 0 allocs/op for all five PDN kinds
// (the four static baselines plus FlexWatts in both hybrid modes).
func TestEvaluateAllocFree(t *testing.T) {
	e := benchEnv(t)
	for name, s := range allocScenarios(t) {
		for _, k := range pdn.Kinds() {
			m := e.Baselines[k]
			if avg := testing.AllocsPerRun(200, func() {
				if _, err := m.Evaluate(s); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Errorf("%v.Evaluate(%s): %.1f allocs/op, want 0", k, name, avg)
			}
		}
		for _, mode := range core.Modes() {
			if avg := testing.AllocsPerRun(200, func() {
				if _, err := e.Flex.EvaluateMode(s, mode); err != nil {
					t.Fatal(err)
				}
			}); avg != 0 {
				t.Errorf("FlexWatts %v(%s): %.1f allocs/op, want 0", mode, name, avg)
			}
		}
	}
}

// TestPredictAllocFree pins Algorithm 1's table lookup at 0 allocs/op: the
// PMU performs it every 10 ms interval and the trace simulator every phase.
func TestPredictAllocFree(t *testing.T) {
	e := benchEnv(t)
	inputs := []core.Inputs{
		{TDP: 18, AR: 0.6, Type: workload.MultiThread, CState: domain.C0},
		{TDP: 4, AR: 0.4, Type: workload.Graphics, CState: domain.C0},
		{TDP: 18, AR: 0.6, Type: workload.SingleThread, CState: domain.C6},
	}
	for _, in := range inputs {
		in := in
		if avg := testing.AllocsPerRun(200, func() { e.Predictor.Predict(in) }); avg != 0 {
			t.Errorf("Predict(%+v): %.1f allocs/op, want 0", in, avg)
		}
	}
}

// TestControllerStepAllocFree pins the per-interval controller decision
// (predict + hysteresis + switch accounting) at 0 allocs/op.
func TestControllerStepAllocFree(t *testing.T) {
	e := benchEnv(t)
	ctrl := core.NewController(e.Predictor, core.DefaultSwitchFlow())
	high := core.Inputs{TDP: 50, AR: 0.8, Type: workload.MultiThread, CState: domain.C0}
	low := core.Inputs{TDP: 4, AR: 0.3, Type: workload.SingleThread, CState: domain.C0}
	i := 0
	if avg := testing.AllocsPerRun(200, func() {
		// Alternate inputs so both the switching and the steady branch run.
		in := high
		if i%2 == 0 {
			in = low
		}
		i++
		ctrl.Step(10e-3, in)
	}); avg != 0 {
		t.Errorf("Controller.Step: %.1f allocs/op, want 0", avg)
	}
}

// TestDatasetAllocBudget pins the typed-dataset driver path on a warm
// cache: every PDN evaluation hits the memoized cache (0 allocs, pinned
// above), so what remains is the dataset structure itself — tables, rows,
// one rendered text string per cell, the metadata map. The budgets have
// ~50 % headroom over the measured counts; a per-cell string-churn
// regression (re-formatting cells, rendering mid-sweep, per-cell interface
// boxing) multiplies the count well past them.
func TestDatasetAllocBudget(t *testing.T) {
	e := benchEnv(t)
	serial := *e
	serial.Workers = 1 // keep goroutine machinery out of the measurement
	budgets := map[string]float64{
		"fig4j": 110, // 6 rows × 4 cells (measured: 70)
		"fig5":  260, // 9 rows × 9 cells (measured: 173)
	}
	for id, budget := range budgets {
		if _, err := experiments.Dataset(id, &serial); err != nil { // warm the cache
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(100, func() {
			if _, err := experiments.Dataset(id, &serial); err != nil {
				t.Fatal(err)
			}
		})
		if avg > budget {
			t.Errorf("%s warm Dataset: %.1f allocs/op, budget %.0f", id, avg, budget)
		}
	}
}

// TestCacheHitAllocFree pins the memoized evaluation path: once a key is
// cached, concurrent-safe hits must not allocate (the sharded cache reads
// under an RLock and hands back the Result value array by copy).
func TestCacheHitAllocFree(t *testing.T) {
	e := benchEnv(t)
	s := allocScenarios(t)["multithread-18W"]
	c := sweep.NewCache()
	m := e.Baselines[pdn.IVR]
	if _, err := c.Evaluate(m, s); err != nil { // warm the key
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(200, func() {
		if _, err := c.Evaluate(m, s); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("cache hit: %.1f allocs/op, want 0", avg)
	}
	if hits, misses := c.Stats(); hits < 200 || misses != 1 {
		t.Errorf("stats hits=%d misses=%d, want >=200 hits and exactly 1 miss", hits, misses)
	}
}

// nullTier is the cheapest possible sweep.Tier; the hit path must not even
// reach it.
type nullTier struct{}

func (nullTier) Put(pdn.Kind, pdn.Scenario, pdn.Result) {}

// TestCacheHitWithTierAllocFree pins that attaching a persistent tier —
// the disk cache under the memory cache — leaves the hit path at 0
// allocs/op, for both computed and warm-start-preloaded entries. The tier
// is write-behind off the miss path only; hits never touch it.
func TestCacheHitWithTierAllocFree(t *testing.T) {
	e := benchEnv(t)
	scenarios := allocScenarios(t)
	computed := scenarios["multithread-18W"]
	preloaded := scenarios["graphics-25W"]
	c := sweep.NewCache()
	c.AttachTier(nullTier{})
	m := e.Baselines[pdn.IVR]
	if _, err := c.Evaluate(m, computed); err != nil { // warm by computing
		t.Fatal(err)
	}
	res, err := m.Evaluate(preloaded)
	if err != nil {
		t.Fatal(err)
	}
	c.Preload(pdn.IVR, preloaded, res) // warm by tier replay
	for name, s := range map[string]pdn.Scenario{"computed": computed, "preloaded": preloaded} {
		if avg := testing.AllocsPerRun(200, func() {
			if _, err := c.Evaluate(m, s); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("%s hit with tier attached: %.1f allocs/op, want 0", name, avg)
		}
	}
	if c.WarmHits() < 200 {
		t.Errorf("WarmHits = %d, want >= 200", c.WarmHits())
	}
}

// TestEvaluateGridAllocFree pins the batch kernels at 0 allocs/op for a
// whole 4128-point grid call — not merely per point: the SoA columns are
// caller-owned, the runners are stack state, and the mask prepass uses a
// fixed stack block, so nothing on the path may touch the heap. All five
// PDN kinds plus FlexWatts in both hybrid modes.
func TestEvaluateGridAllocFree(t *testing.T) {
	e := benchEnv(t)
	g := gridBenchGrid(t)
	out := make([]pdn.Result, g.Len())
	for _, k := range pdn.Kinds() {
		m, ok := e.Baselines[k].(sweep.GridEvaluator)
		if !ok {
			t.Fatalf("%v baseline has no EvaluateGrid", k)
		}
		if avg := testing.AllocsPerRun(10, func() {
			if err := m.EvaluateGrid(g, out); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("%v.EvaluateGrid: %.1f allocs per grid call, want 0", k, avg)
		}
	}
	for _, mode := range core.Modes() {
		mode := mode
		if avg := testing.AllocsPerRun(10, func() {
			if err := e.Flex.EvaluateGridMode(g, out, mode); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("FlexWatts EvaluateGridMode(%v): %.1f allocs per grid call, want 0", mode, avg)
		}
	}
}

// TestGridArenaAllocFree pins the pooled request-arena cycle — the path
// the serving layer and the SDK take per batch request: check a lease out,
// fill its grid, take a result block, release. After the first cycle
// builds the backing storage, a steady-state cycle must not allocate at
// all; this is what keeps the daemon's warm pass allocation-free per
// request under fleet load.
func TestGridArenaAllocFree(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race detector drops sync.Pool puts; alloc/reuse pins do not hold")
	}
	s := allocScenarios(t)["multithread-18W"]
	var arena pdn.GridArena
	cycle := func() {
		l := arena.Get()
		g := l.Grid()
		for i := 0; i < 256; i++ {
			g.Append(s)
		}
		if len(l.Results(g.Len())) != g.Len() {
			t.Fatal("short result block")
		}
		l.Release()
	}
	cycle() // build the lease, columns and result block once
	if avg := testing.AllocsPerRun(200, cycle); avg != 0 {
		t.Errorf("warm arena cycle: %.1f allocs/op, want 0", avg)
	}
	if gets, reuses := arena.Stats(); reuses < gets-5 {
		t.Errorf("arena stats (%d gets, %d reuses): pool barely reusing", gets, reuses)
	}
}

// TestCacheGridAllocs pins the memoizing grid path on both sides of the
// cache: a warm repeat must allocate nothing at all (every key hits, no
// scratch grid is built), and the cold first pass may allocate only the
// cache's own bookkeeping — a small bounded number of objects per point
// (entry, interned key, shard map growth), not per-point evaluation
// garbage.
func TestCacheGridAllocs(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("race detector drops sync.Pool puts; the warm pass's pooled probe scratch may reallocate")
	}
	e := benchEnv(t)
	g := gridBenchGrid(t)
	out := make([]pdn.Result, g.Len())
	m := e.Baselines[pdn.IVR]

	cold := testing.AllocsPerRun(1, func() {
		c := sweep.NewCache()
		if err := c.EvaluateGrid(m, g, out); err != nil {
			t.Fatal(err)
		}
	})
	if perPoint := cold / float64(g.Len()); perPoint > 8 {
		t.Errorf("cold cache grid pass: %.2f allocs/point, budget 8", perPoint)
	}

	c := sweep.NewCache()
	if err := c.EvaluateGrid(m, g, out); err != nil { // warm every key
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(10, func() {
		if err := c.EvaluateGrid(m, g, out); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("warm cache grid repeat: %.1f allocs per call, want 0", avg)
	}
	if hits, misses := c.Stats(); misses != int64(g.Len()) || hits < int64(10*g.Len()) {
		t.Errorf("stats hits=%d misses=%d, want exactly %d misses and >=%d hits",
			hits, misses, g.Len(), 10*g.Len())
	}
}
