// TestPublicSurfaceSelfContained is the public-surface guard: the exported
// identifiers of the public packages must not reference any repro/internal
// type, so an external module importing them can construct every request
// and name every returned value. PRs 1–3 shipped "public" packages that
// were alias facades over internal types — compiling inside this repo but
// unusable outside it; this test makes that regression impossible.
package repro_test

import (
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"os/exec"
	"strings"
	"testing"
)

// publicPackages is the self-contained API surface contract. flexwatts/report
// rides along because flexwatts and flexwatts/api expose its Dataset/Format
// types.
var publicPackages = []string{
	"repro/flexwatts",
	"repro/flexwatts/api",
	"repro/flexwatts/client",
	"repro/flexwatts/report",
	"repro/pdnspot",
}

func TestPublicSurfaceSelfContained(t *testing.T) {
	// Resolve the packages through the go tool first: a typo or a deleted
	// package should fail loudly, not silently shrink the guard.
	out, err := exec.Command("go", append([]string{"list"}, publicPackages...)...).Output()
	if err != nil {
		t.Fatalf("go list %v: %v", publicPackages, err)
	}
	listed := strings.Fields(string(out))
	if len(listed) != len(publicPackages) {
		t.Fatalf("go list returned %v, want %v", listed, publicPackages)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	for _, path := range listed {
		pkg, err := imp.Import(path)
		if err != nil {
			t.Fatalf("type-check %s: %v", path, err)
		}
		g := &leakGuard{t: t, pkg: path, seen: map[types.Type]bool{}}
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			if !obj.Exported() {
				continue
			}
			g.checkObject(obj)
		}
		for _, want := range requiredExports[path] {
			if !hasExport(scope, want) {
				t.Errorf("%s no longer exports %s — the wire/SDK contract shrank", path, want)
			}
		}
	}
}

// requiredExports pins identifiers the public surface has promised:
// removing or renaming one is a breaking change for external importers
// and must fail here, not in a consumer's build. Only identifiers other
// packages are known to depend on are listed — this is a floor, not an
// inventory.
var requiredExports = map[string][]string{
	"repro/flexwatts/api": {
		"PathEvaluate", "PathEvaluateStream", "PathMetrics",
		"PathOptimize", "PathOptimizeStream",
		"EvalStreamResult", "Error",
		"OptimizeRequest", "OptimizeResponse", "OptimizeEvent",
		"ErrRateLimited", "ErrOverloaded", "ErrBatchTooLarge", "ErrInvalidSpec",
		"StatusFor", "CodeFor", "FromStatus", "FromCode", "Retryable",
	},
	"repro/flexwatts/client": {
		"Client.EvaluateStream", "Client.EvaluateBatch",
		"Client.Optimize", "Client.OptimizeStream",
		"WithRetries", "WithMaxRetryWait", "DefaultRetries",
	},
	"repro/flexwatts": {
		"Point", "Result", "NewClient",
		"OptimizeSpec", "OptimizeResult", "Client.Optimize", "Client.OptimizeStream",
		"Objective", "SearchStrategy",
	},
}

// hasExport resolves a required-exports entry: a bare name is a
// package-scope object, "Type.Method" is an exported method on a named
// type.
func hasExport(scope *types.Scope, name string) bool {
	typ, method, ok := strings.Cut(name, ".")
	if !ok {
		return scope.Lookup(name) != nil
	}
	tn, ok := scope.Lookup(typ).(*types.TypeName)
	if !ok {
		return false
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == method {
			return true
		}
	}
	return false
}

// leakGuard walks the reachable exported type graph of one package and
// reports every internal named type it can see.
type leakGuard struct {
	t    *testing.T
	pkg  string
	seen map[types.Type]bool
}

// checkObject inspects one exported package-scope object.
func (g *leakGuard) checkObject(obj types.Object) {
	where := g.pkg + "." + obj.Name()
	switch o := obj.(type) {
	case *types.Const, *types.Var:
		g.check(where, obj.Type())
	case *types.Func:
		g.check(where, o.Type())
	case *types.TypeName:
		if o.IsAlias() {
			// An alias IS the aliased type: aliasing an internal type is the
			// exact leak this guard exists for.
			g.check(where, types.Unalias(o.Type()))
			return
		}
		named, ok := o.Type().(*types.Named)
		if !ok {
			return
		}
		g.check(where, named.Underlying())
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Exported() {
				g.check(where+"."+m.Name(), m.Type())
			}
		}
	}
}

// check reports internal named types reachable from typ through exported
// structure: struct walks only exported fields (an unexported field holding
// an internal handle is the intended encapsulation pattern), signatures walk
// parameters and results, interfaces walk exported methods.
func (g *leakGuard) check(where string, typ types.Type) {
	typ = types.Unalias(typ)
	if g.seen[typ] {
		return
	}
	g.seen[typ] = true
	switch tt := typ.(type) {
	case *types.Named:
		if p := tt.Obj().Pkg(); p != nil && isInternal(p.Path()) {
			g.t.Errorf("%s references internal type %s.%s", where, p.Path(), tt.Obj().Name())
		}
		if args := tt.TypeArgs(); args != nil {
			for i := 0; i < args.Len(); i++ {
				g.check(where, args.At(i))
			}
		}
	case *types.Pointer:
		g.check(where, tt.Elem())
	case *types.Slice:
		g.check(where, tt.Elem())
	case *types.Array:
		g.check(where, tt.Elem())
	case *types.Chan:
		g.check(where, tt.Elem())
	case *types.Map:
		g.check(where, tt.Key())
		g.check(where, tt.Elem())
	case *types.Signature:
		for i := 0; i < tt.Params().Len(); i++ {
			g.check(fmt.Sprintf("%s(param %d)", where, i), tt.Params().At(i).Type())
		}
		for i := 0; i < tt.Results().Len(); i++ {
			g.check(fmt.Sprintf("%s(result %d)", where, i), tt.Results().At(i).Type())
		}
	case *types.Struct:
		for i := 0; i < tt.NumFields(); i++ {
			if f := tt.Field(i); f.Exported() {
				g.check(where+"."+f.Name(), f.Type())
			}
		}
	case *types.Interface:
		for i := 0; i < tt.NumMethods(); i++ {
			if m := tt.Method(i); m.Exported() {
				g.check(where+"."+m.Name(), m.Type())
			}
		}
	}
}

// isInternal reports whether an import path is shielded by a Go "internal"
// path element.
func isInternal(path string) bool {
	return strings.HasPrefix(path, "internal/") || strings.Contains(path, "/internal/") ||
		strings.HasSuffix(path, "/internal")
}
