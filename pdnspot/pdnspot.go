// Package pdnspot is the public API of the PDNspot framework: a validated
// architectural model of client-processor power delivery networks (PDNs)
// that evaluates end-to-end power-conversion efficiency (ETEE), loss
// breakdowns, performance impact, bill of materials and board area for the
// commonly-used PDN architectures (MBVR, IVR, LDO, I+MBVR).
//
// Quick start:
//
//	ps, _ := pdnspot.New()
//	res, _ := ps.Evaluate(pdnspot.IVR, pdnspot.Point{
//		TDP: 4, Workload: pdnspot.MultiThread, AR: 0.6,
//	})
//	fmt.Println(res.ETEE)
//
// See the examples/ directory and the FlexWatts companion package
// (repro/flexwatts) for the adaptive hybrid PDN the paper proposes.
package pdnspot

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/perf"
	"repro/internal/refmodel"
	"repro/internal/units"
	"repro/internal/workload"
)

// PDN architecture identifiers, re-exported from the internal model.
const (
	IVR   = pdn.IVR
	MBVR  = pdn.MBVR
	LDO   = pdn.LDO
	IMBVR = pdn.IMBVR
)

// Workload type identifiers.
const (
	SingleThread = workload.SingleThread
	MultiThread  = workload.MultiThread
	Graphics     = workload.Graphics
)

// CState identifiers for battery-life evaluation points.
const (
	C0MIN = domain.C0MIN
	C2    = domain.C2
	C3    = domain.C3
	C6    = domain.C6
	C7    = domain.C7
	C8    = domain.C8
)

// Kind aliases the internal PDN kind type.
type Kind = pdn.Kind

// Result aliases the internal evaluation result (ETEE, PIn, breakdown).
type Result = pdn.Result

// Point is a PDN evaluation point: a TDP, a workload class and its
// application ratio — the axes of the paper's Fig 4.
type Point struct {
	// TDP is the thermal design power in watts (4–50).
	TDP units.Watt
	// Workload selects the workload class.
	Workload workload.Type
	// AR is the application ratio in (0, 1].
	AR float64
}

// PDNspot is the top-level framework handle. It is safe for concurrent use
// once constructed.
type PDNspot struct {
	platform *domain.Platform
	params   pdn.Params
	models   map[pdn.Kind]pdn.Model
}

// New constructs the framework with the paper's Table 2 calibration.
func New() (*PDNspot, error) {
	return NewWithParams(pdn.DefaultParams())
}

// NewWithParams constructs the framework with custom model parameters,
// enabling the multi-dimensional architecture-space exploration the paper
// describes (load-lines, tolerance bands, VR sizes).
func NewWithParams(p pdn.Params) (*PDNspot, error) {
	models := make(map[pdn.Kind]pdn.Model, 4)
	for _, k := range pdn.Kinds() {
		m, err := pdn.New(k, p)
		if err != nil {
			return nil, err
		}
		models[k] = m
	}
	return &PDNspot{
		platform: domain.NewClientPlatform(),
		params:   p,
		models:   models,
	}, nil
}

// Platform exposes the modeled client SoC.
func (ps *PDNspot) Platform() *domain.Platform { return ps.platform }

// Params returns the model parameters in use.
func (ps *PDNspot) Params() pdn.Params { return ps.params }

// Model returns the internal model for a PDN kind.
func (ps *PDNspot) Model(k Kind) (pdn.Model, error) {
	m, ok := ps.models[k]
	if !ok {
		return nil, fmt.Errorf("pdnspot: no model for %v (FlexWatts lives in package flexwatts)", k)
	}
	return m, nil
}

// Scenario builds the evaluation scenario for a point, exposing the raw
// per-domain loads for callers that want to tweak them.
func (ps *PDNspot) Scenario(pt Point) (pdn.Scenario, error) {
	return workload.TDPScenario(ps.platform, pt.TDP, pt.Workload, pt.AR)
}

// Evaluate computes the end-to-end power flow of a PDN at a point.
func (ps *PDNspot) Evaluate(k Kind, pt Point) (Result, error) {
	m, err := ps.Model(k)
	if err != nil {
		return Result{}, err
	}
	s, err := ps.Scenario(pt)
	if err != nil {
		return Result{}, err
	}
	return m.Evaluate(s)
}

// EvaluateCState computes the power flow in a battery-life package power
// state (Fig 4(j)).
func (ps *PDNspot) EvaluateCState(k Kind, c domain.CState) (Result, error) {
	m, err := ps.Model(k)
	if err != nil {
		return Result{}, err
	}
	return m.Evaluate(workload.CStateScenario(ps.platform, c))
}

// ValidateAgainstReference runs the time-stepped reference simulator on the
// same point and returns (predicted ETEE, measured ETEE, accuracy) — the
// §4.3 validation.
func (ps *PDNspot) ValidateAgainstReference(k Kind, pt Point, seed int64) (predicted, measured, accuracy float64, err error) {
	m, err := ps.Model(k)
	if err != nil {
		return 0, 0, 0, err
	}
	s, err := ps.Scenario(pt)
	if err != nil {
		return 0, 0, 0, err
	}
	r, err := m.Evaluate(s)
	if err != nil {
		return 0, 0, 0, err
	}
	cfg := refmodel.DefaultConfig()
	cfg.Seed = seed
	meas, err := refmodel.Measure(m, s, cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	return r.ETEE, meas.ETEE, refmodel.Accuracy(r.ETEE, meas.ETEE), nil
}

// RelativePerformance returns the performance of each candidate PDN on a
// workload, normalized to the IVR baseline (the Fig 7/8 presentation).
func (ps *PDNspot) RelativePerformance(tdp units.Watt, w workload.Workload, kinds []Kind) (map[Kind]perf.Result, error) {
	base, err := ps.Model(IVR)
	if err != nil {
		return nil, err
	}
	candidates := make([]pdn.Model, 0, len(kinds))
	for _, k := range kinds {
		if k == IVR {
			continue
		}
		m, err := ps.Model(k)
		if err != nil {
			return nil, err
		}
		candidates = append(candidates, m)
	}
	return perf.NewEvaluator(ps.platform, base).Compare(tdp, w, candidates)
}

// CostAndArea returns BOM and board area of every PDN at a TDP, normalized
// to IVR (Fig 8(d,e)).
func (ps *PDNspot) CostAndArea(tdp units.Watt) (bom, area map[Kind]float64, err error) {
	return cost.Normalized(ps.platform, tdp)
}
