// Package pdnspot is the public API of the PDNspot framework: a validated
// architectural model of client-processor power delivery networks (PDNs)
// that evaluates end-to-end power-conversion efficiency (ETEE), loss
// breakdowns, performance impact, bill of materials and board area for the
// commonly-used PDN architectures (MBVR, IVR, LDO, I+MBVR).
//
// The package is a baseline-focused veneer over the repro/flexwatts front
// door: every type is the flexwatts vocabulary (defined types with String,
// Parse* and JSON round-tripping), so consumers of either package speak
// the same language and never touch the repository's internal model
// packages. The adaptive hybrid PDN itself lives in flexwatts; pdnspot
// deliberately serves only the four static baselines.
//
// Quick start:
//
//	ps, _ := pdnspot.New()
//	res, _ := ps.Evaluate(ctx, pdnspot.IVR, pdnspot.Point{
//		TDP: 4, Workload: pdnspot.MultiThread, AR: 0.6,
//	})
//	fmt.Println(res.ETEE)
package pdnspot

import (
	"context"
	"fmt"

	"repro/flexwatts"
)

// The evaluation vocabulary, shared with package flexwatts.
type (
	// Kind identifies a PDN architecture.
	Kind = flexwatts.Kind
	// Point is a PDN evaluation point (TDP, workload class, application
	// ratio — the axes of the paper's Fig 4 — or an idle CState).
	Point = flexwatts.Point
	// Result is an evaluation outcome (ETEE, power flow, loss breakdown).
	Result = flexwatts.Result
	// Params carries the PDN model constants of Table 2.
	Params = flexwatts.Params
	// Workload is one benchmark with its modeling inputs.
	Workload = flexwatts.Workload
	// PerfResult is a workload's modeled performance under one PDN.
	PerfResult = flexwatts.PerfResult
	// CState identifies a package power state.
	CState = flexwatts.CState
	// WorkloadType classifies a workload.
	WorkloadType = flexwatts.WorkloadType
	// Watt is a power in watts.
	Watt = flexwatts.Watt
)

// PDN architecture identifiers.
const (
	IVR   = flexwatts.IVR
	MBVR  = flexwatts.MBVR
	LDO   = flexwatts.LDO
	IMBVR = flexwatts.IMBVR
)

// Workload type identifiers.
const (
	SingleThread = flexwatts.SingleThread
	MultiThread  = flexwatts.MultiThread
	Graphics     = flexwatts.Graphics
)

// CState identifiers for battery-life evaluation points.
const (
	C0MIN = flexwatts.C0MIN
	C2    = flexwatts.C2
	C3    = flexwatts.C3
	C6    = flexwatts.C6
	C7    = flexwatts.C7
	C8    = flexwatts.C8
)

// DefaultParams returns the Table 2 calibration.
func DefaultParams() Params { return flexwatts.DefaultParams() }

// SPECCPU2006 returns the 29 SPEC CPU2006 benchmarks in Fig 7's order.
func SPECCPU2006() []Workload { return flexwatts.SPECCPU2006() }

// ThreeDMark06 returns the 3DMark06 graphics subtests (§7.1).
func ThreeDMark06() []Workload { return flexwatts.ThreeDMark06() }

// PDNspot is the top-level framework handle. It is safe for concurrent use
// once constructed.
type PDNspot struct {
	c *flexwatts.Client
}

// New constructs the framework with the paper's Table 2 calibration.
func New() (*PDNspot, error) {
	c, err := flexwatts.NewClient()
	if err != nil {
		return nil, err
	}
	return &PDNspot{c: c}, nil
}

// NewWithParams constructs the framework with custom model parameters,
// enabling the multi-dimensional architecture-space exploration the paper
// describes (load-lines, tolerance bands, VR sizes).
func NewWithParams(p Params) (*PDNspot, error) {
	c, err := flexwatts.NewClient(flexwatts.WithParams(p))
	if err != nil {
		return nil, err
	}
	return &PDNspot{c: c}, nil
}

// Params returns the model parameters in use.
func (ps *PDNspot) Params() Params { return ps.c.Params() }

// checkBaseline rejects the adaptive hybrid, which pdnspot deliberately
// does not serve.
func checkBaseline(k Kind) error {
	if k == flexwatts.FlexWatts {
		return fmt.Errorf("pdnspot: no model for %v (FlexWatts lives in package flexwatts)", k)
	}
	return nil
}

// Evaluate computes the end-to-end power flow of a baseline PDN at a
// point.
func (ps *PDNspot) Evaluate(ctx context.Context, k Kind, pt Point) (Result, error) {
	if err := checkBaseline(k); err != nil {
		return Result{}, err
	}
	return ps.c.EvaluateKind(ctx, k, pt)
}

// EvaluateCState computes the power flow in a battery-life package power
// state (Fig 4(j)).
func (ps *PDNspot) EvaluateCState(ctx context.Context, k Kind, c CState) (Result, error) {
	if err := checkBaseline(k); err != nil {
		return Result{}, err
	}
	return ps.c.EvaluateKind(ctx, k, Point{CState: c})
}

// EvaluateBatch evaluates every point concurrently on the deterministic
// sweep engine, honoring each point's own PDN field (results in input
// order; cancelling ctx aborts the batch).
func (ps *PDNspot) EvaluateBatch(ctx context.Context, pts []Point) ([]Result, error) {
	for i, pt := range pts {
		if err := checkBaseline(pt.PDN); err != nil {
			return nil, fmt.Errorf("point %d: %w", i, err)
		}
	}
	return ps.c.EvaluateBatch(ctx, pts)
}

// ValidateAgainstReference runs the time-stepped reference simulator on the
// same point and returns (predicted ETEE, measured ETEE, accuracy) — the
// §4.3 validation.
func (ps *PDNspot) ValidateAgainstReference(ctx context.Context, k Kind, pt Point, seed int64) (predicted, measured, accuracy float64, err error) {
	if err := checkBaseline(k); err != nil {
		return 0, 0, 0, err
	}
	return ps.c.ValidateAgainstReference(ctx, k, pt, seed)
}

// RelativePerformance returns the performance of each candidate PDN on a
// workload, normalized to the IVR baseline (the Fig 7/8 presentation).
func (ps *PDNspot) RelativePerformance(ctx context.Context, tdp Watt, w Workload, kinds []Kind) (map[Kind]PerfResult, error) {
	for _, k := range kinds {
		if err := checkBaseline(k); err != nil {
			return nil, err
		}
	}
	return ps.c.RelativePerformance(ctx, tdp, w, kinds)
}

// CostAndArea returns BOM and board area of every PDN at a TDP, normalized
// to IVR (Fig 8(d,e)).
func (ps *PDNspot) CostAndArea(ctx context.Context, tdp Watt) (bom, area map[Kind]float64, err error) {
	return ps.c.CostAndArea(ctx, tdp)
}
