package pdnspot_test

import (
	"testing"

	"repro/internal/pdn"
	"repro/internal/workload"
	"repro/pdnspot"
)

func TestEvaluateAllKinds(t *testing.T) {
	ps, err := pdnspot.New()
	if err != nil {
		t.Fatal(err)
	}
	pt := pdnspot.Point{TDP: 18, Workload: pdnspot.MultiThread, AR: 0.6}
	for _, k := range []pdnspot.Kind{pdnspot.IVR, pdnspot.MBVR, pdnspot.LDO, pdnspot.IMBVR} {
		r, err := ps.Evaluate(k, pt)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if !(r.ETEE > 0.5 && r.ETEE < 0.95) {
			t.Errorf("%v: implausible ETEE %g", k, r.ETEE)
		}
	}
	if _, err := ps.Model(pdn.FlexWatts); err == nil {
		t.Error("FlexWatts model should not be served by pdnspot")
	}
}

func TestEvaluateCState(t *testing.T) {
	ps, _ := pdnspot.New()
	r, err := ps.EvaluateCState(pdnspot.LDO, pdnspot.C8)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.PNomTotal > 0.1 && r.PNomTotal < 0.2) {
		t.Errorf("C8 nominal %g, want ~0.13W", r.PNomTotal)
	}
}

func TestValidateAgainstReference(t *testing.T) {
	ps, _ := pdnspot.New()
	pred, meas, acc, err := ps.ValidateAgainstReference(pdnspot.MBVR,
		pdnspot.Point{TDP: 18, Workload: pdnspot.SingleThread, AR: 0.5}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 || meas <= 0 || acc < 0.97 {
		t.Errorf("validation pred=%g meas=%g acc=%g", pred, meas, acc)
	}
}

func TestRelativePerformance(t *testing.T) {
	ps, _ := pdnspot.New()
	w := workload.SPECCPU2006().Workloads[28] // 416.gamess, fully scalable
	res, err := ps.RelativePerformance(4, w, []pdnspot.Kind{pdnspot.MBVR, pdnspot.LDO})
	if err != nil {
		t.Fatal(err)
	}
	if res[pdnspot.IVR].Relative != 1 {
		t.Error("baseline should be 1")
	}
	if !(res[pdnspot.LDO].Relative > 1.08) {
		t.Errorf("gamess at 4W should gain > 8%% on LDO, got %.3f", res[pdnspot.LDO].Relative)
	}
}

func TestCostAndArea(t *testing.T) {
	ps, _ := pdnspot.New()
	bom, area, err := ps.CostAndArea(18)
	if err != nil {
		t.Fatal(err)
	}
	if bom[pdnspot.IVR] != 1 || area[pdnspot.IVR] != 1 {
		t.Error("IVR not normalized")
	}
	if !(bom[pdnspot.MBVR] > bom[pdnspot.LDO]) {
		t.Error("MBVR should cost more than LDO")
	}
}

func TestCustomParams(t *testing.T) {
	p := pdn.DefaultParams()
	p.CoresLL *= 4
	ps, err := pdnspot.NewWithParams(p)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := pdnspot.New()
	pt := pdnspot.Point{TDP: 50, Workload: pdnspot.MultiThread, AR: 0.6}
	r1, _ := ps.Evaluate(pdnspot.MBVR, pt)
	r0, _ := base.Evaluate(pdnspot.MBVR, pt)
	if !(r1.ETEE < r0.ETEE) {
		t.Error("quadrupled load-line should reduce MBVR ETEE")
	}
	if ps.Params().CoresLL != p.CoresLL {
		t.Error("Params accessor mismatch")
	}
}
