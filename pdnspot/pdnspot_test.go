package pdnspot_test

import (
	"context"
	"math"
	"testing"

	"repro/flexwatts"
	"repro/pdnspot"
)

var ctx = context.Background()

func TestEvaluateAllKinds(t *testing.T) {
	ps, err := pdnspot.New()
	if err != nil {
		t.Fatal(err)
	}
	pt := pdnspot.Point{TDP: 18, Workload: pdnspot.MultiThread, AR: 0.6}
	for _, k := range []pdnspot.Kind{pdnspot.IVR, pdnspot.MBVR, pdnspot.LDO, pdnspot.IMBVR} {
		r, err := ps.Evaluate(ctx, k, pt)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if !(r.ETEE > 0.5 && r.ETEE < 0.95) {
			t.Errorf("%v: implausible ETEE %g", k, r.ETEE)
		}
		if r.PDN != k {
			t.Errorf("result kind %v, want %v", r.PDN, k)
		}
	}
	if _, err := ps.Evaluate(ctx, pdnspot.Kind(0) /* FlexWatts */, pt); err == nil {
		t.Error("FlexWatts should not be served by pdnspot")
	}
}

func TestEvaluateCState(t *testing.T) {
	ps, _ := pdnspot.New()
	r, err := ps.EvaluateCState(ctx, pdnspot.LDO, pdnspot.C8)
	if err != nil {
		t.Fatal(err)
	}
	if !(r.PNomTotal > 0.1 && r.PNomTotal < 0.2) {
		t.Errorf("C8 nominal %g, want ~0.13W", r.PNomTotal)
	}
	if r.CState != pdnspot.C8 {
		t.Errorf("result cstate %v", r.CState)
	}
}

func TestEvaluateBatch(t *testing.T) {
	ps, _ := pdnspot.New()
	pts := []pdnspot.Point{
		{PDN: pdnspot.IVR, TDP: 18, Workload: pdnspot.MultiThread, AR: 0.6},
		{PDN: pdnspot.LDO, CState: pdnspot.C6},
	}
	res, err := ps.EvaluateBatch(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].PDN != pdnspot.IVR || res[1].CState != pdnspot.C6 {
		t.Errorf("batch results %+v", res)
	}
	// A batch naming the hybrid is rejected before evaluation.
	if _, err := ps.EvaluateBatch(ctx, []pdnspot.Point{{TDP: 4, Workload: pdnspot.MultiThread, AR: 0.6}}); err == nil {
		t.Error("batch with a FlexWatts point should be rejected")
	}
}

func TestValidateAgainstReference(t *testing.T) {
	ps, _ := pdnspot.New()
	pred, meas, acc, err := ps.ValidateAgainstReference(ctx, pdnspot.MBVR,
		pdnspot.Point{TDP: 18, Workload: pdnspot.SingleThread, AR: 0.5}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 || meas <= 0 || acc < 0.97 {
		t.Errorf("validation pred=%g meas=%g acc=%g", pred, meas, acc)
	}
}

func TestRelativePerformance(t *testing.T) {
	ps, _ := pdnspot.New()
	w := pdnspot.SPECCPU2006()[28] // 416.gamess, fully scalable
	if w.Name != "416.gamess" {
		t.Fatalf("suite order changed: %q", w.Name)
	}
	res, err := ps.RelativePerformance(ctx, 4, w, []pdnspot.Kind{pdnspot.MBVR, pdnspot.LDO})
	if err != nil {
		t.Fatal(err)
	}
	if res[pdnspot.IVR].Relative != 1 {
		t.Error("baseline should be 1")
	}
	if !(res[pdnspot.LDO].Relative > 1.08) {
		t.Errorf("gamess at 4W should gain > 8%% on LDO, got %.3f", res[pdnspot.LDO].Relative)
	}
}

func TestCostAndArea(t *testing.T) {
	ps, _ := pdnspot.New()
	bom, area, err := ps.CostAndArea(ctx, 18)
	if err != nil {
		t.Fatal(err)
	}
	if bom[pdnspot.IVR] != 1 || area[pdnspot.IVR] != 1 {
		t.Error("IVR not normalized")
	}
	if !(bom[pdnspot.MBVR] > bom[pdnspot.LDO]) {
		t.Error("MBVR should cost more than LDO")
	}
}

// TestCostAndAreaFiniteAcrossTDPRange sweeps CostAndArea across the full
// admitted TDP range, both pricing regimes included, and demands finite
// positive ratios for every PDN: the optimizer divides by these numbers,
// so a NaN, Inf or zero here would silently corrupt Pareto frontiers.
func TestCostAndAreaFiniteAcrossTDPRange(t *testing.T) {
	ps, err := pdnspot.New()
	if err != nil {
		t.Fatal(err)
	}
	kinds := []pdnspot.Kind{
		flexwatts.FlexWatts, pdnspot.IVR, pdnspot.MBVR, pdnspot.LDO, pdnspot.IMBVR,
	}
	for _, tdp := range []pdnspot.Watt{4, 17.99, 18, 18.01, 50} {
		bom, area, err := ps.CostAndArea(ctx, tdp)
		if err != nil {
			t.Fatalf("tdp %g: %v", float64(tdp), err)
		}
		for _, k := range kinds {
			for name, v := range map[string]float64{"bom": bom[k], "area": area[k]} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
					t.Errorf("tdp %g %v: %s ratio %g", float64(tdp), k, name, v)
				}
			}
		}
	}
}

// TestCostAndAreaExtremeGuardband prices the cost model under an extreme
// guardband (tolerance band) parameterization — the corner an optimizer
// candidate at the scale bounds reaches — and demands finite ratios.
func TestCostAndAreaExtremeGuardband(t *testing.T) {
	p := pdnspot.DefaultParams()
	p.TOBIVR *= 10
	p.TOBMBVR *= 10
	p.TOBLDO *= 10
	ps, err := pdnspot.NewWithParams(p)
	if err != nil {
		t.Fatal(err)
	}
	bom, area, err := ps.CostAndArea(ctx, 18)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range bom {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			t.Errorf("%v: bom %g", k, v)
		}
	}
	for k, v := range area {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			t.Errorf("%v: area %g", k, v)
		}
	}
}

func TestCustomParams(t *testing.T) {
	p := pdnspot.DefaultParams()
	p.CoresLL *= 4
	ps, err := pdnspot.NewWithParams(p)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := pdnspot.New()
	pt := pdnspot.Point{TDP: 50, Workload: pdnspot.MultiThread, AR: 0.6}
	r1, _ := ps.Evaluate(ctx, pdnspot.MBVR, pt)
	r0, _ := base.Evaluate(ctx, pdnspot.MBVR, pt)
	if !(r1.ETEE < r0.ETEE) {
		t.Error("quadrupled load-line should reduce MBVR ETEE")
	}
	if ps.Params().CoresLL != p.CoresLL {
		t.Error("Params accessor mismatch")
	}
}
