package flexwatts

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/pdn"
	"repro/internal/perf"
	"repro/internal/refmodel"
	"repro/internal/workload"
)

// PerfResult is a workload's modeled performance under one PDN, normalized
// to the IVR baseline (the Fig 7/8 presentation).
type PerfResult struct {
	PDN Kind `json:"pdn"`
	// PIn is the platform power the PDN draws at the workload's operating
	// point.
	PIn Watt `json:"p_in"`
	// FreqGain is the fractional frequency increase afforded by the
	// budget the PDN frees relative to the baseline (negative if it
	// wastes more).
	FreqGain float64 `json:"freq_gain"`
	// PerfGain is FreqGain scaled by the workload's performance
	// scalability (§3.3).
	PerfGain float64 `json:"perf_gain"`
	// Relative is 1 + PerfGain: performance normalized to the baseline.
	Relative float64 `json:"relative"`
}

// ValidateAgainstReference runs the time-stepped reference simulator on
// the point and returns (predicted ETEE, measured ETEE, accuracy) — the
// §4.3 validation. The seed drives the reference model's noise streams.
func (c *Client) ValidateAgainstReference(ctx context.Context, k Kind, pt Point, seed int64) (predicted, measured, accuracy float64, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, 0, context.Cause(ctx)
	}
	m, err := c.model(k, float64(pt.TDP))
	if err != nil {
		return 0, 0, 0, err
	}
	if err := pt.Validate(); err != nil {
		return 0, 0, 0, err
	}
	s, err := c.scenario(pt)
	if err != nil {
		return 0, 0, 0, err
	}
	r, err := m.Evaluate(s)
	if err != nil {
		return 0, 0, 0, err
	}
	cfg := refmodel.DefaultConfig()
	cfg.Seed = seed
	meas, err := refmodel.Measure(m, s, cfg)
	if err != nil {
		return 0, 0, 0, err
	}
	return r.ETEE, meas.ETEE, refmodel.Accuracy(r.ETEE, meas.ETEE), nil
}

// model resolves a public kind to an evaluable internal model; FlexWatts
// gets its Algorithm 1 auto-mode adapter at the given TDP.
func (c *Client) model(k Kind, tdp float64) (pdn.Model, error) {
	ik, err := internalKind(k)
	if err != nil {
		return nil, err
	}
	if ik == pdn.FlexWatts {
		return core.NewAutoModel(c.flex, c.pred, tdp), nil
	}
	m, ok := c.baselines[ik]
	if !ok {
		return nil, fmt.Errorf("flexwatts: no model for %v", k)
	}
	return m, nil
}

// candidates assembles the comparison models for the performance API,
// excluding the IVR baseline itself.
func (c *Client) candidates(tdp float64, kinds []Kind) ([]pdn.Model, error) {
	out := make([]pdn.Model, 0, len(kinds))
	for _, k := range kinds {
		if k == IVR {
			continue
		}
		m, err := c.model(k, tdp)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// RelativePerformance returns the performance of each candidate PDN on a
// workload at a TDP, normalized to the IVR baseline (the Fig 7/8
// presentation). FlexWatts candidates run with Algorithm 1 in the loop.
func (c *Client) RelativePerformance(ctx context.Context, tdp Watt, w Workload, kinds []Kind) (map[Kind]PerfResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	cands, err := c.candidates(float64(tdp), kinds)
	if err != nil {
		return nil, err
	}
	res, err := perf.NewEvaluator(c.platform, c.baselines[pdn.IVR]).Compare(float64(tdp), internalWorkload(w), cands)
	if err != nil {
		return nil, err
	}
	out := make(map[Kind]PerfResult, len(res))
	for ik, r := range res {
		out[kindFromInternal(ik)] = PerfResult{
			PDN:      kindFromInternal(r.PDN),
			PIn:      Watt(r.PIn),
			FreqGain: r.FreqGain,
			PerfGain: r.PerfGain,
			Relative: r.Relative,
		}
	}
	return out, nil
}

// SuiteRelativePerformance averages RelativePerformance over a benchmark
// suite (e.g. SPECCPU2006), returning each PDN's mean relative performance
// — the Fig 7 / Fig 8(a) aggregation.
func (c *Client) SuiteRelativePerformance(ctx context.Context, tdp Watt, suite []Workload, kinds []Kind) (map[Kind]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, context.Cause(ctx)
	}
	cands, err := c.candidates(float64(tdp), kinds)
	if err != nil {
		return nil, err
	}
	ws := make([]workload.Workload, len(suite))
	for i, w := range suite {
		ws[i] = internalWorkload(w)
	}
	avg, err := perf.NewEvaluator(c.platform, c.baselines[pdn.IVR]).
		SuiteAverage(float64(tdp), workload.Suite{Name: "suite", Workloads: ws}, cands)
	if err != nil {
		return nil, err
	}
	out := make(map[Kind]float64, len(avg))
	for ik, v := range avg {
		out[kindFromInternal(ik)] = v
	}
	return out, nil
}

// CostAndArea returns BOM cost and board area of every PDN at a TDP,
// normalized to IVR (Fig 8(d,e)).
func (c *Client) CostAndArea(ctx context.Context, tdp Watt) (bom, area map[Kind]float64, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, context.Cause(ctx)
	}
	ibom, iarea, err := cost.Normalized(c.platform, float64(tdp))
	if err != nil {
		return nil, nil, err
	}
	bom = make(map[Kind]float64, len(ibom))
	for ik, v := range ibom {
		bom[kindFromInternal(ik)] = v
	}
	area = make(map[Kind]float64, len(iarea))
	for ik, v := range iarea {
		area[kindFromInternal(ik)] = v
	}
	return bom, area, nil
}
