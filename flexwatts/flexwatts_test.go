package flexwatts_test

import (
	"testing"

	"repro/flexwatts"
	"repro/internal/workload"
	"repro/pdnspot"
)

func newFW(t *testing.T) *flexwatts.FlexWatts {
	t.Helper()
	fw, err := flexwatts.New()
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestModeSelection(t *testing.T) {
	fw := newFW(t)
	low, err := fw.Evaluate(flexwatts.Point{TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if low.Mode != flexwatts.LDOMode {
		t.Errorf("4W should select LDO-Mode, got %v", low.Mode)
	}
	high, err := fw.Evaluate(flexwatts.Point{TDP: 50, Workload: flexwatts.MultiThread, AR: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if high.Mode != flexwatts.IVRMode {
		t.Errorf("50W MT should select IVR-Mode, got %v", high.Mode)
	}
}

func TestBeatsIVRAtLowTDP(t *testing.T) {
	fw := newFW(t)
	ps, err := pdnspot.New()
	if err != nil {
		t.Fatal(err)
	}
	pt := pdnspot.Point{TDP: 4, Workload: pdnspot.MultiThread, AR: 0.6}
	ivr, _ := ps.Evaluate(pdnspot.IVR, pt)
	flex, _ := fw.Evaluate(flexwatts.Point{TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6})
	if !(flex.ETEE > ivr.ETEE+0.05) {
		t.Errorf("FlexWatts %.3f should beat IVR %.3f by >5%% at 4W", flex.ETEE, ivr.ETEE)
	}
}

func TestEvaluateModeForced(t *testing.T) {
	fw := newFW(t)
	pt := flexwatts.Point{TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6}
	ri, err := fw.EvaluateMode(pt, flexwatts.IVRMode)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := fw.EvaluateMode(pt, flexwatts.LDOMode)
	if err != nil {
		t.Fatal(err)
	}
	if !(rl.ETEE > ri.ETEE) {
		t.Error("forced-mode evaluation disagrees with mode selection at 4W")
	}
}

func TestCStatePoint(t *testing.T) {
	fw := newFW(t)
	r, err := fw.Evaluate(flexwatts.Point{CState: pdnspot.C8})
	if err != nil {
		t.Fatal(err)
	}
	if !(r.ETEE > 0.7) {
		t.Errorf("C8 ETEE %.3f implausible", r.ETEE)
	}
}

func TestSimulateTrace(t *testing.T) {
	fw := newFW(t)
	tr := workload.NewGenerator(11).Mixed("t", workload.MultiThread, 80, 0.3, 0.85, 0.25)
	rep, err := fw.SimulateTrace(18, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Energy <= 0 || rep.Duration <= 0 {
		t.Error("empty simulation report")
	}
}
