package flexwatts_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"repro/flexwatts"
)

var ctx = context.Background()

func newClient(t *testing.T) *flexwatts.Client {
	t.Helper()
	c, err := flexwatts.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestModeSelection(t *testing.T) {
	c := newClient(t)
	low, err := c.Evaluate(ctx, flexwatts.Point{TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if low.Mode != flexwatts.LDOMode {
		t.Errorf("4W should select LDO-Mode, got %v", low.Mode)
	}
	if low.PDN != flexwatts.FlexWatts {
		t.Errorf("default PDN should be FlexWatts, got %v", low.PDN)
	}
	high, err := c.Evaluate(ctx, flexwatts.Point{TDP: 50, Workload: flexwatts.MultiThread, AR: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if high.Mode != flexwatts.IVRMode {
		t.Errorf("50W MT should select IVR-Mode, got %v", high.Mode)
	}
}

func TestBeatsIVRAtLowTDP(t *testing.T) {
	c := newClient(t)
	pt := flexwatts.Point{TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6}
	ivr, err := c.EvaluateKind(ctx, flexwatts.IVR, pt)
	if err != nil {
		t.Fatal(err)
	}
	if ivr.Mode != flexwatts.ModeNone {
		t.Errorf("static PDN result carries mode %v", ivr.Mode)
	}
	flex, err := c.Evaluate(ctx, pt)
	if err != nil {
		t.Fatal(err)
	}
	if !(flex.ETEE > ivr.ETEE+0.05) {
		t.Errorf("FlexWatts %.3f should beat IVR %.3f by >5%% at 4W", flex.ETEE, ivr.ETEE)
	}
}

func TestEvaluateModeForced(t *testing.T) {
	c := newClient(t)
	pt := flexwatts.Point{TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6}
	ri, err := c.EvaluateMode(ctx, pt, flexwatts.IVRMode)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := c.EvaluateMode(ctx, pt, flexwatts.LDOMode)
	if err != nil {
		t.Fatal(err)
	}
	if !(rl.ETEE > ri.ETEE) {
		t.Error("forced-mode evaluation disagrees with mode selection at 4W")
	}
	if _, err := c.EvaluateMode(ctx, pt, flexwatts.ModeNone); err == nil {
		t.Error("ModeNone should not be evaluable")
	}
}

func TestCStatePoint(t *testing.T) {
	c := newClient(t)
	r, err := c.Evaluate(ctx, flexwatts.Point{CState: flexwatts.C8})
	if err != nil {
		t.Fatal(err)
	}
	if !(r.ETEE > 0.7) {
		t.Errorf("C8 ETEE %.3f implausible", r.ETEE)
	}
	if r.CState != flexwatts.C8 {
		t.Errorf("result cstate %v", r.CState)
	}
}

func TestEvaluateBatchMatchesSerial(t *testing.T) {
	c := newClient(t)
	pts := []flexwatts.Point{
		{PDN: flexwatts.IVR, TDP: 18, Workload: flexwatts.MultiThread, AR: 0.6},
		{PDN: flexwatts.LDO, TDP: 4, Workload: flexwatts.SingleThread, AR: 0.5},
		{TDP: 25, Workload: flexwatts.Graphics, AR: 0.45},
		{PDN: flexwatts.MBVR, CState: flexwatts.C6},
	}
	batch, err := c.EvaluateBatch(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(pts) {
		t.Fatalf("%d results for %d points", len(batch), len(pts))
	}
	for i, pt := range pts {
		serial, err := c.Evaluate(ctx, pt)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != serial {
			t.Errorf("point %d: batch %+v != serial %+v", i, batch[i], serial)
		}
	}
}

func TestEvaluateBatchReportsInvalidPoint(t *testing.T) {
	c, err := flexwatts.NewClient(flexwatts.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	pts := []flexwatts.Point{
		{PDN: flexwatts.IVR, TDP: 18, Workload: flexwatts.MultiThread, AR: 0.6},
		{PDN: flexwatts.IVR, TDP: 18, Workload: flexwatts.MultiThread, AR: 7},
		{PDN: flexwatts.IVR, TDP: 18},
	}
	_, err = c.EvaluateBatch(ctx, pts)
	if !errors.Is(err, flexwatts.ErrInvalidPoint) {
		t.Fatalf("err = %v, want ErrInvalidPoint", err)
	}
}

// TestEvaluateBatchCancelled is the cancellation smoke: a batch submitted
// with an already-cancelled context must return promptly with
// context.Canceled, not evaluate 4096 points first.
func TestEvaluateBatchCancelled(t *testing.T) {
	c := newClient(t)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	pts := make([]flexwatts.Point, 4096)
	for i := range pts {
		pts[i] = flexwatts.Point{PDN: flexwatts.IVR, TDP: 18, Workload: flexwatts.MultiThread, AR: 0.6}
	}
	start := time.Now()
	_, err := c.EvaluateBatch(cctx, pts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancelled batch took %v", d)
	}
	if _, err := c.Evaluate(cctx, pts[0]); !errors.Is(err, context.Canceled) {
		t.Errorf("Evaluate on cancelled ctx: %v", err)
	}
}

func TestInvalidPoints(t *testing.T) {
	c := newClient(t)
	cases := map[string]flexwatts.Point{
		"no workload":        {TDP: 18},
		"bad ar":             {TDP: 18, Workload: flexwatts.MultiThread, AR: 1.5},
		"bad tdp":            {TDP: 900, Workload: flexwatts.MultiThread, AR: 0.5},
		"idle with workload": {CState: flexwatts.C6, Workload: flexwatts.MultiThread, AR: 0.6},
	}
	for name, pt := range cases {
		if _, err := c.Evaluate(ctx, pt); !errors.Is(err, flexwatts.ErrInvalidPoint) {
			t.Errorf("%s: err = %v, want ErrInvalidPoint", name, err)
		}
	}
}

func TestWithOptions(t *testing.T) {
	p := flexwatts.DefaultParams()
	p.CoresLL *= 2
	c, err := flexwatts.NewClient(
		flexwatts.WithParams(p),
		flexwatts.WithWorkers(2),
		flexwatts.WithCache(false),
		flexwatts.WithPlatform(flexwatts.DefaultPlatform()),
	)
	if err != nil {
		t.Fatal(err)
	}
	if c.Params().CoresLL != p.CoresLL {
		t.Error("WithParams not applied")
	}
	base := newClient(t)
	pt := flexwatts.Point{PDN: flexwatts.MBVR, TDP: 50, Workload: flexwatts.MultiThread, AR: 0.6}
	r1, err := c.Evaluate(ctx, pt)
	if err != nil {
		t.Fatal(err)
	}
	r0, err := base.Evaluate(ctx, pt)
	if err != nil {
		t.Fatal(err)
	}
	if !(r1.ETEE < r0.ETEE) {
		t.Error("doubled load-line should reduce MBVR ETEE")
	}
}

func TestSimulateTrace(t *testing.T) {
	c := newClient(t)
	// A bursty multi-threaded trace with idle gaps, built from the public
	// vocabulary alone.
	tr := flexwatts.Trace{Name: "bursty"}
	for i := 0; i < 40; i++ {
		tr.Phases = append(tr.Phases,
			flexwatts.Phase{Duration: 0.01, Workload: flexwatts.MultiThread, AR: 0.3 + 0.5*float64(i%2)},
			flexwatts.Phase{Duration: 0.005, CState: flexwatts.C6},
		)
	}
	rep, err := c.SimulateTrace(flexwatts.FlexWatts, 18, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Energy <= 0 || rep.Duration <= 0 {
		t.Error("empty simulation report")
	}
	if rep.PDN != flexwatts.FlexWatts {
		t.Errorf("report PDN %v", rep.PDN)
	}
	stat, err := c.SimulateTrace(flexwatts.IVR, 18, tr, flexwatts.NewSensor(7))
	if err != nil {
		t.Fatal(err)
	}
	if stat.ModeSwitches != 0 || stat.ModeTime != nil {
		t.Errorf("static PDN reports hybrid state: %+v", stat)
	}
}

func TestVocabularyRoundTrips(t *testing.T) {
	for _, k := range flexwatts.AllKinds() {
		got, err := flexwatts.ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	for _, wt := range flexwatts.WorkloadTypes() {
		got, err := flexwatts.ParseWorkloadType(wt.String())
		if err != nil || got != wt {
			t.Errorf("ParseWorkloadType(%q) = %v, %v", wt.String(), got, err)
		}
	}
	for _, c := range flexwatts.CStates() {
		got, err := flexwatts.ParseCState(c.String())
		if err != nil || got != c {
			t.Errorf("ParseCState(%q) = %v, %v", c.String(), got, err)
		}
	}
	for _, m := range flexwatts.Modes() {
		got, err := flexwatts.ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if w, err := flexwatts.ParseWatt("250mW"); err != nil || w != 0.25 {
		t.Errorf("ParseWatt = %v, %v", w, err)
	}
	if _, err := flexwatts.ParseKind("XVR"); err == nil {
		t.Error("ParseKind accepted junk")
	}
}

func TestPointJSONRoundTrip(t *testing.T) {
	pt := flexwatts.Point{PDN: flexwatts.LDO, TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6}
	b, err := json.Marshal(pt)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"pdn":"LDO","tdp":4,"workload":"Multi-Thread","ar":0.6}`
	if string(b) != want {
		t.Errorf("point JSON %s, want %s", b, want)
	}
	var back flexwatts.Point
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != pt {
		t.Errorf("round trip %+v != %+v", back, pt)
	}
	// Idle points omit the active fields and keep the wire vocabulary
	// case-insensitive.
	var idle flexwatts.Point
	if err := json.Unmarshal([]byte(`{"pdn":"ivr","cstate":"c6"}`), &idle); err != nil {
		t.Fatal(err)
	}
	if idle.PDN != flexwatts.IVR || idle.CState != flexwatts.C6 {
		t.Errorf("lenient parse %+v", idle)
	}
	b, err = json.Marshal(flexwatts.Point{PDN: flexwatts.IVR, CState: flexwatts.C6})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"pdn":"IVR","cstate":"C6"}` {
		t.Errorf("idle point JSON %s", b)
	}
}

func TestResultJSON(t *testing.T) {
	c := newClient(t)
	r, err := c.Evaluate(ctx, flexwatts.Point{TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back flexwatts.Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Errorf("result round trip %+v != %+v", back, r)
	}
	if back.Mode != flexwatts.LDOMode || back.Loss() <= 0 {
		t.Errorf("decoded result %+v", back)
	}
}

func TestSuites(t *testing.T) {
	spec := flexwatts.SPECCPU2006()
	if len(spec) != 29 || spec[0].Name != "433.milc" {
		t.Errorf("SPEC suite %d workloads, first %q", len(spec), spec[0].Name)
	}
	gfx := flexwatts.ThreeDMark06()
	if len(gfx) != 4 || gfx[0].Type != flexwatts.Graphics {
		t.Errorf("3DMark06 suite %+v", gfx)
	}
	pv := flexwatts.PowerVirus(flexwatts.MultiThread)
	if pv.AR != 1 || pv.Scalability != 1 {
		t.Errorf("power virus %+v", pv)
	}
}

func TestStandardTDPs(t *testing.T) {
	tdps := flexwatts.StandardTDPs()
	if len(tdps) < 5 || tdps[0] != 4 || tdps[len(tdps)-1] != 50 {
		t.Errorf("TDP grid %v", tdps)
	}
}

// TestBatteryLifePower pins the §5 worked example: video playback on a
// lossless PDN would draw ~0.5 W; real PDNs land above that, and the
// LDO-friendly PDNs beat IVR (the Fig 8(c) ordering).
func TestBatteryLifePower(t *testing.T) {
	c := newClient(t)
	bws := flexwatts.BatteryLifeWorkloads()
	if len(bws) != 4 || bws[0].Name != "Video Playback" {
		t.Fatalf("battery workloads %+v", bws)
	}
	var sum float64
	for _, res := range bws[0].Residency {
		sum += res
	}
	if !(sum > 0.999 && sum < 1.001) {
		t.Errorf("video playback residencies sum to %g", sum)
	}
	ivr, err := c.BatteryLifePower(ctx, flexwatts.IVR, bws[0])
	if err != nil {
		t.Fatal(err)
	}
	flex, err := c.BatteryLifePower(ctx, flexwatts.FlexWatts, bws[0])
	if err != nil {
		t.Fatal(err)
	}
	if !(ivr > 0.5 && ivr < 0.8) {
		t.Errorf("IVR video playback power %v implausible", ivr)
	}
	// FlexWatts (in LDO-Mode) cuts video playback power by ~11-12 % vs IVR.
	if !(float64(flex) < float64(ivr)*0.92) {
		t.Errorf("FlexWatts %v should undercut IVR %v by >8%%", flex, ivr)
	}
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.BatteryLifePower(cctx, flexwatts.IVR, bws[0]); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled ctx: %v", err)
	}
}

// TestAllocate drives the PBM loop through the public surface: a
// higher-ETEE PDN sustains a higher core clock from the same TDP (§3.3),
// and cTDP-down lowers the sustained clock.
func TestAllocate(t *testing.T) {
	c := newClient(t)
	ivr, err := c.Allocate(ctx, flexwatts.IVR, 10, flexwatts.MultiThread, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	ldo, err := c.Allocate(ctx, flexwatts.LDO, 10, flexwatts.MultiThread, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if !(ldo.ETEE > ivr.ETEE && ldo.CoreFreq >= ivr.CoreFreq) {
		t.Errorf("LDO alloc %+v should beat IVR alloc %+v at 10W", ldo, ivr)
	}
	if !(ivr.PIn <= 10 && ldo.PIn <= 10) {
		t.Errorf("allocations exceed the TDP: IVR %g, LDO %g", ivr.PIn, ldo.PIn)
	}
	down, err := c.Allocate(ctx, flexwatts.LDO, 4, flexwatts.MultiThread, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if !(down.CoreFreq < ldo.CoreFreq) {
		t.Error("cTDP-down did not lower the sustained core clock")
	}
	if _, err := c.Allocate(ctx, flexwatts.LDO, 10, flexwatts.WorkloadUnset, 0.6); !errors.Is(err, flexwatts.ErrInvalidPoint) {
		t.Errorf("unset workload type: %v", err)
	}
	if _, err := c.Allocate(ctx, flexwatts.LDO, 10, flexwatts.MultiThread, 7); !errors.Is(err, flexwatts.ErrInvalidPoint) {
		t.Errorf("bad AR: %v", err)
	}
}

func TestTraceHelpers(t *testing.T) {
	st := flexwatts.SteadyTrace("steady", flexwatts.Graphics, 0.5, 2)
	if len(st.Phases) != 1 || st.Duration() != 2 || st.Phases[0].Workload != flexwatts.Graphics {
		t.Errorf("steady trace %+v", st)
	}
	bt := flexwatts.BatteryTrace(flexwatts.BatteryLifeWorkloads()[0], 3, 1.0/60)
	if len(bt.Phases) != 9 { // video playback has 3 resident states per frame
		t.Errorf("battery trace has %d phases, want 9", len(bt.Phases))
	}
	if d := bt.Duration(); !(d > 0.049 && d < 0.051) {
		t.Errorf("battery trace duration %g, want ~3 frames at 60Hz", d)
	}
	a := flexwatts.NewTraceGenerator(7).Mixed("m", flexwatts.MultiThread, 100, 0.3, 0.8, 0.25)
	b := flexwatts.NewTraceGenerator(7).Mixed("m", flexwatts.MultiThread, 100, 0.3, 0.8, 0.25)
	if len(a.Phases) != 100 {
		t.Fatalf("mixed trace has %d phases", len(a.Phases))
	}
	for i := range a.Phases {
		if a.Phases[i] != b.Phases[i] {
			t.Fatal("equal seeds produced different traces")
		}
	}
	idle := 0
	for _, ph := range a.Phases {
		if ph.CState != flexwatts.C0 {
			idle++
		}
	}
	if idle == 0 || idle == len(a.Phases) {
		t.Errorf("%d idle phases of %d", idle, len(a.Phases))
	}
}
