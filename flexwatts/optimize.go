package flexwatts

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/optimize"
)

// Objective is one axis of an Optimize search's Pareto frontier.
// ObjectiveCost, ObjectiveArea and ObjectiveBattery are minimized;
// ObjectivePerformance is maximized.
type Objective int

// The four product objectives (Fig 8's columns).
const (
	// ObjectiveCost is BOM cost normalized to the base-parameter IVR PDN.
	ObjectiveCost Objective = iota
	// ObjectiveArea is board area normalized to the base-parameter IVR PDN.
	ObjectiveArea
	// ObjectiveBattery is mean battery-life drain in watts (§7.1); lower
	// is longer battery life.
	ObjectiveBattery
	// ObjectivePerformance is SPEC CPU2006 suite-mean relative performance
	// against the base-parameter IVR PDN.
	ObjectivePerformance
)

// Objectives lists every objective in canonical order.
func Objectives() []Objective {
	return []Objective{ObjectiveCost, ObjectiveArea, ObjectiveBattery, ObjectivePerformance}
}

// String returns the wire spelling of the objective.
func (o Objective) String() string {
	switch o {
	case ObjectiveCost:
		return "cost"
	case ObjectiveArea:
		return "area"
	case ObjectiveBattery:
		return "battery"
	case ObjectivePerformance:
		return "performance"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// ParseObjective resolves a wire spelling ("cost", "area", "battery",
// "performance"), case-insensitively.
func ParseObjective(s string) (Objective, error) {
	for _, o := range Objectives() {
		if strings.EqualFold(strings.TrimSpace(s), o.String()) {
			return o, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown objective %q (have cost, area, battery, performance)", ErrInvalidSpec, s)
}

// MarshalText encodes the objective as its wire spelling.
func (o Objective) MarshalText() ([]byte, error) { return []byte(o.String()), nil }

// UnmarshalText decodes any spelling ParseObjective accepts.
func (o *Objective) UnmarshalText(b []byte) error {
	v, err := ParseObjective(string(b))
	if err != nil {
		return err
	}
	*o = v
	return nil
}

// SearchStrategy selects how Optimize explores the candidate space.
type SearchStrategy int

// The search strategies.
const (
	// StrategyAuto (the zero value) enumerates small spaces exhaustively
	// and anneals large ones.
	StrategyAuto SearchStrategy = iota
	// StrategyExhaustive scores every candidate; the frontier is exact.
	StrategyExhaustive
	// StrategyAnneal runs seeded simulated-annealing chains under an
	// evaluation budget.
	StrategyAnneal
)

// SearchStrategies lists the selectable strategies.
func SearchStrategies() []SearchStrategy {
	return []SearchStrategy{StrategyAuto, StrategyExhaustive, StrategyAnneal}
}

// String returns the wire spelling of the strategy.
func (s SearchStrategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyExhaustive:
		return "exhaustive"
	case StrategyAnneal:
		return "anneal"
	default:
		return fmt.Sprintf("SearchStrategy(%d)", int(s))
	}
}

// ParseSearchStrategy resolves a wire spelling ("auto", "exhaustive",
// "anneal"), case-insensitively; the empty string parses to StrategyAuto.
func ParseSearchStrategy(s string) (SearchStrategy, error) {
	if strings.TrimSpace(s) == "" {
		return StrategyAuto, nil
	}
	for _, st := range SearchStrategies() {
		if strings.EqualFold(strings.TrimSpace(s), st.String()) {
			return st, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown strategy %q (have auto, exhaustive, anneal)", ErrInvalidSpec, s)
}

// MarshalText encodes the strategy as its wire spelling.
func (s SearchStrategy) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText decodes any spelling ParseSearchStrategy accepts.
func (s *SearchStrategy) UnmarshalText(b []byte) error {
	v, err := ParseSearchStrategy(string(b))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// OptimizeSpec describes one design-space search: the TDP design point,
// the candidate axes (PDN architecture × load-line scale × guardband scale
// × VR-sizing scale), the Pareto objectives, optional constraint ceilings,
// and the search strategy. The zero value is not runnable — TDP is
// required — but every other field has a documented default.
//
// Determinism contract: a search is a pure function of the client's
// parameters and the spec. Same seed, same spec ⇒ byte-identical results,
// independent of WithWorkers.
type OptimizeSpec struct {
	// TDP is the design point in watts (the modeled axis spans 4–50 W).
	TDP Watt `json:"tdp"`
	// PDNs is the architecture axis; nil means all five PDNs.
	PDNs []Kind `json:"pdns,omitempty"`
	// LoadlineScales multiplies every load-line resistance in the model
	// parameters (lower = stiffer board = less I²R loss, at a cost
	// premium). Nil means {0.8, 1, 1.25}.
	LoadlineScales []float64 `json:"loadline_scales,omitempty"`
	// GuardbandScales multiplies the three voltage-tolerance bands (lower
	// = tighter regulation, at a cost premium). Nil means {0.75, 1, 1.25}.
	GuardbandScales []float64 `json:"guardband_scales,omitempty"`
	// VRScales multiplies every Iccmax design limit (oversized or
	// undersized VRs). Nil means {1}.
	VRScales []float64 `json:"vr_scales,omitempty"`
	// Objectives selects the Pareto axes; nil means all four.
	Objectives []Objective `json:"objectives,omitempty"`
	// Strategy picks the search algorithm; the zero value is StrategyAuto.
	Strategy SearchStrategy `json:"strategy,omitempty"`
	// Seed drives the annealing chains' RNGs.
	Seed int64 `json:"seed,omitempty"`
	// Budget caps annealing candidate evaluations; <= 0 means the engine
	// default (1024), clamped to the space size.
	Budget int `json:"budget,omitempty"`
	// Chains is the annealing chain count; <= 0 means the engine default
	// (8). Fixed, never derived from machine parallelism.
	Chains int `json:"chains,omitempty"`
	// MaxCost, MaxArea and MaxBatteryPower are feasibility ceilings on the
	// corresponding scores; <= 0 disables each.
	MaxCost         float64 `json:"max_cost,omitempty"`
	MaxArea         float64 `json:"max_area,omitempty"`
	MaxBatteryPower Watt    `json:"max_battery_power,omitempty"`
	// MinPerformance is a feasibility floor on relative performance; <= 0
	// disables it.
	MinPerformance float64 `json:"min_performance,omitempty"`
}

// OptimizeConfig is one candidate design: a PDN architecture with its
// parameter scales.
type OptimizeConfig struct {
	PDN            Kind    `json:"pdn"`
	LoadlineScale  float64 `json:"loadline_scale"`
	GuardbandScale float64 `json:"guardband_scale"`
	VRScale        float64 `json:"vr_scale"`
}

// OptimizeScores are one candidate's objective values. All four are
// reported whichever subset the spec selected.
type OptimizeScores struct {
	// Cost and Area are normalized to the base-parameter IVR PDN.
	Cost float64 `json:"cost"`
	Area float64 `json:"area"`
	// BatteryPower is the mean §7.1 battery-life drain.
	BatteryPower Watt `json:"battery_power"`
	// Performance is the SPEC suite-mean relative performance vs the
	// base-parameter IVR PDN.
	Performance float64 `json:"performance"`
}

// ParetoPoint is one frontier member. Key is the candidate's index in the
// kind-major lexicographic enumeration of the space — the deterministic
// reporting order.
type ParetoPoint struct {
	Key    int            `json:"key"`
	Config OptimizeConfig `json:"config"`
	Scores OptimizeScores `json:"scores"`
}

// OptimizeResult is a finished search.
type OptimizeResult struct {
	// Frontier is the Pareto frontier over the spec's objectives, sorted
	// by Key.
	Frontier []ParetoPoint `json:"frontier"`
	// Evaluated counts scored candidates; SpaceSize is the enumerable
	// candidate count.
	Evaluated int `json:"evaluated"`
	SpaceSize int `json:"space_size"`
	// Strategy is what actually ran (StrategyAuto resolves to one of the
	// other two).
	Strategy SearchStrategy `json:"strategy"`
}

// OptimizeEventKind tags an OptimizeStream callback.
type OptimizeEventKind int

// The incremental event kinds.
const (
	// OptimizeProgress reports evaluation counts after each batch or
	// annealing round.
	OptimizeProgress OptimizeEventKind = iota
	// OptimizeFrontier reports a candidate entering the Pareto frontier
	// (it may be displaced again later).
	OptimizeFrontier
)

// String returns the wire spelling of the event kind.
func (k OptimizeEventKind) String() string {
	if k == OptimizeFrontier {
		return "frontier"
	}
	return "progress"
}

// OptimizeEvent is one incremental report from a running search.
type OptimizeEvent struct {
	Kind         OptimizeEventKind `json:"kind"`
	Evaluated    int               `json:"evaluated"`
	SpaceSize    int               `json:"space_size"`
	FrontierSize int               `json:"frontier_size"`
	// Point is the frontier entrant; meaningful only for OptimizeFrontier.
	Point ParetoPoint `json:"point,omitempty"`
}

// Optimize searches the design space described by spec and returns its
// Pareto frontier. The search runs candidates concurrently on the sweep
// engine (bounded by WithWorkers) but is deterministic: same client
// parameters, same spec ⇒ byte-identical results. Cancelling ctx aborts
// the search with context.Cause(ctx). Invalid specs return an error
// wrapping ErrInvalidSpec.
func (c *Client) Optimize(ctx context.Context, spec OptimizeSpec) (OptimizeResult, error) {
	return c.OptimizeStream(ctx, spec, nil)
}

// OptimizeStream is Optimize with an incremental callback: fn (when
// non-nil) observes every frontier entrant and per-batch progress on the
// searching goroutine. A non-nil error from fn cancels the search and is
// returned.
func (c *Client) OptimizeStream(ctx context.Context, spec OptimizeSpec, fn func(OptimizeEvent) error) (OptimizeResult, error) {
	ispec, err := internalOptimizeSpec(spec)
	if err != nil {
		return OptimizeResult{}, err
	}
	var emit func(optimize.Event) error
	if fn != nil {
		emit = func(ev optimize.Event) error { return fn(optimizeEventFromInternal(ev)) }
	}
	res, err := c.opt.Run(ctx, ispec, emit)
	if err != nil {
		if errors.Is(err, optimize.ErrInvalidSpec) {
			return OptimizeResult{}, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
		}
		return OptimizeResult{}, err
	}
	return optimizeResultFromInternal(res), nil
}
