package flexwatts_test

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	"repro/flexwatts"
)

// The 30-second tour: build a Client, evaluate one operating point, read
// the hybrid mode Algorithm 1 selected.
func ExampleClient_Evaluate() {
	c, err := flexwatts.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	// A 4 W tablet running a multi-threaded workload at 60 % application
	// ratio. The zero PDN is FlexWatts.
	res, err := c.Evaluate(context.Background(), flexwatts.Point{
		TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s selected, ETEE %.1f%%\n", res.Mode, res.ETEE*100)
	// Output: LDO-Mode selected, ETEE 74.0%
}

// EvaluateBatch fans a batch out over the deterministic concurrent sweep
// engine; results come back in input order and a cancelled context aborts
// the batch.
func ExampleClient_EvaluateBatch() {
	c, err := flexwatts.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	pts := []flexwatts.Point{
		{PDN: flexwatts.IVR, TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6},
		{PDN: flexwatts.LDO, TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6},
		{TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6}, // zero PDN = FlexWatts
	}
	res, err := c.EvaluateBatch(context.Background(), pts)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res {
		fmt.Printf("%-9s ETEE %.1f%%\n", pts[i].PDN, r.ETEE*100)
	}
	// Output:
	// IVR       ETEE 65.0%
	// LDO       ETEE 74.0%
	// FlexWatts ETEE 74.0%
}

// Point speaks the same JSON vocabulary as the flexwattsd wire: enums
// encode as their paper names and unset fields are omitted.
func ExamplePoint() {
	b, err := json.Marshal(flexwatts.Point{
		PDN: flexwatts.LDO, TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(b))
	// Output: {"pdn":"LDO","tdp":4,"workload":"Multi-Thread","ar":0.6}
}

// Optimize searches a configuration space — PDN topology × parameter
// scales — and returns the Pareto frontier over the chosen objectives.
// Small spaces are enumerated exhaustively, so the frontier is exact; the
// search is seeded and deterministic either way.
func ExampleClient_Optimize() {
	c, err := flexwatts.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.Optimize(context.Background(), flexwatts.OptimizeSpec{
		TDP:             15,
		PDNs:            []flexwatts.Kind{flexwatts.FlexWatts, flexwatts.IVR, flexwatts.LDO},
		LoadlineScales:  []float64{1},
		GuardbandScales: []float64{1, 1.25},
		Objectives:      []flexwatts.Objective{flexwatts.ObjectiveCost, flexwatts.ObjectiveBattery},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d of %d candidates on the cost/battery frontier:\n", len(res.Frontier), res.SpaceSize)
	for _, p := range res.Frontier {
		fmt.Printf("%-9s gb x%.2f  cost %.2f  battery %.2f W\n",
			p.Config.PDN, p.Config.GuardbandScale, p.Scores.Cost, float64(p.Scores.BatteryPower))
	}
	// Output:
	// 5 of 6 candidates on the cost/battery frontier:
	// FlexWatts gb x1.00  cost 1.18  battery 1.02 W
	// FlexWatts gb x1.25  cost 1.09  battery 1.03 W
	// IVR       gb x1.00  cost 1.00  battery 1.17 W
	// IVR       gb x1.25  cost 0.92  battery 1.23 W
	// LDO       gb x1.00  cost 1.96  battery 1.02 W
}

// The vocabulary parses the way the paper spells it, case-insensitively.
func ExampleParseKind() {
	k, err := flexwatts.ParseKind("i+mbvr")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(k)
	// Output: I+MBVR
}
