package flexwatts_test

import (
	"context"
	"encoding/json"
	"fmt"
	"log"

	"repro/flexwatts"
)

// The 30-second tour: build a Client, evaluate one operating point, read
// the hybrid mode Algorithm 1 selected.
func ExampleClient_Evaluate() {
	c, err := flexwatts.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	// A 4 W tablet running a multi-threaded workload at 60 % application
	// ratio. The zero PDN is FlexWatts.
	res, err := c.Evaluate(context.Background(), flexwatts.Point{
		TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s selected, ETEE %.1f%%\n", res.Mode, res.ETEE*100)
	// Output: LDO-Mode selected, ETEE 74.0%
}

// EvaluateBatch fans a batch out over the deterministic concurrent sweep
// engine; results come back in input order and a cancelled context aborts
// the batch.
func ExampleClient_EvaluateBatch() {
	c, err := flexwatts.NewClient()
	if err != nil {
		log.Fatal(err)
	}
	pts := []flexwatts.Point{
		{PDN: flexwatts.IVR, TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6},
		{PDN: flexwatts.LDO, TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6},
		{TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6}, // zero PDN = FlexWatts
	}
	res, err := c.EvaluateBatch(context.Background(), pts)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range res {
		fmt.Printf("%-9s ETEE %.1f%%\n", pts[i].PDN, r.ETEE*100)
	}
	// Output:
	// IVR       ETEE 65.0%
	// LDO       ETEE 74.0%
	// FlexWatts ETEE 74.0%
}

// Point speaks the same JSON vocabulary as the flexwattsd wire: enums
// encode as their paper names and unset fields are omitted.
func ExamplePoint() {
	b, err := json.Marshal(flexwatts.Point{
		PDN: flexwatts.LDO, TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(b))
	// Output: {"pdn":"LDO","tdp":4,"workload":"Multi-Thread","ar":0.6}
}

// The vocabulary parses the way the paper spells it, case-insensitively.
func ExampleParseKind() {
	k, err := flexwatts.ParseKind("i+mbvr")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(k)
	// Output: I+MBVR
}
