package flexwatts

import "context"

// BatteryWorkload is a battery-life scenario described by its package
// power-state residencies (§5 Observation 3, §7.1): during each frame the
// platform cycles through an active burst (C0MIN), a shallow idle during
// which the display controller fetches from memory (C2), and a deep idle
// while the panel is driven from the display controller's local buffer
// (C8).
type BatteryWorkload struct {
	Name string `json:"name"`
	// Residency maps each package state to its fraction of execution time;
	// fractions sum to 1.
	Residency map[CState]float64 `json:"residency"`
}

// BatteryLifeWorkloads returns the four §7.1 battery-life scenarios —
// video playback, video conferencing, web browsing, light gaming — with
// their C0MIN residencies (10 %, 20 %, 30 %, 40 %); the video-playback
// split matches the §5 worked example (C0MIN 10 %, C2 5 %, C8 85 %).
func BatteryLifeWorkloads() []BatteryWorkload {
	iws := internalBatteryWorkloads()
	out := make([]BatteryWorkload, len(iws))
	for i, iw := range iws {
		out[i] = batteryWorkloadFromInternal(iw)
	}
	return out
}

// BatteryLifePower computes the average platform power the PDN named by k
// draws from the battery while running a battery-life workload, following
// the §5 formula P = Σ_s P_s·R_s/η_s over the workload's resident package
// states — the Fig 8(c) metric. Lower is better.
func (c *Client) BatteryLifePower(ctx context.Context, k Kind, w BatteryWorkload) (Watt, error) {
	if err := ctx.Err(); err != nil {
		return 0, context.Cause(ctx)
	}
	var total Watt
	for cs, res := range w.Residency {
		if res == 0 {
			continue
		}
		r, err := c.evaluate(k, Point{PDN: k, CState: cs})
		if err != nil {
			return 0, err
		}
		total += r.PNomTotal * Watt(res) / Watt(r.ETEE)
	}
	return total, nil
}
