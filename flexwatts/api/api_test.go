package api_test

import (
	"errors"
	"net/http"
	"strings"
	"testing"

	"repro/flexwatts"
	"repro/flexwatts/api"
)

// TestStatusMappingRoundTrips pins the error contract both sides of the
// wire share: every sentinel maps to its status and wire code and back to
// itself, so errors.Is behaves identically in the server and in the SDK.
func TestStatusMappingRoundTrips(t *testing.T) {
	sentinels := map[error]struct {
		status int
		code   string
	}{
		api.ErrUnknownExperiment: {http.StatusNotFound, "unknown_experiment"},
		api.ErrInvalidPoint:      {http.StatusBadRequest, "invalid_point"},
		api.ErrBatchTooLarge:     {http.StatusRequestEntityTooLarge, "batch_too_large"},
		api.ErrMethodNotAllowed:  {http.StatusMethodNotAllowed, "method_not_allowed"},
		api.ErrEvaluation:        {http.StatusUnprocessableEntity, "evaluation_failed"},
		api.ErrRateLimited:       {http.StatusTooManyRequests, "rate_limited"},
		api.ErrOverloaded:        {http.StatusServiceUnavailable, "overloaded"},
	}
	for sentinel, want := range sentinels {
		if got := api.StatusFor(sentinel); got != want.status {
			t.Errorf("StatusFor(%v) = %d, want %d", sentinel, got, want.status)
		}
		if back := api.FromStatus(want.status); !errors.Is(back, sentinel) {
			t.Errorf("FromStatus(%d) = %v, want %v", want.status, back, sentinel)
		}
		if got := api.CodeFor(sentinel); got != want.code {
			t.Errorf("CodeFor(%v) = %q, want %q", sentinel, got, want.code)
		}
		if back := api.FromCode(want.code); !errors.Is(back, sentinel) {
			t.Errorf("FromCode(%q) = %v, want %v", want.code, back, sentinel)
		}
	}
	if api.StatusFor(nil) != 0 {
		t.Error("StatusFor(nil) != 0")
	}
	if api.CodeFor(nil) != "" {
		t.Error(`CodeFor(nil) != ""`)
	}
	if api.StatusFor(errors.New("boom")) != http.StatusInternalServerError {
		t.Error("unrecognized error should map to 500")
	}
	if api.CodeFor(errors.New("boom")) != "internal" {
		t.Error(`unrecognized error should map to code "internal"`)
	}
	if api.FromStatus(http.StatusTeapot) != nil {
		t.Error("unmapped status should return nil")
	}
	if api.FromCode("made_up") != nil {
		t.Error("unmapped code should return nil")
	}
	// Wrapped sentinels keep their status — the server always wraps.
	if api.StatusFor(fmtWrap(api.ErrBatchTooLarge)) != http.StatusRequestEntityTooLarge {
		t.Error("wrapped sentinel lost its status")
	}
	if api.CodeFor(fmtWrap(api.ErrOverloaded)) != "overloaded" {
		t.Error("wrapped sentinel lost its code")
	}
}

func fmtWrap(err error) error { return errors.Join(errors.New("context"), err) }

// TestRetryable pins which sentinels a client may transparently retry:
// exactly the shed-load pair, never the caller-bug family.
func TestRetryable(t *testing.T) {
	for _, err := range []error{api.ErrRateLimited, api.ErrOverloaded, fmtWrap(api.ErrOverloaded)} {
		if !api.Retryable(err) {
			t.Errorf("Retryable(%v) = false, want true", err)
		}
	}
	for _, err := range []error{nil, api.ErrInvalidPoint, api.ErrBatchTooLarge, api.ErrEvaluation, errors.New("boom")} {
		if api.Retryable(err) {
			t.Errorf("Retryable(%v) = true, want false", err)
		}
	}
}

// TestEvalStreamResultErr pins the NDJSON line's error vocabulary: a
// result line yields nil, an error line yields the sentinel for its wire
// code (errors.Is-able) with the index in the message.
func TestEvalStreamResultErr(t *testing.T) {
	ok := api.EvalStreamResult{Index: 3, Result: &api.EvalResult{PDN: "IVR"}}
	if err := ok.Err(); err != nil {
		t.Errorf("result line Err() = %v", err)
	}
	bad := api.EvalStreamResult{Index: 7, Code: "evaluation_failed", Error: "loadline diverged"}
	err := bad.Err()
	if !errors.Is(err, api.ErrEvaluation) {
		t.Errorf("error line Err() = %v, want ErrEvaluation", err)
	}
	if !strings.Contains(err.Error(), "point 7") || !strings.Contains(err.Error(), "loadline diverged") {
		t.Errorf("error line message %q lacks index or detail", err)
	}
	unknown := api.EvalStreamResult{Index: 1, Code: "martian", Error: "??"}
	if err := unknown.Err(); err == nil || errors.Is(err, api.ErrEvaluation) {
		t.Errorf("unknown code Err() = %v, want plain error", err)
	}
}

// TestEvalPointRoundTrips pins the wire conversion: a typed point converted
// to its wire form and parsed back must be identical, for both active and
// idle points.
func TestEvalPointRoundTrips(t *testing.T) {
	pts := []flexwatts.Point{
		{PDN: flexwatts.IVR, TDP: 18, Workload: flexwatts.MultiThread, AR: 0.6},
		{PDN: flexwatts.FlexWatts, TDP: 4, Workload: flexwatts.Graphics, AR: 0.45},
		{PDN: flexwatts.LDO, CState: flexwatts.C8},
		{PDN: flexwatts.MBVR, TDP: 4, CState: flexwatts.C0MIN},
	}
	for _, pt := range pts {
		wire := api.EvalPointFromPoint(pt)
		back, err := wire.Point()
		if err != nil {
			t.Errorf("%+v: %v", pt, err)
			continue
		}
		if back != pt {
			t.Errorf("round trip %+v != %+v", back, pt)
		}
	}
	// The wire leaves the active state implicit.
	if w := api.EvalPointFromPoint(pts[0]); w.CState != "" {
		t.Errorf("active point carries cstate %q on the wire", w.CState)
	}
	// Bad wire vocabulary surfaces as ErrInvalidPoint.
	for _, bad := range []api.EvalPoint{
		{PDN: "XVR"},
		{PDN: "IVR", Workload: "mining"},
		{PDN: "IVR", CState: "C99"},
	} {
		if _, err := bad.Point(); !errors.Is(err, api.ErrInvalidPoint) {
			t.Errorf("%+v: err = %v, want ErrInvalidPoint", bad, err)
		}
	}
}
