package api_test

import (
	"errors"
	"net/http"
	"testing"

	"repro/flexwatts"
	"repro/flexwatts/api"
)

// TestStatusMappingRoundTrips pins the error contract both sides of the
// wire share: every sentinel maps to its status and back to itself, so
// errors.Is behaves identically in the server and in the SDK.
func TestStatusMappingRoundTrips(t *testing.T) {
	sentinels := map[error]int{
		api.ErrUnknownExperiment: http.StatusNotFound,
		api.ErrInvalidPoint:      http.StatusBadRequest,
		api.ErrBatchTooLarge:     http.StatusRequestEntityTooLarge,
		api.ErrMethodNotAllowed:  http.StatusMethodNotAllowed,
		api.ErrEvaluation:        http.StatusUnprocessableEntity,
	}
	for sentinel, status := range sentinels {
		if got := api.StatusFor(sentinel); got != status {
			t.Errorf("StatusFor(%v) = %d, want %d", sentinel, got, status)
		}
		if back := api.FromStatus(status); !errors.Is(back, sentinel) {
			t.Errorf("FromStatus(%d) = %v, want %v", status, back, sentinel)
		}
	}
	if api.StatusFor(nil) != 0 {
		t.Error("StatusFor(nil) != 0")
	}
	if api.StatusFor(errors.New("boom")) != http.StatusInternalServerError {
		t.Error("unrecognized error should map to 500")
	}
	if api.FromStatus(http.StatusTeapot) != nil {
		t.Error("unmapped status should return nil")
	}
	// Wrapped sentinels keep their status — the server always wraps.
	if api.StatusFor(fmtWrap(api.ErrBatchTooLarge)) != http.StatusRequestEntityTooLarge {
		t.Error("wrapped sentinel lost its status")
	}
}

func fmtWrap(err error) error { return errors.Join(errors.New("context"), err) }

// TestEvalPointRoundTrips pins the wire conversion: a typed point converted
// to its wire form and parsed back must be identical, for both active and
// idle points.
func TestEvalPointRoundTrips(t *testing.T) {
	pts := []flexwatts.Point{
		{PDN: flexwatts.IVR, TDP: 18, Workload: flexwatts.MultiThread, AR: 0.6},
		{PDN: flexwatts.FlexWatts, TDP: 4, Workload: flexwatts.Graphics, AR: 0.45},
		{PDN: flexwatts.LDO, CState: flexwatts.C8},
		{PDN: flexwatts.MBVR, TDP: 4, CState: flexwatts.C0MIN},
	}
	for _, pt := range pts {
		wire := api.EvalPointFromPoint(pt)
		back, err := wire.Point()
		if err != nil {
			t.Errorf("%+v: %v", pt, err)
			continue
		}
		if back != pt {
			t.Errorf("round trip %+v != %+v", back, pt)
		}
	}
	// The wire leaves the active state implicit.
	if w := api.EvalPointFromPoint(pts[0]); w.CState != "" {
		t.Errorf("active point carries cstate %q on the wire", w.CState)
	}
	// Bad wire vocabulary surfaces as ErrInvalidPoint.
	for _, bad := range []api.EvalPoint{
		{PDN: "XVR"},
		{PDN: "IVR", Workload: "mining"},
		{PDN: "IVR", CState: "C99"},
	} {
		if _, err := bad.Point(); !errors.Is(err, api.ErrInvalidPoint) {
			t.Errorf("%+v: err = %v, want ErrInvalidPoint", bad, err)
		}
	}
}
