package api

import (
	"fmt"

	"repro/flexwatts"
)

// Optimizer endpoint paths served by flexwattsd.
const (
	// PathOptimize runs a design-space search to completion and returns
	// its Pareto frontier (POST).
	PathOptimize = "/v1/optimize"
	// PathOptimizeStream runs a design-space search and streams progress
	// and frontier-update events back incrementally as NDJSON, one
	// OptimizeEvent per line, ending with a "result" event (POST).
	PathOptimizeStream = "/v1/optimize/stream"
)

// OptimizeRequest is the POST /v1/optimize request body: the wire form of
// flexwatts.OptimizeSpec, with enums as strings spelled the way the paper
// spells them ("IVR", …) resp. the optimizer's wire vocabulary ("cost",
// "anneal", …), parsed case-insensitively.
type OptimizeRequest struct {
	TDP             float64   `json:"tdp"`
	PDNs            []string  `json:"pdns,omitempty"`
	LoadlineScales  []float64 `json:"loadline_scales,omitempty"`
	GuardbandScales []float64 `json:"guardband_scales,omitempty"`
	VRScales        []float64 `json:"vr_scales,omitempty"`
	Objectives      []string  `json:"objectives,omitempty"`
	Strategy        string    `json:"strategy,omitempty"`
	Seed            int64     `json:"seed,omitempty"`
	Budget          int       `json:"budget,omitempty"`
	Chains          int       `json:"chains,omitempty"`
	MaxCost         float64   `json:"max_cost,omitempty"`
	MaxArea         float64   `json:"max_area,omitempty"`
	MaxBatteryPower float64   `json:"max_battery_power,omitempty"`
	MinPerformance  float64   `json:"min_performance,omitempty"`
}

// OptimizeRequestFromSpec converts a typed search spec to its wire form.
func OptimizeRequestFromSpec(s flexwatts.OptimizeSpec) OptimizeRequest {
	r := OptimizeRequest{
		TDP:             float64(s.TDP),
		LoadlineScales:  s.LoadlineScales,
		GuardbandScales: s.GuardbandScales,
		VRScales:        s.VRScales,
		Seed:            s.Seed,
		Budget:          s.Budget,
		Chains:          s.Chains,
		MaxCost:         s.MaxCost,
		MaxArea:         s.MaxArea,
		MaxBatteryPower: float64(s.MaxBatteryPower),
		MinPerformance:  s.MinPerformance,
	}
	if s.PDNs != nil {
		r.PDNs = make([]string, len(s.PDNs))
		for i, k := range s.PDNs {
			r.PDNs[i] = k.String()
		}
	}
	if s.Objectives != nil {
		r.Objectives = make([]string, len(s.Objectives))
		for i, o := range s.Objectives {
			r.Objectives[i] = o.String()
		}
	}
	if s.Strategy != flexwatts.StrategyAuto {
		r.Strategy = s.Strategy.String()
	}
	return r
}

// Spec parses the wire request back into the typed vocabulary.
func (r OptimizeRequest) Spec() (flexwatts.OptimizeSpec, error) {
	s := flexwatts.OptimizeSpec{
		TDP:             flexwatts.Watt(r.TDP),
		LoadlineScales:  r.LoadlineScales,
		GuardbandScales: r.GuardbandScales,
		VRScales:        r.VRScales,
		Seed:            r.Seed,
		Budget:          r.Budget,
		Chains:          r.Chains,
		MaxCost:         r.MaxCost,
		MaxArea:         r.MaxArea,
		MaxBatteryPower: flexwatts.Watt(r.MaxBatteryPower),
		MinPerformance:  r.MinPerformance,
	}
	if r.PDNs != nil {
		s.PDNs = make([]flexwatts.Kind, len(r.PDNs))
		for i, name := range r.PDNs {
			k, err := flexwatts.ParseKind(name)
			if err != nil {
				return flexwatts.OptimizeSpec{}, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
			}
			s.PDNs[i] = k
		}
	}
	if r.Objectives != nil {
		s.Objectives = make([]flexwatts.Objective, len(r.Objectives))
		for i, name := range r.Objectives {
			o, err := flexwatts.ParseObjective(name)
			if err != nil {
				return flexwatts.OptimizeSpec{}, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
			}
			s.Objectives[i] = o
		}
	}
	st, err := flexwatts.ParseSearchStrategy(r.Strategy)
	if err != nil {
		return flexwatts.OptimizeSpec{}, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	s.Strategy = st
	return s, nil
}

// OptimizeConfig is one candidate design on the wire.
type OptimizeConfig struct {
	PDN            string  `json:"pdn"`
	LoadlineScale  float64 `json:"loadline_scale"`
	GuardbandScale float64 `json:"guardband_scale"`
	VRScale        float64 `json:"vr_scale"`
}

// OptimizeScores are one candidate's objective values on the wire.
type OptimizeScores struct {
	Cost         float64 `json:"cost"`
	Area         float64 `json:"area"`
	BatteryPower float64 `json:"battery_power"`
	Performance  float64 `json:"performance"`
}

// ParetoPoint is one frontier member on the wire. Key is the candidate's
// index in the kind-major lexicographic enumeration of the space.
type ParetoPoint struct {
	Key    int            `json:"key"`
	Config OptimizeConfig `json:"config"`
	Scores OptimizeScores `json:"scores"`
}

// ParetoPointFromPoint converts a typed frontier member to its wire form.
func ParetoPointFromPoint(p flexwatts.ParetoPoint) ParetoPoint {
	return ParetoPoint{
		Key: p.Key,
		Config: OptimizeConfig{
			PDN:            p.Config.PDN.String(),
			LoadlineScale:  p.Config.LoadlineScale,
			GuardbandScale: p.Config.GuardbandScale,
			VRScale:        p.Config.VRScale,
		},
		Scores: OptimizeScores{
			Cost:         p.Scores.Cost,
			Area:         p.Scores.Area,
			BatteryPower: float64(p.Scores.BatteryPower),
			Performance:  p.Scores.Performance,
		},
	}
}

// Point parses the wire frontier member back into the typed vocabulary.
func (p ParetoPoint) Point() (flexwatts.ParetoPoint, error) {
	k, err := flexwatts.ParseKind(p.Config.PDN)
	if err != nil {
		return flexwatts.ParetoPoint{}, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	return flexwatts.ParetoPoint{
		Key: p.Key,
		Config: flexwatts.OptimizeConfig{
			PDN:            k,
			LoadlineScale:  p.Config.LoadlineScale,
			GuardbandScale: p.Config.GuardbandScale,
			VRScale:        p.Config.VRScale,
		},
		Scores: flexwatts.OptimizeScores{
			Cost:         p.Scores.Cost,
			Area:         p.Scores.Area,
			BatteryPower: flexwatts.Watt(p.Scores.BatteryPower),
			Performance:  p.Scores.Performance,
		},
	}, nil
}

// OptimizeResponse is the POST /v1/optimize response body.
type OptimizeResponse struct {
	Frontier  []ParetoPoint `json:"frontier"`
	Evaluated int           `json:"evaluated"`
	SpaceSize int           `json:"space_size"`
	Strategy  string        `json:"strategy"`
	Workers   int           `json:"workers"`
}

// OptimizeResponseFromResult converts a typed search result to its wire
// form (Workers is the server's concern and stays zero here).
func OptimizeResponseFromResult(r flexwatts.OptimizeResult) OptimizeResponse {
	out := OptimizeResponse{
		Frontier:  make([]ParetoPoint, len(r.Frontier)),
		Evaluated: r.Evaluated,
		SpaceSize: r.SpaceSize,
		Strategy:  r.Strategy.String(),
	}
	for i, p := range r.Frontier {
		out.Frontier[i] = ParetoPointFromPoint(p)
	}
	return out
}

// Result parses the wire response back into the typed vocabulary.
func (r OptimizeResponse) Result() (flexwatts.OptimizeResult, error) {
	st, err := flexwatts.ParseSearchStrategy(r.Strategy)
	if err != nil {
		return flexwatts.OptimizeResult{}, fmt.Errorf("%w: %v", ErrInvalidSpec, err)
	}
	out := flexwatts.OptimizeResult{
		Frontier:  make([]flexwatts.ParetoPoint, len(r.Frontier)),
		Evaluated: r.Evaluated,
		SpaceSize: r.SpaceSize,
		Strategy:  st,
	}
	for i, p := range r.Frontier {
		if out.Frontier[i], err = p.Point(); err != nil {
			return flexwatts.OptimizeResult{}, err
		}
	}
	return out, nil
}

// Optimizer stream event discriminators, the OptimizeEvent.Event values.
const (
	// OptimizeEventProgress reports evaluation counts after each batch or
	// annealing round.
	OptimizeEventProgress = "progress"
	// OptimizeEventFrontier reports a candidate entering the Pareto
	// frontier (it may be displaced again later); Point is set.
	OptimizeEventFrontier = "frontier"
	// OptimizeEventResult is the final line of a successful stream; Result
	// is set.
	OptimizeEventResult = "result"
	// OptimizeEventError is the final line of a failed stream; Code and
	// Error are set.
	OptimizeEventError = "error"
)

// OptimizeEvent is one NDJSON line of the POST /v1/optimize/stream
// response. Event discriminates: "progress" and "frontier" lines arrive
// while the search runs, then exactly one terminal line — "result" with
// the finished search, or "error" with the failure rendered in CodeFor's
// vocabulary.
type OptimizeEvent struct {
	Event        string            `json:"event"`
	Evaluated    int               `json:"evaluated,omitempty"`
	SpaceSize    int               `json:"space_size,omitempty"`
	FrontierSize int               `json:"frontier_size,omitempty"`
	Point        *ParetoPoint      `json:"point,omitempty"`
	Result       *OptimizeResponse `json:"result,omitempty"`
	Code         string            `json:"code,omitempty"`
	Error        string            `json:"error,omitempty"`
}

// Err returns the stream event's error as a typed error — the sentinel for
// its wire code wrapping the message — or nil for a non-error event.
func (e OptimizeEvent) Err() error {
	if e.Event != OptimizeEventError {
		return nil
	}
	if sentinel := FromCode(e.Code); sentinel != nil {
		return fmt.Errorf("optimize: %w: %s", sentinel, e.Error)
	}
	return fmt.Errorf("optimize: %s", e.Error)
}
