// Package api defines the wire vocabulary of the flexwattsd HTTP/JSON
// service: request and response bodies, endpoint paths, and the typed
// sentinel errors both sides of the wire agree on. The daemon
// (internal/server) and the SDK (flexwatts/client) consume these same
// definitions, so the two can never drift.
//
// Wire enums are plain strings spelled the way the paper spells them
// ("IVR", "Multi-Thread", "C0MIN", …) and parsed case-insensitively;
// the typed counterparts live in the flexwatts package, with conversions
// in EvalPointFromPoint and EvalPoint.Point.
package api

import (
	"errors"
	"fmt"
	"net/http"

	"repro/flexwatts"
	"repro/flexwatts/report"
)

// Endpoint paths served by flexwattsd.
const (
	// PathHealthz is the liveness endpoint (GET).
	PathHealthz = "/healthz"
	// PathExperiments lists experiment ids (GET); one experiment is
	// PathExperiments + "/{id}".
	PathExperiments = "/v1/experiments"
	// PathEvaluate evaluates a batch of points (POST).
	PathEvaluate = "/v1/evaluate"
)

// Sentinel errors of the HTTP API. The server maps them to statuses with
// StatusFor; the client SDK maps statuses back with FromStatus, so
// errors.Is works identically on both sides of the wire.
var (
	// ErrUnknownExperiment: the experiment id is not registered (404).
	ErrUnknownExperiment = errors.New("unknown experiment")
	// ErrInvalidPoint: a request body or evaluation point failed
	// validation (400).
	ErrInvalidPoint = errors.New("invalid point")
	// ErrBatchTooLarge: the batch exceeds the server's point cap (413).
	ErrBatchTooLarge = errors.New("batch too large")
	// ErrMethodNotAllowed: the endpoint exists but not for this HTTP
	// method (405).
	ErrMethodNotAllowed = errors.New("method not allowed")
	// ErrEvaluation: a well-formed point failed to evaluate (422).
	ErrEvaluation = errors.New("evaluation failed")
)

// StatusFor returns the HTTP status the API maps err to: the sentinel
// statuses above, 500 for anything unrecognized, and 0 for nil. This is
// the single place where errors become statuses.
func StatusFor(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, ErrUnknownExperiment):
		return http.StatusNotFound
	case errors.Is(err, ErrInvalidPoint):
		return http.StatusBadRequest
	case errors.Is(err, ErrBatchTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrMethodNotAllowed):
		return http.StatusMethodNotAllowed
	case errors.Is(err, ErrEvaluation):
		return http.StatusUnprocessableEntity
	default:
		return http.StatusInternalServerError
	}
}

// FromStatus returns the sentinel a response status maps to, or nil for a
// status the API assigns no sentinel (the caller falls back to a generic
// error). It is StatusFor's inverse, used by the client SDK.
func FromStatus(status int) error {
	switch status {
	case http.StatusNotFound:
		return ErrUnknownExperiment
	case http.StatusBadRequest:
		return ErrInvalidPoint
	case http.StatusRequestEntityTooLarge:
		return ErrBatchTooLarge
	case http.StatusMethodNotAllowed:
		return ErrMethodNotAllowed
	case http.StatusUnprocessableEntity:
		return ErrEvaluation
	default:
		return nil
	}
}

// Error is the uniform error response body.
type Error struct {
	Message string `json:"error"`
}

// Health is the GET /healthz response: liveness plus cache statistics of
// the shared evaluation environment.
type Health struct {
	Status      string `json:"status"`
	UptimeS     int64  `json:"uptime_s"`
	Experiments int    `json:"experiments"`
	Workers     int    `json:"workers"`
	CacheKeys   int    `json:"cache_keys"`
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
}

// ExperimentInfo is one entry of the GET /v1/experiments listing.
type ExperimentInfo struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// ExperimentList is the GET /v1/experiments response.
type ExperimentList struct {
	Experiments []ExperimentInfo `json:"experiments"`
	Formats     []report.Format  `json:"formats"`
}

// EvalPoint is one POST /v1/evaluate request entry: a PDN kind plus either
// an active operating point (tdp, workload, ar) or a package idle state
// (cstate C0MIN or C2 and deeper). For FlexWatts points, Algorithm 1
// predicts the hybrid mode from the point itself; a zero TDP on an
// idle-state point defaults to 4 W (battery-life evaluation is
// TDP-independent, §7.1).
type EvalPoint struct {
	PDN      string  `json:"pdn"`
	TDP      float64 `json:"tdp,omitempty"`
	Workload string  `json:"workload,omitempty"`
	AR       float64 `json:"ar,omitempty"`
	CState   string  `json:"cstate,omitempty"`
}

// EvalPointFromPoint converts a typed evaluation point to its wire form.
func EvalPointFromPoint(p flexwatts.Point) EvalPoint {
	return EvalPoint{
		PDN:      p.PDN.String(),
		TDP:      float64(p.TDP),
		Workload: p.Workload.String(),
		AR:       p.AR,
		CState:   cstateWire(p.CState),
	}
}

// cstateWire renders a package state for the wire, leaving the active
// state implicit (the wire treats a missing cstate as C0).
func cstateWire(c flexwatts.CState) string {
	if c == flexwatts.C0 {
		return ""
	}
	return c.String()
}

// Point parses the wire point back into the typed vocabulary.
func (p EvalPoint) Point() (flexwatts.Point, error) {
	kind, err := flexwatts.ParseKind(p.PDN)
	if err != nil {
		return flexwatts.Point{}, fmt.Errorf("%w: %v", ErrInvalidPoint, err)
	}
	wt, err := flexwatts.ParseWorkloadType(p.Workload)
	if err != nil {
		return flexwatts.Point{}, fmt.Errorf("%w: %v", ErrInvalidPoint, err)
	}
	cs, err := flexwatts.ParseCState(p.CState)
	if err != nil {
		return flexwatts.Point{}, fmt.Errorf("%w: %v", ErrInvalidPoint, err)
	}
	return flexwatts.Point{
		PDN:      kind,
		TDP:      flexwatts.Watt(p.TDP),
		Workload: wt,
		AR:       p.AR,
		CState:   cs,
	}, nil
}

// EvalRequest is the POST /v1/evaluate request body.
type EvalRequest struct {
	Points []EvalPoint `json:"points"`
}

// EvalResult is one evaluated point: the headline PDNspot quantities.
type EvalResult struct {
	PDN    string  `json:"pdn"`
	CState string  `json:"cstate"`
	ETEE   float64 `json:"etee"`
	PNom   float64 `json:"p_nom"`
	PIn    float64 `json:"p_in"`
	Loss   float64 `json:"loss"`
}

// EvalResponse is the POST /v1/evaluate response body.
type EvalResponse struct {
	Results []EvalResult `json:"results"`
	Workers int          `json:"workers"`
}
