// Package api defines the wire vocabulary of the flexwattsd HTTP/JSON
// service: request and response bodies, endpoint paths, and the typed
// sentinel errors both sides of the wire agree on. The daemon
// (internal/server) and the SDK (flexwatts/client) consume these same
// definitions, so the two can never drift.
//
// Wire enums are plain strings spelled the way the paper spells them
// ("IVR", "Multi-Thread", "C0MIN", …) and parsed case-insensitively;
// the typed counterparts live in the flexwatts package, with conversions
// in EvalPointFromPoint and EvalPoint.Point.
package api

import (
	"errors"
	"fmt"
	"net/http"

	"repro/flexwatts"
	"repro/flexwatts/report"
)

// Endpoint paths served by flexwattsd.
const (
	// PathHealthz is the liveness endpoint (GET): it answers 200 as long
	// as the process serves requests at all.
	PathHealthz = "/healthz"
	// PathReadyz is the readiness endpoint (GET): 503 until the
	// persistent cache tier's warm-start scan has completed, 200 after —
	// with Ready.Degraded true when the disk tier has been disabled by
	// repeated faults (the daemon still serves at full correctness,
	// computing what it can no longer persist).
	PathReadyz = "/readyz"
	// PathAdminCache is the cache administration endpoint: GET reports
	// CacheStats for both tiers, DELETE flushes them (memory keys dropped,
	// disk segments removed).
	PathAdminCache = "/v1/admin/cache"
	// PathMetrics exposes operational metrics in Prometheus text format
	// (GET).
	PathMetrics = "/metrics"
	// PathExperiments lists experiment ids (GET); one experiment is
	// PathExperiments + "/{id}".
	PathExperiments = "/v1/experiments"
	// PathEvaluate evaluates a batch of points (POST).
	PathEvaluate = "/v1/evaluate"
	// PathEvaluateStream evaluates a batch of points and streams the
	// results back incrementally as NDJSON, one EvalStreamResult per line
	// in point order (POST).
	PathEvaluateStream = "/v1/evaluate/stream"
)

// Sentinel errors of the HTTP API. The server maps them to statuses with
// StatusFor; the client SDK maps statuses back with FromStatus, so
// errors.Is works identically on both sides of the wire.
var (
	// ErrUnknownExperiment: the experiment id is not registered (404).
	ErrUnknownExperiment = errors.New("unknown experiment")
	// ErrInvalidPoint: a request body or evaluation point failed
	// validation (400).
	ErrInvalidPoint = errors.New("invalid point")
	// ErrBatchTooLarge: the batch exceeds the server's point cap (413).
	ErrBatchTooLarge = errors.New("batch too large")
	// ErrMethodNotAllowed: the endpoint exists but not for this HTTP
	// method (405).
	ErrMethodNotAllowed = errors.New("method not allowed")
	// ErrEvaluation: a well-formed point failed to evaluate (422).
	ErrEvaluation = errors.New("evaluation failed")
	// ErrRateLimited: this client exceeded its request rate and should
	// retry after the Retry-After delay (429).
	ErrRateLimited = errors.New("rate limited")
	// ErrOverloaded: the server's inflight-points budget is exhausted and
	// the request was shed; retry after the Retry-After delay (503).
	ErrOverloaded = errors.New("server overloaded")
	// ErrInvalidSpec: an optimizer search spec failed validation (400).
	ErrInvalidSpec = errors.New("invalid spec")
)

// mapping is the single errors ↔ status ↔ wire-code table. Every view of
// the error contract — StatusFor, FromStatus, CodeFor, FromCode — derives
// from this one slice, so the mappings cannot drift apart (the round-trip
// test walks the table).
var mapping = []struct {
	err    error
	status int
	code   string
}{
	{ErrUnknownExperiment, http.StatusNotFound, "unknown_experiment"},
	{ErrInvalidPoint, http.StatusBadRequest, "invalid_point"},
	{ErrBatchTooLarge, http.StatusRequestEntityTooLarge, "batch_too_large"},
	{ErrMethodNotAllowed, http.StatusMethodNotAllowed, "method_not_allowed"},
	{ErrEvaluation, http.StatusUnprocessableEntity, "evaluation_failed"},
	{ErrRateLimited, http.StatusTooManyRequests, "rate_limited"},
	{ErrOverloaded, http.StatusServiceUnavailable, "overloaded"},
	// ErrInvalidSpec sits after ErrInvalidPoint on purpose: both map to
	// 400, and FromStatus returns the table's first match, so the
	// historical FromStatus(400) → ErrInvalidPoint contract holds. Clients
	// distinguish the two by wire code (FromCode "invalid_spec").
	{ErrInvalidSpec, http.StatusBadRequest, "invalid_spec"},
}

// StatusFor returns the HTTP status the API maps err to: the sentinel
// statuses above, 500 for anything unrecognized, and 0 for nil. This is
// the single place where errors become statuses.
func StatusFor(err error) int {
	if err == nil {
		return 0
	}
	for _, m := range mapping {
		if errors.Is(err, m.err) {
			return m.status
		}
	}
	return http.StatusInternalServerError
}

// CodeFor returns the stable machine-readable wire code for err — the
// Error.Code value the server emits — "internal" for an unmapped error,
// and "" for nil.
func CodeFor(err error) string {
	if err == nil {
		return ""
	}
	for _, m := range mapping {
		if errors.Is(err, m.err) {
			return m.code
		}
	}
	return "internal"
}

// FromStatus returns the sentinel a response status maps to, or nil for a
// status the API assigns no sentinel (the caller falls back to a generic
// error). It is StatusFor's inverse, used by the client SDK.
func FromStatus(status int) error {
	for _, m := range mapping {
		if m.status == status {
			return m.err
		}
	}
	return nil
}

// FromCode returns the sentinel a wire code maps to, or nil for an
// unrecognized code. It is CodeFor's inverse.
func FromCode(code string) error {
	for _, m := range mapping {
		if m.code == code {
			return m.err
		}
	}
	return nil
}

// Retryable reports whether err is a shed-load condition (ErrRateLimited
// or ErrOverloaded) that a client may transparently retry after the
// server's Retry-After delay. Everything else is either a caller bug or a
// server bug; retrying would repeat it.
func Retryable(err error) bool {
	return errors.Is(err, ErrRateLimited) || errors.Is(err, ErrOverloaded)
}

// Error is the uniform error response body. Code is the stable
// machine-readable identifier from the sentinel table (CodeFor); Message
// is human-readable detail.
type Error struct {
	Code    string `json:"code,omitempty"`
	Message string `json:"error"`
}

// Health is the GET /healthz response: liveness plus cache statistics of
// the shared evaluation environment.
type Health struct {
	Status      string `json:"status"`
	UptimeS     int64  `json:"uptime_s"`
	Experiments int    `json:"experiments"`
	Workers     int    `json:"workers"`
	CacheKeys   int    `json:"cache_keys"`
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
}

// Ready is the GET /readyz response. Status is "starting" (503) until the
// warm-start scan completes, then "ready" or — when the disk tier has been
// disabled after repeated faults — "degraded" (both 200: a degraded daemon
// serves every request at full correctness by recomputing).
type Ready struct {
	Status      string  `json:"status"`
	Degraded    bool    `json:"degraded"`
	WarmRecords int64   `json:"warm_records"`
	WarmSeconds float64 `json:"warm_seconds"`
}

// MemoryCacheStats describes the in-memory evaluation cache tier.
type MemoryCacheStats struct {
	Keys     int   `json:"keys"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	WarmHits int64 `json:"warm_hits"`
}

// DiskCacheStats describes the persistent cache tier.
type DiskCacheStats struct {
	Dir                string  `json:"dir"`
	Degraded           bool    `json:"degraded"`
	WarmStarted        bool    `json:"warm_started"`
	LoadedRecords      int64   `json:"loaded_records"`
	WarmStartSeconds   float64 `json:"warm_start_seconds"`
	PersistedRecords   int64   `json:"persisted_records"`
	DroppedRecords     int64   `json:"dropped_records"`
	QueueDepth         int     `json:"queue_depth"`
	QueueCap           int     `json:"queue_cap"`
	QuarantinedFiles   int64   `json:"quarantined_files"`
	QuarantinedRecords int64   `json:"quarantined_records"`
	TruncatedTails     int64   `json:"truncated_tails"`
	StaleFiles         int64   `json:"stale_files"`
	Faults             int64   `json:"faults"`
}

// CacheStats is the GET /v1/admin/cache response. Disk is nil when the
// daemon runs without a persistent tier (-cache-dir unset).
type CacheStats struct {
	Memory MemoryCacheStats `json:"memory"`
	Disk   *DiskCacheStats  `json:"disk,omitempty"`
}

// CacheFlush is the DELETE /v1/admin/cache response.
type CacheFlush struct {
	FlushedKeys  int `json:"flushed_keys"`
	RemovedFiles int `json:"removed_files"`
}

// ExperimentInfo is one entry of the GET /v1/experiments listing.
type ExperimentInfo struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

// ExperimentList is the GET /v1/experiments response.
type ExperimentList struct {
	Experiments []ExperimentInfo `json:"experiments"`
	Formats     []report.Format  `json:"formats"`
}

// EvalPoint is one POST /v1/evaluate request entry: a PDN kind plus either
// an active operating point (tdp, workload, ar) or a package idle state
// (cstate C0MIN or C2 and deeper). For FlexWatts points, Algorithm 1
// predicts the hybrid mode from the point itself; a zero TDP on an
// idle-state point defaults to 4 W (battery-life evaluation is
// TDP-independent, §7.1).
type EvalPoint struct {
	PDN      string  `json:"pdn"`
	TDP      float64 `json:"tdp,omitempty"`
	Workload string  `json:"workload,omitempty"`
	AR       float64 `json:"ar,omitempty"`
	CState   string  `json:"cstate,omitempty"`
}

// EvalPointFromPoint converts a typed evaluation point to its wire form.
func EvalPointFromPoint(p flexwatts.Point) EvalPoint {
	return EvalPoint{
		PDN:      p.PDN.String(),
		TDP:      float64(p.TDP),
		Workload: p.Workload.String(),
		AR:       p.AR,
		CState:   cstateWire(p.CState),
	}
}

// cstateWire renders a package state for the wire, leaving the active
// state implicit (the wire treats a missing cstate as C0).
func cstateWire(c flexwatts.CState) string {
	if c == flexwatts.C0 {
		return ""
	}
	return c.String()
}

// Point parses the wire point back into the typed vocabulary.
func (p EvalPoint) Point() (flexwatts.Point, error) {
	kind, err := flexwatts.ParseKind(p.PDN)
	if err != nil {
		return flexwatts.Point{}, fmt.Errorf("%w: %v", ErrInvalidPoint, err)
	}
	wt, err := flexwatts.ParseWorkloadType(p.Workload)
	if err != nil {
		return flexwatts.Point{}, fmt.Errorf("%w: %v", ErrInvalidPoint, err)
	}
	cs, err := flexwatts.ParseCState(p.CState)
	if err != nil {
		return flexwatts.Point{}, fmt.Errorf("%w: %v", ErrInvalidPoint, err)
	}
	return flexwatts.Point{
		PDN:      kind,
		TDP:      flexwatts.Watt(p.TDP),
		Workload: wt,
		AR:       p.AR,
		CState:   cs,
	}, nil
}

// EvalRequest is the POST /v1/evaluate request body.
type EvalRequest struct {
	Points []EvalPoint `json:"points"`
}

// EvalResult is one evaluated point: the headline PDNspot quantities.
type EvalResult struct {
	PDN    string  `json:"pdn"`
	CState string  `json:"cstate"`
	ETEE   float64 `json:"etee"`
	PNom   float64 `json:"p_nom"`
	PIn    float64 `json:"p_in"`
	Loss   float64 `json:"loss"`
}

// EvalResponse is the POST /v1/evaluate response body.
type EvalResponse struct {
	Results []EvalResult `json:"results"`
	Workers int          `json:"workers"`
}

// EvalStreamResult is one NDJSON line of the POST /v1/evaluate/stream
// response: the result of exactly one request point, tagged with its index
// in the request, carrying either the evaluated result or that point's
// error (never both). Lines arrive in index order; a per-point failure
// does not end the stream — later points still arrive — so a consumer
// keeps every result that made it even when some points fail.
type EvalStreamResult struct {
	Index  int         `json:"index"`
	Result *EvalResult `json:"result,omitempty"`
	// Error is the point's failure, rendered with CodeFor's vocabulary in
	// Code for machine handling.
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`
}

// Err returns the stream line's error as a typed error — the sentinel for
// its wire code wrapping the message — or nil for a successful line.
func (r EvalStreamResult) Err() error {
	if r.Error == "" && r.Code == "" {
		return nil
	}
	if sentinel := FromCode(r.Code); sentinel != nil {
		return fmt.Errorf("point %d: %w: %s", r.Index, sentinel, r.Error)
	}
	return fmt.Errorf("point %d: %s", r.Index, r.Error)
}
