package client_test

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/flexwatts"
	"repro/flexwatts/api"
	"repro/flexwatts/client"
	"repro/flexwatts/report"
	"repro/internal/experiments"
	"repro/internal/server"
)

var ctx = context.Background()

// testEnv builds one shared evaluation environment; predictor
// characterization dominates its cost.
var (
	envOnce sync.Once
	envVal  *experiments.Env
	envErr  error
)

// testClient stands up a real in-process flexwattsd handler and returns an
// SDK client pointed at it — the drift test for the shared api package.
func testClient(t *testing.T, opts server.Options) *client.Client {
	t.Helper()
	envOnce.Do(func() { envVal, envErr = experiments.NewEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	ts := httptest.NewServer(server.New(envVal, opts).Handler())
	t.Cleanup(ts.Close)
	c, err := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadBaseURL(t *testing.T) {
	if _, err := client.New("ftp://example.com"); err == nil {
		t.Error("ftp scheme accepted")
	}
	if _, err := client.New("://bad"); err == nil {
		t.Error("unparseable URL accepted")
	}
}

func TestHealth(t *testing.T) {
	c := testClient(t, server.Options{})
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Experiments == 0 || h.Workers == 0 {
		t.Errorf("health %+v", h)
	}
}

func TestExperiments(t *testing.T) {
	c := testClient(t, server.Options{})
	l, err := c.Experiments(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ids := make(map[string]bool, len(l.Experiments))
	for _, e := range l.Experiments {
		ids[e.ID] = true
	}
	for _, want := range []string{"fig2a", "fig7", "tab1", "obs"} {
		if !ids[want] {
			t.Errorf("listing missing %q", want)
		}
	}
	if len(l.Formats) != 3 {
		t.Errorf("formats %v", l.Formats)
	}
}

// TestExperimentASCIIMatchesGolden closes the loop across all three layers:
// the bytes the SDK fetches over HTTP must equal the committed golden that
// also pins the CLI output.
func TestExperimentASCIIMatchesGolden(t *testing.T) {
	c := testClient(t, server.Options{})
	body, err := c.Experiment(ctx, "tab1", report.FormatASCII)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "internal", "experiments", "testdata", "tab1.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, golden) {
		t.Error("SDK-fetched ASCII differs from the committed golden")
	}
}

func TestExperimentDataset(t *testing.T) {
	c := testClient(t, server.Options{})
	ds, err := c.ExperimentDataset(ctx, "tab2")
	if err != nil {
		t.Fatal(err)
	}
	if ds.ID != "tab2" || len(ds.Tables) == 0 {
		t.Errorf("dataset id %q with %d tables", ds.ID, len(ds.Tables))
	}
}

func TestUnknownExperimentSentinel(t *testing.T) {
	c := testClient(t, server.Options{})
	_, err := c.Experiment(ctx, "fig99", report.FormatASCII)
	if !errors.Is(err, api.ErrUnknownExperiment) {
		t.Errorf("err = %v, want ErrUnknownExperiment", err)
	}
	if _, err := c.ExperimentDataset(ctx, "fig99"); !errors.Is(err, api.ErrUnknownExperiment) {
		t.Errorf("dataset err = %v, want ErrUnknownExperiment", err)
	}
}

// TestEvaluateBatchMatchesLibrary pins the "library and service report
// identical numbers" contract: the same typed points evaluated through the
// SDK and through a local flexwatts.Client must agree exactly.
func TestEvaluateBatchMatchesLibrary(t *testing.T) {
	c := testClient(t, server.Options{})
	pts := []flexwatts.Point{
		{PDN: flexwatts.IVR, TDP: 18, Workload: flexwatts.MultiThread, AR: 0.6},
		{PDN: flexwatts.FlexWatts, TDP: 4, Workload: flexwatts.SingleThread, AR: 0.5},
		{PDN: flexwatts.LDO, CState: flexwatts.C8},
	}
	res, err := c.EvaluateBatch(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(pts) {
		t.Fatalf("%d results for %d points", len(res), len(pts))
	}
	lib, err := flexwatts.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range pts {
		want, err := lib.Evaluate(ctx, pt)
		if err != nil {
			t.Fatal(err)
		}
		got := res[i]
		if got.PDN != pt.PDN.String() {
			t.Errorf("point %d: PDN %q, want %q", i, got.PDN, pt.PDN)
		}
		if got.ETEE != want.ETEE || got.PNom != float64(want.PNomTotal) || got.PIn != float64(want.PIn) {
			t.Errorf("point %d: served (etee %g, pnom %g, pin %g) != library (%g, %g, %g)",
				i, got.ETEE, got.PNom, got.PIn, want.ETEE, float64(want.PNomTotal), float64(want.PIn))
		}
	}
}

func TestBatchTooLargeSentinel(t *testing.T) {
	c := testClient(t, server.Options{MaxBatch: 2})
	pts := make([]flexwatts.Point, 3)
	for i := range pts {
		pts[i] = flexwatts.Point{PDN: flexwatts.IVR, TDP: 18, Workload: flexwatts.MultiThread, AR: 0.6}
	}
	_, err := c.EvaluateBatch(ctx, pts)
	if !errors.Is(err, api.ErrBatchTooLarge) {
		t.Errorf("err = %v, want ErrBatchTooLarge", err)
	}
}

func TestInvalidPointSentinelNamesIndex(t *testing.T) {
	c := testClient(t, server.Options{})
	_, err := c.EvaluateBatch(ctx, []flexwatts.Point{
		{PDN: flexwatts.IVR, TDP: 18, Workload: flexwatts.MultiThread, AR: 7},
	})
	if !errors.Is(err, api.ErrInvalidPoint) {
		t.Fatalf("err = %v, want ErrInvalidPoint", err)
	}
	if !strings.Contains(err.Error(), "point 0") {
		t.Errorf("error %q does not name the failing index", err)
	}
}

func TestCancelledContext(t *testing.T) {
	c := testClient(t, server.Options{})
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Health(cctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Health err = %v, want context.Canceled", err)
	}
	pts := []flexwatts.Point{{PDN: flexwatts.IVR, TDP: 18, Workload: flexwatts.MultiThread, AR: 0.6}}
	if _, err := c.EvaluateBatch(cctx, pts); !errors.Is(err, context.Canceled) {
		t.Errorf("EvaluateBatch err = %v, want context.Canceled", err)
	}
}
