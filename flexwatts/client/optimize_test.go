package client_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/flexwatts"
	"repro/flexwatts/api"
	"repro/flexwatts/client"
	"repro/internal/server"
)

func sdkOptimizeSpec() flexwatts.OptimizeSpec {
	return flexwatts.OptimizeSpec{
		TDP:             15,
		PDNs:            []flexwatts.Kind{flexwatts.IVR, flexwatts.MBVR},
		LoadlineScales:  []float64{0.9, 1},
		GuardbandScales: []float64{1, 1.25},
	}
}

// TestOptimizeSDKMatchesLibrary is the served half of the optimizer's
// identity contract: the SDK's answer through a real flexwattsd handler
// must be byte-identical (as JSON) to the in-process library client's for
// the same spec — one engine, two doors.
func TestOptimizeSDKMatchesLibrary(t *testing.T) {
	c := testClient(t, server.Options{})
	served, err := c.Optimize(ctx, sdkOptimizeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if len(served.Frontier) == 0 {
		t.Fatal("empty served frontier")
	}
	lib, err := flexwatts.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	local, err := lib.Optimize(ctx, sdkOptimizeSpec())
	if err != nil {
		t.Fatal(err)
	}
	servedJSON, err := json.Marshal(served)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, err := json.Marshal(local)
	if err != nil {
		t.Fatal(err)
	}
	if string(servedJSON) != string(localJSON) {
		t.Errorf("served and library results differ:\n%s\n%s", servedJSON, localJSON)
	}
}

// TestOptimizeStreamSDK drains a real served stream through the SDK:
// incremental events arrive through the callback and the terminal result
// equals the buffered endpoint's answer.
func TestOptimizeStreamSDK(t *testing.T) {
	c := testClient(t, server.Options{})
	frontiers, progress := 0, 0
	streamed, err := c.OptimizeStream(ctx, sdkOptimizeSpec(), func(ev api.OptimizeEvent) error {
		switch ev.Event {
		case api.OptimizeEventFrontier:
			frontiers++
			if ev.Point == nil {
				t.Error("frontier event without point")
			}
		case api.OptimizeEventProgress:
			progress++
		default:
			t.Errorf("unexpected callback event %q", ev.Event)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if frontiers == 0 || progress == 0 {
		t.Errorf("%d frontier and %d progress events, want both > 0", frontiers, progress)
	}
	buffered, err := c.Optimize(ctx, sdkOptimizeSpec())
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(streamed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(buffered)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Errorf("streamed result differs from buffered:\n%s\n%s", a, b)
	}

	sentinel := errors.New("stop here")
	if _, err := c.OptimizeStream(ctx, sdkOptimizeSpec(), func(api.OptimizeEvent) error {
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Errorf("callback error surfaced as %v", err)
	}
}

func TestOptimizeSDKInvalidSpec(t *testing.T) {
	c := testClient(t, server.Options{})
	if _, err := c.Optimize(ctx, flexwatts.OptimizeSpec{TDP: 900}); !errors.Is(err, api.ErrInvalidSpec) {
		t.Errorf("err %v, want api.ErrInvalidSpec", err)
	}
	if _, err := c.OptimizeStream(ctx, flexwatts.OptimizeSpec{TDP: 900}, nil); !errors.Is(err, api.ErrInvalidSpec) {
		t.Errorf("stream err %v, want api.ErrInvalidSpec", err)
	}
}

// TestOptimizeStreamTerminalError pins the protocol edge the real server
// rarely exercises: a terminal "error" line must surface as its typed
// sentinel, and a stream that ends without any terminal line must fail
// rather than return a zero result.
func TestOptimizeStreamTerminalError(t *testing.T) {
	lines := []string{
		`{"event":"progress","evaluated":4,"space_size":8}`,
		`{"event":"error","code":"overloaded","error":"2 searches already in flight"}`,
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		for _, l := range lines {
			fmt.Fprintln(w, l)
		}
	}))
	defer ts.Close()
	c, err := client.New(ts.URL, client.WithHTTPClient(ts.Client()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.OptimizeStream(ctx, sdkOptimizeSpec(), nil); !errors.Is(err, api.ErrOverloaded) {
		t.Errorf("terminal error line surfaced as %v, want api.ErrOverloaded", err)
	}

	lines = lines[:1] // drop the terminal line entirely
	if _, err := c.OptimizeStream(ctx, sdkOptimizeSpec(), nil); err == nil {
		t.Error("truncated stream returned a result")
	}
}
