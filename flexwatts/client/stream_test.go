package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/flexwatts"
	"repro/flexwatts/api"
	"repro/flexwatts/client"
	"repro/internal/server"
)

// arPoints builds n typed points spread across the AR axis.
func arPoints(n int) []flexwatts.Point {
	pts := make([]flexwatts.Point, n)
	for i := range pts {
		pts[i] = flexwatts.Point{
			PDN: flexwatts.MBVR, TDP: 18, Workload: flexwatts.MultiThread,
			AR: 0.40 + 0.5*float64(i)/float64(n),
		}
	}
	return pts
}

// TestEvaluateStreamMatchesBatch pins the SDK-level parity contract: the
// streaming method delivers the same results as the buffered one, in
// order, one callback per point.
func TestEvaluateStreamMatchesBatch(t *testing.T) {
	c := testClient(t, server.Options{})
	pts := arPoints(150)

	want, err := c.EvaluateBatch(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	var got []api.EvalStreamResult
	if err := c.EvaluateStream(ctx, pts, func(r api.EvalStreamResult) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream delivered %d results, batch %d", len(got), len(want))
	}
	for i, r := range got {
		if r.Index != i {
			t.Fatalf("callback %d carries index %d", i, r.Index)
		}
		if r.Err() != nil {
			t.Fatalf("callback %d: unexpected error %v", i, r.Err())
		}
		if *r.Result != want[i] {
			t.Errorf("point %d: stream %+v != batch %+v", i, *r.Result, want[i])
		}
	}
}

// TestEvaluateStreamCallbackStops: a non-nil error from fn ends the
// stream immediately and is returned verbatim; no further callbacks run.
func TestEvaluateStreamCallbackStops(t *testing.T) {
	c := testClient(t, server.Options{})
	stop := errors.New("enough")
	calls := 0
	err := c.EvaluateStream(ctx, arPoints(100), func(r api.EvalStreamResult) error {
		calls++
		if calls == 3 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) {
		t.Fatalf("err = %v, want the callback's error", err)
	}
	if calls != 3 {
		t.Errorf("%d callbacks ran after the stop", calls-3)
	}
}

// TestEvaluateStreamValidation: whole-request failures surface as the
// usual sentinels, before any callback runs.
func TestEvaluateStreamValidation(t *testing.T) {
	c := testClient(t, server.Options{MaxBatch: 2})
	called := false
	err := c.EvaluateStream(ctx, arPoints(3), func(api.EvalStreamResult) error {
		called = true
		return nil
	})
	if !errors.Is(err, api.ErrBatchTooLarge) {
		t.Errorf("err = %v, want ErrBatchTooLarge", err)
	}
	if called {
		t.Error("callback ran for a rejected request")
	}
}

// TestEvaluateStreamPartialResults pins the partial-progress contract: a
// mid-stream transport failure keeps every callback that already ran and
// returns an error naming how far the stream got.
func TestEvaluateStreamPartialResults(t *testing.T) {
	// A fake server that streams a few valid lines then drops the
	// connection mid-body.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != api.PathEvaluateStream {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i := 0; i < 5; i++ {
			fmt.Fprintf(w, `{"index":%d,"result":{"pdn":"MBVR","etee":0.9}}`+"\n", i)
		}
		w.(http.Flusher).Flush()
		// Hijack and sever the TCP connection without a terminating chunk,
		// so the client sees an unexpected EOF mid-stream.
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	err = c.EvaluateStream(ctx, arPoints(50), func(r api.EvalStreamResult) error {
		if r.Index != delivered {
			t.Fatalf("callback %d carries index %d", delivered, r.Index)
		}
		delivered++
		return nil
	})
	if delivered != 5 {
		t.Errorf("delivered %d results before the failure, want 5", delivered)
	}
	if err == nil {
		t.Fatal("mid-stream disconnect reported success")
	}
}

// TestEvaluateStreamErrorLines: per-point error lines reach the callback
// as Err() != nil with the evaluation sentinel, and the stream continues.
func TestEvaluateStreamErrorLines(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"index":0,"result":{"pdn":"MBVR","etee":0.9}}`)
		fmt.Fprintln(w, `{"index":1,"code":"evaluation_failed","error":"predictor diverged"}`)
		fmt.Fprintln(w, `{"index":2,"result":{"pdn":"MBVR","etee":0.8}}`)
	}))
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var errs, oks int
	if err := c.EvaluateStream(ctx, arPoints(3), func(r api.EvalStreamResult) error {
		if e := r.Err(); e != nil {
			if !errors.Is(e, api.ErrEvaluation) {
				t.Errorf("line %d: err = %v, want ErrEvaluation", r.Index, e)
			}
			errs++
		} else {
			oks++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if errs != 1 || oks != 2 {
		t.Errorf("saw %d error lines and %d results, want 1 and 2", errs, oks)
	}
}

// shedServer answers the first n requests with status (plus Retry-After),
// then delegates to ok.
func shedServer(t *testing.T, n int, status int, ok http.HandlerFunc) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= int64(n) {
			w.Header().Set("Retry-After", "1")
			code := "overloaded"
			if status == http.StatusTooManyRequests {
				code = "rate_limited"
			}
			w.WriteHeader(status)
			fmt.Fprintf(w, `{"code":%q,"error":"shed"}`, code)
			return
		}
		ok(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// TestRetryOnShed pins the transparent-retry contract: 429 and 503 are
// retried after the Retry-After hint, and the request then succeeds
// without the caller seeing the shed.
func TestRetryOnShed(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		ts, calls := shedServer(t, 1, status, func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprintln(w, `{"status":"ok","experiments":4,"workers":1}`)
		})
		c, err := client.New(ts.URL, client.WithMaxRetryWait(10*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		h, err := c.Health(ctx)
		if err != nil {
			t.Fatalf("status %d not retried: %v", status, err)
		}
		if h.Status != "ok" {
			t.Errorf("health %+v", h)
		}
		if got := calls.Load(); got != 2 {
			t.Errorf("status %d: server saw %d requests, want 2", status, got)
		}
	}
}

// TestRetryBudgetExhausted: a server that never recovers surfaces the
// shed sentinel after the configured number of retries.
func TestRetryBudgetExhausted(t *testing.T) {
	ts, calls := shedServer(t, 1000, http.StatusTooManyRequests, nil)
	c, err := client.New(ts.URL,
		client.WithRetries(2), client.WithMaxRetryWait(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Health(ctx)
	if !errors.Is(err, api.ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (1 + 2 retries)", got)
	}
}

// TestRetryDisabled: WithRetries(0) surfaces the sentinel on the first
// shed response.
func TestRetryDisabled(t *testing.T) {
	ts, calls := shedServer(t, 1000, http.StatusServiceUnavailable, nil)
	c, err := client.New(ts.URL, client.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Health(ctx); !errors.Is(err, api.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d requests, want 1", got)
	}
}

// TestRetryHonorsContext: cancellation during the retry wait returns
// promptly with the context's error.
func TestRetryHonorsContext(t *testing.T) {
	ts, _ := shedServer(t, 1000, http.StatusTooManyRequests, nil)
	c, err := client.New(ts.URL) // Retry-After: 1s, default cap 5s
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.Health(cctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Error("cancellation did not interrupt the retry wait")
	}
}
