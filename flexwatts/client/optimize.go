package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/flexwatts"
	"repro/flexwatts/api"
)

// OptimizeRaw posts a raw wire-form search (POST /v1/optimize). Most
// callers want Optimize; use OptimizeRaw to control the wire body
// directly.
func (c *Client) OptimizeRaw(ctx context.Context, req api.OptimizeRequest) (api.OptimizeResponse, error) {
	var out api.OptimizeResponse
	body, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	b, err := c.do(ctx, http.MethodPost, api.PathOptimize, body)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(b, &out); err != nil {
		return out, err
	}
	return out, nil
}

// Optimize runs a design-space search on the daemon and returns its Pareto
// frontier (POST /v1/optimize). Malformed specs return api.ErrInvalidSpec;
// when the daemon's search slots are busy the request is shed and retried
// per the client's retry policy before api.ErrOverloaded surfaces.
// Cancelling ctx drops the connection, which aborts the server's search
// mid-batch.
func (c *Client) Optimize(ctx context.Context, spec flexwatts.OptimizeSpec) (flexwatts.OptimizeResult, error) {
	resp, err := c.OptimizeRaw(ctx, api.OptimizeRequestFromSpec(spec))
	if err != nil {
		return flexwatts.OptimizeResult{}, err
	}
	res, err := resp.Result()
	if err != nil {
		return flexwatts.OptimizeResult{}, fmt.Errorf("client: optimize response: %w", err)
	}
	return res, nil
}

// OptimizeStream runs a design-space search through POST
// /v1/optimize/stream and delivers progress and frontier-update events
// incrementally: fn (when non-nil) is called once per event line as it
// arrives off the wire, so a caller can render a live frontier while the
// server is still searching. The final "result" line becomes the return
// value; a terminal "error" line surfaces as that error (typed via its
// wire code, so errors.Is works). Returning a non-nil error from fn stops
// the stream — the server's search is cancelled via the dropped
// connection — and OptimizeStream returns that error.
func (c *Client) OptimizeStream(ctx context.Context, spec flexwatts.OptimizeSpec, fn func(api.OptimizeEvent) error) (flexwatts.OptimizeResult, error) {
	var zero flexwatts.OptimizeResult
	body, err := json.Marshal(api.OptimizeRequestFromSpec(spec))
	if err != nil {
		return zero, err
	}
	resp, err := c.send(ctx, http.MethodPost, api.PathOptimizeStream, body)
	if err != nil {
		return zero, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return zero, err
		}
		return zero, apiError(resp, b)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	delivered := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev api.OptimizeEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			return zero, fmt.Errorf("client: optimize stream line %d: %w", delivered, err)
		}
		delivered++
		switch ev.Event {
		case api.OptimizeEventResult:
			if ev.Result == nil {
				return zero, fmt.Errorf("client: optimize stream: result event without result")
			}
			res, err := ev.Result.Result()
			if err != nil {
				return zero, fmt.Errorf("client: optimize stream: %w", err)
			}
			return res, nil
		case api.OptimizeEventError:
			return zero, ev.Err()
		default:
			if fn != nil {
				if err := fn(ev); err != nil {
					return zero, err
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return zero, context.Cause(ctx)
		}
		return zero, fmt.Errorf("client: optimize stream interrupted after %d events: %w", delivered, err)
	}
	return zero, fmt.Errorf("client: optimize stream ended after %d events without a terminal line", delivered)
}
