// Package client is the HTTP SDK for the flexwattsd daemon: typed methods
// for every endpoint, sharing the wire vocabulary of repro/flexwatts/api
// with the server so the two can never drift.
//
// Errors are typed: a non-2xx response is mapped back to the api package's
// sentinel for its status (api.ErrUnknownExperiment, api.ErrInvalidPoint,
// api.ErrBatchTooLarge, …), so callers branch with errors.Is instead of
// string-matching status text:
//
//	c, _ := client.New("http://localhost:8080")
//	res, err := c.EvaluateBatch(ctx, points)
//	if errors.Is(err, api.ErrBatchTooLarge) { … split the batch … }
//
// Every method takes a context.Context and honors cancellation and
// deadlines end to end: the request is built with the context, and the
// server aborts its in-flight sweep when the connection drops.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/flexwatts"
	"repro/flexwatts/api"
	"repro/flexwatts/report"
)

// Client talks to one flexwattsd base URL. The zero value is not usable;
// construct with New. Client is safe for concurrent use.
type Client struct {
	base *url.URL
	hc   *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, instrumentation). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// New returns a client for the daemon at baseURL, e.g.
// "http://localhost:8080".
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(strings.TrimRight(baseURL, "/"))
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http or https", baseURL)
	}
	c := &Client{base: u, hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// apiError converts a non-2xx response into a typed error: the api
// sentinel for the status (when one exists) wrapping the server's message.
func apiError(resp *http.Response, body []byte) error {
	msg := strings.TrimSpace(string(body))
	var e api.Error
	if json.Unmarshal(body, &e) == nil && e.Message != "" {
		msg = e.Message
	}
	if sentinel := api.FromStatus(resp.StatusCode); sentinel != nil {
		return fmt.Errorf("%w: %s", sentinel, msg)
	}
	return fmt.Errorf("client: %s: %s", resp.Status, msg)
}

// do issues the request and returns the response body, mapping non-2xx
// statuses to typed errors.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.base.String()+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, apiError(resp, b)
	}
	return b, nil
}

// getJSON issues a GET and decodes the JSON response into out.
func (c *Client) getJSON(ctx context.Context, path string, out interface{}) error {
	b, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}

// Health returns the daemon's liveness and cache statistics
// (GET /healthz).
func (c *Client) Health(ctx context.Context) (api.Health, error) {
	var h api.Health
	err := c.getJSON(ctx, api.PathHealthz, &h)
	return h, err
}

// Experiments lists the registered experiment ids and the supported render
// formats (GET /v1/experiments).
func (c *Client) Experiments(ctx context.Context) (api.ExperimentList, error) {
	var l api.ExperimentList
	err := c.getJSON(ctx, api.PathExperiments, &l)
	return l, err
}

// Experiment fetches one experiment rendered in the given format
// (GET /v1/experiments/{id}?format=…) and returns the raw body — ASCII
// bytes identical to the committed goldens, a JSON dataset, or CSV blocks.
// Unknown ids return api.ErrUnknownExperiment.
func (c *Client) Experiment(ctx context.Context, id string, format report.Format) ([]byte, error) {
	path := api.PathExperiments + "/" + url.PathEscape(id) + "?format=" + url.QueryEscape(string(format))
	return c.do(ctx, http.MethodGet, path, nil)
}

// ExperimentDataset fetches one experiment as a typed dataset
// (format=json, decoded).
func (c *Client) ExperimentDataset(ctx context.Context, id string) (*report.Dataset, error) {
	b, err := c.Experiment(ctx, id, report.FormatJSON)
	if err != nil {
		return nil, err
	}
	var d report.Dataset
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("client: experiment %s: %w", id, err)
	}
	return &d, nil
}

// Evaluate posts a raw wire-form batch (POST /v1/evaluate). Most callers
// want EvaluateBatch; use Evaluate to control the wire body directly.
func (c *Client) Evaluate(ctx context.Context, req api.EvalRequest) (api.EvalResponse, error) {
	var out api.EvalResponse
	body, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	b, err := c.do(ctx, http.MethodPost, api.PathEvaluate, bytes.NewReader(body))
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(b, &out); err != nil {
		return out, err
	}
	return out, nil
}

// EvaluateBatch evaluates typed points on the daemon and returns the
// results in input order. Oversized batches return api.ErrBatchTooLarge;
// malformed points return api.ErrInvalidPoint with the failing index in
// the message.
func (c *Client) EvaluateBatch(ctx context.Context, pts []flexwatts.Point) ([]api.EvalResult, error) {
	req := api.EvalRequest{Points: make([]api.EvalPoint, len(pts))}
	for i, p := range pts {
		req.Points[i] = api.EvalPointFromPoint(p)
	}
	resp, err := c.Evaluate(ctx, req)
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}
