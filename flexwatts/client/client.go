// Package client is the HTTP SDK for the flexwattsd daemon: typed methods
// for every endpoint, sharing the wire vocabulary of repro/flexwatts/api
// with the server so the two can never drift.
//
// Errors are typed: a non-2xx response is mapped back to the api package's
// sentinel for its status (api.ErrUnknownExperiment, api.ErrInvalidPoint,
// api.ErrBatchTooLarge, …), so callers branch with errors.Is instead of
// string-matching status text:
//
//	c, _ := client.New("http://localhost:8080")
//	res, err := c.EvaluateBatch(ctx, points)
//	if errors.Is(err, api.ErrBatchTooLarge) { … split the batch … }
//
// Every method takes a context.Context and honors cancellation and
// deadlines end to end: the request is built with the context, and the
// server aborts its in-flight sweep when the connection drops.
//
// Shed load is retried transparently: when the daemon answers 429
// (api.ErrRateLimited) or 503 (api.ErrOverloaded), the client honors the
// server's Retry-After hint and retries a bounded number of times before
// surfacing the sentinel. Tune with WithRetries and WithMaxRetryWait;
// WithRetries(0) disables retrying.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/flexwatts"
	"repro/flexwatts/api"
	"repro/flexwatts/report"
)

// Retry defaults: up to DefaultRetries extra attempts on 429/503, waiting
// the server's Retry-After (capped at DefaultMaxRetryWait) between them.
const (
	DefaultRetries      = 2
	DefaultMaxRetryWait = 5 * time.Second
)

// Client talks to one flexwattsd base URL. The zero value is not usable;
// construct with New. Client is safe for concurrent use.
type Client struct {
	base         *url.URL
	hc           *http.Client
	retries      int
	maxRetryWait time.Duration
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, instrumentation). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithRetries sets how many times a shed request (429/503) is retried
// before the sentinel is surfaced; 0 disables retrying, negative values
// are treated as 0. The default is DefaultRetries.
func WithRetries(n int) Option {
	return func(c *Client) {
		if n < 0 {
			n = 0
		}
		c.retries = n
	}
}

// WithMaxRetryWait caps how long one Retry-After hint can make the client
// sleep. The default is DefaultMaxRetryWait.
func WithMaxRetryWait(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.maxRetryWait = d
		}
	}
}

// New returns a client for the daemon at baseURL, e.g.
// "http://localhost:8080".
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(strings.TrimRight(baseURL, "/"))
	if err != nil {
		return nil, fmt.Errorf("client: bad base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http or https", baseURL)
	}
	c := &Client{
		base:         u,
		hc:           http.DefaultClient,
		retries:      DefaultRetries,
		maxRetryWait: DefaultMaxRetryWait,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// apiError converts a non-2xx response into a typed error: the sentinel
// for the body's wire code when present (the richer signal), else the
// sentinel for the status, wrapping the server's message.
func apiError(resp *http.Response, body []byte) error {
	msg := strings.TrimSpace(string(body))
	var e api.Error
	sentinel := api.FromStatus(resp.StatusCode)
	if json.Unmarshal(body, &e) == nil && e.Message != "" {
		msg = e.Message
		if s := api.FromCode(e.Code); s != nil {
			sentinel = s
		}
	}
	if sentinel != nil {
		return fmt.Errorf("%w: %s", sentinel, msg)
	}
	return fmt.Errorf("client: %s: %s", resp.Status, msg)
}

// retryWait extracts the server's Retry-After hint (whole seconds per the
// shed contract), falling back to one second and capped by the client's
// maximum.
func (c *Client) retryWait(resp *http.Response) time.Duration {
	wait := time.Second
	if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s > 0 {
		wait = time.Duration(s) * time.Second
	}
	if wait > c.maxRetryWait {
		wait = c.maxRetryWait
	}
	return wait
}

// sleep waits d or until ctx is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// send issues one request per attempt, transparently retrying shed
// responses (429/503) after the server's Retry-After hint, up to the
// configured retry budget. The caller owns resp.Body on success. body is
// a byte slice, not a Reader, so every attempt replays the same bytes.
func (c *Client) send(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	for attempt := 0; ; attempt++ {
		var r io.Reader
		if body != nil {
			r = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base.String()+path, r)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			return nil, err
		}
		shed := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if !shed || attempt >= c.retries {
			return resp, nil
		}
		wait := c.retryWait(resp)
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // draining for reuse
		resp.Body.Close()
		if err := sleep(ctx, wait); err != nil {
			return nil, err
		}
	}
}

// do issues the request and returns the response body, mapping non-2xx
// statuses to typed errors.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	resp, err := c.send(ctx, method, path, body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, apiError(resp, b)
	}
	return b, nil
}

// getJSON issues a GET and decodes the JSON response into out.
func (c *Client) getJSON(ctx context.Context, path string, out interface{}) error {
	b, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	return json.Unmarshal(b, out)
}

// Health returns the daemon's liveness and cache statistics
// (GET /healthz).
func (c *Client) Health(ctx context.Context) (api.Health, error) {
	var h api.Health
	err := c.getJSON(ctx, api.PathHealthz, &h)
	return h, err
}

// Experiments lists the registered experiment ids and the supported render
// formats (GET /v1/experiments).
func (c *Client) Experiments(ctx context.Context) (api.ExperimentList, error) {
	var l api.ExperimentList
	err := c.getJSON(ctx, api.PathExperiments, &l)
	return l, err
}

// Experiment fetches one experiment rendered in the given format
// (GET /v1/experiments/{id}?format=…) and returns the raw body — ASCII
// bytes identical to the committed goldens, a JSON dataset, or CSV blocks.
// Unknown ids return api.ErrUnknownExperiment.
func (c *Client) Experiment(ctx context.Context, id string, format report.Format) ([]byte, error) {
	path := api.PathExperiments + "/" + url.PathEscape(id) + "?format=" + url.QueryEscape(string(format))
	return c.do(ctx, http.MethodGet, path, nil)
}

// ExperimentDataset fetches one experiment as a typed dataset
// (format=json, decoded).
func (c *Client) ExperimentDataset(ctx context.Context, id string) (*report.Dataset, error) {
	b, err := c.Experiment(ctx, id, report.FormatJSON)
	if err != nil {
		return nil, err
	}
	var d report.Dataset
	if err := json.Unmarshal(b, &d); err != nil {
		return nil, fmt.Errorf("client: experiment %s: %w", id, err)
	}
	return &d, nil
}

// Evaluate posts a raw wire-form batch (POST /v1/evaluate). Most callers
// want EvaluateBatch; use Evaluate to control the wire body directly.
func (c *Client) Evaluate(ctx context.Context, req api.EvalRequest) (api.EvalResponse, error) {
	var out api.EvalResponse
	body, err := json.Marshal(req)
	if err != nil {
		return out, err
	}
	b, err := c.do(ctx, http.MethodPost, api.PathEvaluate, body)
	if err != nil {
		return out, err
	}
	if err := json.Unmarshal(b, &out); err != nil {
		return out, err
	}
	return out, nil
}

// EvaluateBatch evaluates typed points on the daemon and returns the
// results in input order. Oversized batches return api.ErrBatchTooLarge;
// malformed points return api.ErrInvalidPoint with the failing index in
// the message.
func (c *Client) EvaluateBatch(ctx context.Context, pts []flexwatts.Point) ([]api.EvalResult, error) {
	req := api.EvalRequest{Points: make([]api.EvalPoint, len(pts))}
	for i, p := range pts {
		req.Points[i] = api.EvalPointFromPoint(p)
	}
	resp, err := c.Evaluate(ctx, req)
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// EvaluateStream evaluates typed points through POST /v1/evaluate/stream
// and delivers each result incrementally: fn is called once per point, in
// point order, as lines arrive off the wire — a million-point grid costs
// O(1) client memory, and the first results land while the server is still
// sweeping the rest.
//
// The stream's vocabulary carries per-point failures: a line for a point
// that failed to evaluate has res.Err() != nil, and the stream continues —
// fn decides whether to keep consuming. Returning a non-nil error from fn
// stops the stream (the server's sweep is cancelled via the dropped
// connection) and EvaluateStream returns that error.
//
// Every result delivered before a mid-stream transport failure has
// already reached fn — partial progress is kept, and the returned error
// says how many lines made it. Shed responses (429/503) are retried like
// every other request; once the stream has begun there is no retry (the
// server has started answering).
func (c *Client) EvaluateStream(ctx context.Context, pts []flexwatts.Point, fn func(api.EvalStreamResult) error) error {
	req := api.EvalRequest{Points: make([]api.EvalPoint, len(pts))}
	for i, p := range pts {
		req.Points[i] = api.EvalPointFromPoint(p)
	}
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	resp, err := c.send(ctx, http.MethodPost, api.PathEvaluateStream, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		return apiError(resp, b)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	delivered := 0
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var res api.EvalStreamResult
		if err := json.Unmarshal(line, &res); err != nil {
			return fmt.Errorf("client: stream line %d: %w", delivered, err)
		}
		if err := fn(res); err != nil {
			return err
		}
		delivered++
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		return fmt.Errorf("client: stream interrupted after %d results: %w", delivered, err)
	}
	if delivered != len(pts) {
		return fmt.Errorf("client: stream ended after %d of %d results", delivered, len(pts))
	}
	return nil
}
