package client_test

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"

	"repro/flexwatts"
	"repro/flexwatts/api"
	"repro/flexwatts/client"
	"repro/internal/experiments"
	"repro/internal/server"
)

// The SDK quick start: point a client at a flexwattsd base URL and
// evaluate typed points over HTTP. The example stands the daemon up
// in-process; in production pass the daemon's listen address, e.g.
// client.New("http://localhost:8080").
func ExampleClient_EvaluateBatch() {
	env, err := experiments.NewEnv()
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(server.New(env, server.Options{}).Handler())
	defer ts.Close()

	c, err := client.New(ts.URL)
	if err != nil {
		log.Fatal(err)
	}
	res, err := c.EvaluateBatch(context.Background(), []flexwatts.Point{
		{PDN: flexwatts.IVR, TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6},
		{PDN: flexwatts.FlexWatts, TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res {
		fmt.Printf("%-9s ETEE %.1f%%\n", r.PDN, r.ETEE*100)
	}
	// Output:
	// IVR       ETEE 65.0%
	// FlexWatts ETEE 74.0%
}

// Errors are typed sentinels shared with the server through the api
// package, so callers branch with errors.Is instead of string-matching
// status text.
func ExampleClient_Experiment() {
	env, err := experiments.NewEnv()
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(server.New(env, server.Options{}).Handler())
	defer ts.Close()

	c, err := client.New(ts.URL)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := c.Experiment(context.Background(), "fig99", "ascii"); errors.Is(err, api.ErrUnknownExperiment) {
		fmt.Println("fig99 is not a registered experiment")
	}
	// Output: fig99 is not a registered experiment
}
