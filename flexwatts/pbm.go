package flexwatts

import (
	"context"
	"fmt"

	"repro/internal/pmu"
)

// Allocation is the outcome of one power-budget-management (PBM) evaluation
// (§3.4, §6): the DVFS points and nominal-power budgets the PMU grants for
// a workload under the current TDP, with the PDN's conversion loss reserved
// at its estimated ETEE.
type Allocation struct {
	// CoreFreq and GfxFreq are the selected DVFS points in hertz.
	CoreFreq float64 `json:"core_freq_hz"`
	GfxFreq  float64 `json:"gfx_freq_hz"`
	// CoreBudget and GfxBudget are the nominal-power budgets granted.
	CoreBudget Watt `json:"core_budget"`
	GfxBudget  Watt `json:"gfx_budget"`
	// UncoreBudget covers SA+IO (fixed per state).
	UncoreBudget Watt `json:"uncore_budget"`
	// PDNLossBudget is the input power reserved for conversion loss at the
	// PDN's estimated ETEE.
	PDNLossBudget Watt `json:"pdn_loss_budget"`
	// ETEE is the PDN efficiency estimate used for the reservation.
	ETEE float64 `json:"etee"`
	// PIn is the resulting total platform input power (≤ the TDP, unless
	// even the DVFS floor overshoots it).
	PIn Watt `json:"p_in"`
}

// Allocate runs one PBM evaluation for the PDN named by k: find the highest
// DVFS points whose end-to-end platform power fits the TDP for the given
// workload type and AR, mirroring how real PMUs resolve budget overshoot
// (they throttle, they don't model). Calling Allocate with different TDPs
// models runtime cTDP reconfiguration — the paper's motivation for one PDN
// serving a whole product family. A higher-ETEE PDN sustains measurably
// higher clocks from the same TDP (§3.3).
func (c *Client) Allocate(ctx context.Context, k Kind, tdp Watt, t WorkloadType, ar float64) (Allocation, error) {
	if err := ctx.Err(); err != nil {
		return Allocation{}, context.Cause(ctx)
	}
	switch t {
	case SingleThread, MultiThread, Graphics:
	default:
		return Allocation{}, fmt.Errorf("%w: cannot budget workload type %q", ErrInvalidPoint, t)
	}
	m, err := c.model(k, float64(tdp))
	if err != nil {
		return Allocation{}, err
	}
	a, err := pmu.NewManager(c.platform, m, float64(tdp)).Allocate(internalWorkloadType(t), ar)
	if err != nil {
		return Allocation{}, fmt.Errorf("%w: %v", ErrInvalidPoint, err)
	}
	return Allocation{
		CoreFreq:      a.CoreFreq,
		GfxFreq:       a.GfxFreq,
		CoreBudget:    Watt(a.CoreBudget),
		GfxBudget:     Watt(a.GfxBudget),
		UncoreBudget:  Watt(a.UncoreBudget),
		PDNLossBudget: Watt(a.PDNLossBudget),
		ETEE:          a.ETEE,
		PIn:           Watt(a.PIn),
	}, nil
}
