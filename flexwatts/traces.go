package flexwatts

import (
	"repro/internal/workload"
)

// SteadyTrace returns a single-phase trace at a fixed operating condition —
// the simplest input to SimulateTrace.
func SteadyTrace(name string, t WorkloadType, ar, duration float64) Trace {
	return traceFromInternal(workload.SteadyTrace(name, internalWorkloadType(t), ar, duration))
}

// BatteryTrace expands a battery-life workload into a per-frame phase
// trace: each frame cycles through the workload's resident package states
// (active burst, memory fetch, panel self-refresh) for the given number of
// frames at the given frame period in seconds.
func BatteryTrace(w BatteryWorkload, frames int, period float64) Trace {
	return traceFromInternal(workload.BatteryTrace(internalBatteryWorkload(w), frames, period))
}

// TraceGenerator produces randomized synthetic workload traces with a
// deterministic seed, mirroring the variety of the paper's ~5000 measured
// benchmark traces (§4.1). The zero value is not usable; construct with
// NewTraceGenerator. A generator is not safe for concurrent use (it carries
// RNG state), but distinct generators are independent.
type TraceGenerator struct {
	g *workload.Generator
}

// NewTraceGenerator returns a generator seeded deterministically: equal
// seeds produce equal traces.
func NewTraceGenerator(seed int64) *TraceGenerator {
	return &TraceGenerator{g: workload.NewGenerator(seed)}
}

// Mixed returns a trace of n phases of the given workload type whose AR
// performs a bounded random walk in [arLo, arHi], with an idlePct fraction
// of phases spent in package idle states. Phase durations are 5–20 ms,
// matching the paper's 10 ms evaluation interval scale. It panics on AR
// bounds outside (0,1] or inverted.
func (g *TraceGenerator) Mixed(name string, t WorkloadType, n int, arLo, arHi, idlePct float64) Trace {
	return traceFromInternal(g.g.Mixed(name, internalWorkloadType(t), n, arLo, arHi, idlePct))
}
