// Package report is the public dataset model of the FlexWatts artifact: it
// models experiment results as typed datasets — titled tables of typed
// cells (string / float / percentage) plus per-experiment metadata — and
// renders them as aligned ASCII (the paper's figures as text), JSON
// (machine-readable, served by flexwattsd) and CSV.
//
// The split matters architecturally: experiment drivers build Datasets and
// never touch an io.Writer, so the same evaluation can feed the CLI, the
// golden tests and the HTTP service without re-running, and every rendered
// artifact carries the underlying numbers, not just their formatted text.
package report

import (
	"fmt"
	"io"
	"strings"
)

// CellKind classifies what a cell holds. It marshals as a plain string so
// datasets round-trip through encoding/json.
type CellKind string

// The cell kinds. KindMixed never appears on a cell — only on a Column
// whose rows disagree about their kind.
const (
	KindString CellKind = "string"
	KindFloat  CellKind = "float"
	KindPct    CellKind = "pct"
	KindMixed  CellKind = "mixed"
)

// Cell is one typed table entry: the exact text the ASCII renderer emits
// plus, for numeric kinds, the underlying value. Keeping the rendered text
// alongside the value is what lets the ASCII output stay byte-identical
// across the dataset refactor while JSON consumers get real numbers.
type Cell struct {
	Kind CellKind `json:"kind"`
	Text string   `json:"text"`
	// Value is the numeric payload of a float cell, or the fraction (not
	// the percentage) of a pct cell; zero and absent are the same for
	// string cells.
	Value float64 `json:"value,omitempty"`
}

// Str returns a string cell.
func Str(s string) Cell { return Cell{Kind: KindString, Text: s} }

// Num returns a float cell rendered with the given fmt verb (e.g. "%.2f",
// "%g", "%.4g"; suffixed verbs like "%.2fx" work too).
func Num(v float64, format string) Cell {
	return Cell{Kind: KindFloat, Text: fmt.Sprintf(format, v), Value: v}
}

// NumText returns a float cell with caller-rendered text, for adaptive
// formats like units.FormatVolt that a single verb cannot express.
func NumText(v float64, text string) Cell {
	return Cell{Kind: KindFloat, Text: text, Value: v}
}

// Pct returns a percentage cell for a fraction, rendered as "%.1f%%" of
// frac*100 — the formatting every figure of the paper uses.
func Pct(frac float64) Cell {
	return Cell{Kind: KindPct, Text: fmt.Sprintf("%.1f%%", frac*100), Value: frac}
}

// F2 formats with two decimals (string form, for composite cells).
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F3 formats with three decimals (string form, for composite cells).
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }

// Column is a typed table column: its header plus the kind its cells agree
// on (KindMixed when they don't).
type Column struct {
	Name string   `json:"name"`
	Kind CellKind `json:"kind,omitempty"`
}

// Table is one titled grid of typed cells — a section of a Dataset. Column
// kinds are inferred as rows arrive.
type Table struct {
	Title   string   `json:"title,omitempty"`
	Columns []Column `json:"columns"`
	Rows    [][]Cell `json:"rows"`
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	cols := make([]Column, len(columns))
	for i, c := range columns {
		cols[i] = Column{Name: c}
	}
	return &Table{Title: title, Columns: cols}
}

// AddRow appends a row. The row width must match the column count exactly:
// a mismatch panics, so a driver refactor that drops or duplicates a cell
// fails loudly in tests instead of silently truncating a column (the old
// behavior dropped extra cells).
func (t *Table) AddRow(cells ...Cell) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: table %q row has %d cells, want %d columns",
			t.Title, len(cells), len(t.Columns)))
	}
	for i, c := range cells {
		switch t.Columns[i].Kind {
		case "":
			t.Columns[i].Kind = c.Kind
		case c.Kind:
		default:
			t.Columns[i].Kind = KindMixed
		}
	}
	t.Rows = append(t.Rows, cells)
}

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c.Name)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell.Text) > widths[i] {
				widths[i] = len(cell.Text)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	header := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		header[i] = c.Name
	}
	writeRow(header)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	texts := make([]string, len(t.Columns))
	for _, row := range t.Rows {
		for i, cell := range row {
			texts[i] = cell.Text
		}
		writeRow(texts)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
