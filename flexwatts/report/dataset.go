package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// Dataset is a complete experiment result: an id (the registry key), a
// human title, per-experiment metadata (TDP design points, PDN plotting
// order, activity ratios, …) and one or more tables. It is the unit the
// drivers return, the renderers consume, and flexwattsd serves.
type Dataset struct {
	ID     string            `json:"id,omitempty"`
	Title  string            `json:"title"`
	Meta   map[string]string `json:"meta,omitempty"`
	Tables []*Table          `json:"tables"`
}

// NewDataset creates an empty dataset with the given title. The registry
// stamps the ID when the driver returns.
func NewDataset(title string) *Dataset { return &Dataset{Title: title} }

// SetMeta records a metadata key; it returns the dataset for chaining.
func (d *Dataset) SetMeta(key, value string) *Dataset {
	if d.Meta == nil {
		d.Meta = make(map[string]string)
	}
	d.Meta[key] = value
	return d
}

// Table creates a table with the given title and columns, appends it and
// returns it for row filling.
func (d *Dataset) Table(title string, columns ...string) *Table {
	t := NewTable(title, columns...)
	d.Tables = append(d.Tables, t)
	return t
}

// Format selects a dataset renderer.
type Format string

// The supported render formats.
const (
	FormatASCII Format = "ascii"
	FormatJSON  Format = "json"
	FormatCSV   Format = "csv"
)

// Formats lists the supported render formats.
func Formats() []Format { return []Format{FormatASCII, FormatJSON, FormatCSV} }

// ParseFormat validates a format name ("" means ASCII).
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case "", FormatASCII:
		return FormatASCII, nil
	case FormatJSON:
		return FormatJSON, nil
	case FormatCSV:
		return FormatCSV, nil
	}
	return "", fmt.Errorf("report: unknown format %q (have ascii, json, csv)", s)
}

// ContentType returns the HTTP content type for the format.
func (f Format) ContentType() string {
	switch f {
	case FormatJSON:
		return "application/json; charset=utf-8"
	case FormatCSV:
		return "text/csv; charset=utf-8"
	default:
		return "text/plain; charset=utf-8"
	}
}

// Write renders the dataset in the given format.
func (d *Dataset) Write(w io.Writer, f Format) error {
	switch f {
	case FormatJSON:
		return d.WriteJSON(w)
	case FormatCSV:
		return d.WriteCSV(w)
	default:
		return d.WriteASCII(w)
	}
}

// WriteASCII renders every table, separated by one blank line — exactly the
// layout the pre-dataset drivers streamed, so goldens captured before the
// refactor still match byte for byte.
func (d *Dataset) WriteASCII(w io.Writer) error {
	for i, t := range d.Tables {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := t.WriteASCII(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteASCIIGolden renders the dataset as ASCII terminated by one blank
// line — the exact byte form `flexwatts -exp <id>` emits and the golden
// files under internal/experiments/testdata are captured in. The CLI and
// the flexwattsd experiment endpoint both emit this form, so the two
// surfaces cannot drift apart.
func (d *Dataset) WriteASCIIGolden(w io.Writer) error {
	if err := d.WriteASCII(w); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// WriteJSON renders the dataset as an indented JSON object. The encoding
// round-trips: unmarshaling the output into a Dataset reproduces the value.
func (d *Dataset) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteJSONAll renders several datasets as one indented JSON array, the
// `-exp all -format json` and bulk-export shape.
func WriteJSONAll(w io.Writer, ds []*Dataset) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ds)
}

// WriteCSVAll renders several datasets as CSV, each preceded by a
// `# dataset: <id>` marker line so consumers can partition the stream back
// into experiments (the blank-line separator alone is ambiguous — it also
// separates tables within one dataset).
func WriteCSVAll(w io.Writer, ds []*Dataset) error {
	for i, d := range ds {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# dataset: %s\n", d.ID); err != nil {
			return err
		}
		if err := d.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders every table as an RFC 4180 CSV block — a `# title`
// comment line, the header record, then one record per row (cells in their
// rendered text form; quoting is encoding/csv's, so commas, quotes and
// newlines in workload names are safe) — with a blank line between tables.
func (d *Dataset) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	record := make([]string, 0, 16)
	for i, t := range d.Tables {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if t.Title != "" {
			if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
				return err
			}
		}
		record = record[:0]
		for _, c := range t.Columns {
			record = append(record, c.Name)
		}
		if err := cw.Write(record); err != nil {
			return err
		}
		for _, row := range t.Rows {
			record = record[:0]
			for _, cell := range row {
				record = append(record, cell.Text)
			}
			if err := cw.Write(record); err != nil {
				return err
			}
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return err
		}
	}
	return nil
}
