package report

import (
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestWriteASCII(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow(Str("alpha"), Num(1, "%g"))
	tab.AddRow(Str("beta-long"), Num(2, "%g"))
	var b strings.Builder
	if err := tab.WriteASCII(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{"# demo", "name", "value", "alpha", "beta-long", "----"}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("expected 5 lines, got %d", len(lines))
	}
}

func TestAddRowWidthMismatchPanics(t *testing.T) {
	for _, n := range []int{1, 4} {
		tab := NewTable("strict", "a", "b", "c")
		cells := make([]Cell, n)
		for i := range cells {
			cells[i] = Str("x")
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddRow with %d cells on a 3-column table did not panic", n)
				}
			}()
			tab.AddRow(cells...)
		}()
	}
}

func TestColumnKindInference(t *testing.T) {
	tab := NewTable("", "name", "etee", "norm", "flag")
	tab.AddRow(Str("a"), Pct(0.5), Num(1.2, "%.2fx"), Str("no"))
	tab.AddRow(Str("b"), Pct(0.6), Num(1.4, "%.2fx"), Num(3, "%g"))
	wantKinds := []CellKind{KindString, KindPct, KindFloat, KindMixed}
	for i, want := range wantKinds {
		if got := tab.Columns[i].Kind; got != want {
			t.Errorf("column %d kind = %q, want %q", i, got, want)
		}
	}
}

func TestCellConstructors(t *testing.T) {
	if c := Pct(0.2512); c.Text != "25.1%" || c.Value != 0.2512 || c.Kind != KindPct {
		t.Errorf("Pct = %+v", c)
	}
	if c := Num(8.13492, "%.4g"); c.Text != "8.135" || c.Kind != KindFloat {
		t.Errorf("Num %%.4g = %+v", c)
	}
	if c := Num(1.234, "%.2fx"); c.Text != "1.23x" {
		t.Errorf("Num %%.2fx = %+v", c)
	}
	if c := NumText(0.025, "25mV"); c.Text != "25mV" || c.Value != 0.025 {
		t.Errorf("NumText = %+v", c)
	}
	if F2(1.005) != "1.00" && F2(1.005) != "1.01" {
		t.Errorf("F2 = %s", F2(1.005))
	}
	if F3(2.0) != "2.000" {
		t.Errorf("F3 = %s", F3(2.0))
	}
}

// demoDataset exercises every cell kind, multiple tables, metadata, and CSV
// hostile strings (commas, quotes, newline-free but nasty names).
func demoDataset() *Dataset {
	d := NewDataset("Demo dataset")
	d.ID = "demo"
	d.SetMeta("tdp", "4").SetMeta("pdns", "IVR,MBVR")
	t1 := d.Table("Section one", "Workload", "ETEE", "Norm")
	t1.AddRow(Str(`spec,comma "quoted"`), Pct(0.651), Num(1.25, "%.2fx"))
	t1.AddRow(Str("plain"), Pct(0.7), Num(0.98, "%.2fx"))
	t2 := d.Table("Section two", "State", "Power")
	t2.AddRow(Str("C6"), NumText(0.004, "4mW"))
	return d
}

func TestDatasetJSONRoundTrip(t *testing.T) {
	d := demoDataset()
	var b strings.Builder
	if err := d.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got Dataset
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if !reflect.DeepEqual(&got, d) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", &got, d)
	}
}

func TestDatasetCSVQuoting(t *testing.T) {
	d := demoDataset()
	var b strings.Builder
	if err := d.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Each table becomes a comment + records; blank line between tables.
	if !strings.Contains(out, "# Section one\n") || !strings.Contains(out, "\n\n# Section two\n") {
		t.Fatalf("table layout wrong:\n%s", out)
	}
	// The record block must parse back losslessly despite comma and quotes.
	body := strings.Split(out, "\n\n")[0]
	var records [][]string
	for _, block := range strings.SplitAfter(body, "\n") {
		if strings.HasPrefix(block, "#") || strings.TrimSpace(block) == "" {
			continue
		}
		r := csv.NewReader(strings.NewReader(block))
		rec, err := r.Read()
		if err != nil {
			t.Fatalf("CSV record %q does not parse: %v", block, err)
		}
		records = append(records, rec)
	}
	if len(records) != 3 {
		t.Fatalf("want header + 2 records, got %d: %v", len(records), records)
	}
	if records[1][0] != `spec,comma "quoted"` {
		t.Errorf("hostile workload name did not round-trip: %q", records[1][0])
	}
	if records[1][1] != "65.1%" {
		t.Errorf("pct cell text = %q", records[1][1])
	}
}

func TestDatasetASCIIMultiTable(t *testing.T) {
	d := demoDataset()
	var b strings.Builder
	if err := d.WriteASCII(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Tables are separated by exactly one blank line and the output ends
	// with the last row's newline (no trailing blank).
	if !strings.Contains(out, "\n\n# Section two\n") {
		t.Errorf("missing blank-line separator:\n%s", out)
	}
	if strings.HasSuffix(out, "\n\n") {
		t.Errorf("trailing blank line:\n%q", out)
	}
}

func TestWriteCSVAllMarksDatasetBoundaries(t *testing.T) {
	a, b := demoDataset(), demoDataset()
	b.ID = "demo2"
	var out strings.Builder
	if err := WriteCSVAll(&out, []*Dataset{a, b}); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.HasPrefix(got, "# dataset: demo\n") {
		t.Errorf("first dataset unmarked:\n%s", got)
	}
	if !strings.Contains(got, "\n\n# dataset: demo2\n") {
		t.Errorf("second dataset boundary unmarked:\n%s", got)
	}
	// A consumer can partition on the marker: exactly two markers here,
	// even though each dataset contains two tables (three blank-line
	// separated blocks would be ambiguous without the marker).
	if n := strings.Count(got, "# dataset: "); n != 2 {
		t.Errorf("%d dataset markers, want 2", n)
	}
}

func TestParseFormat(t *testing.T) {
	for s, want := range map[string]Format{
		"": FormatASCII, "ascii": FormatASCII, "json": FormatJSON, "csv": FormatCSV,
	} {
		got, err := ParseFormat(s)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat accepted xml")
	}
}
