package flexwatts

import (
	"io"

	"repro/flexwatts/report"
	"repro/internal/experiments"
)

// Typed experiment results, re-exported so API consumers work with the
// same dataset model the CLI and flexwattsd serve.
type (
	// Dataset is a typed experiment result: title, metadata, tables.
	Dataset = report.Dataset
	// Table is one titled grid of typed cells.
	Table = report.Table
	// Cell is one typed table entry (string / float / percentage).
	Cell = report.Cell
	// Format selects a dataset renderer.
	Format = report.Format
)

// The dataset render formats.
const (
	FormatASCII = report.FormatASCII
	FormatJSON  = report.FormatJSON
	FormatCSV   = report.FormatCSV
)

// ExperimentIDs lists the registered experiment ids (the paper's
// figure/table numbering) in sorted order.
func ExperimentIDs() []string { return experiments.IDs() }

// Suite regenerates the paper's evaluation as typed datasets. It owns one
// evaluation environment — platform model, baselines, FlexWatts with its
// characterized predictor, and the memoizing evaluation cache — so
// datasets requested from one Suite share warm cells.
type Suite struct {
	env *experiments.Env
}

// NewSuite constructs the default evaluation environment.
func NewSuite() (*Suite, error) {
	env, err := experiments.NewEnv()
	if err != nil {
		return nil, err
	}
	return &Suite{env: env}, nil
}

// SetWorkers bounds how many sweep points experiments evaluate
// concurrently: 1 is fully serial, 0 (the default) sizes the pool by
// GOMAXPROCS. Results are identical either way.
func (s *Suite) SetWorkers(n int) { s.env.Workers = n }

// Dataset runs one experiment and returns its typed result.
func (s *Suite) Dataset(id string) (*Dataset, error) {
	return experiments.Dataset(id, s.env)
}

// Datasets runs every registered experiment and returns the results in id
// order.
func (s *Suite) Datasets() ([]*Dataset, error) {
	return experiments.Datasets(s.env)
}

// Render runs one experiment and writes it in the given format.
func (s *Suite) Render(id string, w io.Writer, f Format) error {
	d, err := s.Dataset(id)
	if err != nil {
		return err
	}
	return d.Write(w, f)
}
