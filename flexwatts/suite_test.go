package flexwatts_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/flexwatts"
)

func TestSuiteDataset(t *testing.T) {
	s, err := flexwatts.NewSuite()
	if err != nil {
		t.Fatal(err)
	}
	ids := flexwatts.ExperimentIDs()
	if len(ids) == 0 {
		t.Fatal("no experiment ids")
	}
	d, err := s.Dataset("tab2")
	if err != nil {
		t.Fatal(err)
	}
	if d.ID != "tab2" || len(d.Tables) == 0 {
		t.Errorf("dataset id %q with %d tables", d.ID, len(d.Tables))
	}

	var asciiOut, jsonOut strings.Builder
	if err := s.Render("tab2", &asciiOut, flexwatts.FormatASCII); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(asciiOut.String(), "Table 2") {
		t.Errorf("ASCII output missing title: %q", asciiOut.String())
	}
	if err := s.Render("tab2", &jsonOut, flexwatts.FormatJSON); err != nil {
		t.Fatal(err)
	}
	var round flexwatts.Dataset
	if err := json.Unmarshal([]byte(jsonOut.String()), &round); err != nil {
		t.Fatalf("rendered JSON does not parse: %v", err)
	}

	if _, err := s.Dataset("fig99"); err == nil {
		t.Error("unknown experiment id accepted")
	}
}
