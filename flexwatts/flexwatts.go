// Package flexwatts is the public API of the FlexWatts artifact: a
// validated architectural model of client-processor power delivery
// networks (PDNspot) and the paper's contribution built on it — a hybrid
// adaptive PDN whose compute domains sit behind hybrid voltage regulators
// that switch between an IVR-Mode (efficient at high power) and an
// LDO-Mode (efficient at low power), driven by a runtime ETEE-prediction
// algorithm (Algorithm 1).
//
// The package is self-contained: every type an evaluation consumes or
// returns (Watt, WorkloadType, CState, Mode, Kind, Point, Result, Params,
// …) is defined here, with String, Parse* and JSON round-tripping, so
// external modules can construct every request and name every result
// without reaching into the repository's internal packages.
//
// Quick start:
//
//	c, _ := flexwatts.NewClient()
//	res, _ := c.Evaluate(ctx, flexwatts.Point{TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6})
//	fmt.Println(res.Mode, res.ETEE)
//
// Evaluate entry points take a context.Context and honor cancellation;
// EvaluateBatch fans a batch out over the deterministic concurrent sweep
// engine. For the paper's full evaluation as typed datasets, see Suite;
// for the HTTP service and its SDK, see the sibling packages
// flexwatts/api and flexwatts/client.
package flexwatts

import (
	"errors"

	"repro/internal/workload"
)

// Sentinel errors of the evaluation API, checked with errors.Is.
var (
	// ErrInvalidPoint wraps every rejection of a malformed evaluation
	// point (missing workload, out-of-range AR or TDP, contradictory
	// idle-state parameters).
	ErrInvalidPoint = errors.New("flexwatts: invalid point")
	// ErrInvalidSpec wraps every rejection of a malformed optimizer search
	// spec (out-of-range TDP, empty or duplicate axes, oversized space,
	// non-finite constraints).
	ErrInvalidSpec = errors.New("flexwatts: invalid optimize spec")
)

// SPECCPU2006 returns the 29 SPEC CPU2006 benchmarks in Fig 7's order
// (ascending average performance-scalability).
func SPECCPU2006() []Workload {
	return workloadsFromInternal(workload.SPECCPU2006().Workloads)
}

// ThreeDMark06 returns the 3DMark06 graphics subtests (§7.1).
func ThreeDMark06() []Workload {
	return workloadsFromInternal(workload.ThreeDMark06().Workloads)
}

// PowerVirus returns the synthetic maximum-power workload (AR = 1) used to
// size guardbands and Iccmax (§2.4).
func PowerVirus(t WorkloadType) Workload {
	return workloadFromInternal(workload.PowerVirus(internalWorkloadType(t)))
}

// StandardTDPs returns the TDP grid of the paper's evaluation (Fig 4:
// 4, 10, 18, 25, 36, 50 W), covering the client segments from fanless
// tablets to performance laptops.
func StandardTDPs() []Watt {
	itdps := workload.StandardTDPs()
	out := make([]Watt, len(itdps))
	for i, t := range itdps {
		out[i] = Watt(t)
	}
	return out
}

// workloadsFromInternal converts a benchmark list.
func workloadsFromInternal(ws []workload.Workload) []Workload {
	out := make([]Workload, len(ws))
	for i, w := range ws {
		out[i] = workloadFromInternal(w)
	}
	return out
}
