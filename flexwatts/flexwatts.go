// Package flexwatts is the public API of the FlexWatts hybrid adaptive PDN
// (the paper's contribution): a PDN whose compute domains sit behind hybrid
// voltage regulators that switch between an IVR-Mode (efficient at high
// power) and an LDO-Mode (efficient at low power), driven by a runtime
// ETEE-prediction algorithm (Algorithm 1) and a voltage-noise-free mode
// switching flow through package C6.
//
// Quick start:
//
//	fw, _ := flexwatts.New()
//	res, _ := fw.Evaluate(flexwatts.Point{TDP: 4, Workload: flexwatts.MultiThread, AR: 0.6})
//	fmt.Println(res.Mode, res.ETEE)
package flexwatts

import (
	"repro/internal/activity"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Mode re-exports the hybrid modes.
const (
	IVRMode = core.IVRMode
	LDOMode = core.LDOMode
)

// Workload type identifiers.
const (
	SingleThread = workload.SingleThread
	MultiThread  = workload.MultiThread
	Graphics     = workload.Graphics
)

// Point mirrors pdnspot.Point.
type Point struct {
	TDP      units.Watt
	Workload workload.Type
	AR       float64
	// CState optionally evaluates a battery-life package state instead of
	// an active point (leave zero, i.e. C0, for active evaluation).
	CState domain.CState
}

// Result is a FlexWatts evaluation outcome: the PDN result plus the mode
// Algorithm 1 selected.
type Result struct {
	pdn.Result
	Mode core.Mode
}

// FlexWatts is the adaptive hybrid PDN with its predictor.
type FlexWatts struct {
	platform  *domain.Platform
	model     *core.Model
	predictor *core.Predictor
}

// New constructs FlexWatts with the paper's calibration and characterizes
// the predictor's firmware ETEE tables.
func New() (*FlexWatts, error) {
	return NewWithParams(pdn.DefaultParams())
}

// NewWithParams constructs FlexWatts with custom PDNspot parameters.
func NewWithParams(p pdn.Params) (*FlexWatts, error) {
	plat := domain.NewClientPlatform()
	m := core.NewModel(p)
	pred, err := core.NewPredictor(plat, m, core.DefaultPredictorConfig())
	if err != nil {
		return nil, err
	}
	return &FlexWatts{platform: plat, model: m, predictor: pred}, nil
}

// Platform exposes the modeled client SoC.
func (f *FlexWatts) Platform() *domain.Platform { return f.platform }

// Model exposes the internal hybrid model (for mode-forced evaluation).
func (f *FlexWatts) Model() *core.Model { return f.model }

// Predictor exposes the Algorithm 1 predictor.
func (f *FlexWatts) Predictor() *core.Predictor { return f.predictor }

// scenario builds the evaluation scenario for a point.
func (f *FlexWatts) scenario(pt Point) (pdn.Scenario, error) {
	if pt.CState != domain.C0 {
		return workload.CStateScenario(f.platform, pt.CState), nil
	}
	return workload.TDPScenario(f.platform, pt.TDP, pt.Workload, pt.AR)
}

// Evaluate predicts the best mode for the point (Algorithm 1) and evaluates
// the hybrid PDN in it.
func (f *FlexWatts) Evaluate(pt Point) (Result, error) {
	s, err := f.scenario(pt)
	if err != nil {
		return Result{}, err
	}
	mode := f.predictor.Predict(core.Inputs{
		TDP: pt.TDP, AR: pt.AR, Type: pt.Workload, CState: pt.CState,
	})
	r, err := f.model.EvaluateMode(s, mode)
	if err != nil {
		return Result{}, err
	}
	return Result{Result: r, Mode: mode}, nil
}

// EvaluateMode forces a specific hybrid mode (for mode-comparison studies).
func (f *FlexWatts) EvaluateMode(pt Point, mode core.Mode) (Result, error) {
	s, err := f.scenario(pt)
	if err != nil {
		return Result{}, err
	}
	r, err := f.model.EvaluateMode(s, mode)
	if err != nil {
		return Result{}, err
	}
	return Result{Result: r, Mode: mode}, nil
}

// SimulateTrace runs a workload phase trace with the mode controller in the
// loop, accounting for every 94 µs mode switch. Pass a nil sensor for
// oracle AR estimation or an activity sensor for realistic noisy inputs.
func (f *FlexWatts) SimulateTrace(tdp units.Watt, tr workload.Trace, sensor *activity.Sensor) (sim.Report, error) {
	cfg := sim.Config{Platform: f.platform, TDP: tdp, Sensor: sensor}
	ctrl := core.NewController(f.predictor, core.DefaultSwitchFlow())
	return sim.RunFlexWatts(cfg, f.model, ctrl, tr)
}
