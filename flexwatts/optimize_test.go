package flexwatts_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/flexwatts"
)

func smallOptimizeSpec() flexwatts.OptimizeSpec {
	return flexwatts.OptimizeSpec{
		TDP:             15,
		PDNs:            []flexwatts.Kind{flexwatts.IVR, flexwatts.MBVR},
		LoadlineScales:  []float64{0.9, 1},
		GuardbandScales: []float64{1, 1.25},
	}
}

func TestOptimizeLibrary(t *testing.T) {
	c, err := flexwatts.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Optimize(context.Background(), smallOptimizeSpec())
	if err != nil {
		t.Fatal(err)
	}
	if res.SpaceSize != 8 || res.Evaluated != 8 {
		t.Errorf("space %d evaluated %d, want 8/8", res.SpaceSize, res.Evaluated)
	}
	if res.Strategy != flexwatts.StrategyExhaustive {
		t.Errorf("strategy %v", res.Strategy)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for _, p := range res.Frontier {
		if p.Config.PDN != flexwatts.IVR && p.Config.PDN != flexwatts.MBVR {
			t.Errorf("frontier pdn %v outside the spec", p.Config.PDN)
		}
		if !(p.Scores.Cost > 0) || !(p.Scores.BatteryPower > 0) || !(p.Scores.Performance > 0) {
			t.Errorf("implausible scores %+v", p.Scores)
		}
	}
}

// TestOptimizeLibraryDeterminism runs the same seeded annealing search on
// two independently built clients and demands byte-identical results —
// the public face of the optimizer's reproducibility contract.
func TestOptimizeLibraryDeterminism(t *testing.T) {
	spec := flexwatts.OptimizeSpec{
		TDP:             15,
		LoadlineScales:  []float64{0.8, 0.9, 1, 1.1},
		GuardbandScales: []float64{0.8, 0.9, 1, 1.25},
		VRScales:        []float64{0.8, 1, 1.2},
		Strategy:        flexwatts.StrategyAnneal,
		Seed:            42,
		Budget:          64,
		Chains:          4,
	}
	var got [2][]byte
	for i := range got {
		c, err := flexwatts.NewClient()
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Optimize(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if got[i], err = json.Marshal(res); err != nil {
			t.Fatal(err)
		}
	}
	if string(got[0]) != string(got[1]) {
		t.Errorf("same seed, different results:\n%s\n%s", got[0], got[1])
	}
}

func TestOptimizeInvalidSpec(t *testing.T) {
	c, err := flexwatts.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	bad := []flexwatts.OptimizeSpec{
		{TDP: 900},
		{TDP: 15, VRScales: []float64{99}},
		{TDP: 15, LoadlineScales: []float64{0}},
		{TDP: 15, PDNs: []flexwatts.Kind{flexwatts.Kind(99)}},
	}
	for i, spec := range bad {
		if _, err := c.Optimize(context.Background(), spec); !errors.Is(err, flexwatts.ErrInvalidSpec) {
			t.Errorf("spec %d: err %v, want ErrInvalidSpec", i, err)
		}
	}
}

// TestOptimizeStreamLibrary pins the incremental callback: events arrive
// while the search runs, a frontier event carries its point, and an error
// from the callback aborts the search with that error.
func TestOptimizeStreamLibrary(t *testing.T) {
	c, err := flexwatts.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	frontiers, progress := 0, 0
	res, err := c.OptimizeStream(context.Background(), smallOptimizeSpec(), func(ev flexwatts.OptimizeEvent) error {
		switch ev.Kind {
		case flexwatts.OptimizeFrontier:
			frontiers++
			if ev.Point.Scores.Cost <= 0 {
				t.Errorf("frontier event point %+v", ev.Point)
			}
		case flexwatts.OptimizeProgress:
			progress++
		}
		if ev.SpaceSize != 8 {
			t.Errorf("event space size %d", ev.SpaceSize)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if frontiers != len(res.Frontier) && frontiers < len(res.Frontier) {
		t.Errorf("%d frontier events for a %d-point frontier", frontiers, len(res.Frontier))
	}
	if progress == 0 {
		t.Error("no progress events")
	}

	sentinel := errors.New("stop here")
	if _, err := c.OptimizeStream(context.Background(), smallOptimizeSpec(), func(flexwatts.OptimizeEvent) error {
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Errorf("callback error surfaced as %v", err)
	}
}

func TestOptimizeVocabularyRoundTrips(t *testing.T) {
	for _, o := range flexwatts.Objectives() {
		got, err := flexwatts.ParseObjective(o.String())
		if err != nil || got != o {
			t.Errorf("objective %v round-tripped to %v, %v", o, got, err)
		}
		b, err := json.Marshal(o)
		if err != nil {
			t.Fatal(err)
		}
		var back flexwatts.Objective
		if err := json.Unmarshal(b, &back); err != nil || back != o {
			t.Errorf("objective %v json round-tripped to %v, %v", o, back, err)
		}
	}
	for _, s := range flexwatts.SearchStrategies() {
		got, err := flexwatts.ParseSearchStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("strategy %v round-tripped to %v, %v", s, got, err)
		}
	}
	if st, err := flexwatts.ParseSearchStrategy(""); err != nil || st != flexwatts.StrategyAuto {
		t.Errorf("empty strategy parsed to %v, %v (want auto)", st, err)
	}
	if _, err := flexwatts.ParseObjective("speed"); !errors.Is(err, flexwatts.ErrInvalidSpec) {
		t.Errorf("unknown objective err %v", err)
	}
}
