package flexwatts

import (
	"fmt"
	"strconv"
	"strings"
)

// Watt is a power in watts. It is a defined type (not an alias), so the
// public API owns its vocabulary; arithmetic with untyped constants works
// as usual and conversion to float64 is explicit. JSON encodes a Watt as a
// plain number.
type Watt float64

// String renders the power with an adaptive unit prefix, e.g. "9mW".
func (w Watt) String() string {
	aw := w
	if aw < 0 {
		aw = -aw
	}
	switch {
	case aw >= 1:
		return fmt.Sprintf("%.3gW", float64(w))
	case aw >= 1e-3:
		return fmt.Sprintf("%.3gmW", float64(w)*1e3)
	case aw == 0:
		return "0W"
	default:
		return fmt.Sprintf("%.3guW", float64(w)*1e6)
	}
}

// ParseWatt parses a power value: a plain number of watts ("4", "4.5") or
// a number with a W/mW/uW suffix ("250mW").
func ParseWatt(s string) (Watt, error) {
	t := strings.TrimSpace(s)
	scale := 1.0
	switch {
	case strings.HasSuffix(t, "mW"):
		t, scale = strings.TrimSuffix(t, "mW"), 1e-3
	case strings.HasSuffix(t, "uW"):
		t, scale = strings.TrimSuffix(t, "uW"), 1e-6
	case strings.HasSuffix(t, "W"):
		t = strings.TrimSuffix(t, "W")
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(t), 64)
	if err != nil {
		return 0, fmt.Errorf("flexwatts: bad power %q", s)
	}
	return Watt(v * scale), nil
}

// WorkloadType classifies a workload the way the FlexWatts mode predictor
// does (§6): by which domains it stresses. The zero value is WorkloadUnset
// so an idle-state Point can leave the field empty.
type WorkloadType int

// The workload classes of the paper's figures.
const (
	// WorkloadUnset marks an unclassified point (valid only together with
	// an idle CState).
	WorkloadUnset WorkloadType = iota
	SingleThread
	MultiThread
	Graphics
	BatteryLife
)

// WorkloadTypes lists the workload classes of Fig 4.
func WorkloadTypes() []WorkloadType { return []WorkloadType{SingleThread, MultiThread, Graphics} }

// String names the type as in the paper's figures; WorkloadUnset renders
// as the empty string.
func (t WorkloadType) String() string {
	switch t {
	case WorkloadUnset:
		return ""
	case SingleThread:
		return "Single-Thread"
	case MultiThread:
		return "Multi-Thread"
	case Graphics:
		return "Graphics"
	case BatteryLife:
		return "Battery-Life"
	default:
		return fmt.Sprintf("WorkloadType(%d)", int(t))
	}
}

// ParseWorkloadType resolves a workload class name as the figures spell it
// ("Single-Thread", "Multi-Thread", "Graphics", "Battery-Life"),
// case-insensitively and with the hyphen optional, plus the CLI shorthands
// "st", "mt" and "gfx". The empty string parses to WorkloadUnset.
func ParseWorkloadType(s string) (WorkloadType, error) {
	norm := strings.ToLower(strings.ReplaceAll(strings.TrimSpace(s), "-", ""))
	switch norm {
	case "":
		return WorkloadUnset, nil
	case "st", "singlethread":
		return SingleThread, nil
	case "mt", "multithread":
		return MultiThread, nil
	case "gfx", "graphics":
		return Graphics, nil
	case "batterylife":
		return BatteryLife, nil
	}
	return 0, fmt.Errorf("flexwatts: unknown workload type %q (have Single-Thread, Multi-Thread, Graphics, Battery-Life)", s)
}

// MarshalText encodes the type as its canonical name.
func (t WorkloadType) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText decodes any spelling ParseWorkloadType accepts.
func (t *WorkloadType) UnmarshalText(b []byte) error {
	v, err := ParseWorkloadType(string(b))
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// CState identifies a package power state (§5 Observation 3, Fig 4(j)).
// The zero value is C0, the active state, so an active Point can leave the
// field empty.
type CState int

// Package power states modeled by PDNspot.
const (
	C0 CState = iota
	C0MIN
	C2
	C3
	C6
	C7
	C8
)

// CStates lists all package states in canonical order.
func CStates() []CState { return []CState{C0, C0MIN, C2, C3, C6, C7, C8} }

// IdleCStates lists the package idle states of Fig 4(j).
func IdleCStates() []CState { return []CState{C2, C3, C6, C7, C8} }

// String returns the conventional state name.
func (c CState) String() string {
	switch c {
	case C0:
		return "C0"
	case C0MIN:
		return "C0MIN"
	case C2:
		return "C2"
	case C3:
		return "C3"
	case C6:
		return "C6"
	case C7:
		return "C7"
	case C8:
		return "C8"
	default:
		return fmt.Sprintf("CState(%d)", int(c))
	}
}

// ParseCState resolves a conventional state name ("C0", "C0MIN", "C2", …)
// case-insensitively. The empty string parses to C0 (active).
func ParseCState(s string) (CState, error) {
	if strings.TrimSpace(s) == "" {
		return C0, nil
	}
	for _, c := range CStates() {
		if strings.EqualFold(s, c.String()) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("flexwatts: unknown package state %q (have C0, C0MIN, C2, C3, C6, C7, C8)", s)
}

// MarshalText encodes the state as its conventional name.
func (c CState) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText decodes a conventional state name.
func (c *CState) UnmarshalText(b []byte) error {
	v, err := ParseCState(string(b))
	if err != nil {
		return err
	}
	*c = v
	return nil
}

// Mode is the hybrid PDN's operating mode (§6). The zero value is
// ModeNone, reported for evaluations of static (non-FlexWatts) PDNs.
type Mode int

// The two modes of the hybrid VR, plus the "not a hybrid evaluation"
// marker.
const (
	// ModeNone marks a result that did not involve the hybrid VR.
	ModeNone Mode = iota
	// IVRMode runs the compute domains' hybrid VRs as integrated switching
	// regulators from a 1.8 V input rail — efficient at high power.
	IVRMode
	// LDOMode runs them as LDOs (or bypass switches) from an input rail at
	// the maximum compute voltage — efficient at low power.
	LDOMode
)

// Modes lists both hybrid modes.
func Modes() []Mode { return []Mode{IVRMode, LDOMode} }

// String names the mode as in the paper; ModeNone renders as the empty
// string.
func (m Mode) String() string {
	switch m {
	case ModeNone:
		return ""
	case IVRMode:
		return "IVR-Mode"
	case LDOMode:
		return "LDO-Mode"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode resolves a hybrid mode name ("IVR-Mode", "LDO-Mode", or the
// shorthands "ivr"/"ldo"), case-insensitively. The empty string parses to
// ModeNone.
func ParseMode(s string) (Mode, error) {
	norm := strings.ToLower(strings.ReplaceAll(strings.TrimSpace(s), "-", ""))
	switch norm {
	case "":
		return ModeNone, nil
	case "ivr", "ivrmode":
		return IVRMode, nil
	case "ldo", "ldomode":
		return LDOMode, nil
	}
	return 0, fmt.Errorf("flexwatts: unknown mode %q (have IVR-Mode, LDO-Mode)", s)
}

// MarshalText encodes the mode as its paper name.
func (m Mode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText decodes a mode name.
func (m *Mode) UnmarshalText(b []byte) error {
	v, err := ParseMode(string(b))
	if err != nil {
		return err
	}
	*m = v
	return nil
}

// Kind identifies a PDN architecture. The zero value is FlexWatts — the
// package's namesake hybrid — so Point{TDP: 4, …} evaluates the adaptive
// PDN by default.
type Kind int

// The PDN architectures evaluated in the paper.
const (
	FlexWatts Kind = iota
	IVR
	MBVR
	LDO
	IMBVR
)

// Kinds lists the four static baseline PDNs in the paper's order.
func Kinds() []Kind { return []Kind{IVR, MBVR, LDO, IMBVR} }

// AllKinds lists every PDN including FlexWatts, in the paper's plotting
// order.
func AllKinds() []Kind { return []Kind{IVR, MBVR, LDO, IMBVR, FlexWatts} }

// String returns the paper's name for the PDN.
func (k Kind) String() string {
	switch k {
	case FlexWatts:
		return "FlexWatts"
	case IVR:
		return "IVR"
	case MBVR:
		return "MBVR"
	case LDO:
		return "LDO"
	case IMBVR:
		return "I+MBVR"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a PDN name as the paper spells it ("IVR", "MBVR",
// "LDO", "I+MBVR", "FlexWatts"), case-insensitively; "IMBVR" is accepted
// for the hybrid baseline.
func ParseKind(s string) (Kind, error) {
	for _, k := range AllKinds() {
		if strings.EqualFold(s, k.String()) {
			return k, nil
		}
	}
	if strings.EqualFold(s, "IMBVR") {
		return IMBVR, nil
	}
	return 0, fmt.Errorf("flexwatts: unknown PDN kind %q (have IVR, MBVR, LDO, I+MBVR, FlexWatts)", s)
}

// MarshalText encodes the kind as its paper name.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText decodes a PDN name.
func (k *Kind) UnmarshalText(b []byte) error {
	v, err := ParseKind(string(b))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// Point is one evaluation point: which PDN to evaluate and where. The zero
// PDN is FlexWatts. An active point (CState zero, i.e. C0) carries a TDP,
// a workload class and an application ratio — the axes of the paper's
// Fig 4. An idle point sets CState to C0MIN or C2…C8 and leaves Workload
// and AR unset; its TDP only steers the FlexWatts predictor and defaults
// to 4 W (battery-life evaluation is TDP-independent, §7.1).
//
// Point marshals to the same JSON vocabulary flexwattsd speaks: enums
// encode as their paper names and unset fields are omitted.
type Point struct {
	PDN      Kind         `json:"pdn,omitempty"`
	TDP      Watt         `json:"tdp,omitempty"`
	Workload WorkloadType `json:"workload,omitempty"`
	AR       float64      `json:"ar,omitempty"`
	CState   CState       `json:"cstate,omitempty"`
}

// Validate checks the point's invariants without evaluating it: an idle
// point must not carry active-point parameters (they would be silently
// ignored), and an active point needs a workload class and an AR in (0,1].
// Range checks on TDP happen at evaluation time against the modeled TDP
// axis. Errors wrap ErrInvalidPoint.
func (p Point) Validate() error {
	if p.CState != C0 {
		if p.Workload != WorkloadUnset || p.AR != 0 {
			return fmt.Errorf("%w: cstate %s is an idle-state evaluation: workload and ar must be unset", ErrInvalidPoint, p.CState)
		}
		return nil
	}
	if p.Workload == WorkloadUnset {
		return fmt.Errorf("%w: an active (C0) point requires tdp, workload and ar; for idle states set cstate to C0MIN or C2…C8", ErrInvalidPoint)
	}
	if !(p.AR > 0 && p.AR <= 1) {
		return fmt.Errorf("%w: AR %g outside (0,1]", ErrInvalidPoint, p.AR)
	}
	return nil
}

// Breakdown splits a result's total conversion loss into the categories of
// Fig 5.
type Breakdown struct {
	// Guardband is the power paid for tolerance-band voltage margin and
	// rail-sharing voltage overhead.
	Guardband Watt `json:"guardband"`
	// PowerGate is the power paid for conducting power-gate drops.
	PowerGate Watt `json:"power_gate"`
	// OnChipVR is the on-chip VR (IVR or LDO) conversion loss.
	OnChipVR Watt `json:"on_chip_vr"`
	// OffChipVR is the motherboard VR conversion loss.
	OffChipVR Watt `json:"off_chip_vr"`
	// CondCompute is the I²R load-line loss on the core/GFX/LLC path.
	CondCompute Watt `json:"cond_compute"`
	// CondUncore is the I²R load-line loss on the SA/IO path.
	CondUncore Watt `json:"cond_uncore"`
}

// Total returns the sum of all loss categories.
func (b Breakdown) Total() Watt {
	return b.Guardband + b.PowerGate + b.OnChipVR + b.OffChipVR + b.CondCompute + b.CondUncore
}

// Result is one evaluated point: the headline PDNspot quantities plus the
// hybrid mode when the evaluated PDN is FlexWatts.
type Result struct {
	// PDN is the evaluated architecture.
	PDN Kind `json:"pdn"`
	// Mode is the hybrid mode Algorithm 1 selected (ModeNone for static
	// PDNs).
	Mode Mode `json:"mode,omitempty"`
	// CState is the package state the point evaluated in.
	CState CState `json:"cstate"`
	// PNomTotal is ΣPNOM (the PDN output power).
	PNomTotal Watt `json:"p_nom"`
	// PIn is the power drawn from the battery/PSU.
	PIn Watt `json:"p_in"`
	// ETEE = PNomTotal / PIn (§2.4).
	ETEE float64 `json:"etee"`
	// ChipInputCurrent is the total current (amperes) entering the package
	// from off-chip VRs.
	ChipInputCurrent float64 `json:"chip_input_current"`
	// Breakdown categorizes the conversion losses (Fig 5).
	Breakdown Breakdown `json:"breakdown"`
}

// Loss returns the total conversion loss PIn − PNomTotal.
func (r Result) Loss() Watt { return r.PIn - r.PNomTotal }

// Workload is one benchmark with its modeling inputs: its application
// ratio AR (switching rate relative to the power virus, §2.4) and its
// performance scalability (performance gained per unit frequency increase,
// §3.3).
type Workload struct {
	Name string       `json:"name"`
	Type WorkloadType `json:"type"`
	AR   float64      `json:"ar"`
	// Scalability is the fractional performance improvement per fractional
	// frequency increase (1.0 = perfectly frequency-scalable).
	Scalability float64 `json:"scalability"`
}
