package flexwatts

import (
	"context"
	"testing"
)

// TestEvaluateBatchWarmsGrid pins the batch fast path: EvaluateBatch must
// resolve every static-baseline point through the grid kernel into the
// client's cache (one key per distinct scenario×kind), skipping FlexWatts
// and invalid points, and a repeat batch must add no keys and change no
// bits.
func TestEvaluateBatchWarmsGrid(t *testing.T) {
	c, err := NewClient(WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	var pts []Point
	for _, k := range Kinds() {
		for _, tdp := range []Watt{4, 18, 50} {
			pts = append(pts, Point{PDN: k, TDP: tdp, Workload: MultiThread, AR: 0.6})
		}
	}
	pts = append(pts, Point{TDP: 18, Workload: Graphics, AR: 0.5}) // FlexWatts: stays scalar
	ctx := context.Background()

	c.warmBatch(ctx, pts)
	if got := c.cache.Len(); got != 12 {
		t.Fatalf("warmBatch cached %d keys, want 12 (baseline points only)", got)
	}
	_, misses := c.cache.Stats()
	if misses != 12 {
		t.Fatalf("warmBatch recorded %d misses, want 12", misses)
	}

	first, err := c.EvaluateBatch(ctx, pts)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.cache.Len(); got != 12 {
		t.Errorf("EvaluateBatch after warm grew the cache to %d keys", got)
	}
	if _, missesAfter := c.cache.Stats(); missesAfter != misses {
		t.Errorf("EvaluateBatch after warm recorded new misses (%d -> %d)", misses, missesAfter)
	}
	// And the results are the per-point path's, bit for bit.
	for i, pt := range pts {
		want, err := c.Evaluate(ctx, pt)
		if err != nil {
			t.Fatal(err)
		}
		if first[i] != want {
			t.Errorf("point %d: batch result differs from serial Evaluate", i)
		}
	}

	// An invalid point must not poison the prepass: the batch still fails
	// with the per-point error shape (covered elsewhere) and the valid
	// points still warm.
	bad := append([]Point{{PDN: IVR, TDP: -3, Workload: MultiThread, AR: 0.6}}, pts...)
	c2, err := NewClient()
	if err != nil {
		t.Fatal(err)
	}
	c2.warmBatch(ctx, bad)
	if got := c2.cache.Len(); got != 12 {
		t.Errorf("warmBatch with an invalid point cached %d keys, want 12", got)
	}
}
