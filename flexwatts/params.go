package flexwatts

// Params carries the PDN model constants of the paper's Table 2. The zero
// value is not usable; start from DefaultParams and tweak fields for
// design-space exploration (load-lines, tolerance bands, sharing
// penalties).
//
// The struct is field-for-field identical to the internal model's
// parameter block — the conversion in convert.go is a plain struct
// conversion, so the two can never drift without a compile error. All
// quantities are SI base units (volts, ohms, amperes, watts).
type Params struct {
	// PSU is the battery/PSU voltage feeding the motherboard VRs (7.2–20 V;
	// 7.2 V matches the measured curves of Fig 3).
	PSU float64
	// VINLevel is the first-stage output in the IVR PDN (typically 1.8 V).
	VINLevel float64

	// Tolerance bands per PDN (Table 2: IVR 18–22 mV, MBVR 18–20 mV,
	// LDO 16–18 mV); the models use the mid-points.
	TOBIVR, TOBMBVR, TOBLDO float64

	// RPG is the power-gate impedance (Table 2: 1–2 mΩ).
	RPG float64

	// Load-line impedances (Table 2).
	IVRInLL float64 // IVR PDN: V_IN rail, 1 mΩ
	LDOInLL float64 // LDO PDN: V_IN rail, 1.25 mΩ
	CoresLL float64 // MBVR: V_Cores rail, 2.5 mΩ
	GfxLL   float64 // MBVR: V_GFX rail, 2.5 mΩ
	SALL    float64 // SA rail, 7 mΩ
	IOLL    float64 // IO rail, 4 mΩ

	// FlexSharePenalty scales FlexWatts' input load-line relative to the
	// PDN it mimics in each mode; the hybrid VR shares routing between its
	// IVR and LDO halves, so its load-line is slightly higher (§7.1).
	FlexSharePenalty float64

	// Iccmax design limits used when instantiating regulators.
	VINIccmax, CoresIccmax, GfxIccmax, SAIccmax, IOIccmax, IVRIccmax float64
}

// DefaultParams returns the Table 2 calibration.
func DefaultParams() Params { return paramsFromInternal(defaultInternalParams()) }
