package flexwatts

// This file is the single home of the conversion shims between the public
// vocabulary and the repro/internal/* model types. Nothing else in the
// public packages may name an internal type; the public-surface guard test
// at the repository root enforces that the exported API stays
// self-contained.

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/optimize"
	"repro/internal/pdn"
	"repro/internal/workload"
)

// internalKind maps a public PDN kind to the internal enum.
func internalKind(k Kind) (pdn.Kind, error) {
	switch k {
	case FlexWatts:
		return pdn.FlexWatts, nil
	case IVR:
		return pdn.IVR, nil
	case MBVR:
		return pdn.MBVR, nil
	case LDO:
		return pdn.LDO, nil
	case IMBVR:
		return pdn.IMBVR, nil
	default:
		return 0, fmt.Errorf("%w: unknown PDN kind %v", ErrInvalidPoint, k)
	}
}

// kindFromInternal maps the internal PDN enum back to the public one.
func kindFromInternal(k pdn.Kind) Kind {
	switch k {
	case pdn.IVR:
		return IVR
	case pdn.MBVR:
		return MBVR
	case pdn.LDO:
		return LDO
	case pdn.IMBVR:
		return IMBVR
	default:
		return FlexWatts
	}
}

// internalWorkloadType maps a public workload class to the internal enum;
// WorkloadUnset has no internal counterpart and must be screened out by
// Point.Validate before conversion.
func internalWorkloadType(t WorkloadType) workload.Type {
	switch t {
	case SingleThread:
		return workload.SingleThread
	case Graphics:
		return workload.Graphics
	case BatteryLife:
		return workload.BatteryLife
	default:
		return workload.MultiThread
	}
}

// workloadTypeFromInternal maps the internal workload enum to the public
// one.
func workloadTypeFromInternal(t workload.Type) WorkloadType {
	switch t {
	case workload.SingleThread:
		return SingleThread
	case workload.Graphics:
		return Graphics
	case workload.BatteryLife:
		return BatteryLife
	default:
		return MultiThread
	}
}

// internalCState maps a public package state to the internal enum. The two
// enums share ordering, but the mapping is explicit so neither side can
// drift silently.
func internalCState(c CState) domain.CState {
	switch c {
	case C0MIN:
		return domain.C0MIN
	case C2:
		return domain.C2
	case C3:
		return domain.C3
	case C6:
		return domain.C6
	case C7:
		return domain.C7
	case C8:
		return domain.C8
	default:
		return domain.C0
	}
}

// cstateFromInternal maps the internal package-state enum to the public
// one.
func cstateFromInternal(c domain.CState) CState {
	switch c {
	case domain.C0MIN:
		return C0MIN
	case domain.C2:
		return C2
	case domain.C3:
		return C3
	case domain.C6:
		return C6
	case domain.C7:
		return C7
	case domain.C8:
		return C8
	default:
		return C0
	}
}

// internalMode maps a public hybrid mode to the internal enum; ModeNone
// has no internal counterpart.
func internalMode(m Mode) (core.Mode, error) {
	switch m {
	case IVRMode:
		return core.IVRMode, nil
	case LDOMode:
		return core.LDOMode, nil
	default:
		return 0, fmt.Errorf("flexwatts: mode %v is not a hybrid mode", m)
	}
}

// modeFromInternal maps the internal hybrid mode to the public one.
func modeFromInternal(m core.Mode) Mode {
	if m == core.LDOMode {
		return LDOMode
	}
	return IVRMode
}

// breakdownFromInternal converts a loss breakdown.
func breakdownFromInternal(b pdn.Breakdown) Breakdown {
	return Breakdown{
		Guardband:   Watt(b.Guardband),
		PowerGate:   Watt(b.PowerGate),
		OnChipVR:    Watt(b.OnChipVR),
		OffChipVR:   Watt(b.OffChipVR),
		CondCompute: Watt(b.CondCompute),
		CondUncore:  Watt(b.CondUncore),
	}
}

// resultFromInternal converts an internal evaluation result. The mode is
// ModeNone unless the caller evaluated the hybrid.
func resultFromInternal(r pdn.Result, mode Mode) Result {
	return Result{
		PDN:              kindFromInternal(r.PDN),
		Mode:             mode,
		PNomTotal:        Watt(r.PNomTotal),
		PIn:              Watt(r.PIn),
		ETEE:             r.ETEE,
		ChipInputCurrent: r.ChipInputCurrent,
		Breakdown:        breakdownFromInternal(r.Breakdown),
	}
}

// defaultInternalParams exposes the Table 2 calibration to params.go
// without it importing internal packages directly.
func defaultInternalParams() pdn.Params { return pdn.DefaultParams() }

// internalParams converts the public parameter set to the internal one.
// The two structs are field-for-field identical, so this is a plain struct
// conversion: adding a field to one without the other fails to compile —
// exactly the drift protection we want.
func internalParams(p Params) pdn.Params { return pdn.Params(p) }

// paramsFromInternal converts the internal parameter set to the public
// one.
func paramsFromInternal(p pdn.Params) Params { return Params(p) }

// internalWorkload converts a public benchmark description.
func internalWorkload(w Workload) workload.Workload {
	return workload.Workload{
		Name:        w.Name,
		Type:        internalWorkloadType(w.Type),
		AR:          w.AR,
		Scalability: w.Scalability,
	}
}

// workloadFromInternal converts an internal benchmark description.
func workloadFromInternal(w workload.Workload) Workload {
	return Workload{
		Name:        w.Name,
		Type:        workloadTypeFromInternal(w.Type),
		AR:          w.AR,
		Scalability: w.Scalability,
	}
}

// internalBatteryWorkloads exposes the §7.1 battery-life scenarios to
// battery.go without it importing internal packages directly.
func internalBatteryWorkloads() []workload.BatteryWorkload { return workload.BatteryLifeWorkloads() }

// internalBatteryWorkload converts a public battery-life scenario.
func internalBatteryWorkload(w BatteryWorkload) workload.BatteryWorkload {
	out := workload.BatteryWorkload{
		Name:      w.Name,
		Residency: make(map[domain.CState]float64, len(w.Residency)),
	}
	for c, res := range w.Residency {
		out.Residency[internalCState(c)] = res
	}
	return out
}

// batteryWorkloadFromInternal converts an internal battery-life scenario.
func batteryWorkloadFromInternal(w workload.BatteryWorkload) BatteryWorkload {
	out := BatteryWorkload{
		Name:      w.Name,
		Residency: make(map[CState]float64, len(w.Residency)),
	}
	for c, res := range w.Residency {
		out.Residency[cstateFromInternal(c)] = res
	}
	return out
}

// internalOptimizeSpec converts a public optimizer spec; the engine
// revalidates, but kind conversion can already fail here.
func internalOptimizeSpec(s OptimizeSpec) (optimize.Spec, error) {
	out := optimize.Spec{
		TDP:             float64(s.TDP),
		LoadlineScales:  s.LoadlineScales,
		GuardbandScales: s.GuardbandScales,
		VRScales:        s.VRScales,
		Seed:            s.Seed,
		Budget:          s.Budget,
		Chains:          s.Chains,
		MaxCost:         s.MaxCost,
		MaxArea:         s.MaxArea,
		MaxBatteryPower: float64(s.MaxBatteryPower),
		MinPerformance:  s.MinPerformance,
	}
	if s.PDNs != nil {
		out.Kinds = make([]pdn.Kind, len(s.PDNs))
		for i, k := range s.PDNs {
			ik, err := internalKind(k)
			if err != nil {
				return optimize.Spec{}, fmt.Errorf("%w: unknown PDN kind %v", ErrInvalidSpec, k)
			}
			out.Kinds[i] = ik
		}
	}
	if s.Objectives != nil {
		out.Objectives = make([]optimize.Objective, len(s.Objectives))
		for i, o := range s.Objectives {
			io, err := internalObjective(o)
			if err != nil {
				return optimize.Spec{}, err
			}
			out.Objectives[i] = io
		}
	}
	st, err := internalStrategy(s.Strategy)
	if err != nil {
		return optimize.Spec{}, err
	}
	out.Strategy = st
	return out, nil
}

// internalObjective maps a public objective to the internal enum.
func internalObjective(o Objective) (optimize.Objective, error) {
	switch o {
	case ObjectiveCost:
		return optimize.Cost, nil
	case ObjectiveArea:
		return optimize.Area, nil
	case ObjectiveBattery:
		return optimize.BatteryPower, nil
	case ObjectivePerformance:
		return optimize.Performance, nil
	default:
		return 0, fmt.Errorf("%w: unknown objective %v", ErrInvalidSpec, o)
	}
}

// internalStrategy maps a public search strategy to the internal enum.
func internalStrategy(s SearchStrategy) (optimize.Strategy, error) {
	switch s {
	case StrategyAuto:
		return optimize.Auto, nil
	case StrategyExhaustive:
		return optimize.Exhaustive, nil
	case StrategyAnneal:
		return optimize.Anneal, nil
	default:
		return 0, fmt.Errorf("%w: unknown strategy %v", ErrInvalidSpec, s)
	}
}

// strategyFromInternal maps the internal strategy enum to the public one.
func strategyFromInternal(s optimize.Strategy) SearchStrategy {
	switch s {
	case optimize.Exhaustive:
		return StrategyExhaustive
	case optimize.Anneal:
		return StrategyAnneal
	default:
		return StrategyAuto
	}
}

// paretoPointFromInternal converts one frontier member.
func paretoPointFromInternal(p optimize.Point) ParetoPoint {
	return ParetoPoint{
		Key: p.Key,
		Config: OptimizeConfig{
			PDN:            kindFromInternal(p.Config.Kind),
			LoadlineScale:  p.Config.LoadlineScale,
			GuardbandScale: p.Config.GuardbandScale,
			VRScale:        p.Config.VRScale,
		},
		Scores: OptimizeScores{
			Cost:         p.Scores.Cost,
			Area:         p.Scores.Area,
			BatteryPower: Watt(p.Scores.BatteryPower),
			Performance:  p.Scores.Performance,
		},
	}
}

// optimizeResultFromInternal converts a finished search.
func optimizeResultFromInternal(r optimize.Result) OptimizeResult {
	out := OptimizeResult{
		Frontier:  make([]ParetoPoint, len(r.Frontier)),
		Evaluated: r.Evaluated,
		SpaceSize: r.SpaceSize,
		Strategy:  strategyFromInternal(r.Strategy),
	}
	for i, p := range r.Frontier {
		out.Frontier[i] = paretoPointFromInternal(p)
	}
	return out
}

// optimizeEventFromInternal converts an incremental search event.
func optimizeEventFromInternal(ev optimize.Event) OptimizeEvent {
	out := OptimizeEvent{
		Evaluated:    ev.Evaluated,
		SpaceSize:    ev.SpaceSize,
		FrontierSize: ev.FrontierSize,
	}
	if ev.Kind == optimize.EventFrontier {
		out.Kind = OptimizeFrontier
		out.Point = paretoPointFromInternal(ev.Point)
	}
	return out
}

// internalTrace converts a public phase trace.
func internalTrace(tr Trace) workload.Trace {
	out := workload.Trace{Name: tr.Name, Phases: make([]workload.Phase, len(tr.Phases))}
	for i, ph := range tr.Phases {
		out.Phases[i] = workload.Phase{
			Duration: ph.Duration,
			Type:     internalWorkloadType(ph.Workload),
			CState:   internalCState(ph.CState),
			AR:       ph.AR,
		}
	}
	return out
}

// traceFromInternal converts an internal phase trace.
func traceFromInternal(tr workload.Trace) Trace {
	out := Trace{Name: tr.Name, Phases: make([]Phase, len(tr.Phases))}
	for i, ph := range tr.Phases {
		out.Phases[i] = Phase{
			Duration: ph.Duration,
			Workload: workloadTypeFromInternal(ph.Type),
			CState:   cstateFromInternal(ph.CState),
			AR:       ph.AR,
		}
	}
	return out
}
