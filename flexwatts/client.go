package flexwatts

import (
	"context"
	"fmt"

	"repro/internal/activity"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/optimize"
	"repro/internal/pdn"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Platform is an opaque handle to a modeled client SoC. The zero value
// means "the paper's Table 1 client platform"; construct alternatives with
// DefaultPlatform (today the only calibration) and pass them to
// WithPlatform.
type Platform struct {
	p *domain.Platform
}

// DefaultPlatform returns the paper's Table 1 client SoC model.
func DefaultPlatform() Platform { return Platform{p: domain.NewClientPlatform()} }

// config collects the functional options of NewClient.
type config struct {
	params   pdn.Params
	platform *domain.Platform
	workers  int
	cache    bool
}

// Option customizes a Client.
type Option func(*config)

// WithParams evaluates with a custom PDNspot parameter set (load-lines,
// tolerance bands, sharing penalties) instead of the Table 2 calibration,
// enabling the multi-dimensional architecture-space exploration the paper
// describes.
func WithParams(p Params) Option {
	return func(c *config) { c.params = internalParams(p) }
}

// WithWorkers bounds how many points EvaluateBatch evaluates concurrently:
// 1 is fully serial, 0 (the default) sizes the pool by GOMAXPROCS.
// Results are identical either way — the sweep engine collects by index.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithCache toggles the memoizing evaluation cache (default on): repeated
// baseline evaluations of the same point cost one model run per Client.
// Disable it for memory-constrained embedding or when sweeping enormous
// non-repeating grids.
func WithCache(enabled bool) Option {
	return func(c *config) { c.cache = enabled }
}

// WithPlatform evaluates against a specific platform model instead of the
// default client SoC.
func WithPlatform(p Platform) Option {
	return func(c *config) {
		if p.p != nil {
			c.platform = p.p
		}
	}
}

// Client is the front door of the evaluation API: the platform model, the
// four baseline PDNs, FlexWatts with its characterized Algorithm 1
// predictor, and a memoizing evaluation cache. It is safe for concurrent
// use once constructed.
type Client struct {
	platform  *domain.Platform
	params    pdn.Params
	baselines map[pdn.Kind]pdn.Model
	flex      *core.Model
	pred      *core.Predictor
	cache     *sweep.Cache
	workers   int
	// arena recycles warmBatch's grid + result blocks across EvaluateBatch
	// calls; its zero value is ready, so no constructor wiring is needed.
	arena pdn.GridArena
	// opt is the design-space search engine behind Optimize; it shares the
	// client's platform, parameters, cache and worker bound, and owns its
	// own grid arena so search candidates recycle blocks across runs.
	opt optimize.Engine
}

// NewClient constructs a Client with the paper's calibration,
// characterizes the predictor's firmware ETEE tables, and applies the
// given options.
func NewClient(opts ...Option) (*Client, error) {
	cfg := config{params: pdn.DefaultParams(), cache: true}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.platform == nil {
		cfg.platform = domain.NewClientPlatform()
	}
	baselines := make(map[pdn.Kind]pdn.Model, 4)
	for _, k := range pdn.Kinds() {
		m, err := pdn.New(k, cfg.params)
		if err != nil {
			return nil, err
		}
		baselines[k] = m
	}
	flex := core.NewModel(cfg.params)
	pred, err := core.NewPredictor(cfg.platform, flex, core.DefaultPredictorConfig())
	if err != nil {
		return nil, err
	}
	c := &Client{
		platform:  cfg.platform,
		params:    cfg.params,
		baselines: baselines,
		flex:      flex,
		pred:      pred,
		workers:   cfg.workers,
	}
	if cfg.cache {
		c.cache = sweep.NewCache()
	}
	c.opt = optimize.Engine{
		Platform: cfg.platform,
		Base:     cfg.params,
		Cache:    c.cache,
		Workers:  cfg.workers,
	}
	return c, nil
}

// Params returns the model parameters in use.
func (c *Client) Params() Params { return paramsFromInternal(c.params) }

// scenario builds the internal evaluation scenario for a point, assuming
// the point validated.
func (c *Client) scenario(pt Point) (pdn.Scenario, error) {
	if pt.CState != C0 {
		return workload.CStateScenario(c.platform, internalCState(pt.CState)), nil
	}
	s, err := workload.TDPScenario(c.platform, float64(pt.TDP), internalWorkloadType(pt.Workload), pt.AR)
	if err != nil {
		return pdn.Scenario{}, fmt.Errorf("%w: %v", ErrInvalidPoint, err)
	}
	return s, nil
}

// evaluate runs one validated point on the PDN selected by kind.
func (c *Client) evaluate(kind Kind, pt Point) (Result, error) {
	if err := pt.Validate(); err != nil {
		return Result{}, err
	}
	ik, err := internalKind(kind)
	if err != nil {
		return Result{}, err
	}
	s, err := c.scenario(pt)
	if err != nil {
		return Result{}, err
	}
	var (
		r    pdn.Result
		mode = ModeNone
	)
	if ik == pdn.FlexWatts {
		tdp := float64(pt.TDP)
		if pt.CState != C0 && tdp == 0 {
			tdp = 4 // battery-life evaluation is TDP-independent (§7.1)
		}
		// Estimate Algorithm 1's inputs from the scenario the way the PMU
		// does at runtime — the same path flexwattsd's /v1/evaluate takes,
		// so library and service report identical numbers for a point.
		m := c.pred.Predict(core.InputsFromScenario(s, tdp))
		r, err = c.flex.EvaluateMode(s, m)
		mode = modeFromInternal(m)
	} else if c.cache != nil {
		r, err = c.cache.Evaluate(c.baselines[ik], s)
	} else {
		r, err = c.baselines[ik].Evaluate(s)
	}
	if err != nil {
		return Result{}, err
	}
	res := resultFromInternal(r, mode)
	res.CState = pt.CState
	return res, nil
}

// Evaluate evaluates the point on the PDN it names (pt.PDN; the zero value
// is FlexWatts, whose mode Algorithm 1 predicts from the point itself).
// The context is honored between points of a batch and checked once here.
func (c *Client) Evaluate(ctx context.Context, pt Point) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, context.Cause(ctx)
	}
	return c.evaluate(pt.PDN, pt)
}

// EvaluateKind evaluates the point on a specific PDN architecture,
// overriding pt.PDN — the mode-comparison and baseline-sweep workhorse.
func (c *Client) EvaluateKind(ctx context.Context, k Kind, pt Point) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, context.Cause(ctx)
	}
	return c.evaluate(k, pt)
}

// EvaluateMode forces a specific hybrid mode on the FlexWatts PDN (for
// mode-comparison studies), bypassing Algorithm 1.
func (c *Client) EvaluateMode(ctx context.Context, pt Point, mode Mode) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, context.Cause(ctx)
	}
	if err := pt.Validate(); err != nil {
		return Result{}, err
	}
	im, err := internalMode(mode)
	if err != nil {
		return Result{}, err
	}
	s, err := c.scenario(pt)
	if err != nil {
		return Result{}, err
	}
	r, err := c.flex.EvaluateMode(s, im)
	if err != nil {
		return Result{}, err
	}
	res := resultFromInternal(r, mode)
	res.CState = pt.CState
	return res, nil
}

// warmBatch resolves a batch's static-baseline points through the batch
// evaluation kernel before the per-point pass: valid points are grouped per
// PDN kind into an SoA grid and each kind's cache misses evaluate in blocks
// with hoisted per-kind invariants (one compiled-VR stage per grid, not one
// model walk per point). The kernel is bitwise identical to Evaluate, so
// the per-point pass then finds every baseline key hot and returns the same
// bits it would have computed. Invalid points and FlexWatts points (whose
// mode depends on the per-TDP predictor, not the scenario alone) are
// skipped here and handled — with their exact error text and index — by
// the per-point pass.
func (c *Client) warmBatch(ctx context.Context, pts []Point) {
	if c.cache == nil {
		return
	}
	// At most four baseline kinds exist, so the grouping is a fixed array
	// plus a linear scan, and the grids come from the client's arena: their
	// column storage (and the result blocks) recycle across EvaluateBatch
	// calls instead of allocating per call.
	var kinds [4]pdn.Kind
	var leases [4]*pdn.GridLease
	nl := 0
	for _, pt := range pts {
		if pt.Validate() != nil {
			continue
		}
		ik, err := internalKind(pt.PDN)
		if err != nil || ik == pdn.FlexWatts {
			continue
		}
		s, err := c.scenario(pt)
		if err != nil {
			continue
		}
		t := 0
		for t < nl && kinds[t] != ik {
			t++
		}
		if t == nl {
			kinds[t] = ik
			leases[t] = c.arena.Get()
			nl++
		}
		leases[t].Grid().Append(s)
	}
	for t := 0; t < nl; t++ {
		g := leases[t].Grid()
		//nolint:errcheck // cache warmer: the per-point pass re-reports failures
		sweep.GridMapCtx(ctx, c.workers, c.cache, c.baselines[kinds[t]], g, leases[t].Results(g.Len()), 0)
		leases[t].Release()
	}
}

// EvaluateBatch evaluates every point concurrently on the deterministic
// sweep engine (results in input order; the worker bound comes from
// WithWorkers). Cancelling ctx aborts the batch: workers stop pulling new
// points and the call returns context.Cause(ctx). Per-point failures
// report the lowest failing index, the same error a serial loop would stop
// on.
//
// When the memoizing cache is enabled (the default), static-baseline
// points route through the batch evaluation kernel first — see warmBatch —
// so large rectangular grids evaluate at grid throughput while results,
// ordering and errors stay exactly those of the per-point path.
func (c *Client) EvaluateBatch(ctx context.Context, pts []Point) ([]Result, error) {
	c.warmBatch(ctx, pts)
	return sweep.MapCtx(ctx, c.workers, len(pts), func(i int) (Result, error) {
		r, err := c.evaluate(pts[i].PDN, pts[i])
		if err != nil {
			return Result{}, fmt.Errorf("point %d: %w", i, err)
		}
		return r, nil
	})
}

// Phase is one interval of a workload trace: the platform stays at one
// operating condition for Duration seconds. Idle phases (CState C2 and
// deeper) ignore Workload and AR.
type Phase struct {
	Duration float64      `json:"duration_s"`
	Workload WorkloadType `json:"workload,omitempty"`
	CState   CState       `json:"cstate,omitempty"`
	AR       float64      `json:"ar,omitempty"`
}

// Trace is a named sequence of phases, standing in for the paper's ~5000
// measured benchmark traces (§4.1).
type Trace struct {
	Name   string  `json:"name"`
	Phases []Phase `json:"phases"`
}

// Duration returns the total trace length in seconds.
func (t Trace) Duration() float64 {
	var d float64
	for _, p := range t.Phases {
		d += p.Duration
	}
	return d
}

// TraceReport summarizes a trace simulation.
type TraceReport struct {
	Trace string `json:"trace"`
	PDN   Kind   `json:"pdn"`
	// Duration is total wall time in seconds, including switch overhead.
	Duration float64 `json:"duration_s"`
	// Energy is total energy drawn from the battery (joules).
	Energy float64 `json:"energy_j"`
	// AvgPower = Energy / Duration.
	AvgPower Watt `json:"avg_power"`
	// AvgETEE is the energy-weighted end-to-end efficiency.
	AvgETEE float64 `json:"avg_etee"`
	// ModeSwitches counts FlexWatts transitions (0 for static PDNs).
	ModeSwitches int `json:"mode_switches"`
	// SwitchOverhead is the cumulative seconds parked in C6 for switching.
	SwitchOverhead float64 `json:"switch_overhead_s"`
	// ModeTime is the residency per hybrid mode (FlexWatts only).
	ModeTime map[Mode]float64 `json:"mode_time,omitempty"`
}

// Sensor is the noisy PMU activity sensor of §6 ("Runtime Estimation"):
// it perturbs the predictor's AR inputs the way real counters would. A nil
// *Sensor means oracle AR.
type Sensor struct {
	s *activity.Sensor
}

// NewSensor returns an activity sensor with the paper's counter weights
// and the given noise seed.
func NewSensor(seed int64) *Sensor {
	return &Sensor{s: activity.NewSensor(activity.DefaultWeights(), seed)}
}

// SimulateTrace runs a workload phase trace on the PDN named by k,
// integrating energy over time. For FlexWatts it drives the mode
// controller in the loop, accounting for every 94 µs mode switch; pass a
// nil sensor for oracle AR estimation or NewSensor for realistic noisy
// inputs (static PDNs ignore the sensor).
func (c *Client) SimulateTrace(k Kind, tdp Watt, tr Trace, sensor *Sensor) (TraceReport, error) {
	ik, err := internalKind(k)
	if err != nil {
		return TraceReport{}, err
	}
	cfg := sim.Config{Platform: c.platform, TDP: float64(tdp)}
	if sensor != nil {
		cfg.Sensor = sensor.s
	}
	itr := internalTrace(tr)
	var rep sim.Report
	if ik == pdn.FlexWatts {
		ctrl := core.NewController(c.pred, core.DefaultSwitchFlow())
		rep, err = sim.RunFlexWatts(cfg, c.flex, ctrl, itr)
	} else {
		rep, err = sim.RunStatic(cfg, c.baselines[ik], itr)
	}
	if err != nil {
		return TraceReport{}, err
	}
	out := TraceReport{
		Trace:          rep.Trace,
		PDN:            kindFromInternal(rep.PDN),
		Duration:       rep.Duration,
		Energy:         rep.Energy,
		AvgPower:       Watt(rep.AvgPower),
		AvgETEE:        rep.AvgETEE,
		ModeSwitches:   rep.ModeSwitches,
		SwitchOverhead: rep.SwitchOverhead,
	}
	if rep.ModeTime != nil {
		out.ModeTime = make(map[Mode]float64, len(rep.ModeTime))
		for m, t := range rep.ModeTime {
			out.ModeTime[modeFromInternal(m)] = t
		}
	}
	return out, nil
}
