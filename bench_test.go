// Package repro's root bench harness regenerates every table and figure of
// the paper's evaluation as a testing.B benchmark (run with
// `go test -bench=. -benchmem`), plus the DESIGN.md ablation benches.
// Each figure benchmark reports the experiment's headline quantity as a
// custom metric so `go test -bench` output doubles as a results table.
package repro_test

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/domain"
	"repro/internal/experiments"
	"repro/internal/optimize"
	"repro/internal/pdn"
	"repro/internal/perf"
	"repro/internal/refmodel"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workload"
)

var (
	envOnce sync.Once
	envVal  *experiments.Env
	envErr  error
)

func benchEnv(tb testing.TB) *experiments.Env {
	tb.Helper()
	envOnce.Do(func() { envVal, envErr = experiments.NewEnv() })
	if envErr != nil {
		tb.Fatal(envErr)
	}
	return envVal
}

// benchExperiment runs a registered experiment once per iteration.
func benchExperiment(b *testing.B, id string) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, e, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper table/figure (DESIGN.md per-experiment index).

func BenchmarkFig2a(b *testing.B) { benchExperiment(b, "fig2a") }
func BenchmarkFig2b(b *testing.B) { benchExperiment(b, "fig2b") }
func BenchmarkFig3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig4j(b *testing.B) { benchExperiment(b, "fig4j") }
func BenchmarkFig5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig8a(b *testing.B) { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B) { benchExperiment(b, "fig8b") }
func BenchmarkFig8c(b *testing.B) { benchExperiment(b, "fig8c") }
func BenchmarkFig8d(b *testing.B) { benchExperiment(b, "fig8d") }
func BenchmarkFig8e(b *testing.B) { benchExperiment(b, "fig8e") }
func BenchmarkTab1(b *testing.B)  { benchExperiment(b, "tab1") }
func BenchmarkTab2(b *testing.B)  { benchExperiment(b, "tab2") }
func BenchmarkObs(b *testing.B)   { benchExperiment(b, "obs") }

// benchSuite regenerates the entire registry through the sweep engine with
// the given worker count. Each iteration gets a fresh evaluation cache so
// the benchmark measures real full-suite work (including the first-pass
// dedupe), not memoized replays of the previous iteration.
func benchSuite(b *testing.B, workers int) {
	base := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := *base
		e.Workers = workers
		e.Cache = sweep.NewCache()
		if err := experiments.RunAll(&e, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSuiteSerial regenerates the full evaluation one sweep point at a
// time — the baseline for the parallel speedup.
func BenchmarkSuiteSerial(b *testing.B) { benchSuite(b, 1) }

// BenchmarkSuiteParallel regenerates the full evaluation on the sweep
// engine's default GOMAXPROCS worker pool. Compare ns/op against
// BenchmarkSuiteSerial for the full-suite speedup; with 4+ cores the
// reference-simulator-bound Fig 4 grid alone sustains >2x.
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, 0) }

// BenchmarkCompareOnTraces measures the batch trace-comparison throughput:
// 8 independent mixed traces across the four static PDNs plus FlexWatts,
// serial versus the GOMAXPROCS pool.
func BenchmarkCompareOnTraces(b *testing.B) {
	e := benchEnv(b)
	traces := make([]workload.Trace, 8)
	for i := range traces {
		traces[i] = workload.NewGenerator(int64(i+1)).Mixed(
			"bench", workload.MultiThread, 100, 0.3, 0.85, 0.25)
	}
	statics := make([]pdn.Model, 0, 4)
	for _, k := range pdn.Kinds() {
		statics = append(statics, e.Baselines[k])
	}
	cfg := sim.Config{Platform: e.Platform, TDP: 18}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		bc := bc
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.CompareOnTraces(context.Background(), cfg, statics, e.Flex, e.Predictor, traces, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvaluateETEE measures the cost of one closed-form PDN
// evaluation, the framework's innermost primitive.
func BenchmarkEvaluateETEE(b *testing.B) {
	e := benchEnv(b)
	s, err := workload.TDPScenario(e.Platform, 18, workload.MultiThread, 0.6)
	if err != nil {
		b.Fatal(err)
	}
	m := e.Baselines[pdn.IVR]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Evaluate(s); err != nil {
			b.Fatal(err)
		}
	}
}

// gridBenchGrid builds the batch-evaluation benchmark grid: every workload
// type × 32 TDP steps × 43 activity ratios = 4128 points, TDP-major with AR
// innermost — the rectangular shape experiment drivers and batch API
// clients submit, and the one the grid kernels' previous-point memos are
// designed for.
func gridBenchGrid(tb testing.TB) *pdn.Grid {
	tb.Helper()
	e := benchEnv(tb)
	g := pdn.NewGrid(3 * 32 * 43)
	for _, wt := range workload.Types() {
		for ti := 0; ti < 32; ti++ {
			tdp := 4 + float64(ti)*46/31
			for ai := 0; ai <= 42; ai++ {
				ar := float64(8+ai) / 50 // 0.16 … 1.00
				s, err := workload.TDPScenario(e.Platform, tdp, wt, ar)
				if err != nil {
					tb.Fatal(err)
				}
				g.Append(s)
			}
		}
	}
	return g
}

// BenchmarkEvaluateGrid measures the batch evaluation kernel on the
// 4128-point grid, reporting sustained points/s — the headline number the
// CI perf gate tracks. Compare against BenchmarkEvaluateGridLooped (the
// same grid through scalar Evaluate) or BenchmarkEvaluateETEE (one scalar
// evaluation): the acceptance bar is ≥3× looped throughput. Sub-benchmarks
// cover every static kind plus FlexWatts in both hybrid modes.
func BenchmarkEvaluateGrid(b *testing.B) {
	e := benchEnv(b)
	g := gridBenchGrid(b)
	out := make([]pdn.Result, g.Len())
	run := func(b *testing.B, eval func() error) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := eval(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)*float64(g.Len())/b.Elapsed().Seconds(), "points/s")
	}
	for _, k := range pdn.Kinds() {
		m := e.Baselines[k].(interface {
			EvaluateGrid(*pdn.Grid, []pdn.Result) error
		})
		b.Run(k.String(), func(b *testing.B) {
			run(b, func() error { return m.EvaluateGrid(g, out) })
		})
	}
	for _, mode := range core.Modes() {
		mode := mode
		b.Run("FlexWatts-"+mode.String(), func(b *testing.B) {
			run(b, func() error { return e.Flex.EvaluateGridMode(g, out, mode) })
		})
	}
}

// BenchmarkEvaluateGridLooped is the scalar baseline for the grid kernels:
// the identical 4128-point grid through per-point Evaluate, with the same
// points/s metric, so each kernel's speedup is one division away. The
// top-level benchmark keeps the historical IVR-only shape (the BENCH_8
// headline); sub-benchmarks add the per-kind scalar baselines so every
// kernel is compared against its own scalar loop, not IVR's.
func BenchmarkEvaluateGridLooped(b *testing.B) {
	e := benchEnv(b)
	g := gridBenchGrid(b)
	loop := func(b *testing.B, m pdn.Model) {
		b.Helper()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < g.Len(); j++ {
				if _, err := m.Evaluate(g.At(j)); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.N)*float64(g.Len())/b.Elapsed().Seconds(), "points/s")
	}
	loop(b, e.Baselines[pdn.IVR])
	for _, k := range pdn.Kinds() {
		k := k
		b.Run(k.String(), func(b *testing.B) { loop(b, e.Baselines[k]) })
	}
}

// BenchmarkEvaluateGridParallel measures the full parallel grid pipeline —
// GridMapCtx chunking the 4128-point grid over a worker pool, each chunk
// running the shard-batched cache probe and the batch kernel — at 1, 2, 4
// and GOMAXPROCS workers (deduplicated, so a 4-core machine runs three
// sub-benchmarks and an 8-core machine four). Each iteration starts from a
// fresh cache: the measured work is the cold serving path a first-seen
// request takes (probe, claim, kernel, store), which is where worker
// scaling matters. The chunk size is the adaptive default (chunk=0).
// Compare points/s across the workers=N sub-benchmarks for the parallel
// speedup; single-core hosts necessarily report flat numbers.
func BenchmarkEvaluateGridParallel(b *testing.B) {
	e := benchEnv(b)
	g := gridBenchGrid(b)
	out := make([]pdn.Result, g.Len())
	m := e.Baselines[pdn.IVR]
	seen := make(map[int]bool)
	for _, w := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		if seen[w] {
			continue
		}
		seen[w] = true
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c := sweep.NewCache()
				if err := sweep.GridMapCtx(context.Background(), w, c, m, g, out, 0); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)*float64(g.Len())/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkPredictor measures one Algorithm 1 table-lookup decision, the
// operation the PMU performs every 10 ms interval.
func BenchmarkPredictor(b *testing.B) {
	e := benchEnv(b)
	in := core.Inputs{TDP: 18, AR: 0.6, Type: workload.MultiThread, CState: domain.C0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Predictor.Predict(in)
	}
}

// BenchmarkReferenceSim measures the time-stepped validation reference
// (2000 steps of 1 us).
func BenchmarkReferenceSim(b *testing.B) {
	e := benchEnv(b)
	s, err := workload.TDPScenario(e.Platform, 18, workload.MultiThread, 0.6)
	if err != nil {
		b.Fatal(err)
	}
	m := e.Baselines[pdn.IVR]
	cfg := refmodel.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := refmodel.Measure(m, s, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimize measures design-space search throughput: one
// exhaustive 45-candidate search (every PDN topology at the default
// parameter scales) per iteration, the same shape `loadgen -optimize`
// drives at the served surface. candidates/s is the headline gated by
// bench-check.
func BenchmarkOptimize(b *testing.B) {
	e := benchEnv(b)
	eng := optimize.Engine{Platform: e.Platform, Base: e.Params, Cache: e.Cache, Workers: e.Workers}
	spec := optimize.Spec{
		TDP:   18,
		Kinds: []pdn.Kind{pdn.FlexWatts, pdn.IVR, pdn.MBVR, pdn.LDO, pdn.IMBVR},
		Seed:  1,
	}
	candidates := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.Run(context.Background(), spec, nil)
		if err != nil {
			b.Fatal(err)
		}
		candidates += res.Evaluated
	}
	b.ReportMetric(float64(candidates)/b.Elapsed().Seconds(), "candidates/s")
}

// BenchmarkTraceSim measures FlexWatts trace simulation throughput
// (phases per second of a mixed 200-phase trace).
func BenchmarkTraceSim(b *testing.B) {
	e := benchEnv(b)
	tr := workload.NewGenerator(1).Mixed("bench", workload.MultiThread, 200, 0.3, 0.85, 0.25)
	cfg := sim.Config{Platform: e.Platform, TDP: 18}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl := core.NewController(e.Predictor, core.DefaultSwitchFlow())
		if _, err := sim.RunFlexWatts(cfg, e.Flex, ctrl, tr); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md "Design choices called out for ablation").

// BenchmarkAblationTableRes quantifies predictor quality versus firmware
// table resolution: it reports the ETEE lost to mispredictions (relative to
// oracle mode selection) for coarse and fine tables.
func BenchmarkAblationTableRes(b *testing.B) {
	e := benchEnv(b)
	for _, cfg := range []struct {
		name string
		pc   core.PredictorConfig
	}{
		{"coarse-3x3", core.PredictorConfig{TDPGrid: []units.Watt{4, 18, 50}, ARPoints: 3}},
		{"default-7x9", core.DefaultPredictorConfig()},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			pred, err := core.NewPredictor(e.Platform, e.Flex, cfg.pc)
			if err != nil {
				b.Fatal(err)
			}
			var lost, points float64
			for i := 0; i < b.N; i++ {
				lost, points = 0, 0
				for _, wt := range workload.Types() {
					for tdp := 4.0; tdp <= 50; tdp += 4.6 {
						for ar := 0.35; ar <= 0.85; ar += 0.1 {
							s, err := workload.TDPScenario(e.Platform, tdp, wt, ar)
							if err != nil {
								b.Fatal(err)
							}
							_, ri, rl, err := e.Flex.BestMode(s)
							if err != nil {
								b.Fatal(err)
							}
							best := ri.ETEE
							if rl.ETEE > best {
								best = rl.ETEE
							}
							got := pred.Predict(core.Inputs{TDP: tdp, AR: ar, Type: wt, CState: domain.C0})
							var chosen float64
							if got == core.IVRMode {
								chosen = ri.ETEE
							} else {
								chosen = rl.ETEE
							}
							lost += best - chosen
							points++
						}
					}
				}
			}
			b.ReportMetric(lost/points*100, "%ETEE-lost/point")
		})
	}
}

// BenchmarkAblationInterval sweeps the controller's minimum mode residency
// and reports switch counts and energy on the same bursty trace.
func BenchmarkAblationInterval(b *testing.B) {
	e := benchEnv(b)
	tr := workload.NewGenerator(5).Mixed("bursty", workload.MultiThread, 400, 0.3, 0.85, 0.3)
	cfg := sim.Config{Platform: e.Platform, TDP: 18}
	for _, res := range []struct {
		name string
		min  units.Second
	}{
		{"residency-0ms", 0},
		{"residency-10ms", 10e-3},
		{"residency-100ms", 100e-3},
	} {
		res := res
		b.Run(res.name, func(b *testing.B) {
			var rep sim.Report
			for i := 0; i < b.N; i++ {
				ctrl := core.NewController(e.Predictor, core.DefaultSwitchFlow())
				ctrl.MinResidency = res.min
				var err error
				rep, err = sim.RunFlexWatts(cfg, e.Flex, ctrl, tr)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(rep.ModeSwitches), "switches")
			b.ReportMetric(rep.Energy, "J")
		})
	}
}

// BenchmarkAblationSharedRail quantifies the ETEE cost of the hybrid VR's
// resource sharing by sweeping the input load-line penalty.
func BenchmarkAblationSharedRail(b *testing.B) {
	for _, pen := range []struct {
		name string
		f    float64
	}{
		{"dedicated-1.0x", 1.0},
		{"shared-1.1x", 1.1},
		{"shared-1.5x", 1.5},
	} {
		pen := pen
		b.Run(pen.name, func(b *testing.B) {
			params := pdn.DefaultParams()
			params.FlexSharePenalty = pen.f
			m := core.NewModel(params)
			plat := domain.NewClientPlatform()
			s, err := workload.TDPScenario(plat, 50, workload.MultiThread, 0.6)
			if err != nil {
				b.Fatal(err)
			}
			var etee float64
			for i := 0; i < b.N; i++ {
				r, err := m.EvaluateMode(s, core.IVRMode)
				if err != nil {
					b.Fatal(err)
				}
				etee = r.ETEE
			}
			b.ReportMetric(etee*100, "%ETEE@50W")
		})
	}
}

// BenchmarkAblationOracle compares Algorithm 1 against oracle mode
// selection on a mixed trace (energy delta is the predictor's cost).
func BenchmarkAblationOracle(b *testing.B) {
	e := benchEnv(b)
	tr := workload.NewGenerator(9).Mixed("oracle", workload.MultiThread, 300, 0.3, 0.85, 0.25)
	cfg := sim.Config{Platform: e.Platform, TDP: 25}
	b.Run("algorithm1", func(b *testing.B) {
		var rep sim.Report
		for i := 0; i < b.N; i++ {
			ctrl := core.NewController(e.Predictor, core.DefaultSwitchFlow())
			var err error
			rep, err = sim.RunFlexWatts(cfg, e.Flex, ctrl, tr)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(rep.Energy, "J")
	})
	b.Run("oracle", func(b *testing.B) {
		var energy float64
		for i := 0; i < b.N; i++ {
			energy = 0
			for _, ph := range tr.Phases {
				var s pdn.Scenario
				var err error
				if ph.CState != domain.C0 {
					s = workload.CStateScenario(e.Platform, ph.CState)
				} else {
					s, err = workload.TDPScenario(e.Platform, cfg.TDP, ph.Type, ph.AR)
					if err != nil {
						b.Fatal(err)
					}
				}
				_, ri, rl, err := e.Flex.BestMode(s)
				if err != nil {
					b.Fatal(err)
				}
				pin := ri.PIn
				if rl.PIn < pin {
					pin = rl.PIn
				}
				energy += pin * ph.Duration
			}
		}
		b.ReportMetric(energy, "J")
	})
}

// BenchmarkPerfModel measures the power-frequency inversion.
func BenchmarkPerfModel(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		perf.FreqRatioForBudget(e.Platform, 18, workload.MultiThread, 0.5)
	}
}

// BenchmarkCostModel measures the BOM/area sizing path.
func BenchmarkCostModel(b *testing.B) {
	e := benchEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cost.Normalized(e.Platform, 18); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNoise regenerates the §6 mode-switch droop analysis.
func BenchmarkNoise(b *testing.B) { benchExperiment(b, "noise") }
