# Local dev and CI run the same targets (ci.yml calls make).
GO ?= go

# Root benchmarks recorded in the BENCH_<pr>.json perf trajectory. The
# alternatives must not contain "/": go test splits -bench on slashes and
# applies each piece per sub-benchmark level, so a top-level name match
# runs all of its sub-benchmarks (BenchmarkEvaluateGrid covers every
# kind/mode variant plus the Looped scalar reference).
BENCHES ?= BenchmarkEvaluateETEE|BenchmarkEvaluateGrid|BenchmarkReferenceSim|BenchmarkPredictor$$|BenchmarkSuiteSerial|BenchmarkSuiteParallel|BenchmarkTraceSim|BenchmarkCompareOnTraces|BenchmarkOptimize
BENCHTIME ?= 1s
BENCH_LABEL ?= current
# PR 10 migrated the perf record from BENCH_9.json: BENCH_10's "baseline"
# run carries BENCH_9's committed "current" numbers forward, so the gate
# still compares against the pre-PR trajectory. Gate against the old file
# explicitly with BENCH_JSON=BENCH_9.json if needed during migration.
BENCH_JSON ?= BENCH_10.json
# Allowed fractional regression before bench-check fails. Generous by
# default because shared CI runners are noisy (±40% run-to-run on this
# suite); tighten locally with BENCH_TOLERANCE=0.15 on a quiet machine.
BENCH_TOLERANCE ?= 0.60
# The slo target records under its own label so daemon SLO numbers and
# root benchmarks coexist in one BENCH_<pr>.json.
SLO_LABEL ?= slo

# Pinned analysis-tool versions, installed on demand by `go run` (CI) —
# bump deliberately, not implicitly.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: all build test race bench bench-json bench-check lint fmt ci smoke slo crash-smoke fuzz-smoke staticcheck govulncheck

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -shuffle=on randomizes test (and package-level subtest) execution order
# each run, so the race job also flushes out inter-test state dependence.
race:
	$(GO) test -race -shuffle=on ./...

# Benchmark smoke run: every benchmark once, so CI catches bit-rot without
# paying for full measurement.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Record the perf trajectory: run the root benchmarks and merge the numbers
# (ns/op, B/op, allocs/op per benchmark) into $(BENCH_JSON) under
# $(BENCH_LABEL). Committed baselines under other labels are preserved, so
# `make bench-json` after an optimization updates "current" while keeping
# the pre-PR "baseline" for comparison.
# Two steps (not a pipe) so a benchmark failure fails the target instead of
# being masked by benchjson's exit status.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime=$(BENCHTIME) . > $(BENCH_JSON).tmp
	$(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out $(BENCH_JSON) < $(BENCH_JSON).tmp
	@rm -f $(BENCH_JSON).tmp

# Perf gate: rerun the recorded benchmarks and fail if any shared ns/op or
# throughput ("/s") metric regressed beyond $(BENCH_TOLERANCE) of the
# committed $(BENCH_JSON) "current" run. Two steps (not a pipe) so a
# benchmark failure fails the target rather than reading as an empty run.
bench-check:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime=$(BENCHTIME) . > $(BENCH_JSON).check.tmp
	$(GO) run ./cmd/benchjson -check -baseline $(BENCH_JSON) -against current -tolerance $(BENCH_TOLERANCE) < $(BENCH_JSON).check.tmp
	@rm -f $(BENCH_JSON).check.tmp

# Boot the flexwattsd daemon (built with -race), hit every endpoint class,
# and diff the served ASCII bodies against the committed goldens.
smoke:
	bash scripts/smoke_flexwattsd.sh

# Measure what the daemon sustains: boot it (race-built), drive both
# evaluate endpoints with cmd/loadgen at a fixed rate, assert the SLO
# floor (non-zero throughput, zero 5xx / zero shed at low load), and
# record evals/s + p50/p95/p99 into $(BENCH_JSON). Tune with SLO_RPS,
# SLO_BATCH, SLO_DURATION.
slo:
	BENCH_JSON=$(BENCH_JSON) BENCH_LABEL=$(SLO_LABEL) bash scripts/slo_flexwattsd.sh

# Crash-safety smoke: boot flexwattsd with a persistent cache dir, drive
# cached load, SIGKILL it mid-write, corrupt a log byte, restart over the
# same directory, and assert warm recovery (loaded records, warm hits,
# byte-identical responses, zero 5xx).
crash-smoke:
	bash scripts/crashsafe_flexwattsd.sh

# Short-budget fuzz runs over the two untrusted input surfaces: the
# on-disk cache record decoder and the evaluate request decoder. -fuzz
# accepts one package at a time, so two sequential invocations.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeRecord$$' -fuzztime $(FUZZTIME) ./internal/cachestore
	$(GO) test -run '^$$' -fuzz '^FuzzEvaluateRequest$$' -fuzztime $(FUZZTIME) ./internal/server

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Deeper static analysis than vet (needs network on first run to fetch the
# pinned tool; CI runs it on every push).
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

# Known-vulnerability scan over the module graph and stdlib usage.
govulncheck:
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

fmt:
	gofmt -w .

ci: build lint race bench
