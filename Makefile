# Local dev and CI run the same targets (ci.yml calls make).
GO ?= go

.PHONY: all build test race bench lint fmt ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke run: every benchmark once, so CI catches bit-rot without
# paying for full measurement.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .

ci: build lint race bench
