# Local dev and CI run the same targets (ci.yml calls make).
GO ?= go

# Root benchmarks recorded in the BENCH_<pr>.json perf trajectory.
BENCHES ?= BenchmarkEvaluateETEE|BenchmarkReferenceSim|BenchmarkPredictor$$|BenchmarkSuiteSerial|BenchmarkSuiteParallel|BenchmarkTraceSim|BenchmarkCompareOnTraces
BENCHTIME ?= 1s
BENCH_LABEL ?= current
BENCH_JSON ?= BENCH_2.json

.PHONY: all build test race bench bench-json lint fmt ci smoke

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Benchmark smoke run: every benchmark once, so CI catches bit-rot without
# paying for full measurement.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Record the perf trajectory: run the root benchmarks and merge the numbers
# (ns/op, B/op, allocs/op per benchmark) into $(BENCH_JSON) under
# $(BENCH_LABEL). Committed baselines under other labels are preserved, so
# `make bench-json` after an optimization updates "current" while keeping
# the pre-PR "baseline" for comparison.
# Two steps (not a pipe) so a benchmark failure fails the target instead of
# being masked by benchjson's exit status.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCHES)' -benchmem -benchtime=$(BENCHTIME) . > $(BENCH_JSON).tmp
	$(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out $(BENCH_JSON) < $(BENCH_JSON).tmp
	@rm -f $(BENCH_JSON).tmp

# Boot the flexwattsd daemon (built with -race), hit every endpoint class,
# and diff the served ASCII bodies against the committed goldens.
smoke:
	bash scripts/smoke_flexwattsd.sh

lint:
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

fmt:
	gofmt -w .

ci: build lint race bench
