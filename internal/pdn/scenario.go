package pdn

import (
	"repro/internal/domain"
	"repro/internal/units"
)

// OperatingPoint describes a platform-level operating condition from which a
// PDN evaluation scenario is derived: per-domain frequencies and application
// ratios, the package power state, and the junction temperature.
type OperatingPoint struct {
	CState domain.CState
	Tj     float64 // °C

	// ActiveCores is how many CPU cores execute (0–2); single-threaded
	// workloads power-gate the second core.
	ActiveCores int
	CoreFreq    units.Hertz
	CoreAR      float64

	// GfxActive powers the graphics engines.
	GfxActive bool
	GfxFreq   units.Hertz
	GfxAR     float64

	// LLCFreq may exceed CoreFreq for graphics workloads (§7.1: "the LLC
	// domain operates at a higher frequency and higher voltage than the CPU
	// domain"); zero means "track the core clock".
	LLCFreq units.Hertz
	LLCAR   float64

	// UncoreAR is the application ratio of the SA/IO domains (their power
	// is narrow, so the default 0.8 is used when zero).
	UncoreAR float64
}

// BuildScenario turns an operating point into the per-domain loads the PDN
// models consume, evaluating the platform's power model (nominal power,
// voltage, leakage fraction) for each domain.
func BuildScenario(plat *domain.Platform, op OperatingPoint) Scenario {
	s := NewScenario()
	s.CState = op.CState

	uncoreAR := op.UncoreAR
	if uncoreAR == 0 {
		uncoreAR = 0.8
	}

	if op.CState.ComputeActive() {
		if op.ActiveCores > 0 {
			core := plat.Domain(domain.Core0)
			f := core.ClampFreq(op.CoreFreq)
			v := core.VoltageAt(f)
			p := core.Power(f, op.CoreAR, op.Tj)
			fl := core.LeakFraction(f, op.CoreAR, op.Tj)
			s.Loads[domain.Core0] = Load{PNom: p, VNom: v, FL: fl, AR: op.CoreAR}
			if op.ActiveCores > 1 {
				s.Loads[domain.Core1] = Load{PNom: p, VNom: v, FL: fl, AR: op.CoreAR}
			}
		}
		if op.ActiveCores > 0 || op.GfxActive {
			llc := plat.Domain(domain.LLC)
			lf := op.LLCFreq
			if lf == 0 {
				lf = op.CoreFreq
			}
			lar := op.LLCAR
			if lar == 0 {
				lar = 0.5
			}
			f := llc.ClampFreq(lf)
			s.Loads[domain.LLC] = Load{
				PNom: llc.Power(f, lar, op.Tj),
				VNom: llc.VoltageAt(f),
				FL:   llc.LeakFraction(f, lar, op.Tj),
				AR:   lar,
			}
		}
		if op.GfxActive {
			gfx := plat.Domain(domain.GFX)
			f := gfx.ClampFreq(op.GfxFreq)
			s.Loads[domain.GFX] = Load{
				PNom: gfx.Power(f, op.GfxAR, op.Tj),
				VNom: gfx.VoltageAt(f),
				FL:   gfx.LeakFraction(f, op.GfxAR, op.Tj),
				AR:   op.GfxAR,
			}
		}
	}

	// SA and IO are powered in every modeled state (their per-state tables
	// already encode how deep idle shrinks them).
	s.Loads[domain.SA] = Load{
		PNom: plat.UncorePower(domain.SA, op.CState),
		VNom: plat.UncoreVoltage(domain.SA),
		FL:   0.22,
		AR:   uncoreAR,
	}
	s.Loads[domain.IO] = Load{
		PNom: plat.UncorePower(domain.IO, op.CState),
		VNom: plat.UncoreVoltage(domain.IO),
		FL:   0.22,
		AR:   uncoreAR,
	}
	return s
}
