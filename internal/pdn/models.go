package pdn

import (
	"errors"
	"fmt"

	"repro/internal/domain"
	"repro/internal/units"
	"repro/internal/vr"
)

// ErrNoLoad is returned when a scenario has no active domain at all.
var ErrNoLoad = errors.New("pdn: scenario has no active load")

// Validate checks scenario invariants shared by all models. It takes a
// pointer because it sits on the per-evaluation hot path and Scenario is a
// ~200-byte value; the scenario is not modified.
func Validate(s *Scenario) error {
	if s.PSU <= 0 {
		return fmt.Errorf("pdn: PSU voltage must be positive, got %g", s.PSU)
	}
	active := false
	for k := range s.Loads {
		l := s.Loads[k]
		if l.PNom < 0 {
			return fmt.Errorf("pdn: %v has negative power %g", domain.Kind(k), l.PNom)
		}
		if !l.Active() {
			continue
		}
		active = true
		if l.VNom <= 0 {
			return fmt.Errorf("pdn: %v active with non-positive voltage %g", domain.Kind(k), l.VNom)
		}
		if !(l.AR > 0 && l.AR <= 1) {
			return fmt.Errorf("pdn: %v has AR %g outside (0,1]", domain.Kind(k), l.AR)
		}
		if !(l.FL >= 0 && l.FL <= 1) {
			return fmt.Errorf("pdn: %v has FL %g outside [0,1]", domain.Kind(k), l.FL)
		}
	}
	if !active {
		return ErrNoLoad
	}
	return nil
}

// Finish assembles a Result from accumulated parts, computing ETEE and the
// total chip input current. pnom is the scenario's total nominal power
// (Scenario.TotalNominal), which every model already has in hand.
func Finish(kind Kind, pnom units.Watt, pin units.Watt, bd Breakdown, rails RailSet, railR units.Ohm) Result {
	var r Result
	FinishInto(&r, kind, pnom, pin, &bd, &rails, railR)
	return r
}

// FinishInto is Finish writing the Result in place. The grid kernels use it
// to fill their caller's result block directly: a Result is ~260 bytes
// (mostly the rail set), and building it on the stack only to copy it into
// out[i] is a measurable fraction of a batch point's budget. The arithmetic
// is exactly Finish's, so the scalar wrapper above and the batch path
// produce identical bits.
func FinishInto(dst *Result, kind Kind, pnom units.Watt, pin units.Watt, bd *Breakdown, rails *RailSet, railR units.Ohm) {
	var iin units.Amp
	for i := 0; i < rails.n; i++ {
		iin += rails.rails[i].Current
	}
	dst.PDN = kind
	dst.PNomTotal = pnom
	dst.PIn = pin
	dst.ETEE = pnom / pin
	dst.Breakdown = *bd
	dst.ChipInputCurrent = iin
	dst.ComputeRailR = railR
	dst.Rails = *rails
}

// FinishGrid completes a Result whose Breakdown and Rails a grid kernel has
// already accumulated in place (the kernels zero the result block up front
// and let the runners write dst.Breakdown/dst.Rails directly, eliminating
// the last per-point struct copies). The remaining assignments are exactly
// Finish's, computed from the in-place rail set.
func FinishGrid(dst *Result, kind Kind, pnom units.Watt, pin units.Watt, railR units.Ohm) {
	var iin units.Amp
	for i := 0; i < dst.Rails.n; i++ {
		iin += dst.Rails.rails[i].Current
	}
	dst.PDN = kind
	dst.PNomTotal = pnom
	dst.PIn = pin
	dst.ETEE = pnom / pin
	dst.ChipInputCurrent = iin
	dst.ComputeRailR = railR
}

// IVRModel is the integrated-VR PDN (Fig 1(a)): one off-chip V_IN VR at
// 1.8 V feeding six on-die IVRs, one per domain.
type IVRModel struct {
	params Params
	ivr    *vr.Buck
	vin    *vr.Buck
}

// NewIVRModel constructs the IVR PDN with the given parameters.
func NewIVRModel(p Params) *IVRModel {
	return &IVRModel{
		params: p,
		ivr:    vr.NewIVR("IVR", p.IVRIccmax),
		vin:    vr.NewVinVR(p.VINIccmax),
	}
}

// Kind implements Model.
func (m *IVRModel) Kind() Kind { return IVR }

// Evaluate implements Model, following Eq. 2, 6, 7, 8, 9.
func (m *IVRModel) Evaluate(s Scenario) (Result, error) {
	if err := Validate(&s); err != nil {
		return Result{}, err
	}
	p := m.params
	var computeP, total units.Watt
	for k := range s.Loads {
		total += s.Loads[k].PNom
		if domain.Kind(k).IsCompute() {
			computeP += s.Loads[k].PNom
		}
	}
	st := IVRStage(s.Loads[:], m.ivr, p.TOBIVR, p.VINLevel, s.CState)
	share := 1.0
	if total > 0 {
		share = computeP / total
	}
	rail := VinRail(m.vin, st, p.VINLevel, p.IVRInLL, s.PSU, s.CState, share)
	bd := st.Breakdown
	bd.Add(rail.Breakdown)
	var rails RailSet
	rails.Append(rail.Rail)
	return Finish(IVR, total, rail.PIn, bd, rails, p.IVRInLL), nil
}

// MBVRModel is the motherboard-VR PDN (Fig 1(b)): four one-stage board VRs
// (V_Cores for Core0/Core1, V_GFX for GFX and the LLC, V_SA, V_IO) and six
// on-chip power gates. The LLC shares the graphics rail: for CPU workloads
// its voltage matches the cores anyway (§7.1), while for graphics workloads
// it runs at graphics-class voltage, so pairing it with V_GFX avoids
// over-volting the (low-voltage) cores.
type MBVRModel struct {
	params Params
	cores  *vr.Buck
	gfx    *vr.Buck
	sa     *vr.Buck
	io     *vr.Buck
}

// NewMBVRModel constructs the MBVR PDN.
func NewMBVRModel(p Params) *MBVRModel {
	return &MBVRModel{
		params: p,
		cores:  vr.NewBoardVR("V_Cores", p.CoresIccmax),
		gfx:    vr.NewBoardVR("V_GFX", p.GfxIccmax),
		sa:     vr.NewSmallRailVR("V_SA", p.SAIccmax),
		io:     vr.NewSmallRailVR("V_IO", p.IOIccmax),
	}
}

// Kind implements Model.
func (m *MBVRModel) Kind() Kind { return MBVR }

// Evaluate implements Model, following Eq. 2–5 per rail.
func (m *MBVRModel) Evaluate(s Scenario) (Result, error) {
	if err := Validate(&s); err != nil {
		return Result{}, err
	}
	p := m.params
	var pin units.Watt
	var bd Breakdown
	var rails RailSet
	coresOut := BoardRail(m.cores, []Load{s.Loads[domain.Core0], s.Loads[domain.Core1]}, p.TOBMBVR, p.RPG, p.CoresLL, s.PSU, s.CState, true)
	gfxOut := BoardRail(m.gfx, []Load{s.Loads[domain.GFX], s.Loads[domain.LLC]}, p.TOBMBVR, p.RPG, p.GfxLL, s.PSU, s.CState, true)
	saOut := BoardRail(m.sa, []Load{s.Loads[domain.SA]}, p.TOBMBVR, p.RPG, p.SALL, s.PSU, s.CState, false)
	ioOut := BoardRail(m.io, []Load{s.Loads[domain.IO]}, p.TOBMBVR, p.RPG, p.IOLL, s.PSU, s.CState, false)
	for _, out := range []RailOut{coresOut, gfxOut, saOut, ioOut} {
		pin += out.PIn
		bd.Add(out.Breakdown)
		rails.Append(out.Rail)
	}
	return Finish(MBVR, s.TotalNominal(), pin, bd, rails, p.CoresLL), nil
}

// LDOModel is the LDO PDN (Fig 1(c), AMD Zen style): compute domains behind
// on-chip LDOs fed from a shared V_IN VR set to the maximum compute voltage;
// SA and IO on dedicated one-stage board VRs with power gates.
type LDOModel struct {
	params Params
	ldo    *vr.LDO
	vin    *vr.Buck
	sa     *vr.Buck
	io     *vr.Buck
}

// NewLDOModel constructs the LDO PDN.
func NewLDOModel(p Params) *LDOModel {
	return &LDOModel{
		params: p,
		ldo:    vr.NewPlatformLDO("LDO", p.IVRIccmax),
		vin:    vr.NewVinVR(p.VINIccmax),
		sa:     vr.NewSmallRailVR("V_SA", p.SAIccmax),
		io:     vr.NewSmallRailVR("V_IO", p.IOIccmax),
	}
}

// Kind implements Model.
func (m *LDOModel) Kind() Kind { return LDO }

// Evaluate implements Model, following Eq. 2, 10, 11, 7, 8, 12.
func (m *LDOModel) Evaluate(s Scenario) (Result, error) {
	if err := Validate(&s); err != nil {
		return Result{}, err
	}
	p := m.params
	compute := []Load{s.Loads[domain.Core0], s.Loads[domain.Core1], s.Loads[domain.LLC], s.Loads[domain.GFX]}
	vinLevel, st := LDOStage(compute, m.ldo, p.TOBLDO)

	var pin units.Watt
	var bd Breakdown
	var rails RailSet
	if st.PIn > 0 {
		rail := VinRail(m.vin, st, vinLevel, p.LDOInLL, s.PSU, s.CState, 1)
		pin += rail.PIn
		bd.Add(st.Breakdown)
		bd.Add(rail.Breakdown)
		rails.Append(rail.Rail)
	}
	saOut := BoardRail(m.sa, []Load{s.Loads[domain.SA]}, p.TOBLDO, p.RPG, p.SALL, s.PSU, s.CState, false)
	ioOut := BoardRail(m.io, []Load{s.Loads[domain.IO]}, p.TOBLDO, p.RPG, p.IOLL, s.PSU, s.CState, false)
	pin += saOut.PIn + ioOut.PIn
	bd.Add(saOut.Breakdown)
	bd.Add(ioOut.Breakdown)
	rails.Append(saOut.Rail)
	rails.Append(ioOut.Rail)
	return Finish(LDO, s.TotalNominal(), pin, bd, rails, p.LDOInLL), nil
}

// IMBVRModel is the Skylake-X style hybrid (§7): compute domains behind
// IVRs on the 1.8 V V_IN rail (as in the IVR PDN) while SA and IO sit on
// dedicated one-stage board VRs (as in the MBVR PDN).
type IMBVRModel struct {
	params Params
	ivr    *vr.Buck
	vin    *vr.Buck
	sa     *vr.Buck
	io     *vr.Buck
}

// NewIMBVRModel constructs the I+MBVR PDN.
func NewIMBVRModel(p Params) *IMBVRModel {
	return &IMBVRModel{
		params: p,
		ivr:    vr.NewIVR("IVR", p.IVRIccmax),
		vin:    vr.NewVinVR(p.VINIccmax),
		sa:     vr.NewSmallRailVR("V_SA", p.SAIccmax),
		io:     vr.NewSmallRailVR("V_IO", p.IOIccmax),
	}
}

// Kind implements Model.
func (m *IMBVRModel) Kind() Kind { return IMBVR }

// Evaluate implements Model.
func (m *IMBVRModel) Evaluate(s Scenario) (Result, error) {
	if err := Validate(&s); err != nil {
		return Result{}, err
	}
	p := m.params
	compute := []Load{s.Loads[domain.Core0], s.Loads[domain.Core1], s.Loads[domain.LLC], s.Loads[domain.GFX]}
	st := IVRStage(compute, m.ivr, p.TOBIVR, p.VINLevel, s.CState)

	var pin units.Watt
	var bd Breakdown
	var rails RailSet
	if st.PIn > 0 {
		rail := VinRail(m.vin, st, p.VINLevel, p.IVRInLL, s.PSU, s.CState, 1)
		pin += rail.PIn
		bd.Add(st.Breakdown)
		bd.Add(rail.Breakdown)
		rails.Append(rail.Rail)
	}
	saOut := BoardRail(m.sa, []Load{s.Loads[domain.SA]}, p.TOBMBVR, p.RPG, p.SALL, s.PSU, s.CState, false)
	ioOut := BoardRail(m.io, []Load{s.Loads[domain.IO]}, p.TOBMBVR, p.RPG, p.IOLL, s.PSU, s.CState, false)
	pin += saOut.PIn + ioOut.PIn
	bd.Add(saOut.Breakdown)
	bd.Add(ioOut.Breakdown)
	rails.Append(saOut.Rail)
	rails.Append(ioOut.Rail)
	return Finish(IMBVR, s.TotalNominal(), pin, bd, rails, p.IVRInLL), nil
}

// New constructs a baseline model of the given kind (not FlexWatts, which
// lives in internal/core).
func New(k Kind, p Params) (Model, error) {
	switch k {
	case IVR:
		return NewIVRModel(p), nil
	case MBVR:
		return NewMBVRModel(p), nil
	case LDO:
		return NewLDOModel(p), nil
	case IMBVR:
		return NewIMBVRModel(p), nil
	default:
		return nil, fmt.Errorf("pdn: no baseline model for %v", k)
	}
}
