package pdn

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/domain"
	"repro/internal/units"
)

// gridTestParams returns plausible PDNspot parameters for the kernel tests
// (the root-level property test covers the real platform parameters; here
// the point is exercising every branch of the runners).
func gridTestParams() Params {
	return Params{
		TOBIVR:           units.MilliVolt(10),
		TOBMBVR:          units.MilliVolt(20),
		TOBLDO:           units.MilliVolt(15),
		VINLevel:         1.8,
		IVRInLL:          units.MilliOhm(3),
		LDOInLL:          units.MilliOhm(5),
		CoresLL:          units.MilliOhm(2),
		GfxLL:            units.MilliOhm(2),
		SALL:             units.MilliOhm(5),
		IOLL:             units.MilliOhm(5),
		RPG:              units.MilliOhm(1.5),
		IVRIccmax:        50,
		VINIccmax:        40,
		CoresIccmax:      60,
		GfxIccmax:        40,
		SAIccmax:         10,
		IOIccmax:         10,
		FlexSharePenalty: 1.1,
	}
}

// gridTestScenarios builds a grid that exercises the memo machinery the way
// real sweeps do — runs where only AR changes (stage-memo hits), power/
// voltage steps (misses), C-state changes (VR state re-selection), PSU
// changes (off-chip recompiles), idle domains, all-compute-idle points and
// single-domain points — in an order that also forces memo invalidation
// between hits.
func gridTestScenarios() []Scenario {
	base := NewScenario()
	base.Loads[domain.Core0] = Load{PNom: 4, VNom: 0.85, FL: 0.3, AR: 0.6}
	base.Loads[domain.Core1] = Load{PNom: 3.5, VNom: 0.85, FL: 0.3, AR: 0.6}
	base.Loads[domain.LLC] = Load{PNom: 1.2, VNom: 0.8, FL: 0.4, AR: 0.7}
	base.Loads[domain.GFX] = Load{PNom: 5, VNom: 0.75, FL: 0.35, AR: 0.5}
	base.Loads[domain.SA] = Load{PNom: 0.8, VNom: 0.8, FL: 0.25, AR: 0.9}
	base.Loads[domain.IO] = Load{PNom: 0.5, VNom: 1.05, FL: 0.2, AR: 0.95}

	var out []Scenario
	// AR-only runs at two power levels: consecutive points hit the stage
	// memos.
	for _, scale := range []float64{1, 2.5} {
		for _, ar := range []float64{0.3, 0.45, 0.6, 0.8, 1} {
			s := base
			for k := range s.Loads {
				if s.Loads[k].Active() {
					s.Loads[k].PNom *= scale
					s.Loads[k].AR = ar
				}
			}
			out = append(out, s)
		}
	}
	// Voltage and leakage steps: memo misses on VNom/FL.
	for _, dv := range []float64{-0.1, 0.05, 0.2} {
		s := base
		for _, k := range domain.ComputeKinds() {
			s.Loads[k].VNom += dv
			s.Loads[k].FL += dv / 2
		}
		out = append(out, s)
	}
	// C-state ladder at fixed loads: same load key, different VR states.
	for _, c := range []domain.CState{domain.C0, domain.C0MIN, domain.C2, domain.C6, domain.C8} {
		s := base
		s.CState = c
		out = append(out, s)
	}
	// PSU change mid-grid: off-chip recompile.
	for _, psu := range []units.Volt{7.2, 12, 19.5, 7.2} {
		s := base
		s.PSU = psu
		out = append(out, s)
	}
	// Idle subsets: compute-idle (LDO stage's vin==0 branch, SA/IO-only
	// rails), uncore-idle, single tiny domain, light loads (PS1 selection).
	computeIdle := base
	for _, k := range domain.ComputeKinds() {
		computeIdle.Loads[k] = Load{}
	}
	out = append(out, computeIdle)
	uncoreIdle := base
	for _, k := range domain.UncoreKinds() {
		uncoreIdle.Loads[k] = Load{}
	}
	out = append(out, uncoreIdle)
	solo := NewScenario()
	solo.Loads[domain.IO] = Load{PNom: 0.05, VNom: 1.05, FL: 0.2, AR: 1}
	out = append(out, solo)
	light := base
	for k := range light.Loads {
		if light.Loads[k].Active() {
			light.Loads[k].PNom *= 0.05
		}
	}
	out = append(out, light)
	// Mixed rail voltages so MBVR's rail-sharing overvolt branch runs both
	// ways (LLC below and above the GFX voltage).
	swapped := base
	swapped.Loads[domain.LLC].VNom = 1.0
	out = append(out, swapped)
	// Return to base: stage memos must re-validate correctly after misses.
	out = append(out, base)
	return out
}

// TestGridViewAliasing pins View's alias contract: a view shares the
// parent's column storage, so mutation flows both ways — that sharing is
// what lets GridMapCtx chunk one grid across workers without copying.
func TestGridViewAliasing(t *testing.T) {
	scenarios := gridTestScenarios()
	g := GridOf(scenarios)
	v := g.View(3, 9)
	if v.Len() != 6 {
		t.Fatalf("view length %d, want 6", v.Len())
	}
	for i := 0; i < v.Len(); i++ {
		if v.At(i) != g.At(3+i) {
			t.Fatalf("view point %d differs from parent point %d", i, 3+i)
		}
	}
	// Writing through the view must reach the parent…
	mut := scenarios[len(scenarios)-1]
	mut.Loads[domain.Core0].PNom = 42
	mut.PSU = 19.5
	mut.CState = domain.C2
	v.Set(2, mut)
	if got := g.At(5); got != mut {
		t.Errorf("parent did not see view mutation: got %+v", got)
	}
	// …and writing through the parent must be visible in the view.
	mut.Loads[domain.GFX].AR = 0.123
	g.Set(7, mut)
	if got := v.At(4); got != mut {
		t.Errorf("view did not see parent mutation: got %+v", got)
	}
	// Points outside the window stay untouched by the view writes.
	if g.At(2) != scenarios[2] || g.At(9) != scenarios[9] {
		t.Error("view mutation leaked outside its [lo,hi) window")
	}
}

// TestGridGatherCopies pins Gather's copy contract — the opposite of
// View's: the gathered sub-grid owns its storage, so mutating it must
// never corrupt the source (the cache relies on this when it evaluates a
// miss sub-grid while other workers read the request grid), and mutating
// the source must not retroactively change the gathered points.
func TestGridGatherCopies(t *testing.T) {
	scenarios := gridTestScenarios()
	src := GridOf(scenarios)
	indices := []int{7, 0, 3, 3, len(scenarios) - 1}
	var g Grid
	g.Gather(src, indices)
	if g.Len() != len(indices) {
		t.Fatalf("gathered length %d, want %d", g.Len(), len(indices))
	}
	for j, i := range indices {
		if g.At(j) != src.At(i) {
			t.Fatalf("gathered point %d differs from source point %d", j, i)
		}
	}
	// Mutate every gathered point; the source must keep its bits.
	mut := scenarios[1]
	mut.Loads[domain.Core0].PNom = 99
	mut.PSU = 7.2
	for j := 0; j < g.Len(); j++ {
		g.Set(j, mut)
	}
	for i, want := range scenarios {
		if src.At(i) != want {
			t.Fatalf("source point %d corrupted by gathered-grid mutation", i)
		}
	}
	// And the reverse: source mutation must not reach the gathered copy.
	g.Gather(src, indices)
	src.Set(7, mut)
	if g.At(0) != scenarios[7] {
		t.Error("source mutation reached the gathered copy")
	}
	// Re-gather into the same grid reuses its columns across lengths.
	g.Gather(src, indices[:2])
	if g.Len() != 2 || g.At(1) != src.At(0) {
		t.Errorf("re-gather: len %d, point 1 mismatch", g.Len())
	}
}

// TestEvaluateGridBitwise pins the grid kernels against the scalar models:
// every Result field of every point must carry identical float64 bits.
func TestEvaluateGridBitwise(t *testing.T) {
	p := gridTestParams()
	g := GridOf(gridTestScenarios())
	out := make([]Result, g.Len())
	for _, k := range Kinds() {
		m, err := New(k, p)
		if err != nil {
			t.Fatal(err)
		}
		ge, ok := m.(interface {
			EvaluateGrid(*Grid, []Result) error
		})
		if !ok {
			t.Fatalf("%v model does not implement EvaluateGrid", k)
		}
		if err := ge.EvaluateGrid(g, out); err != nil {
			t.Fatalf("%v EvaluateGrid: %v", k, err)
		}
		for i := 0; i < g.Len(); i++ {
			want, err := m.Evaluate(g.At(i))
			if err != nil {
				t.Fatalf("%v scalar point %d: %v", k, i, err)
			}
			if out[i] != want {
				t.Errorf("%v point %d: grid result differs from scalar\n grid:   %+v\n scalar: %+v", k, i, out[i], want)
			}
		}
	}
}

// TestEvaluateGridErrors pins the error contract: the first invalid point
// stops the run with the scalar error wrapped by its index, preceding
// results stay valid, and a short result block is rejected up front.
func TestEvaluateGridErrors(t *testing.T) {
	p := gridTestParams()
	m := NewIVRModel(p)
	good := gridTestScenarios()[0]
	bad := good
	bad.Loads[domain.Core0].AR = 1.5 // outside (0,1]

	g := GridOf([]Scenario{good, bad, good})
	out := make([]Result, g.Len())
	err := m.EvaluateGrid(g, out)
	if err == nil {
		t.Fatal("EvaluateGrid accepted an invalid point")
	}
	_, wantErr := m.Evaluate(bad)
	if wantErr == nil {
		t.Fatal("scalar Evaluate accepted the invalid point")
	}
	if !strings.Contains(err.Error(), "grid point 1") || !strings.Contains(err.Error(), wantErr.Error()) {
		t.Errorf("grid error %q does not wrap scalar error %q at index 1", err, wantErr)
	}
	want, err2 := m.Evaluate(good)
	if err2 != nil {
		t.Fatal(err2)
	}
	if out[0] != want {
		t.Error("result for the point preceding the failure was not written")
	}

	empty := GridOf([]Scenario{NewScenario()}) // no active load
	if err := m.EvaluateGrid(empty, make([]Result, 1)); !errors.Is(err, ErrNoLoad) {
		t.Errorf("no-load grid error = %v, want wrapped ErrNoLoad", err)
	}

	if err := m.EvaluateGrid(g, make([]Result, 1)); err == nil {
		t.Error("EvaluateGrid accepted a result block shorter than the grid")
	}
}

// TestGridAccessors pins the SoA round-trip: Append/Set/At/View agree with
// the scenario values they were fed.
func TestGridAccessors(t *testing.T) {
	ss := gridTestScenarios()
	g := NewGrid(4) // smaller than len(ss): growth path
	for _, s := range ss {
		g.Append(s)
	}
	if g.Len() != len(ss) {
		t.Fatalf("Len = %d, want %d", g.Len(), len(ss))
	}
	for i, s := range ss {
		if g.At(i) != s {
			t.Fatalf("At(%d) round-trip mismatch", i)
		}
	}
	v := g.View(2, 5)
	if v.Len() != 3 {
		t.Fatalf("View len = %d, want 3", v.Len())
	}
	for i := 0; i < 3; i++ {
		if v.At(i) != ss[2+i] {
			t.Fatalf("View.At(%d) != parent point %d", i, 2+i)
		}
	}
	repl := ss[7]
	v.Set(0, repl)
	if g.At(2) != repl {
		t.Error("Set through a view did not write the parent storage")
	}
}
