//go:build race

package pdn

// raceDetectorEnabled reports whether this binary was built with -race.
// The race detector deliberately drops a fraction of sync.Pool puts, so
// assertions that a released lease comes back from the pool cannot hold.
const raceDetectorEnabled = true
