package pdn

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/domain"
	"repro/internal/units"
)

func testModels(t *testing.T) (map[Kind]Model, *domain.Platform) {
	t.Helper()
	p := DefaultParams()
	plat := domain.NewClientPlatform()
	models := make(map[Kind]Model, 4)
	for _, k := range Kinds() {
		m, err := New(k, p)
		if err != nil {
			t.Fatal(err)
		}
		models[k] = m
	}
	return models, plat
}

// activeScenario returns a representative multi-threaded scenario.
func activeScenario(coreP units.Watt, coreV units.Volt, ar float64) Scenario {
	s := NewScenario()
	mk := func(k domain.Kind, p units.Watt, v units.Volt, fl float64) {
		s.Loads[k] = Load{PNom: p, VNom: v, FL: fl, AR: ar}
	}
	mk(domain.Core0, coreP/2, coreV, 0.22)
	mk(domain.Core1, coreP/2, coreV, 0.22)
	mk(domain.LLC, coreP/6, coreV, 0.22)
	mk(domain.GFX, 0, 0, 0)
	mk(domain.SA, 0.8, 0.85, 0.22)
	mk(domain.IO, 0.45, 1.05, 0.22)
	return s
}

func TestEvaluateBasics(t *testing.T) {
	models, _ := testModels(t)
	s := activeScenario(3, 0.7, 0.6)
	for k, m := range models {
		r, err := m.Evaluate(s)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if !(r.ETEE > 0 && r.ETEE < 1) {
			t.Errorf("%v: ETEE %g outside (0,1)", k, r.ETEE)
		}
		if r.PIn <= r.PNomTotal {
			t.Errorf("%v: input power %g must exceed nominal %g", k, r.PIn, r.PNomTotal)
		}
		if r.PDN != k {
			t.Errorf("%v: result tagged %v", k, r.PDN)
		}
		if r.Rails.Len() == 0 {
			t.Errorf("%v: no rails reported", k)
		}
		// The breakdown must account for the whole loss.
		loss := r.PIn - r.PNomTotal
		if !units.ApproxEqual(r.Breakdown.Total(), loss, 0.01) {
			t.Errorf("%v: breakdown total %g != loss %g", k, r.Breakdown.Total(), loss)
		}
	}
}

func TestValidationErrors(t *testing.T) {
	models, _ := testModels(t)
	m := models[IVR]

	empty := NewScenario()
	if _, err := m.Evaluate(empty); !errors.Is(err, ErrNoLoad) {
		t.Errorf("empty scenario: got %v, want ErrNoLoad", err)
	}

	s := activeScenario(3, 0.7, 0.6)
	s.PSU = 0
	if _, err := m.Evaluate(s); err == nil {
		t.Error("zero PSU accepted")
	}

	s = activeScenario(3, 0.7, 0.6)
	l := s.Loads[domain.Core0]
	l.AR = 1.5
	s.Loads[domain.Core0] = l
	if _, err := m.Evaluate(s); err == nil {
		t.Error("AR > 1 accepted")
	}

	s = activeScenario(3, 0.7, 0.6)
	l = s.Loads[domain.Core0]
	l.VNom = 0
	s.Loads[domain.Core0] = l
	if _, err := m.Evaluate(s); err == nil {
		t.Error("active load with zero voltage accepted")
	}

	s = activeScenario(3, 0.7, 0.6)
	l = s.Loads[domain.Core0]
	l.PNom = -1
	s.Loads[domain.Core0] = l
	if _, err := m.Evaluate(s); err == nil {
		t.Error("negative power accepted")
	}

	s = activeScenario(3, 0.7, 0.6)
	l = s.Loads[domain.Core0]
	l.FL = 1.5
	s.Loads[domain.Core0] = l
	if _, err := m.Evaluate(s); err == nil {
		t.Error("FL > 1 accepted")
	}
}

func TestIVRWorstAtLightLoad(t *testing.T) {
	// Observation 1/3: the two-stage IVR PDN loses at light load to both
	// single-stage PDNs.
	models, _ := testModels(t)
	s := activeScenario(1.2, 0.58, 0.5)
	ri, _ := models[IVR].Evaluate(s)
	rm, _ := models[MBVR].Evaluate(s)
	rl, _ := models[LDO].Evaluate(s)
	if !(ri.ETEE < rm.ETEE && ri.ETEE < rl.ETEE) {
		t.Errorf("light load: IVR %.3f should trail MBVR %.3f and LDO %.3f",
			ri.ETEE, rm.ETEE, rl.ETEE)
	}
}

func TestIVRBestAtHeavyLoad(t *testing.T) {
	// Observation 1: at high power the IVR PDN overtakes MBVR and LDO.
	models, _ := testModels(t)
	s := activeScenario(28, 1.1, 0.6)
	ri, _ := models[IVR].Evaluate(s)
	rm, _ := models[MBVR].Evaluate(s)
	rl, _ := models[LDO].Evaluate(s)
	if !(ri.ETEE > rm.ETEE && ri.ETEE > rl.ETEE) {
		t.Errorf("heavy load: IVR %.3f should beat MBVR %.3f and LDO %.3f",
			ri.ETEE, rm.ETEE, rl.ETEE)
	}
}

func TestChipInputCurrentOrdering(t *testing.T) {
	// Fig 5: the IVR PDN's 1.8V input rail roughly halves chip input
	// current versus the low-voltage PDNs.
	models, _ := testModels(t)
	s := activeScenario(12, 0.9, 0.6)
	ri, _ := models[IVR].Evaluate(s)
	rm, _ := models[MBVR].Evaluate(s)
	rl, _ := models[LDO].Evaluate(s)
	if !(rm.ChipInputCurrent > 1.6*ri.ChipInputCurrent) {
		t.Errorf("MBVR current %.1fA should be ~2x IVR's %.1fA", rm.ChipInputCurrent, ri.ChipInputCurrent)
	}
	if !(rl.ChipInputCurrent > 1.6*ri.ChipInputCurrent) {
		t.Errorf("LDO current %.1fA should be ~2x IVR's %.1fA", rl.ChipInputCurrent, ri.ChipInputCurrent)
	}
}

func TestARRaisesETEE(t *testing.T) {
	// Observation 2: at fixed nominal power, higher AR means lower peak
	// current guardband, so MBVR/LDO ETEE rises with AR.
	models, _ := testModels(t)
	for _, k := range []Kind{MBVR, LDO} {
		prev := 0.0
		for _, ar := range []float64{0.4, 0.5, 0.6, 0.7, 0.8} {
			s := activeScenario(12, 0.9, ar)
			r, err := models[k].Evaluate(s)
			if err != nil {
				t.Fatal(err)
			}
			if r.ETEE <= prev {
				t.Errorf("%v: ETEE %.4f at AR %.1f not above %.4f", k, r.ETEE, ar, prev)
			}
			prev = r.ETEE
		}
	}
}

func TestIdleCStateScenarios(t *testing.T) {
	// Observation 3: in package idle states the IVR PDN pays its two-stage
	// losses while the others use efficient small rails.
	models, _ := testModels(t)
	for _, c := range domain.IdleCStates() {
		s := NewScenario()
		s.CState = c
		s.Loads[domain.SA] = Load{PNom: 0.3, VNom: 0.85, FL: 0.22, AR: 0.8}
		s.Loads[domain.IO] = Load{PNom: 0.2, VNom: 1.05, FL: 0.22, AR: 0.8}
		ri, err := models[IVR].Evaluate(s)
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		rm, _ := models[MBVR].Evaluate(s)
		if !(ri.ETEE < rm.ETEE) {
			t.Errorf("%v: IVR %.3f should trail MBVR %.3f", c, ri.ETEE, rm.ETEE)
		}
	}
}

func TestEvaluateProperty(t *testing.T) {
	// Property: any valid scenario yields a finite result with ETEE in
	// (0,1) and a breakdown that accounts for the loss.
	models, _ := testModels(t)
	f := func(pRaw, vRaw, arRaw float64, idleGfx bool) bool {
		p := 0.2 + math.Mod(math.Abs(pRaw), 30)
		v := 0.55 + math.Mod(math.Abs(vRaw), 0.55)
		ar := 0.15 + math.Mod(math.Abs(arRaw), 0.85)
		s := activeScenario(p, v, ar)
		if !idleGfx {
			s.Loads[domain.GFX] = Load{PNom: p / 3, VNom: v, FL: 0.45, AR: ar}
		}
		for _, m := range models {
			r, err := m.Evaluate(s)
			if err != nil {
				return false
			}
			if math.IsNaN(r.PIn) || math.IsInf(r.PIn, 0) {
				return false
			}
			if !(r.ETEE > 0 && r.ETEE < 1) {
				return false
			}
			if !units.ApproxEqual(r.Breakdown.Total(), r.PIn-r.PNomTotal, 0.01) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestVRStateFor(t *testing.T) {
	cases := []struct {
		c    domain.CState
		iout units.Amp
		want string
	}{
		{domain.C0, 5, "PS0"},
		{domain.C0, 0.3, "PS1"},
		{domain.C2, 10, "PS1"},
		{domain.C6, 10, "PS3"},
		{domain.C8, 10, "PS4"},
	}
	for _, c := range cases {
		if got := VRStateFor(c.c, c.iout).String(); got != c.want {
			t.Errorf("VRStateFor(%v, %g) = %s, want %s", c.c, c.iout, got, c.want)
		}
	}
}

func TestKindString(t *testing.T) {
	if IVR.String() != "IVR" || IMBVR.String() != "I+MBVR" || FlexWatts.String() != "FlexWatts" {
		t.Error("Kind.String mismatch")
	}
	if len(Kinds()) != 4 || len(AllKinds()) != 5 {
		t.Error("kind list sizes")
	}
	if _, err := New(FlexWatts, DefaultParams()); err == nil {
		t.Error("New(FlexWatts) should fail (lives in internal/core)")
	}
}

func TestBuildScenarioPhysics(t *testing.T) {
	plat := domain.NewClientPlatform()
	op := OperatingPoint{
		CState: domain.C0, Tj: 80, ActiveCores: 2,
		CoreFreq: units.GigaHertz(0.9), CoreAR: 0.56,
	}
	s := BuildScenario(plat, op)
	// §3.3: at the 4W operating point the domains' total nominal power is
	// approximately 3W.
	total := s.TotalNominal()
	if total < 2.4 || total > 3.6 {
		t.Errorf("4W-point nominal = %.2fW, want ~3W", total)
	}
	// Single-threaded gates the second core.
	op.ActiveCores = 1
	s = BuildScenario(plat, op)
	if s.Loads[domain.Core1].Active() {
		t.Error("ST scenario should gate core1")
	}
	// Idle states power only SA/IO.
	op = OperatingPoint{CState: domain.C8, Tj: 50}
	s = BuildScenario(plat, op)
	for _, k := range domain.ComputeKinds() {
		if s.Loads[k].Active() {
			t.Errorf("C8 scenario should gate %v", k)
		}
	}
	if !s.Loads[domain.SA].Active() || !s.Loads[domain.IO].Active() {
		t.Error("SA/IO must stay powered in C8")
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if got, err := ParseKind("flexwatts"); err != nil || got != FlexWatts {
		t.Errorf("ParseKind is not case-insensitive: %v, %v", got, err)
	}
	if got, err := ParseKind("IMBVR"); err != nil || got != IMBVR {
		t.Errorf("ParseKind(IMBVR) = %v, %v", got, err)
	}
	if _, err := ParseKind("XVR"); err == nil {
		t.Error("ParseKind accepted an unknown kind")
	}
}
