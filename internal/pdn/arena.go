package pdn

import (
	"sync"
	"sync/atomic"
)

// GridArena pools the scenario grid + result block pairs that batch
// request paths (flexwattsd's evaluate handlers, the SDK's EvaluateBatch)
// otherwise allocate per request. A lease checked out with Get hands back
// an empty Grid whose column capacity persists across reuses and a result
// block resized on demand, so a steady request load settles into zero
// grid/result allocations per request. The zero GridArena is ready to
// use; it is safe for concurrent use, and each lease must be used by one
// goroutine at a time and Released exactly once.
//
// The arena keeps its own books — Get checkouts and how many of them the
// pool satisfied — so serving layers can export an arena-reuse ratio: a
// ratio near 1 under steady load means requests are recycling warm
// arenas, while a sagging ratio flags churn (GC pressure clearing the
// pool, or request concurrency outgrowing it).
type GridArena struct {
	pool   sync.Pool
	gets   atomic.Int64
	reuses atomic.Int64
}

// GridLease is one GridArena checkout: a grid to fill and a result block
// to evaluate into.
type GridLease struct {
	arena *GridArena
	grid  Grid
	out   []Result
}

// Get checks a lease out of the arena. The lease's grid is empty; its
// backing capacity (and the result block's) carries over from the lease's
// previous life when the pool satisfies the checkout.
func (a *GridArena) Get() *GridLease {
	a.gets.Add(1)
	if v := a.pool.Get(); v != nil {
		a.reuses.Add(1)
		l := v.(*GridLease)
		l.grid.Reset()
		return l
	}
	return &GridLease{arena: a}
}

// Grid returns the leased grid.
func (l *GridLease) Grid() *Grid { return &l.grid }

// Results returns a result block with n slots, reusing the lease's
// backing array when its capacity suffices. The slots are not zeroed —
// every evaluation path overwrites the block it is handed — so callers
// must not read slots they have not written.
func (l *GridLease) Results(n int) []Result {
	if cap(l.out) < n {
		l.out = make([]Result, n)
	}
	return l.out[:n]
}

// Release returns the lease to its arena for reuse. The caller must not
// touch the lease, its grid or any Results block after the release.
func (l *GridLease) Release() {
	l.arena.pool.Put(l)
}

// Stats reports how many leases were checked out and how many of those
// checkouts the pool satisfied with a recycled lease; reuses/gets is the
// arena-reuse ratio.
func (a *GridArena) Stats() (gets, reuses int64) {
	return a.gets.Load(), a.reuses.Load()
}
