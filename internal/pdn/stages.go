package pdn

import (
	"repro/internal/domain"
	"repro/internal/loadline"
	"repro/internal/units"
	"repro/internal/vr"
)

// This file implements the reusable power-flow stages from which the four
// baseline PDN models (and FlexWatts, in internal/core) are assembled. Each
// stage follows the corresponding equations of paper §3.1.

// StageOut is the result of an on-chip conversion stage for a group of
// domains feeding a shared input rail.
type StageOut struct {
	// PIn is the power drawn from the shared rail (PIN in Fig 1).
	PIn units.Watt
	// AR is the group's effective application ratio (PIN / PINpeak).
	AR float64
	// Breakdown accumulates guardband and on-chip VR losses.
	Breakdown Breakdown
}

// IVRStage applies Eq. 2 and Eq. 6 to each active load: tolerance-band
// guardband followed by the domain's integrated VR loss, with all IVRs fed
// from the vin rail. It is used for all six domains in the IVR PDN and for
// the compute domains in I+MBVR and FlexWatts' IVR-Mode.
func IVRStage(loads []Load, ivr *vr.Buck, tob units.Volt, vin units.Volt, c domain.CState) StageOut {
	var out StageOut
	var ppeak units.Watt
	for _, l := range loads {
		if !l.Active() {
			continue
		}
		pgb := loadline.ApplyGuardband(l.PNom, l.VNom, tob, l.FL)
		out.Breakdown.Guardband += pgb - l.PNom
		iout := pgb / l.VNom
		eta := ivr.Efficiency(vr.OperatingPoint{
			Vin: vin, Vout: l.VNom, Iout: iout, State: VRStateFor(c, iout),
		})
		pd := pgb / eta // Eq. 6
		out.Breakdown.OnChipVR += pd - pgb
		out.PIn += pd
		ppeak += pd / l.AR
	}
	if ppeak > 0 {
		out.AR = out.PIn / ppeak
	} else {
		out.AR = 1
	}
	return out
}

// LDOStage applies Eq. 2 and Eq. 10/11 to the compute domains: the shared
// input rail is set to the maximum domain voltage, the highest-voltage
// domain's LDO runs in bypass, and the others regulate down (paying the
// voltage-ratio efficiency). Used by the LDO PDN and FlexWatts' LDO-Mode.
// It returns the chosen rail voltage alongside the stage result.
func LDOStage(loads []Load, ldo *vr.LDO, tob units.Volt) (units.Volt, StageOut) {
	var out StageOut
	var vin units.Volt
	for _, l := range loads {
		if l.Active() && l.VNom > vin {
			vin = l.VNom
		}
	}
	if vin == 0 {
		out.AR = 1
		return 0, out
	}
	// The rail itself needs the tolerance-band margin once; domains then
	// regulate (or bypass) from the raised rail.
	vin += tob
	var ppeak units.Watt
	for _, l := range loads {
		if !l.Active() {
			continue
		}
		pgb := loadline.ApplyGuardband(l.PNom, l.VNom, tob, l.FL)
		out.Breakdown.Guardband += pgb - l.PNom
		eta := ldo.Efficiency(vr.OperatingPoint{Vin: vin, Vout: l.VNom + tob})
		pd := pgb / eta // Eq. 11
		out.Breakdown.OnChipVR += pd - pgb
		out.PIn += pd
		ppeak += pd / l.AR
	}
	out.AR = out.PIn / ppeak
	return vin, out
}

// RailOut is the result of carrying a rail's power across its load-line and
// through its off-chip VR to the PSU.
type RailOut struct {
	// PIn is the power drawn from the PSU.
	PIn units.Watt
	// Breakdown holds the load-line conduction loss and off-chip VR loss.
	Breakdown Breakdown
	// Rail describes the electrical demand on the off-chip VR.
	Rail RailDraw
}

// VinRail carries a shared on-chip rail (output of IVRStage or LDOStage)
// across the input load-line (Eq. 7/8) and the first-stage VR (Eq. 9/12
// first term). computeShare says what fraction of the conduction loss to
// attribute to the compute path in the Fig 5 breakdown (1 when the rail
// feeds only compute domains).
func VinRail(b *vr.Buck, st StageOut, vin units.Volt, rll units.Ohm, psu units.Volt, c domain.CState, computeShare float64) RailOut {
	var out RailOut
	if st.PIn == 0 {
		out.Rail = RailDraw{Name: b.Name(), VOut: vin}
		return out
	}
	ll := loadline.Compensate(st.PIn, vin, st.AR, rll)
	out.Breakdown.CondCompute = ll.Loss * computeShare
	out.Breakdown.CondUncore = ll.Loss * (1 - computeShare)
	pin, loss := offChipInput(b, psu, ll.V, ll.P, c)
	out.Breakdown.OffChipVR = loss
	out.PIn = pin
	out.Rail = RailDraw{
		Name:    b.Name(),
		VOut:    ll.V,
		Current: ll.I,
		Peak:    st.PIn / st.AR / vin,
	}
	return out
}

// BoardRail serves a group of domains directly from a one-stage motherboard
// VR (the MBVR pattern, Eq. 2–5): per-domain tolerance guardband, scaling to
// the shared rail voltage (domains needing less than the rail voltage still
// receive it), power-gate drop compensation, group load-line, and the
// off-chip VR. compute selects which Fig 5 conduction-loss bucket the
// load-line loss lands in.
func BoardRail(b *vr.Buck, loads []Load, tob units.Volt, rpg, rll units.Ohm, psu units.Volt, c domain.CState, compute bool) RailOut {
	var out RailOut
	var railV units.Volt
	for _, l := range loads {
		if l.Active() && l.VNom > railV {
			railV = l.VNom
		}
	}
	if railV == 0 {
		out.Rail = RailDraw{Name: b.Name()}
		return out
	}
	var sum units.Watt
	var ppeak units.Watt
	for _, l := range loads {
		if !l.Active() {
			continue
		}
		pgb := loadline.ApplyGuardband(l.PNom, l.VNom, tob, l.FL)
		// Rail sharing: a domain whose nominal voltage is below the rail
		// voltage runs over-volted; Eq. 2 gives the power inflation.
		if l.VNom < railV {
			scaled := loadline.ApplyGuardband(pgb, l.VNom+tob, railV-l.VNom, l.FL)
			pgb = scaled
		}
		out.Breakdown.Guardband += pgb - l.PNom
		ppg := loadline.ApplyPowerGate(pgb, railV+tob, l.AR, l.FL, rpg)
		out.Breakdown.PowerGate += ppg - pgb
		sum += ppg
		ppeak += ppg / l.AR
	}
	ar := sum / ppeak
	ll := loadline.Compensate(sum, railV+tob, ar, rll)
	if compute {
		out.Breakdown.CondCompute = ll.Loss
	} else {
		out.Breakdown.CondUncore = ll.Loss
	}
	pin, loss := offChipInput(b, psu, ll.V, ll.P, c)
	out.Breakdown.OffChipVR = loss
	out.PIn = pin
	out.Rail = RailDraw{
		Name:    b.Name(),
		VOut:    ll.V,
		Current: ll.I,
		Peak:    sum / ar / (railV + tob),
	}
	return out
}
