package pdn

import (
	"repro/internal/units"
	"repro/internal/vr"
)

// Params carries the PDN model constants of Table 2. The zero value is not
// usable; start from DefaultParams.
type Params struct {
	// PSU is the battery/PSU voltage feeding the motherboard VRs (7.2–20 V;
	// 7.2 V matches the measured curves of Fig 3).
	PSU units.Volt
	// VINLevel is the first-stage output in the IVR PDN (typically 1.8 V).
	VINLevel units.Volt

	// Tolerance bands per PDN (Table 2: IVR 18–22 mV, MBVR 18–20 mV,
	// LDO 16–18 mV); the models use the mid-points.
	TOBIVR, TOBMBVR, TOBLDO units.Volt

	// RPG is the power-gate impedance (Table 2: 1–2 mΩ).
	RPG units.Ohm

	// Load-line impedances (Table 2).
	IVRInLL units.Ohm // IVR PDN: V_IN rail, 1 mΩ
	LDOInLL units.Ohm // LDO PDN: V_IN rail, 1.25 mΩ
	CoresLL units.Ohm // MBVR: V_Cores rail, 2.5 mΩ
	GfxLL   units.Ohm // MBVR: V_GFX rail, 2.5 mΩ
	SALL    units.Ohm // SA rail, 7 mΩ
	IOLL    units.Ohm // IO rail, 4 mΩ

	// FlexSharePenalty scales FlexWatts' input load-line relative to the
	// PDN it mimics in each mode; the hybrid VR shares routing between its
	// IVR and LDO halves, so its load-line is slightly higher (§7.1: "less
	// than 1% performance degradation ... due to FlexWatts's higher
	// load-line").
	FlexSharePenalty float64

	// Iccmax design limits used when instantiating regulators.
	VINIccmax, CoresIccmax, GfxIccmax, SAIccmax, IOIccmax, IVRIccmax units.Amp
}

// DefaultParams returns the Table 2 calibration.
func DefaultParams() Params {
	return Params{
		PSU:      7.2,
		VINLevel: 1.8,

		TOBIVR:  units.MilliVolt(20),
		TOBMBVR: units.MilliVolt(19),
		TOBLDO:  units.MilliVolt(17),

		RPG: units.MilliOhm(1.5),

		IVRInLL: units.MilliOhm(1.0),
		LDOInLL: units.MilliOhm(1.25),
		CoresLL: units.MilliOhm(2.5),
		GfxLL:   units.MilliOhm(2.5),
		SALL:    units.MilliOhm(7),
		IOLL:    units.MilliOhm(4),

		FlexSharePenalty: 1.10,

		VINIccmax:   45,
		CoresIccmax: 60,
		GfxIccmax:   55,
		SAIccmax:    6,
		IOIccmax:    4,
		IVRIccmax:   45,
	}
}

// newComputeLDOs instantiates one LDO per compute domain.
func newComputeLDOs(p Params) map[string]*vr.LDO {
	out := make(map[string]*vr.LDO, 4)
	for _, name := range []string{"LDO_Core0", "LDO_Core1", "LDO_LLC", "LDO_GFX"} {
		out[name] = vr.NewPlatformLDO(name, p.IVRIccmax)
	}
	return out
}
