package pdn

import (
	"testing"

	"repro/internal/domain"
)

// TestGridArenaLifecycle pins the arena contract: a released lease comes
// back empty (grid reset, stale results invisible through Results'
// resize-on-demand), capacity carries over, and the gets/reuses books
// track pool behavior so the exported reuse ratio means what it says.
func TestGridArenaLifecycle(t *testing.T) {
	var a GridArena
	scenarios := gridTestScenarios()

	l := a.Get()
	if gets, reuses := a.Stats(); gets != 1 || reuses != 0 {
		t.Fatalf("after first Get: stats (%d, %d), want (1, 0)", gets, reuses)
	}
	g := l.Grid()
	if g.Len() != 0 {
		t.Fatalf("fresh lease grid has %d points, want 0", g.Len())
	}
	for _, s := range scenarios {
		g.Append(s)
	}
	out := l.Results(g.Len())
	if len(out) != g.Len() {
		t.Fatalf("Results(%d) returned %d slots", g.Len(), len(out))
	}
	out[0].PIn = 1234 // stale content a later lease must not trust
	l.Release()

	// Single-goroutine Get after Put returns the recycled lease: grid
	// empty again, result capacity retained, books showing the reuse.
	// (Under the race detector sync.Pool drops puts at random, so the
	// reuse count is only pinned in regular builds.)
	l2 := a.Get()
	if gets, reuses := a.Stats(); gets != 2 || (!raceDetectorEnabled && reuses != 1) {
		t.Errorf("after recycled Get: stats (%d, %d), want (2, 1)", gets, reuses)
	}
	if l2.Grid().Len() != 0 {
		t.Errorf("recycled lease grid has %d points, want 0", l2.Grid().Len())
	}
	l2.Grid().Append(scenarios[0])
	small := l2.Results(1)
	if len(small) != 1 {
		t.Errorf("Results(1) returned %d slots", len(small))
	}
	// Growing past the retained capacity still works.
	big := l2.Results(4 * len(scenarios))
	if len(big) != 4*len(scenarios) {
		t.Errorf("Results(%d) returned %d slots", 4*len(scenarios), len(big))
	}
	l2.Release()
}

// TestGridArenaLeaseIsolation pins that a lease's grid owns its storage:
// filling and mutating one lease cannot corrupt another outstanding
// lease's points (two concurrent requests must never share columns).
func TestGridArenaLeaseIsolation(t *testing.T) {
	var a GridArena
	scenarios := gridTestScenarios()
	la, lb := a.Get(), a.Get()
	for _, s := range scenarios {
		la.Grid().Append(s)
	}
	mut := scenarios[0]
	mut.Loads[domain.Core0].PNom = 77
	lb.Grid().Append(mut)
	lb.Grid().Set(0, mut)
	for i, want := range scenarios {
		if la.Grid().At(i) != want {
			t.Fatalf("lease A point %d corrupted by lease B writes", i)
		}
	}
	la.Release()
	lb.Release()
}
