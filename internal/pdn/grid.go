package pdn

import (
	"fmt"

	"repro/internal/domain"
	"repro/internal/loadline"
	"repro/internal/units"
	"repro/internal/vr"
)

// This file implements the batch evaluation path: a struct-of-arrays
// scenario Grid plus per-model EvaluateGrid methods that hoist per-kind
// invariants out of the inner loop. The contract with the scalar path is
// bitwise identity: for every point i, EvaluateGrid writes the exact
// float64 bits Evaluate(g.At(i)) returns, and fails with the exact error
// Evaluate would return (wrapped with the point index). That bound — ε = 0,
// not an approximation tolerance — is what lets the grid path share the
// memoizing sweep cache and keep the experiment goldens byte-identical. It
// holds because every hoisted computation is either the same pure function
// evaluated once and replayed (stage memos, compiled vr.BuckOp constants
// that are prefixes of the scalar left-associative expressions), or the
// very same code path (loadline, validation, Finish) reading the same
// values from columnar instead of struct storage.
//
// Three invariant classes are hoisted:
//
//   - compiled VR operating points (vr.BuckStates): the per-(Vin, power
//     state) terms of the buck loss model, compiled once per grid (on-chip
//     VRs have a fixed input rail) or once per distinct PSU voltage
//     (off-chip VRs), replacing the per-point BuckParams copy and branch
//     tree that dominate the scalar profile;
//   - stage-output memos: the guardband+VR work of IVRStage/LDOStage
//     depends on (PNom, VNom, FL) per domain — the application ratio AR
//     enters only the peak-power accumulator — so across grid runs where
//     only AR varies (load-generator batches, AR sweeps) the stage replays
//     stored per-domain outputs and recomputes just the peak sum;
//   - whole-rail memos: a BoardRail whose loads, package state and PSU
//     repeat (the SA/IO rails, whose power is constant across TDP grids)
//     returns its stored output wholesale.
//
// The runners read grid columns in place — no per-point Scenario is ever
// materialized on the hot path (assembling one is a ~200-byte gather that
// costs as much as the arithmetic it feeds). The memos are depth-1
// (previous point) and live in per-call stack state, so EvaluateGrid is
// safe for concurrent use and allocates nothing per point.

// Grid is a batch of evaluation scenarios in struct-of-arrays layout:
// one parallel slice per load field per domain, plus per-point package
// state and PSU voltage. Column i across all slices is exactly the
// Scenario returned by At(i); Append/Set/At convert between the two
// representations. The zero Grid is empty and ready to Append into.
type Grid struct {
	n      int
	pnom   [domain.NumKinds][]units.Watt
	vnom   [domain.NumKinds][]units.Volt
	fl     [domain.NumKinds][]float64
	ar     [domain.NumKinds][]float64
	cstate []domain.CState
	psu    []units.Volt
}

// NewGrid returns an empty grid with capacity for n points.
func NewGrid(n int) *Grid {
	g := &Grid{}
	for k := range g.pnom {
		g.pnom[k] = make([]units.Watt, 0, n)
		g.vnom[k] = make([]units.Volt, 0, n)
		g.fl[k] = make([]float64, 0, n)
		g.ar[k] = make([]float64, 0, n)
	}
	g.cstate = make([]domain.CState, 0, n)
	g.psu = make([]units.Volt, 0, n)
	return g
}

// GridOf builds a grid from a slice of scenarios.
func GridOf(scenarios []Scenario) *Grid {
	g := NewGrid(len(scenarios))
	for _, s := range scenarios {
		g.Append(s)
	}
	return g
}

// Len returns the number of points.
func (g *Grid) Len() int { return g.n }

// Append adds a scenario as the next point.
func (g *Grid) Append(s Scenario) {
	for k := range s.Loads {
		g.pnom[k] = append(g.pnom[k], s.Loads[k].PNom)
		g.vnom[k] = append(g.vnom[k], s.Loads[k].VNom)
		g.fl[k] = append(g.fl[k], s.Loads[k].FL)
		g.ar[k] = append(g.ar[k], s.Loads[k].AR)
	}
	g.cstate = append(g.cstate, s.CState)
	g.psu = append(g.psu, s.PSU)
	g.n++
}

// Set overwrites point i.
func (g *Grid) Set(i int, s Scenario) {
	for k := range s.Loads {
		g.pnom[k][i] = s.Loads[k].PNom
		g.vnom[k][i] = s.Loads[k].VNom
		g.fl[k][i] = s.Loads[k].FL
		g.ar[k][i] = s.Loads[k].AR
	}
	g.cstate[i] = s.CState
	g.psu[i] = s.PSU
}

// At gathers point i back into a Scenario.
func (g *Grid) At(i int) Scenario {
	var s Scenario
	for k := range s.Loads {
		s.Loads[k] = Load{
			PNom: g.pnom[k][i],
			VNom: g.vnom[k][i],
			FL:   g.fl[k][i],
			AR:   g.ar[k][i],
		}
	}
	s.CState = g.cstate[i]
	s.PSU = g.psu[i]
	return s
}

// CStateAt returns the package power state of point i.
func (g *Grid) CStateAt(i int) domain.CState { return g.cstate[i] }

// PSUAt returns the supply voltage of point i.
func (g *Grid) PSUAt(i int) units.Volt { return g.psu[i] }

// TotalNominal returns ΣPNOM of point i, in Scenario.TotalNominal's
// accumulation order (ascending domain kind) so the sum carries identical
// float64 bits.
func (g *Grid) TotalNominal(i int) units.Watt {
	var sum units.Watt
	for k := domain.Kind(0); k < domain.NumKinds; k++ {
		sum += g.pnom[k][i]
	}
	return sum
}

// Validate checks point i against the scalar Validate invariants, reading
// the columns in place. It mirrors Validate(&s) check for check — same
// order, same predicates, same error values — which the grid error tests
// pin, so EvaluateGrid rejects a point with exactly the scalar error.
func (g *Grid) Validate(i int) error {
	if psu := g.psu[i]; psu <= 0 {
		return fmt.Errorf("pdn: PSU voltage must be positive, got %g", psu)
	}
	active := false
	for k := domain.Kind(0); k < domain.NumKinds; k++ {
		pnom := g.pnom[k][i]
		if pnom < 0 {
			return fmt.Errorf("pdn: %v has negative power %g", domain.Kind(k), pnom)
		}
		if !(pnom > 0) {
			continue
		}
		active = true
		if vnom := g.vnom[k][i]; vnom <= 0 {
			return fmt.Errorf("pdn: %v active with non-positive voltage %g", domain.Kind(k), vnom)
		}
		if ar := g.ar[k][i]; !(ar > 0 && ar <= 1) {
			return fmt.Errorf("pdn: %v has AR %g outside (0,1]", domain.Kind(k), ar)
		}
		if fl := g.fl[k][i]; !(fl >= 0 && fl <= 1) {
			return fmt.Errorf("pdn: %v has FL %g outside [0,1]", domain.Kind(k), fl)
		}
	}
	if !active {
		return ErrNoLoad
	}
	return nil
}

// Change masks: the kernel loops detect point-to-point repetition with one
// column-major prepass per block instead of scattered per-runner key
// compares. ChangeMasks writes, for each point, a bitmask of which fields
// equal the previous point's: bits 0..NumKinds-1 flag "this domain's
// AR-free load fields (PNom, VNom, FL) are unchanged", bits
// NumKinds..2*NumKinds-1 flag "this domain's AR is unchanged", and the two
// top bits flag the package state and PSU voltage. A runner then tests a
// single precomputed mask against its needs — equality chains transitively
// point to point, so "unchanged since my last full compute" is one AND+CMP.
// Equality is float ==, exactly the predicate the depth-1 memos always
// used: NaN compares unequal (forcing the full path, which behaves as the
// scalar does), and ±0 drift is unobservable because a load with zero power
// is inert in every hoisted quantity.
const (
	gridMaskARShift = uint(domain.NumKinds)
	gridMaskCState  = uint16(1) << (2 * domain.NumKinds)
	gridMaskPSU     = uint16(1) << (2*domain.NumKinds + 1)
	gridMaskAllFree = uint16(1)<<domain.NumKinds - 1
	gridMaskAllAR   = gridMaskAllFree << gridMaskARShift
)

// GridMaskBlock is the number of points a kernel prepasses at a time; the
// mask buffer is a stack array of this size, keeping EvaluateGrid
// allocation-free for grids of any length.
const GridMaskBlock = 1024

// kindsMask returns the AR-free change bits for a runner's load set,
// optionally with the matching AR bits.
func kindsMask(kinds []domain.Kind, withAR bool) uint16 {
	var m uint16
	for _, k := range kinds {
		m |= 1 << k
		if withAR {
			m |= 1 << (gridMaskARShift + uint(k))
		}
	}
	return m
}

// ChangeMasks fills masks[j] with the change bits of point lo+j relative to
// point lo+j-1 (masks[0] is zero when lo is 0: the first point has no
// predecessor and always takes the full path). The scan is column-major —
// one sequential sweep per field column — which is what makes the prepass
// cheaper than the per-point scattered compares it replaces.
func (g *Grid) ChangeMasks(lo int, masks []uint16) {
	for j := range masks {
		masks[j] = 0
	}
	start := 0
	if lo == 0 {
		start = 1
	}
	for k := 0; k < int(domain.NumKinds); k++ {
		pn, vn, fl, ar := g.pnom[k], g.vnom[k], g.fl[k], g.ar[k]
		fbit := uint16(1) << k
		abit := uint16(1) << (gridMaskARShift + uint(k))
		for j := start; j < len(masks); j++ {
			i := lo + j
			m := masks[j]
			if pn[i] == pn[i-1] && vn[i] == vn[i-1] && fl[i] == fl[i-1] {
				m |= fbit
			}
			if ar[i] == ar[i-1] {
				m |= abit
			}
			masks[j] = m
		}
	}
	cs, ps := g.cstate, g.psu
	for j := start; j < len(masks); j++ {
		i := lo + j
		if cs[i] == cs[i-1] {
			masks[j] |= gridMaskCState
		}
		if ps[i] == ps[i-1] {
			masks[j] |= gridMaskPSU
		}
	}
}

// GridPointRun memoizes the per-point validation and nominal-power sums of
// a kernel loop. The checks and sums of Validate depend only on the AR-free
// load fields plus the per-load AR range test, so across grid points where
// only AR varies (the mask says every AR-free column repeats) the runner
// re-checks just the changed ARs and replays the stored totals. The hit
// path is sound because every skipped predicate ran on bit-identical inputs
// when the memo was stored: same bits, same verdict, and the first failure
// the scalar would report — all non-AR checks passing — is necessarily the
// first failing changed AR in domain order, which the hit path reports
// identically. Not safe for concurrent use.
type GridPointRun struct {
	valid    bool
	total    units.Watt
	computeP units.Watt
}

// Validate checks point i exactly as Grid.Validate (and therefore the
// scalar Validate) does, taking point i's change mask from ChangeMasks; on
// success it memoizes ΣPNOM and the compute subtotal for
// TotalNominal/ComputeNominal.
func (r *GridPointRun) Validate(g *Grid, i int, m uint16) error {
	if psu := g.psu[i]; psu <= 0 {
		return fmt.Errorf("pdn: PSU voltage must be positive, got %g", psu)
	}
	if r.valid && m&gridMaskAllFree == gridMaskAllFree {
		if m&gridMaskAllAR == gridMaskAllAR {
			return nil
		}
		for k := domain.Kind(0); k < domain.NumKinds; k++ {
			if m&(1<<(gridMaskARShift+uint(k))) != 0 {
				continue
			}
			if !(g.pnom[k][i] > 0) {
				continue
			}
			if ar := g.ar[k][i]; !(ar > 0 && ar <= 1) {
				return fmt.Errorf("pdn: %v has AR %g outside (0,1]", k, ar)
			}
		}
		return nil
	}
	r.valid = false
	active := false
	var total, computeP units.Watt
	for k := domain.Kind(0); k < domain.NumKinds; k++ {
		pnom := g.pnom[k][i]
		if pnom < 0 {
			return fmt.Errorf("pdn: %v has negative power %g", k, pnom)
		}
		total += pnom
		if k.IsCompute() {
			computeP += pnom
		}
		if !(pnom > 0) {
			continue
		}
		active = true
		if vnom := g.vnom[k][i]; vnom <= 0 {
			return fmt.Errorf("pdn: %v active with non-positive voltage %g", k, vnom)
		}
		if ar := g.ar[k][i]; !(ar > 0 && ar <= 1) {
			return fmt.Errorf("pdn: %v has AR %g outside (0,1]", k, ar)
		}
		if fl := g.fl[k][i]; !(fl >= 0 && fl <= 1) {
			return fmt.Errorf("pdn: %v has FL %g outside [0,1]", k, fl)
		}
	}
	if !active {
		return ErrNoLoad
	}
	r.total, r.computeP = total, computeP
	r.valid = true
	return nil
}

// TotalNominal returns ΣPNOM of the last successfully validated point, in
// Scenario.TotalNominal's accumulation order.
func (r *GridPointRun) TotalNominal() units.Watt { return r.total }

// ComputeNominal returns the compute-domain subtotal of the last
// successfully validated point, in the scalar models' accumulation order.
func (r *GridPointRun) ComputeNominal() units.Watt { return r.computeP }

// Reset truncates the grid to zero points, keeping capacity — the
// building block for reusing one scratch grid across cache-miss blocks.
func (g *Grid) Reset() {
	for k := range g.pnom {
		g.pnom[k] = g.pnom[k][:0]
		g.vnom[k] = g.vnom[k][:0]
		g.fl[k] = g.fl[k][:0]
		g.ar[k] = g.ar[k][:0]
	}
	g.cstate = g.cstate[:0]
	g.psu = g.psu[:0]
	g.n = 0
}

// extend grows *s to length n — reusing capacity when it suffices,
// reallocating otherwise — and returns the slice for indexed writes.
func extend[T any](s *[]T, n int) []T {
	if cap(*s) >= n {
		*s = (*s)[:n]
	} else {
		*s = make([]T, n)
	}
	return *s
}

// Gather resets g to the points of src selected by indices, in order —
// the column-wise counterpart of an At/Append loop, which materializes a
// ~200-byte Scenario per point just to scatter it back into columns.
// Like Append, Gather copies into g's own backing arrays and never
// aliases src's storage: mutating the gathered grid cannot corrupt src.
// src must be a different grid than g.
func (g *Grid) Gather(src *Grid, indices []int) {
	n := len(indices)
	for k := range g.pnom {
		pn := extend(&g.pnom[k], n)
		vn := extend(&g.vnom[k], n)
		fl := extend(&g.fl[k], n)
		ar := extend(&g.ar[k], n)
		spn, svn, sfl, sar := src.pnom[k], src.vnom[k], src.fl[k], src.ar[k]
		for j, i := range indices {
			pn[j] = spn[i]
			vn[j] = svn[i]
			fl[j] = sfl[i]
			ar[j] = sar[i]
		}
	}
	cs := extend(&g.cstate, n)
	ps := extend(&g.psu, n)
	for j, i := range indices {
		cs[j] = src.cstate[i]
		ps[j] = src.psu[i]
	}
	g.n = n
}

// View returns a sub-grid over points [lo, hi) sharing the receiver's
// storage — the chunking primitive for parallel sweep workers. Mutating a
// view's points mutates the parent.
func (g *Grid) View(lo, hi int) Grid {
	var v Grid
	v.n = hi - lo
	for k := range g.pnom {
		v.pnom[k] = g.pnom[k][lo:hi]
		v.vnom[k] = g.vnom[k][lo:hi]
		v.fl[k] = g.fl[k][lo:hi]
		v.ar[k] = g.ar[k][lo:hi]
	}
	v.cstate = g.cstate[lo:hi]
	v.psu = g.psu[lo:hi]
	return v
}

// Kind-set constants for the kernel runners: which domains feed each stage
// or rail, in the exact iteration order of the scalar models. Package-level
// so constructing a runner allocates nothing.
var (
	gridAllKinds     = []domain.Kind{domain.Core0, domain.Core1, domain.LLC, domain.GFX, domain.SA, domain.IO}
	gridComputeKinds = []domain.Kind{domain.Core0, domain.Core1, domain.LLC, domain.GFX}
	gridCoresKinds   = []domain.Kind{domain.Core0, domain.Core1}
	gridGfxKinds     = []domain.Kind{domain.GFX, domain.LLC}
	gridSAKinds      = []domain.Kind{domain.SA}
	gridIOKinds      = []domain.Kind{domain.IO}
)

// IVRStageRun evaluates IVRStage over grid points with the IVR compiled at
// the fixed input rail and a previous-point stage memo keyed by the change
// masks. Construct one per EvaluateGrid call (it is cheap, stack-sized
// state); it is not safe for concurrent use.
type IVRStageRun struct {
	states vr.BuckStates
	tob    units.Volt
	kinds  []domain.Kind
	need   uint16 // AR-free bits of kinds + package state

	valid bool
	nact  int
	act   [domain.NumKinds]domain.Kind // active kinds of the memoized point, in eval order
	pd    [domain.NumKinds]units.Watt
	out   StageOut // PIn + Breakdown of the memoized point; AR unset
}

// NewIVRStageRun compiles ivr at the vin rail for all power states.
func NewIVRStageRun(ivr *vr.Buck, kinds []domain.Kind, tob, vin units.Volt) IVRStageRun {
	return IVRStageRun{
		states: ivr.CompileStates(vin),
		tob:    tob,
		kinds:  kinds,
		need:   kindsMask(kinds, false) | gridMaskCState,
	}
}

// EvalInto writes exactly IVRStage(loads, ivr, tob, vin, cstate) for point i
// of the grid into *dst, over the runner's load set; m is point i's change
// mask. The out-parameter form spares the kernel loop a StageOut copy per
// point.
func (r *IVRStageRun) EvalInto(dst *StageOut, g *Grid, i int, m uint16) {
	if r.valid && m&r.need == r.need {
		// Only AR changed: the stored per-domain outputs are bit-identical,
		// so replay them and recompute the peak sum with the current ARs in
		// the scalar accumulation order.
		*dst = r.out
		var ppeak units.Watt
		for _, k := range r.act[:r.nact] {
			ppeak += r.pd[k] / g.ar[k][i]
		}
		if ppeak > 0 {
			dst.AR = dst.PIn / ppeak
		} else {
			dst.AR = 1
		}
		return
	}
	var out StageOut
	var ppeak units.Watt
	cstate := g.cstate[i]
	r.nact = 0
	for _, k := range r.kinds {
		pnom, vnom, fl := g.pnom[k][i], g.vnom[k][i], g.fl[k][i]
		if !(pnom > 0) {
			continue
		}
		pgb := loadline.ApplyGuardband(pnom, vnom, r.tob, fl)
		out.Breakdown.Guardband += pgb - pnom
		iout := pgb / vnom
		eta := r.states.Efficiency(VRStateFor(cstate, iout), vnom, iout)
		pd := pgb / eta // Eq. 6
		out.Breakdown.OnChipVR += pd - pgb
		out.PIn += pd
		ppeak += pd / g.ar[k][i]
		r.pd[k] = pd
		r.act[r.nact] = k
		r.nact++
	}
	r.valid = true
	r.out = out
	if ppeak > 0 {
		out.AR = out.PIn / ppeak
	} else {
		out.AR = 1
	}
	*dst = out
}

// LDOStageRun evaluates LDOStage over grid points with a previous-point
// stage memo keyed by the change masks (the LDO efficiency is state-free,
// so the memo needs the AR-free load bits alone). Not safe for concurrent
// use.
type LDOStageRun struct {
	ldo   *vr.LDO
	tob   units.Volt
	kinds []domain.Kind
	need  uint16

	valid bool
	nact  int
	act   [domain.NumKinds]domain.Kind
	pd    [domain.NumKinds]units.Watt
	vin   units.Volt
	out   StageOut
}

// NewLDOStageRun returns a runner for the given compute load set.
func NewLDOStageRun(ldo *vr.LDO, kinds []domain.Kind, tob units.Volt) LDOStageRun {
	return LDOStageRun{ldo: ldo, tob: tob, kinds: kinds, need: kindsMask(kinds, false)}
}

// EvalInto writes exactly LDOStage(loads, ldo, tob) for point i of the grid
// into *dst, over the runner's load set, returning the stage input voltage;
// m is point i's change mask.
func (r *LDOStageRun) EvalInto(dst *StageOut, g *Grid, i int, m uint16) units.Volt {
	if r.valid && m&r.need == r.need {
		*dst = r.out
		if r.vin == 0 {
			dst.AR = 1
			return 0
		}
		var ppeak units.Watt
		for _, k := range r.act[:r.nact] {
			ppeak += r.pd[k] / g.ar[k][i]
		}
		dst.AR = dst.PIn / ppeak
		return r.vin
	}
	var vin units.Volt
	for _, k := range r.kinds {
		if g.pnom[k][i] > 0 && g.vnom[k][i] > vin {
			vin = g.vnom[k][i]
		}
	}
	r.valid = true
	r.nact = 0
	if vin == 0 {
		r.vin = 0
		r.out = StageOut{}
		*dst = StageOut{}
		dst.AR = 1
		return 0
	}
	vin += r.tob
	var out StageOut
	var ppeak units.Watt
	for _, k := range r.kinds {
		pnom, vnom, fl := g.pnom[k][i], g.vnom[k][i], g.fl[k][i]
		if !(pnom > 0) {
			continue
		}
		pgb := loadline.ApplyGuardband(pnom, vnom, r.tob, fl)
		out.Breakdown.Guardband += pgb - pnom
		eta := r.ldo.Efficiency(vr.OperatingPoint{Vin: vin, Vout: vnom + r.tob})
		pd := pgb / eta // Eq. 11
		out.Breakdown.OnChipVR += pd - pgb
		out.PIn += pd
		ppeak += pd / g.ar[k][i]
		r.pd[k] = pd
		r.act[r.nact] = k
		r.nact++
	}
	r.vin = vin
	r.out = out
	out.AR = out.PIn / ppeak
	*dst = out
	return vin
}

// VinRailRun evaluates VinRail over grid points with the off-chip VR
// compiled per distinct PSU voltage. Not safe for concurrent use.
type VinRailRun struct {
	b      *vr.Buck
	psu    units.Volt
	states vr.BuckStates
	ready  bool
}

// NewVinRailRun returns a runner for the given first-stage VR.
func NewVinRailRun(b *vr.Buck) VinRailRun {
	return VinRailRun{b: b}
}

// offChip mirrors offChipInput with the compiled operating points,
// recompiling only when the PSU voltage changes between points.
func (r *VinRailRun) offChip(psu, vout units.Volt, p units.Watt, c domain.CState) (pin, loss units.Watt) {
	if p == 0 {
		return 0, 0
	}
	if !r.ready || r.psu != psu {
		r.states = r.b.CompileStates(psu)
		r.psu = psu
		r.ready = true
	}
	iout := p / vout
	eta := r.states.Efficiency(VRStateFor(c, iout), vout, iout)
	pin = p / eta
	return pin, pin - p
}

// AddFrom accumulates another breakdown through a pointer — the same
// field-wise additions as Add, without copying the 48-byte operand.
func (b *Breakdown) AddFrom(o *Breakdown) {
	b.Guardband += o.Guardband
	b.PowerGate += o.PowerGate
	b.OnChipVR += o.OnChipVR
	b.OffChipVR += o.OffChipVR
	b.CondCompute += o.CondCompute
	b.CondUncore += o.CondUncore
}

// EvalInto accumulates exactly VinRail(b, st, vin, rll, psu, c,
// computeShare) into the caller's breakdown and rail set, returning the
// rail's PSU draw. Each breakdown field is one `+=` of the same term the
// standalone RailOut form stored — the very additions Breakdown.Add would
// perform — so accumulating in place carries identical float64 bits while
// sparing the kernel loop a RailOut build, copy and Add per point.
func (r *VinRailRun) EvalInto(st *StageOut, vin units.Volt, rll units.Ohm, psu units.Volt, c domain.CState, computeShare float64, bd *Breakdown, rails *RailSet) units.Watt {
	if st.PIn == 0 {
		rails.Append(RailDraw{Name: r.b.Name(), VOut: vin})
		return 0
	}
	ll := loadline.Compensate(st.PIn, vin, st.AR, rll)
	bd.CondCompute += ll.Loss * computeShare
	bd.CondUncore += ll.Loss * (1 - computeShare)
	pin, loss := r.offChip(psu, ll.V, ll.P, c)
	bd.OffChipVR += loss
	rails.Append(RailDraw{
		Name:    r.b.Name(),
		VOut:    ll.V,
		Current: ll.I,
		Peak:    st.PIn / st.AR / vin,
	})
	return pin
}

// BoardRailRun evaluates BoardRail over grid points with the off-chip VR
// compiled per distinct PSU voltage and two memo tiers keyed on the change
// masks: a whole-rail memo — when the rail's loads (AR included), the
// package state and the PSU all repeat (the SA/IO rails across a TDP or AR
// sweep) the stored output is returned wholesale on a single mask test —
// and a free-field memo that keeps the rail voltage and per-load
// guardbanded powers (functions of PNom/VNom/FL only) across AR-innermost
// sweeps, where every point invalidates the whole-rail tier but not the
// guardband work. Not safe for concurrent use.
type BoardRailRun struct {
	b        *vr.Buck
	kinds    []domain.Kind
	tob      units.Volt
	rpg      units.Ohm
	rll      units.Ohm
	compute  bool
	need     uint16
	freeNeed uint16

	psu    units.Volt
	states vr.BuckStates
	ready  bool

	// Free-field memo (see evalPoint): the rail voltage, the active load
	// set in domain order, and per-load guardbanded power / guardband
	// delta / FL — everything the per-load loop derives before AR enters.
	fvalid bool
	railV  units.Volt
	nact   int
	actK   [domain.NumKinds]domain.Kind
	pgb    [domain.NumKinds]units.Watt
	gbd    [domain.NumKinds]units.Watt
	flv    [domain.NumKinds]float64

	valid bool
	out   RailOut
}

// NewBoardRailRun returns a runner for one motherboard rail.
func NewBoardRailRun(b *vr.Buck, kinds []domain.Kind, tob units.Volt, rpg, rll units.Ohm, compute bool) BoardRailRun {
	return BoardRailRun{
		b: b, kinds: kinds, tob: tob, rpg: rpg, rll: rll, compute: compute,
		need:     kindsMask(kinds, true) | gridMaskCState | gridMaskPSU,
		freeNeed: kindsMask(kinds, false),
	}
}

// offChip mirrors offChipInput with the compiled operating points.
func (r *BoardRailRun) offChip(psu, vout units.Volt, p units.Watt, c domain.CState) (pin, loss units.Watt) {
	if p == 0 {
		return 0, 0
	}
	if !r.ready || r.psu != psu {
		r.states = r.b.CompileStates(psu)
		r.psu = psu
		r.ready = true
	}
	iout := p / vout
	eta := r.states.Efficiency(VRStateFor(c, iout), vout, iout)
	pin = p / eta
	return pin, pin - p
}

// evalPoint computes the rail's full output for point i into r.out,
// exactly as the scalar BoardRail does for r.kinds' loads. When the mask
// says every load's AR-free columns repeat, the free-field memo replays
// the rail voltage and per-load guardbanded powers instead of recomputing
// them — those are pure functions of the unchanged PNom/VNom/FL bits, so
// the replayed values are the bits the calls would produce. Within a
// point, consecutive active loads with identical guardbanded power, FL
// and AR share one power-gate solve for the same reason: identical
// argument bits into the same pure function. Every accumulation below
// (+= per field, per load, in domain order) is the scalar loop's own
// sequence, so the result carries identical float64 bits.
func (r *BoardRailRun) evalPoint(g *Grid, i int, m uint16) {
	if !r.fvalid || m&r.freeNeed != r.freeNeed {
		r.fvalid = false
		var railV units.Volt
		for _, k := range r.kinds {
			if g.pnom[k][i] > 0 && g.vnom[k][i] > railV {
				railV = g.vnom[k][i]
			}
		}
		r.railV = railV
		r.nact = 0
		if railV > 0 {
			for _, k := range r.kinds {
				pnom, vnom, fl := g.pnom[k][i], g.vnom[k][i], g.fl[k][i]
				if !(pnom > 0) {
					continue
				}
				pgb := loadline.ApplyGuardband(pnom, vnom, r.tob, fl)
				if vnom < railV {
					pgb = loadline.ApplyGuardband(pgb, vnom+r.tob, railV-vnom, fl)
				}
				t := r.nact
				r.actK[t] = k
				r.pgb[t] = pgb
				r.gbd[t] = pgb - pnom
				r.flv[t] = fl
				r.nact++
			}
		}
		r.fvalid = true
	}
	var out RailOut
	if r.railV == 0 {
		out.Rail = RailDraw{Name: r.b.Name()}
		r.valid = true
		r.out = out
		return
	}
	railVT := r.railV + r.tob
	var sum units.Watt
	var ppeak units.Watt
	var prevAR float64
	var prevPPG units.Watt
	for t := 0; t < r.nact; t++ {
		ar := g.ar[r.actK[t]][i]
		pgb := r.pgb[t]
		var ppg units.Watt
		if t > 0 && pgb == r.pgb[t-1] && r.flv[t] == r.flv[t-1] && ar == prevAR {
			ppg = prevPPG
		} else {
			ppg = loadline.ApplyPowerGate(pgb, railVT, ar, r.flv[t], r.rpg)
		}
		out.Breakdown.Guardband += r.gbd[t]
		out.Breakdown.PowerGate += ppg - pgb
		sum += ppg
		ppeak += ppg / ar
		prevAR, prevPPG = ar, ppg
	}
	ar := sum / ppeak
	ll := loadline.Compensate(sum, railVT, ar, r.rll)
	if r.compute {
		out.Breakdown.CondCompute = ll.Loss
	} else {
		out.Breakdown.CondUncore = ll.Loss
	}
	pin, loss := r.offChip(g.psu[i], ll.V, ll.P, g.cstate[i])
	out.Breakdown.OffChipVR = loss
	out.PIn = pin
	out.Rail = RailDraw{
		Name:    r.b.Name(),
		VOut:    ll.V,
		Current: ll.I,
		Peak:    sum / ar / railVT,
	}
	r.valid = true
	r.out = out
}

// EvalInto accumulates exactly BoardRail(b, loads, tob, rpg, rll, psu, c,
// compute) for point i of the grid into the caller's breakdown and rail
// set, returning the rail's PSU draw; m is point i's change mask. The
// accumulation performs Breakdown.Add's field additions on the memoized
// (or freshly computed) rail output, so the bits match the standalone
// RailOut form exactly.
func (r *BoardRailRun) EvalInto(g *Grid, i int, m uint16, bd *Breakdown, rails *RailSet) units.Watt {
	if !r.valid || m&r.need != r.need {
		r.evalPoint(g, i, m)
	}
	bd.AddFrom(&r.out.Breakdown)
	rails.Append(r.out.Rail)
	return r.out.PIn
}

// EvalBlock is EvalInto swept rail-major over points [base, base+blk):
// each point's breakdown and rail draw accumulate into out[base+j] and
// the rail's PSU draw adds into pins[j]. The per-point work and memo
// tests are exactly EvalInto's — only the loop nesting differs, keeping
// the rail's state hot across consecutive points — and rail order across
// EvalBlock calls matches the scalar model's rail order per point, so
// every accumulation sequence (and therefore every bit) is unchanged.
func (r *BoardRailRun) EvalBlock(g *Grid, base, blk int, masks []uint16, out []Result, pins []units.Watt) {
	for j := 0; j < blk; j++ {
		if !r.valid || masks[j]&r.need != r.need {
			r.evalPoint(g, base+j, masks[j])
		}
		res := &out[base+j]
		res.Breakdown.AddFrom(&r.out.Breakdown)
		res.Rails.Append(r.out.Rail)
		pins[j] += r.out.PIn
	}
}

// CheckGridOut validates a caller-provided result block against a grid;
// model EvaluateGrid implementations (here and in internal/core) call it
// before evaluating.
func CheckGridOut(g *Grid, out []Result) error {
	if len(out) < g.Len() {
		return fmt.Errorf("pdn: result block has %d slots for %d grid points", len(out), g.Len())
	}
	return nil
}

// GridPointError wraps a per-point validation error with its index; the
// wrapped error is exactly what the scalar Evaluate returns for the point,
// so errors.Is/As see through the grid framing.
func GridPointError(i int, err error) error {
	return fmt.Errorf("pdn: grid point %d: %w", i, err)
}

// EvaluateGrid evaluates every grid point into out[:g.Len()], bitwise
// identical to calling Evaluate per point. It stops at the first invalid
// point, returning its scalar error wrapped with the point index; results
// for preceding points remain valid.
func (m *IVRModel) EvaluateGrid(g *Grid, out []Result) error {
	if err := CheckGridOut(g, out); err != nil {
		return err
	}
	p := m.params
	stage := NewIVRStageRun(m.ivr, gridAllKinds, p.TOBIVR, p.VINLevel)
	rail := NewVinRailRun(m.vin)
	ClearResults(out[:g.Len()])
	var pt GridPointRun
	var st StageOut
	var masks [GridMaskBlock]uint16
	for base := 0; base < g.Len(); base += GridMaskBlock {
		blk := g.Len() - base
		if blk > GridMaskBlock {
			blk = GridMaskBlock
		}
		g.ChangeMasks(base, masks[:blk])
		for j := 0; j < blk; j++ {
			i := base + j
			mk := masks[j]
			if err := pt.Validate(g, i, mk); err != nil {
				return GridPointError(i, err)
			}
			total := pt.TotalNominal()
			stage.EvalInto(&st, g, i, mk)
			share := 1.0
			if total > 0 {
				share = pt.ComputeNominal() / total
			}
			res := &out[i]
			res.Breakdown = st.Breakdown
			pin := rail.EvalInto(&st, p.VINLevel, p.IVRInLL, g.psu[i], g.cstate[i], share, &res.Breakdown, &res.Rails)
			FinishGrid(res, IVR, total, pin, p.IVRInLL)
		}
	}
	return nil
}

// ClearResults zeroes a kernel's result block before evaluation. The
// runners then accumulate each point's Breakdown and Rails directly inside
// out[i] — one streaming memclr up front replaces a per-point stack build
// plus ~220-byte copy, and unused rail slots end up zero exactly as the
// scalar path's zero-value RailSet leaves them.
func ClearResults(out []Result) {
	for i := range out {
		out[i] = Result{}
	}
}

// EvaluateGrid evaluates every grid point into out[:g.Len()], bitwise
// identical to calling Evaluate per point; see IVRModel.EvaluateGrid for
// the error contract. The four board rails sweep the block rail-major —
// one EvalBlock pass per rail with that rail's state held hot — instead
// of cycling all four runners through every point. Per point the pin
// additions, breakdown additions and rail appends still happen in the
// scalar model's rail order (cores, gfx, sa, io), so the accumulation
// sequence, and therefore the bits, match the point-major order exactly.
func (m *MBVRModel) EvaluateGrid(g *Grid, out []Result) error {
	if err := CheckGridOut(g, out); err != nil {
		return err
	}
	p := m.params
	cores := NewBoardRailRun(m.cores, gridCoresKinds, p.TOBMBVR, p.RPG, p.CoresLL, true)
	gfx := NewBoardRailRun(m.gfx, gridGfxKinds, p.TOBMBVR, p.RPG, p.GfxLL, true)
	sa := NewBoardRailRun(m.sa, gridSAKinds, p.TOBMBVR, p.RPG, p.SALL, false)
	io := NewBoardRailRun(m.io, gridIOKinds, p.TOBMBVR, p.RPG, p.IOLL, false)
	ClearResults(out[:g.Len()])
	var pt GridPointRun
	var masks [GridMaskBlock]uint16
	var pins [GridMaskBlock]units.Watt
	var totals [GridMaskBlock]units.Watt
	for base := 0; base < g.Len(); base += GridMaskBlock {
		blk := g.Len() - base
		if blk > GridMaskBlock {
			blk = GridMaskBlock
		}
		g.ChangeMasks(base, masks[:blk])
		// Validate the block up front: rail-major evaluation finishes every
		// point of a block before moving on, so an invalid point truncates
		// the block — points before it still get complete results, matching
		// the scalar order's stop-at-first-error contract.
		var verr error
		vblk := blk
		for j := 0; j < blk; j++ {
			if err := pt.Validate(g, base+j, masks[j]); err != nil {
				verr = GridPointError(base+j, err)
				vblk = j
				break
			}
			totals[j] = pt.TotalNominal()
			pins[j] = 0
		}
		cores.EvalBlock(g, base, vblk, masks[:vblk], out, pins[:vblk])
		gfx.EvalBlock(g, base, vblk, masks[:vblk], out, pins[:vblk])
		sa.EvalBlock(g, base, vblk, masks[:vblk], out, pins[:vblk])
		io.EvalBlock(g, base, vblk, masks[:vblk], out, pins[:vblk])
		for j := 0; j < vblk; j++ {
			FinishGrid(&out[base+j], MBVR, totals[j], pins[j], p.CoresLL)
		}
		if verr != nil {
			return verr
		}
	}
	return nil
}

// EvaluateGrid evaluates every grid point into out[:g.Len()], bitwise
// identical to calling Evaluate per point; see IVRModel.EvaluateGrid for
// the error contract.
func (m *LDOModel) EvaluateGrid(g *Grid, out []Result) error {
	if err := CheckGridOut(g, out); err != nil {
		return err
	}
	p := m.params
	stage := NewLDOStageRun(m.ldo, gridComputeKinds, p.TOBLDO)
	vinRail := NewVinRailRun(m.vin)
	sa := NewBoardRailRun(m.sa, gridSAKinds, p.TOBLDO, p.RPG, p.SALL, false)
	io := NewBoardRailRun(m.io, gridIOKinds, p.TOBLDO, p.RPG, p.IOLL, false)
	ClearResults(out[:g.Len()])
	var pt GridPointRun
	var st StageOut
	var masks [GridMaskBlock]uint16
	for base := 0; base < g.Len(); base += GridMaskBlock {
		blk := g.Len() - base
		if blk > GridMaskBlock {
			blk = GridMaskBlock
		}
		g.ChangeMasks(base, masks[:blk])
		for j := 0; j < blk; j++ {
			i := base + j
			mk := masks[j]
			if err := pt.Validate(g, i, mk); err != nil {
				return GridPointError(i, err)
			}
			vinLevel := stage.EvalInto(&st, g, i, mk)
			res := &out[i]
			var pin units.Watt
			if st.PIn > 0 {
				res.Breakdown.AddFrom(&st.Breakdown)
				pin += vinRail.EvalInto(&st, vinLevel, p.LDOInLL, g.psu[i], g.cstate[i], 1, &res.Breakdown, &res.Rails)
			}
			saP := sa.EvalInto(g, i, mk, &res.Breakdown, &res.Rails)
			ioP := io.EvalInto(g, i, mk, &res.Breakdown, &res.Rails)
			pin += saP + ioP
			FinishGrid(res, LDO, pt.TotalNominal(), pin, p.LDOInLL)
		}
	}
	return nil
}

// EvaluateGrid evaluates every grid point into out[:g.Len()], bitwise
// identical to calling Evaluate per point; see IVRModel.EvaluateGrid for
// the error contract. The IVR stage and V_IN rail run point-major (the
// stage output feeds the rail immediately), then the two board rails
// sweep the block rail-major as in MBVRModel.EvaluateGrid. The board
// draws accumulate into their own per-point column first because the
// scalar form is pin += saP + ioP — sa and io sum together before
// joining the V_IN draw — and that grouping must be preserved for the
// final addition to carry identical bits.
func (m *IMBVRModel) EvaluateGrid(g *Grid, out []Result) error {
	if err := CheckGridOut(g, out); err != nil {
		return err
	}
	p := m.params
	stage := NewIVRStageRun(m.ivr, gridComputeKinds, p.TOBIVR, p.VINLevel)
	vinRail := NewVinRailRun(m.vin)
	sa := NewBoardRailRun(m.sa, gridSAKinds, p.TOBMBVR, p.RPG, p.SALL, false)
	io := NewBoardRailRun(m.io, gridIOKinds, p.TOBMBVR, p.RPG, p.IOLL, false)
	ClearResults(out[:g.Len()])
	var pt GridPointRun
	var st StageOut
	var masks [GridMaskBlock]uint16
	var pins [GridMaskBlock]units.Watt
	var board [GridMaskBlock]units.Watt
	var totals [GridMaskBlock]units.Watt
	for base := 0; base < g.Len(); base += GridMaskBlock {
		blk := g.Len() - base
		if blk > GridMaskBlock {
			blk = GridMaskBlock
		}
		g.ChangeMasks(base, masks[:blk])
		var verr error
		vblk := blk
		for j := 0; j < blk; j++ {
			i := base + j
			mk := masks[j]
			if err := pt.Validate(g, i, mk); err != nil {
				verr = GridPointError(i, err)
				vblk = j
				break
			}
			totals[j] = pt.TotalNominal()
			stage.EvalInto(&st, g, i, mk)
			res := &out[i]
			pins[j] = 0
			if st.PIn > 0 {
				res.Breakdown.AddFrom(&st.Breakdown)
				pins[j] = vinRail.EvalInto(&st, p.VINLevel, p.IVRInLL, g.psu[i], g.cstate[i], 1, &res.Breakdown, &res.Rails)
			}
			board[j] = 0
		}
		sa.EvalBlock(g, base, vblk, masks[:vblk], out, board[:vblk])
		io.EvalBlock(g, base, vblk, masks[:vblk], out, board[:vblk])
		for j := 0; j < vblk; j++ {
			FinishGrid(&out[base+j], IMBVR, totals[j], pins[j]+board[j], p.IVRInLL)
		}
		if verr != nil {
			return verr
		}
	}
	return nil
}
