package pdn

import (
	"math"
	"testing"

	"repro/internal/domain"
	"repro/internal/units"
	"repro/internal/vr"
)

func computeLoads(p units.Watt, v units.Volt, ar float64) []Load {
	return []Load{
		{PNom: p / 2, VNom: v, FL: 0.22, AR: ar},
		{PNom: p / 2, VNom: v, FL: 0.22, AR: ar},
		{PNom: p / 6, VNom: v, FL: 0.22, AR: ar},
		{}, // idle
	}
}

func TestIVRStage(t *testing.T) {
	ivr := vr.NewIVR("ivr", 45)
	loads := computeLoads(6, 0.8, 0.6)
	out := IVRStage(loads, ivr, units.MilliVolt(20), 1.8, domain.C0)
	var pnom units.Watt
	for _, l := range loads {
		pnom += l.PNom
	}
	if !(out.PIn > pnom) {
		t.Errorf("stage input %g must exceed nominal %g", out.PIn, pnom)
	}
	if out.Breakdown.OnChipVR <= 0 || out.Breakdown.Guardband <= 0 {
		t.Error("stage must report guardband and VR losses")
	}
	// Uniform per-load AR propagates as the group AR.
	if math.Abs(out.AR-0.6) > 1e-9 {
		t.Errorf("group AR %g, want 0.6", out.AR)
	}
	// No active loads: zero stage.
	empty := IVRStage([]Load{{}}, ivr, units.MilliVolt(20), 1.8, domain.C0)
	if empty.PIn != 0 || empty.AR != 1 {
		t.Errorf("empty stage: %+v", empty)
	}
}

func TestLDOStageBypass(t *testing.T) {
	ldo := vr.NewPlatformLDO("ldo", 45)
	// All compute domains at the same voltage: everything runs in bypass,
	// so the on-chip loss is only the tolerance band + bypass drop.
	loads := computeLoads(6, 0.8, 0.6)
	vin, out := LDOStage(loads, ldo, units.MilliVolt(17))
	if math.Abs(vin-(0.8+0.017)) > 1e-9 {
		t.Errorf("rail voltage %g, want 0.817", vin)
	}
	var pnom units.Watt
	for _, l := range loads {
		pnom += l.PNom
	}
	if out.Breakdown.OnChipVR > 0.02*pnom {
		t.Errorf("bypass mode should have tiny on-chip loss, got %g on %g", out.Breakdown.OnChipVR, pnom)
	}
}

func TestLDOStageRegulation(t *testing.T) {
	ldo := vr.NewPlatformLDO("ldo", 45)
	// Cores at 0.55V under a 1.0V GFX rail: the cores pay ~45% conversion
	// loss through their LDO (§5 Observation 2's mechanism).
	loads := []Load{
		{PNom: 2, VNom: 0.55, FL: 0.22, AR: 0.6},
		{PNom: 5, VNom: 1.0, FL: 0.45, AR: 0.6},
	}
	vin, out := LDOStage(loads, ldo, units.MilliVolt(17))
	if vin < 1.0 {
		t.Errorf("rail must follow the max domain voltage, got %g", vin)
	}
	// Cores' LDO loss ≈ 2W * (1 - 0.55/1.017/0.991) ≈ 0.9W.
	if out.Breakdown.OnChipVR < 0.6 {
		t.Errorf("voltage-split LDO loss %g too small", out.Breakdown.OnChipVR)
	}
	// Empty stage.
	vin, empty := LDOStage([]Load{{}}, ldo, units.MilliVolt(17))
	if vin != 0 || empty.PIn != 0 {
		t.Error("empty LDO stage should be zero")
	}
}

func TestVinRailAttribution(t *testing.T) {
	b := vr.NewVinVR(45)
	st := StageOut{PIn: 10, AR: 0.5}
	out := VinRail(b, st, 1.8, units.MilliOhm(1), 7.2, domain.C0, 0.7)
	if out.PIn <= st.PIn {
		t.Error("rail must add loss")
	}
	// The conduction loss splits 70/30 between compute and uncore.
	total := out.Breakdown.CondCompute + out.Breakdown.CondUncore
	if total <= 0 {
		t.Fatal("no conduction loss")
	}
	if math.Abs(out.Breakdown.CondCompute/total-0.7) > 1e-9 {
		t.Errorf("compute share %.2f, want 0.70", out.Breakdown.CondCompute/total)
	}
	if out.Rail.Name != "V_IN" || out.Rail.Current <= 0 || out.Rail.Peak <= out.Rail.Current {
		t.Errorf("rail draw %+v", out.Rail)
	}
	// Zero stage passes through as zero.
	zero := VinRail(b, StageOut{}, 1.8, units.MilliOhm(1), 7.2, domain.C0, 1)
	if zero.PIn != 0 {
		t.Error("zero stage should draw nothing")
	}
}

func TestBoardRailSharingOvervolt(t *testing.T) {
	b := vr.NewBoardVR("V_GFX", 55)
	tob := units.MilliVolt(19)
	rpg := units.MilliOhm(1.5)
	rll := units.MilliOhm(2.5)
	// A lone 0.9V load...
	alone := BoardRail(b, []Load{
		{PNom: 5, VNom: 0.9, FL: 0.45, AR: 0.6},
	}, tob, rpg, rll, 7.2, domain.C0, true)
	// ...versus sharing the rail with a 1.1V domain: the 0.9V load gets
	// over-volted and the rail draws strictly more than the sum of parts.
	shared := BoardRail(b, []Load{
		{PNom: 5, VNom: 0.9, FL: 0.45, AR: 0.6},
		{PNom: 1, VNom: 1.1, FL: 0.22, AR: 0.6},
	}, tob, rpg, rll, 7.2, domain.C0, true)
	llcAlone := BoardRail(b, []Load{
		{PNom: 1, VNom: 1.1, FL: 0.22, AR: 0.6},
	}, tob, rpg, rll, 7.2, domain.C0, true)
	if !(shared.PIn > alone.PIn+llcAlone.PIn-0.3) { // fixed losses amortize; overvolt dominates
		t.Errorf("sharing with a higher-voltage domain should cost: %.2f vs %.2f+%.2f",
			shared.PIn, alone.PIn, llcAlone.PIn)
	}
	if shared.Rail.VOut <= 1.1 {
		t.Errorf("shared rail voltage %.3f should sit above the max domain voltage", shared.Rail.VOut)
	}
	// Empty rail.
	empty := BoardRail(b, []Load{{}}, tob, rpg, rll, 7.2, domain.C0, false)
	if empty.PIn != 0 {
		t.Error("empty rail should draw nothing")
	}
}
