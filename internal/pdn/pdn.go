// Package pdn implements PDNspot's end-to-end power-conversion-efficiency
// (ETEE) models for the three commonly-used client PDNs — MBVR, IVR and LDO
// (paper §3.1, Fig 1) — plus the Skylake-X style I+MBVR hybrid used as an
// additional baseline in §7.
//
// Every model maps a set of per-domain loads (nominal power, nominal
// voltage, leakage fraction, application ratio) to the power drawn from the
// battery/PSU, accounting for, in order: tolerance-band guardband (Eq. 2),
// power-gate drops, rail-sharing voltage overhead, on-chip VR losses
// (Eq. 6/10/11), load-line compensation (Eq. 3/4/7/8) and off-chip VR losses
// (Eq. 5/9/12). The per-category loss breakdown reproduces Fig 5.
package pdn

import (
	"fmt"
	"strings"

	"repro/internal/domain"
	"repro/internal/units"
	"repro/internal/vr"
)

// Kind identifies a PDN architecture.
type Kind int

// The PDN architectures evaluated in the paper.
const (
	IVR Kind = iota
	MBVR
	LDO
	IMBVR
	FlexWatts
)

// Kinds lists the four baseline PDNs implemented by this package (FlexWatts
// itself lives in internal/core, built from the same stages).
func Kinds() []Kind { return []Kind{IVR, MBVR, LDO, IMBVR} }

// AllKinds lists every PDN including FlexWatts, in the paper's plotting
// order.
func AllKinds() []Kind { return []Kind{IVR, MBVR, LDO, IMBVR, FlexWatts} }

// String returns the paper's name for the PDN.
func (k Kind) String() string {
	switch k {
	case IVR:
		return "IVR"
	case MBVR:
		return "MBVR"
	case LDO:
		return "LDO"
	case IMBVR:
		return "I+MBVR"
	case FlexWatts:
		return "FlexWatts"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind resolves a PDN name as the paper spells it ("IVR", "MBVR",
// "LDO", "I+MBVR", "FlexWatts"), case-insensitively; "IMBVR" is accepted
// for the hybrid baseline. It is the inverse of Kind.String for the
// flexwattsd request vocabulary.
func ParseKind(s string) (Kind, error) {
	for _, k := range AllKinds() {
		if strings.EqualFold(s, k.String()) {
			return k, nil
		}
	}
	if strings.EqualFold(s, "IMBVR") {
		return IMBVR, nil
	}
	return 0, fmt.Errorf("pdn: unknown PDN kind %q (have IVR, MBVR, LDO, I+MBVR, FlexWatts)", s)
}

// Load is one domain's electrical operating point for an evaluation
// interval: the inputs PDNspot's models consume (paper Table 2 and Fig 1).
// The domain a load belongs to is not stored here — it is the load's index
// in Scenario.Loads.
type Load struct {
	// PNom is the domain's nominal power (PNOM in Fig 1); zero means the
	// domain is idle and power-gated.
	PNom units.Watt
	// VNom is the nominal supply voltage the domain requires.
	VNom units.Volt
	// FL is the leakage fraction at the operating point (Table 2: 20–45 %).
	FL float64
	// AR is the domain's application ratio; the worst-case (power-virus)
	// power used for guardbands is PNom/AR (§2.4).
	AR float64
}

// Active reports whether the domain draws power.
func (l Load) Active() bool { return l.PNom > 0 }

// Scenario is a complete evaluation point: the six domain loads plus the
// package power state (which selects VR power states) and the power-supply
// voltage.
//
// Loads is a fixed-size value array indexed by domain.Kind — the zero Load
// is an idle (power-gated) domain, so "absent" and "idle" are the same
// state by construction. The representation is canonical: two scenarios
// describe the same evaluation point if and only if they compare equal with
// ==, which is what makes Scenario usable directly as a lock-free cache key
// (internal/sweep) and copyable with plain assignment on the refmodel hot
// path, with no per-evaluation heap allocation anywhere.
type Scenario struct {
	Loads  [domain.NumKinds]Load
	CState domain.CState
	PSU    units.Volt
}

// NewScenario returns a scenario with the default 7.2 V supply (the battery
// voltage used for Fig 3) in package state C0.
func NewScenario() Scenario {
	return Scenario{CState: domain.C0, PSU: 7.2}
}

// TotalNominal returns ΣPNOM across all domains, the numerator of ETEE.
func (s Scenario) TotalNominal() units.Watt {
	var sum units.Watt
	for k := range s.Loads {
		sum += s.Loads[k].PNom
	}
	return sum
}

// LoadFor returns the load for kind k.
func (s Scenario) LoadFor(k domain.Kind) Load { return s.Loads[k] }

// Breakdown splits the total conversion loss into the categories of Fig 5.
type Breakdown struct {
	// Guardband is the power paid for tolerance-band voltage margin and
	// rail-sharing voltage overhead ("Others" in Fig 5, together with
	// PowerGate).
	Guardband units.Watt
	// PowerGate is the power paid for conducting power-gate drops.
	PowerGate units.Watt
	// OnChipVR is the on-chip VR (IVR or LDO) conversion loss.
	OnChipVR units.Watt
	// OffChipVR is the motherboard VR conversion loss.
	OffChipVR units.Watt
	// CondCompute is the I²R load-line loss on the core/GFX/LLC path.
	CondCompute units.Watt
	// CondUncore is the I²R load-line loss on the SA/IO path.
	CondUncore units.Watt
}

// Total returns the sum of all loss categories.
func (b Breakdown) Total() units.Watt {
	return b.Guardband + b.PowerGate + b.OnChipVR + b.OffChipVR + b.CondCompute + b.CondUncore
}

// Add accumulates another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	b.Guardband += o.Guardband
	b.PowerGate += o.PowerGate
	b.OnChipVR += o.OnChipVR
	b.OffChipVR += o.OffChipVR
	b.CondCompute += o.CondCompute
	b.CondUncore += o.CondUncore
}

// RailDraw describes the electrical demand seen by one off-chip VR, used by
// the cost model to size parts (Iccmax, §3.2).
type RailDraw struct {
	Name    string
	VOut    units.Volt
	Current units.Amp // average current at the evaluated point
	Peak    units.Amp // worst-case (power-virus) current
}

// MaxRails is the most off-chip rails any modeled PDN drives (MBVR's four:
// V_Cores, V_GFX, V_SA, V_IO).
const MaxRails = 4

// RailSet is a fixed-capacity collection of rail demands with value
// semantics: copying a Result copies its rails, so a memoized Result handed
// out by the evaluation cache cannot alias mutable state between callers —
// the read-only contract is enforced by the type, and building one costs no
// heap allocation.
type RailSet struct {
	n     int
	rails [MaxRails]RailDraw
}

// Append adds a rail demand; it panics if the set is full (no modeled PDN
// exceeds MaxRails).
func (rs *RailSet) Append(r RailDraw) {
	rs.rails[rs.n] = r
	rs.n++
}

// Len returns the number of rails in the set.
func (rs RailSet) Len() int { return rs.n }

// At returns the i-th rail demand.
func (rs RailSet) At(i int) RailDraw {
	if i < 0 || i >= rs.n {
		panic(fmt.Sprintf("pdn: rail index %d out of range [0,%d)", i, rs.n))
	}
	return rs.rails[i]
}

// Result is the outcome of evaluating a PDN model on a scenario.
type Result struct {
	PDN Kind
	// PNomTotal is ΣPNOM (the PDN output power).
	PNomTotal units.Watt
	// PIn is the power drawn from the battery/PSU (PIVR/PMBVR/PLDO).
	PIn units.Watt
	// ETEE = PNomTotal / PIn (§2.4).
	ETEE float64
	// Breakdown categorizes the conversion losses (Fig 5).
	Breakdown Breakdown
	// ChipInputCurrent is the total current entering the package from
	// off-chip VRs (the line plot of Fig 5).
	ChipInputCurrent units.Amp
	// ComputeRailR is the effective load-line impedance of the compute
	// power path (the second line plot of Fig 5).
	ComputeRailR units.Ohm
	// Rails lists per-off-chip-VR demands for the cost model.
	Rails RailSet
}

// Model is a PDN architecture's ETEE model.
type Model interface {
	// Kind identifies the architecture.
	Kind() Kind
	// Evaluate computes the end-to-end power flow for a scenario.
	Evaluate(s Scenario) (Result, error)
}

// VRStateFor maps a package power state to the VR power state the platform's
// power-management firmware would program (§4.2 notes V_IN supports PS0, PS1,
// PS3 and PS4): active states let the VR's light-load controller decide from
// current, shallow package idle runs PS1, deep idle PS3/PS4.
func VRStateFor(c domain.CState, iout units.Amp) vr.PowerState {
	switch c {
	case domain.C0, domain.C0MIN:
		return vr.AutoState(iout)
	case domain.C2, domain.C3:
		return vr.PS1
	case domain.C6, domain.C7:
		return vr.PS3
	default: // C8 and deeper
		return vr.PS4
	}
}

// groupAR returns the effective application ratio of a set of loads sharing
// one rail: the ratio of their summed power to their summed worst-case
// (virus) power, so that Ppeak_group = Σ P_i/AR_i.
func groupAR(loads []Load) float64 {
	var p, ppeak units.Watt
	for _, l := range loads {
		if !l.Active() {
			continue
		}
		p += l.PNom
		ppeak += l.PNom / l.AR
	}
	if ppeak == 0 {
		return 1
	}
	return p / ppeak
}

// offChipInput runs an off-chip buck VR stage: given power p delivered at
// rail voltage vout, it returns the input power drawn from the PSU and the
// conversion loss, selecting the VR power state per the package state.
func offChipInput(b *vr.Buck, psu, vout units.Volt, p units.Watt, c domain.CState) (pin, loss units.Watt) {
	if p == 0 {
		return 0, 0
	}
	iout := p / vout
	state := VRStateFor(c, iout)
	eta := b.Efficiency(vr.OperatingPoint{Vin: psu, Vout: vout, Iout: iout, State: state})
	pin = p / eta
	return pin, pin - p
}
