//go:build !race

package pdn

// raceDetectorEnabled reports whether this binary was built with -race.
const raceDetectorEnabled = false
