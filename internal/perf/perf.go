// Package perf implements PDNspot's processor performance model (§3.3).
//
// The model answers one question: if a PDN with higher end-to-end
// power-conversion efficiency frees ΔP watts of the TDP budget, how much
// faster does a workload run? Following the paper, the model is built on
// power-frequency curves: raising the compute cluster's clock by a ratio r
// raises each member domain's dynamic power by (V(rf)/V(f))²·r and its
// leakage by (V(rf)/V(f))^2.8. The freed budget is spent by inverting that
// curve (bisection), and the resulting frequency gain is scaled by the
// workload's performance scalability (§3.3) to get the performance gain —
// the paper's worked example (250 mW at 4 W → 28 % frequency → 28 %
// performance for a highly-scalable workload) falls out of the same
// machinery for small deltas.
package perf

import (
	"fmt"
	"math"

	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/units"
	"repro/internal/workload"
)

// Sensitivity returns the additional power (watts, at domain nominal level)
// required to raise the lead compute domain's clock by 1 % at the TDP
// design point — the Fig 2(a) quantity (~9 mW for the CPU at 4 W, hundreds
// of mW at 50 W).
func Sensitivity(plat *domain.Platform, tdp units.Watt, k domain.Kind, ar float64) units.Watt {
	t := workload.MultiThread
	if k == domain.GFX {
		t = workload.Graphics
	}
	cluster := workload.PerfCluster(plat, tdp, t)
	lead := cluster[0] // cores or GFX; Fig 2(a) reports the lead domain only
	// Probe downward: at the top TDP the design frequency sits at FMax where
	// the V-f curve clamps, which would zero the voltage term.
	return lead.PNom - clusterCost([]workload.ClusterMember{lead}, 0.99)
}

// clusterCost returns the cluster's total nominal power when every member's
// clock is scaled by ratio r from its design point.
func clusterCost(cluster []workload.ClusterMember, r float64) units.Watt {
	var sum units.Watt
	for _, m := range cluster {
		f0 := m.F0
		f1 := f0 * r
		v0 := m.Curve.VoltageAt(f0)
		v1 := m.Curve.VoltageAt(f1)
		dyn := (1 - m.FL) * m.PNom * (v1 * v1 * f1) / (v0 * v0 * f0)
		leak := m.FL * m.PNom * math.Pow(v1/v0, domain.LeakVoltageExp)
		sum += dyn + leak
	}
	return sum
}

// FreqRatioForBudget inverts the cluster power-frequency curve: it returns
// the clock ratio r (1 = design frequency) at which the cluster consumes
// its design power plus deltaNom (which may be negative). The ratio is
// bounded by the lead domain's frequency range.
func FreqRatioForBudget(plat *domain.Platform, tdp units.Watt, t workload.Type, deltaNom units.Watt) float64 {
	cluster := workload.PerfCluster(plat, tdp, t)
	base := clusterCost(cluster, 1)
	target := base + deltaNom
	if target <= 0 {
		return minRatio(cluster)
	}
	lo, hi := minRatio(cluster), maxRatio(cluster)
	if clusterCost(cluster, lo) >= target {
		return lo
	}
	if clusterCost(cluster, hi) <= target {
		return hi
	}
	for i := 0; i < 48; i++ {
		mid := (lo + hi) / 2
		if clusterCost(cluster, mid) <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// minRatio and maxRatio bound the cluster clock ratio by the lead domain's
// DVFS range.
func minRatio(cluster []workload.ClusterMember) float64 {
	lead := cluster[0]
	// The platform never clocks below ~a quarter of the design point in
	// these experiments; FMin is not in ClusterMember, so use a floor.
	return math.Max(0.25, 0.8e9/lead.F0*0.25)
}

func maxRatio(cluster []workload.ClusterMember) float64 {
	lead := cluster[0]
	return lead.FMax / lead.F0
}

// Result is a workload's modeled performance under one PDN.
type Result struct {
	PDN pdn.Kind
	// PIn is the platform power the PDN draws at the workload's operating
	// point.
	PIn units.Watt
	// FreqGain is the fractional frequency increase afforded by the budget
	// the PDN frees relative to the baseline (negative if it wastes more).
	FreqGain float64
	// PerfGain is FreqGain scaled by the workload's performance
	// scalability.
	PerfGain float64
	// Relative is 1 + PerfGain: performance normalized to the baseline PDN.
	Relative float64
}

// Evaluator computes relative performance of workloads across PDNs at a
// TDP against a baseline PDN (the paper normalizes to IVR).
type Evaluator struct {
	Platform *domain.Platform
	Baseline pdn.Model
}

// NewEvaluator returns an evaluator normalizing against baseline.
func NewEvaluator(plat *domain.Platform, baseline pdn.Model) *Evaluator {
	return &Evaluator{Platform: plat, Baseline: baseline}
}

// Compare evaluates the workload under every candidate PDN at the TDP and
// returns per-PDN results normalized to the evaluator's baseline. The
// input-side power each PDN saves relative to the baseline converts to
// domain-level budget at the PDN's own ETEE before the power-frequency
// inversion.
func (e *Evaluator) Compare(tdp units.Watt, w workload.Workload, candidates []pdn.Model) (map[pdn.Kind]Result, error) {
	s, err := workload.TDPScenario(e.Platform, tdp, w.Type, w.AR)
	if err != nil {
		return nil, err
	}
	base, err := e.Baseline.Evaluate(s)
	if err != nil {
		return nil, fmt.Errorf("perf: baseline %v: %w", e.Baseline.Kind(), err)
	}
	out := make(map[pdn.Kind]Result, len(candidates)+1)
	out[e.Baseline.Kind()] = Result{PDN: e.Baseline.Kind(), PIn: base.PIn, Relative: 1}
	for _, m := range candidates {
		r, err := m.Evaluate(s)
		if err != nil {
			return nil, fmt.Errorf("perf: %v: %w", m.Kind(), err)
		}
		savedIn := base.PIn - r.PIn
		deltaNom := savedIn * r.ETEE
		ratio := FreqRatioForBudget(e.Platform, tdp, w.Type, deltaNom)
		perfGain := w.Scalability * (ratio - 1)
		out[m.Kind()] = Result{
			PDN:      m.Kind(),
			PIn:      r.PIn,
			FreqGain: ratio - 1,
			PerfGain: perfGain,
			Relative: 1 + perfGain,
		}
	}
	return out, nil
}

// SuiteAverage runs Compare for every workload in the suite and returns the
// per-PDN mean relative performance.
func (e *Evaluator) SuiteAverage(tdp units.Watt, suite workload.Suite, candidates []pdn.Model) (map[pdn.Kind]float64, error) {
	sums := make(map[pdn.Kind]float64)
	for _, w := range suite.Workloads {
		res, err := e.Compare(tdp, w, candidates)
		if err != nil {
			return nil, fmt.Errorf("perf: %s: %w", w.Name, err)
		}
		for k, r := range res {
			sums[k] += r.Relative
		}
	}
	n := float64(len(suite.Workloads))
	for k := range sums {
		sums[k] /= n
	}
	return sums, nil
}
