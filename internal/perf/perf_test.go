package perf

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/units"
	"repro/internal/workload"
)

func testPlat() *domain.Platform { return domain.NewClientPlatform() }

func TestSensitivityMatchesPaper(t *testing.T) {
	plat := testPlat()
	// Fig 2(a): ~9mW per 1% CPU frequency at 4W TDP.
	s4 := Sensitivity(plat, 4, domain.Core0, 0.56)
	if s4 < units.MilliWatt(5) || s4 > units.MilliWatt(15) {
		t.Errorf("CPU sensitivity at 4W = %s, want ~9mW", units.FormatWatt(s4))
	}
	// Hundreds of mW at 50W.
	s50 := Sensitivity(plat, 50, domain.Core0, 0.56)
	if s50 < 0.2 || s50 > 1.2 {
		t.Errorf("CPU sensitivity at 50W = %s, want hundreds of mW", units.FormatWatt(s50))
	}
}

func TestSensitivityMonotone(t *testing.T) {
	plat := testPlat()
	for _, k := range []domain.Kind{domain.Core0, domain.GFX} {
		prev := 0.0
		for _, tdp := range workload.StandardTDPs() {
			s := Sensitivity(plat, tdp, k, 0.56)
			if s <= prev {
				t.Errorf("%v sensitivity at %gW (%g) not above %g", k, tdp, s, prev)
			}
			prev = s
		}
	}
}

func TestFreqRatioZeroBudget(t *testing.T) {
	plat := testPlat()
	for _, tdp := range workload.StandardTDPs() {
		r := FreqRatioForBudget(plat, tdp, workload.MultiThread, 0)
		if math.Abs(r-1) > 1e-6 {
			t.Errorf("zero budget at %gW gives ratio %g, want 1", tdp, r)
		}
	}
}

func TestFreqRatioInverseProperty(t *testing.T) {
	// Property: the returned ratio's cluster power matches the requested
	// budget (when the ratio is interior, not clamped at the DVFS bounds).
	plat := testPlat()
	f := func(tdpRaw, dRaw float64) bool {
		tdp := 4 + math.Mod(math.Abs(tdpRaw), 46)
		delta := math.Mod(dRaw, 2) // +-2W
		cluster := workload.PerfCluster(plat, tdp, workload.MultiThread)
		r := FreqRatioForBudget(plat, tdp, workload.MultiThread, delta)
		if r <= minRatio(cluster)+1e-9 || r >= maxRatio(cluster)-1e-9 {
			return true // clamped; nothing to invert
		}
		base := clusterCost(cluster, 1)
		got := clusterCost(cluster, r)
		return units.ApproxEqual(got, base+delta, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFreqRatioSigns(t *testing.T) {
	plat := testPlat()
	up := FreqRatioForBudget(plat, 18, workload.MultiThread, 1.0)
	down := FreqRatioForBudget(plat, 18, workload.MultiThread, -1.0)
	if !(up > 1) || !(down < 1) {
		t.Errorf("budget signs: +1W -> %g, -1W -> %g", up, down)
	}
	// A huge budget clamps at the DVFS ceiling.
	max := FreqRatioForBudget(plat, 18, workload.MultiThread, 1e6)
	cluster := workload.PerfCluster(plat, 18, workload.MultiThread)
	if math.Abs(max-maxRatio(cluster)) > 1e-9 {
		t.Errorf("huge budget should clamp to %g, got %g", maxRatio(cluster), max)
	}
}

func testEvaluator(t *testing.T) (*Evaluator, []pdn.Model) {
	t.Helper()
	p := pdn.DefaultParams()
	base := pdn.NewIVRModel(p)
	cands := []pdn.Model{pdn.NewMBVRModel(p), pdn.NewLDOModel(p)}
	return NewEvaluator(testPlat(), base), cands
}

func TestCompareBaselineIsUnity(t *testing.T) {
	ev, cands := testEvaluator(t)
	w := workload.SPECCPU2006().Workloads[0]
	res, err := ev.Compare(4, w, cands)
	if err != nil {
		t.Fatal(err)
	}
	if res[pdn.IVR].Relative != 1 {
		t.Errorf("baseline relative = %g", res[pdn.IVR].Relative)
	}
	// At 4W both MBVR and LDO must beat IVR (Fig 7).
	for _, k := range []pdn.Kind{pdn.MBVR, pdn.LDO} {
		if !(res[k].Relative > 1) {
			t.Errorf("%v at 4W should beat IVR, got %.3f", k, res[k].Relative)
		}
	}
}

func TestPerfGainScalesWithScalability(t *testing.T) {
	// Two workloads differing only in scalability: the more scalable one
	// gains more (Fig 7's sort).
	ev, cands := testEvaluator(t)
	low := workload.Workload{Name: "low", Type: workload.SingleThread, AR: 0.6, Scalability: 0.3}
	high := workload.Workload{Name: "high", Type: workload.SingleThread, AR: 0.6, Scalability: 0.9}
	rl, err := ev.Compare(4, low, cands)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := ev.Compare(4, high, cands)
	if err != nil {
		t.Fatal(err)
	}
	if !(rh[pdn.LDO].PerfGain > rl[pdn.LDO].PerfGain) {
		t.Errorf("scalability 0.9 gain %.3f should exceed 0.3 gain %.3f",
			rh[pdn.LDO].PerfGain, rl[pdn.LDO].PerfGain)
	}
	// Both share the same frequency gain.
	if math.Abs(rh[pdn.LDO].FreqGain-rl[pdn.LDO].FreqGain) > 1e-9 {
		t.Error("frequency gain should not depend on scalability")
	}
}

func TestSuiteAverageHeadline(t *testing.T) {
	// The paper's headline: >22% average SPEC gain at 4W for the
	// LDO-friendly PDNs; the reproduction lands in the 8-25% band.
	ev, cands := testEvaluator(t)
	avg, err := ev.SuiteAverage(4, workload.SPECCPU2006(), cands)
	if err != nil {
		t.Fatal(err)
	}
	gain := avg[pdn.LDO] - 1
	if gain < 0.08 || gain > 0.30 {
		t.Errorf("SPEC 4W LDO gain = %.1f%%, want 8-30%% (paper: 22%%)", gain*100)
	}
	if avg[pdn.IVR] != 1 {
		t.Error("baseline average should be 1")
	}
}

func TestCompareErrors(t *testing.T) {
	ev, cands := testEvaluator(t)
	bad := workload.Workload{Name: "bad", Type: workload.BatteryLife, AR: 0.5, Scalability: 0.5}
	if _, err := ev.Compare(4, bad, cands); err == nil {
		t.Error("battery-life workload accepted by Compare")
	}
	w := workload.SPECCPU2006().Workloads[0]
	if _, err := ev.Compare(99, w, cands); err == nil {
		t.Error("out-of-range TDP accepted")
	}
}
