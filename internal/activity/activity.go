// Package activity models the activity sensors a modern PMU uses to
// estimate a workload's application ratio at runtime (paper §6, "Runtime
// Estimation of the Algorithm Inputs"): each domain reports a weighted sum
// of internal events — active execution ports, memory stalls, vector widths
// — every millisecond, and post-silicon calibrated weights turn that sum
// into an AR proxy.
//
// This reproduction synthesizes the event counts from the true AR plus
// event-level noise, then recovers the estimate through the calibrated
// weights, so the FlexWatts predictor can be driven by a realistic (noisy,
// quantized) AR instead of ground truth.
package activity

import (
	"math/rand"

	"repro/internal/units"
)

// Event identifies a sensor event class (§6 lists these examples).
type Event int

// Sensor event classes.
const (
	PortActive Event = iota
	MemStall
	Scalar
	Vec128
	Vec256
	Vec512
	numEvents
)

// String names the event class.
func (e Event) String() string {
	switch e {
	case PortActive:
		return "port-active"
	case MemStall:
		return "mem-stall"
	case Scalar:
		return "scalar"
	case Vec128:
		return "vec128"
	case Vec256:
		return "vec256"
	case Vec512:
		return "vec512"
	default:
		return "unknown"
	}
}

// Weights are the post-silicon calibrated per-event weights. The defaults
// make the weighted sum an unbiased AR proxy for the synthetic event model
// below.
type Weights [numEvents]float64

// DefaultWeights returns the calibration shipped in PMU firmware: port
// activity dominates, wide vectors weigh more (they switch more
// capacitance), memory stalls subtract.
func DefaultWeights() Weights {
	return Weights{
		PortActive: 0.52,
		MemStall:   -0.18,
		Scalar:     0.10,
		Vec128:     0.16,
		Vec256:     0.24,
		Vec512:     0.36,
	}
}

// Sample is one sensor reading interval's normalized event rates (events
// per cycle, in [0, 1]).
type Sample [numEvents]float64

// Sensor synthesizes per-interval event rates from ground-truth AR and
// recovers the AR estimate from them.
type Sensor struct {
	weights Weights
	rng     *rand.Rand
	// Period is the reporting interval (§6: "periodically (e.g., every
	// millisecond)").
	Period units.Second
	// jitter is the per-event sampling noise.
	jitter float64
}

// NewSensor returns a sensor with the given calibration and noise seed.
func NewSensor(w Weights, seed int64) *Sensor {
	return &Sensor{
		weights: w,
		rng:     rand.New(rand.NewSource(seed)),
		Period:  1e-3,
		jitter:  0.02,
	}
}

// Synthesize produces a plausible event sample for a workload with the
// given true AR and vectorization fraction: port activity tracks AR, memory
// stalls anticorrelate, and the vector mix splits the instruction stream.
func (s *Sensor) Synthesize(trueAR, vecFrac float64) Sample {
	units.CheckFraction("trueAR", trueAR)
	units.CheckFraction("vecFrac", vecFrac)
	n := func() float64 { return s.rng.NormFloat64() * s.jitter }
	var out Sample
	out[PortActive] = clamp01(1.30*trueAR - 0.05 + n())
	out[MemStall] = clamp01(0.85*(1-trueAR) - 0.25 + n())
	issue := clamp01(0.9*trueAR + n())
	out[Scalar] = issue * (1 - vecFrac)
	out[Vec128] = issue * vecFrac * 0.5
	out[Vec256] = issue * vecFrac * 0.35
	out[Vec512] = issue * vecFrac * 0.15
	return out
}

// Estimate converts a sample into the AR proxy via the calibrated weighted
// sum, clamped to (0, 1].
func (s *Sensor) Estimate(sample Sample) float64 {
	var sum float64
	for e := Event(0); e < numEvents; e++ {
		sum += s.weights[e] * sample[e]
	}
	// Affine correction from calibration (fit against the synthesis model
	// at vecFrac 0.3; see activity_test.go for the residual bound).
	ar := (sum + 0.105) / 0.82
	if ar < 0.02 {
		ar = 0.02
	}
	if ar > 1 {
		ar = 1
	}
	return ar
}

// Read performs a full sensor read: synthesize events for the true AR and
// return the recovered estimate, as the PMU would see it.
func (s *Sensor) Read(trueAR, vecFrac float64) float64 {
	return s.Estimate(s.Synthesize(trueAR, vecFrac))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
