package activity

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEstimateTracksTruth(t *testing.T) {
	s := NewSensor(DefaultWeights(), 1)
	// Averaged over many reads, the sensor estimate must stay close to the
	// true AR across the operating range.
	for ar := 0.2; ar <= 0.95; ar += 0.05 {
		var sum float64
		const n = 200
		for i := 0; i < n; i++ {
			sum += s.Read(ar, 0.3)
		}
		avg := sum / n
		if math.Abs(avg-ar) > 0.08 {
			t.Errorf("AR %.2f estimated as %.3f (bias > 0.08)", ar, avg)
		}
	}
}

func TestEstimateBounded(t *testing.T) {
	s := NewSensor(DefaultWeights(), 2)
	f := func(arRaw, vecRaw float64) bool {
		ar := math.Mod(math.Abs(arRaw), 1)
		vec := math.Mod(math.Abs(vecRaw), 1)
		got := s.Read(ar, vec)
		return got > 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSynthesizeShape(t *testing.T) {
	s := NewSensor(DefaultWeights(), 3)
	heavy := s.Synthesize(0.9, 0.5)
	light := s.Synthesize(0.2, 0.5)
	if !(heavy[PortActive] > light[PortActive]) {
		t.Error("port activity should track AR")
	}
	if !(light[MemStall] > heavy[MemStall]) {
		t.Error("memory stalls should anticorrelate with AR")
	}
	// The vector split partitions the issue rate.
	noVec := s.Synthesize(0.8, 0)
	if noVec[Vec128]+noVec[Vec256]+noVec[Vec512] != 0 {
		t.Error("vecFrac 0 should produce no vector events")
	}
}

func TestSensorDeterminism(t *testing.T) {
	a := NewSensor(DefaultWeights(), 7).Read(0.6, 0.3)
	b := NewSensor(DefaultWeights(), 7).Read(0.6, 0.3)
	if a != b {
		t.Error("same-seed sensors must agree")
	}
}

func TestEventString(t *testing.T) {
	if PortActive.String() != "port-active" || Vec512.String() != "vec512" {
		t.Error("Event.String mismatch")
	}
	if Event(99).String() != "unknown" {
		t.Error("unknown event label")
	}
}

func TestSynthesizePanicsOnBadInput(t *testing.T) {
	s := NewSensor(DefaultWeights(), 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for AR > 1")
		}
	}()
	s.Synthesize(1.5, 0.3)
}
