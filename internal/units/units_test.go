package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConversions(t *testing.T) {
	cases := []struct {
		got, want float64
		name      string
	}{
		{MilliVolt(25), 0.025, "MilliVolt"},
		{MilliOhm(2.5), 0.0025, "MilliOhm"},
		{MilliWatt(9), 0.009, "MilliWatt"},
		{MicroSecond(94), 94e-6, "MicroSecond"},
		{GigaHertz(4), 4e9, "GigaHertz"},
		{MegaHertz(100), 1e8, "MegaHertz"},
	}
	for _, c := range cases {
		if math.Abs(c.got-c.want) > 1e-15*math.Abs(c.want) {
			t.Errorf("%s: got %g want %g", c.name, c.got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %g", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %g", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %g", got)
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		got := Clamp(v, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(100, 100.5, 0.01) {
		t.Error("100 vs 100.5 should be within 1%")
	}
	if ApproxEqual(100, 103, 0.01) {
		t.Error("100 vs 103 should not be within 1%")
	}
	if !ApproxEqual(0, 0.0005, 0.001) {
		t.Error("near-zero absolute floor failed")
	}
}

func TestCheckPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("CheckPositive(0)", func() { CheckPositive("x", 0) })
	mustPanic("CheckPositive(-1)", func() { CheckPositive("x", -1) })
	mustPanic("CheckPositive(+Inf)", func() { CheckPositive("x", math.Inf(1)) })
	mustPanic("CheckNonNegative(-1)", func() { CheckNonNegative("x", -1) })
	mustPanic("CheckNonNegative(NaN)", func() { CheckNonNegative("x", math.NaN()) })
	mustPanic("CheckFraction(1.5)", func() { CheckFraction("x", 1.5) })
	mustPanic("CheckFraction(-0.1)", func() { CheckFraction("x", -0.1) })

	// These must not panic.
	CheckPositive("x", 1e-9)
	CheckNonNegative("x", 0)
	CheckFraction("x", 0)
	CheckFraction("x", 1)
}

func TestFormatting(t *testing.T) {
	cases := []struct{ got, want string }{
		{FormatWatt(4), "4W"},
		{FormatWatt(0.009), "9mW"},
		{FormatWatt(0), "0W"},
		{FormatWatt(25e-6), "25uW"},
		{FormatVolt(1.8), "1.8V"},
		{FormatVolt(0.025), "25mV"},
		{Percent(0.751), "75.1%"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}
