// Package units provides thin physical-quantity helpers used throughout the
// PDNspot and FlexWatts models.
//
// All quantities are plain float64 values in SI base units (volts, amperes,
// watts, ohms, hertz, seconds). The named types exist for documentation and
// for formatting; arithmetic deliberately stays in float64 so the model code
// reads like the paper's equations. Helper constructors (Milli, Micro, ...)
// and validators (CheckPositive, ...) keep call sites honest.
package units

import (
	"fmt"
	"math"
)

// Volt is an electric potential in volts.
type Volt = float64

// Amp is an electric current in amperes.
type Amp = float64

// Watt is a power in watts.
type Watt = float64

// Ohm is a resistance in ohms.
type Ohm = float64

// Hertz is a frequency in hertz.
type Hertz = float64

// Second is a duration in seconds.
type Second = float64

// Common scale factors.
const (
	Milli = 1e-3
	Micro = 1e-6
	Nano  = 1e-9
	Kilo  = 1e3
	Mega  = 1e6
	Giga  = 1e9
)

// MilliVolt converts millivolts to volts.
func MilliVolt(mv float64) Volt { return mv * Milli }

// MilliOhm converts milliohms to ohms.
func MilliOhm(mo float64) Ohm { return mo * Milli }

// MilliWatt converts milliwatts to watts.
func MilliWatt(mw float64) Watt { return mw * Milli }

// MicroSecond converts microseconds to seconds.
func MicroSecond(us float64) Second { return us * Micro }

// GigaHertz converts gigahertz to hertz.
func GigaHertz(ghz float64) Hertz { return ghz * Giga }

// MegaHertz converts megahertz to hertz.
func MegaHertz(mhz float64) Hertz { return mhz * Mega }

// CheckPositive panics unless v > 0. It is used on constructor paths where a
// non-positive value indicates a programming error, never a runtime
// condition.
func CheckPositive(name string, v float64) {
	// Open-coded NaN/Inf tests (v > 0 rejects NaN; v > MaxFloat64 is +Inf)
	// keep the function within the inlining budget: the checks sit inside
	// the per-point evaluation kernels, where a call per check is
	// measurable.
	if !(v > 0) || v > math.MaxFloat64 {
		panic(fmt.Sprintf("units: %s must be positive and finite, got %g", name, v))
	}
}

// CheckNonNegative panics unless v >= 0 and finite.
func CheckNonNegative(name string, v float64) {
	if v < 0 || v != v || v > math.MaxFloat64 {
		panic(fmt.Sprintf("units: %s must be non-negative and finite, got %g", name, v))
	}
}

// CheckFraction panics unless v is within [0, 1].
func CheckFraction(name string, v float64) {
	if !(v >= 0 && v <= 1) {
		panic(fmt.Sprintf("units: %s must be in [0,1], got %g", name, v))
	}
}

// Clamp returns v limited to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ApproxEqual reports whether a and b are equal within a relative tolerance
// tol (with an absolute floor of tol for values near zero).
func ApproxEqual(a, b, tol float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= tol*scale
}

// FormatWatt renders a power with an adaptive unit prefix, e.g. "9.0mW".
func FormatWatt(w Watt) string {
	aw := math.Abs(w)
	switch {
	case aw >= 1:
		return fmt.Sprintf("%.3gW", w)
	case aw >= Milli:
		return fmt.Sprintf("%.3gmW", w/Milli)
	case aw == 0:
		return "0W"
	default:
		return fmt.Sprintf("%.3guW", w/Micro)
	}
}

// FormatVolt renders a voltage, e.g. "1.8V" or "25mV".
func FormatVolt(v Volt) string {
	if math.Abs(v) >= 1 {
		return fmt.Sprintf("%.3gV", v)
	}
	return fmt.Sprintf("%.3gmV", v/Milli)
}

// Percent renders a fraction as a percentage with one decimal, e.g. "75.0%".
func Percent(frac float64) string {
	return fmt.Sprintf("%.1f%%", frac*100)
}
