package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/flexwatts/api"
	"repro/flexwatts/report"
	"repro/internal/experiments"
	"repro/internal/pdn"
	"repro/internal/workload"
)

// testEnv builds one shared evaluation environment; predictor
// characterization dominates its cost.
var (
	envOnce sync.Once
	envVal  *experiments.Env
	envErr  error
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	envOnce.Do(func() { envVal, envErr = experiments.NewEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	ts := httptest.NewServer(New(envVal, Options{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string, http.Header) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	code, body, _ := get(t, ts, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var h api.Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Experiments == 0 || h.Workers == 0 {
		t.Errorf("health = %+v", h)
	}
}

func TestListExperiments(t *testing.T) {
	ts := testServer(t)
	code, body, _ := get(t, ts, "/v1/experiments")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var listing struct {
		Experiments []api.ExperimentInfo `json:"experiments"`
		Formats     []report.Format      `json:"formats"`
	}
	if err := json.Unmarshal([]byte(body), &listing); err != nil {
		t.Fatal(err)
	}
	if len(listing.Experiments) != len(experiments.IDs()) {
		t.Errorf("%d experiments listed, want %d", len(listing.Experiments), len(experiments.IDs()))
	}
	if len(listing.Formats) != 3 {
		t.Errorf("formats = %v", listing.Formats)
	}
}

// TestExperimentASCIIMatchesGolden pins the served ASCII body to the same
// golden files the CLI is pinned to: the HTTP surface and `flexwatts -exp
// {id}` must be byte-identical.
func TestExperimentASCIIMatchesGolden(t *testing.T) {
	ts := testServer(t)
	for _, id := range []string{"tab1", "fig4j", "fig5"} {
		code, body, hdr := get(t, ts, "/v1/experiments/"+id+"?format=ascii")
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", id, code, body)
		}
		if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("%s: content type %q", id, ct)
		}
		golden, err := os.ReadFile(filepath.Join("..", "experiments", "testdata", id+".golden"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal([]byte(body), golden) {
			t.Errorf("%s: served ASCII differs from golden", id)
		}
	}
}

func TestExperimentJSONAndCSV(t *testing.T) {
	ts := testServer(t)
	code, body, hdr := get(t, ts, "/v1/experiments/tab2?format=json")
	if code != http.StatusOK {
		t.Fatalf("json status %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("json content type %q", ct)
	}
	var d report.Dataset
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatalf("body is not a dataset: %v", err)
	}
	if d.ID != "tab2" {
		t.Errorf("dataset id %q", d.ID)
	}

	code, body, hdr = get(t, ts, "/v1/experiments/tab2?format=csv")
	if code != http.StatusOK {
		t.Fatalf("csv status %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Errorf("csv content type %q", ct)
	}
	if !strings.Contains(body, "Parameter,IVR,MBVR,LDO\n") {
		t.Errorf("csv body missing header: %q", body)
	}
}

func TestExperimentErrors(t *testing.T) {
	ts := testServer(t)
	if code, body, _ := get(t, ts, "/v1/experiments/fig99"); code != http.StatusNotFound {
		t.Errorf("unknown id: status %d: %s", code, body)
	}
	if code, body, _ := get(t, ts, "/v1/experiments/tab1?format=xml"); code != http.StatusBadRequest {
		t.Errorf("bad format: status %d: %s", code, body)
	}
	if code, body, _ := get(t, ts, "/v1/experiments/tab1/extra"); code != http.StatusNotFound {
		t.Errorf("nested path: status %d: %s", code, body)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/experiments/tab1", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST to experiment: status %d", resp.StatusCode)
	}
}

// TestConcurrentClientsIdenticalBodies is the serving determinism contract:
// parallel clients requesting the same experiment must receive byte-identical
// bodies in every format (run under -race in CI, doubling as the server's
// data-race gate over the shared env and dataset memo).
func TestConcurrentClientsIdenticalBodies(t *testing.T) {
	ts := testServer(t)
	const clients = 8
	for _, format := range []string{"ascii", "json", "csv"} {
		format := format
		t.Run(format, func(t *testing.T) {
			bodies := make([]string, clients)
			var wg sync.WaitGroup
			wg.Add(clients)
			for i := 0; i < clients; i++ {
				i := i
				go func() {
					defer wg.Done()
					resp, err := ts.Client().Get(ts.URL + "/v1/experiments/fig5?format=" + format)
					if err != nil {
						t.Error(err)
						return
					}
					defer resp.Body.Close()
					b, err := io.ReadAll(resp.Body)
					if err != nil {
						t.Error(err)
						return
					}
					if resp.StatusCode != http.StatusOK {
						t.Errorf("status %d: %s", resp.StatusCode, b)
						return
					}
					bodies[i] = string(b)
				}()
			}
			wg.Wait()
			for i := 1; i < clients; i++ {
				if bodies[i] != bodies[0] {
					t.Fatalf("client %d body differs from client 0", i)
				}
			}
		})
	}
}

func postEvaluate(t *testing.T, ts *httptest.Server, body string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestEvaluateBatch posts a mixed batch — baselines, FlexWatts, an idle
// state — and cross-checks the served numbers against direct evaluation.
func TestEvaluateBatch(t *testing.T) {
	ts := testServer(t)
	code, body := postEvaluate(t, ts, `{"points":[
		{"pdn":"IVR","tdp":18,"workload":"multi-thread","ar":0.6},
		{"pdn":"MBVR","tdp":18,"workload":"multi-thread","ar":0.6},
		{"pdn":"FlexWatts","tdp":4,"workload":"single-thread","ar":0.5},
		{"pdn":"LDO","cstate":"C6"}
	]}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp api.EvalResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 4 {
		t.Fatalf("%d results, want 4", len(resp.Results))
	}
	// Cross-check the first point against a direct evaluation.
	s, err := workload.TDPScenario(envVal.Platform, 18, workload.MultiThread, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	want, err := envVal.Eval(pdn.IVR, s)
	if err != nil {
		t.Fatal(err)
	}
	got := resp.Results[0]
	if got.PDN != "IVR" || got.ETEE != want.ETEE || got.PIn != want.PIn {
		t.Errorf("served result %+v, want ETEE %g PIn %g", got, want.ETEE, want.PIn)
	}
	if resp.Results[3].CState != "C6" {
		t.Errorf("idle point cstate %q", resp.Results[3].CState)
	}
	for i, r := range resp.Results {
		if !(r.ETEE > 0 && r.ETEE < 1) || r.Loss <= 0 {
			t.Errorf("result %d implausible: %+v", i, r)
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, body string
		wantCode   int
	}{
		{"empty", `{"points":[]}`, http.StatusBadRequest},
		{"malformed", `{`, http.StatusBadRequest},
		{"unknown field", `{"pts":[]}`, http.StatusBadRequest},
		{"bad pdn", `{"points":[{"pdn":"XVR","tdp":4,"workload":"graphics","ar":0.5}]}`, http.StatusBadRequest},
		{"bad workload", `{"points":[{"pdn":"IVR","tdp":4,"workload":"mining","ar":0.5}]}`, http.StatusBadRequest},
		{"bad cstate", `{"points":[{"pdn":"IVR","cstate":"C99"}]}`, http.StatusBadRequest},
		{"bad tdp", `{"points":[{"pdn":"IVR","tdp":900,"workload":"graphics","ar":0.5}]}`, http.StatusBadRequest},
		{"contradictory idle+active", `{"points":[{"pdn":"IVR","cstate":"C6","workload":"multi-thread","ar":0.6}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body := postEvaluate(t, ts, tc.body)
		if code != tc.wantCode {
			t.Errorf("%s: status %d (want %d): %s", tc.name, code, tc.wantCode, body)
		}
	}
}

func TestEvaluateBatchCap(t *testing.T) {
	envOnce.Do(func() { envVal, envErr = experiments.NewEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	ts := httptest.NewServer(New(envVal, Options{MaxBatch: 2}).Handler())
	defer ts.Close()
	var pts []string
	for i := 0; i < 3; i++ {
		pts = append(pts, `{"pdn":"IVR","tdp":18,"workload":"multi-thread","ar":0.6}`)
	}
	body := fmt.Sprintf(`{"points":[%s]}`, strings.Join(pts, ","))
	resp, err := ts.Client().Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status %d, want 413", resp.StatusCode)
	}
}

// TestSharedCacheAcrossRequests verifies the architectural point of the
// long-lived service: a repeated evaluate batch must be served from the
// shared memoizing cache, adding hits but no new keys.
func TestSharedCacheAcrossRequests(t *testing.T) {
	ts := testServer(t)
	body := `{"points":[{"pdn":"I+MBVR","tdp":25,"workload":"graphics","ar":0.45}]}`
	if code, b := postEvaluate(t, ts, body); code != http.StatusOK {
		t.Fatalf("warm-up status %d: %s", code, b)
	}
	hits1, _ := envVal.Cache.Stats()
	keys := envVal.Cache.Len()
	if code, b := postEvaluate(t, ts, body); code != http.StatusOK {
		t.Fatalf("repeat status %d: %s", code, b)
	}
	hits2, _ := envVal.Cache.Stats()
	if hits2 <= hits1 {
		t.Error("repeated request did not hit the shared cache")
	}
	if envVal.Cache.Len() != keys {
		t.Errorf("repeated request grew the cache from %d to %d keys", keys, envVal.Cache.Len())
	}
}

// TestEvaluateC0WithoutWorkloadExplains pins the error ergonomics: a bare
// cstate "C0" point must say what an active point requires, not complain
// about an unknown empty workload type.
func TestEvaluateC0WithoutWorkloadExplains(t *testing.T) {
	ts := testServer(t)
	code, body := postEvaluate(t, ts, `{"points":[{"pdn":"IVR","cstate":"C0"}]}`)
	if code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", code, body)
	}
	if !strings.Contains(body, "requires tdp, workload and ar") {
		t.Errorf("error does not explain the active-point fields: %s", body)
	}
}

// TestMethodNotAllowed is the wrong-method table: every endpoint must
// answer 405 with an Allow header naming its permitted methods (RFC 9110
// §15.5.6) and the uniform JSON error envelope — not fall through to a
// handler or a bare 404.
func TestMethodNotAllowed(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		method, path, allow string
	}{
		{http.MethodPost, "/healthz", "GET"},
		{http.MethodDelete, "/healthz", "GET"},
		{http.MethodPost, "/v1/experiments", "GET"},
		{http.MethodPut, "/v1/experiments", "GET"},
		{http.MethodPost, "/v1/experiments/tab1", "GET"},
		{http.MethodDelete, "/v1/experiments/tab1", "GET"},
		{http.MethodGet, "/v1/evaluate", "POST"},
		{http.MethodPut, "/v1/evaluate", "POST"},
		{http.MethodDelete, "/v1/evaluate", "POST"},
	}
	for _, tc := range cases {
		t.Run(tc.method+" "+tc.path, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusMethodNotAllowed {
				t.Fatalf("status %d, want 405: %s", resp.StatusCode, body)
			}
			if got := resp.Header.Get("Allow"); got != tc.allow {
				t.Errorf("Allow header %q, want %q", got, tc.allow)
			}
			var e api.Error
			if err := json.Unmarshal(body, &e); err != nil || e.Message == "" {
				t.Errorf("body is not the error envelope: %s", body)
			}
		})
	}
}

// TestEvaluateCancelledRequest pins the cancellation contract of the
// serving layer: a /v1/evaluate whose request context is already done must
// abort the sweep promptly and write nothing (there is no client left to
// answer), instead of evaluating the full batch.
func TestEvaluateCancelledRequest(t *testing.T) {
	envOnce.Do(func() { envVal, envErr = experiments.NewEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	srv := New(envVal, Options{})
	var pts []string
	for i := 0; i < DefaultMaxBatch; i++ {
		// Spread the batch over the AR axis so a runaway evaluation could
		// not be served from a single cached cell.
		pts = append(pts, fmt.Sprintf(`{"pdn":"MBVR","tdp":18,"workload":"multi-thread","ar":%.6f}`, 0.40+0.5*float64(i)/DefaultMaxBatch))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/evaluate",
		strings.NewReader(fmt.Sprintf(`{"points":[%s]}`, strings.Join(pts, ",")))).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	start := time.Now()
	srv.Handler().ServeHTTP(rec, req)
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancelled evaluate took %v, want prompt abort", d)
	}
	if rec.Body.Len() != 0 {
		t.Errorf("cancelled evaluate wrote a body: %.120s", rec.Body.String())
	}
}
