package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/flexwatts/api"
	"repro/internal/optimize"
	"repro/internal/pdn"
)

// buildOptimizeSpec parses a wire optimizer request into the engine's
// spec. Enum parsing is string-for-string the optimizer's own (the wire
// and internal vocabularies share spellings), and range validation is the
// engine's Validate — one set of rules, whichever door a spec comes in by.
func (s *Server) buildOptimizeSpec(req api.OptimizeRequest) (optimize.Spec, error) {
	spec := optimize.Spec{
		TDP:             req.TDP,
		LoadlineScales:  req.LoadlineScales,
		GuardbandScales: req.GuardbandScales,
		VRScales:        req.VRScales,
		Seed:            req.Seed,
		Budget:          req.Budget,
		Chains:          req.Chains,
		MaxCost:         req.MaxCost,
		MaxArea:         req.MaxArea,
		MaxBatteryPower: req.MaxBatteryPower,
		MinPerformance:  req.MinPerformance,
	}
	if req.PDNs != nil {
		spec.Kinds = make([]pdn.Kind, len(req.PDNs))
		for i, name := range req.PDNs {
			k, err := pdn.ParseKind(name)
			if err != nil {
				return optimize.Spec{}, fmt.Errorf("%w: %v", api.ErrInvalidSpec, err)
			}
			spec.Kinds[i] = k
		}
	}
	if req.Objectives != nil {
		spec.Objectives = make([]optimize.Objective, len(req.Objectives))
		for i, name := range req.Objectives {
			o, err := optimize.ParseObjective(name)
			if err != nil {
				return optimize.Spec{}, fmt.Errorf("%w: %v", api.ErrInvalidSpec, err)
			}
			spec.Objectives[i] = o
		}
	}
	st, err := optimize.ParseStrategy(req.Strategy)
	if err != nil {
		return optimize.Spec{}, fmt.Errorf("%w: %v", api.ErrInvalidSpec, err)
	}
	spec.Strategy = st
	if err := spec.Validate(); err != nil {
		return optimize.Spec{}, fmt.Errorf("%w: %v", api.ErrInvalidSpec, err)
	}
	return spec, nil
}

// decodeOptimizeRequest reads and validates an optimize request body —
// shared by the buffered and streaming endpoints. On failure the error
// response (uniform api.Error envelope) has been written and ok is false.
func (s *Server) decodeOptimizeRequest(w http.ResponseWriter, r *http.Request) (optimize.Spec, bool) {
	var req api.OptimizeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, fmt.Errorf("%w: request body exceeds %d bytes", api.ErrBatchTooLarge, tooBig.Limit))
		} else {
			writeErr(w, fmt.Errorf("%w: bad request body: %v", api.ErrInvalidSpec, err))
		}
		return optimize.Spec{}, false
	}
	spec, err := s.buildOptimizeSpec(req)
	if err != nil {
		writeErr(w, err)
		return optimize.Spec{}, false
	}
	return spec, true
}

// admitOptimize runs admission control for one search: the per-client
// token bucket (shared with evaluate — a chatty client exhausts its own
// bucket), then the optimizer's dedicated inflight-searches budget. A
// search pins worker-pool capacity for seconds, not milliseconds, so it
// gets its own small slot count instead of riding the points budget.
func (s *Server) admitOptimize(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if ok, retry := s.limiter.allow(clientKey(r)); !ok {
		s.shed(w, shedRateLimited, retry,
			fmt.Errorf("%w: client %s exceeded %g requests/s (retry after %s)",
				api.ErrRateLimited, clientKey(r), s.opts.RatePerClient, retry.Round(time.Millisecond)))
		return nil, false
	}
	if !s.optBudget.tryAcquire(1) {
		retry := s.opts.RetryAfter
		s.shed(w, shedOverloaded, retry,
			fmt.Errorf("%w: %d searches already in flight (retry after %s)",
				api.ErrOverloaded, s.opts.MaxInflightOptimize, retry))
		return nil, false
	}
	return func() { s.optBudget.release(1) }, true
}

// bookOptimize folds one search event into the optimizer metrics:
// candidates count up by the evaluation delta, the frontier gauge tracks
// the latest reported size.
func (s *Server) bookOptimize(last *int, ev optimize.Event) {
	if d := ev.Evaluated - *last; d > 0 {
		s.metrics.optimizeCandidates.Add(int64(d))
		*last = ev.Evaluated
	}
	s.metrics.optimizeFrontier.Set(int64(ev.FrontierSize))
}

// wrapOptimizeErr maps engine errors onto the wire sentinel table.
func wrapOptimizeErr(err error) error {
	if errors.Is(err, optimize.ErrInvalidSpec) {
		return fmt.Errorf("%w: %v", api.ErrInvalidSpec, err)
	}
	return err
}

// wireParetoPoint renders one frontier member.
func wireParetoPoint(p optimize.Point) api.ParetoPoint {
	return api.ParetoPoint{
		Key: p.Key,
		Config: api.OptimizeConfig{
			PDN:            p.Config.Kind.String(),
			LoadlineScale:  p.Config.LoadlineScale,
			GuardbandScale: p.Config.GuardbandScale,
			VRScale:        p.Config.VRScale,
		},
		Scores: api.OptimizeScores{
			Cost:         p.Scores.Cost,
			Area:         p.Scores.Area,
			BatteryPower: p.Scores.BatteryPower,
			Performance:  p.Scores.Performance,
		},
	}
}

// wireOptimizeResult renders a finished search into its wire form.
func wireOptimizeResult(res optimize.Result, workers int) api.OptimizeResponse {
	out := api.OptimizeResponse{
		Frontier:  make([]api.ParetoPoint, len(res.Frontier)),
		Evaluated: res.Evaluated,
		SpaceSize: res.SpaceSize,
		Strategy:  res.Strategy.String(),
		Workers:   workers,
	}
	for i, p := range res.Frontier {
		out.Frontier[i] = wireParetoPoint(p)
	}
	return out
}

// wireOptimizeEvent renders an incremental search event as a stream line.
func wireOptimizeEvent(ev optimize.Event) api.OptimizeEvent {
	line := api.OptimizeEvent{
		Event:        api.OptimizeEventProgress,
		Evaluated:    ev.Evaluated,
		SpaceSize:    ev.SpaceSize,
		FrontierSize: ev.FrontierSize,
	}
	if ev.Kind == optimize.EventFrontier {
		line.Event = api.OptimizeEventFrontier
		p := wireParetoPoint(ev.Point)
		line.Point = &p
	}
	return line
}

// handleOptimize is POST /v1/optimize: run the design-space search to
// completion on the request's context and answer its Pareto frontier. A
// cancelled request (client disconnect, deadline) aborts the search
// mid-batch — the engine's workers stop pulling candidates.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	spec, ok := s.decodeOptimizeRequest(w, r)
	if !ok {
		return
	}
	release, ok := s.admitOptimize(w, r)
	if !ok {
		return
	}
	defer release()

	start := time.Now()
	last := 0
	res, err := s.opt.Run(r.Context(), spec, func(ev optimize.Event) error {
		s.bookOptimize(&last, ev)
		return nil
	})
	s.metrics.optimizeSeconds.Observe(time.Since(start).Seconds())
	if err != nil {
		if r.Context().Err() != nil {
			// The client is gone: no one to answer, the search already
			// stopped.
			return
		}
		writeErr(w, wrapOptimizeErr(err))
		return
	}
	writeJSONPooled(w, http.StatusOK, wireOptimizeResult(res, s.workers()))
}

// handleOptimizeStream is POST /v1/optimize/stream: the same request body
// as /v1/optimize, answered as NDJSON — progress and frontier-update lines
// while the search runs, then exactly one terminal line ("result" or
// "error"). Events are low-rate (one per batch or frontier entrant), so
// every line flushes immediately under the rolling per-chunk write
// deadline; a stalled reader kills the connection, which cancels the
// search through the request context.
func (s *Server) handleOptimizeStream(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	spec, ok := s.decodeOptimizeRequest(w, r)
	if !ok {
		return
	}
	release, ok := s.admitOptimize(w, r)
	if !ok {
		return
	}
	defer release()

	rc := http.NewResponseController(w)
	extend := func() {
		rc.SetWriteDeadline(time.Now().Add(s.opts.StreamWriteTimeout)) //nolint:errcheck // unsupported transport = no deadline
	}
	extend()
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sc := streamCodecPool.Get().(*streamCodec)
	sc.bw.Reset(w)
	defer func() {
		sc.bw.Reset(nil)
		streamCodecPool.Put(sc)
	}()

	start := time.Now()
	last := 0
	res, err := s.opt.Run(r.Context(), spec, func(ev optimize.Event) error {
		s.bookOptimize(&last, ev)
		line := wireOptimizeEvent(ev)
		if err := sc.enc.Encode(&line); err != nil {
			return err
		}
		extend()
		if err := sc.bw.Flush(); err != nil {
			return err
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	s.metrics.optimizeSeconds.Observe(time.Since(start).Seconds())
	final := api.OptimizeEvent{Event: api.OptimizeEventResult}
	if err != nil {
		if r.Context().Err() != nil {
			// Disconnected mid-stream: the status line is committed and the
			// reader is gone — nothing left to say.
			return
		}
		werr := wrapOptimizeErr(err)
		final = api.OptimizeEvent{
			Event: api.OptimizeEventError,
			Code:  api.CodeFor(werr),
			Error: werr.Error(),
		}
	} else {
		resp := wireOptimizeResult(res, s.workers())
		final.Result = &resp
	}
	if err := sc.enc.Encode(&final); err != nil {
		return
	}
	extend()
	if err := sc.bw.Flush(); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
}
