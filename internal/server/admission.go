package server

import (
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	"repro/flexwatts/api"
)

// pointBudget is the server-wide inflight-points cap: the sum of batch
// sizes currently inside the evaluate handlers may not exceed max. It is
// the backstop that keeps a stampede of big batches from queueing
// unbounded work — when the budget is spent, new batches are shed with
// 503 + Retry-After instead of piling onto the worker pool.
type pointBudget struct {
	mu    sync.Mutex
	max   int64
	used  int64
	gauge interface{ Set(int64) }
}

// tryAcquire admits n points, reporting false when the budget would
// overflow. A single batch larger than the whole budget is still admitted
// when the server is idle (used == 0) — MaxBatch and the budget are tuned
// independently, and rejecting it forever would deadlock the caller.
func (b *pointBudget) tryAcquire(n int64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.used > 0 && b.used+n > b.max {
		return false
	}
	b.used += n
	if b.gauge != nil {
		b.gauge.Set(b.used)
	}
	return true
}

func (b *pointBudget) release(n int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.used -= n
	if b.gauge != nil {
		b.gauge.Set(b.used)
	}
}

// bucket is one client's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is a per-client token bucket: each client key accrues rate
// tokens per second up to burst, and each request spends one. It is the
// fairness half of admission control — one chatty client exhausts its own
// bucket, not the server.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	clients map[string]*bucket
	now     func() time.Time // injectable for tests
}

// newRateLimiter returns a limiter granting rate requests/second with the
// given burst; rate <= 0 disables limiting (allow always reports ok).
func newRateLimiter(rate, burst float64) *rateLimiter {
	if burst < 1 {
		burst = math.Max(1, rate)
	}
	return &rateLimiter{rate: rate, burst: burst, clients: map[string]*bucket{}, now: time.Now}
}

// maxClients bounds the limiter's memory: when the table is full, stale
// buckets (a full refill interval old, i.e. indistinguishable from a new
// client) are evicted first.
const maxClients = 8192

// allow spends one token for key. When the bucket is dry it reports
// ok=false and how long until the next token accrues.
func (l *rateLimiter) allow(key string) (ok bool, retryAfter time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b, found := l.clients[key]
	if !found {
		if len(l.clients) >= maxClients {
			l.evictStale(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.clients[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}

// evictStale drops buckets that have fully refilled (their owner has been
// idle at least burst/rate seconds); if none qualify, the table is
// cleared — correctness (bounded memory) beats a momentarily generous
// bucket for returning clients.
func (l *rateLimiter) evictStale(now time.Time) {
	full := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.clients {
		if now.Sub(b.last) >= full {
			delete(l.clients, k)
		}
	}
	if len(l.clients) >= maxClients {
		l.clients = map[string]*bucket{}
	}
}

// clientKey identifies the requesting client for rate limiting: the host
// part of RemoteAddr (flexwattsd terminates its own connections; a
// forwarded-for header is spoofable and deliberately ignored).
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// shed refuses a request with the shed-load contract: Retry-After in
// whole seconds (rounded up, at least 1) plus the uniform error envelope.
func (s *Server) shed(w http.ResponseWriter, reason string, retryAfter time.Duration, err error) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	s.metrics.shed[reason].Inc()
	writeErr(w, err)
}

// admit runs admission control for an evaluate request of n points: the
// per-client token bucket first (fairness), then the server-wide inflight
// budget (self-protection). On success the caller owns release(); on
// refusal the response (429/503 + Retry-After) has been written.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, n int) (release func(), ok bool) {
	if ok, retry := s.limiter.allow(clientKey(r)); !ok {
		s.shed(w, shedRateLimited, retry,
			fmt.Errorf("%w: client %s exceeded %g requests/s (retry after %s)",
				api.ErrRateLimited, clientKey(r), s.opts.RatePerClient, retry.Round(time.Millisecond)))
		return nil, false
	}
	if !s.budget.tryAcquire(int64(n)) {
		retry := s.opts.RetryAfter
		s.shed(w, shedOverloaded, retry,
			fmt.Errorf("%w: inflight-points budget %d exhausted (retry after %s)",
				api.ErrOverloaded, s.opts.MaxInflightPoints, retry))
		return nil, false
	}
	return func() { s.budget.release(int64(n)) }, true
}
