// Package server implements flexwattsd's HTTP/JSON API: a long-lived
// serving layer over the experiments registry and the zero-alloc PDN
// evaluation core. Every request shares one experiments.Env — and therefore
// one sharded sweep.Cache — so concurrent clients hit memoized evaluation
// cells instead of recomputing the paper's grids, and experiment datasets
// themselves are computed at most once per process and re-rendered per
// request.
//
// The wire vocabulary — request/response bodies, endpoint paths, typed
// sentinel errors and their status mapping — lives in repro/flexwatts/api,
// shared with the flexwatts/client SDK so the two can never drift. Errors
// become statuses in exactly one place (writeErr via api.StatusFor), and
// /v1/evaluate batches run on the request's context, so a disconnected or
// cancelled client aborts the in-flight sweep instead of burning the pool.
//
// Endpoints:
//
//	GET  /healthz                          liveness + cache statistics
//	GET  /v1/experiments                   registered experiment ids
//	GET  /v1/experiments/{id}?format=F     one experiment (ascii|json|csv)
//	POST /v1/evaluate                      batch of arbitrary evaluation points
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/flexwatts"
	"repro/flexwatts/api"
	"repro/flexwatts/report"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/experiments"
	"repro/internal/pdn"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workload"
)

// Options tunes a Server.
type Options struct {
	// Workers bounds each request's sweep pool (experiment grids and
	// evaluate batches); <= 0 sizes it by runtime.GOMAXPROCS(0), the
	// sweep.Map contract.
	Workers int
	// MaxBatch caps the points accepted by one /v1/evaluate request;
	// <= 0 means the default of 4096.
	MaxBatch int
}

// DefaultMaxBatch is the /v1/evaluate batch cap when Options.MaxBatch is
// unset.
const DefaultMaxBatch = 4096

// Server is the flexwattsd request handler: one shared evaluation
// environment, a per-experiment dataset memo, and the HTTP surface.
type Server struct {
	env   *experiments.Env
	opts  Options
	start time.Time
	memos sync.Map // experiment id -> *datasetMemo
}

// datasetMemo computes an experiment's dataset exactly once; concurrent
// requests for the same id block on the first computation and then share
// the immutable result (rendering is per-request).
type datasetMemo struct {
	once sync.Once
	ds   *report.Dataset
	err  error
}

// New creates a server over the given environment.
func New(env *experiments.Env, opts Options) *Server {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	return &Server{env: env, opts: opts, start: time.Now()}
}

// Handler returns the routed HTTP handler. Routing is manual (prefix
// matching) so it works identically on every supported Go version.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathHealthz, s.handleHealthz)
	mux.HandleFunc(api.PathExperiments, s.handleList)
	mux.HandleFunc(api.PathExperiments+"/", s.handleExperiment)
	mux.HandleFunc(api.PathEvaluate, s.handleEvaluate)
	return mux
}

// workers resolves the per-request sweep pool bound.
func (s *Server) workers() int {
	if s.opts.Workers > 0 {
		return s.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// dataset returns the memoized dataset for id, computing it on first use
// with the request-scoped worker bound.
func (s *Server) dataset(id string) (*report.Dataset, error) {
	v, _ := s.memos.LoadOrStore(id, &datasetMemo{})
	m := v.(*datasetMemo)
	m.once.Do(func() {
		env := *s.env
		env.Workers = s.workers()
		m.ds, m.err = experiments.Dataset(id, &env)
	})
	return m.ds, m.err
}

// writeJSON renders v as the response body.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response already committed
}

// writeErr is the single place where errors become HTTP statuses: the api
// sentinels map to their contract statuses, anything else is a 500.
func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, api.StatusFor(err), api.Error{Message: err.Error()})
}

// allow enforces an endpoint's method set. On a mismatch it answers 405
// with an Allow header naming the permitted methods (RFC 9110 §15.5.6)
// and reports false.
func allow(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	allowed := strings.Join(methods, ", ")
	w.Header().Set("Allow", allowed)
	writeErr(w, fmt.Errorf("%w: %s %s (use %s)", api.ErrMethodNotAllowed, r.Method, r.URL.Path, allowed))
	return false
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	hits, misses := s.env.Cache.Stats()
	writeJSON(w, http.StatusOK, api.Health{
		Status:      "ok",
		UptimeS:     int64(time.Since(s.start).Seconds()),
		Experiments: len(experiments.IDs()),
		Workers:     s.workers(),
		CacheKeys:   s.env.Cache.Len(),
		CacheHits:   hits,
		CacheMisses: misses,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	ids := experiments.IDs()
	infos := make([]api.ExperimentInfo, len(ids))
	for i, id := range ids {
		infos[i] = api.ExperimentInfo{ID: id, URL: api.PathExperiments + "/" + id}
	}
	writeJSON(w, http.StatusOK, api.ExperimentList{Experiments: infos, Formats: report.Formats()})
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	id := strings.TrimPrefix(r.URL.Path, api.PathExperiments+"/")
	if id == "" || strings.Contains(id, "/") {
		writeErr(w, fmt.Errorf("%w: experiment path must be %s/{id}", api.ErrUnknownExperiment, api.PathExperiments))
		return
	}
	if !experiments.Known(id) {
		writeErr(w, fmt.Errorf("%w %q (try GET %s)", api.ErrUnknownExperiment, id, api.PathExperiments))
		return
	}
	format, err := report.ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %v", api.ErrInvalidPoint, err))
		return
	}
	ds, err := s.dataset(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Render to a buffer first so a renderer error can still become a 500
	// instead of a half-written 200 body.
	var b bytes.Buffer
	var renderErr error
	if format == report.FormatASCII {
		// WriteASCIIGolden matches `flexwatts -exp {id}` byte for byte.
		renderErr = ds.WriteASCIIGolden(&b)
	} else {
		renderErr = ds.Write(&b, format)
	}
	if renderErr != nil {
		writeErr(w, renderErr)
		return
	}
	w.Header().Set("Content-Type", format.ContentType())
	b.WriteTo(w) //nolint:errcheck // client gone, nothing to do
}

// evalJob is a validated point ready for the sweep pool.
type evalJob struct {
	kind     pdn.Kind
	scenario pdn.Scenario
	tdp      units.Watt
}

// buildJob validates one request point into an evaluable job. Parsing and
// validation are the library's: the wire point becomes a typed
// flexwatts.Point (api.EvalPoint.Point) and Point.Validate applies the one
// set of rules, so the daemon can never drift from what the library
// considers a valid point; only the scenario construction is local.
func (s *Server) buildJob(p api.EvalPoint) (evalJob, error) {
	pt, err := p.Point()
	if err != nil {
		return evalJob{}, err
	}
	if err := pt.Validate(); err != nil {
		return evalJob{}, err
	}
	// The typed and internal enums share the paper's spelling, so the
	// String/Parse round trip is the conversion.
	kind, err := pdn.ParseKind(pt.PDN.String())
	if err != nil {
		return evalJob{}, err
	}
	tdp := float64(pt.TDP)
	if pt.CState != flexwatts.C0 {
		// Battery-life states (C0MIN and package C2…C8) evaluate the
		// fig4j/fig8c scenarios; the TDP only steers FlexWatts' predictor.
		cstate, err := domain.ParseCState(pt.CState.String())
		if err != nil {
			return evalJob{}, err
		}
		if tdp == 0 {
			tdp = 4 // battery-life evaluation is TDP-independent (§7.1)
		}
		return evalJob{kind: kind, scenario: workload.CStateScenario(s.env.Platform, cstate), tdp: tdp}, nil
	}
	wt, err := workload.ParseType(pt.Workload.String())
	if err != nil {
		return evalJob{}, err
	}
	sc, err := workload.TDPScenario(s.env.Platform, tdp, wt, pt.AR)
	if err != nil {
		return evalJob{}, err
	}
	return evalJob{kind: kind, scenario: sc, tdp: tdp}, nil
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	var req api.EvalRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, fmt.Errorf("%w: bad request body: %v", api.ErrInvalidPoint, err))
		return
	}
	if len(req.Points) == 0 {
		writeErr(w, fmt.Errorf("%w: request has no points", api.ErrInvalidPoint))
		return
	}
	if len(req.Points) > s.opts.MaxBatch {
		writeErr(w, fmt.Errorf("%w: %d points exceeds the %d-point batch cap",
			api.ErrBatchTooLarge, len(req.Points), s.opts.MaxBatch))
		return
	}
	jobs := make([]evalJob, len(req.Points))
	for i, p := range req.Points {
		job, err := s.buildJob(p)
		if err != nil {
			writeErr(w, fmt.Errorf("point %d: %w: %v", i, api.ErrInvalidPoint, err))
			return
		}
		jobs[i] = job
	}

	// Batch through the sweep engine on the request's context with the
	// request-scoped worker bound; baseline evaluations dedupe through the
	// shared env cache, so a hot scenario costs one evaluation per
	// process, not per request. A cancelled request (client disconnect,
	// deadline) stops the sweep mid-batch: workers pull no further points.
	workers := s.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results, err := sweep.MapCtx(r.Context(), workers, len(jobs), func(i int) (api.EvalResult, error) {
		job := jobs[i]
		var (
			res pdn.Result
			err error
		)
		if job.kind == pdn.FlexWatts {
			res, err = core.NewAutoModel(s.env.Flex, s.env.Predictor, job.tdp).Evaluate(job.scenario)
		} else {
			res, err = s.env.Eval(job.kind, job.scenario)
		}
		if err != nil {
			return api.EvalResult{}, fmt.Errorf("%w: point %d: %v", api.ErrEvaluation, i, err)
		}
		return api.EvalResult{
			PDN:    job.kind.String(),
			CState: job.scenario.CState.String(),
			ETEE:   res.ETEE,
			PNom:   res.PNomTotal,
			PIn:    res.PIn,
			Loss:   res.PIn - res.PNomTotal,
		}, nil
	})
	if err != nil {
		if r.Context().Err() != nil {
			// The client is gone (disconnect or deadline): there is no one
			// to answer. The aborted sweep already freed the pool.
			return
		}
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, api.EvalResponse{Results: results, Workers: workers})
}
