// Package server implements flexwattsd's HTTP/JSON API: a long-lived
// serving layer over the experiments registry and the zero-alloc PDN
// evaluation core. Every request shares one experiments.Env — and therefore
// one sharded sweep.Cache — so concurrent clients hit memoized evaluation
// cells instead of recomputing the paper's grids, and experiment datasets
// themselves are computed at most once per process and re-rendered per
// request.
//
// The wire vocabulary — request/response bodies, endpoint paths, typed
// sentinel errors and their status mapping — lives in repro/flexwatts/api,
// shared with the flexwatts/client SDK so the two can never drift. Errors
// become statuses in exactly one place (writeErr via api.StatusFor), and
// /v1/evaluate batches run on the request's context, so a disconnected or
// cancelled client aborts the in-flight sweep instead of burning the pool.
//
// Endpoints:
//
//	GET  /healthz                          liveness + cache statistics
//	GET  /metrics                          Prometheus text exposition
//	GET  /v1/experiments                   registered experiment ids
//	GET  /v1/experiments/{id}?format=F     one experiment (ascii|json|csv)
//	POST /v1/evaluate                      batch of arbitrary evaluation points
//	POST /v1/evaluate/stream               same batch, streamed back as NDJSON
//	POST /v1/optimize                      design-space Pareto search
//	POST /v1/optimize/stream               same search, progress + frontier events as NDJSON
//	GET  /debug/pprof/...                  runtime profiling
//
// The serving tier is observable and self-protecting: every route is
// instrumented (latency histograms, request counters, structured access
// logs), and admission control — a per-client token bucket plus a
// server-wide inflight-points budget — sheds load with 429/503 and a
// Retry-After header instead of queueing unboundedly.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/flexwatts"
	"repro/flexwatts/api"
	"repro/flexwatts/report"
	"repro/internal/cachestore"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/experiments"
	"repro/internal/optimize"
	"repro/internal/pdn"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workload"
)

// Options tunes a Server.
type Options struct {
	// Workers bounds each request's sweep pool (experiment grids and
	// evaluate batches); <= 0 sizes it by runtime.GOMAXPROCS(0), the
	// sweep.Map contract.
	Workers int
	// MaxBatch caps the points accepted by one /v1/evaluate request;
	// <= 0 means the default of 4096.
	MaxBatch int
	// MaxBodyBytes caps an evaluate request body; <= 0 means the default
	// of 8 MiB. Overflow is shed as api.ErrBatchTooLarge (413).
	MaxBodyBytes int64
	// MaxInflightPoints is the server-wide admission budget: the summed
	// batch sizes inside the evaluate handlers may not exceed it; excess
	// requests are shed with 503 + Retry-After. <= 0 means the default
	// of 16× MaxBatch.
	MaxInflightPoints int
	// RatePerClient grants each client (remote host) this many evaluate
	// requests per second through a token bucket; excess is shed with
	// 429 + Retry-After. <= 0 disables per-client rate limiting.
	RatePerClient float64
	// BurstPerClient is the token bucket's capacity; <= 0 means
	// max(1, RatePerClient).
	BurstPerClient float64
	// RetryAfter is the hint written on 503 shed responses; <= 0 means
	// 1s. (429 responses compute their hint from the bucket's refill.)
	RetryAfter time.Duration
	// StreamWindow bounds how many results /v1/evaluate/stream holds for
	// in-order delivery; <= 0 means 4× the worker count. Memory per
	// stream is O(window), never O(points).
	StreamWindow int
	// StreamWriteTimeout bounds how long one streamed chunk may take to
	// reach the client: the stream handler re-arms a rolling write
	// deadline before every flush, which both exempts the route from the
	// server-wide WriteTimeout (a healthy stream outlives it by design)
	// and unsticks a stalled reader. <= 0 means DefaultStreamWriteTimeout.
	StreamWriteTimeout time.Duration
	// MaxInflightOptimize caps concurrent /v1/optimize searches. A search
	// pins worker-pool capacity for seconds, so the slot count is small;
	// excess searches are shed with 503 + Retry-After. <= 0 means
	// DefaultMaxInflightOptimize.
	MaxInflightOptimize int
	// Store, when non-nil, is the persistent cache tier: it is attached
	// under the environment's in-memory cache (write-behind) and its
	// segments are replayed into it by an asynchronous warm-start scan.
	// GET /readyz answers 503 until that scan completes, and reports
	// degraded:true if the tier disables itself after repeated disk
	// faults. The server owns the store's lifecycle from here on.
	Store *cachestore.Store
	// AccessLog, when non-nil, receives one structured JSON line per
	// request.
	AccessLog *log.Logger
	// ErrorLog, when non-nil, receives operational errors (recovered
	// handler panics with stacks, warm-start reports); nil uses the
	// process-default logger.
	ErrorLog *log.Logger
}

// Defaults for the zero Options values.
const (
	// DefaultMaxBatch is the /v1/evaluate batch cap when Options.MaxBatch
	// is unset.
	DefaultMaxBatch = 4096
	// DefaultMaxBodyBytes caps evaluate request bodies (8 MiB).
	DefaultMaxBodyBytes = 8 << 20
	// DefaultRetryAfter is the 503 Retry-After hint.
	DefaultRetryAfter = time.Second
	// DefaultStreamWriteTimeout is the per-chunk write deadline on
	// /v1/evaluate/stream.
	DefaultStreamWriteTimeout = 30 * time.Second
	// DefaultMaxInflightOptimize is the concurrent design-space search cap
	// when Options.MaxInflightOptimize is unset.
	DefaultMaxInflightOptimize = 2
)

// Server is the flexwattsd request handler: one shared evaluation
// environment, a per-experiment dataset memo, admission control state,
// the metrics registry, and the HTTP surface.
type Server struct {
	env     *experiments.Env
	opts    Options
	start   time.Time
	memos   sync.Map // experiment id -> *datasetMemo
	metrics *serverMetrics
	limiter *rateLimiter
	budget  *pointBudget
	// optBudget is the optimizer's dedicated inflight-searches slot count;
	// opt is the design-space search engine behind /v1/optimize, sharing
	// the environment's platform, parameters and evaluation cache.
	optBudget *pointBudget
	opt       optimize.Engine
	// arena recycles the warm-pass grid + result blocks across evaluate
	// requests, so the batch prepass stops costing one grid allocation
	// per request under steady load.
	arena pdn.GridArena
	// ready flips once the persistent tier's warm-start scan completes
	// (immediately when no tier is configured); /readyz keys off it.
	ready atomic.Bool
}

// datasetMemo computes an experiment's dataset exactly once; concurrent
// requests for the same id block on the first computation and then share
// the immutable result (rendering is per-request).
type datasetMemo struct {
	once sync.Once
	ds   *report.Dataset
	err  error
}

// New creates a server over the given environment.
func New(env *experiments.Env, opts Options) *Server {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.MaxInflightPoints <= 0 {
		opts.MaxInflightPoints = 16 * opts.MaxBatch
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = DefaultRetryAfter
	}
	if opts.StreamWriteTimeout <= 0 {
		opts.StreamWriteTimeout = DefaultStreamWriteTimeout
	}
	if opts.MaxInflightOptimize <= 0 {
		opts.MaxInflightOptimize = DefaultMaxInflightOptimize
	}
	start := time.Now()
	m := newServerMetrics(env.Cache, opts.Store, start)
	s := &Server{
		env:     env,
		opts:    opts,
		start:   start,
		metrics: m,
		limiter: newRateLimiter(opts.RatePerClient, opts.BurstPerClient),
		budget:  &pointBudget{max: int64(opts.MaxInflightPoints), gauge: m.inflightPoints},
		// The optimizer's slot budget reuses the pointBudget mechanics with
		// n=1 acquisitions; its gauge is the inflight-searches metric.
		optBudget: &pointBudget{max: int64(opts.MaxInflightOptimize), gauge: m.optimizeInflight},
		opt: optimize.Engine{
			Platform: env.Platform,
			Base:     env.Params,
			Cache:    env.Cache,
			Workers:  opts.Workers,
		},
	}
	m.reg.GaugeFunc("flexwattsd_ready",
		"1 once the warm-start scan has completed and the daemon is ready.",
		func() float64 {
			if s.ready.Load() {
				return 1
			}
			return 0
		})
	m.reg.CounterFunc("flexwattsd_grid_arena_gets_total",
		"Grid arena lease checkouts by the evaluate handlers' warm pass.",
		func() float64 { gets, _ := s.arena.Stats(); return float64(gets) })
	m.reg.CounterFunc("flexwattsd_grid_arena_reuses_total",
		"Grid arena checkouts satisfied by a recycled lease.",
		func() float64 { _, reuses := s.arena.Stats(); return float64(reuses) })
	m.reg.GaugeFunc("flexwattsd_grid_arena_reuse_ratio",
		"Recycled fraction of grid arena checkouts; near 1 under steady load.",
		func() float64 {
			gets, reuses := s.arena.Stats()
			if gets == 0 {
				return 0
			}
			return float64(reuses) / float64(gets)
		})
	if opts.Store != nil {
		env.Cache.AttachTier(opts.Store)
		go s.warmStart()
	} else {
		s.ready.Store(true)
	}
	return s
}

// warmStart replays the persistent tier into the in-memory cache and then
// marks the server ready. It runs concurrently with traffic: requests
// arriving during the scan are served (computing what is not yet warm),
// only /readyz holds back until the replay is complete.
func (s *Server) warmStart() {
	defer s.ready.Store(true)
	begin := time.Now()
	n := s.opts.Store.WarmStart(func(k pdn.Kind, sc pdn.Scenario, res pdn.Result) {
		s.env.Cache.Preload(k, sc, res)
	})
	st := s.opts.Store.Stats()
	s.logf("flexwattsd: cache warm-start: %d records in %s (quarantined files %d, stale %d, degraded %v)",
		n, time.Since(begin).Round(time.Millisecond), st.QuarantinedFiles, st.StaleFiles, st.Degraded)
}

// logf writes one operational log line to ErrorLog (or the default logger).
func (s *Server) logf(format string, args ...interface{}) {
	if s.opts.ErrorLog != nil {
		s.opts.ErrorLog.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// Handler returns the routed HTTP handler. Routing is manual (prefix
// matching) so it works identically on every supported Go version; every
// route passes through instrument for metrics and access logging.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(api.PathHealthz, s.instrument(routeHealthz, s.handleHealthz))
	mux.HandleFunc(api.PathReadyz, s.instrument(routeReadyz, s.handleReadyz))
	mux.HandleFunc(api.PathAdminCache, s.instrument(routeAdminCache, s.handleAdminCache))
	mux.HandleFunc(api.PathMetrics, s.instrument(routeMetrics, s.handleMetrics))
	mux.HandleFunc(api.PathExperiments, s.instrument(routeExperiments, s.handleList))
	mux.HandleFunc(api.PathExperiments+"/", s.instrument(routeExperiment, s.handleExperiment))
	mux.HandleFunc(api.PathEvaluate, s.instrument(routeEvaluate, s.handleEvaluate))
	mux.HandleFunc(api.PathEvaluateStream, s.instrument(routeEvaluateStream, s.handleEvaluateStream))
	mux.HandleFunc(api.PathOptimize, s.instrument(routeOptimize, s.handleOptimize))
	mux.HandleFunc(api.PathOptimizeStream, s.instrument(routeOptimizeStream, s.handleOptimizeStream))
	mux.HandleFunc("/debug/pprof/", s.instrument(routePprof, pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", s.instrument(routePprof, pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", s.instrument(routePprof, pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", s.instrument(routePprof, pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", s.instrument(routePprof, pprof.Trace))
	return mux
}

// workers resolves the per-request sweep pool bound.
func (s *Server) workers() int {
	if s.opts.Workers > 0 {
		return s.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// dataset returns the memoized dataset for id, computing it on first use
// with the request-scoped worker bound.
func (s *Server) dataset(id string) (*report.Dataset, error) {
	v, _ := s.memos.LoadOrStore(id, &datasetMemo{})
	m := v.(*datasetMemo)
	m.once.Do(func() {
		env := *s.env
		env.Workers = s.workers()
		m.ds, m.err = experiments.Dataset(id, &env)
	})
	return m.ds, m.err
}

// evalCodec pools the response-encoding state of the hot /v1/evaluate
// path: the JSON encoder and its backing buffer survive across requests,
// so a steady batch load reuses one grown buffer per concurrent request
// instead of allocating encoder state and response bytes each time. The
// bytes produced are identical to writeJSON's (same indent, same trailing
// newline from Encode); only the allocation profile changes.
type evalCodec struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var evalCodecPool = sync.Pool{New: func() any {
	c := &evalCodec{}
	c.enc = json.NewEncoder(&c.buf)
	c.enc.SetIndent("", "  ")
	return c
}}

// evalCodecMaxBytes bounds what returns to the pool, so one rare huge
// response does not pin its buffer for the process lifetime.
const evalCodecMaxBytes = 1 << 20

// writeJSONPooled renders v exactly as writeJSON does, through a pooled
// buffer. Unlike writeJSON it encodes before committing the status line,
// so an unencodable value surfaces as a proper error response instead of
// a truncated 200.
func writeJSONPooled(w http.ResponseWriter, status int, v interface{}) {
	c := evalCodecPool.Get().(*evalCodec)
	c.buf.Reset()
	if err := c.enc.Encode(v); err != nil {
		c.buf.Reset()
		evalCodecPool.Put(c)
		writeErr(w, fmt.Errorf("encoding response: %v", err))
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	w.Write(c.buf.Bytes()) //nolint:errcheck // response already committed
	if c.buf.Cap() <= evalCodecMaxBytes {
		evalCodecPool.Put(c)
	}
}

// writeJSON renders v as the response body.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response already committed
}

// writeErr is the single place where errors become HTTP responses: the api
// sentinels map to their contract statuses and wire codes, anything else is
// a 500 — and every failure path, including body-size overflow and
// malformed JSON, emits the same api.Error envelope.
func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, api.StatusFor(err), api.Error{Code: api.CodeFor(err), Message: err.Error()})
}

// allow enforces an endpoint's method set. On a mismatch it answers 405
// with an Allow header naming the permitted methods (RFC 9110 §15.5.6)
// and reports false.
func allow(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	allowed := strings.Join(methods, ", ")
	w.Header().Set("Allow", allowed)
	writeErr(w, fmt.Errorf("%w: %s %s (use %s)", api.ErrMethodNotAllowed, r.Method, r.URL.Path, allowed))
	return false
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	hits, misses := s.env.Cache.Stats()
	writeJSON(w, http.StatusOK, api.Health{
		Status:      "ok",
		UptimeS:     int64(time.Since(s.start).Seconds()),
		Experiments: len(experiments.IDs()),
		Workers:     s.workers(),
		CacheKeys:   s.env.Cache.Len(),
		CacheHits:   hits,
		CacheMisses: misses,
	})
}

// handleReadyz is GET /readyz — the readiness probe, distinct from the
// /healthz liveness probe: a booting daemon is alive but answers 503 here
// until the persistent tier's warm-start replay completes, so a rolling
// deploy does not route traffic at a cold cache. Once ready the status is
// "ready", or "degraded" when the disk tier has disabled itself after
// repeated faults — degraded is still 200: the daemon serves at full
// correctness, it just recomputes what it can no longer persist.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	var degraded bool
	var loaded int64
	var warmSec float64
	if st := s.opts.Store; st != nil {
		stats := st.Stats()
		degraded = stats.Degraded
		loaded = stats.Loaded
		warmSec = stats.WarmStartSeconds
	}
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, api.Ready{Status: "starting", Degraded: degraded})
		return
	}
	status := "ready"
	if degraded {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, api.Ready{
		Status:      status,
		Degraded:    degraded,
		WarmRecords: loaded,
		WarmSeconds: warmSec,
	})
}

// handleAdminCache serves /v1/admin/cache: GET reports both cache tiers,
// DELETE flushes them — memory keys dropped, disk segments removed, and a
// degraded disk tier given a fresh start (a purge clears its fault state).
func (s *Server) handleAdminCache(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		hits, misses := s.env.Cache.Stats()
		stats := api.CacheStats{
			Memory: api.MemoryCacheStats{
				Keys:     s.env.Cache.Len(),
				Hits:     hits,
				Misses:   misses,
				WarmHits: s.env.Cache.WarmHits(),
			},
		}
		if st := s.opts.Store; st != nil {
			d := st.Stats()
			stats.Disk = &api.DiskCacheStats{
				Dir:                d.Dir,
				Degraded:           d.Degraded,
				WarmStarted:        d.WarmStarted,
				LoadedRecords:      d.Loaded,
				WarmStartSeconds:   d.WarmStartSeconds,
				PersistedRecords:   d.Persisted,
				DroppedRecords:     d.Dropped,
				QueueDepth:         d.QueueDepth,
				QueueCap:           d.QueueCap,
				QuarantinedFiles:   d.QuarantinedFiles,
				QuarantinedRecords: d.QuarantinedRecords,
				TruncatedTails:     d.TruncatedTails,
				StaleFiles:         d.StaleFiles,
				Faults:             d.Faults,
			}
		}
		writeJSON(w, http.StatusOK, stats)
	case http.MethodDelete:
		removed := 0
		if st := s.opts.Store; st != nil {
			removed = st.Purge()
		}
		flushed := s.env.Cache.Reset()
		writeJSON(w, http.StatusOK, api.CacheFlush{FlushedKeys: flushed, RemovedFiles: removed})
	default:
		allow(w, r, http.MethodGet, http.MethodDelete)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	ids := experiments.IDs()
	infos := make([]api.ExperimentInfo, len(ids))
	for i, id := range ids {
		infos[i] = api.ExperimentInfo{ID: id, URL: api.PathExperiments + "/" + id}
	}
	writeJSON(w, http.StatusOK, api.ExperimentList{Experiments: infos, Formats: report.Formats()})
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	id := strings.TrimPrefix(r.URL.Path, api.PathExperiments+"/")
	if id == "" || strings.Contains(id, "/") {
		writeErr(w, fmt.Errorf("%w: experiment path must be %s/{id}", api.ErrUnknownExperiment, api.PathExperiments))
		return
	}
	if !experiments.Known(id) {
		writeErr(w, fmt.Errorf("%w %q (try GET %s)", api.ErrUnknownExperiment, id, api.PathExperiments))
		return
	}
	format, err := report.ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		writeErr(w, fmt.Errorf("%w: %v", api.ErrInvalidPoint, err))
		return
	}
	ds, err := s.dataset(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Render to a buffer first so a renderer error can still become a 500
	// instead of a half-written 200 body.
	var b bytes.Buffer
	var renderErr error
	if format == report.FormatASCII {
		// WriteASCIIGolden matches `flexwatts -exp {id}` byte for byte.
		renderErr = ds.WriteASCIIGolden(&b)
	} else {
		renderErr = ds.Write(&b, format)
	}
	if renderErr != nil {
		writeErr(w, renderErr)
		return
	}
	w.Header().Set("Content-Type", format.ContentType())
	b.WriteTo(w) //nolint:errcheck // client gone, nothing to do
}

// evalJob is a validated point ready for the sweep pool.
type evalJob struct {
	kind     pdn.Kind
	scenario pdn.Scenario
	tdp      units.Watt
}

// buildJob validates one request point into an evaluable job. Parsing and
// validation are the library's: the wire point becomes a typed
// flexwatts.Point (api.EvalPoint.Point) and Point.Validate applies the one
// set of rules, so the daemon can never drift from what the library
// considers a valid point; only the scenario construction is local.
func (s *Server) buildJob(p api.EvalPoint) (evalJob, error) {
	pt, err := p.Point()
	if err != nil {
		return evalJob{}, err
	}
	if err := pt.Validate(); err != nil {
		return evalJob{}, err
	}
	// The typed and internal enums share the paper's spelling, so the
	// String/Parse round trip is the conversion.
	kind, err := pdn.ParseKind(pt.PDN.String())
	if err != nil {
		return evalJob{}, err
	}
	tdp := float64(pt.TDP)
	if pt.CState != flexwatts.C0 {
		// Battery-life states (C0MIN and package C2…C8) evaluate the
		// fig4j/fig8c scenarios; the TDP only steers FlexWatts' predictor.
		cstate, err := domain.ParseCState(pt.CState.String())
		if err != nil {
			return evalJob{}, err
		}
		if tdp == 0 {
			tdp = 4 // battery-life evaluation is TDP-independent (§7.1)
		}
		return evalJob{kind: kind, scenario: workload.CStateScenario(s.env.Platform, cstate), tdp: tdp}, nil
	}
	wt, err := workload.ParseType(pt.Workload.String())
	if err != nil {
		return evalJob{}, err
	}
	sc, err := workload.TDPScenario(s.env.Platform, tdp, wt, pt.AR)
	if err != nil {
		return evalJob{}, err
	}
	return evalJob{kind: kind, scenario: sc, tdp: tdp}, nil
}

// decodeEvalRequest reads and validates an evaluate request body into
// sweep-ready jobs — shared by the buffered and streaming endpoints, so
// the two accept exactly the same points. On failure the error response
// (uniform api.Error envelope) has been written and ok is false. A body
// exceeding MaxBodyBytes is shed as api.ErrBatchTooLarge (413), matching
// the point-count cap it approximates.
func (s *Server) decodeEvalRequest(w http.ResponseWriter, r *http.Request) (jobs []evalJob, ok bool) {
	var req api.EvalRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, fmt.Errorf("%w: request body exceeds %d bytes", api.ErrBatchTooLarge, tooBig.Limit))
		} else {
			writeErr(w, fmt.Errorf("%w: bad request body: %v", api.ErrInvalidPoint, err))
		}
		return nil, false
	}
	if len(req.Points) == 0 {
		writeErr(w, fmt.Errorf("%w: request has no points", api.ErrInvalidPoint))
		return nil, false
	}
	if len(req.Points) > s.opts.MaxBatch {
		writeErr(w, fmt.Errorf("%w: %d points exceeds the %d-point batch cap",
			api.ErrBatchTooLarge, len(req.Points), s.opts.MaxBatch))
		return nil, false
	}
	jobs = make([]evalJob, len(req.Points))
	for i, p := range req.Points {
		job, err := s.buildJob(p)
		if err != nil {
			writeErr(w, fmt.Errorf("point %d: %w: %v", i, api.ErrInvalidPoint, err))
			return nil, false
		}
		jobs[i] = job
	}
	return jobs, true
}

// warmGrid resolves a batch's baseline points through the batch kernel
// before the per-point sweep: jobs are grouped per PDN kind into an SoA
// grid and the cache misses of each kind evaluate in blocks with hoisted
// per-kind invariants (internal/pdn/grid.go) instead of one scalar model
// run per point. Purely a cache warmer — the kernel is bitwise identical
// to Evaluate, so the per-point pass then finds every baseline key hot and
// the response bytes cannot change. Errors (an invalid point, a cancelled
// request) are deliberately dropped here: the per-point pass reports them
// with the request's exact error shape and index. FlexWatts points stay
// scalar — their mode comes from the per-TDP predictor, not the scenario
// alone, so they are not cacheable by scenario key.
func (s *Server) warmGrid(r *http.Request, jobs []evalJob) {
	// Group per kind into arena-leased grids: at most four baseline kinds
	// exist, so a fixed array plus a linear scan replaces the old per-call
	// map, and the leases recycle their column storage across requests —
	// the warm pass allocates nothing once the arena is hot.
	var kinds [4]pdn.Kind
	var leases [4]*pdn.GridLease
	nl := 0
	for _, j := range jobs {
		if j.kind == pdn.FlexWatts {
			continue
		}
		t := 0
		for t < nl && kinds[t] != j.kind {
			t++
		}
		if t == nl {
			kinds[t] = j.kind
			leases[t] = s.arena.Get()
			nl++
		}
		leases[t].Grid().Append(j.scenario)
	}
	for t := 0; t < nl; t++ {
		g := leases[t].Grid()
		s.metrics.gridWarmPoints.Add(int64(g.Len()))
		//nolint:errcheck // cache warmer: the sweep re-reports any failure
		sweep.GridMapCtx(r.Context(), s.workers(), s.env.Cache, s.env.Baselines[kinds[t]], g, leases[t].Results(g.Len()), 0)
		leases[t].Release()
	}
}

// evalOne evaluates one job, with results flowing through the shared env
// cache for baseline kinds.
func (s *Server) evalOne(job evalJob) (pdn.Result, error) {
	if job.kind == pdn.FlexWatts {
		return core.NewAutoModel(s.env.Flex, s.env.Predictor, job.tdp).Evaluate(job.scenario)
	}
	return s.env.Eval(job.kind, job.scenario)
}

// wireResult renders an evaluation into its wire form.
func wireResult(job evalJob, res pdn.Result) api.EvalResult {
	return api.EvalResult{
		PDN:    job.kind.String(),
		CState: job.scenario.CState.String(),
		ETEE:   res.ETEE,
		PNom:   res.PNomTotal,
		PIn:    res.PIn,
		Loss:   res.PIn - res.PNomTotal,
	}
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	jobs, ok := s.decodeEvalRequest(w, r)
	if !ok {
		return
	}
	release, ok := s.admit(w, r, len(jobs))
	if !ok {
		return
	}
	defer release()

	// Batch through the sweep engine on the request's context with the
	// request-scoped worker bound; baseline evaluations dedupe through the
	// shared env cache, so a hot scenario costs one evaluation per
	// process, not per request. A cancelled request (client disconnect,
	// deadline) stops the sweep mid-batch: workers pull no further points.
	workers := s.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	s.metrics.inflightSweeps.Add(1)
	defer s.metrics.inflightSweeps.Add(-1)
	s.warmGrid(r, jobs)
	results, err := sweep.MapCtx(r.Context(), workers, len(jobs), func(i int) (api.EvalResult, error) {
		res, err := s.evalOne(jobs[i])
		if err != nil {
			return api.EvalResult{}, fmt.Errorf("%w: point %d: %v", api.ErrEvaluation, i, err)
		}
		s.metrics.pointsTotal.Inc()
		return wireResult(jobs[i], res), nil
	})
	if err != nil {
		if r.Context().Err() != nil {
			// The client is gone (disconnect or deadline): there is no one
			// to answer. The aborted sweep already freed the pool.
			return
		}
		writeErr(w, err)
		return
	}
	writeJSONPooled(w, http.StatusOK, api.EvalResponse{Results: results, Workers: workers})
}
