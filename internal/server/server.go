// Package server implements flexwattsd's HTTP/JSON API: a long-lived
// serving layer over the experiments registry and the zero-alloc PDN
// evaluation core. Every request shares one experiments.Env — and therefore
// one sharded sweep.Cache — so concurrent clients hit memoized evaluation
// cells instead of recomputing the paper's grids, and experiment datasets
// themselves are computed at most once per process and re-rendered per
// request.
//
// Endpoints:
//
//	GET  /healthz                          liveness + cache statistics
//	GET  /v1/experiments                   registered experiment ids
//	GET  /v1/experiments/{id}?format=F     one experiment (ascii|json|csv)
//	POST /v1/evaluate                      batch of arbitrary evaluation points
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/experiments"
	"repro/internal/pdn"
	"repro/internal/report"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workload"
)

// Options tunes a Server.
type Options struct {
	// Workers bounds each request's sweep pool (experiment grids and
	// evaluate batches); <= 0 sizes it by runtime.GOMAXPROCS(0), the
	// sweep.Map contract.
	Workers int
	// MaxBatch caps the points accepted by one /v1/evaluate request;
	// <= 0 means the default of 4096.
	MaxBatch int
}

// DefaultMaxBatch is the /v1/evaluate batch cap when Options.MaxBatch is
// unset.
const DefaultMaxBatch = 4096

// Server is the flexwattsd request handler: one shared evaluation
// environment, a per-experiment dataset memo, and the HTTP surface.
type Server struct {
	env   *experiments.Env
	opts  Options
	start time.Time
	memos sync.Map // experiment id -> *datasetMemo
}

// datasetMemo computes an experiment's dataset exactly once; concurrent
// requests for the same id block on the first computation and then share
// the immutable result (rendering is per-request).
type datasetMemo struct {
	once sync.Once
	ds   *report.Dataset
	err  error
}

// New creates a server over the given environment.
func New(env *experiments.Env, opts Options) *Server {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	return &Server{env: env, opts: opts, start: time.Now()}
}

// Handler returns the routed HTTP handler. Routing is manual (prefix
// matching) so it works identically on every supported Go version.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/experiments", s.handleList)
	mux.HandleFunc("/v1/experiments/", s.handleExperiment)
	mux.HandleFunc("/v1/evaluate", s.handleEvaluate)
	return mux
}

// workers resolves the per-request sweep pool bound.
func (s *Server) workers() int {
	if s.opts.Workers > 0 {
		return s.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// dataset returns the memoized dataset for id, computing it on first use
// with the request-scoped worker bound.
func (s *Server) dataset(id string) (*report.Dataset, error) {
	v, _ := s.memos.LoadOrStore(id, &datasetMemo{})
	m := v.(*datasetMemo)
	m.once.Do(func() {
		env := *s.env
		env.Workers = s.workers()
		m.ds, m.err = experiments.Dataset(id, &env)
	})
	return m.ds, m.err
}

// writeJSON renders v as the response body.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response already committed
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// healthBody is the /healthz response.
type healthBody struct {
	Status      string `json:"status"`
	UptimeS     int64  `json:"uptime_s"`
	Experiments int    `json:"experiments"`
	Workers     int    `json:"workers"`
	CacheKeys   int    `json:"cache_keys"`
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	hits, misses := s.env.Cache.Stats()
	writeJSON(w, http.StatusOK, healthBody{
		Status:      "ok",
		UptimeS:     int64(time.Since(s.start).Seconds()),
		Experiments: len(experiments.IDs()),
		Workers:     s.workers(),
		CacheKeys:   s.env.Cache.Len(),
		CacheHits:   hits,
		CacheMisses: misses,
	})
}

// experimentInfo is one entry of the /v1/experiments listing.
type experimentInfo struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	ids := experiments.IDs()
	infos := make([]experimentInfo, len(ids))
	for i, id := range ids {
		infos[i] = experimentInfo{ID: id, URL: "/v1/experiments/" + id}
	}
	writeJSON(w, http.StatusOK, struct {
		Experiments []experimentInfo `json:"experiments"`
		Formats     []report.Format  `json:"formats"`
	}{infos, report.Formats()})
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/experiments/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "experiment path must be /v1/experiments/{id}")
		return
	}
	if !experiments.Known(id) {
		writeError(w, http.StatusNotFound, "unknown experiment %q (try GET /v1/experiments)", id)
		return
	}
	format, err := report.ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ds, err := s.dataset(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// Render to a buffer first so a renderer error can still become a 500
	// instead of a half-written 200 body.
	var b bytes.Buffer
	var renderErr error
	if format == report.FormatASCII {
		// WriteASCIIGolden matches `flexwatts -exp {id}` byte for byte.
		renderErr = ds.WriteASCIIGolden(&b)
	} else {
		renderErr = ds.Write(&b, format)
	}
	if renderErr != nil {
		writeError(w, http.StatusInternalServerError, "%v", renderErr)
		return
	}
	w.Header().Set("Content-Type", format.ContentType())
	b.WriteTo(w) //nolint:errcheck // client gone, nothing to do
}

// EvalPoint is one /v1/evaluate request entry: a PDN kind plus either an
// active operating point (tdp, workload, ar) or a package idle state
// (cstate C2 and deeper). For FlexWatts points, Algorithm 1 predicts the
// hybrid mode from the point itself; a zero TDP on an idle-state point
// defaults to 4 W (battery-life evaluation is TDP-independent, §7.1).
type EvalPoint struct {
	PDN      string  `json:"pdn"`
	TDP      float64 `json:"tdp,omitempty"`
	Workload string  `json:"workload,omitempty"`
	AR       float64 `json:"ar,omitempty"`
	CState   string  `json:"cstate,omitempty"`
}

// EvalRequest is the /v1/evaluate request body.
type EvalRequest struct {
	Points []EvalPoint `json:"points"`
}

// EvalResult is one evaluated point: the headline PDNspot quantities.
type EvalResult struct {
	PDN    string  `json:"pdn"`
	CState string  `json:"cstate"`
	ETEE   float64 `json:"etee"`
	PNom   float64 `json:"p_nom"`
	PIn    float64 `json:"p_in"`
	Loss   float64 `json:"loss"`
}

// EvalResponse is the /v1/evaluate response body.
type EvalResponse struct {
	Results []EvalResult `json:"results"`
	Workers int          `json:"workers"`
}

// evalJob is a validated point ready for the sweep pool.
type evalJob struct {
	kind     pdn.Kind
	scenario pdn.Scenario
	tdp      units.Watt
}

// buildJob validates one request point into an evaluable job.
func (s *Server) buildJob(p EvalPoint) (evalJob, error) {
	kind, err := pdn.ParseKind(p.PDN)
	if err != nil {
		return evalJob{}, err
	}
	cstate := domain.C0
	if p.CState != "" {
		cstate, err = domain.ParseCState(p.CState)
		if err != nil {
			return evalJob{}, err
		}
	}
	tdp := p.TDP
	if cstate != domain.C0 {
		// Battery-life states (C0MIN and package C2…C8) evaluate the
		// fig4j/fig8c scenarios; the TDP only steers FlexWatts' predictor.
		// Active-point parameters would be silently ignored here, so a
		// point carrying both is contradictory and rejected.
		if p.Workload != "" || p.AR != 0 {
			return evalJob{}, fmt.Errorf("cstate %s is an idle-state evaluation: workload and ar must be unset", cstate)
		}
		if tdp == 0 {
			tdp = 4 // battery-life evaluation is TDP-independent (§7.1)
		}
		return evalJob{kind: kind, scenario: workload.CStateScenario(s.env.Platform, cstate), tdp: tdp}, nil
	}
	if p.Workload == "" {
		return evalJob{}, fmt.Errorf("an active (C0) point requires tdp, workload and ar; for idle states set cstate to C0MIN or C2…C8")
	}
	wt, err := workload.ParseType(p.Workload)
	if err != nil {
		return evalJob{}, err
	}
	sc, err := workload.TDPScenario(s.env.Platform, tdp, wt, p.AR)
	if err != nil {
		return evalJob{}, err
	}
	return evalJob{kind: kind, scenario: sc, tdp: tdp}, nil
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req EvalRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Points) == 0 {
		writeError(w, http.StatusBadRequest, "request has no points")
		return
	}
	if len(req.Points) > s.opts.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge,
			"%d points exceeds the %d-point batch cap", len(req.Points), s.opts.MaxBatch)
		return
	}
	jobs := make([]evalJob, len(req.Points))
	for i, p := range req.Points {
		job, err := s.buildJob(p)
		if err != nil {
			writeError(w, http.StatusBadRequest, "point %d: %v", i, err)
			return
		}
		jobs[i] = job
	}

	// Batch through the sweep engine with the request-scoped worker bound;
	// baseline evaluations dedupe through the shared env cache, so a hot
	// scenario costs one evaluation per process, not per request.
	workers := s.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results, err := sweep.Map(workers, len(jobs), func(i int) (EvalResult, error) {
		job := jobs[i]
		var (
			res pdn.Result
			err error
		)
		if job.kind == pdn.FlexWatts {
			res, err = core.NewAutoModel(s.env.Flex, s.env.Predictor, job.tdp).Evaluate(job.scenario)
		} else {
			res, err = s.env.Eval(job.kind, job.scenario)
		}
		if err != nil {
			return EvalResult{}, fmt.Errorf("point %d: %w", i, err)
		}
		return EvalResult{
			PDN:    job.kind.String(),
			CState: job.scenario.CState.String(),
			ETEE:   res.ETEE,
			PNom:   res.PNomTotal,
			PIn:    res.PIn,
			Loss:   res.PIn - res.PNomTotal,
		}, nil
	})
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, EvalResponse{Results: results, Workers: workers})
}
