package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/flexwatts/api"
	"repro/internal/experiments"
)

// optServer stands up a server with explicit options over the shared env.
func optServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	envOnce.Do(func() { envVal, envErr = experiments.NewEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	ts := httptest.NewServer(New(envVal, opts).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// arBatch renders a JSON evaluate body of n MBVR points spread over the
// AR axis, so no two points share a cache cell.
func arBatch(n int) string {
	var pts []string
	for i := 0; i < n; i++ {
		pts = append(pts, fmt.Sprintf(`{"pdn":"MBVR","tdp":18,"workload":"multi-thread","ar":%.8f}`,
			0.40+0.5*float64(i)/float64(n)))
	}
	return fmt.Sprintf(`{"points":[%s]}`, strings.Join(pts, ","))
}

// streamLines posts body to /v1/evaluate/stream and parses every NDJSON
// line.
func streamLines(t *testing.T, ts *httptest.Server, body string) (int, []api.EvalStreamResult, http.Header) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/evaluate/stream", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []api.EvalStreamResult
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var r api.EvalStreamResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		lines = append(lines, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, lines, resp.Header
}

// TestEvaluateStreamMatchesBuffered is the endpoint-parity contract: the
// same batch through /v1/evaluate and /v1/evaluate/stream must produce the
// same results, with stream lines index-tagged in order.
func TestEvaluateStreamMatchesBuffered(t *testing.T) {
	ts := testServer(t)
	body := arBatch(100)

	code, buffered := postEvaluate(t, ts, body)
	if code != http.StatusOK {
		t.Fatalf("buffered status %d: %s", code, buffered)
	}
	var resp api.EvalResponse
	if err := json.Unmarshal([]byte(buffered), &resp); err != nil {
		t.Fatal(err)
	}

	scode, lines, hdr := streamLines(t, ts, body)
	if scode != http.StatusOK {
		t.Fatalf("stream status %d", scode)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Errorf("stream content type %q", ct)
	}
	if len(lines) != len(resp.Results) {
		t.Fatalf("stream delivered %d lines, buffered %d results", len(lines), len(resp.Results))
	}
	for i, line := range lines {
		if line.Index != i {
			t.Fatalf("line %d carries index %d (out of order?)", i, line.Index)
		}
		if line.Err() != nil {
			t.Fatalf("line %d: unexpected error %v", i, line.Err())
		}
		if *line.Result != resp.Results[i] {
			t.Errorf("line %d: stream %+v != buffered %+v", i, *line.Result, resp.Results[i])
		}
	}
}

// TestEvaluateStreamDeterministic pins byte-order determinism: two
// identical stream requests answer with byte-identical NDJSON bodies.
func TestEvaluateStreamDeterministic(t *testing.T) {
	ts := testServer(t)
	body := arBatch(257) // not a multiple of the flush interval
	read := func() string {
		resp, err := ts.Client().Post(ts.URL+"/v1/evaluate/stream", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, b)
		}
		return string(b)
	}
	if a, b := read(), read(); a != b {
		t.Error("identical stream requests produced different bytes")
	}
}

// TestEvaluateStreamRejectsBeforeStreaming pins the validation contract:
// everything detectable before the first byte — malformed body, unknown
// vocabulary, batch cap — still answers a clean 4xx with the uniform
// envelope, not a half-started stream.
func TestEvaluateStreamRejectsBeforeStreaming(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, body string
		wantCode   int
	}{
		{"malformed", `{`, http.StatusBadRequest},
		{"empty", `{"points":[]}`, http.StatusBadRequest},
		{"bad pdn", `{"points":[{"pdn":"XVR","tdp":4,"workload":"graphics","ar":0.5}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := ts.Client().Post(ts.URL+"/v1/evaluate/stream", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s: status %d (want %d): %s", tc.name, resp.StatusCode, tc.wantCode, body)
		}
		var e api.Error
		if err := json.Unmarshal(body, &e); err != nil || e.Message == "" || e.Code == "" {
			t.Errorf("%s: body is not the coded error envelope: %s", tc.name, body)
		}
	}
}

// TestEvaluateStreamClientCancel is the mid-stream cancellation contract:
// a client that walks away mid-stream must abort the server's sweep — the
// handler finishes without evaluating the whole grid, and no goroutine is
// left behind (the suite runs under -race in CI).
func TestEvaluateStreamClientCancel(t *testing.T) {
	const n = 100_000
	ts := optServer(t, Options{MaxBatch: n, MaxBodyBytes: 32 << 20})
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/evaluate/stream", strings.NewReader(arBatch(n)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one line, then hang up: the unread remainder overflows the
	// socket buffers, the server's write blocks, and cancellation must
	// reach the sweep.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	// The handler must wind down: in-flight sweeps return to zero and the
	// goroutine count recovers.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatalf("handler did not wind down: %d goroutines (was %d)", runtime.NumGoroutine(), before)
		}
		// Allow the httptest server's per-connection goroutines a moment.
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestShedRateLimited pins the 429 contract: a client past its token
// bucket is shed with Retry-After and the coded envelope, and an
// errors.Is-able sentinel on the wire.
func TestShedRateLimited(t *testing.T) {
	ts := optServer(t, Options{RatePerClient: 0.5, BurstPerClient: 1})
	body := `{"points":[{"pdn":"IVR","tdp":18,"workload":"multi-thread","ar":0.6}]}`

	code, _ := postRaw(t, ts, "/v1/evaluate", body)
	if code != http.StatusOK {
		t.Fatalf("first request status %d", code)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/evaluate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status %d, want 429: %s", resp.StatusCode, b)
	}
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		t.Errorf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	var e api.Error
	if err := json.Unmarshal(b, &e); err != nil || e.Code != "rate_limited" {
		t.Errorf("429 body %s, want code rate_limited", b)
	}
}

// TestShedOverloaded pins the 503 contract: when the inflight-points
// budget is held by other work, a new batch is shed with Retry-After
// instead of queueing.
func TestShedOverloaded(t *testing.T) {
	envOnce.Do(func() { envVal, envErr = experiments.NewEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	srv := New(envVal, Options{MaxInflightPoints: 10})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the budget as a concurrent batch would.
	if !srv.budget.tryAcquire(8) {
		t.Fatal("could not occupy the budget")
	}
	defer srv.budget.release(8)

	resp, err := ts.Client().Post(ts.URL+"/v1/evaluate", "application/json",
		strings.NewReader(arBatch(5)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, b)
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || secs < 1 {
		t.Errorf("Retry-After %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	var e api.Error
	if err := json.Unmarshal(b, &e); err != nil || e.Code != "overloaded" {
		t.Errorf("503 body %s, want code overloaded", b)
	}
}

// TestBudgetAdmitsOversizeBatchWhenIdle pins the no-deadlock rule: a
// single batch larger than the whole budget is admitted when nothing else
// is in flight (it could otherwise never run).
func TestBudgetAdmitsOversizeBatchWhenIdle(t *testing.T) {
	b := &pointBudget{max: 10}
	if !b.tryAcquire(100) {
		t.Error("idle budget refused an oversize batch")
	}
	if b.tryAcquire(1) {
		t.Error("saturated budget admitted more work")
	}
	b.release(100)
	if !b.tryAcquire(1) {
		t.Error("released budget refused a small batch")
	}
}

// TestMetricsEndpoint drives a known request sequence and asserts the
// exposition moves: request counters by route, latency histogram counts,
// evaluated points, cache statistics, and zero in-flight sweeps at rest.
func TestMetricsEndpoint(t *testing.T) {
	ts := optServer(t, Options{})
	if code, _, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Fatal("healthz failed")
	}
	if code, b := postRaw(t, ts, "/v1/evaluate", arBatch(3)); code != http.StatusOK {
		t.Fatalf("evaluate failed: %d %s", code, b)
	}
	if scode, lines, _ := streamLines(t, ts, arBatch(2)); scode != http.StatusOK || len(lines) != 2 {
		t.Fatalf("stream failed: %d with %d lines", scode, len(lines))
	}
	if code, _, _ := get(t, ts, "/v1/experiments/fig99"); code != http.StatusNotFound {
		t.Fatal("expected 404 for unknown experiment")
	}

	code, body, hdr := get(t, ts, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics content type %q", ct)
	}
	for _, want := range []string{
		`flexwattsd_requests_total{route="healthz",status="2xx"} 1`,
		`flexwattsd_requests_total{route="evaluate",status="2xx"} 1`,
		`flexwattsd_requests_total{route="evaluate_stream",status="2xx"} 1`,
		`flexwattsd_requests_total{route="experiment",status="4xx"} 1`,
		`flexwattsd_points_evaluated_total 5`,
		`flexwattsd_points_streamed_total 2`,
		`flexwattsd_inflight_sweeps 0`,
		`flexwattsd_inflight_points 0`,
		"# TYPE flexwattsd_request_seconds histogram",
		`flexwattsd_request_seconds_count{route="evaluate"} 1`,
		"# TYPE flexwattsd_cache_hits_total counter",
		"flexwattsd_cache_keys ",
		"flexwattsd_cache_hit_ratio ",
		"flexwattsd_uptime_seconds ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestErrorEnvelopePerStatus is the writeErr unification table: every
// failure path — malformed JSON, body overflow, batch cap, unknown id,
// wrong method, bad vocabulary — answers with the api.Error envelope
// carrying the wire code that round-trips to the status's sentinel.
func TestErrorEnvelopePerStatus(t *testing.T) {
	ts := optServer(t, Options{MaxBatch: 4, MaxBodyBytes: 256})
	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"malformed JSON", http.MethodPost, "/v1/evaluate", `{`, http.StatusBadRequest, "invalid_point"},
		{"unknown field", http.MethodPost, "/v1/evaluate", `{"pts":[]}`, http.StatusBadRequest, "invalid_point"},
		{"no points", http.MethodPost, "/v1/evaluate", `{"points":[]}`, http.StatusBadRequest, "invalid_point"},
		{"bad vocabulary", http.MethodPost, "/v1/evaluate",
			`{"points":[{"pdn":"XVR","tdp":4,"workload":"graphics","ar":0.5}]}`, http.StatusBadRequest, "invalid_point"},
		{"batch cap", http.MethodPost, "/v1/evaluate", arBatch(5), http.StatusRequestEntityTooLarge, "batch_too_large"},
		{"body overflow", http.MethodPost, "/v1/evaluate", arBatch(4), http.StatusRequestEntityTooLarge, "batch_too_large"},
		{"stream body overflow", http.MethodPost, "/v1/evaluate/stream", arBatch(4), http.StatusRequestEntityTooLarge, "batch_too_large"},
		{"unknown experiment", http.MethodGet, "/v1/experiments/fig99", "", http.StatusNotFound, "unknown_experiment"},
		{"wrong method", http.MethodDelete, "/v1/evaluate", "", http.StatusMethodNotAllowed, "method_not_allowed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body io.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, b)
			}
			var e api.Error
			if err := json.Unmarshal(b, &e); err != nil || e.Message == "" {
				t.Fatalf("body is not the error envelope: %s", b)
			}
			if e.Code != tc.wantCode {
				t.Errorf("code %q, want %q", e.Code, tc.wantCode)
			}
		})
	}
}

// TestAccessLog pins the structured logging contract: one JSON line per
// request with method, route, status, and duration.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	ts := optServer(t, Options{AccessLog: logger})
	if code, _, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Fatal("healthz failed")
	}
	if code, _, _ := get(t, ts, "/v1/experiments/fig99"); code != http.StatusNotFound {
		t.Fatal("expected 404")
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d access-log lines, want 2: %q", len(lines), buf.String())
	}
	var rec struct {
		Method   string  `json:"method"`
		Path     string  `json:"path"`
		Route    string  `json:"route"`
		Status   int     `json:"status"`
		Duration float64 `json:"duration_s"`
		Remote   string  `json:"remote"`
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("access line is not JSON: %q", lines[1])
	}
	if rec.Method != "GET" || rec.Route != "experiment" || rec.Status != http.StatusNotFound ||
		rec.Path != "/v1/experiments/fig99" || rec.Remote == "" {
		t.Errorf("access record %+v", rec)
	}
}

// TestPprofMounted: the profiling surface must answer.
func TestPprofMounted(t *testing.T) {
	ts := testServer(t)
	code, body, _ := get(t, ts, "/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index status %d", code)
	}
}

// postRaw posts body to path and returns status and body.
func postRaw(t *testing.T, ts *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestRateLimiterRefill pins the token-bucket math with an injected
// clock: a dry bucket refills at the configured rate and the retry hint
// covers the gap.
func TestRateLimiterRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newRateLimiter(2, 2) // 2 rps, burst 2
	l.now = func() time.Time { return now }

	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := l.allow("a")
	if ok {
		t.Fatal("dry bucket allowed a request")
	}
	if retry <= 0 || retry > time.Second {
		t.Errorf("retry hint %v, want (0, 500ms] at 2 rps", retry)
	}
	// A different client has its own bucket.
	if ok, _ := l.allow("b"); !ok {
		t.Error("second client shares the first client's bucket")
	}
	// Half a second refills one token at 2 rps.
	now = now.Add(500 * time.Millisecond)
	if ok, _ := l.allow("a"); !ok {
		t.Error("refilled bucket refused a request")
	}
	// Disabled limiter always allows.
	var off *rateLimiter
	if ok, _ := off.allow("x"); !ok {
		t.Error("nil limiter refused")
	}
}
