package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/flexwatts/api"
	"repro/internal/cachestore"
	"repro/internal/experiments"
	"repro/internal/faultinject"
)

// evalBody is the chaos suite's canonical request: baseline kinds only, so
// every point flows through the shared cache (and thus the disk tier).
const evalBody = `{"points":[
	{"pdn":"IVR","tdp":18,"workload":"multi-thread","ar":0.6},
	{"pdn":"MBVR","tdp":12,"workload":"single-thread","ar":0.5},
	{"pdn":"LDO","cstate":"C6"},
	{"pdn":"IMBVR","tdp":28,"workload":"graphics","ar":0.7}
]}`

// tierServer builds a server over a fresh environment (tier tests must not
// pollute the shared envVal cache) with the given store.
func tierServer(t *testing.T, store *cachestore.Store) *httptest.Server {
	t.Helper()
	env, err := experiments.NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(env, Options{Store: store}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// waitReady polls /readyz until it answers 200.
func waitReady(t *testing.T, ts *httptest.Server) api.Ready {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, body, _ := get(t, ts, "/readyz")
		if code == http.StatusOK {
			var r api.Ready
			if err := json.Unmarshal([]byte(body), &r); err != nil {
				t.Fatal(err)
			}
			return r
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never became ready")
	return api.Ready{}
}

func TestReadyzWithoutStore(t *testing.T) {
	ts := testServer(t)
	code, body, _ := get(t, ts, "/readyz")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var r api.Ready
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		t.Fatal(err)
	}
	if r.Status != "ready" || r.Degraded {
		t.Errorf("ready = %+v, want status ready, not degraded", r)
	}
}

// TestReadyzGatesOnWarmStart delays the warm-start scan and pins the
// readiness contract: 503 while the replay runs, 200 after — while
// /healthz (liveness) answers 200 throughout.
func TestReadyzGatesOnWarmStart(t *testing.T) {
	fs := faultinject.New(nil, &faultinject.Rule{Op: faultinject.OpReadDir, Delay: 400 * time.Millisecond, Count: 1})
	store, err := cachestore.Open(t.TempDir(), cachestore.Options{Version: "v1", FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	ts := tierServer(t, store)

	code, body, _ := get(t, ts, "/readyz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during warm start: status %d: %s", code, body)
	}
	var r api.Ready
	if err := json.Unmarshal([]byte(body), &r); err != nil {
		t.Fatal(err)
	}
	if r.Status != "starting" {
		t.Errorf("status %q during warm start, want starting", r.Status)
	}
	if code, _, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("liveness failed during warm start: %d", code)
	}
	if r := waitReady(t, ts); r.Status != "ready" {
		t.Errorf("post-warm-start status = %q, want ready", r.Status)
	}
}

// TestDegradedTierNeverFailsARequest is the central chaos invariant: with
// every disk operation failing, evaluation responses must be byte-identical
// to a storeless server's — the tier degrades, requests never notice.
func TestDegradedTierNeverFailsARequest(t *testing.T) {
	fs := faultinject.New(nil, &faultinject.Rule{
		Op: faultinject.OpAny, After: 1, Err: errors.New("disk on fire"),
	})
	store, err := cachestore.Open(t.TempDir(), cachestore.Options{
		Version: "v1", FS: fs, MaxFaults: 2, SyncEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	broken := tierServer(t, store)
	if r := waitReady(t, broken); !r.Degraded || r.Status != "degraded" {
		t.Fatalf("readyz with a dead disk = %+v, want degraded", r)
	}

	clean := testServer(t)
	for i := 0; i < 3; i++ {
		codeB, bodyB := postEvaluate(t, broken, evalBody)
		codeC, bodyC := postEvaluate(t, clean, evalBody)
		if codeB != http.StatusOK || codeC != http.StatusOK {
			t.Fatalf("round %d: statuses %d/%d", i, codeB, codeC)
		}
		if bodyB != bodyC {
			t.Fatalf("round %d: degraded response differs from storeless baseline:\n%s\nvs\n%s", i, bodyB, bodyC)
		}
	}
	if fs.Injected() == 0 {
		t.Error("no faults were actually injected")
	}
}

// TestWarmRestart is the recovery half of the crash-safety story: a second
// process over the same cache directory answers from warm entries,
// byte-identically, without re-evaluating.
func TestWarmRestart(t *testing.T) {
	dir := t.TempDir()
	env1, err := experiments.NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	store1, err := cachestore.Open(dir, cachestore.Options{Version: env1.CacheVersion(), SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(New(env1, Options{Store: store1}).Handler())
	waitReady(t, ts1)
	code, body1 := postEvaluate(t, ts1, evalBody)
	if code != http.StatusOK {
		t.Fatalf("first life: status %d: %s", code, body1)
	}
	store1.Close() // drains the write-behind queue to disk
	ts1.Close()

	env2, err := experiments.NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	store2, err := cachestore.Open(dir, cachestore.Options{Version: env2.CacheVersion(), SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store2.Close)
	ts2 := httptest.NewServer(New(env2, Options{Store: store2}).Handler())
	t.Cleanup(ts2.Close)
	if r := waitReady(t, ts2); r.WarmRecords == 0 {
		t.Fatalf("second life warm-loaded nothing: %+v", r)
	}

	code, body2 := postEvaluate(t, ts2, evalBody)
	if code != http.StatusOK {
		t.Fatalf("second life: status %d: %s", code, body2)
	}
	if body1 != body2 {
		t.Fatalf("warm answer differs from cold:\n%s\nvs\n%s", body1, body2)
	}

	code, body, _ := get(t, ts2, "/v1/admin/cache")
	if code != http.StatusOK {
		t.Fatalf("admin cache: status %d: %s", code, body)
	}
	var stats api.CacheStats
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Disk == nil || stats.Disk.LoadedRecords == 0 {
		t.Errorf("disk stats after warm restart = %+v", stats.Disk)
	}
	if stats.Memory.WarmHits == 0 {
		t.Error("warm restart answered without any warm hits")
	}
}

func TestAdminCacheFlush(t *testing.T) {
	dir := t.TempDir()
	env, err := experiments.NewEnv()
	if err != nil {
		t.Fatal(err)
	}
	store, err := cachestore.Open(dir, cachestore.Options{Version: env.CacheVersion(), SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(store.Close)
	ts := httptest.NewServer(New(env, Options{Store: store}).Handler())
	t.Cleanup(ts.Close)
	waitReady(t, ts)
	if code, body := postEvaluate(t, ts, evalBody); code != http.StatusOK {
		t.Fatalf("evaluate: %d: %s", code, body)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/admin/cache", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flush: status %d: %s", resp.StatusCode, body)
	}
	var flush api.CacheFlush
	if err := json.Unmarshal(body, &flush); err != nil {
		t.Fatal(err)
	}
	if flush.FlushedKeys == 0 {
		t.Errorf("flush = %+v, want flushed keys > 0", flush)
	}

	// After the flush both tiers are empty.
	code, statsBody, _ := get(t, ts, "/v1/admin/cache")
	if code != http.StatusOK {
		t.Fatal(statsBody)
	}
	var stats api.CacheStats
	if err := json.Unmarshal([]byte(statsBody), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Memory.Keys != 0 {
		t.Errorf("memory keys after flush = %d", stats.Memory.Keys)
	}
	// And evaluation still works (recomputes).
	if code, body := postEvaluate(t, ts, evalBody); code != http.StatusOK {
		t.Fatalf("post-flush evaluate: %d: %s", code, body)
	}

	// Method guard: POST is rejected with Allow.
	resp2, err := ts.Client().Post(ts.URL+"/v1/admin/cache", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body) //nolint:errcheck
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST admin cache: status %d, want 405", resp2.StatusCode)
	}
}

// TestPanicRecoveryEnvelope pins the middleware contract for a panic
// before the response starts: the client gets the uniform internal-error
// envelope and the daemon keeps serving.
func TestPanicRecoveryEnvelope(t *testing.T) {
	envOnce.Do(func() { envVal, envErr = experiments.NewEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	s := New(envVal, Options{})
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", s.instrument(routeEvaluate, func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	}))
	mux.HandleFunc(api.PathHealthz, s.instrument(routeHealthz, s.handleHealthz))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	before := s.metrics.panics.Value()
	code, body, _ := get(t, ts, "/boom")
	if code != http.StatusInternalServerError {
		t.Fatalf("status %d: %s", code, body)
	}
	var e api.Error
	if err := json.Unmarshal([]byte(body), &e); err != nil {
		t.Fatalf("panic response is not the error envelope: %s", body)
	}
	if e.Code != "internal" {
		t.Errorf("code %q, want internal", e.Code)
	}
	if got := s.metrics.panics.Value(); got != before+1 {
		t.Errorf("panics counter = %v, want %v", got, before+1)
	}
	// The daemon survived.
	if code, _, _ := get(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("healthz after panic: %d", code)
	}
}

// TestPanicMidStreamAbortsCleanly pins the other half: once an NDJSON
// stream has started, a panic must abort the connection — never inject an
// error envelope between lines, which would corrupt the framing for every
// line after it.
func TestPanicMidStreamAbortsCleanly(t *testing.T) {
	envOnce.Do(func() { envVal, envErr = experiments.NewEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	s := New(envVal, Options{})
	mux := http.NewServeMux()
	mux.HandleFunc("/stream-boom", s.instrument(routeEvaluateStream, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		for i := 0; i < 3; i++ {
			io.WriteString(w, `{"index":`+string(rune('0'+i))+"}\n") //nolint:errcheck
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic("mid-stream bug")
	}))
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	resp, err := ts.Client().Get(ts.URL + "/stream-boom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d before the panic point", resp.StatusCode)
	}
	var lines []string
	var readErr error
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	readErr = sc.Err()
	if readErr == nil {
		t.Error("stream ended cleanly; a mid-stream panic must abort the connection")
	}
	for _, line := range lines {
		if strings.Contains(line, `"internal"`) {
			t.Errorf("error envelope leaked into the NDJSON stream: %s", line)
		}
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Errorf("corrupt NDJSON line %q: %v", line, err)
		}
	}
}

// TestStreamSurvivesGlobalWriteTimeout proves the stream route's rolling
// write deadline overrides a server-wide WriteTimeout far shorter than the
// stream's duration.
func TestStreamSurvivesGlobalWriteTimeout(t *testing.T) {
	envOnce.Do(func() { envVal, envErr = experiments.NewEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	s := New(envVal, Options{StreamWriteTimeout: 10 * time.Second})
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Config.WriteTimeout = 250 * time.Millisecond
	ts.Start()
	t.Cleanup(ts.Close)

	// A batch big enough to stream past the 250ms write deadline, with the
	// client reading slowly to stretch delivery time.
	var sb strings.Builder
	sb.WriteString(`{"points":[`)
	for i := 0; i < 600; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"pdn":"IVR","tdp":18,"workload":"multi-thread","ar":0.6}`)
	}
	sb.WriteString(`]}`)
	resp, err := ts.Client().Post(ts.URL+"/v1/evaluate/stream", "application/json", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
		if lines%100 == 0 {
			time.Sleep(60 * time.Millisecond) // stretch past WriteTimeout
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream died after %d lines: %v (global WriteTimeout leaked in?)", lines, err)
	}
	if lines != 600 {
		t.Errorf("received %d lines, want 600", lines)
	}
}
