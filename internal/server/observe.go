package server

import (
	"encoding/json"
	"net/http"
	"runtime/debug"
	"time"

	"repro/flexwatts/api"
	"repro/internal/cachestore"
	"repro/internal/metrics"
	"repro/internal/sweep"
)

// Route labels of the instrumented surface. Label sets are pre-registered
// (internal/metrics keeps cardinality static), so every handler must map
// to one of these.
const (
	routeHealthz        = "healthz"
	routeReadyz         = "readyz"
	routeAdminCache     = "admin_cache"
	routeMetrics        = "metrics"
	routeExperiments    = "experiments"
	routeExperiment     = "experiment"
	routeEvaluate       = "evaluate"
	routeEvaluateStream = "evaluate_stream"
	routeOptimize       = "optimize"
	routeOptimizeStream = "optimize_stream"
	routePprof          = "pprof"
)

var routes = []string{
	routeHealthz, routeReadyz, routeAdminCache, routeMetrics,
	routeExperiments, routeExperiment,
	routeEvaluate, routeEvaluateStream,
	routeOptimize, routeOptimizeStream, routePprof,
}

// statusClasses the counters distinguish; an exotic status lands in its
// class, so no request escapes the books.
var statusClasses = []string{"2xx", "3xx", "4xx", "5xx"}

func statusClass(code int) string {
	switch {
	case code < 300:
		return "2xx"
	case code < 400:
		return "3xx"
	case code < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// Shed reasons for the load-shedding counter.
const (
	shedRateLimited = "rate_limited"
	shedOverloaded  = "overloaded"
)

// serverMetrics wires every instrument the daemon exports on /metrics.
// Construction pre-registers the full (route × status class) matrix.
type serverMetrics struct {
	reg      *metrics.Registry
	requests map[string]map[string]*metrics.Counter // route -> class -> count
	latency  map[string]*metrics.Histogram          // route -> seconds
	shed     map[string]*metrics.Counter            // reason -> count

	inflightSweeps *metrics.Gauge
	inflightPoints *metrics.Gauge
	pointsTotal    *metrics.Counter
	streamedTotal  *metrics.Counter
	gridWarmPoints *metrics.Counter
	panics         *metrics.Counter

	optimizeInflight   *metrics.Gauge
	optimizeCandidates *metrics.Counter
	optimizeFrontier   *metrics.Gauge
	optimizeSeconds    *metrics.Histogram
}

// newServerMetrics builds the registry over the shared evaluation cache,
// the optional persistent tier, and the server's start time.
func newServerMetrics(cache *sweep.Cache, store *cachestore.Store, start time.Time) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{
		reg:      reg,
		requests: map[string]map[string]*metrics.Counter{},
		latency:  map[string]*metrics.Histogram{},
		shed:     map[string]*metrics.Counter{},
	}
	for _, route := range routes {
		byClass := map[string]*metrics.Counter{}
		for _, class := range statusClasses {
			byClass[class] = reg.Counter("flexwattsd_requests_total",
				"Requests served, by route and status class.",
				"route", route, "status", class)
		}
		m.requests[route] = byClass
		m.latency[route] = reg.Histogram("flexwattsd_request_seconds",
			"Request latency in seconds, by route.",
			metrics.LatencyBuckets(), "route", route)
	}
	for _, reason := range []string{shedRateLimited, shedOverloaded} {
		m.shed[reason] = reg.Counter("flexwattsd_shed_total",
			"Requests shed by admission control, by reason.",
			"reason", reason)
	}
	m.inflightSweeps = reg.Gauge("flexwattsd_inflight_sweeps",
		"Evaluate sweeps currently running.")
	m.inflightPoints = reg.Gauge("flexwattsd_inflight_points",
		"Evaluation points currently admitted against the inflight budget.")
	m.pointsTotal = reg.Counter("flexwattsd_points_evaluated_total",
		"Evaluation points completed, buffered and streamed.")
	m.streamedTotal = reg.Counter("flexwattsd_points_streamed_total",
		"Evaluation points delivered over /v1/evaluate/stream.")
	m.gridWarmPoints = reg.Counter("flexwattsd_grid_warm_points_total",
		"Baseline points routed through the batch-kernel warm pass.")
	m.panics = reg.Counter("flexwattsd_panics_total",
		"Handler panics recovered by the serving middleware.")
	m.optimizeInflight = reg.Gauge("flexwattsd_optimize_inflight",
		"Design-space searches currently running.")
	m.optimizeCandidates = reg.Counter("flexwattsd_optimize_candidates_total",
		"Design-space candidates evaluated by the optimizer endpoints.")
	m.optimizeFrontier = reg.Gauge("flexwattsd_optimize_frontier_size",
		"Pareto frontier size last reported by a running search.")
	m.optimizeSeconds = reg.Histogram("flexwattsd_optimize_seconds",
		"Design-space search wall time in seconds.",
		metrics.LatencyBuckets())

	reg.CounterFunc("flexwattsd_cache_hits_total",
		"Evaluation cache hits of the shared sweep cache.",
		func() float64 { h, _ := cache.Stats(); return float64(h) })
	reg.CounterFunc("flexwattsd_cache_misses_total",
		"Evaluation cache misses of the shared sweep cache.",
		func() float64 { _, mi := cache.Stats(); return float64(mi) })
	reg.GaugeFunc("flexwattsd_cache_keys",
		"Distinct (kind, scenario) keys in the shared sweep cache.",
		func() float64 { return float64(cache.Len()) })
	reg.GaugeFunc("flexwattsd_cache_hit_ratio",
		"Cache hits / (hits + misses); 0 before any evaluation.",
		func() float64 {
			h, mi := cache.Stats()
			if h+mi == 0 {
				return 0
			}
			return float64(h) / float64(h+mi)
		})
	reg.GaugeFunc("flexwattsd_uptime_seconds",
		"Seconds since the daemon started.",
		func() float64 { return time.Since(start).Seconds() })
	reg.CounterFunc("flexwattsd_tier_hits_total",
		"Evaluations answered by entries warm-loaded from the persistent tier.",
		func() float64 { return float64(cache.WarmHits()) })
	if store != nil {
		reg.CounterFunc("flexwattsd_tier_persisted_total",
			"Results written behind to the persistent cache tier.",
			func() float64 { return float64(store.Stats().Persisted) })
		reg.CounterFunc("flexwattsd_tier_dropped_total",
			"Write-behind records dropped (queue full or tier degraded).",
			func() float64 { return float64(store.Stats().Dropped) })
		reg.CounterFunc("flexwattsd_tier_faults_total",
			"Disk faults absorbed by the persistent tier.",
			func() float64 { return float64(store.Stats().Faults) })
		reg.GaugeFunc("flexwattsd_tier_quarantined_records",
			"Records lost to quarantined (corrupt) segment files.",
			func() float64 { return float64(store.Stats().QuarantinedRecords) })
		reg.GaugeFunc("flexwattsd_tier_queue_depth",
			"Write-behind records waiting for the persister goroutine.",
			func() float64 { return float64(store.Stats().QueueDepth) })
		reg.GaugeFunc("flexwattsd_tier_degraded",
			"1 when the persistent tier has disabled itself after repeated faults.",
			func() float64 {
				if store.Degraded() {
					return 1
				}
				return 0
			})
		reg.GaugeFunc("flexwattsd_tier_warm_start_seconds",
			"Wall time the boot warm-start scan took; 0 until it completes.",
			func() float64 { return store.Stats().WarmStartSeconds })
		reg.GaugeFunc("flexwattsd_tier_loaded_records",
			"Records replayed from disk into the in-memory cache at warm start.",
			func() float64 { return float64(store.Stats().Loaded) })
	}
	return m
}

// observe books one finished request.
func (m *serverMetrics) observe(route string, status int, d time.Duration) {
	if byClass, ok := m.requests[route]; ok {
		byClass[statusClass(status)].Inc()
	}
	if h, ok := m.latency[route]; ok {
		h.Observe(d.Seconds())
	}
}

// statusWriter captures the response status and byte count while
// forwarding Flush, so streaming handlers keep their incremental writes.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(status int) {
	if w.status == 0 {
		w.status = status
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards to the underlying writer when it supports flushing —
// the streaming endpoint depends on this passthrough.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer so http.NewResponseController can
// reach the connection's extended controls (per-request write deadlines).
func (w *statusWriter) Unwrap() http.ResponseWriter {
	return w.ResponseWriter
}

// accessRecord is one structured access-log line.
type accessRecord struct {
	Time     string  `json:"time"`
	Method   string  `json:"method"`
	Path     string  `json:"path"`
	Route    string  `json:"route"`
	Status   int     `json:"status"`
	Bytes    int64   `json:"bytes"`
	Duration float64 `json:"duration_s"`
	Remote   string  `json:"remote"`
}

// instrument wraps a handler with the serving tier's bookkeeping: latency
// histogram and request counter under the route label, plus one JSON
// access-log line per request when access logging is configured.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		// Book the request whatever happens below — deferred first so it
		// still runs when the panic guard re-panics to abort a stream.
		defer func() {
			if sw.status == 0 {
				// Handler wrote nothing (e.g. aborted by client disconnect).
				sw.status = http.StatusOK
			}
			d := time.Since(start)
			s.metrics.observe(route, sw.status, d)
			if s.opts.AccessLog != nil {
				line, err := json.Marshal(accessRecord{
					Time:     start.UTC().Format(time.RFC3339Nano),
					Method:   r.Method,
					Path:     r.URL.Path,
					Route:    route,
					Status:   sw.status,
					Bytes:    sw.bytes,
					Duration: d.Seconds(),
					Remote:   clientKey(r),
				})
				if err == nil {
					s.opts.AccessLog.Println(string(line))
				}
			}
		}()
		// Contain handler panics: one broken request must not take the
		// daemon down. If the response has not started, the client gets
		// the uniform internal-error envelope; mid-response (a committed
		// stream) the connection is aborted instead — injecting an error
		// envelope into half-sent NDJSON would corrupt every line after
		// it, and an aborted connection is unambiguous to the client.
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler { //nolint:errorlint // sentinel identity per net/http contract
				panic(rec)
			}
			s.metrics.panics.Inc()
			s.logf("flexwattsd: panic serving %s %s: %v\n%s",
				r.Method, r.URL.Path, rec, debug.Stack())
			if sw.status == 0 {
				writeJSON(sw, http.StatusInternalServerError,
					api.Error{Code: "internal", Message: "internal server error"})
				return
			}
			panic(http.ErrAbortHandler)
		}()
		h(sw, r)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodGet) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.WritePrometheus(w) //nolint:errcheck // client gone, nothing to do
}
