package server

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/flexwatts/api"
	"repro/internal/experiments"
)

const optimizeBody = `{"tdp":15,"pdns":["IVR","MBVR"],"loadline_scales":[0.9,1],"guardband_scales":[1,1.25]}`

func postOptimize(t *testing.T, ts *httptest.Server, path, body string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestOptimizeServedDeterminism is the served half of the optimizer's
// reproducibility contract: the same spec posted twice — including a
// seeded annealing run, whose chains draw from per-chain RNGs — must
// produce byte-identical response bodies (run under -race in CI).
func TestOptimizeServedDeterminism(t *testing.T) {
	ts := testServer(t)
	bodies := []string{
		optimizeBody,
		`{"tdp":15,"loadline_scales":[0.8,0.9,1,1.1],"guardband_scales":[0.8,0.9,1,1.25],
		  "vr_scales":[0.8,1,1.2],"strategy":"anneal","seed":42,"budget":64,"chains":4}`,
	}
	for _, body := range bodies {
		code1, b1 := postOptimize(t, ts, "/v1/optimize", body)
		code2, b2 := postOptimize(t, ts, "/v1/optimize", body)
		if code1 != http.StatusOK || code2 != http.StatusOK {
			t.Fatalf("statuses %d, %d: %s", code1, code2, b1)
		}
		if b1 != b2 {
			t.Errorf("same spec served different bodies:\n%s\n%s", b1, b2)
		}
	}
}

func TestOptimizeResponseShape(t *testing.T) {
	ts := testServer(t)
	code, body := postOptimize(t, ts, "/v1/optimize", optimizeBody)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var resp api.OptimizeResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.SpaceSize != 8 || resp.Evaluated != 8 {
		t.Errorf("space %d evaluated %d, want 8/8", resp.SpaceSize, resp.Evaluated)
	}
	if resp.Strategy != "exhaustive" {
		t.Errorf("strategy %q", resp.Strategy)
	}
	if resp.Workers <= 0 {
		t.Errorf("workers %d", resp.Workers)
	}
	if len(resp.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for _, p := range resp.Frontier {
		if p.Config.PDN != "IVR" && p.Config.PDN != "MBVR" {
			t.Errorf("frontier pdn %q outside the spec", p.Config.PDN)
		}
		if !(p.Scores.Cost > 0) || !(p.Scores.BatteryPower > 0) || !(p.Scores.Performance > 0) {
			t.Errorf("implausible scores %+v", p.Scores)
		}
	}
}

func TestOptimizeErrors(t *testing.T) {
	ts := testServer(t)
	cases := []struct {
		name, body, wantCode string
		wantStatus           int
	}{
		{"malformed", `{`, "invalid_spec", http.StatusBadRequest},
		{"unknown field", `{"tdp":15,"pdnz":["IVR"]}`, "invalid_spec", http.StatusBadRequest},
		{"bad pdn", `{"tdp":15,"pdns":["XVR"]}`, "invalid_spec", http.StatusBadRequest},
		{"bad objective", `{"tdp":15,"objectives":["speed"]}`, "invalid_spec", http.StatusBadRequest},
		{"bad strategy", `{"tdp":15,"strategy":"genetic"}`, "invalid_spec", http.StatusBadRequest},
		{"bad tdp", `{"tdp":900}`, "invalid_spec", http.StatusBadRequest},
		{"bad scale", `{"tdp":15,"vr_scales":[99]}`, "invalid_spec", http.StatusBadRequest},
	}
	for _, path := range []string{"/v1/optimize", "/v1/optimize/stream"} {
		for _, tc := range cases {
			code, body := postOptimize(t, ts, path, tc.body)
			if code != tc.wantStatus {
				t.Errorf("%s %s: status %d (want %d): %s", path, tc.name, code, tc.wantStatus, body)
				continue
			}
			var e api.Error
			if err := json.Unmarshal([]byte(body), &e); err != nil || e.Code != tc.wantCode {
				t.Errorf("%s %s: envelope %s, want code %q", path, tc.name, body, tc.wantCode)
			}
		}
	}
}

func TestOptimizeMethodNotAllowed(t *testing.T) {
	ts := testServer(t)
	for _, path := range []string{"/v1/optimize", "/v1/optimize/stream"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET %s: status %d, want 405", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != "POST" {
			t.Errorf("GET %s: Allow %q", path, got)
		}
	}
}

// TestOptimizeShedWhenSlotsBusy pins the optimizer's dedicated admission
// budget: with every search slot occupied, a new request is shed with 503
// "overloaded" and a Retry-After header instead of queueing behind a
// seconds-long search.
func TestOptimizeShedWhenSlotsBusy(t *testing.T) {
	envOnce.Do(func() { envVal, envErr = experiments.NewEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	srv := New(envVal, Options{MaxInflightOptimize: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if !srv.optBudget.tryAcquire(1) {
		t.Fatal("could not occupy the only search slot")
	}
	defer srv.optBudget.release(1)
	resp, err := ts.Client().Post(ts.URL+"/v1/optimize", "application/json", strings.NewReader(optimizeBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	var e api.Error
	if err := json.Unmarshal(body, &e); err != nil || e.Code != "overloaded" {
		t.Errorf("envelope %s, want code overloaded", body)
	}
}

// TestOptimizeStreamEvents drains one full stream and pins the protocol:
// NDJSON content type, progress and frontier lines while the search runs,
// exactly one terminal "result" line whose payload matches the buffered
// endpoint's answer for the same spec.
func TestOptimizeStreamEvents(t *testing.T) {
	ts := testServer(t)
	resp, err := ts.Client().Post(ts.URL+"/v1/optimize/stream", "application/json", strings.NewReader(optimizeBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, b)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/x-ndjson") {
		t.Errorf("content type %q", ct)
	}
	var events []api.OptimizeEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var ev api.OptimizeEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) < 2 {
		t.Fatalf("only %d events", len(events))
	}
	last := events[len(events)-1]
	if last.Event != api.OptimizeEventResult || last.Result == nil {
		t.Fatalf("terminal event %+v, want result", last)
	}
	frontiers, progress := 0, 0
	for _, ev := range events[:len(events)-1] {
		switch ev.Event {
		case api.OptimizeEventFrontier:
			frontiers++
			if ev.Point == nil {
				t.Error("frontier event without point")
			}
		case api.OptimizeEventProgress:
			progress++
		default:
			t.Errorf("unexpected mid-stream event %q", ev.Event)
		}
	}
	if frontiers == 0 || progress == 0 {
		t.Errorf("%d frontier and %d progress events, want both > 0", frontiers, progress)
	}
	// The stream's terminal result and the buffered endpoint must agree.
	code, body := postOptimize(t, ts, "/v1/optimize", optimizeBody)
	if code != http.StatusOK {
		t.Fatalf("buffered status %d: %s", code, body)
	}
	streamed, err := json.Marshal(last.Result)
	if err != nil {
		t.Fatal(err)
	}
	var buffered api.OptimizeResponse
	if err := json.Unmarshal([]byte(body), &buffered); err != nil {
		t.Fatal(err)
	}
	rebuffered, err := json.Marshal(&buffered)
	if err != nil {
		t.Fatal(err)
	}
	if string(streamed) != string(rebuffered) {
		t.Errorf("stream result differs from buffered:\n%s\n%s", streamed, rebuffered)
	}
}

// TestOptimizeCancelledRequest pins mid-search cancellation: a request
// whose context is already done must abort promptly and write nothing.
func TestOptimizeCancelledRequest(t *testing.T) {
	envOnce.Do(func() { envVal, envErr = experiments.NewEnv() })
	if envErr != nil {
		t.Fatal(envErr)
	}
	srv := New(envVal, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body := `{"tdp":15,"loadline_scales":[0.8,0.85,0.9,0.95,1,1.05],"guardband_scales":[0.8,0.9,1,1.1,1.2],
	  "vr_scales":[0.8,0.9,1,1.1,1.2]}`
	req := httptest.NewRequest(http.MethodPost, "/v1/optimize", strings.NewReader(body)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	start := time.Now()
	srv.Handler().ServeHTTP(rec, req)
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("cancelled optimize took %v, want prompt abort", d)
	}
	if rec.Body.Len() != 0 {
		t.Errorf("cancelled optimize wrote a body: %.120s", rec.Body.String())
	}
}

// TestOptimizeReleasesSlot verifies the inflight budget drains back to
// zero after searches complete, so a burst of sequential searches is not
// starved by leaked slots.
func TestOptimizeReleasesSlot(t *testing.T) {
	ts := testServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, body := postOptimize(t, ts, "/v1/optimize", optimizeBody)
			if code != http.StatusOK && code != http.StatusServiceUnavailable {
				t.Errorf("status %d: %s", code, body)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		if code, body := postOptimize(t, ts, "/v1/optimize", optimizeBody); code != http.StatusOK {
			t.Fatalf("post-burst search %d: status %d: %s", i, code, body)
		}
	}
}
