package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/experiments"
)

// FuzzEvaluateRequest throws arbitrary bytes at the evaluate request
// decoder — the daemon's main untrusted input surface — and pins that it
// always terminates in one of two states: validated jobs, or a written
// 4xx error envelope. No input may panic, and no failure may leave the
// response unwritten (a hung client).
func FuzzEvaluateRequest(f *testing.F) {
	envOnce.Do(func() { envVal, envErr = experiments.NewEnv() })
	if envErr != nil {
		f.Fatal(envErr)
	}
	s := New(envVal, Options{})

	f.Add([]byte(`{"points":[{"pdn":"IVR","tdp":18,"workload":"multi-thread","ar":0.6}]}`))
	f.Add([]byte(`{"points":[{"pdn":"FlexWatts","tdp":4,"workload":"single-thread","ar":0.5}]}`))
	f.Add([]byte(`{"points":[{"pdn":"LDO","cstate":"C6"}]}`))
	f.Add([]byte(`{"points":[]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`{"points":[{"pdn":"IVR","tdp":-1e308,"workload":"multi-thread","ar":2}]}`))
	f.Add([]byte(`{"pts":"nope"}`))

	f.Fuzz(func(t *testing.T, body []byte) {
		w := httptest.NewRecorder()
		r := httptest.NewRequest(http.MethodPost, "/v1/evaluate", bytes.NewReader(body))
		jobs, ok := s.decodeEvalRequest(w, r)
		if ok {
			if len(jobs) == 0 {
				t.Fatal("ok with zero jobs")
			}
			if w.Body.Len() != 0 {
				t.Fatalf("ok but response written: %s", w.Body.String())
			}
			return
		}
		if w.Body.Len() == 0 {
			t.Fatal("rejected without writing an error envelope")
		}
		if w.Code < 400 || w.Code >= 500 {
			t.Fatalf("rejection status %d, want 4xx", w.Code)
		}
	})
}
