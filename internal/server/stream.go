package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"sync"
	"time"

	"repro/flexwatts/api"
	"repro/internal/pdn"
	"repro/internal/sweep"
)

// Streaming write tuning: results are buffered through a bufio.Writer and
// the chunked response is flushed every flushEvery lines, so a 100k-point
// stream costs hundreds of flushes, not 100k syscalls, while a client
// still sees results arrive while the sweep runs.
const (
	streamBufBytes = 32 << 10
	flushEvery     = 64
)

// streamCodec pools the per-stream write stack — the 32 KiB bufio.Writer
// and the JSON encoder bound to it — so each stream request rebinds a
// recycled buffer to its connection instead of allocating both. Before a
// codec returns to the pool its writer is reset onto nil, dropping the
// connection reference so a pooled codec never pins a finished request's
// transport.
type streamCodec struct {
	bw  *bufio.Writer
	enc *json.Encoder
}

var streamCodecPool = sync.Pool{New: func() any {
	c := &streamCodec{bw: bufio.NewWriterSize(nil, streamBufBytes)}
	c.enc = json.NewEncoder(c.bw)
	return c
}}

// handleEvaluateStream is POST /v1/evaluate/stream: the same request body
// as /v1/evaluate, answered as NDJSON — one api.EvalStreamResult per line,
// in point order, written incrementally as the sweep produces them.
//
// The memory contract is the point of the endpoint: results flow from
// sweep.StreamCtx through a bounded reorder window straight onto the wire,
// so the server holds O(workers) results for a grid of any size instead of
// buffering the full response. Per-point evaluation failures become
// error lines (index-tagged, with the api wire code) and do not end the
// stream; a mid-stream client disconnect cancels the sweep via the
// request context.
//
// Validation failures (malformed body, unknown vocabulary, batch cap) are
// still whole-request errors: they are detected before the first byte is
// written, while a status line can still say 4xx.
func (s *Server) handleEvaluateStream(w http.ResponseWriter, r *http.Request) {
	if !allow(w, r, http.MethodPost) {
		return
	}
	jobs, ok := s.decodeEvalRequest(w, r)
	if !ok {
		return
	}
	release, ok := s.admit(w, r, len(jobs))
	if !ok {
		return
	}
	defer release()

	workers := s.workers()
	if workers > len(jobs) {
		workers = len(jobs)
	}
	// A long stream legitimately outlives any server-wide WriteTimeout, so
	// this route manages its own: a rolling deadline re-armed before every
	// flush. Each chunk gets StreamWriteTimeout to reach the client; only a
	// reader stalled for that long — not a long computation — kills the
	// connection. SetWriteDeadline reaches the net.Conn through the
	// statusWriter's Unwrap; on transports without deadlines (tests using
	// httptest.ResponseRecorder) it reports ErrNotSupported and the stream
	// simply runs unbounded.
	rc := http.NewResponseController(w)
	extend := func() {
		rc.SetWriteDeadline(time.Now().Add(s.opts.StreamWriteTimeout)) //nolint:errcheck // unsupported transport = no deadline
	}
	extend()
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	sc := streamCodecPool.Get().(*streamCodec)
	sc.bw.Reset(w)
	bw, enc := sc.bw, sc.enc
	defer func() {
		sc.bw.Reset(nil)
		streamCodecPool.Put(sc)
	}()

	s.metrics.inflightSweeps.Add(1)
	defer s.metrics.inflightSweeps.Add(-1)
	// Warm the baseline keys through the batch kernel first (the jobs slice
	// is already O(points), so the prepass scratch does not change the
	// stream's memory order); the streaming sweep below then reads hot cache
	// entries and delivers through its bounded window as before.
	s.warmGrid(r, jobs)
	lines := 0
	// Errors returned by emit (encode/flush failures) mean the client is
	// gone; StreamCtx cancels the sweep and we simply stop — there is no
	// one left to tell, and the status line is long since committed.
	//nolint:errcheck
	sweep.StreamCtx(r.Context(), workers, s.opts.StreamWindow, len(jobs),
		func(i int) (pdn.Result, error) {
			res, err := s.evalOne(jobs[i])
			if err == nil {
				s.metrics.pointsTotal.Inc()
			}
			return res, err
		},
		func(i int, res pdn.Result, err error) error {
			line := api.EvalStreamResult{Index: i}
			if err != nil {
				line.Code = api.CodeFor(api.ErrEvaluation)
				line.Error = err.Error()
			} else {
				wire := wireResult(jobs[i], res)
				line.Result = &wire
			}
			if err := enc.Encode(&line); err != nil {
				return err
			}
			s.metrics.streamedTotal.Inc()
			lines++
			if lines%flushEvery == 0 {
				extend()
				if err := bw.Flush(); err != nil {
					return err
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
			return nil
		})
	extend()
	if err := bw.Flush(); err != nil {
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
}
