// Package cachestore is the crash-safe persistent tier under the in-memory
// sweep.Cache: a content-addressed, append-only segment log of evaluated
// (PDN kind, scenario) → result entries, so a daemon restart warm-starts
// from disk instead of re-paying the evaluation suite.
//
// Design rules, in priority order:
//
//  1. The disk can never fail a request. Every write is write-behind
//     through a bounded queue (full queue → drop + count, never block);
//     read problems quarantine data instead of erroring; repeated faults
//     disable the tier entirely (degraded mode) and the daemon keeps
//     serving from computation alone.
//  2. A kill -9 at any instant is recoverable. Appends are framed with
//     per-record checksums; the warm-start scan treats a partial record at
//     a segment's tail as the expected signature of a mid-write crash and
//     salvages the prefix. Compaction writes a fresh segment to a temp
//     name and renames it into place, so a crash mid-compaction leaves
//     either the old segments or the new one, never a half state.
//  3. Stale state cannot resurrect. Every segment header carries a version
//     hash of the model parameters and codec schema; segments with a
//     foreign hash are deleted on boot, so a model change invalidates the
//     cache wholesale.
//
// Corrupt segments (bad magic, failed checksum, malformed payload) are
// quarantined — renamed to *.quarantine and left on disk for post-mortem —
// after their valid prefix is salvaged into the compacted segment.
package cachestore

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/pdn"
)

// Options tunes a Store.
type Options struct {
	// Version identifies the evaluation semantics producing the cached
	// results (model parameters, schema). It is hashed into every segment
	// header together with the codec version; opening a directory written
	// under a different version discards its segments.
	Version string
	// FS is the filesystem implementation; nil means the real one (OSFS).
	FS FS
	// QueueLen bounds the write-behind queue; <= 0 means 4096. A full
	// queue drops entries (counted) instead of blocking the caller.
	QueueLen int
	// MaxFaults is how many consecutive disk faults disable the tier;
	// <= 0 means 8.
	MaxFaults int
	// SyncEvery syncs the active segment every N persisted records;
	// <= 0 means 64. Entries between syncs can be lost to a crash — an
	// acceptable loss, since every entry is recomputable.
	SyncEvery int
	// Logf, when non-nil, receives operational log lines (quarantines,
	// degradation). The store never logs per-entry.
	Logf func(format string, args ...any)
}

const (
	defaultQueueLen  = 4096
	defaultMaxFaults = 8
	defaultSyncEvery = 64
	segSuffix        = ".seg"
	quarantineSuffix = ".quarantine"
)

// entry is one queued write.
type entry struct {
	kind pdn.Kind
	s    pdn.Scenario
	res  pdn.Result
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Dir is the store directory.
	Dir string
	// Degraded reports whether repeated disk faults disabled the tier.
	Degraded bool
	// WarmStarted reports whether the boot scan has completed.
	WarmStarted bool
	// Loaded counts records replayed into the memory tier at warm start.
	Loaded int64
	// WarmStartSeconds is the boot scan + compaction duration.
	WarmStartSeconds float64
	// Persisted counts records appended to the log since boot.
	Persisted int64
	// Dropped counts entries discarded because the queue was full or the
	// tier was degraded.
	Dropped int64
	// QueueDepth and QueueCap describe the write-behind queue.
	QueueDepth int
	QueueCap   int
	// QuarantinedFiles counts segments set aside for corruption;
	// QuarantinedRecords counts the corruption events that caused it.
	QuarantinedFiles   int64
	QuarantinedRecords int64
	// TruncatedTails counts segments that ended mid-record (crash
	// signature); their good prefix was salvaged.
	TruncatedTails int64
	// StaleFiles counts segments deleted for a version-hash mismatch.
	StaleFiles int64
	// Faults counts disk operations that failed.
	Faults int64
}

// Store is the persistent cache tier. Create with Open, start with
// WarmStart, feed with Put (it satisfies sweep.Tier), stop with Close.
type Store struct {
	dir       string
	fs        FS
	ver       [8]byte
	queue     chan entry
	stopc     chan struct{}
	donec     chan struct{}
	started   atomic.Bool
	closing   atomic.Bool
	degraded  atomic.Bool
	warmDone  atomic.Bool
	logf      func(string, ...any)
	maxFaults int
	syncEvery int

	loaded      atomic.Int64
	persisted   atomic.Int64
	dropped     atomic.Int64
	quarFiles   atomic.Int64
	quarRecords atomic.Int64
	truncTails  atomic.Int64
	staleFiles  atomic.Int64
	faults      atomic.Int64
	warmNanos   atomic.Int64

	// fileMu guards the active segment handle and everything that swaps
	// it (writer appends, Purge, degradation). The request path never
	// takes it — Put only touches the queue.
	fileMu      sync.Mutex
	active      File
	activeName  string
	consecutive int
	unsynced    int
	buf         []byte
}

// versionHash folds the caller's version string and the codec version into
// the 8-byte header field.
func versionHash(version string) [8]byte {
	sum := sha256.Sum256([]byte(codecVersion + "\x00" + version))
	var h [8]byte
	copy(h[:], sum[:8])
	return h
}

// Open prepares a store over dir, creating it if needed. Open is cheap and
// validates only that the directory is creatable — a boot-time
// misconfiguration (bad path, no permission) should fail loudly, while
// everything after Open degrades instead of failing. No scan happens until
// WarmStart.
func Open(dir string, opts Options) (*Store, error) {
	fs := opts.FS
	if fs == nil {
		fs = OSFS{}
	}
	if opts.QueueLen <= 0 {
		opts.QueueLen = defaultQueueLen
	}
	if opts.MaxFaults <= 0 {
		opts.MaxFaults = defaultMaxFaults
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = defaultSyncEvery
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cachestore: open %s: %w", dir, err)
	}
	return &Store{
		dir:       dir,
		fs:        fs,
		ver:       versionHash(opts.Version),
		queue:     make(chan entry, opts.QueueLen),
		stopc:     make(chan struct{}),
		donec:     make(chan struct{}),
		logf:      logf,
		maxFaults: opts.MaxFaults,
		syncEvery: opts.SyncEvery,
	}, nil
}

// segments lists the store's segment files in name order (names embed a
// monotone sequence number, so name order is write order).
func (st *Store) segments() ([]string, error) {
	ents, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), segSuffix) {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// segName renders the canonical segment filename for a sequence number.
func segName(seq int) string { return fmt.Sprintf("seg-%06d%s", seq, segSuffix) }

// seqOf parses a segment filename's sequence number; unparseable names
// sort as 0 (they still participate in scans by name order).
func seqOf(name string) int {
	var seq int
	fmt.Sscanf(name, "seg-%06d", &seq) //nolint:errcheck // 0 on mismatch is fine
	return seq
}

// header renders a segment header for this store's version.
func (st *Store) header() []byte {
	h := make([]byte, 0, headerSize)
	h = append(h, headerMagic...)
	h = append(h, st.ver[:]...)
	return h
}

// readAll slurps one file through the FS.
func (st *Store) readAll(name string) ([]byte, error) {
	f, err := st.fs.Open(name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var b []byte
	chunk := make([]byte, 64<<10)
	for {
		n, err := f.Read(chunk)
		b = append(b, chunk[:n]...)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return b, nil
			}
			return b, err
		}
	}
}

// quarantine sets a segment aside under the .quarantine suffix; if even
// the rename fails the file is left in place (the next boot retries).
func (st *Store) quarantine(name string) {
	st.quarFiles.Add(1)
	if err := st.fs.Rename(join(st.dir, name), join(st.dir, name+quarantineSuffix)); err != nil {
		st.fault(err)
	} else {
		st.logf("cachestore: quarantined corrupt segment %s", name)
	}
}

// WarmStart scans every segment, replays each valid record into apply,
// compacts the survivors into a single fresh segment, and starts the
// write-behind goroutine. It returns the number of records replayed.
//
// WarmStart never fails the boot: any disk problem is counted, the
// affected data is quarantined or skipped, and at worst the store comes up
// degraded (accepting and dropping writes) — the daemon serves either way.
// Call it exactly once, before or concurrently with traffic; Puts issued
// before WarmStart simply wait in (or overflow) the queue.
func (st *Store) WarmStart(apply func(kind pdn.Kind, s pdn.Scenario, res pdn.Result)) int {
	if st.started.Swap(true) {
		panic("cachestore: WarmStart called twice")
	}
	begin := time.Now()
	names, err := st.segments()
	if err != nil {
		st.fault(err)
		names = nil
	}

	// Salvage pass: collect every segment's valid byte range, replaying
	// records into apply as they verify.
	var keep []salvaged
	maxSeq := 0
	loaded := 0
	for _, name := range names {
		if s := seqOf(name); s > maxSeq {
			maxSeq = s
		}
		data, err := st.readAll(join(st.dir, name))
		if err != nil {
			st.fault(err)
			st.quarantine(name)
			continue
		}
		if len(data) < headerSize || string(data[:8]) != headerMagic {
			st.quarRecords.Add(1)
			st.quarantine(name)
			continue
		}
		if !versionMatch(data[8:headerSize], st.ver) {
			st.staleFiles.Add(1)
			st.logf("cachestore: dropping stale segment %s (version mismatch)", name)
			if err := st.fs.Remove(join(st.dir, name)); err != nil {
				st.fault(err)
			}
			continue
		}
		body := data[headerSize:]
		n, valid, end := scanRecords(body, apply)
		loaded += n
		switch end {
		case endClean:
			keep = append(keep, salvaged{name: name, data: body[:valid], drop: true})
		case endTruncated:
			st.truncTails.Add(1)
			st.logf("cachestore: segment %s ends mid-record (crash tail); salvaged %d records", name, n)
			keep = append(keep, salvaged{name: name, data: body[:valid], drop: true})
		case endCorrupt:
			st.quarRecords.Add(1)
			keep = append(keep, salvaged{name: name, data: body[:valid]})
			st.quarantine(name)
		}
	}
	st.loaded.Store(int64(loaded))

	// Compaction: rewrite all salvaged bytes into one fresh segment via
	// temp file + rename, then retire the sources. A crash anywhere in
	// here leaves a scannable state: records may appear in both an old
	// segment and the compacted one, which the next boot dedupes by
	// virtue of identical content (the memory tier keys them).
	st.fileMu.Lock()
	defer st.fileMu.Unlock()
	compacted := false
	if len(keep) > 0 {
		tmp := join(st.dir, "compact.tmp")
		name := segName(maxSeq + 1)
		if err := st.writeCompactLocked(tmp, keep); err != nil {
			st.fault(err)
		} else if err := st.fs.Rename(tmp, join(st.dir, name)); err != nil {
			st.fault(err)
		} else {
			compacted = true
			for _, s := range keep {
				if !s.drop {
					continue // already quarantined
				}
				if err := st.fs.Remove(join(st.dir, s.name)); err != nil {
					st.fault(err)
				}
			}
			st.activeName = name
		}
	}
	if !compacted {
		st.activeName = segName(maxSeq + 1)
	}
	st.openActiveLocked(compacted)

	st.warmNanos.Store(time.Since(begin).Nanoseconds())
	st.warmDone.Store(true)
	go st.writer()
	return loaded
}

// salvaged is one segment's recovered byte range awaiting compaction.
type salvaged struct {
	name string
	data []byte // valid record bytes (header stripped)
	drop bool   // remove after compaction (quarantined files were renamed already)
}

// writeCompactLocked writes header + salvaged ranges to tmp and syncs it.
func (st *Store) writeCompactLocked(tmp string, keep []salvaged) error {
	f, err := st.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(st.header()); err != nil {
		f.Close()
		return err
	}
	for _, s := range keep {
		if len(s.data) == 0 {
			continue
		}
		if _, err := f.Write(s.data); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// openActiveLocked opens the active segment for appending, writing the
// header when the file is new. Failure degrades the store.
func (st *Store) openActiveLocked(exists bool) {
	f, err := st.fs.OpenAppend(join(st.dir, st.activeName))
	if err != nil {
		st.fault(err)
		st.degrade("open active segment: " + err.Error())
		return
	}
	if !exists {
		if _, err := f.Write(st.header()); err != nil {
			st.fault(err)
			f.Close()
			st.degrade("write segment header: " + err.Error())
			return
		}
	}
	st.active = f
}

// versionMatch compares a header's version-hash field.
func versionMatch(field []byte, ver [8]byte) bool {
	if len(field) < 8 {
		return false
	}
	return string(field[:8]) == string(ver[:])
}

// Put enqueues one evaluated entry for persistence. It never blocks and
// never fails: with the queue full or the tier degraded the entry is
// dropped (counted) — the disk is an optimization, not a dependency.
// Put satisfies sweep.Tier.
func (st *Store) Put(kind pdn.Kind, s pdn.Scenario, res pdn.Result) {
	if st.degraded.Load() || st.closing.Load() {
		st.dropped.Add(1)
		return
	}
	select {
	case st.queue <- entry{kind: kind, s: s, res: res}:
	default:
		st.dropped.Add(1)
	}
}

// writer drains the queue onto the active segment until Close.
func (st *Store) writer() {
	defer close(st.donec)
	for {
		select {
		case e := <-st.queue:
			st.append(e)
		case <-st.stopc:
			for {
				select {
				case e := <-st.queue:
					st.append(e)
				default:
					st.fileMu.Lock()
					st.syncLocked()
					st.fileMu.Unlock()
					return
				}
			}
		}
	}
}

// append writes one framed record to the active segment.
func (st *Store) append(e entry) {
	st.fileMu.Lock()
	defer st.fileMu.Unlock()
	if st.active == nil {
		st.dropped.Add(1)
		return
	}
	st.buf = appendRecord(st.buf[:0], e.kind, e.s, e.res)
	if _, err := st.active.Write(st.buf); err != nil {
		// The tail may now hold a torn record; the next boot's scan
		// salvages up to it. Drop this entry and count the fault.
		st.dropped.Add(1)
		st.faultLocked(err)
		return
	}
	st.consecutive = 0
	st.persisted.Add(1)
	st.unsynced++
	if st.unsynced >= st.syncEvery {
		st.syncLocked()
	}
}

// syncLocked flushes the active segment to stable storage.
func (st *Store) syncLocked() {
	if st.active == nil || st.unsynced == 0 {
		return
	}
	if err := st.active.Sync(); err != nil {
		st.faultLocked(err)
		return
	}
	st.unsynced = 0
}

// fault counts a disk fault observed outside the append path (no
// consecutive-fault tracking; scans classify per file).
func (st *Store) fault(err error) {
	st.faults.Add(1)
	st.logf("cachestore: disk fault: %v", err)
}

// faultLocked counts an append-path fault and degrades the tier after
// maxFaults consecutive ones.
func (st *Store) faultLocked(err error) {
	st.faults.Add(1)
	st.consecutive++
	st.logf("cachestore: disk fault (%d consecutive): %v", st.consecutive, err)
	if st.consecutive >= st.maxFaults {
		st.degrade(fmt.Sprintf("%d consecutive disk faults, last: %v", st.consecutive, err))
	}
}

// degrade disables the tier: the active segment is closed, future Puts are
// dropped, and /readyz reports degraded. Requests are unaffected — they
// compute. fileMu must be held.
func (st *Store) degrade(why string) {
	if st.degraded.Swap(true) {
		return
	}
	st.logf("cachestore: tier degraded (%s); serving from computation only", why)
	if st.active != nil {
		st.active.Close()
		st.active = nil
	}
}

// Purge removes every segment (including quarantined ones) and starts a
// fresh active segment, clearing a degraded state if the disk cooperates
// again. It returns the number of files removed.
func (st *Store) Purge() int {
	st.fileMu.Lock()
	defer st.fileMu.Unlock()
	if st.active != nil {
		st.active.Close()
		st.active = nil
	}
	removed := 0
	maxSeq := 0
	ents, err := st.fs.ReadDir(st.dir)
	if err != nil {
		st.fault(err)
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !(strings.HasSuffix(name, segSuffix) || strings.HasSuffix(name, quarantineSuffix) || name == "compact.tmp") {
			continue
		}
		if s := seqOf(name); s > maxSeq {
			maxSeq = s
		}
		if err := st.fs.Remove(join(st.dir, name)); err != nil {
			st.fault(err)
			continue
		}
		removed++
	}
	st.degraded.Store(false)
	st.consecutive = 0
	st.unsynced = 0
	st.activeName = segName(maxSeq + 1)
	st.openActiveLocked(false)
	return removed
}

// Close stops the writer, drains the queue to disk, syncs and closes the
// active segment. Puts after Close are dropped.
func (st *Store) Close() {
	if st.closing.Swap(true) {
		return
	}
	if st.started.Load() {
		close(st.stopc)
		<-st.donec
	}
	st.fileMu.Lock()
	defer st.fileMu.Unlock()
	if st.active != nil {
		st.active.Close()
		st.active = nil
	}
}

// Degraded reports whether the tier has been disabled by disk faults.
func (st *Store) Degraded() bool { return st.degraded.Load() }

// Dir returns the store directory.
func (st *Store) Dir() string { return st.dir }

// Stats snapshots the store's counters.
func (st *Store) Stats() Stats {
	return Stats{
		Dir:                st.dir,
		Degraded:           st.degraded.Load(),
		WarmStarted:        st.warmDone.Load(),
		Loaded:             st.loaded.Load(),
		WarmStartSeconds:   time.Duration(st.warmNanos.Load()).Seconds(),
		Persisted:          st.persisted.Load(),
		Dropped:            st.dropped.Load(),
		QueueDepth:         len(st.queue),
		QueueCap:           cap(st.queue),
		QuarantinedFiles:   st.quarFiles.Load(),
		QuarantinedRecords: st.quarRecords.Load(),
		TruncatedTails:     st.truncTails.Load(),
		StaleFiles:         st.staleFiles.Load(),
		Faults:             st.faults.Load(),
	}
}
