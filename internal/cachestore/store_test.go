package cachestore

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/pdn"
)

// collect returns an apply callback appending into entries (mutex-guarded;
// WarmStart is single-goroutine but the helper is reused under -race).
func collect() (*[]entry, func(pdn.Kind, pdn.Scenario, pdn.Result)) {
	var mu sync.Mutex
	var got []entry
	return &got, func(k pdn.Kind, s pdn.Scenario, r pdn.Result) {
		mu.Lock()
		got = append(got, entry{kind: k, s: s, res: r})
		mu.Unlock()
	}
}

// openStore opens a store over dir with test-friendly small batching.
func openStore(t *testing.T, dir, version string) *Store {
	t.Helper()
	st, err := Open(dir, Options{Version: version, SyncEvery: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// putN persists n entries and drains them to disk via Close.
func putN(t *testing.T, st *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		k, s, r := testEntry(i)
		st.Put(k, s, r)
	}
	st.Close()
	if got := st.Stats().Persisted; got != int64(n) {
		t.Fatalf("persisted %d of %d entries", got, n)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, "v1")
	if n := st.WarmStart(nil); n != 0 {
		t.Fatalf("fresh dir loaded %d records", n)
	}
	putN(t, st, 10)

	st2 := openStore(t, dir, "v1")
	got, apply := collect()
	if n := st2.WarmStart(apply); n != 10 {
		t.Fatalf("loaded %d records, want 10", n)
	}
	defer st2.Close()
	seen := map[pdn.Scenario]pdn.Result{}
	for _, e := range *got {
		seen[e.s] = e.res
	}
	for i := 0; i < 10; i++ {
		_, s, want := testEntry(i)
		res, ok := seen[s]
		if !ok {
			t.Fatalf("entry %d missing after restart", i)
		}
		if res != want {
			t.Fatalf("entry %d not bit-identical after restart", i)
		}
	}
	if st2.Degraded() {
		t.Error("store degraded after clean round trip")
	}
}

// segFiles lists dir's entries matching suffix.
func segFiles(t *testing.T, dir, suffix string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), suffix) {
			names = append(names, e.Name())
		}
	}
	return names
}

// truncateTail chops n bytes off the largest segment file, simulating a
// SIGKILL mid-append.
func truncateTail(t *testing.T, dir string, n int64) {
	t.Helper()
	segs := segFiles(t, dir, segSuffix)
	if len(segs) == 0 {
		t.Fatal("no segment files")
	}
	path := filepath.Join(dir, segs[len(segs)-1])
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-n); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCrashTornTail(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, "v1")
	st.WarmStart(nil)
	putN(t, st, 5)
	truncateTail(t, dir, 7) // mid-record: the last entry is torn

	st2 := openStore(t, dir, "v1")
	if n := st2.WarmStart(nil); n != 4 {
		t.Fatalf("loaded %d records after torn tail, want 4", n)
	}
	stats := st2.Stats()
	if stats.TruncatedTails != 1 {
		t.Errorf("TruncatedTails = %d, want 1", stats.TruncatedTails)
	}
	if stats.Degraded {
		t.Error("torn tail degraded the store; it is the normal crash signature")
	}
	st2.Close()

	// The boot compacted the salvage: a third boot sees a clean log with
	// the 4 surviving records and no truncation.
	st3 := openStore(t, dir, "v1")
	defer st3.Close()
	if n := st3.WarmStart(nil); n != 4 {
		t.Fatalf("third boot loaded %d, want 4", n)
	}
	if s := st3.Stats(); s.TruncatedTails != 0 || s.QuarantinedFiles != 0 {
		t.Errorf("third boot not clean: %+v", s)
	}
}

func TestStoreBitFlipQuarantine(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, "v1")
	st.WarmStart(nil)
	putN(t, st, 6)

	// Flip a bit inside the fourth record's payload: records 0-2 stay
	// salvageable, the file is quarantined for post-mortem.
	segs := segFiles(t, dir, segSuffix)
	path := filepath.Join(dir, segs[0])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := (len(data) - headerSize) / 6
	data[headerSize+3*recLen+frameSize+5] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openStore(t, dir, "v1")
	if n := st2.WarmStart(nil); n != 3 {
		t.Fatalf("loaded %d records after bit flip, want 3 salvaged", n)
	}
	stats := st2.Stats()
	if stats.QuarantinedFiles != 1 || stats.QuarantinedRecords != 1 {
		t.Errorf("quarantine stats = files %d records %d, want 1/1",
			stats.QuarantinedFiles, stats.QuarantinedRecords)
	}
	if stats.Degraded {
		t.Error("bit flip degraded the store; it must quarantine and continue")
	}
	if q := segFiles(t, dir, quarantineSuffix); len(q) != 1 {
		t.Errorf("quarantine files on disk = %v, want exactly one", q)
	}
	// The store keeps working after quarantine.
	k, s, r := testEntry(100)
	st2.Put(k, s, r)
	st2.Close()

	st3 := openStore(t, dir, "v1")
	defer st3.Close()
	if n := st3.WarmStart(nil); n != 4 {
		t.Fatalf("after quarantine + new write: loaded %d, want 4", n)
	}
}

func TestStoreStaleVersionInvalidation(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, "params-v1")
	st.WarmStart(nil)
	putN(t, st, 5)

	// A model-parameter change must invalidate every on-disk record.
	st2 := openStore(t, dir, "params-v2")
	if n := st2.WarmStart(nil); n != 0 {
		t.Fatalf("loaded %d stale records, want 0", n)
	}
	if s := st2.Stats(); s.StaleFiles != 1 {
		t.Errorf("StaleFiles = %d, want 1", s.StaleFiles)
	}
	putN(t, st2, 3)

	// And the old version can no longer see the new records either.
	st3 := openStore(t, dir, "params-v1")
	defer st3.Close()
	if n := st3.WarmStart(nil); n != 0 {
		t.Fatalf("old version resurrected %d records", n)
	}
}

func TestStoreGarbageFileQuarantined(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "seg-000001.seg"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	st := openStore(t, dir, "v1")
	defer st.Close()
	if n := st.WarmStart(nil); n != 0 {
		t.Fatalf("loaded %d from garbage", n)
	}
	if s := st.Stats(); s.QuarantinedFiles != 1 || s.Degraded {
		t.Errorf("stats = %+v, want 1 quarantined file and no degradation", s)
	}
}

func TestStorePurge(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir, "v1")
	st.WarmStart(nil)
	putN(t, st, 4)

	st2 := openStore(t, dir, "v1")
	st2.WarmStart(nil)
	removed := st2.Purge()
	if removed == 0 {
		t.Error("purge removed nothing")
	}
	// Purged state survives a restart: nothing comes back.
	k, s, r := testEntry(50)
	st2.Put(k, s, r)
	st2.Close()

	st3 := openStore(t, dir, "v1")
	defer st3.Close()
	if n := st3.WarmStart(nil); n != 1 {
		t.Fatalf("after purge + one write: loaded %d, want 1", n)
	}
}

func TestStoreDropsWhenQueueFull(t *testing.T) {
	st, err := Open(t.TempDir(), Options{Version: "v1", QueueLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Before WarmStart no writer drains the queue, so the third Put must
	// drop, not block — the evaluation path cannot be back-pressured.
	for i := 0; i < 5; i++ {
		k, s, r := testEntry(i)
		st.Put(k, s, r)
	}
	if d := st.Stats().Dropped; d != 3 {
		t.Errorf("Dropped = %d, want 3", d)
	}
	st.WarmStart(nil)
	st.Close()
}

func TestStorePutAfterCloseDrops(t *testing.T) {
	st := openStore(t, t.TempDir(), "v1")
	st.WarmStart(nil)
	st.Close()
	k, s, r := testEntry(0)
	st.Put(k, s, r)
	if d := st.Stats().Dropped; d != 1 {
		t.Errorf("Dropped = %d, want 1", d)
	}
}

// TestStoreConcurrentPut hammers Put from many goroutines while the writer
// drains — the -race run proves the queue handoff is clean.
func TestStoreConcurrentPut(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Version: "v1", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	st.WarmStart(nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k, s, r := testEntry(g*200 + i)
				st.Put(k, s, r)
			}
		}(g)
	}
	wg.Wait()
	st.Close()
	stats := st.Stats()
	if stats.Persisted+stats.Dropped != 1600 {
		t.Errorf("persisted %d + dropped %d != 1600", stats.Persisted, stats.Dropped)
	}

	st2, err := Open(dir, Options{Version: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if n := st2.WarmStart(nil); int64(n) != stats.Persisted {
		t.Errorf("reloaded %d records, want %d", n, stats.Persisted)
	}
}

func TestWarmStartTwicePanics(t *testing.T) {
	st := openStore(t, t.TempDir(), "v1")
	st.WarmStart(nil)
	defer st.Close()
	defer func() {
		if recover() == nil {
			t.Error("second WarmStart did not panic")
		}
	}()
	st.WarmStart(nil)
}
