package cachestore

import (
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem surface the store performs every disk operation
// through. The indirection exists for fault tolerance, not portability:
// internal/faultinject wraps any FS with rule-driven error, latency and
// torn-write injection, so the chaos suite can prove that no disk failure
// mode ever propagates into a request. Production uses OSFS.
type FS interface {
	// MkdirAll creates the store directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir lists a directory, sorted by filename (the os contract).
	ReadDir(path string) ([]os.DirEntry, error)
	// Open opens an existing file for reading.
	Open(name string) (File, error)
	// Create truncates or creates a file for writing.
	Create(name string) (File, error)
	// OpenAppend opens a file for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Rename atomically replaces newname with oldname (POSIX rename).
	Rename(oldname, newname string) error
	// Remove deletes a file.
	Remove(name string) error
}

// File is the per-file surface the store needs: sequential reads for the
// warm-start scan, appends for the segment log, Sync for durability points.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes written data to stable storage.
	Sync() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// ReadDir implements FS.
func (OSFS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }

// Open implements FS.
func (OSFS) Open(name string) (File, error) { return os.Open(name) }

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

// OpenAppend implements FS.
func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// join is filepath.Join, shared by store paths.
func join(dir, name string) string { return filepath.Join(dir, name) }
