package cachestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/domain"
	"repro/internal/pdn"
)

// On-disk format. A segment file is a 16-byte header followed by a
// sequence of framed records:
//
//	header:  8-byte magic "FWCSEG01" + 8-byte store version hash
//	record:  u32 magic | u32 payload length | u32 CRC-32 (IEEE) of payload |
//	         payload
//
// The payload is a fixed-order little-endian encoding of one cache entry —
// the (kind, scenario) key and its evaluated result. Floats are stored as
// their IEEE-754 bits, so a loaded result is bit-identical to the computed
// one and warm answers can never drift from cold ones.
//
// Integrity is per record: the CRC covers the payload, the frame length is
// bounds-checked before allocation, and decodePayload validates every
// count it indexes with, so a scan of arbitrary bytes (bit flips, torn
// writes, garbage files) classifies cleanly instead of panicking — the
// property FuzzDecodeRecord pins.
const (
	headerMagic = "FWCSEG01"
	headerSize  = 16

	recMagic     = 0xF1EC5E6D
	frameSize    = 12 // record magic + length + CRC
	maxPayload   = 1 << 16
	maxRailName  = 256
	codecVersion = "cachestore-v1" // mixed into the store version hash
)

var (
	errBadMagic    = errors.New("cachestore: bad record magic")
	errBadLength   = errors.New("cachestore: implausible record length")
	errBadChecksum = errors.New("cachestore: record checksum mismatch")
	errBadPayload  = errors.New("cachestore: malformed record payload")
)

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// appendRecord frames one cache entry onto buf.
func appendRecord(buf []byte, kind pdn.Kind, s pdn.Scenario, res pdn.Result) []byte {
	buf = appendU32(buf, recMagic)
	lenOff := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // length + CRC, patched below
	start := len(buf)
	buf = appendPayload(buf, kind, s, res)
	payload := buf[start:]
	binary.LittleEndian.PutUint32(buf[lenOff:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[lenOff+4:], crc32.ChecksumIEEE(payload))
	return buf
}

func appendPayload(buf []byte, kind pdn.Kind, s pdn.Scenario, res pdn.Result) []byte {
	buf = appendU32(buf, uint32(kind))
	for k := range s.Loads {
		l := s.Loads[k]
		buf = appendF64(buf, l.PNom)
		buf = appendF64(buf, l.VNom)
		buf = appendF64(buf, l.FL)
		buf = appendF64(buf, l.AR)
	}
	buf = appendU32(buf, uint32(s.CState))
	buf = appendF64(buf, s.PSU)

	buf = appendU32(buf, uint32(res.PDN))
	buf = appendF64(buf, res.PNomTotal)
	buf = appendF64(buf, res.PIn)
	buf = appendF64(buf, res.ETEE)
	buf = appendF64(buf, res.Breakdown.Guardband)
	buf = appendF64(buf, res.Breakdown.PowerGate)
	buf = appendF64(buf, res.Breakdown.OnChipVR)
	buf = appendF64(buf, res.Breakdown.OffChipVR)
	buf = appendF64(buf, res.Breakdown.CondCompute)
	buf = appendF64(buf, res.Breakdown.CondUncore)
	buf = appendF64(buf, res.ChipInputCurrent)
	buf = appendF64(buf, res.ComputeRailR)
	buf = appendU32(buf, uint32(res.Rails.Len()))
	for i := 0; i < res.Rails.Len(); i++ {
		r := res.Rails.At(i)
		name := r.Name
		if len(name) > maxRailName {
			name = name[:maxRailName]
		}
		buf = appendU32(buf, uint32(len(name)))
		buf = append(buf, name...)
		buf = appendF64(buf, r.VOut)
		buf = appendF64(buf, r.Current)
		buf = appendF64(buf, r.Peak)
	}
	return buf
}

// byteReader is a bounds-checked cursor over a payload; any out-of-range
// read latches fail instead of panicking.
type byteReader struct {
	b    []byte
	off  int
	fail bool
}

func (r *byteReader) u32() uint32 {
	if r.fail || r.off+4 > len(r.b) {
		r.fail = true
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *byteReader) f64() float64 {
	if r.fail || r.off+8 > len(r.b) {
		r.fail = true
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *byteReader) str(n int) string {
	if r.fail || n < 0 || n > maxRailName || r.off+n > len(r.b) {
		r.fail = true
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// decodePayload parses one record payload. It accepts exactly the bytes
// appendPayload produced — trailing garbage, short buffers, or implausible
// counts all return errBadPayload.
func decodePayload(b []byte) (kind pdn.Kind, s pdn.Scenario, res pdn.Result, err error) {
	r := &byteReader{b: b}
	kind = pdn.Kind(r.u32())
	for k := range s.Loads {
		s.Loads[k].PNom = r.f64()
		s.Loads[k].VNom = r.f64()
		s.Loads[k].FL = r.f64()
		s.Loads[k].AR = r.f64()
	}
	s.CState = domain.CState(r.u32())
	s.PSU = r.f64()

	res.PDN = pdn.Kind(r.u32())
	res.PNomTotal = r.f64()
	res.PIn = r.f64()
	res.ETEE = r.f64()
	res.Breakdown.Guardband = r.f64()
	res.Breakdown.PowerGate = r.f64()
	res.Breakdown.OnChipVR = r.f64()
	res.Breakdown.OffChipVR = r.f64()
	res.Breakdown.CondCompute = r.f64()
	res.Breakdown.CondUncore = r.f64()
	res.ChipInputCurrent = r.f64()
	res.ComputeRailR = r.f64()
	n := r.u32()
	if n > pdn.MaxRails {
		return 0, pdn.Scenario{}, pdn.Result{}, errBadPayload
	}
	for i := uint32(0); i < n && !r.fail; i++ {
		var rd pdn.RailDraw
		rd.Name = r.str(int(r.u32()))
		rd.VOut = r.f64()
		rd.Current = r.f64()
		rd.Peak = r.f64()
		if r.fail {
			break
		}
		res.Rails.Append(rd)
	}
	if r.fail || r.off != len(b) {
		return 0, pdn.Scenario{}, pdn.Result{}, errBadPayload
	}
	return kind, s, res, nil
}

// scanEnd classifies how a record scan stopped.
type scanEnd int

const (
	// endClean: the scan consumed the whole byte range.
	endClean scanEnd = iota
	// endTruncated: the range ends in a partial record — the signature of
	// a crash mid-append (SIGKILL, power loss). The good prefix is intact.
	endTruncated
	// endCorrupt: a record inside the range failed its magic, length,
	// checksum, or payload validation — bit rot or an overwritten region.
	// Nothing after the failure can be trusted.
	endCorrupt
)

func (e scanEnd) String() string {
	switch e {
	case endClean:
		return "clean"
	case endTruncated:
		return "truncated"
	default:
		return "corrupt"
	}
}

// scanRecords walks framed records in b, invoking apply for every record
// that passes checksum and payload validation, and reports how many bytes
// formed the valid prefix plus how the scan ended. It never fails the scan
// itself: salvage what is provably good, classify the rest.
func scanRecords(b []byte, apply func(kind pdn.Kind, s pdn.Scenario, res pdn.Result)) (records int, validBytes int, end scanEnd) {
	off := 0
	for {
		rest := b[off:]
		if len(rest) == 0 {
			return records, off, endClean
		}
		if len(rest) < frameSize {
			return records, off, endTruncated
		}
		if binary.LittleEndian.Uint32(rest) != recMagic {
			return records, off, endCorrupt
		}
		length := int(binary.LittleEndian.Uint32(rest[4:]))
		if length <= 0 || length > maxPayload {
			return records, off, endCorrupt
		}
		if len(rest) < frameSize+length {
			return records, off, endTruncated
		}
		payload := rest[frameSize : frameSize+length]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[8:]) {
			return records, off, endCorrupt
		}
		kind, s, res, err := decodePayload(payload)
		if err != nil {
			return records, off, endCorrupt
		}
		if apply != nil {
			apply(kind, s, res)
		}
		records++
		off += frameSize + length
	}
}

// decodeRecord parses exactly one framed record from the front of b,
// returning the remaining bytes. Used by tests and fuzzing; the store's
// scan path is scanRecords.
func decodeRecord(b []byte) (kind pdn.Kind, s pdn.Scenario, res pdn.Result, rest []byte, err error) {
	if len(b) < frameSize {
		return 0, pdn.Scenario{}, pdn.Result{}, b, fmt.Errorf("%w: %d bytes", errBadLength, len(b))
	}
	if binary.LittleEndian.Uint32(b) != recMagic {
		return 0, pdn.Scenario{}, pdn.Result{}, b, errBadMagic
	}
	length := int(binary.LittleEndian.Uint32(b[4:]))
	if length <= 0 || length > maxPayload || len(b) < frameSize+length {
		return 0, pdn.Scenario{}, pdn.Result{}, b, errBadLength
	}
	payload := b[frameSize : frameSize+length]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[8:]) {
		return 0, pdn.Scenario{}, pdn.Result{}, b, errBadChecksum
	}
	kind, s, res, err = decodePayload(payload)
	if err != nil {
		return 0, pdn.Scenario{}, pdn.Result{}, b, err
	}
	return kind, s, res, b[frameSize+length:], nil
}
