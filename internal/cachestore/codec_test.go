package cachestore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"repro/internal/domain"
	"repro/internal/pdn"
)

// testEntry builds a deterministic, fully populated cache entry; i varies
// the values so distinct entries stay distinct on disk.
func testEntry(i int) (pdn.Kind, pdn.Scenario, pdn.Result) {
	var s pdn.Scenario
	for k := range s.Loads {
		s.Loads[k].PNom = float64(i) + float64(k)*0.25
		s.Loads[k].VNom = 1.05 + float64(k)*0.01
		s.Loads[k].FL = 0.8
		s.Loads[k].AR = 0.25
	}
	s.CState = domain.C0
	s.PSU = 0.9

	var res pdn.Result
	res.PDN = pdn.IVR
	res.PNomTotal = float64(i) * 2
	res.PIn = float64(i)*2 + 1.125
	res.ETEE = 0.87
	res.Breakdown.Guardband = 0.11
	res.Breakdown.PowerGate = 0.02
	res.Breakdown.OnChipVR = 0.05
	res.Breakdown.OffChipVR = 0.03
	res.Breakdown.CondCompute = 0.01
	res.Breakdown.CondUncore = 0.005
	res.ChipInputCurrent = 3.25
	res.ComputeRailR = 0.0021
	res.Rails.Append(pdn.RailDraw{Name: "compute", VOut: 1.8, Current: 2.5, Peak: 3.0})
	res.Rails.Append(pdn.RailDraw{Name: "uncore", VOut: 1.05, Current: 0.5, Peak: 0.75})
	return pdn.IVR, s, res
}

func TestRecordRoundTrip(t *testing.T) {
	kind, s, res := testEntry(7)
	b := appendRecord(nil, kind, s, res)
	gotKind, gotS, gotRes, rest, err := decodeRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes", len(rest))
	}
	if gotKind != kind {
		t.Errorf("kind = %v, want %v", gotKind, kind)
	}
	if gotS != s {
		t.Errorf("scenario round trip mismatch:\n got %+v\nwant %+v", gotS, s)
	}
	// The result must be bit-identical — warm answers may never drift
	// from cold ones.
	if !reflect.DeepEqual(gotRes, res) {
		t.Errorf("result round trip mismatch:\n got %+v\nwant %+v", gotRes, res)
	}
}

func TestRecordRoundTripEmptyRails(t *testing.T) {
	kind, s, res := testEntry(1)
	res.Rails = pdn.RailSet{}
	b := appendRecord(nil, kind, s, res)
	_, _, gotRes, _, err := decodeRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if gotRes.Rails.Len() != 0 {
		t.Errorf("rails = %d, want 0", gotRes.Rails.Len())
	}
}

// appendN frames n records into one byte range.
func appendN(n int) []byte {
	var b []byte
	for i := 0; i < n; i++ {
		k, s, r := testEntry(i)
		b = appendRecord(b, k, s, r)
	}
	return b
}

func TestScanClean(t *testing.T) {
	b := appendN(5)
	n, valid, end := scanRecords(b, nil)
	if n != 5 || valid != len(b) || end != endClean {
		t.Errorf("scan = (%d, %d, %v), want (5, %d, clean)", n, valid, end, len(b))
	}
}

// TestScanTruncated drops bytes off the tail — the on-disk signature of a
// crash mid-append — and expects the scan to salvage every whole record
// and classify the end as truncated, whatever the cut point.
func TestScanTruncated(t *testing.T) {
	whole := appendN(3)
	two := appendN(2)
	for cut := len(two) + 1; cut < len(whole); cut++ {
		n, valid, end := scanRecords(whole[:cut], nil)
		if n != 2 || valid != len(two) || end != endTruncated {
			t.Fatalf("cut %d: scan = (%d, %d, %v), want (2, %d, truncated)",
				cut, n, valid, end, len(two))
		}
	}
}

func TestScanCorruptMagic(t *testing.T) {
	b := appendN(3)
	one := len(appendN(1))
	// Stomp the second record's magic.
	binary.LittleEndian.PutUint32(b[one:], 0xDEADBEEF)
	n, valid, end := scanRecords(b, nil)
	if n != 1 || valid != one || end != endCorrupt {
		t.Errorf("scan = (%d, %d, %v), want (1, %d, corrupt)", n, valid, end, one)
	}
}

func TestScanCorruptChecksum(t *testing.T) {
	b := appendN(3)
	one := len(appendN(1))
	// Flip one payload bit inside the second record.
	b[one+frameSize+3] ^= 0x40
	n, valid, end := scanRecords(b, nil)
	if n != 1 || valid != one || end != endCorrupt {
		t.Errorf("scan = (%d, %d, %v), want (1, %d, corrupt)", n, valid, end, one)
	}
}

func TestScanImplausibleLength(t *testing.T) {
	b := appendN(1)
	binary.LittleEndian.PutUint32(b[4:], maxPayload+1)
	if _, _, end := scanRecords(b, nil); end != endCorrupt {
		t.Errorf("end = %v, want corrupt", end)
	}
	binary.LittleEndian.PutUint32(b[4:], 0)
	if _, _, end := scanRecords(b, nil); end != endCorrupt {
		t.Errorf("zero length: end = %v, want corrupt", end)
	}
}

func TestDecodeRecordErrors(t *testing.T) {
	k, s, r := testEntry(0)
	good := appendRecord(nil, k, s, r)

	if _, _, _, _, err := decodeRecord(good[:5]); !errors.Is(err, errBadLength) {
		t.Errorf("short frame: err = %v, want errBadLength", err)
	}

	bad := bytes.Clone(good)
	bad[0] ^= 0xFF
	if _, _, _, _, err := decodeRecord(bad); !errors.Is(err, errBadMagic) {
		t.Errorf("bad magic: err = %v, want errBadMagic", err)
	}

	bad = bytes.Clone(good)
	bad[len(bad)-1] ^= 0x01
	if _, _, _, _, err := decodeRecord(bad); !errors.Is(err, errBadChecksum) {
		t.Errorf("flipped payload: err = %v, want errBadChecksum", err)
	}
}

// TestDecodePayloadRejectsTrailingGarbage pins that a payload must be
// consumed exactly: extra bytes after a structurally valid entry are
// corruption, not padding.
func TestDecodePayloadRejectsTrailingGarbage(t *testing.T) {
	k, s, r := testEntry(0)
	full := appendRecord(nil, k, s, r)
	payload := append(bytes.Clone(full[frameSize:]), 0x00)
	if _, _, _, err := decodePayload(payload); !errors.Is(err, errBadPayload) {
		t.Errorf("err = %v, want errBadPayload", err)
	}
}

func TestDecodePayloadRejectsRailOverflow(t *testing.T) {
	k, s, r := testEntry(0)
	r.Rails = pdn.RailSet{}
	full := appendRecord(nil, k, s, r)
	payload := bytes.Clone(full[frameSize:])
	// The rail count is the last u32 before the (empty) rail list.
	binary.LittleEndian.PutUint32(payload[len(payload)-4:], pdn.MaxRails+1)
	if _, _, _, err := decodePayload(payload); !errors.Is(err, errBadPayload) {
		t.Errorf("err = %v, want errBadPayload", err)
	}
}
