package cachestore

import (
	"bytes"
	"testing"

	"repro/internal/pdn"
)

// FuzzDecodeRecord pins the codec's core robustness property: arbitrary
// bytes — bit flips, torn writes, hostile garbage — must classify cleanly
// (decode error or scan end state), never panic or over-read. Any input
// that decodes successfully must also re-encode to the identical frame, so
// the decoder cannot accept a frame the encoder would not produce.
func FuzzDecodeRecord(f *testing.F) {
	// Seed with real frames so the fuzzer starts at the interesting
	// boundary: structurally valid records it can mutate.
	for i := 0; i < 3; i++ {
		k, s, r := testEntry(i)
		f.Add(appendRecord(nil, k, s, r))
	}
	k, s, r := testEntry(0)
	r.Rails = pdn.RailSet{}
	f.Add(appendRecord(nil, k, s, r))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, b []byte) {
		kind, sc, res, rest, err := decodeRecord(b)
		if err != nil {
			return
		}
		if len(rest) > len(b) {
			t.Fatalf("rest grew: %d > %d", len(rest), len(b))
		}
		// Canonical re-encode: a frame the decoder accepts must be exactly
		// what the encoder emits for the decoded values.
		consumed := b[:len(b)-len(rest)]
		re := appendRecord(nil, kind, sc, res)
		if !bytes.Equal(re, consumed) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", consumed, re)
		}

		// The scan path must agree with the record path on valid input.
		n, valid, _ := scanRecords(consumed, nil)
		if n != 1 || valid != len(consumed) {
			t.Fatalf("scanRecords = (%d, %d) on a valid record of %d bytes", n, valid, len(consumed))
		}
	})
}
