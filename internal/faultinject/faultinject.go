// Package faultinject wraps a cachestore.FS with rule-driven fault
// injection — errors, latency, and torn (partial) writes — so the chaos
// suite can prove the serving stack degrades instead of failing when the
// disk misbehaves. Rules are deterministic: they match by operation and
// path substring, can skip the first N matches and cap how often they
// fire, so a test injects exactly the failure it means to.
package faultinject

import (
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/cachestore"
)

// Op names one filesystem operation class for rule matching.
type Op string

// The injectable operation classes.
const (
	OpMkdirAll Op = "mkdirall"
	OpReadDir  Op = "readdir"
	OpOpen     Op = "open"
	OpCreate   Op = "create"
	OpAppend   Op = "append"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpRead     Op = "read"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	// OpAny matches every operation.
	OpAny Op = "*"
)

// Rule describes one injected fault. The zero Path matches every path.
type Rule struct {
	// Op selects the operation class (OpAny for all).
	Op Op
	// Path, when non-empty, requires the operation's path to contain it.
	Path string
	// After skips the first After matching operations before firing.
	After int
	// Count caps how many times the rule fires; 0 means unlimited.
	Count int
	// Delay sleeps the operation before it proceeds (latency injection).
	// A Delay with a nil Err injects latency only.
	Delay time.Duration
	// Err, when non-nil, is returned by the operation.
	Err error
	// TornBytes, for write operations with a non-nil Err, writes that
	// many bytes of the buffer through to the real file before failing —
	// a torn write, the on-disk signature of a crash mid-append.
	TornBytes int

	mu    sync.Mutex
	seen  int
	fired int
}

// match decides whether the rule fires for (op, path) and advances its
// counters.
func (r *Rule) match(op Op, path string) bool {
	if r.Op != OpAny && r.Op != op {
		return false
	}
	if r.Path != "" && !strings.Contains(path, r.Path) {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seen++
	if r.seen <= r.After {
		return false
	}
	if r.Count > 0 && r.fired >= r.Count {
		return false
	}
	r.fired++
	return true
}

// Fired reports how many times the rule has injected its fault.
func (r *Rule) Fired() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fired
}

// FS wraps a base filesystem with the configured rules. It implements
// cachestore.FS.
type FS struct {
	base  cachestore.FS
	rules []*Rule
	count int64
	mu    sync.Mutex
}

// New wraps base (nil means the real filesystem) with rules.
func New(base cachestore.FS, rules ...*Rule) *FS {
	if base == nil {
		base = cachestore.OSFS{}
	}
	return &FS{base: base, rules: rules}
}

// Injected reports the total number of faults injected (errors and torn
// writes; latency-only matches count too).
func (f *FS) Injected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.count
}

// check runs the rule table for (op, path): applies the first matching
// rule's delay and returns its error (which may be nil for latency-only
// rules). The torn-write variant is handled by the file wrapper.
func (f *FS) check(op Op, path string) (*Rule, error) {
	for _, r := range f.rules {
		if !r.match(op, path) {
			continue
		}
		f.mu.Lock()
		f.count++
		f.mu.Unlock()
		if r.Delay > 0 {
			time.Sleep(r.Delay)
		}
		return r, r.Err
	}
	return nil, nil
}

// MkdirAll implements cachestore.FS.
func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if _, err := f.check(OpMkdirAll, path); err != nil {
		return err
	}
	return f.base.MkdirAll(path, perm)
}

// ReadDir implements cachestore.FS.
func (f *FS) ReadDir(path string) ([]os.DirEntry, error) {
	if _, err := f.check(OpReadDir, path); err != nil {
		return nil, err
	}
	return f.base.ReadDir(path)
}

// Open implements cachestore.FS.
func (f *FS) Open(name string) (cachestore.File, error) {
	if _, err := f.check(OpOpen, name); err != nil {
		return nil, err
	}
	file, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	return &injectFile{fs: f, name: name, file: file}, nil
}

// Create implements cachestore.FS.
func (f *FS) Create(name string) (cachestore.File, error) {
	if _, err := f.check(OpCreate, name); err != nil {
		return nil, err
	}
	file, err := f.base.Create(name)
	if err != nil {
		return nil, err
	}
	return &injectFile{fs: f, name: name, file: file}, nil
}

// OpenAppend implements cachestore.FS.
func (f *FS) OpenAppend(name string) (cachestore.File, error) {
	if _, err := f.check(OpAppend, name); err != nil {
		return nil, err
	}
	file, err := f.base.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &injectFile{fs: f, name: name, file: file}, nil
}

// Rename implements cachestore.FS.
func (f *FS) Rename(oldname, newname string) error {
	if _, err := f.check(OpRename, oldname); err != nil {
		return err
	}
	return f.base.Rename(oldname, newname)
}

// Remove implements cachestore.FS.
func (f *FS) Remove(name string) error {
	if _, err := f.check(OpRemove, name); err != nil {
		return err
	}
	return f.base.Remove(name)
}

// injectFile applies read/write/sync/close rules with the file's path.
type injectFile struct {
	fs   *FS
	name string
	file cachestore.File
}

func (f *injectFile) Read(p []byte) (int, error) {
	if _, err := f.fs.check(OpRead, f.name); err != nil {
		return 0, err
	}
	return f.file.Read(p)
}

func (f *injectFile) Write(p []byte) (int, error) {
	rule, err := f.fs.check(OpWrite, f.name)
	if err != nil {
		if rule != nil && rule.TornBytes > 0 {
			n := rule.TornBytes
			if n > len(p) {
				n = len(p)
			}
			wrote, werr := f.file.Write(p[:n])
			if werr != nil {
				return wrote, werr
			}
			return wrote, err
		}
		return 0, err
	}
	return f.file.Write(p)
}

func (f *injectFile) Sync() error {
	if _, err := f.fs.check(OpSync, f.name); err != nil {
		return err
	}
	return f.file.Sync()
}

func (f *injectFile) Close() error {
	if _, err := f.fs.check(OpClose, f.name); err != nil {
		f.file.Close() //nolint:errcheck // injected close error wins
		return err
	}
	return f.file.Close()
}
