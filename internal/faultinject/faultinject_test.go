package faultinject_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cachestore"
	"repro/internal/domain"
	"repro/internal/faultinject"
	"repro/internal/pdn"
)

var errBoom = errors.New("injected disk fault")

// testEntry mirrors the cachestore test fixture: one fully populated
// (kind, scenario, result) triple, varied by i.
func testEntry(i int) (pdn.Kind, pdn.Scenario, pdn.Result) {
	var s pdn.Scenario
	s.Loads[0].PNom = float64(i) + 0.5
	s.Loads[0].VNom = 1.05
	s.Loads[0].FL = 0.8
	s.Loads[0].AR = 0.25
	s.CState = domain.C0
	s.PSU = 0.9
	var res pdn.Result
	res.PDN = pdn.IVR
	res.PNomTotal = float64(i) * 2
	res.PIn = float64(i)*2 + 1
	res.ETEE = 0.87
	res.Rails.Append(pdn.RailDraw{Name: "compute", VOut: 1.8, Current: 2.5, Peak: 3.0})
	return pdn.IVR, s, res
}

func TestRuleMatching(t *testing.T) {
	r := &faultinject.Rule{Op: faultinject.OpWrite, Path: "seg-", After: 1, Count: 2, Err: errBoom}
	fs := faultinject.New(nil, r)
	dir := t.TempDir()
	f, err := fs.Create(dir + "/seg-000001.seg")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Write 1 is skipped (After), writes 2-3 fire (Count), write 4 passes.
	for i, wantErr := range []bool{false, true, true, false} {
		_, err := f.Write([]byte("x"))
		if gotErr := err != nil; gotErr != wantErr {
			t.Errorf("write %d: err = %v, want error %v", i+1, err, wantErr)
		}
	}
	if r.Fired() != 2 {
		t.Errorf("Fired = %d, want 2", r.Fired())
	}
	// Wrong op and wrong path never match.
	if err := f.Sync(); err != nil {
		t.Errorf("sync hit a write rule: %v", err)
	}
	g, err := fs.Create(dir + "/other.txt")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Write([]byte("x")); err != nil {
		t.Errorf("unmatched path injected: %v", err)
	}
}

func TestLatencyInjection(t *testing.T) {
	r := &faultinject.Rule{Op: faultinject.OpMkdirAll, Delay: 30 * time.Millisecond, Count: 1}
	fs := faultinject.New(nil, r)
	begin := time.Now()
	if err := fs.MkdirAll(t.TempDir()+"/sub", 0o755); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(begin); d < 30*time.Millisecond {
		t.Errorf("MkdirAll returned after %v, want >= 30ms", d)
	}
	if fs.Injected() != 1 {
		t.Errorf("Injected = %d, want 1", fs.Injected())
	}
}

// waitFor polls cond for up to 5s — fault handling runs on the store's
// writer goroutine, so observation is asynchronous.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestStoreDegradesAfterRepeatedFaults drives the full degradation
// contract: every write fails, the store absorbs MaxFaults of them, then
// disables itself — and Put keeps being a harmless no-op throughout.
func TestStoreDegradesAfterRepeatedFaults(t *testing.T) {
	fs := faultinject.New(nil, &faultinject.Rule{Op: faultinject.OpWrite, Path: ".seg", After: 1, Err: errBoom})
	st, err := cachestore.Open(t.TempDir(), cachestore.Options{
		Version: "v1", FS: fs, MaxFaults: 3, SyncEvery: 1, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.WarmStart(nil) // header write passes (After: 1)

	for i := 0; i < 10; i++ {
		k, s, r := testEntry(i)
		st.Put(k, s, r)
	}
	waitFor(t, "degradation", st.Degraded)
	stats := st.Stats()
	if stats.Faults < 3 {
		t.Errorf("Faults = %d, want >= 3", stats.Faults)
	}
	if stats.Persisted != 0 {
		t.Errorf("Persisted = %d through a failing disk", stats.Persisted)
	}
	// Degraded Puts drop immediately.
	before := st.Stats().Dropped
	k, s, r := testEntry(99)
	st.Put(k, s, r)
	if st.Stats().Dropped != before+1 {
		t.Error("degraded Put did not drop")
	}
}

// TestStoreSurvivesTotalDiskFailure fails every single filesystem
// operation from the first moment: Open must still succeed-or-error
// cleanly, WarmStart must not panic, and the store must come up degraded
// but alive.
func TestStoreSurvivesTotalDiskFailure(t *testing.T) {
	fs := faultinject.New(nil, &faultinject.Rule{Op: faultinject.OpAny, After: 1, Err: errBoom})
	// MkdirAll passes (After: 1) so Open succeeds; everything after fails.
	st, err := cachestore.Open(t.TempDir(), cachestore.Options{
		Version: "v1", FS: fs, MaxFaults: 2, SyncEvery: 1, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if n := st.WarmStart(nil); n != 0 {
		t.Errorf("loaded %d from a dead disk", n)
	}
	if !st.Degraded() {
		t.Error("store not degraded with every disk op failing")
	}
	for i := 0; i < 5; i++ {
		k, s, r := testEntry(i)
		st.Put(k, s, r) // must not block or panic
	}
}

// TestTornWriteSalvage injects a torn append — the crash signature — and
// proves the next boot salvages everything before the tear.
func TestTornWriteSalvage(t *testing.T) {
	dir := t.TempDir()
	// Writes to the active segment: 1 = header, 2-3 = records, 4 = torn.
	rule := &faultinject.Rule{Op: faultinject.OpWrite, Path: ".seg", After: 3, Count: 1, TornBytes: 9, Err: errBoom}
	fs := faultinject.New(nil, rule)
	st, err := cachestore.Open(dir, cachestore.Options{Version: "v1", FS: fs, SyncEvery: 1, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	st.WarmStart(nil)
	for i := 0; i < 3; i++ {
		k, s, r := testEntry(i)
		st.Put(k, s, r)
	}
	waitFor(t, "torn write", func() bool { return rule.Fired() == 1 })
	st.Close()
	if got := st.Stats().Persisted; got != 2 {
		t.Fatalf("persisted %d records, want 2 whole ones", got)
	}

	// Reboot on the real filesystem: the 9 torn bytes are a partial record
	// at the tail, classified as a crash and salvaged around.
	st2, err := cachestore.Open(dir, cachestore.Options{Version: "v1", Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if n := st2.WarmStart(nil); n != 2 {
		t.Fatalf("loaded %d records after torn write, want 2", n)
	}
	if s := st2.Stats(); s.TruncatedTails != 1 || s.Degraded {
		t.Errorf("stats after torn write = %+v, want 1 truncated tail, no degradation", s)
	}
}
