package optimize

import "sort"

// frontier is the incremental Pareto archive over the spec's selected
// objectives. Insertion order is deterministic (candidates arrive in key
// order within each batch), so the archive's contents are a pure function
// of the evaluated set.
type frontier struct {
	objs []Objective
	pts  []Point
}

func newFrontier(objs []Objective) *frontier {
	return &frontier{objs: objs}
}

// dominatesEq reports whether a is at least as good as b on every
// selected objective.
func (f *frontier) dominatesEq(a, b Scores) bool {
	for _, o := range f.objs {
		if a.key(o) > b.key(o) {
			return false
		}
	}
	return true
}

// dominates reports strict Pareto dominance: at least as good everywhere
// and strictly better somewhere.
func (f *frontier) dominates(a, b Scores) bool {
	strict := false
	for _, o := range f.objs {
		ka, kb := a.key(o), b.key(o)
		if ka > kb {
			return false
		}
		if ka < kb {
			strict = true
		}
	}
	return strict
}

// add offers a feasible candidate to the archive. It reports whether the
// candidate entered the frontier; entering evicts every point it strictly
// dominates. A candidate matched or dominated by an existing point is
// rejected — ties keep the earlier arrival, which is the lower key within
// a batch, keeping the archive minimal and deterministic.
func (f *frontier) add(p Point) bool {
	for _, q := range f.pts {
		if f.dominatesEq(q.Scores, p.Scores) {
			return false
		}
	}
	keep := f.pts[:0]
	for _, q := range f.pts {
		if !f.dominates(p.Scores, q.Scores) {
			keep = append(keep, q)
		}
	}
	f.pts = append(keep, p)
	return true
}

// size is the current frontier cardinality.
func (f *frontier) size() int { return len(f.pts) }

// sorted returns the frontier ordered by candidate key — the reported,
// reproducible order.
func (f *frontier) sorted() []Point {
	out := make([]Point, len(f.pts))
	copy(out, f.pts)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}
