package optimize

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/perf"
	"repro/internal/sweep"
	"repro/internal/workload"
)

// Engine runs design-space searches against one platform model and base
// parameter set. It is safe for concurrent use; the zero value needs
// Platform and Base filled in. The Cache, when non-nil, memoizes
// base-parameter candidate evaluations — scaled-parameter candidates
// always bypass it, because the cache keys on (kind, scenario) and knows
// nothing of Params, and sharing it would poison every other consumer.
type Engine struct {
	// Platform is the modeled SoC; nil means the paper's client platform.
	Platform *domain.Platform
	// Base is the parameter set the candidate scales apply to.
	Base pdn.Params
	// Cache, when non-nil, is the shared (kind, scenario) evaluation
	// cache for unscaled candidates.
	Cache *sweep.Cache
	// Workers bounds candidate-scoring concurrency; <= 0 means
	// GOMAXPROCS (the sweep.MapCtx convention). Results are identical
	// either way — candidates score independently and collect by index.
	Workers int
	// arena recycles each candidate's scenario grid + result blocks, so
	// a steady search loop settles into zero grid allocations per
	// candidate.
	arena pdn.GridArena
}

// search is one Run's immutable context: the normalized spec, the scoring
// scenario grid layout, the baseline reference, and the cost tables.
type search struct {
	e    *Engine
	plat *domain.Platform
	spec Spec
	// scenarios is the per-candidate scoring grid: the SPEC CPU2006
	// operating points at the spec's TDP first, then the battery-life
	// package states in canonical order. Every candidate evaluates this
	// exact grid, so scores are comparable point for point.
	scenarios []pdn.Scenario
	suite     workload.Suite
	states    []domain.CState
	battery   []workload.BatteryWorkload
	// basePIn is the base-parameter IVR baseline's input power per perf
	// scenario — the savedIn reference of the §3.3 performance model.
	basePIn []float64
	// baseBOM/baseArea are cost.Normalized's per-kind tables at the TDP
	// (normalized to base IVR); candidate scale premiums multiply them.
	baseBOM, baseArea map[pdn.Kind]float64
	// ref is the base-parameter IVR candidate's own scores, the
	// normalization the annealing energy uses so objectives with
	// different units mix on one scale.
	ref Scores
}

// scored is one candidate's evaluation outcome. ok=false marks an
// infeasible candidate: its scaled parameters rejected model
// construction, failed evaluation, or produced a non-finite score.
type scored struct {
	sc Scores
	ok bool
}

// batteryStates is the package-state axis of the battery score, in
// canonical (domain.CStates) order — never map-iteration order, because
// the score is a float sum and summation order is part of the
// determinism contract.
func batteryStates() []domain.CState {
	return []domain.CState{domain.C0MIN, domain.C2, domain.C8}
}

// Run executes the search described by spec. emit, when non-nil, receives
// incremental events (progress per batch, each frontier entrant) on the
// searching goroutine; returning a non-nil error from emit cancels the
// search and Run returns that error. Cancelling ctx aborts the search
// with context.Cause(ctx).
func (e *Engine) Run(ctx context.Context, spec Spec, emit func(Event) error) (Result, error) {
	ns, err := spec.normalized()
	if err != nil {
		return Result{}, err
	}
	s, err := e.newSearch(ctx, ns)
	if err != nil {
		return Result{}, err
	}
	if ns.Strategy == Exhaustive {
		return s.runExhaustive(ctx, emit)
	}
	return s.runAnneal(ctx, emit)
}

// newSearch builds the per-run scoring context: the scenario grid, the
// IVR baseline sweep (through the shared cache — these are base-parameter
// evaluations), the cost tables, and the reference scores.
func (e *Engine) newSearch(ctx context.Context, spec Spec) (*search, error) {
	plat := e.Platform
	if plat == nil {
		plat = domain.NewClientPlatform()
	}
	s := &search{
		e:       e,
		plat:    plat,
		spec:    spec,
		suite:   workload.SPECCPU2006(),
		states:  batteryStates(),
		battery: workload.BatteryLifeWorkloads(),
	}
	s.scenarios = make([]pdn.Scenario, 0, len(s.suite.Workloads)+len(s.states))
	for _, w := range s.suite.Workloads {
		sc, err := workload.TDPScenario(plat, spec.TDP, w.Type, w.AR)
		if err != nil {
			return nil, fmt.Errorf("optimize: baseline scenario %s: %w", w.Name, err)
		}
		s.scenarios = append(s.scenarios, sc)
	}
	for _, st := range s.states {
		s.scenarios = append(s.scenarios, workload.CStateScenario(plat, st))
	}
	var err error
	s.baseBOM, s.baseArea, err = cost.Normalized(plat, spec.TDP)
	if err != nil {
		return nil, fmt.Errorf("optimize: cost model: %w", err)
	}
	base, err := pdn.New(pdn.IVR, e.Base)
	if err != nil {
		return nil, fmt.Errorf("optimize: IVR baseline: %w", err)
	}
	lease := e.arena.Get()
	defer lease.Release()
	g := lease.Grid()
	for _, sc := range s.scenarios {
		g.Append(sc)
	}
	out := lease.Results(g.Len())
	if err := sweep.GridMapCtx(ctx, e.Workers, e.Cache, base, g, out, 0); err != nil {
		return nil, fmt.Errorf("optimize: baseline sweep: %w", err)
	}
	s.basePIn = make([]float64, len(s.suite.Workloads))
	for i := range s.suite.Workloads {
		s.basePIn[i] = out[i].PIn
	}
	refCfg := Config{Kind: pdn.IVR, LoadlineScale: 1, GuardbandScale: 1, VRScale: 1}
	ref, ok := s.scoresFrom(refCfg, out)
	if !ok {
		return nil, fmt.Errorf("optimize: IVR baseline produced non-finite scores")
	}
	s.ref = ref
	return s, nil
}

// score evaluates one candidate over the scoring grid and reduces the
// results to its four objective values. Every failure mode — invalid
// scaled parameters, a point the model rejects, a non-finite score —
// returns ok=false: a broken candidate is infeasible, never a search
// error (the search must survive hostile corners of the space).
func (s *search) score(cfg Config) scored {
	params := scaleParams(s.e.Base, cfg)
	lease := s.e.arena.Get()
	defer lease.Release()
	g := lease.Grid()
	for _, sc := range s.scenarios {
		g.Append(sc)
	}
	out := lease.Results(g.Len())
	if cfg.Kind == pdn.FlexWatts {
		// Oracle-mode bound, predictor-free: the hybrid runs whichever
		// mode draws less input power at each point — the bound Algorithm
		// 1's predictor approaches (§6). Two leases because one lease
		// reuses a single backing result block.
		m := core.NewModel(params)
		lease2 := s.e.arena.Get()
		defer lease2.Release()
		alt := lease2.Results(g.Len())
		if m.EvaluateGridMode(g, out, core.IVRMode) != nil {
			return scored{}
		}
		if m.EvaluateGridMode(g, alt, core.LDOMode) != nil {
			return scored{}
		}
		for i := range out {
			if alt[i].PIn < out[i].PIn {
				out[i] = alt[i]
			}
		}
	} else {
		m, err := pdn.New(cfg.Kind, params)
		if err != nil {
			return scored{}
		}
		cache := s.e.Cache
		if !cfg.baseScales() {
			// The cache keys on (kind, scenario) only; a scaled-parameter
			// result stored under that key would be served to everyone.
			// The nil-cache path still runs the same batch kernel.
			cache = nil
		}
		if cache.EvaluateGrid(m, g, out) != nil {
			return scored{}
		}
	}
	sc, ok := s.scoresFrom(cfg, out)
	return scored{sc: sc, ok: ok}
}

// scoresFrom reduces a candidate's grid results to its objective values.
func (s *search) scoresFrom(cfg Config, out []pdn.Result) (Scores, bool) {
	np := len(s.suite.Workloads)
	// Performance: per workload, the input power the candidate saves
	// against the IVR baseline converts to domain-level budget at the
	// candidate's own ETEE, the power-frequency curve inverts it to a
	// clock ratio, and scalability maps that to performance (§3.3).
	var perfSum float64
	for i, w := range s.suite.Workloads {
		saved := s.basePIn[i] - out[i].PIn
		delta := saved * out[i].ETEE
		ratio := perf.FreqRatioForBudget(s.plat, s.spec.TDP, w.Type, delta)
		perfSum += 1 + w.Scalability*(ratio-1)
	}
	perfScore := perfSum / float64(np)
	// Battery: mean over the §7.1 workloads of the residency-weighted
	// battery drain, states visited in canonical order.
	var batSum float64
	for _, w := range s.battery {
		var p float64
		for j, st := range s.states {
			res := w.Residency[st]
			if res == 0 {
				continue
			}
			r := out[np+j]
			p += r.PNomTotal * res / r.ETEE
		}
		batSum += p
	}
	bat := batSum / float64(len(s.battery))
	sc := Scores{
		Cost:         s.baseBOM[cfg.Kind] * costPremium(cfg),
		Area:         s.baseArea[cfg.Kind] * areaPremium(cfg),
		BatteryPower: bat,
		Performance:  perfScore,
	}
	return sc, sc.finite()
}

// send delivers one event to the caller's callback.
func send(emit func(Event) error, ev Event) error {
	if emit == nil {
		return nil
	}
	return emit(ev)
}
