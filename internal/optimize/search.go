package optimize

import (
	"context"
	"math"
	"math/rand"

	"repro/internal/sweep"
)

// Batch and annealing schedule constants. All fixed: they shape the
// search trajectory, so none may derive from the machine.
const (
	// scoreBatch is how many candidates one sweep.MapCtx dispatch scores;
	// big enough to keep a pool busy, small enough for responsive
	// progress events and prompt cancellation.
	scoreBatch = 64
	// annealT0 is the initial temperature on the normalized energy scale
	// (energies are sums of scores normalized by the IVR reference, so
	// typical deltas are well under 1).
	annealT0 = 0.5
	// annealCooling is the per-round geometric cooling factor.
	annealCooling = 0.95
	// seedMix spreads chain indices across the seed space (the 64-bit
	// golden ratio, the usual SplitMix64 increment).
	seedMix = 0x9E3779B97F4A7C15
)

// runExhaustive scores every candidate in key order, batching through the
// sweep pool. The frontier is exact.
func (s *search) runExhaustive(ctx context.Context, emit func(Event) error) (Result, error) {
	size := s.spec.spaceSize()
	res := Result{SpaceSize: size, Strategy: Exhaustive}
	f := newFrontier(s.spec.Objectives)
	for lo := 0; lo < size; lo += scoreBatch {
		hi := lo + scoreBatch
		if hi > size {
			hi = size
		}
		batch, err := sweep.MapCtx(ctx, s.e.Workers, hi-lo, func(i int) (scored, error) {
			return s.score(s.spec.config(lo + i)), nil
		})
		if err != nil {
			return Result{}, err
		}
		for i, cs := range batch {
			res.Evaluated++
			if err := s.offer(emit, f, lo+i, cs, &res); err != nil {
				return Result{}, err
			}
		}
		if err := send(emit, Event{
			Kind: EventProgress, Evaluated: res.Evaluated,
			SpaceSize: size, FrontierSize: f.size(),
		}); err != nil {
			return Result{}, err
		}
	}
	res.Frontier = f.sorted()
	return res, nil
}

// offer books one evaluated candidate: feasible candidates are offered to
// the frontier, and entrants are reported to the caller.
func (s *search) offer(emit func(Event) error, f *frontier, key int, cs scored, res *Result) error {
	if !cs.ok || !s.spec.feasible(cs.sc) {
		return nil
	}
	p := Point{Key: key, Config: s.spec.config(key), Scores: cs.sc}
	if !f.add(p) {
		return nil
	}
	return send(emit, Event{
		Kind: EventFrontier, Evaluated: res.Evaluated,
		SpaceSize: res.SpaceSize, FrontierSize: f.size(), Point: p,
	})
}

// runAnneal walks Spec.Chains Metropolis chains over the candidate
// lattice under a geometric cooling schedule, spending Spec.Budget
// evaluations. Each round every chain proposes a lattice neighbor; the
// round's distinct unseen proposals score as one parallel batch
// (memoized, so revisits are free), then each chain accepts or rejects
// with its own seeded RNG. Every scored candidate — accepted or not — is
// offered to the frontier: the archive keeps what the walk merely
// brushed past.
func (s *search) runAnneal(ctx context.Context, emit func(Event) error) (Result, error) {
	size := s.spec.spaceSize()
	res := Result{SpaceSize: size, Strategy: Anneal}
	f := newFrontier(s.spec.Objectives)
	memo := make(map[int]scored, s.spec.Budget)

	nc := s.spec.Chains
	cur := make([]int, nc)
	rngs := make([]*rand.Rand, nc)
	for i := 0; i < nc; i++ {
		// Chains start spread evenly across the key space; each owns an
		// RNG derived from the spec seed, never the global source.
		cur[i] = i * size / nc
		rngs[i] = newChainRNG(s.spec.Seed, i)
	}

	// evalKeys scores the distinct unseen keys (already deduplicated, in
	// deterministic first-proposal order) as one batch and books them.
	evalKeys := func(keys []int) error {
		batch, err := sweep.MapCtx(ctx, s.e.Workers, len(keys), func(i int) (scored, error) {
			return s.score(s.spec.config(keys[i])), nil
		})
		if err != nil {
			return err
		}
		for i, cs := range batch {
			memo[keys[i]] = cs
			res.Evaluated++
			if err := s.offer(emit, f, keys[i], cs, &res); err != nil {
				return err
			}
		}
		return nil
	}

	// Round 0: the starting positions.
	if err := evalKeys(dedupe(cur, memo)); err != nil {
		return Result{}, err
	}

	// maxRounds backstops the loop when the budget cannot be spent (the
	// chains keep proposing already-scored keys in an exhausted
	// neighborhood); it is generous enough to never bind a healthy walk.
	maxRounds := 16 * (s.spec.Budget/nc + 1)
	for round := 0; res.Evaluated < s.spec.Budget && len(memo) < size && round < maxRounds; round++ {
		if err := ctx.Err(); err != nil {
			return Result{}, context.Cause(ctx)
		}
		props := make([]int, nc)
		for i := 0; i < nc; i++ {
			props[i] = s.neighbor(cur[i], rngs[i])
		}
		if err := evalKeys(dedupe(props, memo)); err != nil {
			return Result{}, err
		}
		temp := annealT0 * math.Pow(annealCooling, float64(round))
		for i := 0; i < nc; i++ {
			ea := s.energy(memo[cur[i]])
			eb := s.energy(memo[props[i]])
			// The acceptance draw happens only on an uphill move, so the
			// RNG stream consumed by a chain is a pure function of its
			// trajectory. Infeasible candidates carry +Inf energy: chains
			// never walk into them from feasible ground, but can escape
			// if stranded (eb <= ea when both are +Inf).
			if eb <= ea || rngs[i].Float64() < math.Exp((ea-eb)/temp) {
				cur[i] = props[i]
			}
		}
		if err := send(emit, Event{
			Kind: EventProgress, Evaluated: res.Evaluated,
			SpaceSize: size, FrontierSize: f.size(),
		}); err != nil {
			return Result{}, err
		}
	}
	res.Frontier = f.sorted()
	return res, nil
}

// newChainRNG derives chain i's private RNG from the spec seed with a
// SplitMix64-style mix, so chains draw independent streams and nothing
// touches the global source.
func newChainRNG(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(int64(uint64(seed) + uint64(i+1)*seedMix)))
}

// dedupe returns keys' distinct members that are not yet memoized,
// preserving first-appearance order.
func dedupe(keys []int, memo map[int]scored) []int {
	out := make([]int, 0, len(keys))
	seen := make(map[int]bool, len(keys))
	for _, k := range keys {
		if _, done := memo[k]; done || seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, k)
	}
	return out
}

// energy collapses a candidate's selected objectives to one scalar for
// the Metropolis acceptance rule: each score is normalized by the IVR
// reference so heterogeneous units mix, maximized objectives enter
// negated, and infeasible candidates are +Inf. Lower is better.
func (s *search) energy(cs scored) float64 {
	if !cs.ok || !s.spec.feasible(cs.sc) {
		return math.Inf(1)
	}
	var e float64
	for _, o := range s.spec.Objectives {
		ref := s.ref.value(o)
		if !(ref > 0) || math.IsInf(ref, 0) {
			ref = 1
		}
		t := cs.sc.value(o) / ref
		if o.Maximize() {
			t = -t
		}
		e += t
	}
	return e
}

// neighbor proposes a lattice move from key: one axis with more than one
// level steps ±1 (clamped at the edges — a clamped step is a legal
// self-proposal the acceptance rule treats as a free stay).
func (s *search) neighbor(key int, rng *rand.Rand) int {
	sp := s.spec
	dims := [4]int{len(sp.Kinds), len(sp.LoadlineScales), len(sp.GuardbandScales), len(sp.VRScales)}
	// Decompose kind-major: key = ((ki*nl + li)*ng + gi)*nv + vi.
	idx := [4]int{}
	rem := key
	idx[3] = rem % dims[3]
	rem /= dims[3]
	idx[2] = rem % dims[2]
	rem /= dims[2]
	idx[1] = rem % dims[1]
	idx[0] = rem / dims[1]
	// Collect the movable axes; the space has at least one when this is
	// called (size > chains ≥ 1 implies some axis has > 1 level; a
	// single-candidate space never reaches the proposal loop).
	var movable []int
	for a, n := range dims {
		if n > 1 {
			movable = append(movable, a)
		}
	}
	if len(movable) == 0 {
		return key
	}
	axis := movable[rng.Intn(len(movable))]
	step := 1
	if rng.Intn(2) == 0 {
		step = -1
	}
	v := idx[axis] + step
	if v < 0 {
		v = 0
	}
	if v >= dims[axis] {
		v = dims[axis] - 1
	}
	idx[axis] = v
	return ((idx[0]*dims[1]+idx[1])*dims[2]+idx[2])*dims[3] + idx[3]
}
