// Package optimize is the design-space search engine over PDN
// configurations: given a TDP and a candidate space — PDN kind × load-line
// scale × guardband scale × VR-sizing scale — it scores every candidate on
// the paper's four product axes (normalized BOM cost, normalized board
// area, battery-life average power, relative performance) and maintains
// the Pareto frontier over the objectives the caller selected, subject to
// optional constraint ceilings.
//
// Two strategies cover the two regimes of space size: exhaustive
// enumeration for small spaces (every candidate scored, the frontier is
// exact) and seeded simulated annealing for large ones (a fixed set of
// Metropolis chains walks the lattice under a geometric cooling schedule,
// spending an evaluation budget; the frontier is the best of everything
// the chains visited).
//
// Determinism is a contract, not an accident: a search is a pure function
// of (engine parameters, spec). There is no wall-clock input, no global
// RNG (each chain owns a rand.Rand seeded from Spec.Seed), map iteration
// never feeds an accumulation, and candidates are scored independently so
// the worker count cannot change a single float64 bit. Same seed, same
// spec ⇒ byte-identical results — which is what makes served responses
// cacheable and goldens possible.
package optimize

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/pdn"
)

// ErrInvalidSpec wraps every rejection of a malformed search spec; check
// with errors.Is.
var ErrInvalidSpec = errors.New("optimize: invalid spec")

// Objective is one search axis of the Pareto frontier. Cost, Area and
// BatteryPower are minimized; Performance is maximized.
type Objective int

// The four product objectives (Fig 8's columns).
const (
	// Cost is BOM cost normalized to the base-parameter IVR PDN (Fig 8d).
	Cost Objective = iota
	// Area is board area normalized to the base-parameter IVR PDN (Fig 8e).
	Area
	// BatteryPower is the mean battery drain (watts) over the §7.1
	// battery-life workloads; lower is longer battery life.
	BatteryPower
	// Performance is the SPEC CPU2006 suite-mean relative performance
	// against the base-parameter IVR PDN (Fig 7's normalization).
	Performance
)

// Objectives lists every objective in canonical order.
func Objectives() []Objective {
	return []Objective{Cost, Area, BatteryPower, Performance}
}

// String returns the wire spelling of the objective.
func (o Objective) String() string {
	switch o {
	case Cost:
		return "cost"
	case Area:
		return "area"
	case BatteryPower:
		return "battery"
	case Performance:
		return "performance"
	default:
		return fmt.Sprintf("Objective(%d)", int(o))
	}
}

// ParseObjective resolves a wire spelling ("cost", "area", "battery",
// "performance"), case-insensitively.
func ParseObjective(s string) (Objective, error) {
	for _, o := range Objectives() {
		if strings.EqualFold(strings.TrimSpace(s), o.String()) {
			return o, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown objective %q (have cost, area, battery, performance)", ErrInvalidSpec, s)
}

// Maximize reports the objective's direction: true for Performance, false
// for the cost-like objectives.
func (o Objective) Maximize() bool { return o == Performance }

// Strategy selects how the space is searched.
type Strategy int

// The search strategies.
const (
	// Auto picks Exhaustive for spaces up to AutoExhaustiveLimit
	// candidates and Anneal above.
	Auto Strategy = iota
	// Exhaustive enumerates and scores every candidate.
	Exhaustive
	// Anneal runs seeded simulated-annealing chains under an evaluation
	// budget.
	Anneal
)

// Strategies lists the selectable strategies.
func Strategies() []Strategy { return []Strategy{Auto, Exhaustive, Anneal} }

// String returns the wire spelling of the strategy.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case Exhaustive:
		return "exhaustive"
	case Anneal:
		return "anneal"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy resolves a wire spelling ("auto", "exhaustive", "anneal"),
// case-insensitively; the empty string parses to Auto.
func ParseStrategy(s string) (Strategy, error) {
	if strings.TrimSpace(s) == "" {
		return Auto, nil
	}
	for _, st := range Strategies() {
		if strings.EqualFold(strings.TrimSpace(s), st.String()) {
			return st, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown strategy %q (have auto, exhaustive, anneal)", ErrInvalidSpec, s)
}

// Search sizing limits and defaults.
const (
	// AutoExhaustiveLimit is the largest space Auto still enumerates
	// exhaustively; larger spaces anneal.
	AutoExhaustiveLimit = 2048
	// MaxSpace caps the enumerable candidate space; a spec whose axes
	// multiply beyond it is invalid rather than silently truncated.
	MaxSpace = 1 << 20
	// MaxExhaustive caps a forced-Exhaustive search.
	MaxExhaustive = 1 << 16
	// DefaultBudget is the annealing evaluation budget when Spec.Budget
	// is unset.
	DefaultBudget = 1024
	// DefaultChains is the annealing chain count when Spec.Chains is
	// unset. It is a fixed constant, never derived from GOMAXPROCS: the
	// chain count shapes the search trajectory, so machine parallelism
	// must not leak into results.
	DefaultChains = 8
	// MaxChains bounds Spec.Chains.
	MaxChains = 64
	// scaleMin/scaleMax bound every per-axis scale factor: beyond roughly
	// an order of magnitude the first-order electrical model (and the
	// cost premium heuristic) stops meaning anything.
	scaleMin = 0.1
	scaleMax = 10.0
)

// Spec describes one design-space search. The zero value is not runnable:
// TDP is required; every other field has a documented default.
type Spec struct {
	// TDP is the design point in watts (the modeled axis spans 4–50 W).
	TDP float64
	// Kinds is the PDN-architecture axis; nil means all five PDNs in the
	// paper's plotting order (IVR, MBVR, LDO, I+MBVR, FlexWatts).
	Kinds []pdn.Kind
	// LoadlineScales scales every load-line resistance in the base
	// parameter set (lower = stiffer board = less I²R loss, at a cost
	// premium). Nil means {0.8, 1, 1.25}.
	LoadlineScales []float64
	// GuardbandScales scales the three tolerance bands (lower = tighter
	// regulation = less guardband loss, at a cost premium). Nil means
	// {0.75, 1, 1.25}.
	GuardbandScales []float64
	// VRScales scales every Iccmax design limit (larger = oversized VRs,
	// shifting the efficiency curves' operating point). Nil means {1}.
	VRScales []float64
	// Objectives selects the Pareto axes; nil means all four.
	Objectives []Objective
	// Strategy picks the search algorithm; the zero value is Auto.
	Strategy Strategy
	// Seed drives the annealing chains' RNGs. Same seed, same spec ⇒
	// byte-identical results.
	Seed int64
	// Budget caps annealing candidate evaluations; <= 0 means
	// DefaultBudget. It is clamped to the space size.
	Budget int
	// Chains is the annealing chain count; <= 0 means DefaultChains.
	Chains int
	// MaxCost, MaxArea and MaxBatteryPower are feasibility ceilings on
	// the corresponding scores; <= 0 disables the ceiling.
	MaxCost, MaxArea, MaxBatteryPower float64
	// MinPerformance is a feasibility floor on relative performance;
	// <= 0 disables it.
	MinPerformance float64
}

// Config is one candidate: a PDN architecture with its parameter scales.
type Config struct {
	Kind           pdn.Kind
	LoadlineScale  float64
	GuardbandScale float64
	VRScale        float64
}

// baseScales reports whether the candidate runs the unscaled base
// parameter set — the only case whose evaluations may share the process
// cache, which keys on (kind, scenario) and knows nothing of Params.
func (c Config) baseScales() bool {
	return c.LoadlineScale == 1 && c.GuardbandScale == 1 && c.VRScale == 1
}

// Scores are one candidate's objective values. All four are always
// computed, whichever subset the spec selected, so a frontier point is
// fully described either way.
type Scores struct {
	// Cost and Area are normalized to the base-parameter IVR PDN.
	Cost, Area float64
	// BatteryPower is the mean §7.1 battery-life drain in watts.
	BatteryPower float64
	// Performance is the SPEC suite-mean relative performance vs the
	// base-parameter IVR PDN.
	Performance float64
}

// value returns the score along one objective.
func (s Scores) value(o Objective) float64 {
	switch o {
	case Cost:
		return s.Cost
	case Area:
		return s.Area
	case BatteryPower:
		return s.BatteryPower
	default:
		return s.Performance
	}
}

// key returns the score oriented so lower is always better.
func (s Scores) key(o Objective) float64 {
	v := s.value(o)
	if o.Maximize() {
		return -v
	}
	return v
}

// finite reports whether every score is a usable number. A candidate with
// a NaN or Inf score is infeasible by definition — degenerate electrical
// parameters must never poison the frontier.
func (s Scores) finite() bool {
	for _, v := range [...]float64{s.Cost, s.Area, s.BatteryPower, s.Performance} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Point is one frontier member: the candidate, its scores, and its Key —
// the candidate's index in the kind-major lexicographic enumeration of
// the space, which orders the reported frontier deterministically.
type Point struct {
	Key    int
	Config Config
	Scores Scores
}

// EventKind tags a progress callback.
type EventKind int

// The event kinds Run emits.
const (
	// EventProgress reports evaluation counts after each batch or round.
	EventProgress EventKind = iota
	// EventFrontier reports a candidate entering the Pareto frontier
	// (it may be displaced again later).
	EventFrontier
)

// Event is one incremental report from a running search.
type Event struct {
	Kind         EventKind
	Evaluated    int
	SpaceSize    int
	FrontierSize int
	// Point is the frontier entrant; valid only for EventFrontier.
	Point Point
}

// Result is a finished search: the Pareto frontier sorted by Key, how
// many candidates were scored, the enumerable space size, and the
// strategy that actually ran (Auto resolves to one of the other two).
type Result struct {
	Frontier  []Point
	Evaluated int
	SpaceSize int
	Strategy  Strategy
}

// normalized validates the spec and fills every default, returning the
// runnable copy. All errors wrap ErrInvalidSpec.
func (s Spec) normalized() (Spec, error) {
	if !(s.TDP >= 4 && s.TDP <= 50) {
		return Spec{}, fmt.Errorf("%w: tdp %g outside the modeled 4-50 W axis", ErrInvalidSpec, s.TDP)
	}
	if s.Kinds == nil {
		s.Kinds = append(pdn.Kinds(), pdn.FlexWatts)
	}
	if len(s.Kinds) == 0 {
		return Spec{}, fmt.Errorf("%w: kinds must not be empty", ErrInvalidSpec)
	}
	seenKind := map[pdn.Kind]bool{}
	for _, k := range s.Kinds {
		valid := k == pdn.FlexWatts
		for _, b := range pdn.Kinds() {
			valid = valid || k == b
		}
		if !valid {
			return Spec{}, fmt.Errorf("%w: unknown PDN kind %v", ErrInvalidSpec, k)
		}
		if seenKind[k] {
			return Spec{}, fmt.Errorf("%w: duplicate PDN kind %v", ErrInvalidSpec, k)
		}
		seenKind[k] = true
	}
	var err error
	if s.LoadlineScales, err = checkScales("loadline", s.LoadlineScales, []float64{0.8, 1, 1.25}); err != nil {
		return Spec{}, err
	}
	if s.GuardbandScales, err = checkScales("guardband", s.GuardbandScales, []float64{0.75, 1, 1.25}); err != nil {
		return Spec{}, err
	}
	if s.VRScales, err = checkScales("vr", s.VRScales, []float64{1}); err != nil {
		return Spec{}, err
	}
	if s.Objectives == nil {
		s.Objectives = Objectives()
	}
	if len(s.Objectives) == 0 {
		return Spec{}, fmt.Errorf("%w: objectives must not be empty", ErrInvalidSpec)
	}
	seenObj := map[Objective]bool{}
	for _, o := range s.Objectives {
		if o < Cost || o > Performance {
			return Spec{}, fmt.Errorf("%w: unknown objective %v", ErrInvalidSpec, o)
		}
		if seenObj[o] {
			return Spec{}, fmt.Errorf("%w: duplicate objective %v", ErrInvalidSpec, o)
		}
		seenObj[o] = true
	}
	size := len(s.Kinds) * len(s.LoadlineScales) * len(s.GuardbandScales) * len(s.VRScales)
	if size > MaxSpace {
		return Spec{}, fmt.Errorf("%w: candidate space %d exceeds the %d cap", ErrInvalidSpec, size, MaxSpace)
	}
	switch s.Strategy {
	case Auto:
		if size <= AutoExhaustiveLimit {
			s.Strategy = Exhaustive
		} else {
			s.Strategy = Anneal
		}
	case Exhaustive:
		if size > MaxExhaustive {
			return Spec{}, fmt.Errorf("%w: candidate space %d exceeds the %d exhaustive cap (use anneal)",
				ErrInvalidSpec, size, MaxExhaustive)
		}
	case Anneal:
	default:
		return Spec{}, fmt.Errorf("%w: unknown strategy %v", ErrInvalidSpec, s.Strategy)
	}
	if s.Budget <= 0 {
		s.Budget = DefaultBudget
	}
	if s.Budget > size {
		s.Budget = size
	}
	if s.Chains <= 0 {
		s.Chains = DefaultChains
	}
	if s.Chains > MaxChains {
		s.Chains = MaxChains
	}
	for name, v := range map[string]float64{
		"max_cost": s.MaxCost, "max_area": s.MaxArea,
		"max_battery_power": s.MaxBatteryPower, "min_performance": s.MinPerformance,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Spec{}, fmt.Errorf("%w: constraint %s must be finite", ErrInvalidSpec, name)
		}
	}
	return s, nil
}

// Validate checks the spec without running it — the same rules Run
// applies, exposed so a server can answer 400 before committing a
// streaming status line. All errors wrap ErrInvalidSpec.
func (s Spec) Validate() error {
	_, err := s.normalized()
	return err
}

// checkScales validates one scale axis, substituting def for nil.
func checkScales(name string, scales, def []float64) ([]float64, error) {
	if scales == nil {
		return def, nil
	}
	if len(scales) == 0 {
		return nil, fmt.Errorf("%w: %s scales must not be empty", ErrInvalidSpec, name)
	}
	for _, v := range scales {
		if math.IsNaN(v) || v < scaleMin || v > scaleMax {
			return nil, fmt.Errorf("%w: %s scale %g outside [%g, %g]", ErrInvalidSpec, name, v, scaleMin, scaleMax)
		}
	}
	return scales, nil
}

// feasible applies the spec's constraint ceilings to a finite score set.
func (s Spec) feasible(sc Scores) bool {
	if s.MaxCost > 0 && sc.Cost > s.MaxCost {
		return false
	}
	if s.MaxArea > 0 && sc.Area > s.MaxArea {
		return false
	}
	if s.MaxBatteryPower > 0 && sc.BatteryPower > s.MaxBatteryPower {
		return false
	}
	if s.MinPerformance > 0 && sc.Performance < s.MinPerformance {
		return false
	}
	return true
}

// config decodes a lexicographic key (kind-major, then load-line,
// guardband, VR scale) into its candidate.
func (s Spec) config(key int) Config {
	nv := len(s.VRScales)
	ng := len(s.GuardbandScales)
	nl := len(s.LoadlineScales)
	vi := key % nv
	key /= nv
	gi := key % ng
	key /= ng
	li := key % nl
	ki := key / nl
	return Config{
		Kind:           s.Kinds[ki],
		LoadlineScale:  s.LoadlineScales[li],
		GuardbandScale: s.GuardbandScales[gi],
		VRScale:        s.VRScales[vi],
	}
}

// spaceSize is the enumerable candidate count.
func (s Spec) spaceSize() int {
	return len(s.Kinds) * len(s.LoadlineScales) * len(s.GuardbandScales) * len(s.VRScales)
}

// scaleParams applies a candidate's scales to the base parameter set:
// load-line scale on every rail resistance, guardband scale on the three
// tolerance bands, VR scale on every Iccmax design limit.
func scaleParams(p pdn.Params, c Config) pdn.Params {
	ll, gb, vrs := c.LoadlineScale, c.GuardbandScale, c.VRScale
	p.IVRInLL *= ll
	p.LDOInLL *= ll
	p.CoresLL *= ll
	p.GfxLL *= ll
	p.SALL *= ll
	p.IOLL *= ll
	p.TOBIVR *= gb
	p.TOBMBVR *= gb
	p.TOBLDO *= gb
	p.VINIccmax *= vrs
	p.CoresIccmax *= vrs
	p.GfxIccmax *= vrs
	p.SAIccmax *= vrs
	p.IOIccmax *= vrs
	p.IVRIccmax *= vrs
	return p
}

// costPremium and areaPremium price a candidate's parameter scales as
// first-order multipliers on the kind's normalized cost model: a stiffer
// board (lower load-line) needs more copper and plane layers, a tighter
// tolerance band needs more phases and a faster control loop, and
// oversized VRs (higher Iccmax) are simply bigger parts. Exponents are
// order-of-magnitude engineering judgement, chosen so that electrical
// wins (which the grid kernel prices exactly) trade against plausible
// board-cost penalties instead of being free — without them every
// frontier would collapse to "scale everything down".
func costPremium(c Config) float64 {
	return math.Pow(1/c.LoadlineScale, 0.25) *
		math.Pow(1/c.GuardbandScale, 0.35) *
		math.Pow(c.VRScale, 0.60)
}

func areaPremium(c Config) float64 {
	return math.Pow(1/c.LoadlineScale, 0.30) *
		math.Pow(1/c.GuardbandScale, 0.25) *
		math.Pow(c.VRScale, 0.70)
}
