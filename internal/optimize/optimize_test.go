package optimize

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/pdn"
	"repro/internal/sweep"
)

func testEngine(workers int) *Engine {
	return &Engine{Base: pdn.DefaultParams(), Workers: workers}
}

// smallSpec is a tiny exhaustive space (2 kinds × 2 ll × 2 gb × 1 vr = 8).
func smallSpec() Spec {
	return Spec{
		TDP:             15,
		Kinds:           []pdn.Kind{pdn.IVR, pdn.MBVR},
		LoadlineScales:  []float64{0.9, 1},
		GuardbandScales: []float64{1, 1.25},
		VRScales:        []float64{1},
	}
}

// annealSpec is a space big enough that Auto anneals, with a budget small
// enough to keep the test fast.
func annealSpec() Spec {
	return Spec{
		TDP:             15,
		Kinds:           []pdn.Kind{pdn.IVR, pdn.MBVR, pdn.LDO, pdn.IMBVR, pdn.FlexWatts},
		LoadlineScales:  []float64{0.5, 0.625, 0.75, 0.875, 1, 1.125, 1.25, 1.375, 1.5, 1.625, 1.75, 1.875, 2, 2.25, 2.5, 2.75},
		GuardbandScales: []float64{0.5, 0.625, 0.75, 0.875, 1, 1.125, 1.25, 1.375},
		VRScales:        []float64{0.8, 1, 1.2, 1.5, 2},
		Strategy:        Anneal,
		Seed:            42,
		Budget:          96,
		Chains:          6,
	}
}

func mustRun(t *testing.T, e *Engine, spec Spec) Result {
	t.Helper()
	res, err := e.Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func marshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

func TestExhaustiveBasics(t *testing.T) {
	res := mustRun(t, testEngine(0), smallSpec())
	if res.Strategy != Exhaustive {
		t.Fatalf("strategy = %v, want Exhaustive", res.Strategy)
	}
	if res.SpaceSize != 8 || res.Evaluated != 8 {
		t.Fatalf("space/evaluated = %d/%d, want 8/8", res.SpaceSize, res.Evaluated)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("empty frontier")
	}
	for i, p := range res.Frontier {
		if i > 0 && res.Frontier[i-1].Key >= p.Key {
			t.Fatalf("frontier not sorted by key: %d then %d", res.Frontier[i-1].Key, p.Key)
		}
		if !p.Scores.finite() {
			t.Fatalf("non-finite frontier scores: %+v", p.Scores)
		}
	}
	// No frontier member may dominate another.
	f := newFrontier(Objectives())
	for _, p := range res.Frontier {
		for _, q := range res.Frontier {
			if p.Key != q.Key && f.dominatesEq(p.Scores, q.Scores) {
				t.Fatalf("frontier member %d dominates member %d", p.Key, q.Key)
			}
		}
	}
}

// TestDeterminismAcrossWorkers pins the byte-identity contract: the worker
// count must not change a single bit of the result.
func TestDeterminismAcrossWorkers(t *testing.T) {
	for _, spec := range []Spec{smallSpec(), annealSpec()} {
		var want []byte
		for _, workers := range []int{1, 2, 7} {
			got := marshal(t, mustRun(t, testEngine(workers), spec))
			if want == nil {
				want = got
				continue
			}
			if string(got) != string(want) {
				t.Fatalf("workers=%d changed the result (strategy %v)", workers, spec.Strategy)
			}
		}
	}
}

// TestAnnealSeedDeterminism pins seeded reproducibility, and that a
// different seed actually explores differently.
func TestAnnealSeedDeterminism(t *testing.T) {
	e := testEngine(0)
	a := marshal(t, mustRun(t, e, annealSpec()))
	b := marshal(t, mustRun(t, e, annealSpec()))
	if string(a) != string(b) {
		t.Fatal("same seed produced different results")
	}
	other := annealSpec()
	other.Seed = 1729
	c := mustRun(t, e, other)
	var av Result
	if err := json.Unmarshal(a, &av); err != nil {
		t.Fatal(err)
	}
	if av.Evaluated == c.Evaluated && string(marshal(t, c)) == string(a) {
		t.Fatal("different seeds produced byte-identical trajectories (suspicious)")
	}
}

func TestAnnealRespectsBudget(t *testing.T) {
	spec := annealSpec()
	res := mustRun(t, testEngine(0), spec)
	if res.Strategy != Anneal {
		t.Fatalf("strategy = %v, want Anneal", res.Strategy)
	}
	if res.Evaluated < spec.Chains || res.Evaluated > spec.Budget+spec.Chains {
		t.Fatalf("evaluated %d outside [chains, budget+chains] = [%d, %d]",
			res.Evaluated, spec.Chains, spec.Budget+spec.Chains)
	}
	for _, p := range res.Frontier {
		cfg := spec.config(p.Key)
		nspec, err := spec.normalized()
		if err != nil {
			t.Fatal(err)
		}
		if nspec.config(p.Key) != cfg {
			t.Fatalf("key %d decodes inconsistently", p.Key)
		}
		if p.Config != cfg {
			t.Fatalf("frontier point %d carries config %+v, key decodes %+v", p.Key, p.Config, cfg)
		}
	}
}

// TestAutoStrategySelection checks the Auto split point.
func TestAutoStrategySelection(t *testing.T) {
	small, err := smallSpec().normalized()
	if err != nil {
		t.Fatal(err)
	}
	if small.Strategy != Exhaustive {
		t.Fatalf("small Auto → %v, want Exhaustive", small.Strategy)
	}
	big := annealSpec()
	big.Strategy = Auto
	nbig, err := big.normalized()
	if err != nil {
		t.Fatal(err)
	}
	if nbig.Strategy != Anneal {
		t.Fatalf("big Auto → %v, want Anneal (space %d)", nbig.Strategy, nbig.spaceSize())
	}
}

// TestCancellationNoLeak cancels mid-search and checks both the error and
// that no worker goroutines outlive the call.
func TestCancellationNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	e := testEngine(4)
	sentinel := errors.New("stop now")
	ctx, cancel := context.WithCancelCause(context.Background())
	n := 0
	_, err := e.Run(ctx, annealSpec(), func(Event) error {
		n++
		if n == 3 {
			cancel(sentinel)
		}
		return nil
	})
	cancel(nil)
	if !errors.Is(err, sentinel) && !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want the cancel cause", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Fatalf("goroutines: %d before, %d after cancellation", before, g)
	}
}

// TestEmitErrorAborts pins that a failing callback stops the search.
func TestEmitErrorAborts(t *testing.T) {
	sentinel := errors.New("client went away")
	_, err := testEngine(0).Run(context.Background(), smallSpec(), func(Event) error {
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want emit error", err)
	}
}

func TestEvents(t *testing.T) {
	var frontierEvents, progressEvents int
	var lastFrontierSize int
	res, err := testEngine(0).Run(context.Background(), smallSpec(), func(ev Event) error {
		switch ev.Kind {
		case EventFrontier:
			frontierEvents++
			if ev.Point.Scores == (Scores{}) {
				return errors.New("frontier event without point")
			}
			lastFrontierSize = ev.FrontierSize
		case EventProgress:
			progressEvents++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if frontierEvents == 0 || progressEvents == 0 {
		t.Fatalf("events: %d frontier, %d progress; want both > 0", frontierEvents, progressEvents)
	}
	if lastFrontierSize < len(res.Frontier) {
		t.Fatalf("last frontier event saw size %d < final %d", lastFrontierSize, len(res.Frontier))
	}
}

// TestConstraintFiltering pins that ceilings exclude candidates and that an
// impossible constraint empties the frontier rather than erroring.
func TestConstraintFiltering(t *testing.T) {
	spec := smallSpec()
	free := mustRun(t, testEngine(0), spec)

	spec.MaxCost = 1e-9
	res := mustRun(t, testEngine(0), spec)
	if len(res.Frontier) != 0 {
		t.Fatalf("impossible MaxCost kept %d frontier points", len(res.Frontier))
	}
	if res.Evaluated != free.Evaluated {
		t.Fatalf("constraints changed evaluation count: %d vs %d", res.Evaluated, free.Evaluated)
	}

	// A binding ceiling must exclude every over-ceiling candidate.
	var maxCost float64
	for _, p := range free.Frontier {
		maxCost = math.Max(maxCost, p.Scores.Cost)
	}
	spec.MaxCost = maxCost * 0.99
	bounded := mustRun(t, testEngine(0), spec)
	for _, p := range bounded.Frontier {
		if p.Scores.Cost > spec.MaxCost {
			t.Fatalf("frontier point violates MaxCost: %g > %g", p.Scores.Cost, spec.MaxCost)
		}
	}
}

// TestObjectiveSubset: with a single objective the frontier is one point
// (the argmin), modulo exact ties.
func TestObjectiveSubset(t *testing.T) {
	spec := smallSpec()
	spec.Objectives = []Objective{BatteryPower}
	res := mustRun(t, testEngine(0), spec)
	if len(res.Frontier) != 1 {
		t.Fatalf("single-objective frontier has %d points, want 1", len(res.Frontier))
	}
	best := res.Frontier[0]
	full := mustRun(t, testEngine(0), smallSpec())
	for _, p := range full.Frontier {
		if p.Scores.BatteryPower < best.Scores.BatteryPower {
			t.Fatalf("frontier missed the battery argmin: %g < %g", p.Scores.BatteryPower, best.Scores.BatteryPower)
		}
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"tdp low", func(s *Spec) { s.TDP = 3 }},
		{"tdp high", func(s *Spec) { s.TDP = 51 }},
		{"tdp nan", func(s *Spec) { s.TDP = math.NaN() }},
		{"empty kinds", func(s *Spec) { s.Kinds = []pdn.Kind{} }},
		{"bad kind", func(s *Spec) { s.Kinds = []pdn.Kind{pdn.Kind(99)} }},
		{"dup kind", func(s *Spec) { s.Kinds = []pdn.Kind{pdn.IVR, pdn.IVR} }},
		{"empty scales", func(s *Spec) { s.LoadlineScales = []float64{} }},
		{"scale low", func(s *Spec) { s.GuardbandScales = []float64{0.01} }},
		{"scale high", func(s *Spec) { s.VRScales = []float64{11} }},
		{"scale nan", func(s *Spec) { s.LoadlineScales = []float64{math.NaN()} }},
		{"empty objectives", func(s *Spec) { s.Objectives = []Objective{} }},
		{"dup objective", func(s *Spec) { s.Objectives = []Objective{Cost, Cost} }},
		{"bad objective", func(s *Spec) { s.Objectives = []Objective{Objective(9)} }},
		{"bad strategy", func(s *Spec) { s.Strategy = Strategy(9) }},
		{"nan constraint", func(s *Spec) { s.MaxArea = math.NaN() }},
		{"inf constraint", func(s *Spec) { s.MinPerformance = math.Inf(1) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := smallSpec()
			tc.mut(&spec)
			if _, err := spec.normalized(); !errors.Is(err, ErrInvalidSpec) {
				t.Fatalf("err = %v, want ErrInvalidSpec", err)
			}
			if _, err := testEngine(0).Run(context.Background(), spec, nil); !errors.Is(err, ErrInvalidSpec) {
				t.Fatalf("Run err = %v, want ErrInvalidSpec", err)
			}
		})
	}
}

func TestSpecDefaults(t *testing.T) {
	ns, err := (Spec{TDP: 15}).normalized()
	if err != nil {
		t.Fatal(err)
	}
	if len(ns.Kinds) != 5 || ns.Kinds[4] != pdn.FlexWatts {
		t.Fatalf("default kinds = %v", ns.Kinds)
	}
	if len(ns.Objectives) != 4 {
		t.Fatalf("default objectives = %v", ns.Objectives)
	}
	if ns.Budget != 45 { // clamped to the 5×3×3×1 space
		t.Fatalf("budget = %d, want clamped 45", ns.Budget)
	}
	if ns.Chains != DefaultChains {
		t.Fatalf("chains = %d", ns.Chains)
	}
	if ns.Strategy != Exhaustive {
		t.Fatalf("strategy = %v", ns.Strategy)
	}
	if ns.spaceSize() > MaxSpace {
		t.Fatal("bad space")
	}
}

func TestExhaustiveCapEnforced(t *testing.T) {
	spec := annealSpec()
	spec.Strategy = Exhaustive
	// 5×16×8×5 = 3200 ≤ MaxExhaustive, so widen until it exceeds.
	for len(spec.VRScales)*len(spec.Kinds)*len(spec.LoadlineScales)*len(spec.GuardbandScales) <= MaxExhaustive {
		spec.VRScales = append(spec.VRScales, spec.VRScales...)
	}
	if _, err := spec.normalized(); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("err = %v, want ErrInvalidSpec for oversized exhaustive", err)
	}
}

// TestConfigRoundTrip checks the kind-major key codec against a brute
// enumeration.
func TestConfigRoundTrip(t *testing.T) {
	spec, err := annealSpec().normalized()
	if err != nil {
		t.Fatal(err)
	}
	key := 0
	for _, k := range spec.Kinds {
		for _, ll := range spec.LoadlineScales {
			for _, gb := range spec.GuardbandScales {
				for _, vr := range spec.VRScales {
					want := Config{Kind: k, LoadlineScale: ll, GuardbandScale: gb, VRScale: vr}
					if got := spec.config(key); got != want {
						t.Fatalf("config(%d) = %+v, want %+v", key, got, want)
					}
					key++
				}
			}
		}
	}
	if key != spec.spaceSize() {
		t.Fatalf("enumerated %d, spaceSize %d", key, spec.spaceSize())
	}
}

// TestNeighborStaysInSpace fuzzes the proposal kernel against the key
// codec: every proposal must be a valid key differing on at most one axis.
func TestNeighborStaysInSpace(t *testing.T) {
	spec, err := annealSpec().normalized()
	if err != nil {
		t.Fatal(err)
	}
	e := testEngine(1)
	s, err := e.newSearch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := newChainRNG(7, 0)
	size := spec.spaceSize()
	key := size / 3
	for i := 0; i < 2000; i++ {
		next := s.neighbor(key, rng)
		if next < 0 || next >= size {
			t.Fatalf("neighbor(%d) = %d outside [0, %d)", key, next, size)
		}
		a, b := spec.config(key), spec.config(next)
		diff := 0
		if a.Kind != b.Kind {
			diff++
		}
		if a.LoadlineScale != b.LoadlineScale {
			diff++
		}
		if a.GuardbandScale != b.GuardbandScale {
			diff++
		}
		if a.VRScale != b.VRScale {
			diff++
		}
		if diff > 1 {
			t.Fatalf("neighbor changed %d axes: %+v → %+v", diff, a, b)
		}
		key = next
	}
}

// TestScaledCandidatesBypassCache pins the poisoning guard: running a
// search with a shared cache must leave base-parameter entries only, so a
// subsequent direct sweep through the same cache still matches a cacheless
// sweep bit for bit.
func TestScaledCandidatesBypassCache(t *testing.T) {
	cache := sweep.NewCache()
	e := testEngine(0)
	e.Cache = cache
	mustRun(t, e, smallSpec())

	clean := testEngine(0)
	want := marshal(t, mustRun(t, clean, smallSpec()))
	got := marshal(t, mustRun(t, e, smallSpec()))
	if string(got) != string(want) {
		t.Fatal("shared cache changed search results — scaled-candidate poisoning")
	}
}

func TestParseRoundTrips(t *testing.T) {
	for _, o := range Objectives() {
		got, err := ParseObjective(o.String())
		if err != nil || got != o {
			t.Fatalf("ParseObjective(%q) = %v, %v", o.String(), got, err)
		}
	}
	if _, err := ParseObjective("speed"); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("ParseObjective(speed) err = %v", err)
	}
	for _, s := range Strategies() {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Fatalf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if st, err := ParseStrategy(""); err != nil || st != Auto {
		t.Fatalf("ParseStrategy(\"\") = %v, %v", st, err)
	}
	if _, err := ParseStrategy("genetic"); !errors.Is(err, ErrInvalidSpec) {
		t.Fatalf("ParseStrategy(genetic) err = %v", err)
	}
}

func TestFrontierUnit(t *testing.T) {
	f := newFrontier([]Objective{Cost, Performance})
	mk := func(key int, cost, perf float64) Point {
		return Point{Key: key, Scores: Scores{Cost: cost, Performance: perf}}
	}
	if !f.add(mk(0, 1.0, 1.0)) {
		t.Fatal("first point rejected")
	}
	if f.add(mk(1, 1.0, 1.0)) {
		t.Fatal("exact tie entered (should keep earlier arrival)")
	}
	if f.add(mk(2, 1.1, 0.9)) {
		t.Fatal("dominated point entered")
	}
	if !f.add(mk(3, 0.9, 0.9)) {
		t.Fatal("trade-off point rejected")
	}
	if !f.add(mk(4, 0.8, 1.1)) {
		t.Fatal("dominating point rejected")
	}
	// (4) dominates both (0) and (3): cost lower, perf higher.
	pts := f.sorted()
	if len(pts) != 1 || pts[0].Key != 4 {
		t.Fatalf("frontier after dominance = %+v, want just key 4", pts)
	}
	// Area is not a selected objective here: a point worse on Area but
	// identical on (Cost, Performance) still ties and is rejected.
	p := mk(5, 0.8, 1.1)
	p.Scores.Area = 99
	if f.add(p) {
		t.Fatal("tie on selected objectives entered via unselected objective")
	}
}

func TestScoresFinite(t *testing.T) {
	good := Scores{Cost: 1, Area: 1, BatteryPower: 0.5, Performance: 1}
	if !good.finite() {
		t.Fatal("finite scores reported non-finite")
	}
	for _, bad := range []Scores{
		{Cost: math.NaN(), Area: 1, BatteryPower: 1, Performance: 1},
		{Cost: 1, Area: math.Inf(1), BatteryPower: 1, Performance: 1},
		{Cost: 1, Area: 1, BatteryPower: math.Inf(-1), Performance: 1},
		{Cost: 1, Area: 1, BatteryPower: 1, Performance: math.NaN()},
	} {
		if bad.finite() {
			t.Fatalf("non-finite scores %+v reported finite", bad)
		}
	}
}

// TestExtremeScalesNeverProduceNonFiniteFrontiers drives the search to the
// admitted scale bounds (0.1× and 10× on every axis, both TDP extremes):
// candidates out there may legitimately be infeasible and drop out, but
// any point that reaches a frontier must carry finite, positive scores.
func TestExtremeScalesNeverProduceNonFiniteFrontiers(t *testing.T) {
	for _, tdp := range []float64{4, 50} {
		spec := Spec{
			TDP:             tdp,
			LoadlineScales:  []float64{scaleMin, 1, scaleMax},
			GuardbandScales: []float64{scaleMin, 1, scaleMax},
			VRScales:        []float64{scaleMin, 1, scaleMax},
		}
		res := mustRun(t, testEngine(0), spec)
		if len(res.Frontier) == 0 {
			t.Fatalf("tdp %g: nothing feasible even at base scales", tdp)
		}
		for _, p := range res.Frontier {
			for name, v := range map[string]float64{
				"cost": p.Scores.Cost, "area": p.Scores.Area,
				"battery": p.Scores.BatteryPower, "performance": p.Scores.Performance,
			} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
					t.Errorf("tdp %g key %d: %s score %g", tdp, p.Key, name, v)
				}
			}
		}
	}
}

// TestFlexWattsScoring pins the oracle-mode bound: FlexWatts battery drain
// must be no worse than both single-mode PDNs it switches between.
func TestFlexWattsScoring(t *testing.T) {
	spec := smallSpec()
	spec.Kinds = []pdn.Kind{pdn.IVR, pdn.LDO, pdn.FlexWatts}
	spec.LoadlineScales = []float64{1}
	spec.GuardbandScales = []float64{1}
	res := mustRun(t, testEngine(0), spec)
	byKind := map[pdn.Kind]Scores{}
	// Frontier may not hold all three; rescore directly.
	e := testEngine(0)
	ns, err := spec.normalized()
	if err != nil {
		t.Fatal(err)
	}
	s, err := e.newSearch(context.Background(), ns)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range spec.Kinds {
		cs := s.score(Config{Kind: k, LoadlineScale: 1, GuardbandScale: 1, VRScale: 1})
		if !cs.ok {
			t.Fatalf("kind %v infeasible at base scales", k)
		}
		byKind[k] = cs.sc
	}
	// The hybrid beats pure IVR at idle outright; against pure LDO it pays
	// only the bypassed IVR's residual overhead, so allow a 1% band rather
	// than exact dominance (its LDO mode is LDO-through-the-hybrid, not a
	// pure LDO board).
	fw := byKind[pdn.FlexWatts].BatteryPower
	if fw > byKind[pdn.IVR].BatteryPower {
		t.Fatalf("FlexWatts battery %g worse than IVR %g", fw, byKind[pdn.IVR].BatteryPower)
	}
	if fw > byKind[pdn.LDO].BatteryPower*1.01 {
		t.Fatalf("FlexWatts battery %g far worse than LDO %g", fw, byKind[pdn.LDO].BatteryPower)
	}
	_ = res
}

func BenchmarkOptimizeScore(b *testing.B) {
	e := testEngine(0)
	ns, err := smallSpec().normalized()
	if err != nil {
		b.Fatal(err)
	}
	s, err := e.newSearch(context.Background(), ns)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{Kind: pdn.MBVR, LoadlineScale: 0.9, GuardbandScale: 1.25, VRScale: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cs := s.score(cfg); !cs.ok {
			b.Fatal("infeasible")
		}
	}
}
