package report

import (
	"strings"
	"testing"
)

func TestWriteASCII(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("beta-long", "2")
	var b strings.Builder
	if err := tab.WriteASCII(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := []string{"# demo", "name", "value", "alpha", "beta-long", "----"}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("output missing %q:\n%s", w, out)
		}
	}
	// Columns align: every line has the separator's width or more.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Errorf("expected 5 lines, got %d", len(lines))
	}
}

func TestAddRowPadding(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRow("1")                // short row pads
	tab.AddRow("1", "2", "3", "4") // long row truncates
	if len(tab.Rows[0]) != 3 || len(tab.Rows[1]) != 3 {
		t.Error("rows not normalized to column count")
	}
	if tab.Rows[0][1] != "" || tab.Rows[1][2] != "3" {
		t.Error("padding/truncation wrong")
	}
}

func TestAddRowF(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRowF("x", 1.23456, 42)
	if tab.Rows[0][0] != "x" || tab.Rows[0][1] != "1.235" || tab.Rows[0][2] != "42" {
		t.Errorf("AddRowF formatting: %v", tab.Rows[0])
	}
}

func TestWriteCSV(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow("1", "2")
	var b strings.Builder
	if err := tab.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != "a,b\n1,2\n" {
		t.Errorf("CSV = %q", b.String())
	}
	bad := NewTable("t", "a")
	bad.AddRow("has,comma")
	if err := bad.WriteCSV(&strings.Builder{}); err == nil {
		t.Error("comma cell accepted without quoting support")
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.2512) != "25.1%" {
		t.Errorf("Pct = %s", Pct(0.2512))
	}
	if F2(1.005) != "1.00" && F2(1.005) != "1.01" {
		t.Errorf("F2 = %s", F2(1.005))
	}
	if F3(2.0) != "2.000" {
		t.Errorf("F3 = %s", F3(2.0))
	}
}
