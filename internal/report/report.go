// Package report renders experiment results as aligned ASCII tables and CSV,
// the textual equivalents of the paper's figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented result table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells beyond the column count are dropped, missing
// cells are blank.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowF appends a row of formatted values: strings pass through, float64
// formats with %.4g, everything else with %v.
func (t *Table) AddRowF(cells ...interface{}) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.4g", v))
		default:
			row = append(row, fmt.Sprint(v))
		}
	}
	t.AddRow(row...)
}

// WriteASCII renders the table with aligned columns.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "# %s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV renders the table as CSV (no quoting needed for our cell
// content, which is checked).
func (t *Table) WriteCSV(w io.Writer) error {
	var b strings.Builder
	writeRow := func(cells []string) error {
		for i, cell := range cells {
			if strings.ContainsAny(cell, ",\"\n") {
				return fmt.Errorf("report: cell %q needs CSV quoting", cell)
			}
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
		return nil
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Pct formats a fraction as a percentage cell.
func Pct(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

// F2 formats with two decimals.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// F3 formats with three decimals.
func F3(v float64) string { return fmt.Sprintf("%.3f", v) }
