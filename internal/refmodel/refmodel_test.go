package refmodel

import (
	"math"
	"testing"

	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/workload"
)

func testSetup(t *testing.T) (pdn.Model, pdn.Scenario) {
	t.Helper()
	plat := domain.NewClientPlatform()
	m := pdn.NewIVRModel(pdn.DefaultParams())
	s, err := workload.TDPScenario(plat, 18, workload.MultiThread, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	return m, s
}

func TestMeasureDeterministic(t *testing.T) {
	m, s := testSetup(t)
	cfg := DefaultConfig()
	cfg.Seed = 42
	a, err := Measure(m, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Measure(m, s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ETEE != b.ETEE || a.MeanPIn != b.MeanPIn {
		t.Error("same seed must reproduce the measurement exactly")
	}
	cfg.Seed = 43
	c, _ := Measure(m, s, cfg)
	if c.ETEE == a.ETEE {
		t.Error("different seeds should perturb the measurement")
	}
}

func TestMeasurePlausible(t *testing.T) {
	m, s := testSetup(t)
	pred, err := m.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	meas, err := Measure(m, s, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if meas.Steps != 2000 {
		t.Errorf("default config should take 2000 steps, took %d", meas.Steps)
	}
	if !(meas.PeakPIn > meas.MeanPIn) {
		t.Error("peak power must exceed mean under ripple")
	}
	// The closed-form model validates against the reference at the paper's
	// accuracy level (§4.3: 98.6% worst case).
	acc := Accuracy(pred.ETEE, meas.ETEE)
	if acc < 0.975 {
		t.Errorf("validation accuracy %.2f%%, want >= 97.5%%", acc*100)
	}
}

func TestAccuracyAcrossCorpus(t *testing.T) {
	// Average accuracy across workload types, TDPs, ARs and all three PDNs
	// must land near the paper's 99%.
	plat := domain.NewClientPlatform()
	params := pdn.DefaultParams()
	models := []pdn.Model{
		pdn.NewIVRModel(params), pdn.NewMBVRModel(params), pdn.NewLDOModel(params),
	}
	cfg := DefaultConfig()
	cfg.Duration = 1e-3 // shorter runs to keep the test fast
	var sum float64
	n := 0
	for _, m := range models {
		for _, wt := range workload.Types() {
			for _, tdp := range []float64{4, 18, 50} {
				s, err := workload.TDPScenario(plat, tdp, wt, 0.6)
				if err != nil {
					t.Fatal(err)
				}
				pred, err := m.Evaluate(s)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Seed = int64(n + 1)
				meas, err := Measure(m, s, cfg)
				if err != nil {
					t.Fatal(err)
				}
				acc := Accuracy(pred.ETEE, meas.ETEE)
				if acc < 0.96 {
					t.Errorf("%v %v %gW: accuracy %.2f%% below 96%%", m.Kind(), wt, tdp, acc*100)
				}
				sum += acc
				n++
			}
		}
	}
	if avg := sum / float64(n); avg < 0.98 {
		t.Errorf("average validation accuracy %.2f%%, want >= 98%%", avg*100)
	}
}

func TestAccuracyHelper(t *testing.T) {
	if got := Accuracy(0.75, 0.75); got != 1 {
		t.Errorf("perfect prediction accuracy %g", got)
	}
	if got := Accuracy(0.74, 0.75); math.Abs(got-(1-0.01/0.75)) > 1e-12 {
		t.Errorf("accuracy %g", got)
	}
}

func TestBadConfigFallsBack(t *testing.T) {
	m, s := testSetup(t)
	if _, err := Measure(m, s, Config{}); err != nil {
		t.Errorf("zero config should fall back to defaults: %v", err)
	}
}
