// Package refmodel provides the "measured" reference against which PDNspot
// is validated (paper §4.3), standing in for the paper's instrumented
// Broadwell/Skylake systems and Keysight N6705B power analyzer, which this
// reproduction does not have.
//
// The reference is a time-stepped simulator: it advances in 1 µs steps and
// integrates the instantaneous input power of a PDN while the domain loads
// fluctuate around their nominal values with per-domain ripple tones and
// band-limited noise (the current waveforms a power analyzer would see).
// Because VR efficiency and load-line loss are nonlinear in current, the
// time-average of the instantaneous power flow differs from the power flow
// of the time-averaged load — precisely the second-order effect PDNspot's
// closed-form interval model ignores (§3.4's stated limitation). Validation
// accuracy is therefore a meaningful number rather than a circular identity,
// and lands near the paper's 99 % figures.
package refmodel

import (
	"math"
	"math/rand"

	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/units"
)

// Config controls the reference simulation.
type Config struct {
	// Step is the integration time step (default 1 µs).
	Step units.Second
	// Duration is the simulated interval (default 2 ms).
	Duration units.Second
	// Ripple is the relative amplitude of each domain's periodic load
	// fluctuation (workload phase behavior, default 4 %).
	Ripple float64
	// Noise is the standard deviation of the band-limited random load
	// component (default 1.5 %).
	Noise float64
	// Seed makes runs deterministic.
	Seed int64
}

// DefaultConfig returns the configuration used for the Fig 4 validation.
func DefaultConfig() Config {
	return Config{
		Step:     units.MicroSecond(1),
		Duration: 2e-3,
		Ripple:   0.04,
		Noise:    0.015,
		Seed:     1,
	}
}

// Measurement is the outcome of a reference run.
type Measurement struct {
	// ETEE is the "measured" end-to-end efficiency: mean nominal power over
	// mean input power.
	ETEE float64
	// MeanPIn is the time-averaged input power.
	MeanPIn units.Watt
	// PeakPIn is the maximum instantaneous input power observed.
	PeakPIn units.Watt
	// Steps is the number of integration steps taken.
	Steps int
}

// tone describes one domain's load fluctuation.
type tone struct {
	w     float64 // angular frequency 2π·freq, rad/s
	phase float64
	noise float64 // AR(1)-filtered noise state
}

// Measure runs the reference simulation of the PDN model on the scenario
// and returns the measured ETEE. The same PDN topology evaluates each
// instantaneous load snapshot; the returned figure differs from the
// closed-form prediction by the nonlinearity (Jensen) gap plus ripple-borne
// guardband interactions.
func Measure(m pdn.Model, s pdn.Scenario, cfg Config) (Measurement, error) {
	if cfg.Step <= 0 || cfg.Duration <= 0 {
		cfg = DefaultConfig()
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Tones are assigned in canonical domain order so the RNG stream (and
	// thus the measurement) is reproducible for a given seed; idle domains
	// draw no power and consume no randomness.
	var tones [domain.NumKinds]tone
	var fluctuates [domain.NumKinds]bool
	for k := range s.Loads {
		if !s.Loads[k].Active() {
			continue
		}
		fluctuates[k] = true
		tones[k] = tone{
			// Workload phase frequencies in the tens-of-kHz range, distinct
			// per domain so the fleet doesn't beat in lockstep.
			w:     2 * math.Pi * (20e3 + 60e3*rng.Float64()),
			phase: 2 * math.Pi * rng.Float64(),
		}
	}
	// AR(1) coefficient for band-limited noise with ~50 µs correlation.
	alpha := math.Exp(-cfg.Step / 50e-6)
	sigma := cfg.Noise * math.Sqrt(1-alpha*alpha)

	var sumPIn, sumPNom, peak units.Watt
	steps := 0
	n := int(cfg.Duration/cfg.Step + 0.5)
	// One instantaneous scenario is mutated in place every step (Scenario is
	// a value type); only the perturbed PNom fields change, so no per-step
	// allocation happens anywhere in the loop.
	inst := s
	for step := 0; step < n; step++ {
		t := float64(step) * cfg.Step
		for k := range s.Loads {
			if !fluctuates[k] {
				continue
			}
			tn := &tones[k]
			tn.noise = alpha*tn.noise + sigma*rng.NormFloat64()
			scale := 1 + cfg.Ripple*math.Sin(tn.w*t+tn.phase) + tn.noise
			if scale < 0.05 {
				scale = 0.05
			}
			inst.Loads[k].PNom = s.Loads[k].PNom * scale
		}
		r, err := m.Evaluate(inst)
		if err != nil {
			return Measurement{}, err
		}
		sumPIn += r.PIn
		sumPNom += r.PNomTotal
		if r.PIn > peak {
			peak = r.PIn
		}
		steps++
	}
	return Measurement{
		ETEE:    sumPNom / sumPIn,
		MeanPIn: sumPIn / float64(steps),
		PeakPIn: peak,
		Steps:   steps,
	}, nil
}

// Accuracy returns the validation accuracy of a predicted ETEE against a
// measured one, as the paper reports it: 1 − |predicted − measured| /
// measured.
func Accuracy(predicted, measured float64) float64 {
	return 1 - math.Abs(predicted-measured)/measured
}
