package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-100) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram(0.1, 1, 10)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 56.05; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	// Bucket counts: le=0.1 -> 1, le=1 -> 2, le=10 -> 1, +Inf -> 1.
	cases := []struct {
		q    float64
		want float64
	}{
		{0.2, 0.1}, // 1st of 5
		{0.5, 1},   // 3rd of 5 falls in the le=1 bucket
		{0.8, 10},
		{1.0, 10}, // +Inf observation reports the largest finite bound
	}
	for _, tc := range cases {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("q%.2f = %g, want %g", tc.q, got, tc.want)
		}
	}
	if (&Histogram{}).Quantile(0.5) != 0 {
		t.Error("empty histogram quantile != 0")
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds did not panic")
		}
	}()
	NewHistogram(1, 1)
}

// TestWritePrometheus pins the exposition layout: HELP/TYPE lines,
// deterministic family and series order, cumulative histogram buckets with
// +Inf, _sum and _count.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("app_requests_total", "Requests served.", "route", "/a", "status", "200")
	reqs2 := r.Counter("app_requests_total", "Requests served.", "route", "/a", "status", "500")
	inflight := r.Gauge("app_inflight", "In-flight requests.")
	lat := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.01, 0.1})
	r.GaugeFunc("app_cache_ratio", "Cache hit ratio.", func() float64 { return 0.75 })

	reqs.Add(3)
	reqs2.Inc()
	inflight.Set(2)
	lat.Observe(0.005)
	lat.Observe(0.05)
	lat.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_cache_ratio Cache hit ratio.
# TYPE app_cache_ratio gauge
app_cache_ratio 0.75
# HELP app_inflight In-flight requests.
# TYPE app_inflight gauge
app_inflight 2
# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.01"} 1
app_latency_seconds_bucket{le="0.1"} 2
app_latency_seconds_bucket{le="+Inf"} 3
app_latency_seconds_sum 5.055
app_latency_seconds_count 3
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{route="/a",status="200"} 3
app_requests_total{route="/a",status="500"} 1
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestRegistryPanicsOnDuplicateSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.", "a", "1")
	defer func() {
		if recover() == nil {
			t.Error("duplicate series did not panic")
		}
	}()
	r.Counter("x_total", "X.", "a", "1")
}

func TestRegistryPanicsOnTypeConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter("y_total", "Y.")
	defer func() {
		if recover() == nil {
			t.Error("type conflict did not panic")
		}
	}()
	r.Gauge("y_total", "Y.")
}

// TestConcurrentObservations is the hot-path race gate: all instruments
// must tolerate concurrent writers (run under -race in CI) and lose no
// updates.
func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "C.")
	g := r.Gauge("g", "G.")
	h := r.Histogram("h_seconds", "H.", LatencyBuckets())
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*each {
		t.Errorf("counter = %d, want %d", c.Value(), workers*each)
	}
	if g.Value() != workers*each {
		t.Errorf("gauge = %d, want %d", g.Value(), workers*each)
	}
	if h.Count() != workers*each {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*each)
	}
	if got, want := h.Sum(), float64(workers*each)*0.001; math.Abs(got-want) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
}
