// Package metrics is the dependency-free observability core of the
// flexwattsd serving tier: counters, gauges, and latency histograms with
// Prometheus text exposition (format 0.0.4), so a fleet scheduler can
// scrape the daemon without the repository importing a metrics client.
//
// The design constraint is the hot path: Observe/Add/Inc are a handful of
// atomic operations with no locks and no allocations, safe for concurrent
// use from every request goroutine. Exposition (WritePrometheus) is the
// cold path — it snapshots the atomics and renders deterministically
// (metrics sorted by name, label sets sorted by value) so scrapes and
// tests see a stable byte layout.
//
// Labeled families (e.g. requests by route and status) pre-register their
// label combinations at construction: the route table of an HTTP server is
// small and static, which buys label lookups that are a map read with no
// lock and keeps cardinality bounded by design — a stray client cannot
// mint new time series.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing value (requests served, points
// evaluated). The zero value is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative n is ignored (counters are monotone).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// A Gauge is a value that goes up and down (in-flight sweeps, inflight
// points). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram counts observations into cumulative buckets plus a sum, the
// Prometheus histogram contract. Buckets are fixed at construction;
// observations are two atomic adds.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf is implicit
	counts []atomic.Int64
	sum    atomicFloat
	total  atomic.Int64
}

// atomicFloat accumulates a float64 with compare-and-swap on its bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// NewHistogram returns a histogram over the given ascending upper bounds.
// A final +Inf bucket is always present and need not be listed.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// LatencyBuckets is the default request-latency bucket layout: 100µs to
// ~100s in roughly 1-2.5-5 steps, wide enough for both a cache hit and a
// 100k-point streamed sweep.
func LatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sum.add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// Quantile returns an estimate of quantile q (0..1) from the bucket
// layout: the upper bound of the bucket the q-th observation falls in
// (+Inf observations report the largest finite bound). Coarse by
// construction, but monotone and cheap — good enough for a load report.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, b := range h.bounds {
		seen += h.counts[i].Load()
		if seen >= rank {
			return b
		}
	}
	if len(h.bounds) == 0 {
		return math.Inf(1)
	}
	return h.bounds[len(h.bounds)-1]
}

// kind tags a registered family for the exposition TYPE line.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCallback
	kindCounterCallback
)

// series is one labeled time series inside a family.
type series struct {
	labels string // rendered {a="b",c="d"} fragment, "" for unlabeled
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

// family is one metric name: its help text, type, and series.
type family struct {
	name   string
	help   string
	kind   kind
	series []series
}

// Registry holds metric families and renders them in Prometheus text
// format. Register* methods are for setup time (they take a lock);
// the returned instruments are lock-free.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// renderLabels renders an even-length key-value list as a deterministic
// label fragment.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("metrics: odd label key-value list")
	}
	parts := make([]string, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		parts = append(parts, fmt.Sprintf("%s=%q", kv[i], kv[i+1]))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// register adds a series to (or creates) the named family.
func (r *Registry) register(name, help string, k kind, s series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k}
		r.families[name] = f
	} else if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as two different types", name))
	}
	for _, existing := range f.series {
		if existing.labels == s.labels {
			panic(fmt.Sprintf("metrics: duplicate series %s%s", name, s.labels))
		}
	}
	f.series = append(f.series, s)
}

// Counter registers and returns a counter series; labels is an even
// key-value list.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, series{labels: renderLabels(labels), c: c})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, series{labels: renderLabels(labels), g: g})
	return g
}

// Histogram registers and returns a histogram series over bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	h := NewHistogram(bounds...)
	r.register(name, help, kindHistogram, series{labels: renderLabels(labels), h: h})
	return h
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the bridge for state owned elsewhere (cache statistics, goroutine
// counts). fn must be safe for concurrent calls.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindCallback, series{labels: renderLabels(labels), fn: fn})
}

// CounterFunc is GaugeFunc for monotone values owned elsewhere (e.g. the
// sweep cache's hit counter): exposed with TYPE counter. fn must be safe
// for concurrent calls and never decrease.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	r.register(name, help, kindCounterCallback, series{labels: renderLabels(labels), fn: fn})
}

// formatValue renders a sample value the way Prometheus text format
// expects (integers without exponents, floats shortest-round-trip).
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus renders every registered family in text format 0.0.4:
// HELP and TYPE lines, then samples. Families sort by name and series by
// label fragment, so the output is byte-deterministic for a fixed set of
// values.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		typ := map[kind]string{
			kindCounter:         "counter",
			kindGauge:           "gauge",
			kindHistogram:       "histogram",
			kindCallback:        "gauge",
			kindCounterCallback: "counter",
		}[f.kind]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, typ)
		ss := append([]series(nil), f.series...)
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		for _, s := range ss {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.g.Value())
			case kindCallback, kindCounterCallback:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.fn()))
			case kindHistogram:
				writeHistogram(&b, f.name, s.labels, s.h)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative le buckets,
// +Inf, then _sum and _count.
func writeHistogram(b *strings.Builder, name, labels string, h *Histogram) {
	// Splice the le label into the existing fragment.
	withLE := func(le string) string {
		if labels == "" {
			return `{le="` + le + `"}`
		}
		return strings.TrimSuffix(labels, "}") + `,le="` + le + `"}`
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(formatValue(bound)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE("+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, cum)
}
