package workload

import (
	"repro/internal/domain"
	"repro/internal/units"
)

// BatteryWorkload is a battery-life scenario described by its package
// power-state residencies (§5 Observation 3, §7.1). During each frame the
// platform cycles through an active burst (C0MIN), a shallow idle during
// which the display controller fetches from memory (C2), and a deep idle
// while the panel is driven from the display controller's local buffer (C8).
type BatteryWorkload struct {
	Name string
	// Residency maps each package state to its fraction of execution time;
	// fractions sum to 1.
	Residency map[domain.CState]float64
}

// BatteryLifeWorkloads returns the four §7.1 battery-life scenarios with
// their C0MIN residencies (video playback 10 %, video conferencing 20 %,
// web browsing 30 %, light gaming 40 %); the video-playback split matches
// the §5 worked example (C0MIN 10 %, C2 5 %, C8 85 %).
func BatteryLifeWorkloads() []BatteryWorkload {
	return []BatteryWorkload{
		{
			Name: "Video Playback",
			Residency: map[domain.CState]float64{
				domain.C0MIN: 0.10, domain.C2: 0.05, domain.C8: 0.85,
			},
		},
		{
			Name: "Video Conf.",
			Residency: map[domain.CState]float64{
				domain.C0MIN: 0.20, domain.C2: 0.08, domain.C8: 0.72,
			},
		},
		{
			Name: "Web Browsing",
			Residency: map[domain.CState]float64{
				domain.C0MIN: 0.30, domain.C2: 0.10, domain.C8: 0.60,
			},
		},
		{
			Name: "Light Gaming",
			Residency: map[domain.CState]float64{
				domain.C0MIN: 0.40, domain.C2: 0.10, domain.C8: 0.50,
			},
		},
	}
}

// AveragePower computes the workload's average platform power drawn from
// the battery given a per-state ETEE evaluator, following the §5 formula
//
//	P = Σ_s P_s · R_s / η_s
//
// where P_s is the state's nominal power, R_s its residency and η_s the
// PDN's ETEE in that state. The nominal powers come from the platform's
// C-state scenario builder so they match the paper's 2.5 W / 1.2 W / 0.13 W
// video-playback example.
func (w BatteryWorkload) AveragePower(plat *domain.Platform, etee func(domain.CState) float64) units.Watt {
	var avg units.Watt
	for c, res := range w.Residency {
		if res == 0 {
			continue
		}
		s := CStateScenario(plat, c)
		avg += s.TotalNominal() * res / etee(c)
	}
	return avg
}
