package workload

import (
	"fmt"

	"repro/internal/curves"
	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/units"
)

// This file builds the fixed-nominal-power scenarios used by the ETEE
// experiments (Fig 4, Fig 5): at each TDP the domains' nominal powers are
// pinned by the design tables below (consistent with Table 2's ranges and
// Fig 2(b)'s budget shares), while the application ratio is swept
// independently — AR affects only the worst-case (power-virus) current that
// sizes guardbands, which is what produces the rising-with-AR ETEE curves of
// Fig 4.

// tdpAxis is the TDP design-point axis shared by all tables.
var tdpAxis = []float64{4, 8, 10, 18, 25, 36, 50}

// mustCurve builds an interpolation table over the TDP axis.
func mustCurve(ys []float64) *curves.Table1D {
	pts := make([]curves.Point, len(tdpAxis))
	for i := range tdpAxis {
		pts[i] = curves.Point{X: tdpAxis[i], Y: ys[i]}
	}
	return curves.MustTable1D(pts)
}

// Nominal-power design tables (watts) per workload class. The CPU table
// follows Fig 2(b)'s CPU budget share (13 % of 4 W ... 52 % of 50 W, i.e.
// Table 2's 0.6–30 W cores range); LLC spans Table 2's 0.5–4 W; SA/IO are
// fixed (their power does not scale with TDP, Fig 2(b)).
var (
	cpuCoresNom = mustCurve([]float64{0.60, 2.00, 2.70, 8.30, 12.0, 18.4, 26.0})
	cpuLLCNom   = mustCurve([]float64{0.90, 1.10, 1.20, 1.80, 2.30, 3.10, 4.00})

	gfxEngineNom = mustCurve([]float64{0.58, 1.90, 2.60, 7.90, 11.5, 17.5, 24.5})
	gfxCoresNom  = mustCurve([]float64{0.20, 0.55, 0.70, 1.90, 2.70, 4.00, 5.50})
	gfxLLCNom    = mustCurve([]float64{0.90, 1.15, 1.30, 2.00, 2.60, 3.40, 4.00})

	// Core frequency at each TDP design point (GHz); 0.9 GHz at 4 W matches
	// §7.1's "maximum allowed frequency (0.9 GHz) for a 4 W TDP system".
	cpuFreqGHz = mustCurve([]float64{0.9, 1.5, 1.7, 2.4, 2.9, 3.5, 4.0})
	// GFX frequency at each TDP design point (GHz).
	gfxFreqGHz = mustCurve([]float64{0.35, 0.55, 0.65, 0.85, 1.00, 1.10, 1.20})
	// LLC frequency for graphics workloads exceeds the core clock (§7.1:
	// "the LLC domain operates at a higher frequency and higher voltage
	// than the CPU domain").
	gfxLLCFreqGHz = mustCurve([]float64{1.2, 1.6, 1.8, 2.3, 2.8, 3.4, 4.0})
)

// Leakage fractions per Table 2 / §3.1: 45 % for graphics, 22 % elsewhere.
const (
	flCompute = 0.22
	flGFX     = 0.45
)

// TDPScenario builds the Fig 4-style evaluation scenario for a workload
// type at the given TDP and application ratio. Nominal powers come from the
// design tables; voltages come from the platform's V–f curves at the TDP's
// design frequency.
func TDPScenario(plat *domain.Platform, tdp units.Watt, t Type, ar float64) (pdn.Scenario, error) {
	if tdp < tdpAxis[0] || tdp > tdpAxis[len(tdpAxis)-1] {
		return pdn.Scenario{}, fmt.Errorf("workload: TDP %gW outside modeled range [%g, %g]",
			tdp, tdpAxis[0], tdpAxis[len(tdpAxis)-1])
	}
	if !(ar > 0 && ar <= 1) {
		return pdn.Scenario{}, fmt.Errorf("workload: AR %g outside (0,1]", ar)
	}
	s := pdn.NewScenario()
	s.CState = domain.C0

	coreV := plat.Domain(domain.Core0).VoltageAt(units.GigaHertz(cpuFreqGHz.At(tdp)))
	switch t {
	case SingleThread, MultiThread:
		cores := cpuCoresNom.At(tdp)
		if t == SingleThread {
			// One core powered; it captures a bit over half of the
			// two-core budget (shared LLC/ring activity remains).
			s.Loads[domain.Core0] = pdn.Load{PNom: 0.55 * cores, VNom: coreV, FL: flCompute, AR: ar}
		} else {
			s.Loads[domain.Core0] = pdn.Load{PNom: cores / 2, VNom: coreV, FL: flCompute, AR: ar}
			s.Loads[domain.Core1] = pdn.Load{PNom: cores / 2, VNom: coreV, FL: flCompute, AR: ar}
		}
		// LLC voltage matches the core domain for CPU workloads (§7.1).
		s.Loads[domain.LLC] = pdn.Load{PNom: cpuLLCNom.At(tdp), VNom: coreV, FL: flCompute, AR: ar}
	case Graphics:
		gfxV := plat.Domain(domain.GFX).VoltageAt(units.GigaHertz(gfxFreqGHz.At(tdp)))
		llcV := plat.Domain(domain.LLC).VoltageAt(units.GigaHertz(gfxLLCFreqGHz.At(tdp)))
		// Cores run at low frequency/voltage during graphics (§5 Obs 2).
		lowCoreV := plat.Domain(domain.Core0).VoltageAt(units.GigaHertz(1.0))
		s.Loads[domain.Core0] = pdn.Load{PNom: gfxCoresNom.At(tdp) / 2, VNom: lowCoreV, FL: flCompute, AR: ar}
		s.Loads[domain.Core1] = pdn.Load{PNom: gfxCoresNom.At(tdp) / 2, VNom: lowCoreV, FL: flCompute, AR: ar}
		s.Loads[domain.GFX] = pdn.Load{PNom: gfxEngineNom.At(tdp), VNom: gfxV, FL: flGFX, AR: ar}
		s.Loads[domain.LLC] = pdn.Load{PNom: gfxLLCNom.At(tdp), VNom: llcV, FL: flCompute, AR: ar}
	default:
		return pdn.Scenario{}, fmt.Errorf("workload: TDPScenario does not model %v", t)
	}

	s.Loads[domain.SA] = pdn.Load{PNom: plat.UncorePower(domain.SA, domain.C0), VNom: plat.UncoreVoltage(domain.SA), FL: flCompute, AR: 0.8}
	s.Loads[domain.IO] = pdn.Load{PNom: plat.UncorePower(domain.IO, domain.C0), VNom: plat.UncoreVoltage(domain.IO), FL: flCompute, AR: 0.8}
	return s, nil
}

// CStateScenario builds the battery-life evaluation point for a package
// power state (Fig 4(j)): in C0MIN the compute domains run at minimum
// frequency with light activity; in deeper states only SA/IO draw power.
func CStateScenario(plat *domain.Platform, c domain.CState) pdn.Scenario {
	s := pdn.NewScenario()
	s.CState = c
	const tj = 50 // battery-life junction temperature (§7.1)
	if c.ComputeActive() {
		core := plat.Domain(domain.Core0)
		llc := plat.Domain(domain.LLC)
		gfx := plat.Domain(domain.GFX)
		fMinCore := core.Params().FMin
		fMinGfx := gfx.Params().FMin
		const arLight = 0.18
		cv := core.VoltageAt(fMinCore)
		s.Loads[domain.Core0] = pdn.Load{PNom: core.Power(fMinCore, arLight, tj), VNom: cv, FL: core.LeakFraction(fMinCore, arLight, tj), AR: arLight}
		s.Loads[domain.Core1] = pdn.Load{PNom: core.Power(fMinCore, arLight, tj), VNom: cv, FL: core.LeakFraction(fMinCore, arLight, tj), AR: arLight}
		s.Loads[domain.LLC] = pdn.Load{PNom: llc.Power(fMinCore, arLight, tj), VNom: llc.VoltageAt(fMinCore), FL: llc.LeakFraction(fMinCore, arLight, tj), AR: arLight}
		s.Loads[domain.GFX] = pdn.Load{PNom: gfx.Power(fMinGfx, arLight, tj), VNom: gfx.VoltageAt(fMinGfx), FL: gfx.LeakFraction(fMinGfx, arLight, tj), AR: arLight}
	}
	s.Loads[domain.SA] = pdn.Load{PNom: plat.UncorePower(domain.SA, c), VNom: plat.UncoreVoltage(domain.SA), FL: flCompute, AR: 0.8}
	s.Loads[domain.IO] = pdn.Load{PNom: plat.UncorePower(domain.IO, c), VNom: plat.UncoreVoltage(domain.IO), FL: flCompute, AR: 0.8}
	return s
}

// StandardTDPs re-exports the TDP axis as watts.
func StandardTDPs() []units.Watt {
	out := make([]units.Watt, len(tdpAxis))
	copy(out, tdpAxis)
	return out
}

// CPUDesignFreq returns the CPU core design frequency for a TDP.
func CPUDesignFreq(tdp units.Watt) units.Hertz {
	return units.GigaHertz(cpuFreqGHz.At(tdp))
}

// GfxDesignFreq returns the graphics design frequency for a TDP.
func GfxDesignFreq(tdp units.Watt) units.Hertz {
	return units.GigaHertz(gfxFreqGHz.At(tdp))
}

// ClusterMember is one domain of the performance-scaling cluster: when the
// lead domain's clock rises by a ratio r, every member's clock rises by r
// (Table 1: the LLC scales proportionally to the CPU core and graphics
// engine frequencies), and its power follows its V-f curve.
type ClusterMember struct {
	Kind domain.Kind
	// PNom is the member's nominal power at the TDP design point.
	PNom units.Watt
	// FL is the leakage fraction.
	FL float64
	// F0 is the design frequency.
	F0 units.Hertz
	// Curve is the member's voltage-frequency curve.
	Curve domain.VFCurve
	// FMax bounds the member's clock.
	FMax units.Hertz
}

// PerfCluster returns the domains whose power scales when the performance
// domain of a workload type is clocked up: cores+LLC for CPU workloads,
// GFX+LLC for graphics (raising graphics throughput requires proportional
// LLC bandwidth).
func PerfCluster(plat *domain.Platform, tdp units.Watt, t Type) []ClusterMember {
	coreD := plat.Domain(domain.Core0)
	llcD := plat.Domain(domain.LLC)
	gfxD := plat.Domain(domain.GFX)
	switch t {
	case Graphics:
		return []ClusterMember{
			{Kind: domain.GFX, PNom: gfxEngineNom.At(tdp), FL: flGFX,
				F0: GfxDesignFreq(tdp), Curve: gfxD.Params().Curve, FMax: gfxD.Params().FMax},
			{Kind: domain.LLC, PNom: gfxLLCNom.At(tdp), FL: flCompute,
				F0: units.GigaHertz(gfxLLCFreqGHz.At(tdp)), Curve: llcD.Params().Curve, FMax: llcD.Params().FMax},
		}
	default:
		return []ClusterMember{
			{Kind: domain.Core0, PNom: cpuCoresNom.At(tdp), FL: flCompute,
				F0: CPUDesignFreq(tdp), Curve: coreD.Params().Curve, FMax: coreD.Params().FMax},
			{Kind: domain.LLC, PNom: cpuLLCNom.At(tdp), FL: flCompute,
				F0: CPUDesignFreq(tdp), Curve: llcD.Params().Curve, FMax: llcD.Params().FMax},
		}
	}
}
