package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/domain"
	"repro/internal/units"
)

// Phase is one interval of a workload trace: the platform stays at one
// operating condition for Duration. Traces drive both the platform
// simulator (internal/sim) and the PDNspot validation harness, standing in
// for the paper's ~5000 measured benchmark traces (§4.1).
type Phase struct {
	Duration units.Second
	Type     Type
	CState   domain.CState
	// AR is the application ratio during the phase (ignored in idle
	// states).
	AR float64
}

// Trace is a sequence of phases.
type Trace struct {
	Name   string
	Phases []Phase
}

// Duration returns the total trace length.
func (t Trace) Duration() units.Second {
	var d units.Second
	for _, p := range t.Phases {
		d += p.Duration
	}
	return d
}

// Validate checks phase invariants.
func (t Trace) Validate() error {
	if len(t.Phases) == 0 {
		return fmt.Errorf("workload: trace %q has no phases", t.Name)
	}
	for i, p := range t.Phases {
		if p.Duration <= 0 {
			return fmt.Errorf("workload: trace %q phase %d has non-positive duration", t.Name, i)
		}
		if p.CState.ComputeActive() && !(p.AR > 0 && p.AR <= 1) {
			return fmt.Errorf("workload: trace %q phase %d active with AR %g", t.Name, i, p.AR)
		}
	}
	return nil
}

// SteadyTrace returns a single-phase trace at a fixed operating condition.
func SteadyTrace(name string, t Type, ar float64, dur units.Second) Trace {
	return Trace{Name: name, Phases: []Phase{{Duration: dur, Type: t, CState: domain.C0, AR: ar}}}
}

// BatteryTrace expands a battery-life workload into a per-frame trace: each
// frame cycles through the workload's resident states in a fixed order
// (active burst, memory fetch, panel self-refresh), repeated for the given
// number of frames at the given frame period.
func BatteryTrace(w BatteryWorkload, frames int, period units.Second) Trace {
	order := []domain.CState{domain.C0MIN, domain.C2, domain.C3, domain.C6, domain.C7, domain.C8}
	tr := Trace{Name: w.Name}
	for f := 0; f < frames; f++ {
		for _, c := range order {
			res := w.Residency[c]
			if res == 0 {
				continue
			}
			tr.Phases = append(tr.Phases, Phase{
				Duration: period * res,
				Type:     BatteryLife,
				CState:   c,
				AR:       0.18,
			})
		}
	}
	return tr
}

// Generator produces randomized synthetic traces with a deterministic seed,
// mirroring the variety of the paper's trace corpus: phases alternate
// between active intervals with drifting AR and idle intervals in package
// C-states.
type Generator struct {
	rng *rand.Rand
}

// NewGenerator returns a generator seeded deterministically.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed))}
}

// Mixed returns a trace of n phases of the given type whose AR performs a
// bounded random walk in [arLo, arHi], with an idlePct fraction of phases
// spent in package idle states. Phase durations are 5–20 ms, matching the
// paper's 10 ms evaluation interval scale.
func (g *Generator) Mixed(name string, t Type, n int, arLo, arHi, idlePct float64) Trace {
	if arLo <= 0 || arHi > 1 || arHi < arLo {
		panic(fmt.Sprintf("workload: bad AR bounds [%g, %g]", arLo, arHi))
	}
	idleStates := domain.IdleCStates()
	tr := Trace{Name: name}
	ar := arLo + g.rng.Float64()*(arHi-arLo)
	for i := 0; i < n; i++ {
		dur := units.Second(0.005 + 0.015*g.rng.Float64())
		if g.rng.Float64() < idlePct {
			tr.Phases = append(tr.Phases, Phase{
				Duration: dur,
				Type:     t,
				CState:   idleStates[g.rng.Intn(len(idleStates))],
			})
			continue
		}
		ar += (g.rng.Float64() - 0.5) * 0.2 * (arHi - arLo)
		ar = units.Clamp(ar, arLo, arHi)
		tr.Phases = append(tr.Phases, Phase{Duration: dur, Type: t, CState: domain.C0, AR: ar})
	}
	return tr
}

// ValidationCorpus returns the deterministic set of (type, AR) points used
// to validate PDNspot against the reference simulator, covering the AR
// 40–80 % range of Fig 4 for each workload type, count points per type.
func ValidationCorpus(count int) []struct {
	Type Type
	AR   float64
} {
	var out []struct {
		Type Type
		AR   float64
	}
	for _, t := range Types() {
		for i := 0; i < count; i++ {
			ar := 0.40 + 0.40*float64(i)/float64(count-1)
			out = append(out, struct {
				Type Type
				AR   float64
			}{t, ar})
		}
	}
	return out
}
