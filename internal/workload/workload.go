// Package workload defines the workload suites the paper evaluates —
// SPEC CPU2006 (Fig 7), 3DMark06 graphics (Fig 8b), battery-life scenarios
// (Fig 8c) and the power-virus — together with the per-TDP nominal load
// tables used for the ETEE experiments (Fig 4/5) and a synthetic phase-trace
// generator standing in for the paper's ~5000 measured traces.
//
// A workload carries the two quantities PDNspot consumes (§2.4, §3.3): its
// application ratio AR (switching rate relative to the power virus) and its
// performance scalability (performance gained per unit frequency increase).
package workload

import (
	"fmt"
	"strings"
)

// Type classifies a workload the way the FlexWatts mode predictor does
// (§6): by which domains it stresses.
type Type int

// Workload types distinguished by the PMU (§6, "Runtime Estimation").
const (
	SingleThread Type = iota
	MultiThread
	Graphics
	BatteryLife
)

// Types lists the workload classes of Fig 4.
func Types() []Type { return []Type{SingleThread, MultiThread, Graphics} }

// String names the type as in the paper's figures.
func (t Type) String() string {
	switch t {
	case SingleThread:
		return "Single-Thread"
	case MultiThread:
		return "Multi-Thread"
	case Graphics:
		return "Graphics"
	case BatteryLife:
		return "Battery-Life"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType resolves a workload type name as the figures spell it
// ("Single-Thread", "Multi-Thread", "Graphics", "Battery-Life"),
// case-insensitively and with the hyphen optional, so HTTP clients can
// write "multi-thread" or "MultiThread" alike.
func ParseType(s string) (Type, error) {
	norm := func(v string) string {
		return strings.ToLower(strings.ReplaceAll(v, "-", ""))
	}
	for _, t := range []Type{SingleThread, MultiThread, Graphics, BatteryLife} {
		if norm(s) == norm(t.String()) {
			return t, nil
		}
	}
	return 0, fmt.Errorf("workload: unknown type %q (have Single-Thread, Multi-Thread, Graphics, Battery-Life)", s)
}

// Workload is one benchmark with its modeling inputs.
type Workload struct {
	Name string
	Type Type
	// AR is the application ratio of the dominant compute domain.
	AR float64
	// Scalability is the performance-scalability metric of §3.3: the
	// fractional performance improvement per fractional frequency increase
	// (1.0 = perfectly frequency-scalable, memory-bound workloads ≪ 1).
	Scalability float64
}

// Suite is an ordered set of workloads.
type Suite struct {
	Name      string
	Workloads []Workload
}

// Names returns the workload names in order.
func (s Suite) Names() []string {
	out := make([]string, len(s.Workloads))
	for i, w := range s.Workloads {
		out[i] = w.Name
	}
	return out
}

// MeanScalability returns the average performance scalability of the suite.
func (s Suite) MeanScalability() float64 {
	if len(s.Workloads) == 0 {
		return 0
	}
	var sum float64
	for _, w := range s.Workloads {
		sum += w.Scalability
	}
	return sum / float64(len(s.Workloads))
}

// SPECCPU2006 returns the 29 SPEC CPU2006 benchmarks in Fig 7's order
// (ascending average performance-scalability). The scalability assignments
// follow the published ordering — memory-bound codes (433.milc, 410.bwaves,
// 459.GemsFDTD, ...) scale poorly with frequency, compute-bound codes
// (456.hmmer, 416.gamess) scale almost perfectly — and the AR assignments
// give vectorized/compute-dense codes higher switching activity.
func SPECCPU2006() Suite {
	mk := func(name string, scal, ar float64) Workload {
		return Workload{Name: name, Type: SingleThread, AR: ar, Scalability: scal}
	}
	return Suite{
		Name: "SPEC CPU2006",
		Workloads: []Workload{
			mk("433.milc", 0.26, 0.47),
			mk("410.bwaves", 0.30, 0.52),
			mk("459.GemsFDTD", 0.33, 0.50),
			mk("450.soplex", 0.37, 0.46),
			mk("434.zeusmp", 0.41, 0.55),
			mk("437.leslie3d", 0.44, 0.54),
			mk("471.omnetpp", 0.47, 0.42),
			mk("429.mcf", 0.50, 0.40),
			mk("481.wrf", 0.55, 0.56),
			mk("403.gcc", 0.58, 0.48),
			mk("470.lbm", 0.61, 0.58),
			mk("436.cactusADM", 0.64, 0.57),
			mk("482.sphinx3", 0.68, 0.55),
			mk("462.libquantum", 0.71, 0.60),
			mk("447.dealII", 0.74, 0.58),
			mk("483.xalancbmk", 0.77, 0.50),
			mk("454.calculix", 0.80, 0.62),
			mk("473.astar", 0.82, 0.48),
			mk("435.gromacs", 0.85, 0.64),
			mk("401.bzip2", 0.87, 0.55),
			mk("465.tonto", 0.89, 0.62),
			mk("444.namd", 0.91, 0.66),
			mk("458.sjeng", 0.93, 0.58),
			mk("464.h264ref", 0.95, 0.68),
			mk("445.gobmk", 0.96, 0.56),
			mk("453.povray", 0.97, 0.65),
			mk("400.perlbench", 0.98, 0.60),
			mk("456.hmmer", 0.99, 0.70),
			mk("416.gamess", 1.00, 0.72),
		},
	}
}

// ThreeDMark06 returns the 3DMark06 graphics subtests (§7.1). Graphics
// workloads scale well with GFX frequency; their AR reflects shader
// occupancy.
func ThreeDMark06() Suite {
	mk := func(name string, scal, ar float64) Workload {
		return Workload{Name: name, Type: Graphics, AR: ar, Scalability: scal}
	}
	return Suite{
		Name: "3DMark06",
		Workloads: []Workload{
			mk("GT1 Return to Proxycon", 0.88, 0.62),
			mk("GT2 Firefly Forest", 0.90, 0.66),
			mk("HDR1 Canyon Flight", 0.93, 0.70),
			mk("HDR2 Deep Freeze", 0.95, 0.72),
		},
	}
}

// PowerVirus returns the synthetic maximum-power workload (AR = 1) used to
// size guardbands and Iccmax (§2.4).
func PowerVirus(t Type) Workload {
	return Workload{Name: "power-virus", Type: t, AR: 1, Scalability: 1}
}
