package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/domain"
)

func TestSPECSuite(t *testing.T) {
	s := SPECCPU2006()
	if len(s.Workloads) != 29 {
		t.Fatalf("SPEC CPU2006 has %d benchmarks, want 29", len(s.Workloads))
	}
	// Fig 7 sorts ascending by performance scalability.
	for i := 1; i < len(s.Workloads); i++ {
		if s.Workloads[i].Scalability <= s.Workloads[i-1].Scalability {
			t.Errorf("suite not ascending at %s", s.Workloads[i].Name)
		}
	}
	for _, w := range s.Workloads {
		if w.Type != SingleThread {
			t.Errorf("%s: type %v", w.Name, w.Type)
		}
		if !(w.AR > 0.2 && w.AR <= 1) || !(w.Scalability > 0 && w.Scalability <= 1) {
			t.Errorf("%s: AR %g scal %g out of range", w.Name, w.AR, w.Scalability)
		}
	}
	mean := s.MeanScalability()
	if mean < 0.6 || mean > 0.8 {
		t.Errorf("mean scalability %.2f, want ~0.7", mean)
	}
	if s.Names()[0] != "433.milc" || s.Names()[28] != "416.gamess" {
		t.Error("Fig 7 ordering endpoints wrong")
	}
}

func Test3DMarkSuite(t *testing.T) {
	s := ThreeDMark06()
	if len(s.Workloads) != 4 {
		t.Fatalf("3DMark06 has %d tests, want 4", len(s.Workloads))
	}
	for _, w := range s.Workloads {
		if w.Type != Graphics {
			t.Errorf("%s: type %v", w.Name, w.Type)
		}
	}
}

func TestPowerVirus(t *testing.T) {
	v := PowerVirus(MultiThread)
	if v.AR != 1 || v.Scalability != 1 {
		t.Error("power virus must have AR=1")
	}
}

func TestTDPScenarioBounds(t *testing.T) {
	plat := domain.NewClientPlatform()
	if _, err := TDPScenario(plat, 3, MultiThread, 0.6); err == nil {
		t.Error("TDP below range accepted")
	}
	if _, err := TDPScenario(plat, 60, MultiThread, 0.6); err == nil {
		t.Error("TDP above range accepted")
	}
	if _, err := TDPScenario(plat, 18, MultiThread, 0); err == nil {
		t.Error("zero AR accepted")
	}
	if _, err := TDPScenario(plat, 18, BatteryLife, 0.5); err == nil {
		t.Error("battery-life type accepted by TDPScenario")
	}
}

func TestTDPScenarioShape(t *testing.T) {
	plat := domain.NewClientPlatform()
	// Nominal power grows with TDP for every workload type.
	for _, wt := range Types() {
		prev := 0.0
		for _, tdp := range StandardTDPs() {
			s, err := TDPScenario(plat, tdp, wt, 0.6)
			if err != nil {
				t.Fatal(err)
			}
			total := s.TotalNominal()
			if total <= prev {
				t.Errorf("%v: nominal %g at %gW not above %g", wt, total, tdp, prev)
			}
			prev = total
		}
	}
	// ST powers one core, MT two, graphics powers GFX.
	st, _ := TDPScenario(plat, 18, SingleThread, 0.6)
	if st.Loads[domain.Core1].Active() {
		t.Error("ST should gate core1")
	}
	mt, _ := TDPScenario(plat, 18, MultiThread, 0.6)
	if !mt.Loads[domain.Core1].Active() {
		t.Error("MT should power core1")
	}
	gfx, _ := TDPScenario(plat, 18, Graphics, 0.6)
	if !gfx.Loads[domain.GFX].Active() {
		t.Error("graphics should power GFX")
	}
	// §7.1: graphics workloads run the LLC above the cores' voltage.
	if !(gfx.Loads[domain.LLC].VNom > gfx.Loads[domain.Core0].VNom) {
		t.Error("graphics LLC voltage should exceed core voltage")
	}
	// 4W cores nominal ~0.6W (Table 2 lower bound).
	s4, _ := TDPScenario(plat, 4, MultiThread, 0.6)
	cores := s4.Loads[domain.Core0].PNom + s4.Loads[domain.Core1].PNom
	if math.Abs(cores-0.6) > 0.05 {
		t.Errorf("4W cores nominal %.2f, want 0.6", cores)
	}
}

func TestCStateScenario(t *testing.T) {
	plat := domain.NewClientPlatform()
	// §5 worked example: C0MIN ~2.5W, C2 1.2W, C8 0.13W.
	c0 := CStateScenario(plat, domain.C0MIN).TotalNominal()
	if c0 < 2.1 || c0 > 2.9 {
		t.Errorf("C0MIN nominal %.2fW, want ~2.5W", c0)
	}
	if got := CStateScenario(plat, domain.C2).TotalNominal(); math.Abs(got-1.2) > 1e-9 {
		t.Errorf("C2 nominal %.3f, want 1.2", got)
	}
	if got := CStateScenario(plat, domain.C8).TotalNominal(); math.Abs(got-0.13) > 1e-9 {
		t.Errorf("C8 nominal %.3f, want 0.13", got)
	}
}

func TestBatteryWorkloads(t *testing.T) {
	ws := BatteryLifeWorkloads()
	if len(ws) != 4 {
		t.Fatalf("%d battery workloads, want 4", len(ws))
	}
	// §7.1 residencies: 10/20/30/40% C0MIN, each summing to 1.
	wantC0 := []float64{0.10, 0.20, 0.30, 0.40}
	for i, w := range ws {
		if w.Residency[domain.C0MIN] != wantC0[i] {
			t.Errorf("%s: C0MIN residency %g, want %g", w.Name, w.Residency[domain.C0MIN], wantC0[i])
		}
		var sum float64
		for _, r := range w.Residency {
			sum += r
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: residencies sum to %g", w.Name, sum)
		}
	}
}

func TestBatteryAveragePower(t *testing.T) {
	plat := domain.NewClientPlatform()
	w := BatteryLifeWorkloads()[0] // video playback
	// With perfect conversion the average power is the residency-weighted
	// nominal power: 0.1*2.5 + 0.05*1.2 + 0.85*0.13 ≈ 0.42W.
	got := w.AveragePower(plat, func(domain.CState) float64 { return 1 })
	if got < 0.38 || got > 0.46 {
		t.Errorf("ideal-PDN video playback power %.3fW, want ~0.42W", got)
	}
	// A PDN at 80% everywhere costs exactly 1/0.8 more.
	lossy := w.AveragePower(plat, func(domain.CState) float64 { return 0.8 })
	if math.Abs(lossy-got/0.8) > 1e-9 {
		t.Errorf("ETEE weighting broken: %g vs %g", lossy, got/0.8)
	}
}

func TestTraceValidate(t *testing.T) {
	if err := (Trace{Name: "empty"}).Validate(); err == nil {
		t.Error("empty trace accepted")
	}
	bad := Trace{Name: "bad", Phases: []Phase{{Duration: -1, CState: domain.C0, AR: 0.5}}}
	if err := bad.Validate(); err == nil {
		t.Error("negative duration accepted")
	}
	bad = Trace{Name: "bad", Phases: []Phase{{Duration: 1, CState: domain.C0, AR: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("active phase without AR accepted")
	}
	good := SteadyTrace("ok", MultiThread, 0.5, 1)
	if err := good.Validate(); err != nil {
		t.Errorf("steady trace rejected: %v", err)
	}
	if good.Duration() != 1 {
		t.Errorf("duration %g", good.Duration())
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(7).Mixed("a", MultiThread, 50, 0.3, 0.8, 0.2)
	b := NewGenerator(7).Mixed("b", MultiThread, 50, 0.3, 0.8, 0.2)
	if len(a.Phases) != len(b.Phases) {
		t.Fatal("phase count differs")
	}
	for i := range a.Phases {
		if a.Phases[i] != b.Phases[i] {
			t.Fatalf("phase %d differs between same-seed runs", i)
		}
	}
	if err := a.Validate(); err != nil {
		t.Errorf("generated trace invalid: %v", err)
	}
}

func TestGeneratorARBounds(t *testing.T) {
	f := func(seed int64) bool {
		tr := NewGenerator(seed).Mixed("t", Graphics, 40, 0.3, 0.8, 0.3)
		for _, ph := range tr.Phases {
			if ph.CState == domain.C0 && (ph.AR < 0.3-1e-9 || ph.AR > 0.8+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBatteryTrace(t *testing.T) {
	w := BatteryLifeWorkloads()[0]
	tr := BatteryTrace(w, 3, 1.0/60)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.Duration()-3.0/60) > 1e-9 {
		t.Errorf("trace duration %g, want 3 frames at 60fps", tr.Duration())
	}
}

func TestValidationCorpus(t *testing.T) {
	c := ValidationCorpus(5)
	if len(c) != 15 {
		t.Fatalf("corpus size %d, want 15 (3 types x 5)", len(c))
	}
	for _, pt := range c {
		if pt.AR < 0.4-1e-9 || pt.AR > 0.8+1e-9 {
			t.Errorf("corpus AR %g outside Fig 4's 40-80%%", pt.AR)
		}
	}
}

func TestPerfCluster(t *testing.T) {
	plat := domain.NewClientPlatform()
	cpu := PerfCluster(plat, 4, MultiThread)
	if len(cpu) != 2 || cpu[0].Kind != domain.Core0 || cpu[1].Kind != domain.LLC {
		t.Errorf("CPU cluster = %v", cpu)
	}
	gfx := PerfCluster(plat, 4, Graphics)
	if len(gfx) != 2 || gfx[0].Kind != domain.GFX {
		t.Errorf("GFX cluster = %v", gfx)
	}
	if cpu[0].F0 != CPUDesignFreq(4) {
		t.Error("cluster design frequency mismatch")
	}
}

func TestTypeString(t *testing.T) {
	if SingleThread.String() != "Single-Thread" || BatteryLife.String() != "Battery-Life" {
		t.Error("Type.String mismatch")
	}
	if len(Types()) != 3 {
		t.Error("Types() should list the three Fig 4 classes")
	}
}

func TestParseType(t *testing.T) {
	for s, want := range map[string]Type{
		"Multi-Thread": MultiThread, "multi-thread": MultiThread,
		"MultiThread": MultiThread, "graphics": Graphics,
		"single-thread": SingleThread, "battery-life": BatteryLife,
	} {
		got, err := ParseType(s)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseType("mining"); err == nil {
		t.Error("ParseType accepted an unknown type")
	}
}
