// Package sim runs workload phase traces against a PDN, integrating energy
// over time. It is the dynamic counterpart to PDNspot's closed-form
// interval model: the paper's §3.4 notes that dynamic workloads are handled
// by evaluating the model per interval, which is exactly what this
// simulator automates. For FlexWatts it additionally drives the
// mode-prediction controller, accounting for every mode switch's 94 µs
// pause and C6-residency energy (§6, "FlexWatts Overhead").
package sim

import (
	"context"
	"fmt"

	"repro/internal/activity"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/sweep"
	"repro/internal/units"
	"repro/internal/workload"
)

// Config describes the simulated platform.
type Config struct {
	Platform *domain.Platform
	// TDP is the configured thermal design power.
	TDP units.Watt
	// Sensor optionally replaces ground-truth AR with the activity-sensor
	// estimate when driving the FlexWatts predictor (nil = oracle AR).
	Sensor *activity.Sensor
}

// Report summarizes a simulation run.
type Report struct {
	Trace string
	PDN   pdn.Kind
	// Duration is total wall time including switch overhead.
	Duration units.Second
	// Energy is total energy drawn from the battery (joules).
	Energy float64
	// AvgPower = Energy / Duration.
	AvgPower units.Watt
	// AvgETEE is the energy-weighted end-to-end efficiency.
	AvgETEE float64
	// ModeSwitches counts FlexWatts transitions (0 for static PDNs).
	ModeSwitches int
	// SwitchOverhead is the cumulative time parked in C6 for switching.
	SwitchOverhead units.Second
	// ModeTime is the residency per hybrid mode (FlexWatts only).
	ModeTime map[core.Mode]units.Second
}

// scenarioFor maps a trace phase to an evaluation scenario.
func (c Config) scenarioFor(ph workload.Phase) (pdn.Scenario, error) {
	if ph.CState != domain.C0 {
		return workload.CStateScenario(c.Platform, ph.CState), nil
	}
	t := ph.Type
	if t == workload.BatteryLife {
		t = workload.SingleThread
	}
	return workload.TDPScenario(c.Platform, c.TDP, t, ph.AR)
}

// RunStatic simulates a trace on a fixed-topology PDN.
func RunStatic(cfg Config, m pdn.Model, tr workload.Trace) (Report, error) {
	if err := tr.Validate(); err != nil {
		return Report{}, err
	}
	rep := Report{Trace: tr.Name, PDN: m.Kind()}
	var nomEnergy float64
	for i, ph := range tr.Phases {
		s, err := cfg.scenarioFor(ph)
		if err != nil {
			return Report{}, fmt.Errorf("sim: phase %d: %w", i, err)
		}
		r, err := m.Evaluate(s)
		if err != nil {
			return Report{}, fmt.Errorf("sim: phase %d: %w", i, err)
		}
		rep.Duration += ph.Duration
		rep.Energy += r.PIn * ph.Duration
		nomEnergy += r.PNomTotal * ph.Duration
	}
	rep.AvgPower = rep.Energy / rep.Duration
	rep.AvgETEE = nomEnergy / rep.Energy
	return rep, nil
}

// RunFlexWatts simulates a trace on the hybrid PDN with the mode controller
// in the loop. Every controller interval the predictor sees the runtime
// inputs (optionally through the noisy activity sensor); a mode change
// parks the platform in C6 for the switch-flow latency and burns its
// energy.
func RunFlexWatts(cfg Config, m *core.Model, ctrl *core.Controller, tr workload.Trace) (Report, error) {
	if err := tr.Validate(); err != nil {
		return Report{}, err
	}
	rep := Report{
		Trace:    tr.Name,
		PDN:      pdn.FlexWatts,
		ModeTime: map[core.Mode]units.Second{},
	}
	var nomEnergy float64
	startSwitches := ctrl.Switches()
	for i, ph := range tr.Phases {
		s, err := cfg.scenarioFor(ph)
		if err != nil {
			return Report{}, fmt.Errorf("sim: phase %d: %w", i, err)
		}
		in := core.InputsFromScenario(s, cfg.TDP)
		if ph.Type != workload.BatteryLife {
			in.Type = ph.Type
		}
		if cfg.Sensor != nil && ph.CState == domain.C0 {
			in.AR = cfg.Sensor.Read(ph.AR, 0.3)
		}
		mode, overhead, switchEnergy := ctrl.Step(ph.Duration, in)
		r, err := m.EvaluateMode(s, mode)
		if err != nil {
			return Report{}, fmt.Errorf("sim: phase %d: %w", i, err)
		}
		rep.Duration += ph.Duration + overhead
		rep.SwitchOverhead += overhead
		rep.Energy += r.PIn*ph.Duration + switchEnergy
		nomEnergy += r.PNomTotal * ph.Duration
		rep.ModeTime[mode] += ph.Duration
	}
	rep.ModeSwitches = ctrl.Switches() - startSwitches
	rep.AvgPower = rep.Energy / rep.Duration
	rep.AvgETEE = nomEnergy / rep.Energy
	return rep, nil
}

// CompareOnTraces runs CompareOnTrace for every trace, independent traces
// concurrently on the sweep engine (workers <= 0 sizes the pool by
// GOMAXPROCS, 1 is serial); reports are returned in trace order, so the
// batch is deterministic regardless of scheduling. Each trace gets a fresh
// FlexWatts controller via CompareOnTrace, keeping mode state isolated. A
// configured activity sensor carries RNG state from read to read, so a
// non-nil cfg.Sensor forces the batch serial to keep its read stream — and
// thus the reports — identical to looping CompareOnTrace by hand.
//
// Cancelling ctx aborts the batch between traces: no new trace starts once
// ctx is done and the call returns context.Cause(ctx).
func CompareOnTraces(ctx context.Context, cfg Config, statics []pdn.Model, fw *core.Model, pred *core.Predictor, traces []workload.Trace, workers int) ([]map[pdn.Kind]Report, error) {
	if cfg.Sensor != nil {
		workers = 1
	}
	return sweep.MapCtx(ctx, workers, len(traces), func(i int) (map[pdn.Kind]Report, error) {
		out, err := CompareOnTrace(cfg, statics, fw, pred, traces[i])
		if err != nil {
			return nil, fmt.Errorf("sim: trace %q: %w", traces[i].Name, err)
		}
		return out, nil
	})
}

// CompareOnTrace runs the same trace on every model plus FlexWatts and
// returns reports keyed by PDN kind; the FlexWatts controller is fresh for
// each call.
func CompareOnTrace(cfg Config, statics []pdn.Model, fw *core.Model, pred *core.Predictor, tr workload.Trace) (map[pdn.Kind]Report, error) {
	out := make(map[pdn.Kind]Report, len(statics)+1)
	for _, m := range statics {
		rep, err := RunStatic(cfg, m, tr)
		if err != nil {
			return nil, err
		}
		out[m.Kind()] = rep
	}
	if fw != nil && pred != nil {
		ctrl := core.NewController(pred, core.DefaultSwitchFlow())
		rep, err := RunFlexWatts(cfg, fw, ctrl, tr)
		if err != nil {
			return nil, err
		}
		out[pdn.FlexWatts] = rep
	}
	return out, nil
}
