package sim

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/activity"
	"repro/internal/core"
	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/workload"
)

func testSetup(t *testing.T) (Config, []pdn.Model, *core.Model, *core.Predictor) {
	t.Helper()
	plat := domain.NewClientPlatform()
	params := pdn.DefaultParams()
	statics := []pdn.Model{}
	for _, k := range pdn.Kinds() {
		m, err := pdn.New(k, params)
		if err != nil {
			t.Fatal(err)
		}
		statics = append(statics, m)
	}
	fw := core.NewModel(params)
	pred, err := core.NewPredictor(plat, fw, core.DefaultPredictorConfig())
	if err != nil {
		t.Fatal(err)
	}
	return Config{Platform: plat, TDP: 18}, statics, fw, pred
}

func TestRunStaticSteady(t *testing.T) {
	cfg, statics, _, _ := testSetup(t)
	tr := workload.SteadyTrace("steady", workload.MultiThread, 0.6, 0.1)
	rep, err := RunStatic(cfg, statics[0], tr)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Duration != 0.1 {
		t.Errorf("duration %g", rep.Duration)
	}
	// Energy = power * time for a steady trace.
	if math.Abs(rep.Energy-rep.AvgPower*0.1) > 1e-9 {
		t.Error("energy/power inconsistency")
	}
	if !(rep.AvgETEE > 0.5 && rep.AvgETEE < 1) {
		t.Errorf("ETEE %g", rep.AvgETEE)
	}
	if rep.ModeSwitches != 0 {
		t.Error("static PDN cannot switch modes")
	}
}

func TestRunStaticMatchesClosedForm(t *testing.T) {
	// A steady trace's simulated ETEE equals the closed-form evaluation.
	cfg, statics, _, _ := testSetup(t)
	s, err := workload.TDPScenario(cfg.Platform, cfg.TDP, workload.MultiThread, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	want, err := statics[0].Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.SteadyTrace("steady", workload.MultiThread, 0.6, 0.05)
	rep, err := RunStatic(cfg, statics[0], tr)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.AvgETEE-want.ETEE) > 1e-9 {
		t.Errorf("sim ETEE %.6f != closed form %.6f", rep.AvgETEE, want.ETEE)
	}
}

func TestFlexBeatsWorstStaticOnMixedTrace(t *testing.T) {
	cfg, statics, fw, pred := testSetup(t)
	tr := workload.NewGenerator(3).Mixed("mixed", workload.MultiThread, 200, 0.3, 0.85, 0.25)
	reports, err := CompareOnTrace(cfg, statics, fw, pred, tr)
	if err != nil {
		t.Fatal(err)
	}
	flex := reports[pdn.FlexWatts]
	if flex.ModeSwitches == 0 {
		t.Error("the mixed trace should trigger at least one mode switch")
	}
	// FlexWatts must land within 1.5% of the best static energy and beat
	// the IVR baseline.
	best := math.Inf(1)
	for _, k := range pdn.Kinds() {
		best = math.Min(best, reports[k].Energy)
	}
	if flex.Energy > best*1.015 {
		t.Errorf("FlexWatts energy %.3fJ exceeds best static %.3fJ by > 1.5%%", flex.Energy, best)
	}
	if !(flex.Energy < reports[pdn.IVR].Energy) {
		t.Errorf("FlexWatts %.3fJ should beat IVR %.3fJ on a mixed 18W trace",
			flex.Energy, reports[pdn.IVR].Energy)
	}
	// Residency accounting covers the whole active time.
	var modeTime float64
	for _, d := range flex.ModeTime {
		modeTime += d
	}
	if math.Abs(modeTime-(flex.Duration-flex.SwitchOverhead)) > 1e-9 {
		t.Error("mode residency does not cover the trace")
	}
}

func TestFlexWithNoisySensor(t *testing.T) {
	cfg, _, fw, pred := testSetup(t)
	cfg.Sensor = activity.NewSensor(activity.DefaultWeights(), 5)
	tr := workload.NewGenerator(4).Mixed("noisy", workload.MultiThread, 100, 0.3, 0.85, 0.2)
	ctrl := core.NewController(pred, core.DefaultSwitchFlow())
	rep, err := RunFlexWatts(cfg, fw, ctrl, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !(rep.AvgETEE > 0.5 && rep.AvgETEE < 1) {
		t.Errorf("noisy-sensor ETEE %g", rep.AvgETEE)
	}
}

func TestBatteryTraceSim(t *testing.T) {
	// Simulating the video-playback trace reproduces the closed-form
	// residency-weighted average power within a few percent.
	cfg, statics, _, _ := testSetup(t)
	bw := workload.BatteryLifeWorkloads()[0]
	tr := workload.BatteryTrace(bw, 30, 1.0/60)
	rep, err := RunStatic(cfg, statics[0], tr)
	if err != nil {
		t.Fatal(err)
	}
	want := bw.AveragePower(cfg.Platform, func(c domain.CState) float64 {
		r, err := statics[0].Evaluate(workload.CStateScenario(cfg.Platform, c))
		if err != nil {
			t.Fatal(err)
		}
		return r.ETEE
	})
	if math.Abs(rep.AvgPower-want)/want > 0.05 {
		t.Errorf("simulated avg power %.3fW vs closed form %.3fW", rep.AvgPower, want)
	}
}

func TestInvalidTraceRejected(t *testing.T) {
	cfg, statics, fw, pred := testSetup(t)
	bad := workload.Trace{Name: "bad"}
	if _, err := RunStatic(cfg, statics[0], bad); err == nil {
		t.Error("empty trace accepted by RunStatic")
	}
	ctrl := core.NewController(pred, core.DefaultSwitchFlow())
	if _, err := RunFlexWatts(cfg, fw, ctrl, bad); err == nil {
		t.Error("empty trace accepted by RunFlexWatts")
	}
}

func testTraces(n int) []workload.Trace {
	traces := make([]workload.Trace, n)
	for i := range traces {
		traces[i] = workload.NewGenerator(int64(i+1)).Mixed(
			fmt.Sprintf("trace-%d", i), workload.MultiThread, 60, 0.3, 0.85, 0.25)
	}
	return traces
}

func TestCompareOnTracesMatchesSerial(t *testing.T) {
	// The concurrent batch must produce, in trace order, exactly the
	// reports a serial CompareOnTrace loop produces.
	cfg, statics, fw, pred := testSetup(t)
	traces := testTraces(4)

	want := make([]map[pdn.Kind]Report, len(traces))
	for i, tr := range traces {
		rep, err := CompareOnTrace(cfg, statics, fw, pred, tr)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}

	got, err := CompareOnTraces(context.Background(), cfg, statics, fw, pred, traces, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d reports, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("trace %d: batch report differs from serial:\ngot  %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestCompareOnTracesSensorStaysDeterministic(t *testing.T) {
	// A shared activity sensor carries RNG state, so the batch must fall
	// back to serial execution and reproduce the serial loop's reports
	// even when callers ask for a worker pool.
	cfg, statics, fw, pred := testSetup(t)
	traces := testTraces(3)

	cfg.Sensor = activity.NewSensor(activity.DefaultWeights(), 42)
	want := make([]map[pdn.Kind]Report, len(traces))
	for i, tr := range traces {
		rep, err := CompareOnTrace(cfg, statics, fw, pred, tr)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}

	cfg.Sensor = activity.NewSensor(activity.DefaultWeights(), 42)
	got, err := CompareOnTraces(context.Background(), cfg, statics, fw, pred, traces, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("trace %d: sensor batch report differs from serial loop", i)
		}
	}
}

func TestCompareOnTracesEmpty(t *testing.T) {
	cfg, statics, fw, pred := testSetup(t)
	got, err := CompareOnTraces(context.Background(), cfg, statics, fw, pred, nil, 4)
	if err != nil || got != nil {
		t.Errorf("empty batch = (%v, %v), want (nil, nil)", got, err)
	}
}
