package loadline

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestGuardbandScaleIdentity(t *testing.T) {
	if got := GuardbandScale(1.0, 0, 0.22); got != 1 {
		t.Errorf("zero guardband must not scale power, got %g", got)
	}
}

func TestGuardbandScaleKnownValue(t *testing.T) {
	// Pure dynamic (FL=0): scale is the squared voltage ratio.
	got := GuardbandScale(1.0, 0.1, 0)
	if math.Abs(got-1.21) > 1e-12 {
		t.Errorf("dynamic scale = %g, want 1.21", got)
	}
	// Pure leakage (FL=1): the delta=2.8 polynomial.
	got = GuardbandScale(1.0, 0.1, 1)
	if math.Abs(got-math.Pow(1.1, 2.8)) > 1e-12 {
		t.Errorf("leakage scale = %g, want 1.1^2.8", got)
	}
	// Eq. 2 mixes them linearly by FL.
	got = GuardbandScale(1.0, 0.1, 0.5)
	want := 0.5*math.Pow(1.1, 2.8) + 0.5*1.21
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("mixed scale = %g, want %g", got, want)
	}
}

func TestGuardbandScaleProperties(t *testing.T) {
	f := func(vgbRaw, flRaw float64) bool {
		vgb := math.Mod(math.Abs(vgbRaw), 0.2)
		fl := math.Mod(math.Abs(flRaw), 1.0)
		s := GuardbandScale(0.8, vgb, fl)
		// Guardbands only ever increase power, and leakage scales harder
		// than dynamic (2.8 > 2), so the scale grows with FL.
		if s < 1 {
			return false
		}
		return GuardbandScale(0.8, vgb, fl) <= GuardbandScale(0.8, vgb, math.Min(1, fl+0.1))+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyGuardband(t *testing.T) {
	if got := ApplyGuardband(0, 1, 0.02, 0.22); got != 0 {
		t.Errorf("zero power stays zero, got %g", got)
	}
	got := ApplyGuardband(2.0, 1.0, 0.02, 0.22)
	want := 2.0 * GuardbandScale(1.0, 0.02, 0.22)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PGB = %g, want %g", got, want)
	}
}

func TestPowerGateDrop(t *testing.T) {
	// 2W at AR 0.5 and 1V: peak current 4A through 1.5mOhm -> 6mV.
	got := PowerGateDrop(2, 0.5, 1.0, units.MilliOhm(1.5))
	if math.Abs(got-0.006) > 1e-12 {
		t.Errorf("drop = %g, want 6mV", got)
	}
	if PowerGateDrop(0, 0.5, 1.0, 0.001) != 0 {
		t.Error("zero power has zero drop")
	}
}

func TestApplyPowerGate(t *testing.T) {
	pgb := 2.0
	got := ApplyPowerGate(pgb, 1.0, 0.5, 0.22, units.MilliOhm(1.5))
	if !(got > pgb) {
		t.Errorf("PPG %g must exceed PGB %g", got, pgb)
	}
	if ApplyPowerGate(0, 1.0, 0.5, 0.22, 0.001) != 0 {
		t.Error("zero power stays zero")
	}
}

func TestCompensateEquations(t *testing.T) {
	// Worked example of Eq. 3/4: P=10W at 1V, AR=0.5 (so Ppeak=20W,
	// Ipeak=20A), RLL=2.5mOhm: VLL = 1 + 20*0.0025 = 1.05V,
	// PLL = 1.05 * 10/1 = 10.5W.
	r := Compensate(10, 1.0, 0.5, units.MilliOhm(2.5))
	if math.Abs(r.V-1.05) > 1e-12 {
		t.Errorf("VLL = %g, want 1.05", r.V)
	}
	if math.Abs(r.P-10.5) > 1e-12 {
		t.Errorf("PLL = %g, want 10.5", r.P)
	}
	if math.Abs(r.I-10) > 1e-12 {
		t.Errorf("I = %g, want 10", r.I)
	}
	if math.Abs(r.Loss-0.5) > 1e-12 {
		t.Errorf("Loss = %g, want 0.5", r.Loss)
	}
}

func TestCompensateZero(t *testing.T) {
	r := Compensate(0, 1.0, 0.5, 0.0025)
	if r.P != 0 || r.Loss != 0 || r.I != 0 {
		t.Errorf("zero power: %+v", r)
	}
}

func TestCompensateProperties(t *testing.T) {
	f := func(pRaw, arRaw, rRaw float64) bool {
		p := 0.1 + math.Mod(math.Abs(pRaw), 50)
		ar := 0.1 + math.Mod(math.Abs(arRaw), 0.9)
		rll := math.Mod(math.Abs(rRaw), 0.01)
		r := Compensate(p, 1.0, ar, rll)
		// The compensation only ever costs power, raises voltage, and the
		// loss shrinks as AR rises (lower peak-to-average ratio).
		if r.Loss < 0 || r.V < 1.0 || r.P < p {
			return false
		}
		r2 := Compensate(p, 1.0, math.Min(1, ar+0.1), rll)
		return r2.Loss <= r.Loss+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
