// Package loadline implements the voltage-guardband and load-line arithmetic
// shared by every PDN model in PDNspot (paper §3.1, Equations 2–4 and 7–8).
//
// Three effects inflate a domain's nominal power on the way to the power
// supply:
//
//  1. Tolerance-band guardband (Eq. 2): the supply is kept VTOB above the
//     nominal voltage to cover controller tolerance, current-sense variation
//     and ripple. Dynamic power scales with the square of the voltage ratio,
//     leakage with the validated δ ≈ 2.8 power.
//  2. Power-gate drop: conducting power gates add a series drop VPG = RPG·I
//     that must also be compensated by raising the supply (same Eq. 2 form).
//  3. Load-line (Eq. 3/4 and 7/8): the board/package impedance RLL drops
//     voltage proportionally to current, and the guardband must cover the
//     *worst-case* current — the power-virus workload (AR = 1) — so the VR
//     output is raised by (Ppeak/V)·RLL where Ppeak = P/AR.
package loadline

import (
	"math"
	"sync/atomic"

	"repro/internal/domain"
	"repro/internal/units"
)

// gbEntry memoizes one guardband-scale evaluation point. The scale factor
// depends only on (vnom, vgb, fl) — not on the power flowing through — and
// evaluation workloads revisit the same handful of operating voltages
// millions of times (the reference simulator perturbs only PNom), so the
// math.Pow in Eq. 2 is worth memoizing.
type gbEntry struct {
	vnom, vgb units.Volt
	fl        float64
	scale     float64
}

// gbCache is a 4-way set-associative, lock-free memo for GuardbandScale.
// Each slot is an atomic pointer to an immutable entry: a hit is one cheap
// hand hash, a pointer load and three float compares — far cheaper than
// either math.Pow or a runtime map lookup. A miss fills the first empty way
// of its set and only evicts (way 0, last writer wins) when the whole set
// is full, so colliding hot keys coexist instead of thrashing allocations.
// GuardbandScale is a pure function, so a cached hit returns the exact
// float bits the direct computation produced regardless of which goroutine
// filled the slot.
const (
	gbWays  = 4
	gbSets  = 1 << 12
	gbSlots = gbSets * gbWays
)

var gbCache [gbSlots]atomic.Pointer[gbEntry]

// gbSet mixes the three operand bit patterns into a set index
// (splitmix64-style multiply-xorshift).
func gbSet(vnom, vgb units.Volt, fl float64) uint64 {
	h := math.Float64bits(vnom)
	h = (h ^ math.Float64bits(vgb)*0x9e3779b97f4a7c15) * 0xbf58476d1ce4e5b9
	h = (h ^ math.Float64bits(fl)*0x94d049bb133111eb) * 0xff51afd7ed558ccd
	h ^= h >> 33
	return (h % gbSets) * gbWays
}

// rawGuardbandScale is the uncached Eq. 2 computation shared by the memoized
// and the memo-bypassing call paths; both therefore produce identical bits.
func rawGuardbandScale(vnom, vgb units.Volt, fl float64) float64 {
	units.CheckPositive("vnom", vnom)
	units.CheckNonNegative("vgb", vgb)
	units.CheckFraction("fl", fl)
	ratio := (vnom + vgb) / vnom
	return fl*math.Pow(ratio, domain.LeakVoltageExp) + (1-fl)*ratio*ratio
}

// GuardbandScale returns the factor by which a domain's power grows when its
// supply voltage rises from vnom to vnom+vgb (Eq. 2): the leakage fraction
// fl scales polynomially with exponent δ = 2.8, the dynamic remainder
// quadratically. Callers pass a platform tolerance band or rail-sharing
// delta as vgb — a small, heavily repeated operand set — which is what makes
// the memo effective; a guardband that varies per call (the power-gate drop)
// must use rawGuardbandScale instead so it doesn't churn the cache.
func GuardbandScale(vnom, vgb units.Volt, fl float64) float64 {
	set := gbSet(vnom, vgb, fl)
	insert := &gbCache[set]
	haveEmpty := false
	for w := uint64(0); w < gbWays; w++ {
		slot := &gbCache[set+w]
		e := slot.Load()
		if e == nil {
			if !haveEmpty {
				haveEmpty = true
				insert = slot
			}
			continue
		}
		if e.vnom == vnom && e.vgb == vgb && e.fl == fl {
			return e.scale
		}
	}
	v := rawGuardbandScale(vnom, vgb, fl)
	insert.Store(&gbEntry{vnom: vnom, vgb: vgb, fl: fl, scale: v})
	return v
}

// ApplyGuardband returns PGB, the power after raising the supply by vgb
// above vnom (Eq. 2).
func ApplyGuardband(pnom units.Watt, vnom, vgb units.Volt, fl float64) units.Watt {
	units.CheckNonNegative("pnom", pnom)
	if pnom == 0 {
		return 0
	}
	return pnom * GuardbandScale(vnom, vgb, fl)
}

// PowerGateDrop returns the voltage drop across a conducting power gate of
// impedance rpg carrying the domain's worst-case current at supply voltage
// v: the current guardband again assumes the power virus (p/ar at voltage v).
func PowerGateDrop(p units.Watt, ar float64, v units.Volt, rpg units.Ohm) units.Volt {
	if p == 0 {
		return 0
	}
	units.CheckPositive("v", v)
	units.CheckPositive("ar", ar)
	ipeak := p / ar / v
	return rpg * ipeak
}

// ApplyPowerGate returns PPG: the power after compensating the power-gate
// drop, computed with the Eq. 2 form using (VPG, PGB, vgb+vnom) in place of
// (VGB, PNOM, VNOM) as §3.1 describes.
func ApplyPowerGate(pgb units.Watt, vSupply units.Volt, ar, fl float64, rpg units.Ohm) units.Watt {
	if pgb == 0 {
		return 0
	}
	vpg := PowerGateDrop(pgb, ar, vSupply, rpg)
	// vpg tracks the instantaneous current, so (vSupply, vpg, fl) is a fresh
	// evaluation point nearly every call — computing directly beats churning
	// GuardbandScale's memo with single-use keys.
	units.CheckNonNegative("pgb", pgb)
	return pgb * rawGuardbandScale(vSupply, vpg, fl)
}

// Result carries the outputs of a load-line compensation step.
type Result struct {
	// V is the raised VR output voltage VD_LL (Eq. 3 / Eq. 7).
	V units.Volt
	// P is the power drawn from the VR output PD_LL (Eq. 4 / Eq. 8).
	P units.Watt
	// I is the average current through the load-line at the raised voltage.
	I units.Amp
	// Loss is the extra power paid for the compensation (P − Pin).
	Loss units.Watt
}

// Compensate applies Equations 3/4 (identically 7/8) to a group of domains
// that share a VR rail: given the group's power p at nominal rail voltage v,
// the group application ratio ar (peak power is p/ar), and the rail
// impedance rll, it returns the raised voltage, the power at the VR output,
// and the implied average current.
func Compensate(p units.Watt, v units.Volt, ar float64, rll units.Ohm) Result {
	units.CheckNonNegative("p", p)
	if p == 0 {
		return Result{V: v}
	}
	units.CheckPositive("v", v)
	units.CheckPositive("ar", ar)
	units.CheckNonNegative("rll", rll)
	ppeak := p / ar
	vll := v + ppeak/v*rll // Eq. 3 / Eq. 7
	pll := vll * p / v     // Eq. 4 / Eq. 8
	return Result{
		V:    vll,
		P:    pll,
		I:    p / v, // ID = PD/VD; the same current flows at the raised voltage
		Loss: pll - p,
	}
}
