// Package loadline implements the voltage-guardband and load-line arithmetic
// shared by every PDN model in PDNspot (paper §3.1, Equations 2–4 and 7–8).
//
// Three effects inflate a domain's nominal power on the way to the power
// supply:
//
//  1. Tolerance-band guardband (Eq. 2): the supply is kept VTOB above the
//     nominal voltage to cover controller tolerance, current-sense variation
//     and ripple. Dynamic power scales with the square of the voltage ratio,
//     leakage with the validated δ ≈ 2.8 power.
//  2. Power-gate drop: conducting power gates add a series drop VPG = RPG·I
//     that must also be compensated by raising the supply (same Eq. 2 form).
//  3. Load-line (Eq. 3/4 and 7/8): the board/package impedance RLL drops
//     voltage proportionally to current, and the guardband must cover the
//     *worst-case* current — the power-virus workload (AR = 1) — so the VR
//     output is raised by (Ppeak/V)·RLL where Ppeak = P/AR.
package loadline

import (
	"math"

	"repro/internal/domain"
	"repro/internal/units"
)

// GuardbandScale returns the factor by which a domain's power grows when its
// supply voltage rises from vnom to vnom+vgb (Eq. 2): the leakage fraction
// fl scales polynomially with exponent δ = 2.8, the dynamic remainder
// quadratically.
func GuardbandScale(vnom, vgb units.Volt, fl float64) float64 {
	units.CheckPositive("vnom", vnom)
	units.CheckNonNegative("vgb", vgb)
	units.CheckFraction("fl", fl)
	ratio := (vnom + vgb) / vnom
	return fl*math.Pow(ratio, domain.LeakVoltageExp) + (1-fl)*ratio*ratio
}

// ApplyGuardband returns PGB, the power after raising the supply by vgb
// above vnom (Eq. 2).
func ApplyGuardband(pnom units.Watt, vnom, vgb units.Volt, fl float64) units.Watt {
	units.CheckNonNegative("pnom", pnom)
	if pnom == 0 {
		return 0
	}
	return pnom * GuardbandScale(vnom, vgb, fl)
}

// PowerGateDrop returns the voltage drop across a conducting power gate of
// impedance rpg carrying the domain's worst-case current at supply voltage
// v: the current guardband again assumes the power virus (p/ar at voltage v).
func PowerGateDrop(p units.Watt, ar float64, v units.Volt, rpg units.Ohm) units.Volt {
	if p == 0 {
		return 0
	}
	units.CheckPositive("v", v)
	units.CheckPositive("ar", ar)
	ipeak := p / ar / v
	return rpg * ipeak
}

// ApplyPowerGate returns PPG: the power after compensating the power-gate
// drop, computed with the Eq. 2 form using (VPG, PGB, vgb+vnom) in place of
// (VGB, PNOM, VNOM) as §3.1 describes.
func ApplyPowerGate(pgb units.Watt, vSupply units.Volt, ar, fl float64, rpg units.Ohm) units.Watt {
	if pgb == 0 {
		return 0
	}
	vpg := PowerGateDrop(pgb, ar, vSupply, rpg)
	return ApplyGuardband(pgb, vSupply, vpg, fl)
}

// Result carries the outputs of a load-line compensation step.
type Result struct {
	// V is the raised VR output voltage VD_LL (Eq. 3 / Eq. 7).
	V units.Volt
	// P is the power drawn from the VR output PD_LL (Eq. 4 / Eq. 8).
	P units.Watt
	// I is the average current through the load-line at the raised voltage.
	I units.Amp
	// Loss is the extra power paid for the compensation (P − Pin).
	Loss units.Watt
}

// Compensate applies Equations 3/4 (identically 7/8) to a group of domains
// that share a VR rail: given the group's power p at nominal rail voltage v,
// the group application ratio ar (peak power is p/ar), and the rail
// impedance rll, it returns the raised voltage, the power at the VR output,
// and the implied average current.
func Compensate(p units.Watt, v units.Volt, ar float64, rll units.Ohm) Result {
	units.CheckNonNegative("p", p)
	if p == 0 {
		return Result{V: v}
	}
	units.CheckPositive("v", v)
	units.CheckPositive("ar", ar)
	units.CheckNonNegative("rll", rll)
	ppeak := p / ar
	vll := v + ppeak/v*rll // Eq. 3 / Eq. 7
	pll := vll * p / v     // Eq. 4 / Eq. 8
	return Result{
		V:    vll,
		P:    pll,
		I:    p / v, // ID = PD/VD; the same current flows at the raised voltage
		Loss: pll - p,
	}
}
