package cost

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestSizeRailCounts(t *testing.T) {
	plat := domain.NewClientPlatform()
	want := map[pdn.Kind]int{
		pdn.IVR:       1, // single shared V_IN
		pdn.MBVR:      4, // V_Cores, V_GFX, V_SA, V_IO
		pdn.LDO:       3, // V_IN, V_SA, V_IO
		pdn.IMBVR:     3,
		pdn.FlexWatts: 3,
	}
	for k, n := range want {
		req, err := Size(plat, k, 18)
		if err != nil {
			t.Fatal(err)
		}
		if len(req.Rails) != n {
			t.Errorf("%v: %d rails, want %d", k, len(req.Rails), n)
		}
		if req.TotalIccmax() <= 0 {
			t.Errorf("%v: non-positive total Iccmax", k)
		}
	}
	if _, err := Size(plat, pdn.Kind(99), 18); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestPriceDegenerateInputs pins the pricing model's behavior at the
// edges the optimizer can steer it to: an empty rail set, a zero-current
// (zero-area) VR, and sub-phase currents must all price to finite,
// non-negative numbers — a NaN or Inf here would silently poison every
// frontier score derived from the estimate.
func TestPriceDegenerateInputs(t *testing.T) {
	finite := func(name string, e Estimate) {
		t.Helper()
		if math.IsNaN(e.BOM) || math.IsInf(e.BOM, 0) || e.BOM < 0 {
			t.Errorf("%s: BOM %g", name, e.BOM)
		}
		if math.IsNaN(e.Area) || math.IsInf(e.Area, 0) || e.Area < 0 {
			t.Errorf("%s: area %g", name, e.Area)
		}
	}
	for _, tdp := range []float64{4, 18, 18.01, 50} {
		finite("empty rails", Price(Requirements{PDN: pdn.IVR, TDP: units.Watt(tdp)}))
		finite("zero-area VR", Price(Requirements{PDN: pdn.IVR, TDP: units.Watt(tdp),
			Rails: []Rail{{Name: "V_IN", VOut: 1.8, Iccmax: 0}}}))
		finite("sub-phase current", Price(Requirements{PDN: pdn.MBVR, TDP: units.Watt(tdp),
			Rails: []Rail{{Name: "V_Cores", VOut: 0.8, Iccmax: 0.01}}}))
	}
}

// TestNormalizedFiniteAtTDPEdges sweeps the TDP extremes the optimizer's
// spec validation admits and demands finite, strictly positive normalized
// ratios for every PDN — the denominators of the optimizer's cost and
// area objectives.
func TestNormalizedFiniteAtTDPEdges(t *testing.T) {
	plat := domain.NewClientPlatform()
	for _, tdp := range []float64{4, 17.99, 18, 18.01, 50} {
		bom, area, err := Normalized(plat, units.Watt(tdp))
		if err != nil {
			t.Fatalf("tdp %g: %v", tdp, err)
		}
		for _, k := range pdn.AllKinds() {
			for name, v := range map[string]float64{"bom": bom[k], "area": area[k]} {
				if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
					t.Errorf("tdp %g %v: %s ratio %g", tdp, k, name, v)
				}
			}
		}
	}
}

func TestSharingReducesIccmax(t *testing.T) {
	// §3.2: "VR sharing between multiple domains effectively reduces the
	// maximum current required". The IVR PDN's single 1.8V rail needs less
	// total Iccmax than MBVR's four low-voltage rails.
	plat := domain.NewClientPlatform()
	for _, tdp := range workload.StandardTDPs() {
		ivr, _ := Size(plat, pdn.IVR, tdp)
		mbvr, _ := Size(plat, pdn.MBVR, tdp)
		if !(ivr.TotalIccmax() < mbvr.TotalIccmax()) {
			t.Errorf("%gW: IVR Iccmax %.1fA should undercut MBVR %.1fA",
				tdp, ivr.TotalIccmax(), mbvr.TotalIccmax())
		}
	}
}

func TestFlexSizedLikeIVR(t *testing.T) {
	// §7.1: FlexWatts' shared VR is designed with a maximum current level
	// similar to IVR's because high-power workloads run IVR-Mode.
	plat := domain.NewClientPlatform()
	for _, tdp := range workload.StandardTDPs() {
		flex, _ := Size(plat, pdn.FlexWatts, tdp)
		ldo, _ := Size(plat, pdn.LDO, tdp)
		if !(flex.Rails[0].Iccmax < ldo.Rails[0].Iccmax) {
			t.Errorf("%gW: Flex V_IN %.1fA should undercut LDO's %.1fA (1.8V vs low-V rail)",
				tdp, flex.Rails[0].Iccmax, ldo.Rails[0].Iccmax)
		}
	}
}

func TestNormalizedRatioBands(t *testing.T) {
	// Fig 8(d,e): MBVR 2.1-4.2x / LDO 1.6-3.1x the IVR BOM (we accept a
	// slightly wider modeled envelope); FlexWatts and I+MBVR comparable to
	// IVR (< 1.5x).
	plat := domain.NewClientPlatform()
	for _, tdp := range workload.StandardTDPs() {
		bom, area, err := Normalized(plat, tdp)
		if err != nil {
			t.Fatal(err)
		}
		if bom[pdn.IVR] != 1 || area[pdn.IVR] != 1 {
			t.Fatalf("%gW: IVR not normalized to 1", tdp)
		}
		if bom[pdn.MBVR] < 1.8 || bom[pdn.MBVR] > 4.5 {
			t.Errorf("%gW: MBVR BOM ratio %.2f outside [1.8, 4.5]", tdp, bom[pdn.MBVR])
		}
		if bom[pdn.LDO] < 1.4 || bom[pdn.LDO] > 3.3 {
			t.Errorf("%gW: LDO BOM ratio %.2f outside [1.4, 3.3]", tdp, bom[pdn.LDO])
		}
		if bom[pdn.FlexWatts] > 1.5 || bom[pdn.IMBVR] > 1.5 {
			t.Errorf("%gW: Flex/I+MBVR BOM %.2f/%.2f should stay comparable to IVR",
				tdp, bom[pdn.FlexWatts], bom[pdn.IMBVR])
		}
		if area[pdn.MBVR] < 1.4 || area[pdn.MBVR] > 4.8 {
			t.Errorf("%gW: MBVR area ratio %.2f outside [1.4, 4.8]", tdp, area[pdn.MBVR])
		}
		if area[pdn.FlexWatts] > 1.5 {
			t.Errorf("%gW: Flex area ratio %.2f too high", tdp, area[pdn.FlexWatts])
		}
		// LDO is always cheaper than MBVR (it shares the compute rail).
		if !(bom[pdn.LDO] < bom[pdn.MBVR]) {
			t.Errorf("%gW: LDO BOM %.2f should undercut MBVR %.2f", tdp, bom[pdn.LDO], bom[pdn.MBVR])
		}
	}
}

func TestPriceMonotoneInCurrent(t *testing.T) {
	// Property: more Iccmax never costs less, in either regime.
	f := func(iRaw float64, pmic bool) bool {
		i := 1 + mod(iRaw, 60)
		tdp := 25.0
		if pmic {
			tdp = 10
		}
		a := Price(Requirements{PDN: pdn.IVR, TDP: tdp, Rails: []Rail{{Name: "r", VOut: 1, Iccmax: i}}})
		b := Price(Requirements{PDN: pdn.IVR, TDP: tdp, Rails: []Rail{{Name: "r", VOut: 1, Iccmax: i + 5}}})
		return b.BOM >= a.BOM && b.Area >= a.Area
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAbsoluteCostGrowsWithTDP(t *testing.T) {
	// Within each regime, bigger platforms cost more.
	plat := domain.NewClientPlatform()
	for _, k := range pdn.AllKinds() {
		for _, span := range [][]float64{{4, 8, 10, 18}, {25, 36, 50}} {
			prev := 0.0
			for _, tdp := range span {
				req, err := Size(plat, k, tdp)
				if err != nil {
					t.Fatal(err)
				}
				est := Price(req)
				if est.BOM <= prev {
					t.Errorf("%v: BOM %.2f at %gW not above %.2f", k, est.BOM, tdp, prev)
				}
				prev = est.BOM
			}
		}
	}
}

func mod(v, m float64) float64 {
	v = v - float64(int(v/m))*m
	if v < 0 {
		v += m
	}
	return v
}
