// Package cost implements PDNspot's board-area and bill-of-materials (BOM)
// model (§3.2): the area and cost of a PDN's off-chip voltage regulators are
// driven by the maximum current (Iccmax) each rail must be electrically
// designed to support.
//
// Two regimes apply, as in the paper: platforms up to 18 W TDP use a power
// management IC (PMIC) that integrates several small VRs into one part,
// while higher-TDP platforms use discrete voltage regulator modules (VRMs)
// whose cost and footprint grow with phase count. VR sharing between
// domains (IVR, LDO, FlexWatts share V_IN) reduces total Iccmax and hence
// cost — FlexWatts additionally sizes its shared rail for IVR-Mode current,
// roughly half of what LDO-Mode would need, because high-current workloads
// run in IVR-Mode (§7.1, "Why does FlexWatts have better BOM and board
// area...").
package cost

import (
	"fmt"

	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/units"
	"repro/internal/workload"
)

// Sizing constants.
const (
	// turboFactor is the PL2-style excursion above TDP that every rail
	// must ride out (Turbo Boost, §1).
	turboFactor = 1.25
	// lowVMargin is the transient (di/dt) design margin for rails that
	// deliver core-class voltages directly: the VR sees load transients
	// unbuffered, so Iccmax is sized well above the thermal current. The
	// PMIC regime uses a smaller margin (mobile parts see gentler
	// transients and lean on package decoupling).
	lowVMargin     = 1.8
	lowVMarginPmic = 1.3
	// highVMargin applies to ≥1.5 V chip-input rails (IVR PDN's V_IN):
	// the on-die second stage and its decoupling buffer transients.
	highVMargin     = 1.15
	highVMarginPmic = 1.0
	// pmicTDPLimit is the highest TDP served by a PMIC (§3.2).
	pmicTDPLimit = 18.0
	// ivrStageEff approximates the on-die stage efficiency when referring
	// compute power to the 1.8 V input rail.
	ivrStageEff = 0.87
)

// Rail is one off-chip VR requirement.
type Rail struct {
	Name   string
	VOut   units.Volt
	Iccmax units.Amp
}

// Requirements is a PDN's complete off-chip VR demand at one TDP.
type Requirements struct {
	PDN   pdn.Kind
	TDP   units.Watt
	Rails []Rail
}

// TotalIccmax sums the rails' design currents.
func (r Requirements) TotalIccmax() units.Amp {
	var sum units.Amp
	for _, rail := range r.Rails {
		sum += rail.Iccmax
	}
	return sum
}

// virusPowers returns each domain group's worst-case (power-virus) power at
// the TDP design point: dynamic power at AR=1 plus leakage at the thermal
// design temperature.
func virusPowers(plat *domain.Platform, tdp units.Watt) map[domain.Kind]units.Watt {
	tj := domain.JunctionTemp(tdp, false)
	fCPU := workload.CPUDesignFreq(tdp)
	fGFX := workload.GfxDesignFreq(tdp)
	out := make(map[domain.Kind]units.Watt, 6)
	core := plat.Domain(domain.Core0)
	out[domain.Core0] = core.Power(fCPU, 1, tj)
	out[domain.Core1] = out[domain.Core0]
	out[domain.LLC] = plat.Domain(domain.LLC).Power(fCPU, 1, tj)
	out[domain.GFX] = plat.Domain(domain.GFX).Power(fGFX, 1, tj)
	out[domain.SA] = plat.UncorePower(domain.SA, domain.C0) * 1.3
	out[domain.IO] = plat.UncorePower(domain.IO, domain.C0) * 1.3
	return out
}

// groupPeak caps a rail group's worst-case power at the platform turbo
// limit: no single rail can draw more than the whole package excursion.
func groupPeak(virus map[domain.Kind]units.Watt, members []domain.Kind, tdp units.Watt) units.Watt {
	var sum units.Watt
	for _, k := range members {
		sum += virus[k]
	}
	if limit := tdp * turboFactor; sum > limit {
		return limit
	}
	return sum
}

// Size computes the off-chip VR requirements of a PDN architecture at a
// TDP, from the platform's power-virus characterization.
func Size(plat *domain.Platform, kind pdn.Kind, tdp units.Watt) (Requirements, error) {
	virus := virusPowers(plat, tdp)
	fCPU := workload.CPUDesignFreq(tdp)
	fGFX := workload.GfxDesignFreq(tdp)
	coreV := plat.Domain(domain.Core0).VoltageAt(fCPU)
	gfxV := plat.Domain(domain.GFX).VoltageAt(fGFX)
	maxComputeV := coreV
	if gfxV > maxComputeV {
		maxComputeV = gfxV
	}
	saV := plat.UncoreVoltage(domain.SA)
	ioV := plat.UncoreVoltage(domain.IO)
	compute := []domain.Kind{domain.Core0, domain.Core1, domain.LLC, domain.GFX}
	all := domain.Kinds()

	pmic := tdp <= pmicTDPLimit
	rail := func(name string, p units.Watt, v units.Volt) Rail {
		margin := lowVMargin
		switch {
		case v >= 1.5 && pmic:
			margin = highVMarginPmic
		case v >= 1.5:
			margin = highVMargin
		case pmic:
			margin = lowVMarginPmic
		}
		return Rail{Name: name, VOut: v, Iccmax: p / v * margin}
	}

	req := Requirements{PDN: kind, TDP: tdp}
	switch kind {
	case pdn.IVR:
		// One shared chip-input rail at 1.8 V carries everything through
		// the on-die stage.
		p := groupPeak(virus, all, tdp) / ivrStageEff
		req.Rails = []Rail{rail("V_IN", p, 1.8)}
	case pdn.MBVR:
		req.Rails = []Rail{
			rail("V_Cores", groupPeak(virus, []domain.Kind{domain.Core0, domain.Core1}, tdp), coreV),
			rail("V_GFX", groupPeak(virus, []domain.Kind{domain.GFX, domain.LLC}, tdp), gfxV),
			rail("V_SA", virus[domain.SA], saV),
			rail("V_IO", virus[domain.IO], ioV),
		}
	case pdn.LDO:
		// The shared V_IN delivers compute power at the maximum compute
		// voltage — low voltage, so high current and full transient margin.
		req.Rails = []Rail{
			rail("V_IN", groupPeak(virus, compute, tdp), maxComputeV),
			rail("V_SA", virus[domain.SA], saV),
			rail("V_IO", virus[domain.IO], ioV),
		}
	case pdn.IMBVR, pdn.FlexWatts:
		// Compute rides the 1.8 V rail (FlexWatts switches to IVR-Mode for
		// high-current workloads, so the shared VR is sized like IVR's).
		p := groupPeak(virus, compute, tdp) / ivrStageEff
		req.Rails = []Rail{
			rail("V_IN", p, 1.8),
			rail("V_SA", virus[domain.SA], saV),
			rail("V_IO", virus[domain.IO], ioV),
		}
	default:
		return Requirements{}, fmt.Errorf("cost: unknown PDN kind %v", kind)
	}
	return req, nil
}

// Estimate is the modeled BOM cost (arbitrary currency units) and board
// area (mm²) of a PDN's off-chip VRs.
type Estimate struct {
	PDN  pdn.Kind
	TDP  units.Watt
	BOM  float64
	Area float64 // mm²
}

// Part-cost constants, calibrated so the normalized ratios reproduce
// Fig 8(d,e): MBVR 2.1–4.2× and LDO 1.6–3.1× the IVR BOM, MBVR 1.5–4.5×
// and LDO 1.1–3.3× the IVR area, while FlexWatts/I+MBVR stay comparable to
// IVR.
const (
	pmicBase     = 2.6  // controller + package, shared across rails
	pmicPerRail  = 0.22 // per integrated VR
	pmicPerAmp   = 0.30
	vrmPerRail   = 0.9 // controller + drivers per discrete rail
	vrmPerAmp    = 0.16
	phaseAmps    = 25.0 // amps per (fractional) discrete phase
	vrmPerPhase  = 1.6  // inductor + FETs per phase
	smallRailAmp = 8.0  // below this a cheap fixed buck serves the rail
	smallRailBOM = 0.55
	smallRailA   = 0.10 // incremental cost per amp of a small buck
	areaPmicBase = 55.0 // mm²
	areaPmicAmp  = 6.0
	areaVrmRail  = 55.0
	areaVrmAmp   = 2.2
	areaVrmPhase = 72.0 // power stage + inductor footprint
	areaSmall    = 22.0
	areaSmallAmp = 3.0
)

// Price maps requirements to BOM cost and board area under the appropriate
// regime (PMIC up to 18 W, VRM above).
func Price(req Requirements) Estimate {
	est := Estimate{PDN: req.PDN, TDP: req.TDP}
	if req.TDP <= pmicTDPLimit {
		est.BOM = pmicBase
		est.Area = areaPmicBase
		for _, r := range req.Rails {
			est.BOM += pmicPerRail + pmicPerAmp*r.Iccmax
			est.Area += areaPmicAmp * r.Iccmax
		}
		return est
	}
	for _, r := range req.Rails {
		if r.Iccmax < smallRailAmp {
			est.BOM += smallRailBOM + smallRailA*r.Iccmax
			est.Area += areaSmall + areaSmallAmp*r.Iccmax
			continue
		}
		phases := r.Iccmax / phaseAmps
		if phases < 1 {
			phases = 1
		}
		est.BOM += vrmPerRail + vrmPerAmp*r.Iccmax + vrmPerPhase*phases
		est.Area += areaVrmRail + areaVrmAmp*r.Iccmax + areaVrmPhase*phases
	}
	return est
}

// Normalized evaluates all five PDNs at a TDP and returns BOM and area
// normalized to the IVR PDN (the Fig 8(d,e) presentation).
func Normalized(plat *domain.Platform, tdp units.Watt) (bom, area map[pdn.Kind]float64, err error) {
	bom = make(map[pdn.Kind]float64, 5)
	area = make(map[pdn.Kind]float64, 5)
	base, err := Size(plat, pdn.IVR, tdp)
	if err != nil {
		return nil, nil, err
	}
	ref := Price(base)
	for _, k := range pdn.AllKinds() {
		req, err := Size(plat, k, tdp)
		if err != nil {
			return nil, nil, err
		}
		e := Price(req)
		bom[k] = e.BOM / ref.BOM
		area[k] = e.Area / ref.Area
	}
	return bom, area, nil
}
