package sweep

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 7, 64} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 100
			out, err := Map(workers, n, func(i int) (int, error) { return i * i, nil })
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != n {
				t.Fatalf("got %d results, want %d", len(out), n)
			}
			for i, v := range out {
				if v != i*i {
					t.Errorf("out[%d] = %d, want %d", i, v, i*i)
				}
			}
		})
	}
}

func TestMapRunsEachPointOnce(t *testing.T) {
	const n = 200
	var counts [n]atomic.Int64
	_, err := Map(8, n, func(i int) (struct{}, error) {
		counts[i].Add(1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Errorf("point %d ran %d times", i, c)
		}
	}
}

func TestMapLowestIndexError(t *testing.T) {
	// Several points fail; serial and parallel must report the same
	// (lowest-index) error.
	fail := map[int]bool{17: true, 42: true, 91: true}
	fn := func(i int) (int, error) {
		if fail[i] {
			return 0, fmt.Errorf("point %d failed", i)
		}
		return i, nil
	}
	for _, workers := range []int{1, 2, 8} {
		_, err := Map(workers, 100, fn)
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if got, want := err.Error(), "point 17 failed"; got != want {
			t.Errorf("workers=%d: err = %q, want %q", workers, got, want)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || out != nil {
		t.Errorf("Map over empty grid = (%v, %v), want (nil, nil)", out, err)
	}
}

func TestEach(t *testing.T) {
	var sum atomic.Int64
	if err := Each(4, 10, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 45 {
		t.Errorf("sum = %d, want 45", sum.Load())
	}
	wantErr := errors.New("boom")
	if err := Each(4, 10, func(i int) error {
		if i == 3 {
			return wantErr
		}
		return nil
	}); !errors.Is(err, wantErr) {
		t.Errorf("Each error = %v, want %v", err, wantErr)
	}
}
