package sweep

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/units"
)

// gridTestModel returns a real IVR model (the grid path's contract is
// bitwise identity with real kernels, so a fake would test nothing) and a
// grid of distinct scenarios.
func gridTestModel(tb testing.TB, n int) (*pdn.IVRModel, *pdn.Grid) {
	tb.Helper()
	m := pdn.NewIVRModel(pdn.Params{
		TOBIVR:      units.MilliVolt(10),
		TOBMBVR:     units.MilliVolt(20),
		TOBLDO:      units.MilliVolt(15),
		VINLevel:    1.8,
		IVRInLL:     units.MilliOhm(3),
		LDOInLL:     units.MilliOhm(5),
		CoresLL:     units.MilliOhm(2),
		GfxLL:       units.MilliOhm(2),
		SALL:        units.MilliOhm(5),
		IOLL:        units.MilliOhm(5),
		RPG:         units.MilliOhm(1.5),
		IVRIccmax:   50,
		VINIccmax:   40,
		CoresIccmax: 60,
		GfxIccmax:   40,
		SAIccmax:    10,
		IOIccmax:    10,
	})
	g := pdn.NewGrid(n)
	for i := 0; i < n; i++ {
		g.Append(testScenario(2 + float64(i)*0.125))
	}
	return m, g
}

// TestCacheEvaluateGridMatchesScalar pins the cached grid path against the
// scalar cache path: same results (bitwise — Result is comparable), same
// hit/miss accounting, model invoked once per distinct key.
func TestCacheEvaluateGridMatchesScalar(t *testing.T) {
	const n = 600 // spans three blocks, last one partial
	m, g := gridTestModel(t, n)
	c := NewCache()
	out := make([]pdn.Result, n)
	if err := c.EvaluateGrid(m, g, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want, err := m.Evaluate(g.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if out[i] != want {
			t.Fatalf("point %d: grid-through-cache result differs from scalar", i)
		}
	}
	if hits, misses := c.Stats(); hits != 0 || misses != int64(n) {
		t.Errorf("cold stats = (%d hits, %d misses), want (0, %d)", hits, misses, n)
	}
	// Warm pass: all hits, results identical, no model invocation (the
	// kernel would change nothing, but it must not even run — pinned by
	// the allocation test at the repo root).
	out2 := make([]pdn.Result, n)
	if err := c.EvaluateGrid(m, g, out2); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("point %d: warm result differs", i)
		}
	}
	if hits, misses := c.Stats(); hits != int64(n) || misses != int64(n) {
		t.Errorf("warm stats = (%d hits, %d misses), want (%d, %d)", hits, misses, n, n)
	}
}

// TestCacheEvaluateGridInterleavesScalar pins cache coherence between the
// two paths: keys resolved by scalar Evaluate are grid hits and vice
// versa, with identical bits.
func TestCacheEvaluateGridInterleavesScalar(t *testing.T) {
	const n = 64
	m, g := gridTestModel(t, n)
	c := NewCache()
	// Resolve the even points through the scalar path first.
	scalar := make([]pdn.Result, n)
	for i := 0; i < n; i += 2 {
		res, err := c.Evaluate(m, g.At(i))
		if err != nil {
			t.Fatal(err)
		}
		scalar[i] = res
	}
	out := make([]pdn.Result, n)
	if err := c.EvaluateGrid(m, g, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 2 {
		if out[i] != scalar[i] {
			t.Fatalf("point %d: grid hit differs from scalar-resolved entry", i)
		}
	}
	hits, misses := c.Stats()
	if hits != n/2 || misses != n {
		t.Errorf("stats = (%d hits, %d misses), want (%d, %d)", hits, misses, n/2, n)
	}
	// And the odd keys, grid-resolved, now answer scalar lookups.
	for i := 1; i < n; i += 2 {
		res, err := c.Evaluate(m, g.At(i))
		if err != nil {
			t.Fatal(err)
		}
		if res != out[i] {
			t.Fatalf("point %d: scalar hit differs from grid-resolved entry", i)
		}
	}
}

// TestCacheEvaluateGridWarmHits pins tier accounting: preloaded entries
// count as warm hits on the grid path exactly as on the scalar path.
func TestCacheEvaluateGridWarmHits(t *testing.T) {
	const n = 16
	m, g := gridTestModel(t, n)
	c := NewCache()
	for i := 0; i < n; i += 4 {
		res, err := m.Evaluate(g.At(i))
		if err != nil {
			t.Fatal(err)
		}
		c.Preload(pdn.IVR, g.At(i), res)
	}
	out := make([]pdn.Result, n)
	if err := c.EvaluateGrid(m, g, out); err != nil {
		t.Fatal(err)
	}
	if c.WarmHits() != n/4 {
		t.Errorf("WarmHits = %d, want %d", c.WarmHits(), n/4)
	}
}

// gridRecordingTier records Put calls (the write-behind contract: once per
// key, misses only).
type gridRecordingTier struct {
	mu   sync.Mutex
	puts map[pdn.Scenario]int
}

func (r *gridRecordingTier) Put(_ pdn.Kind, s pdn.Scenario, _ pdn.Result) {
	r.mu.Lock()
	r.puts[s]++
	r.mu.Unlock()
}

// TestCacheEvaluateGridTierWriteBehind pins that grid-resolved misses flow
// to the tier exactly once per key, and warm re-evaluation adds nothing.
func TestCacheEvaluateGridTierWriteBehind(t *testing.T) {
	const n = 40
	m, g := gridTestModel(t, n)
	c := NewCache()
	tier := &gridRecordingTier{puts: make(map[pdn.Scenario]int)}
	c.AttachTier(tier)
	out := make([]pdn.Result, n)
	for pass := 0; pass < 2; pass++ {
		if err := c.EvaluateGrid(m, g, out); err != nil {
			t.Fatal(err)
		}
	}
	tier.mu.Lock()
	defer tier.mu.Unlock()
	if len(tier.puts) != n {
		t.Fatalf("tier saw %d keys, want %d", len(tier.puts), n)
	}
	for s, count := range tier.puts {
		if count != 1 {
			t.Errorf("tier Put called %d times for %+v, want 1", count, s)
		}
	}
}

// TestCacheEvaluateGridError pins the error contract: lowest failing index
// wrapped with the scalar error; the invalid key caches its error like the
// scalar path does.
func TestCacheEvaluateGridError(t *testing.T) {
	m, g := gridTestModel(t, 8)
	bad := g.At(3)
	bad.Loads[domain.Core0].AR = 2
	g.Set(3, bad)
	c := NewCache()
	out := make([]pdn.Result, g.Len())
	err := c.EvaluateGrid(m, g, out)
	if err == nil {
		t.Fatal("EvaluateGrid accepted an invalid point")
	}
	if !strings.Contains(err.Error(), "grid point 3") {
		t.Errorf("error %q does not name point 3", err)
	}
	_, wantErr := m.Evaluate(bad)
	if !strings.Contains(err.Error(), wantErr.Error()) {
		t.Errorf("error %q does not wrap scalar error %q", err, wantErr)
	}
	// The scalar cache path must agree on the cached error.
	if _, err2 := c.Evaluate(m, bad); err2 == nil || err2.Error() != wantErr.Error() {
		t.Errorf("cached error = %v, want %v", err2, wantErr)
	}
	// Points before the failure were written and valid.
	want, _ := m.Evaluate(g.At(2))
	if out[2] != want {
		t.Error("result preceding the failure was not written")
	}
}

// TestCacheEvaluateGridFallbackModel pins the no-kernel path: a model
// without EvaluateGrid still evaluates correctly through the cache.
func TestCacheEvaluateGridFallbackModel(t *testing.T) {
	c := NewCache()
	m := &countingModel{kind: pdn.MBVR}
	g := pdn.NewGrid(8)
	for i := 0; i < 8; i++ {
		g.Append(testScenario(1 + float64(i)))
	}
	out := make([]pdn.Result, 8)
	for pass := 0; pass < 2; pass++ {
		if err := c.EvaluateGrid(m, g, out); err != nil {
			t.Fatal(err)
		}
	}
	if m.calls.Load() != 8 {
		t.Errorf("model evaluated %d times, want 8", m.calls.Load())
	}
	// Nil cache, no kernel: direct scalar loop.
	var nilCache *Cache
	if err := nilCache.EvaluateGrid(m, g, out); err != nil {
		t.Fatal(err)
	}
	if m.calls.Load() != 16 {
		t.Errorf("nil-cache pass evaluated %d total, want 16", m.calls.Load())
	}
}

// TestCacheEvaluateGridConcurrent hammers one cache from grid and scalar
// goroutines over overlapping keys; under -race this pins the locking, and
// the result comparison pins cross-path coherence.
func TestCacheEvaluateGridConcurrent(t *testing.T) {
	const n = 512
	m, g := gridTestModel(t, n)
	c := NewCache()
	want := make([]pdn.Result, n)
	for i := range want {
		res, err := m.Evaluate(g.At(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	var wg sync.WaitGroup
	var fail atomic.Int32
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			out := make([]pdn.Result, n)
			if err := c.EvaluateGrid(m, g, out); err != nil {
				fail.Add(1)
				return
			}
			for i := range out {
				if out[i] != want[i] {
					fail.Add(1)
					return
				}
			}
		}()
		go func(seed int) {
			defer wg.Done()
			for i := seed; i < n; i += 7 {
				res, err := c.Evaluate(m, g.At(i))
				if err != nil || res != want[i] {
					fail.Add(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if fail.Load() != 0 {
		t.Fatalf("%d goroutines observed wrong results", fail.Load())
	}
	if c.Len() != n {
		t.Errorf("cache holds %d keys, want %d", c.Len(), n)
	}
}

// keyCountingModel wraps a real IVR model and counts, per distinct
// scenario, how many times the model computed it — through either the
// scalar Evaluate or as one point of an EvaluateGrid kernel call. It is
// the instrument for the exactly-one-invocation contract.
type keyCountingModel struct {
	inner *pdn.IVRModel
	mu    sync.Mutex
	calls map[pdn.Scenario]int
}

func (m *keyCountingModel) Kind() pdn.Kind { return m.inner.Kind() }

func (m *keyCountingModel) count(s pdn.Scenario) {
	m.mu.Lock()
	m.calls[s]++
	m.mu.Unlock()
}

func (m *keyCountingModel) Evaluate(s pdn.Scenario) (pdn.Result, error) {
	m.count(s)
	return m.inner.Evaluate(s)
}

func (m *keyCountingModel) EvaluateGrid(g *pdn.Grid, out []pdn.Result) error {
	for i := 0; i < g.Len(); i++ {
		m.count(g.At(i))
	}
	return m.inner.EvaluateGrid(g, out)
}

// TestGridMapCtxScalarRaceExactlyOnce races parallel GridMapCtx sweeps
// against scalar Cache.Evaluate calls over fully overlapping keys and
// asserts the two guarantees the batched probe must preserve: every
// observer sees the identical result bits, and the model is invoked
// exactly once per distinct key — no duplicate kernel work when a scalar
// racer lands on a grid-claimed entry, and no scalar recomputation of a
// key a kernel block holds in flight (the creator-computes contract).
// Run under -race this also pins the locking of the shard-batched claim.
func TestGridMapCtxScalarRaceExactlyOnce(t *testing.T) {
	const n = 512
	inner, g := gridTestModel(t, n)
	m := &keyCountingModel{inner: inner, calls: make(map[pdn.Scenario]int)}
	want := make([]pdn.Result, n)
	for i := range want {
		res, err := inner.Evaluate(g.At(i))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	c := NewCache()
	var wg sync.WaitGroup
	var fail atomic.Int32
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(2)
		go func() {
			defer wg.Done()
			out := make([]pdn.Result, n)
			if err := GridMapCtx(context.Background(), 4, c, m, g, out, 0); err != nil {
				fail.Add(1)
				return
			}
			for i := range out {
				if out[i] != want[i] {
					fail.Add(1)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := w; i < n; i += 3 {
				res, err := c.Evaluate(m, g.At(i))
				if err != nil || res != want[i] {
					fail.Add(1)
					return
				}
			}
		}()
	}
	wg.Wait()
	if fail.Load() != 0 {
		t.Fatalf("%d goroutines observed wrong results or errors", fail.Load())
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.calls) != n {
		t.Errorf("model computed %d distinct keys, want %d", len(m.calls), n)
	}
	for s, cnt := range m.calls {
		if cnt != 1 {
			t.Errorf("key %+v computed %d times, want exactly 1", s, cnt)
		}
	}
}

// TestGridMapCtx pins the chunked parallel driver: results identical to
// the serial path for chunk sizes that do and don't divide the grid, and
// cancellation surfaces the context cause.
func TestGridMapCtx(t *testing.T) {
	const n = 300
	m, g := gridTestModel(t, n)
	want := make([]pdn.Result, n)
	if err := (*Cache)(nil).EvaluateGrid(m, g, want); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{0, 64, 100, 1000} {
		c := NewCache()
		out := make([]pdn.Result, n)
		if err := GridMapCtx(context.Background(), 4, c, m, g, out, chunk); err != nil {
			t.Fatalf("chunk %d: %v", chunk, err)
		}
		for i := range out {
			if out[i] != want[i] {
				t.Fatalf("chunk %d point %d: differs from serial", chunk, i)
			}
		}
	}

	bad := g.At(37)
	bad.Loads[domain.Core0].VNom = -1
	g.Set(37, bad)
	err := GridMapCtx(context.Background(), 4, NewCache(), m, g, make([]pdn.Result, n), 16)
	if err == nil || !strings.Contains(err.Error(), "[32,48)") {
		t.Errorf("error %v does not name the failing chunk range", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := GridMapCtx(ctx, 4, NewCache(), m, g, make([]pdn.Result, n), 16); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled GridMapCtx returned %v, want context.Canceled", err)
	}
}
