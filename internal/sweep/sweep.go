// Package sweep is the deterministic concurrent execution engine the
// evaluation pipeline runs on. The paper's evaluation is a large grid of
// independent PDN evaluations — PDN topology × workload type × activity
// ratio × TDP × trace — and every cell is a pure function of its sweep
// point, so the grid parallelizes cleanly.
//
// Determinism is the design constraint, not an afterthought: Map collects
// results by grid index and reports the lowest-index error, so a sweep's
// rendered output is byte-identical no matter how many workers execute it
// (workers == 1 degenerates to the plain serial loop). Cache memoizes
// (PDN kind, scenario) evaluations so cells shared between figures are
// computed once per run.
package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(0) … fn(n-1) on a pool of workers and returns the results in
// index order. workers <= 0 sizes the pool by runtime.GOMAXPROCS(0);
// workers == 1 runs inline with no goroutines. fn must be safe for
// concurrent calls when more than one worker runs.
//
// Error handling is deterministic: if any points fail, Map returns the
// error of the lowest failing index — the same error the serial loop would
// stop on — and points beyond the first observed failure may be skipped.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map with cancellation: workers stop pulling new grid points as
// soon as ctx is done, and the sweep returns context.Cause(ctx) without
// waiting for the untouched remainder of the grid. Cancellation wins over
// per-point errors — a cancelled sweep's partial results are meaningless,
// so reporting which point failed first would be noise. In-flight fn calls
// are not interrupted (they are pure CPU-bound evaluations); a sweep
// returns at worst one evaluation after cancellation per worker.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return nil, context.Cause(ctx)
			default:
			}
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var firstErr atomic.Int64 // lowest failing index seen so far
	firstErr.Store(int64(n))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if int64(i) > firstErr.Load() {
					continue // a lower index already failed; this result is moot
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					for {
						cur := firstErr.Load()
						if int64(i) >= cur || firstErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	if i := firstErr.Load(); i < int64(n) {
		return nil, errs[i]
	}
	return out, nil
}

// Each is Map for functions that produce no value: it runs fn over the
// index grid and returns the lowest-index error, if any.
func Each(workers, n int, fn func(i int) error) error {
	return EachCtx(context.Background(), workers, n, fn)
}

// EachCtx is Each with cancellation, with MapCtx's semantics.
func EachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	_, err := MapCtx(ctx, workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
