// Package sweep is the deterministic concurrent execution engine the
// evaluation pipeline runs on. The paper's evaluation is a large grid of
// independent PDN evaluations — PDN topology × workload type × activity
// ratio × TDP × trace — and every cell is a pure function of its sweep
// point, so the grid parallelizes cleanly.
//
// Determinism is the design constraint, not an afterthought: Map collects
// results by grid index and reports the lowest-index error, so a sweep's
// rendered output is byte-identical no matter how many workers execute it
// (workers == 1 degenerates to the plain serial loop). Cache memoizes
// (PDN kind, scenario) evaluations so cells shared between figures are
// computed once per run.
package sweep

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(0) … fn(n-1) on a pool of workers and returns the results in
// index order. workers <= 0 sizes the pool by runtime.GOMAXPROCS(0);
// workers == 1 runs inline with no goroutines. fn must be safe for
// concurrent calls when more than one worker runs.
//
// Error handling is deterministic: if any points fail, Map returns the
// error of the lowest failing index — the same error the serial loop would
// stop on — and points beyond the first observed failure may be skipped.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), workers, n, fn)
}

// MapCtx is Map with cancellation: workers stop pulling new grid points as
// soon as ctx is done, and the sweep returns context.Cause(ctx) without
// waiting for the untouched remainder of the grid. Cancellation wins over
// per-point errors — a cancelled sweep's partial results are meaningless,
// so reporting which point failed first would be noise. In-flight fn calls
// are not interrupted (they are pure CPU-bound evaluations); a sweep
// returns at worst one evaluation after cancellation per worker.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		if ctx.Err() != nil {
			return nil, context.Cause(ctx)
		}
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	done := ctx.Done()
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			select {
			case <-done:
				return nil, context.Cause(ctx)
			default:
			}
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var firstErr atomic.Int64 // lowest failing index seen so far
	firstErr.Store(int64(n))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				if int64(i) > firstErr.Load() {
					continue // a lower index already failed; this result is moot
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = err
					for {
						cur := firstErr.Load()
						if int64(i) >= cur || firstErr.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if ctx.Err() != nil {
		return nil, context.Cause(ctx)
	}
	if i := firstErr.Load(); i < int64(n) {
		return nil, errs[i]
	}
	return out, nil
}

// StreamCtx runs fn(0) … fn(n-1) on a pool of workers and delivers every
// result to emit in strict index order, from the caller's goroutine, while
// holding at most window results in memory — the streaming counterpart of
// MapCtx for grids too large to buffer (a million-point evaluate stream is
// O(window), not O(n)).
//
// Semantics differ from MapCtx where streaming demands it:
//
//   - Per-point errors do not abort the sweep: they are delivered to
//     emit(i, zero, err) in order, because a stream's vocabulary carries
//     per-point failures (the caller decides whether to keep going).
//   - emit returning a non-nil error cancels the sweep — the signal that
//     the consumer is gone (client disconnect, write failure). StreamCtx
//     returns that error.
//   - ctx cancellation stops workers from claiming new points and StreamCtx
//     returns context.Cause(ctx).
//
// window <= 0 defaults to 4×workers; it is clamped to at least the worker
// count (a smaller window would idle the pool) and at most n. Workers stay
// at most window points ahead of the consumer, so a slow consumer
// backpressures the pool instead of growing a buffer. StreamCtx does not
// return until every worker goroutine has exited.
func StreamCtx[T any](ctx context.Context, workers, window, n int, fn func(i int) (T, error), emit func(i int, v T, err error) error) error {
	if n <= 0 {
		if ctx.Err() != nil {
			return context.Cause(ctx)
		}
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if window <= 0 {
		window = 4 * workers
	}
	if window < workers {
		window = workers
	}
	if window > n {
		window = n
	}
	sctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	done := sctx.Done()

	// Results flow through a fixed ring of window cells. A worker may only
	// claim index i after acquiring a token, and the consumer returns the
	// token when it emits a cell — so at most window claimed-but-unemitted
	// indices exist, which both bounds memory and guarantees each ring cell
	// has a single writer between consecutive reads (indices sharing a cell
	// are window apart, and two unemitted indices can never be).
	type cell struct {
		v   T
		err error
	}
	cells := make([]cell, window)
	ready := make([]chan struct{}, window)
	for i := range ready {
		ready[i] = make(chan struct{}, 1)
	}
	tokens := make(chan struct{}, window)
	for i := 0; i < window; i++ {
		tokens <- struct{}{}
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case <-tokens:
				}
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				v, err := fn(i)
				cells[i%window] = cell{v: v, err: err}
				ready[i%window] <- struct{}{}
			}
		}()
	}

	var streamErr error
consume:
	for i := 0; i < n; i++ {
		select {
		case <-done:
			streamErr = context.Cause(sctx)
			break consume
		case <-ready[i%window]:
			c := cells[i%window]
			if err := emit(i, c.v, c.err); err != nil {
				streamErr = err
				break consume
			}
			tokens <- struct{}{}
		}
	}
	// Release the pool (idempotent on the error paths) and wait for every
	// worker to exit before returning, so no goroutine outlives the call.
	cancel(nil)
	wg.Wait()
	if streamErr != nil {
		return streamErr
	}
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return nil
}

// Each is Map for functions that produce no value: it runs fn over the
// index grid and returns the lowest-index error, if any.
func Each(workers, n int, fn func(i int) error) error {
	return EachCtx(context.Background(), workers, n, fn)
}

// EachCtx is Each with cancellation, with MapCtx's semantics.
func EachCtx(ctx context.Context, workers, n int, fn func(i int) error) error {
	_, err := MapCtx(ctx, workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
