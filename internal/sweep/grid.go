package sweep

import (
	"context"
	"fmt"

	"repro/internal/pdn"
)

// GridEvaluator is a pdn.Model with a batch evaluation path. The batch
// contract (internal/pdn/grid.go) is bitwise identity with the scalar
// Evaluate, which is what makes it safe to mix grid- and scalar-computed
// results in one Cache: whichever path resolves a key first stores the
// same float64 bits the other would have.
type GridEvaluator interface {
	pdn.Model
	EvaluateGrid(g *pdn.Grid, out []pdn.Result) error
}

// gridBlock is the cache-consultation granularity of EvaluateGrid: keys
// are looked up (and claimed) a block at a time, then one kernel call
// resolves the block's misses. Big enough to amortize the kernel's
// per-call invariant hoisting, small enough to keep the per-block scratch
// state in fixed stack arrays.
const gridBlock = 256

// EvaluateGrid evaluates every grid point into out[:g.Len()], consulting
// the cache per point exactly as Evaluate does — same key, same hit/miss
// accounting, same once-per-key model invocation and tier write-behind —
// but resolving each block's misses with a single EvaluateGrid kernel call
// instead of per-point Evaluate. On a warm cache no model is invoked at
// all. Concurrent scalar and grid evaluations of the same key are safe:
// the entry's once serializes them and both paths produce identical bits.
//
// Per-point errors surface as the lowest failing index wrapped by
// pdn.GridPointError; results for preceding points are valid. A nil cache
// routes straight to the kernel (or a scalar loop for models without one).
func (c *Cache) EvaluateGrid(m pdn.Model, g *pdn.Grid, out []pdn.Result) error {
	if err := pdn.CheckGridOut(g, out); err != nil {
		return err
	}
	ge, isGrid := m.(GridEvaluator)
	if c == nil {
		if isGrid {
			return ge.EvaluateGrid(g, out)
		}
		for i := 0; i < g.Len(); i++ {
			res, err := m.Evaluate(g.At(i))
			if err != nil {
				return pdn.GridPointError(i, err)
			}
			out[i] = res
		}
		return nil
	}
	n := g.Len()
	kind := m.Kind()
	var entries [gridBlock]*cacheEntry
	var missIdx [gridBlock]int
	// The miss-resolution scratch (sub-grid and result block) is built
	// lazily on the first miss: a warm pass allocates nothing, and escape
	// analysis would heap-allocate the result block per call if it were a
	// stack array handed to the kernel interface.
	var missOut []pdn.Result
	var missGrid *pdn.Grid
	for lo := 0; lo < n; lo += gridBlock {
		hi := lo + gridBlock
		if hi > n {
			hi = n
		}
		// Look up or claim every key in the block, with Evaluate's exact
		// accounting: present at lookup → hit (warm if tier-preloaded),
		// created by us → miss.
		nm := 0
		for i := lo; i < hi; i++ {
			key := cacheKey{kind: kind, s: g.At(i)}
			sh := c.shardFor(key)
			sh.mu.RLock()
			e, ok := sh.entries[key]
			sh.mu.RUnlock()
			if !ok {
				sh.mu.Lock()
				e, ok = sh.entries[key]
				if !ok {
					e = &cacheEntry{}
					sh.entries[key] = e
					c.size.Add(1)
				}
				sh.mu.Unlock()
			}
			if ok {
				c.hits.Add(1)
				if e.warm {
					c.warmHits.Add(1)
				}
			} else {
				c.misses.Add(1)
				missIdx[nm] = i
				nm++
			}
			entries[i-lo] = e
		}
		// Resolve the block's claimed keys with one kernel call, storing
		// each result under its entry's once (the tier write-behind rides
		// inside, as in Evaluate). Duplicate keys within a block alias the
		// same entry; the first once.Do wins and the rest are no-ops with
		// identical bits. If the kernel rejects the sub-grid (an invalid
		// point), fall back to scalar per-point resolution so every entry
		// still ends up with exactly the scalar result or error.
		if nm > 0 {
			kernelOK := false
			if isGrid {
				if missGrid == nil {
					missGrid = pdn.NewGrid(gridBlock)
					missOut = make([]pdn.Result, gridBlock)
				} else {
					missGrid.Reset()
				}
				for j := 0; j < nm; j++ {
					missGrid.Append(g.At(missIdx[j]))
				}
				kernelOK = ge.EvaluateGrid(missGrid, missOut[:nm]) == nil
			}
			for j := 0; j < nm; j++ {
				i := missIdx[j]
				e := entries[i-lo]
				var res pdn.Result
				if kernelOK {
					res = missOut[j]
				}
				e.once.Do(func() {
					if kernelOK {
						e.res, e.err = res, nil
					} else {
						e.res, e.err = m.Evaluate(g.At(i))
					}
					if e.err == nil {
						if ref := c.tier.Load(); ref != nil {
							ref.t.Put(kind, g.At(i), e.res)
						}
					}
				})
			}
		}
		// Collect the block in order. Entries claimed by a concurrent
		// evaluation may still be unresolved; the once blocks until the
		// winner finishes (or computes scalar if no one started).
		for i := lo; i < hi; i++ {
			e := entries[i-lo]
			e.once.Do(func() {
				e.res, e.err = m.Evaluate(g.At(i))
				if e.err == nil {
					if ref := c.tier.Load(); ref != nil {
						ref.t.Put(kind, g.At(i), e.res)
					}
				}
			})
			if e.err != nil {
				return pdn.GridPointError(i, e.err)
			}
			out[i] = e.res
		}
	}
	return nil
}

// GridMapCtx evaluates a grid on a pool of workers, each worker running
// whole chunks through (c, m).EvaluateGrid — the batch counterpart of
// MapCtx's per-point closure dispatch. chunk <= 0 defaults to the cache
// block size; workers follow MapCtx's convention. out must have at least
// g.Len() slots. The first failing chunk's error (lowest chunk index, and
// within it the lowest point index) is returned, wrapped with the chunk's
// absolute point range.
func GridMapCtx(ctx context.Context, workers int, c *Cache, m pdn.Model, g *pdn.Grid, out []pdn.Result, chunk int) error {
	if err := pdn.CheckGridOut(g, out); err != nil {
		return err
	}
	if chunk <= 0 {
		chunk = gridBlock
	}
	n := g.Len()
	chunks := (n + chunk - 1) / chunk
	return EachCtx(ctx, workers, chunks, func(ci int) error {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		v := g.View(lo, hi)
		if err := c.EvaluateGrid(m, &v, out[lo:hi]); err != nil {
			return fmt.Errorf("sweep: grid points [%d,%d): %w", lo, hi, err)
		}
		return nil
	})
}
