package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/pdn"
)

// GridEvaluator is a pdn.Model with a batch evaluation path. The batch
// contract (internal/pdn/grid.go) is bitwise identity with the scalar
// Evaluate, which is what makes it safe to mix grid- and scalar-computed
// results in one Cache: whichever path resolves a key first stores the
// same float64 bits the other would have.
type GridEvaluator interface {
	pdn.Model
	EvaluateGrid(g *pdn.Grid, out []pdn.Result) error
}

// gridBlock is the cache-consultation granularity of EvaluateGrid: keys
// are looked up (and claimed) a block at a time, then one kernel call
// resolves the block's misses. Big enough to amortize the kernel's
// per-call invariant hoisting and the per-shard lock acquisitions, small
// enough that one pooled probe scratch covers any grid length.
const gridBlock = 256

// gridProbe is EvaluateGrid's per-block scratch: precomputed keys and
// shard assignments, the shard-grouped probe order, the claimed entries,
// and the miss-resolution sub-grid. It is pooled (not stack-allocated)
// because the key block alone is ~56 KiB and the warm path must stay
// allocation-free per call; one probe serves one EvaluateGrid call at a
// time, and the pool bounds live scratch by evaluator concurrency.
type gridProbe struct {
	keys     [gridBlock]cacheKey
	shard    [gridBlock]uint8
	order    [gridBlock]uint16
	entries  [gridBlock]*cacheEntry
	hit      [gridBlock]bool
	missIdx  [gridBlock]int
	missGrid pdn.Grid
	missOut  [gridBlock]pdn.Result
}

var gridProbePool = sync.Pool{New: func() any { return new(gridProbe) }}

// EvaluateGrid evaluates every grid point into out[:g.Len()], consulting
// the cache per point exactly as Evaluate does — same key, same hit/miss
// accounting, same once-per-key model invocation and tier write-behind —
// but resolving each block's misses with a single EvaluateGrid kernel call
// instead of per-point Evaluate. On a warm cache no model is invoked at
// all. Concurrent scalar and grid evaluations of the same key are safe:
// the entry's creator-computes protocol guarantees exactly one model
// invocation per key, and both paths produce identical bits.
//
// Per-point errors surface as the lowest failing index wrapped by
// pdn.GridPointError; results for preceding points are valid. A nil cache
// routes straight to the kernel (or a scalar loop for models without one).
func (c *Cache) EvaluateGrid(m pdn.Model, g *pdn.Grid, out []pdn.Result) error {
	if err := pdn.CheckGridOut(g, out); err != nil {
		return err
	}
	ge, isGrid := m.(GridEvaluator)
	if c == nil {
		if isGrid {
			return ge.EvaluateGrid(g, out)
		}
		for i := 0; i < g.Len(); i++ {
			res, err := m.Evaluate(g.At(i))
			if err != nil {
				return pdn.GridPointError(i, err)
			}
			out[i] = res
		}
		return nil
	}
	n := g.Len()
	kind := m.Kind()
	p := gridProbePool.Get().(*gridProbe)
	defer gridProbePool.Put(p)
	for lo := 0; lo < n; lo += gridBlock {
		hi := lo + gridBlock
		if hi > n {
			hi = n
		}
		bn := hi - lo
		// Shard-batched probe: hash every key in the block once, group the
		// points by shard with a counting sort (stable, so within a shard
		// points keep ascending block order), then visit each shard exactly
		// once — one RLock pass over its group, plus one Lock pass only if
		// some keys were absent. Per (shard, block) that is one reader and
		// at most one writer acquisition, replacing a lock round trip per
		// point.
		var count [cacheShards]uint16
		for j := 0; j < bn; j++ {
			p.keys[j] = cacheKey{kind: kind, s: g.At(lo + j)}
			si := c.shardIndex(p.keys[j])
			p.shard[j] = uint8(si)
			count[si]++
		}
		var start [cacheShards]uint16
		var pos uint16
		for s := 0; s < cacheShards; s++ {
			start[s] = pos
			pos += count[s]
		}
		for j := 0; j < bn; j++ {
			s := p.shard[j]
			p.order[start[s]] = uint16(j)
			start[s]++
		}
		grouped := 0
		for s := 0; s < cacheShards; s++ {
			cnt := int(count[s])
			if cnt == 0 {
				continue
			}
			grp := p.order[grouped : grouped+cnt]
			grouped += cnt
			sh := &c.shards[s]
			// Lookup pass: existing entries resolve under one shared lock.
			absent := 0
			sh.mu.RLock()
			for _, j := range grp {
				e := sh.entries[p.keys[j]]
				p.entries[j] = e
				p.hit[j] = e != nil
				if e == nil {
					absent++
				}
			}
			sh.mu.RUnlock()
			// Claim pass: re-check and insert the absent keys under one
			// write lock. A key another evaluation (or an earlier duplicate
			// in this group) published since the lookup counts as a hit,
			// exactly as Evaluate's double-checked claim does.
			if absent > 0 {
				sh.mu.Lock()
				for _, j := range grp {
					if p.entries[j] != nil {
						continue
					}
					e, ok := sh.entries[p.keys[j]]
					if !ok {
						e = newCacheEntry()
						sh.entries[p.keys[j]] = e
						c.size.Add(1)
					} else {
						p.hit[j] = true
					}
					p.entries[j] = e
				}
				sh.mu.Unlock()
			}
		}
		// Accounting in one batch per block (totals match Evaluate's
		// per-point adds), and the miss list rebuilt in ascending point
		// order for the kernel.
		nm := 0
		var nh, nw int64
		for j := 0; j < bn; j++ {
			if p.hit[j] {
				nh++
				if p.entries[j].warm {
					nw++
				}
			} else {
				p.missIdx[nm] = lo + j
				nm++
			}
		}
		c.hits.Add(nh)
		c.warmHits.Add(nw)
		c.misses.Add(int64(nm))
		// Resolve the block's claimed keys with one kernel call and publish
		// each under its entry (the tier write-behind rides along, as in
		// Evaluate). This call is the creator of every entry in missIdx, so
		// it alone computes them — that is the exactly-one-invocation
		// contract scalar racers rely on when they block on done below.
		// Duplicate keys within a block alias one entry: the first
		// occurrence creates (and appears here), later ones are hits. If
		// the kernel rejects the sub-grid (an invalid point), fall back to
		// scalar per-point resolution so every claimed entry still ends up
		// with exactly the scalar result or error.
		if nm > 0 {
			kernelOK := false
			if isGrid {
				p.missGrid.Gather(g, p.missIdx[:nm])
				kernelOK = ge.EvaluateGrid(&p.missGrid, p.missOut[:nm]) == nil
			}
			for j := 0; j < nm; j++ {
				i := p.missIdx[j]
				e := p.entries[i-lo]
				if kernelOK {
					e.res, e.err = p.missOut[j], nil
				} else {
					e.res, e.err = m.Evaluate(g.At(i))
				}
				if e.err == nil {
					if ref := c.tier.Load(); ref != nil {
						ref.t.Put(kind, g.At(i), e.res)
					}
				}
				close(e.done)
			}
		}
		// Collect the block in order. Entries this call claimed are already
		// published (the wait is a no-op); entries claimed by a concurrent
		// evaluation block until their creator publishes. Every claim of
		// this block was resolved above before any wait here, so two grid
		// calls claiming interleaved keys cannot deadlock.
		for i := lo; i < hi; i++ {
			e := p.entries[i-lo]
			<-e.done
			if e.err != nil {
				return pdn.GridPointError(i, e.err)
			}
			out[i] = e.res
		}
	}
	return nil
}

// adaptiveChunk sizes GridMapCtx's work unit for a grid of n points on
// the given worker count: aim for several chunks per worker so a slow
// chunk doesn't straggle the whole grid, but never slice finer than a
// quarter cache block — below that the kernel's per-block invariant
// hoisting and the shard-batched probe stop amortizing.
func adaptiveChunk(n, workers int) int {
	if workers <= 1 {
		return gridBlock
	}
	c := n / (workers * 4)
	if c < gridBlock/4 {
		c = gridBlock / 4
	}
	if c > gridBlock {
		c = gridBlock
	}
	return c
}

// GridMapCtx evaluates a grid on a pool of workers, each worker running
// whole chunks through (c, m).EvaluateGrid — the batch counterpart of
// MapCtx's per-point closure dispatch. chunk <= 0 picks an adaptive size
// from the grid length and worker count (see adaptiveChunk); workers
// follow MapCtx's convention. out must have at least g.Len() slots. The
// first failing chunk's error (lowest chunk index, and within it the
// lowest point index) is returned, wrapped with the chunk's absolute
// point range.
func GridMapCtx(ctx context.Context, workers int, c *Cache, m pdn.Model, g *pdn.Grid, out []pdn.Result, chunk int) error {
	if err := pdn.CheckGridOut(g, out); err != nil {
		return err
	}
	if chunk <= 0 {
		w := workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		chunk = adaptiveChunk(g.Len(), w)
	}
	n := g.Len()
	chunks := (n + chunk - 1) / chunk
	return EachCtx(ctx, workers, chunks, func(ci int) error {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		v := g.View(lo, hi)
		if err := c.EvaluateGrid(m, &v, out[lo:hi]); err != nil {
			return fmt.Errorf("sweep: grid points [%d,%d): %w", lo, hi, err)
		}
		return nil
	})
}
