package sweep

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/domain"
	"repro/internal/pdn"
)

// countingModel is a fake pdn.Model that counts Evaluate calls.
type countingModel struct {
	kind  pdn.Kind
	calls atomic.Int64
	err   error
}

func (m *countingModel) Kind() pdn.Kind { return m.kind }

func (m *countingModel) Evaluate(s pdn.Scenario) (pdn.Result, error) {
	m.calls.Add(1)
	if m.err != nil {
		return pdn.Result{}, m.err
	}
	return pdn.Result{PDN: m.kind, PNomTotal: s.TotalNominal(), PIn: s.TotalNominal() / 0.8}, nil
}

func testScenario(coreP float64) pdn.Scenario {
	s := pdn.NewScenario()
	s.Loads[domain.Core0] = pdn.Load{PNom: coreP, VNom: 0.8, FL: 0.3, AR: 0.6}
	s.Loads[domain.SA] = pdn.Load{PNom: 0.5, VNom: 1.0, FL: 0.22, AR: 0.8}
	s.Loads[domain.IO] = pdn.Load{PNom: 0.3, VNom: 1.0, FL: 0.22, AR: 0.8}
	return s
}

func TestCacheHit(t *testing.T) {
	c := NewCache()
	m := &countingModel{kind: pdn.IVR}
	s := testScenario(4)

	r1, err := c.Evaluate(m, s)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Evaluate(m, s)
	if err != nil {
		t.Fatal(err)
	}
	if m.calls.Load() != 1 {
		t.Errorf("model evaluated %d times, want 1", m.calls.Load())
	}
	if r1.PIn != r2.PIn || r1.PNomTotal != r2.PNomTotal {
		t.Errorf("cached result %+v differs from first %+v", r2, r1)
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
}

func TestCacheKeysByKindAndScenario(t *testing.T) {
	c := NewCache()
	ivr := &countingModel{kind: pdn.IVR}
	mbvr := &countingModel{kind: pdn.MBVR}
	s1, s2 := testScenario(4), testScenario(18)

	for _, p := range []struct {
		m *countingModel
		s pdn.Scenario
	}{{ivr, s1}, {ivr, s2}, {mbvr, s1}, {mbvr, s2}} {
		if _, err := c.Evaluate(p.m, p.s); err != nil {
			t.Fatal(err)
		}
	}
	if ivr.calls.Load() != 2 || mbvr.calls.Load() != 2 {
		t.Errorf("calls = (%d, %d), want (2, 2)", ivr.calls.Load(), mbvr.calls.Load())
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
}

func TestCacheCanonicalizesAbsentLoads(t *testing.T) {
	// A scenario that omits a domain and one that lists it idle (zero
	// power) evaluate identically, so they must share one cache entry.
	c := NewCache()
	m := &countingModel{kind: pdn.LDO}
	withAbsent := testScenario(4)
	withIdle := testScenario(4)
	withIdle.Loads[domain.GFX] = pdn.Load{}

	if _, err := c.Evaluate(m, withAbsent); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Evaluate(m, withIdle); err != nil {
		t.Fatal(err)
	}
	if m.calls.Load() != 1 {
		t.Errorf("model evaluated %d times, want 1 (idle load should share the absent-load key)", m.calls.Load())
	}
}

func TestCacheMemoizesErrors(t *testing.T) {
	c := NewCache()
	wantErr := errors.New("invalid scenario")
	m := &countingModel{kind: pdn.IVR, err: wantErr}
	s := testScenario(4)
	for i := 0; i < 3; i++ {
		if _, err := c.Evaluate(m, s); !errors.Is(err, wantErr) {
			t.Fatalf("call %d: err = %v, want %v", i, err, wantErr)
		}
	}
	if m.calls.Load() != 1 {
		t.Errorf("failing evaluation ran %d times, want 1", m.calls.Load())
	}
}

func TestCacheConcurrentSingleEvaluation(t *testing.T) {
	// Many workers racing on the same key must trigger exactly one model
	// evaluation and all observe the same result.
	c := NewCache()
	m := &countingModel{kind: pdn.IMBVR}
	s := testScenario(10)
	const goroutines = 64
	var wg sync.WaitGroup
	results := make([]pdn.Result, goroutines)
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			r, err := c.Evaluate(m, s)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = r
		}(g)
	}
	wg.Wait()
	if m.calls.Load() != 1 {
		t.Errorf("model evaluated %d times, want 1", m.calls.Load())
	}
	for g := 1; g < goroutines; g++ {
		if results[g].PIn != results[0].PIn || results[g].PNomTotal != results[0].PNomTotal {
			t.Fatalf("goroutine %d saw %+v, others saw %+v", g, results[g], results[0])
		}
	}
}

func TestCachedWrapper(t *testing.T) {
	m := &countingModel{kind: pdn.MBVR}
	if got := Cached(m, nil); got != pdn.Model(m) {
		t.Error("Cached with nil cache should return the model unchanged")
	}
	c := NewCache()
	cm := Cached(m, c)
	if cm.Kind() != pdn.MBVR {
		t.Errorf("Kind = %v, want MBVR", cm.Kind())
	}
	s := testScenario(4)
	for i := 0; i < 5; i++ {
		if _, err := cm.Evaluate(s); err != nil {
			t.Fatal(err)
		}
	}
	if m.calls.Load() != 1 {
		t.Errorf("wrapped model evaluated %d times, want 1", m.calls.Load())
	}
}

func TestNilCacheEvaluatesDirectly(t *testing.T) {
	var c *Cache
	m := &countingModel{kind: pdn.IVR}
	s := testScenario(4)
	for i := 0; i < 2; i++ {
		if _, err := c.Evaluate(m, s); err != nil {
			t.Fatal(err)
		}
	}
	if m.calls.Load() != 2 {
		t.Errorf("nil cache evaluated %d times, want 2 (no memoization)", m.calls.Load())
	}
	if h, ms := c.Stats(); h != 0 || ms != 0 || c.Len() != 0 {
		t.Error("nil cache should report zero stats")
	}
}
