package sweep

import (
	"sync"
	"sync/atomic"

	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/units"
)

// cacheKey canonicalizes a (PDN kind, scenario) pair. Loads are read in
// fixed domain order through Scenario.LoadFor, so a map entry holding an
// idle zero load and an absent entry produce the same key — the PDN models
// cannot tell them apart either.
type cacheKey struct {
	kind   pdn.Kind
	cstate domain.CState
	psu    units.Volt
	loads  [6]pdn.Load
}

func keyFor(kind pdn.Kind, s pdn.Scenario) cacheKey {
	k := cacheKey{kind: kind, cstate: s.CState, psu: s.PSU}
	for i, d := range domain.Kinds() {
		k.loads[i] = s.LoadFor(d)
	}
	return k
}

// Cache memoizes pdn.Model evaluations keyed by (kind, scenario), deduping
// the many repeated Evaluate calls the figures share (the same TDP
// scenarios recur across fig2b, fig4, fig5, fig8 and the observations).
//
// It is safe for concurrent use; when several workers request the same key
// the model evaluates once and the rest share the outcome, error included.
// Because one Kind maps to one model per cache, keep one Cache per
// parameter set (an experiments.Env owns exactly one). Cached results are
// shared, so callers must treat pdn.Result — notably its Rails slice — as
// read-only.
type Cache struct {
	mu      sync.Mutex
	entries map[cacheKey]*cacheEntry
	hits    atomic.Int64
	misses  atomic.Int64
}

type cacheEntry struct {
	once sync.Once
	res  pdn.Result
	err  error
}

// NewCache returns an empty evaluation cache.
func NewCache() *Cache { return &Cache{entries: make(map[cacheKey]*cacheEntry)} }

// Evaluate returns m.Evaluate(s) memoized by (m.Kind(), s). A nil cache
// evaluates directly.
func (c *Cache) Evaluate(m pdn.Model, s pdn.Scenario) (pdn.Result, error) {
	if c == nil {
		return m.Evaluate(s)
	}
	key := keyFor(m.Kind(), s)
	c.mu.Lock()
	e, ok := c.entries[key]
	if !ok {
		e = &cacheEntry{}
		c.entries[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() { e.res, e.err = m.Evaluate(s) })
	return e.res, e.err
}

// Stats reports how many Evaluate calls hit and missed the cache.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of distinct (kind, scenario) keys stored.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// cachedModel routes Evaluate through a Cache.
type cachedModel struct {
	inner pdn.Model
	cache *Cache
}

// Cached wraps m so every Evaluate is memoized by c; Kind is forwarded.
// A nil cache returns m unchanged. Do not hand a cached model to callers
// that evaluate perturbed one-off scenarios (refmodel.Measure) — each
// perturbation would occupy a cache entry for no reuse.
func Cached(m pdn.Model, c *Cache) pdn.Model {
	if c == nil {
		return m
	}
	return cachedModel{inner: m, cache: c}
}

func (cm cachedModel) Kind() pdn.Kind { return cm.inner.Kind() }

func (cm cachedModel) Evaluate(s pdn.Scenario) (pdn.Result, error) {
	return cm.cache.Evaluate(cm.inner, s)
}
