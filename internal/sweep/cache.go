package sweep

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"repro/internal/pdn"
)

// cacheKey identifies a (PDN kind, scenario) pair. pdn.Scenario is an
// array-backed value type whose representation is canonical (an absent and
// an idle domain are the same zero Load), so the scenario itself is the key
// — no normalization pass is needed and two keys are equal iff the PDN
// models cannot tell the scenarios apart.
type cacheKey struct {
	kind pdn.Kind
	s    pdn.Scenario
}

// cacheShards spreads the key space over independently locked maps so
// concurrent readers don't serialize on one lock; 64 shards keeps the
// per-shard collision probability negligible for GOMAXPROCS-sized pools.
const cacheShards = 64

// cacheShard is one lock-striped slice of the key space. Reads take only
// the shard's RLock, so cache hits — the overwhelming majority of accesses
// once the figure grids warm up — proceed in parallel; writers touch one
// shard and never block readers of the other 63.
type cacheShard struct {
	mu      sync.RWMutex
	entries map[cacheKey]*cacheEntry
}

// Cache memoizes pdn.Model evaluations keyed by (kind, scenario), deduping
// the many repeated Evaluate calls the figures share (the same TDP
// scenarios recur across fig2b, fig4, fig5, fig8 and the observations).
//
// It is safe for concurrent use; when several workers request the same key
// the model evaluates once and the rest share the outcome, error included.
// Because one Kind maps to one model per cache, keep one Cache per
// parameter set (an experiments.Env owns exactly one). Cached results are
// plain values — pdn.Result stores its rails in a value array — so a hit
// returns an independent copy and callers may do with it as they please.
type Cache struct {
	seed     maphash.Seed
	shards   [cacheShards]cacheShard
	hits     atomic.Int64
	misses   atomic.Int64
	warmHits atomic.Int64
	size     atomic.Int64
	// tier is the optional persistent layer below the shards; boxed so
	// the interface can be swapped atomically (warm-start attaches it
	// while traffic may already be flowing).
	tier atomic.Pointer[tierRef]
}

// Tier is a second cache level under the in-memory shards: Put is invoked
// write-behind, exactly once per key, after a miss computes a result.
// Implementations must not block — the caller is the evaluation path —
// and must tolerate being dropped on the floor (a Tier is an optimization,
// never a dependency). internal/cachestore.Store implements Tier.
type Tier interface {
	Put(kind pdn.Kind, s pdn.Scenario, res pdn.Result)
}

type tierRef struct{ t Tier }

// cacheEntry is one published evaluation slot, resolved by a
// creator-computes protocol: the goroutine that inserts the entry under
// the shard lock is the only one that ever invokes the model for its key
// (scalar or as one point of a grid kernel call); it stores res/err and
// closes done, and every other goroutine — scalar hit or grid hit alike —
// blocks on done and reads the published result. The close gives the
// happens-before edge, and the exactly-one-invocation guarantee holds
// even when the batch path claims a block of keys and resolves them with
// one kernel call while scalar evaluations race the same keys.
type cacheEntry struct {
	done chan struct{}
	res  pdn.Result
	err  error
	// warm marks an entry preloaded from a Tier; set before the entry is
	// published and never mutated after, so reads need no synchronization
	// beyond the shard map's.
	warm bool
}

func newCacheEntry() *cacheEntry { return &cacheEntry{done: make(chan struct{})} }

// closedDone is shared by entries born complete (tier preloads): their
// result is published at insertion, so waiters must never block.
var closedDone = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// NewCache returns an empty evaluation cache.
func NewCache() *Cache {
	c := &Cache{seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].entries = make(map[cacheKey]*cacheEntry)
	}
	return c
}

// shardIndex hashes key to its shard's index. cacheKey contains no
// pointers, so maphash.Comparable hashes it without allocating.
func (c *Cache) shardIndex(key cacheKey) int {
	return int(maphash.Comparable(c.seed, key) % cacheShards)
}

// shardFor picks the shard holding key.
func (c *Cache) shardFor(key cacheKey) *cacheShard {
	return &c.shards[c.shardIndex(key)]
}

// Evaluate returns m.Evaluate(s) memoized by (m.Kind(), s). A nil cache
// evaluates directly.
func (c *Cache) Evaluate(m pdn.Model, s pdn.Scenario) (pdn.Result, error) {
	if c == nil {
		return m.Evaluate(s)
	}
	key := cacheKey{kind: m.Kind(), s: s}
	sh := c.shardFor(key)
	sh.mu.RLock()
	e, ok := sh.entries[key]
	sh.mu.RUnlock()
	if !ok {
		sh.mu.Lock()
		e, ok = sh.entries[key]
		if !ok {
			e = newCacheEntry()
			sh.entries[key] = e
			c.size.Add(1)
		}
		sh.mu.Unlock()
	}
	if ok {
		c.hits.Add(1)
		if e.warm {
			c.warmHits.Add(1)
		}
		// Someone else claimed the key — a scalar evaluation or a grid
		// block holding it in flight; wait for the published result
		// instead of computing a duplicate.
		<-e.done
		return e.res, e.err
	}
	c.misses.Add(1)
	e.res, e.err = m.Evaluate(s)
	// Write-behind: persist the fresh result before publishing, so the
	// tier sees each key at most once per process. The tier's Put contract
	// is non-blocking, keeping evaluation latency untouched; preloaded
	// entries never re-enter the tier (they are born published).
	if e.err == nil {
		if ref := c.tier.Load(); ref != nil {
			ref.t.Put(key.kind, key.s, e.res)
		}
	}
	close(e.done)
	return e.res, e.err
}

// AttachTier connects (or, with nil, disconnects) the persistent layer
// below the in-memory shards. Safe to call while the cache is in use;
// entries computed after the attach flow to the tier.
func (c *Cache) AttachTier(t Tier) {
	if t == nil {
		c.tier.Store(nil)
		return
	}
	c.tier.Store(&tierRef{t: t})
}

// Preload inserts a completed evaluation — typically replayed from a Tier
// at warm start — without invoking any model and without writing back to
// the tier. It reports false when the key is already present (a live
// evaluation beat the replay; both produce identical results, so first
// wins). Safe to call concurrently with Evaluate.
func (c *Cache) Preload(kind pdn.Kind, s pdn.Scenario, res pdn.Result) bool {
	if c == nil {
		return false
	}
	key := cacheKey{kind: kind, s: s}
	e := &cacheEntry{done: closedDone, res: res, warm: true} // born complete
	sh := c.shardFor(key)
	sh.mu.Lock()
	if _, exists := sh.entries[key]; exists {
		sh.mu.Unlock()
		return false
	}
	sh.entries[key] = e
	sh.mu.Unlock()
	c.size.Add(1)
	return true
}

// WarmHits reports how many Evaluate calls were answered by entries
// preloaded from the tier — the tier's hit count.
func (c *Cache) WarmHits() int64 {
	if c == nil {
		return 0
	}
	return c.warmHits.Load()
}

// Reset drops every cached entry (the admin cache-flush path) and returns
// how many keys were removed. In-flight evaluations holding entry pointers
// complete unaffected; hit/miss counters stay monotone.
func (c *Cache) Reset() int {
	if c == nil {
		return 0
	}
	removed := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		removed += len(sh.entries)
		sh.entries = make(map[cacheKey]*cacheEntry)
		sh.mu.Unlock()
	}
	c.size.Add(int64(-removed))
	return removed
}

// Stats reports how many Evaluate calls hit and missed the cache.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	return c.hits.Load(), c.misses.Load()
}

// Len returns the number of distinct (kind, scenario) keys stored.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	return int(c.size.Load())
}

// cachedModel routes Evaluate through a Cache.
type cachedModel struct {
	inner pdn.Model
	cache *Cache
}

// Cached wraps m so every Evaluate is memoized by c; Kind is forwarded.
// A nil cache returns m unchanged. Do not hand a cached model to callers
// that evaluate perturbed one-off scenarios (refmodel.Measure) — each
// perturbation would occupy a cache entry for no reuse.
func Cached(m pdn.Model, c *Cache) pdn.Model {
	if c == nil {
		return m
	}
	return cachedModel{inner: m, cache: c}
}

func (cm cachedModel) Kind() pdn.Kind { return cm.inner.Kind() }

func (cm cachedModel) Evaluate(s pdn.Scenario) (pdn.Result, error) {
	return cm.cache.Evaluate(cm.inner, s)
}
