package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestStreamCtxOrderedAndComplete(t *testing.T) {
	for _, cfg := range []struct{ workers, window int }{
		{1, 1}, {4, 0}, {4, 1}, {8, 3}, {64, 256},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("workers=%d,window=%d", cfg.workers, cfg.window), func(t *testing.T) {
			const n = 500
			var got []int
			err := StreamCtx(context.Background(), cfg.workers, cfg.window, n,
				func(i int) (int, error) { return i * i, nil },
				func(i, v int, err error) error {
					if err != nil {
						t.Errorf("point %d: unexpected error %v", i, err)
					}
					got = append(got, v)
					return nil
				})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("emitted %d results, want %d", len(got), n)
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("emit %d carried %d, want %d (out of order?)", i, v, i*i)
				}
			}
		})
	}
}

// TestStreamCtxBoundedWindow is the memory contract: workers may run at
// most window points ahead of the consumer, so a slow consumer
// backpressures the pool instead of growing a buffer.
func TestStreamCtxBoundedWindow(t *testing.T) {
	const n, workers, window = 200, 4, 8
	var started atomic.Int64
	var emitted atomic.Int64
	err := StreamCtx(context.Background(), workers, window, n,
		func(i int) (int, error) {
			started.Add(1)
			return i, nil
		},
		func(i, v int, err error) error {
			// Stall the consumer so the pool races as far ahead as the
			// window allows; the lead must never exceed it.
			time.Sleep(100 * time.Microsecond)
			if lead := started.Load() - emitted.Load(); lead > window {
				t.Errorf("emit %d: %d points in flight, window is %d", i, lead, window)
			}
			emitted.Add(1)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if started.Load() != n {
		t.Errorf("started %d points, want %d", started.Load(), n)
	}
}

// TestStreamCtxPerPointErrors pins the streaming error vocabulary:
// a failing point is delivered in order with its error and the sweep
// continues — the consumer decides whether to stop.
func TestStreamCtxPerPointErrors(t *testing.T) {
	const n = 50
	boom := errors.New("boom")
	var ok, failed int
	err := StreamCtx(context.Background(), 4, 0, n,
		func(i int) (int, error) {
			if i%7 == 0 {
				return 0, fmt.Errorf("point %d: %w", i, boom)
			}
			return i, nil
		},
		func(i, v int, err error) error {
			if i%7 == 0 {
				if !errors.Is(err, boom) {
					t.Errorf("point %d: err = %v, want boom", i, err)
				}
				failed++
			} else {
				if err != nil || v != i {
					t.Errorf("point %d: (%d, %v)", i, v, err)
				}
				ok++
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if failed != 8 || ok != n-8 {
		t.Errorf("failed=%d ok=%d, want 8 and %d", failed, ok, n-8)
	}
}

// TestStreamCtxEmitErrorAborts pins the consumer-gone path: when emit
// reports a write failure, the sweep cancels, stops evaluating new points,
// and returns the emit error with no goroutine left behind.
func TestStreamCtxEmitErrorAborts(t *testing.T) {
	before := runtime.NumGoroutine()
	const n = 100000
	writeFailed := errors.New("client went away")
	var evaluated atomic.Int64
	err := StreamCtx(context.Background(), 4, 8, n,
		func(i int) (int, error) {
			evaluated.Add(1)
			return i, nil
		},
		func(i, v int, err error) error {
			if i == 10 {
				return writeFailed
			}
			return nil
		})
	if !errors.Is(err, writeFailed) {
		t.Fatalf("err = %v, want the emit error", err)
	}
	// 10 emitted + at most window+workers stragglers.
	if ev := evaluated.Load(); ev > 10+8+4+1 {
		t.Errorf("%d points evaluated after consumer died, want a bounded few", ev)
	}
	waitForGoroutines(t, before)
}

func TestStreamCtxCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	const n = 100000
	var emitted int
	err := StreamCtx(ctx, 4, 8, n,
		func(i int) (int, error) { return i, nil },
		func(i, v int, err error) error {
			emitted++
			if emitted == 5 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if emitted >= n {
		t.Error("cancelled stream emitted the whole grid")
	}
	waitForGoroutines(t, before)
}

func TestStreamCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := StreamCtx(ctx, 4, 0, 100,
		func(i int) (int, error) { return i, nil },
		func(i, v int, err error) error {
			t.Error("emit called on a pre-cancelled stream")
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestStreamCtxEmpty(t *testing.T) {
	err := StreamCtx(context.Background(), 4, 0, 0,
		func(i int) (int, error) { return 0, errors.New("never") },
		func(i, v int, err error) error { return errors.New("never") })
	if err != nil {
		t.Errorf("empty stream err = %v", err)
	}
}

// waitForGoroutines asserts the goroutine count returns to (about) its
// pre-test level: StreamCtx must not leak its pool on any exit path.
func waitForGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines: %d before, %d after 2s", before, runtime.NumGoroutine())
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
