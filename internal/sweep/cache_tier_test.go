package sweep

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/pdn"
)

// recordingTier captures Put calls; it stands in for the persistent store.
type recordingTier struct {
	mu   sync.Mutex
	puts []pdn.Scenario
}

func (rt *recordingTier) Put(kind pdn.Kind, s pdn.Scenario, res pdn.Result) {
	rt.mu.Lock()
	rt.puts = append(rt.puts, s)
	rt.mu.Unlock()
}

func (rt *recordingTier) count() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return len(rt.puts)
}

func TestTierReceivesEachKeyOnce(t *testing.T) {
	c := NewCache()
	tier := &recordingTier{}
	c.AttachTier(tier)
	m := &countingModel{kind: pdn.IVR}
	s := testScenario(4)

	for i := 0; i < 5; i++ {
		if _, err := c.Evaluate(m, s); err != nil {
			t.Fatal(err)
		}
	}
	if tier.count() != 1 {
		t.Errorf("tier saw %d puts for one key, want exactly 1", tier.count())
	}

	// A failed evaluation never reaches the tier.
	bad := &countingModel{kind: pdn.LDO, err: errors.New("boom")}
	c.Evaluate(bad, s) //nolint:errcheck // the error is the point
	if tier.count() != 1 {
		t.Errorf("tier saw a failed evaluation (puts = %d)", tier.count())
	}

	// Detach stops the flow.
	c.AttachTier(nil)
	if _, err := c.Evaluate(m, testScenario(8)); err != nil {
		t.Fatal(err)
	}
	if tier.count() != 1 {
		t.Errorf("detached tier still saw puts (%d)", tier.count())
	}
}

func TestPreloadAndWarmHits(t *testing.T) {
	c := NewCache()
	m := &countingModel{kind: pdn.IVR}
	s := testScenario(4)
	want := pdn.Result{PDN: pdn.IVR, PNomTotal: 42, PIn: 52.5}

	if !c.Preload(pdn.IVR, s, want) {
		t.Fatal("Preload of a fresh key reported false")
	}
	if c.Preload(pdn.IVR, s, pdn.Result{}) {
		t.Error("Preload of an existing key reported true")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}

	// A hit on the preloaded entry returns the stored result without
	// evaluating, and counts as a warm hit.
	got, err := c.Evaluate(m, s)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("preloaded result %+v, want %+v", got, want)
	}
	if m.calls.Load() != 0 {
		t.Errorf("model evaluated %d times behind a preloaded entry", m.calls.Load())
	}
	if c.WarmHits() != 1 {
		t.Errorf("WarmHits = %d, want 1", c.WarmHits())
	}

	// Cold keys still evaluate and do not count as warm.
	if _, err := c.Evaluate(m, testScenario(8)); err != nil {
		t.Fatal(err)
	}
	if c.WarmHits() != 1 {
		t.Errorf("cold evaluation bumped WarmHits to %d", c.WarmHits())
	}
}

// TestPreloadNeverWritesBack pins the replay loop invariant: warm-started
// entries must not echo into the tier, or every boot would rewrite the
// whole log.
func TestPreloadNeverWritesBack(t *testing.T) {
	c := NewCache()
	tier := &recordingTier{}
	c.AttachTier(tier)
	m := &countingModel{kind: pdn.IVR}
	s := testScenario(4)

	c.Preload(pdn.IVR, s, pdn.Result{PDN: pdn.IVR, PNomTotal: 1})
	if _, err := c.Evaluate(m, s); err != nil {
		t.Fatal(err)
	}
	if tier.count() != 0 {
		t.Errorf("preloaded entry wrote back to the tier (%d puts)", tier.count())
	}
}

func TestReset(t *testing.T) {
	c := NewCache()
	m := &countingModel{kind: pdn.IVR}
	for i := 0; i < 4; i++ {
		if _, err := c.Evaluate(m, testScenario(float64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if removed := c.Reset(); removed != 4 {
		t.Errorf("Reset removed %d, want 4", removed)
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after Reset, want 0", c.Len())
	}
	// The cache keeps working: the next Evaluate recomputes.
	calls := m.calls.Load()
	if _, err := c.Evaluate(m, testScenario(1)); err != nil {
		t.Fatal(err)
	}
	if m.calls.Load() != calls+1 {
		t.Error("post-Reset Evaluate did not recompute")
	}
}

// TestPreloadRacesEvaluate drives concurrent Preload and Evaluate on the
// same keys; under -race this pins the shard handoff, and the result must
// come out of exactly one source.
func TestPreloadRacesEvaluate(t *testing.T) {
	c := NewCache()
	m := &countingModel{kind: pdn.IVR}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := testScenario(float64(i % 10))
				if g%2 == 0 {
					c.Preload(pdn.IVR, s, pdn.Result{PDN: pdn.IVR, PNomTotal: s.TotalNominal()})
				} else if _, err := c.Evaluate(m, s); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 10 {
		t.Errorf("Len = %d, want 10 distinct keys", c.Len())
	}
}
