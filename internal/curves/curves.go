// Package curves provides the interpolation-table machinery PDNspot uses to
// represent voltage-regulator efficiency surfaces, ETEE curves stored in PMU
// firmware, voltage-frequency curves, and cost tables.
//
// The paper's models are driven by measured curves ("the actual curves in
// PDNspot plot the efficiency as a function of input voltage, output voltage
// and output current", §4.2); this package supplies the equivalent
// table-lookup-with-interpolation primitive. Tables are immutable after
// construction and safe for concurrent use.
package curves

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when constructing a table with no points.
var ErrEmpty = errors.New("curves: table needs at least one point")

// ErrUnsorted is returned when x-coordinates are not strictly increasing.
var ErrUnsorted = errors.New("curves: x values must be strictly increasing")

// Point is a single (X, Y) sample of a 1-D curve.
type Point struct {
	X, Y float64
}

// Table1D is a piecewise-linear 1-D interpolation table. Queries outside the
// sampled range clamp to the end values, matching how firmware lookup tables
// behave in real power-management units.
type Table1D struct {
	xs []float64
	ys []float64
}

// NewTable1D builds a table from points whose X values must be strictly
// increasing.
func NewTable1D(pts []Point) (*Table1D, error) {
	if len(pts) == 0 {
		return nil, ErrEmpty
	}
	t := &Table1D{
		xs: make([]float64, len(pts)),
		ys: make([]float64, len(pts)),
	}
	for i, p := range pts {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) {
			return nil, fmt.Errorf("curves: NaN at point %d", i)
		}
		if i > 0 && p.X <= pts[i-1].X {
			return nil, ErrUnsorted
		}
		t.xs[i] = p.X
		t.ys[i] = p.Y
	}
	return t, nil
}

// MustTable1D is NewTable1D that panics on error; for static tables.
func MustTable1D(pts []Point) *Table1D {
	t, err := NewTable1D(pts)
	if err != nil {
		panic(err)
	}
	return t
}

// FromFunc samples f at n points uniformly spaced over [lo, hi] (inclusive)
// and returns the resulting table. n must be >= 2.
func FromFunc(lo, hi float64, n int, f func(float64) float64) *Table1D {
	if n < 2 {
		panic("curves: FromFunc needs n >= 2")
	}
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = Point{X: x, Y: f(x)}
	}
	return MustTable1D(pts)
}

// FromFuncLog samples f at n log-spaced points over [lo, hi]; lo must be > 0.
// Log spacing matches how VR efficiency is characterized over decades of load
// current.
func FromFuncLog(lo, hi float64, n int, f func(float64) float64) *Table1D {
	if n < 2 || lo <= 0 || hi <= lo {
		panic("curves: FromFuncLog needs n >= 2 and 0 < lo < hi")
	}
	ratio := math.Log(hi / lo)
	pts := make([]Point, n)
	for i := 0; i < n; i++ {
		x := lo * math.Exp(ratio*float64(i)/float64(n-1))
		pts[i] = Point{X: x, Y: f(x)}
	}
	return MustTable1D(pts)
}

// At returns the piecewise-linear interpolation of the curve at x.
//
// Edge semantics are explicit and clamped, matching how firmware lookup
// tables behave in real power-management units: any query at or below the
// first sample returns exactly ys[0], any query at or above the last sample
// returns exactly ys[len-1] (no extrapolation, including -Inf/+Inf), and a
// NaN query returns NaN rather than an arbitrary end value — a NaN operand
// means the caller's operating point is already poisoned, and clamping it
// to a plausible efficiency would silently launder the error.
func (t *Table1D) At(x float64) float64 {
	n := len(t.xs)
	if math.IsNaN(x) {
		return math.NaN()
	}
	if x <= t.xs[0] {
		return t.ys[0]
	}
	if x >= t.xs[n-1] {
		return t.ys[n-1]
	}
	// sort.SearchFloat64s returns the first index with xs[i] >= x.
	i := sort.SearchFloat64s(t.xs, x)
	if x == t.xs[i] {
		// A query exactly on a node returns the stored sample bit for bit.
		// Without this, the node evaluates as the t=1 end of the preceding
		// interval and y0 + 1·(y1−y0) can round an ULP or two off y1.
		return t.ys[i]
	}
	x0, x1 := t.xs[i-1], t.xs[i]
	y0, y1 := t.ys[i-1], t.ys[i]
	frac := (x - x0) / (x1 - x0)
	return y0 + frac*(y1-y0)
}

// Domain returns the sampled [min, max] X range.
func (t *Table1D) Domain() (lo, hi float64) { return t.xs[0], t.xs[len(t.xs)-1] }

// Len returns the number of sample points.
func (t *Table1D) Len() int { return len(t.xs) }

// Points returns a copy of the sample points.
func (t *Table1D) Points() []Point {
	pts := make([]Point, len(t.xs))
	for i := range t.xs {
		pts[i] = Point{X: t.xs[i], Y: t.ys[i]}
	}
	return pts
}

// MinY and MaxY return the extreme sampled values.
func (t *Table1D) MinY() float64 {
	m := t.ys[0]
	for _, y := range t.ys[1:] {
		if y < m {
			m = y
		}
	}
	return m
}

// MaxY returns the maximum sampled value.
func (t *Table1D) MaxY() float64 {
	m := t.ys[0]
	for _, y := range t.ys[1:] {
		if y > m {
			m = y
		}
	}
	return m
}

// IsMonotoneNonDecreasing reports whether sampled Y values never decrease.
func (t *Table1D) IsMonotoneNonDecreasing() bool {
	for i := 1; i < len(t.ys); i++ {
		if t.ys[i] < t.ys[i-1] {
			return false
		}
	}
	return true
}

// ArgMax returns the X of the maximum sampled Y (first occurrence).
func (t *Table1D) ArgMax() float64 {
	best, bx := t.ys[0], t.xs[0]
	for i := 1; i < len(t.ys); i++ {
		if t.ys[i] > best {
			best, bx = t.ys[i], t.xs[i]
		}
	}
	return bx
}

// Table2D is a bilinear interpolation table over a rectangular grid. It is
// used for efficiency surfaces η(x=Iout, y=Vout) and ETEE surfaces
// η(x=AR, y=TDP).
type Table2D struct {
	xs, ys []float64 // strictly increasing axes
	zs     [][]float64
}

// NewTable2D builds a grid table; zs is indexed zs[yi][xi]. Axes must be
// strictly increasing and zs dimensions must match.
func NewTable2D(xs, ys []float64, zs [][]float64) (*Table2D, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return nil, ErrEmpty
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			return nil, ErrUnsorted
		}
	}
	for i := 1; i < len(ys); i++ {
		if ys[i] <= ys[i-1] {
			return nil, ErrUnsorted
		}
	}
	if len(zs) != len(ys) {
		return nil, fmt.Errorf("curves: zs has %d rows, want %d", len(zs), len(ys))
	}
	t := &Table2D{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		zs: make([][]float64, len(ys)),
	}
	for yi, row := range zs {
		if len(row) != len(xs) {
			return nil, fmt.Errorf("curves: row %d has %d cols, want %d", yi, len(row), len(xs))
		}
		t.zs[yi] = append([]float64(nil), row...)
	}
	return t, nil
}

// MustTable2D is NewTable2D that panics on error.
func MustTable2D(xs, ys []float64, zs [][]float64) *Table2D {
	t, err := NewTable2D(xs, ys, zs)
	if err != nil {
		panic(err)
	}
	return t
}

// FromFunc2D samples f over the cross product of the given axes.
func FromFunc2D(xs, ys []float64, f func(x, y float64) float64) *Table2D {
	zs := make([][]float64, len(ys))
	for yi, y := range ys {
		row := make([]float64, len(xs))
		for xi, x := range xs {
			row[xi] = f(x, y)
		}
		zs[yi] = row
	}
	return MustTable2D(xs, ys, zs)
}

// At returns the bilinear interpolation at (x, y), clamping outside the grid
// with the same edge semantics as Table1D.At: infinities clamp to the grid
// edge values and a NaN coordinate returns NaN instead of an edge cell.
func (t *Table2D) At(x, y float64) float64 {
	if math.IsNaN(x) || math.IsNaN(y) {
		return math.NaN()
	}
	xi, xf := locate(t.xs, x)
	yi, yf := locate(t.ys, y)
	z00 := t.zs[yi][xi]
	z01 := t.zs[yi][xi+1]
	z10 := t.zs[yi+1][xi]
	z11 := t.zs[yi+1][xi+1]
	z0 := z00 + xf*(z01-z00)
	z1 := z10 + xf*(z11-z10)
	return z0 + yf*(z1-z0)
}

// locate finds the cell index i and fraction f such that
// axis[i] + f*(axis[i+1]-axis[i]) corresponds to v (clamped).
func locate(axis []float64, v float64) (int, float64) {
	n := len(axis)
	if n == 1 {
		return 0, 0
	}
	if v <= axis[0] {
		return 0, 0
	}
	if v >= axis[n-1] {
		return n - 2, 1
	}
	i := sort.SearchFloat64s(axis, v)
	// axis[i-1] < v <= axis[i]; interpolate within cell i-1.
	i--
	f := (v - axis[i]) / (axis[i+1] - axis[i])
	return i, f
}

// XAxis returns a copy of the X axis.
func (t *Table2D) XAxis() []float64 { return append([]float64(nil), t.xs...) }

// YAxis returns a copy of the Y axis.
func (t *Table2D) YAxis() []float64 { return append([]float64(nil), t.ys...) }
