package curves

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable1DBasics(t *testing.T) {
	tab := MustTable1D([]Point{{0, 0}, {1, 10}, {2, 40}})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 10}, {2, 40}, // exact points
		{0.5, 5}, {1.5, 25}, // interpolation
		{-1, 0}, {3, 40}, // clamping
	}
	for _, c := range cases {
		if got := tab.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if lo, hi := tab.Domain(); lo != 0 || hi != 2 {
		t.Errorf("Domain() = %g,%g", lo, hi)
	}
	if tab.Len() != 3 {
		t.Errorf("Len() = %d", tab.Len())
	}
	if tab.MinY() != 0 || tab.MaxY() != 40 {
		t.Errorf("MinY/MaxY = %g/%g", tab.MinY(), tab.MaxY())
	}
	if tab.ArgMax() != 2 {
		t.Errorf("ArgMax() = %g", tab.ArgMax())
	}
	if !tab.IsMonotoneNonDecreasing() {
		t.Error("table should be monotone")
	}
}

func TestTable1DErrors(t *testing.T) {
	if _, err := NewTable1D(nil); err != ErrEmpty {
		t.Errorf("empty: got %v", err)
	}
	if _, err := NewTable1D([]Point{{1, 0}, {1, 1}}); err != ErrUnsorted {
		t.Errorf("duplicate x: got %v", err)
	}
	if _, err := NewTable1D([]Point{{2, 0}, {1, 1}}); err != ErrUnsorted {
		t.Errorf("descending x: got %v", err)
	}
	if _, err := NewTable1D([]Point{{math.NaN(), 0}}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestTable1DPoints(t *testing.T) {
	pts := []Point{{1, 2}, {3, 4}}
	tab := MustTable1D(pts)
	got := tab.Points()
	got[0].Y = 99 // must not alias internal state
	if tab.At(1) != 2 {
		t.Error("Points() aliases internal storage")
	}
}

// Property: interpolated values never leave the sampled Y envelope, and the
// table reproduces its sample points exactly.
func TestTable1DProperty(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		if len(raw) < 2 {
			return true
		}
		pts := make([]Point, 0, len(raw))
		for i, y := range raw {
			if math.IsNaN(y) || math.IsInf(y, 0) || math.Abs(y) > 1e100 {
				// Extreme magnitudes lose the interpolation identity to
				// floating-point cancellation; the model domain is watts
				// and volts, nowhere near this.
				return true
			}
			pts = append(pts, Point{X: float64(i), Y: y})
		}
		tab := MustTable1D(pts)
		x := math.Mod(math.Abs(probe), float64(len(pts)))
		y := tab.At(x)
		span := math.Max(math.Abs(tab.MinY()), math.Abs(tab.MaxY()))
		tol := 1e-9 * math.Max(span, 1)
		if y < tab.MinY()-tol || y > tab.MaxY()+tol {
			return false
		}
		for _, p := range pts {
			if tab.At(p.X) != p.Y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFromFunc(t *testing.T) {
	sq := FromFunc(0, 10, 101, func(x float64) float64 { return x * x })
	if got := sq.At(5); math.Abs(got-25) > 0.1 {
		t.Errorf("At(5) = %g, want ~25", got)
	}
	log := FromFuncLog(0.1, 10, 50, math.Log10)
	if got := log.At(1); math.Abs(got) > 0.01 {
		t.Errorf("log At(1) = %g, want ~0", got)
	}
	if got := log.At(0.1); math.Abs(got+1) > 1e-9 {
		t.Errorf("log At(0.1) = %g, want -1", got)
	}
}

func TestFromFuncPanics(t *testing.T) {
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { FromFunc(0, 1, 1, func(float64) float64 { return 0 }) })
	mustPanic(func() { FromFuncLog(0, 1, 10, func(float64) float64 { return 0 }) })
	mustPanic(func() { FromFuncLog(2, 1, 10, func(float64) float64 { return 0 }) })
}

func TestTable2DBilinear(t *testing.T) {
	// z = x + 10y sampled on a 3x3 grid: bilinear interpolation of a linear
	// function must be exact.
	tab := FromFunc2D([]float64{0, 1, 2}, []float64{0, 1, 2}, func(x, y float64) float64 { return x + 10*y })
	cases := []struct{ x, y, want float64 }{
		{0, 0, 0}, {2, 2, 22}, {1, 1, 11},
		{0.5, 0.5, 5.5}, {1.5, 0.25, 4},
		{-1, 0, 0}, {5, 5, 22}, // clamping
	}
	for _, c := range cases {
		if got := tab.At(c.x, c.y); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g,%g) = %g, want %g", c.x, c.y, got, c.want)
		}
	}
}

func TestTable2DErrors(t *testing.T) {
	if _, err := NewTable2D(nil, []float64{1}, nil); err != ErrEmpty {
		t.Errorf("empty: %v", err)
	}
	if _, err := NewTable2D([]float64{1, 1}, []float64{1}, [][]float64{{1, 2}}); err != ErrUnsorted {
		t.Errorf("unsorted: %v", err)
	}
	if _, err := NewTable2D([]float64{1, 2}, []float64{1}, [][]float64{{1}}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := NewTable2D([]float64{1, 2}, []float64{1, 2}, [][]float64{{1, 2}}); err == nil {
		t.Error("missing rows accepted")
	}
}

func TestTable2DAxes(t *testing.T) {
	tab := FromFunc2D([]float64{0, 1}, []float64{2, 3}, func(x, y float64) float64 { return 0 })
	xs := tab.XAxis()
	xs[0] = 99
	if tab.XAxis()[0] != 0 {
		t.Error("XAxis aliases internal storage")
	}
	if got := tab.YAxis(); got[0] != 2 || got[1] != 3 {
		t.Errorf("YAxis = %v", got)
	}
}

// TestTable1DEdgeSemantics pins the documented clamp behavior for queries
// outside the sampled domain: exact end-value returns at and beyond both
// boundaries (bitwise, not approximately), including infinities, a
// single-point table, and NaN queries — which must return NaN instead of
// panicking inside the binary search or laundering into an edge value.
func TestTable1DEdgeSemantics(t *testing.T) {
	tab := MustTable1D([]Point{{1, 3.5}, {2, 7.25}, {4, -1.5}})
	cases := []struct {
		name    string
		x, want float64
	}{
		{"below-lo", 0.25, 3.5},
		{"at-lo", 1, 3.5},
		{"at-hi", 4, -1.5},
		{"above-hi", 1e12, -1.5},
		{"neg-inf", math.Inf(-1), 3.5},
		{"pos-inf", math.Inf(1), -1.5},
	}
	for _, c := range cases {
		if got := tab.At(c.x); got != c.want {
			t.Errorf("%s: At(%g) = %g, want exactly %g", c.name, c.x, got, c.want)
		}
	}
	if got := tab.At(math.NaN()); !math.IsNaN(got) {
		t.Errorf("At(NaN) = %g, want NaN", got)
	}

	single := MustTable1D([]Point{{2, 9}})
	for _, x := range []float64{-1, 2, 5, math.Inf(-1), math.Inf(1)} {
		if got := single.At(x); got != 9 {
			t.Errorf("single-point At(%g) = %g, want 9", x, got)
		}
	}
	if got := single.At(math.NaN()); !math.IsNaN(got) {
		t.Errorf("single-point At(NaN) = %g, want NaN", got)
	}
}

// TestTable2DEdgeSemantics pins Table2D's clamp behavior at and beyond the
// grid boundary, and NaN propagation on either coordinate.
func TestTable2DEdgeSemantics(t *testing.T) {
	tab := MustTable2D([]float64{0, 1}, []float64{0, 1},
		[][]float64{{1, 2}, {3, 4}})
	cases := []struct{ x, y, want float64 }{
		{-5, -5, 1}, {math.Inf(-1), 0, 1},
		{5, -5, 2}, {math.Inf(1), math.Inf(-1), 2},
		{-5, 5, 3},
		{5, 5, 4}, {math.Inf(1), math.Inf(1), 4},
	}
	for _, c := range cases {
		if got := tab.At(c.x, c.y); got != c.want {
			t.Errorf("At(%g,%g) = %g, want exactly %g", c.x, c.y, got, c.want)
		}
	}
	if got := tab.At(math.NaN(), 0.5); !math.IsNaN(got) {
		t.Errorf("At(NaN, 0.5) = %g, want NaN", got)
	}
	if got := tab.At(0.5, math.NaN()); !math.IsNaN(got) {
		t.Errorf("At(0.5, NaN) = %g, want NaN", got)
	}
}

// TestTable1DAccuracyBound pins the interpolation error of sampled tables
// against the exact function, with the classical piecewise-linear bound as
// the documented ceiling: for f with |f”| ≤ M on a sample interval of
// width h, linear interpolation is off by at most M·h²/8 anywhere in the
// interval. The VR efficiency and guardband curves the model tabulates are
// smooth, so this is the accuracy contract a resolution choice buys. At the
// nodes and at (or beyond) the edges the table must reproduce f exactly —
// interpolation error is zero there by construction, and the edge clamp
// returns the boundary sample bit for bit.
func TestTable1DAccuracyBound(t *testing.T) {
	cases := []struct {
		name string
		tab  *Table1D
		f    func(float64) float64
		// ddMax returns an upper bound for |f''| on [a, b] (0 < a <= b).
		ddMax func(a, b float64) float64
	}{
		{
			name:  "square",
			tab:   FromFunc(0, 10, 101, func(x float64) float64 { return x * x }),
			f:     func(x float64) float64 { return x * x },
			ddMax: func(a, b float64) float64 { return 2 },
		},
		{
			name:  "sine",
			tab:   FromFunc(0, math.Pi, 201, math.Sin),
			f:     math.Sin,
			ddMax: func(a, b float64) float64 { return 1 },
		},
		{
			// Log-spaced sampling: the bound is evaluated per interval,
			// since both h and |f''| = 1/(ln10·x²) vary across the axis.
			name:  "log10-logspaced",
			tab:   FromFuncLog(0.1, 10, 50, math.Log10),
			f:     math.Log10,
			ddMax: func(a, b float64) float64 { return 1 / (math.Ln10 * a * a) },
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pts := tc.tab.Points()
			for i := 0; i+1 < len(pts); i++ {
				a, b := pts[i].X, pts[i+1].X
				h := b - a
				// The bound for this interval, plus a hair of slack for the
				// rounding of the interpolation arithmetic itself.
				bound := tc.ddMax(a, b)*h*h/8 + 1e-12
				for j := 0; j <= 16; j++ {
					x := a + h*float64(j)/16
					if err := math.Abs(tc.tab.At(x) - tc.f(x)); err > bound {
						t.Fatalf("At(%g): interpolation error %g exceeds M·h²/8 bound %g (interval [%g,%g])",
							x, err, bound, a, b)
					}
				}
			}
			// Nodes reproduce the sampled values exactly (not merely within
			// the bound): At on a node must return the stored Y bit for bit.
			for _, p := range pts {
				if got := tc.tab.At(p.X); got != p.Y {
					t.Errorf("node At(%g) = %g, want exactly %g", p.X, got, p.Y)
				}
			}
			// Beyond the edges the clamp hands back the boundary samples.
			lo, hi := tc.tab.Domain()
			if got := tc.tab.At(lo - 1); got != pts[0].Y {
				t.Errorf("At(lo-1) = %g, want edge sample %g", got, pts[0].Y)
			}
			if got := tc.tab.At(hi + 1); got != pts[len(pts)-1].Y {
				t.Errorf("At(hi+1) = %g, want edge sample %g", got, pts[len(pts)-1].Y)
			}
		})
	}
}
