package curves

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable1DBasics(t *testing.T) {
	tab := MustTable1D([]Point{{0, 0}, {1, 10}, {2, 40}})
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 10}, {2, 40}, // exact points
		{0.5, 5}, {1.5, 25}, // interpolation
		{-1, 0}, {3, 40}, // clamping
	}
	for _, c := range cases {
		if got := tab.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if lo, hi := tab.Domain(); lo != 0 || hi != 2 {
		t.Errorf("Domain() = %g,%g", lo, hi)
	}
	if tab.Len() != 3 {
		t.Errorf("Len() = %d", tab.Len())
	}
	if tab.MinY() != 0 || tab.MaxY() != 40 {
		t.Errorf("MinY/MaxY = %g/%g", tab.MinY(), tab.MaxY())
	}
	if tab.ArgMax() != 2 {
		t.Errorf("ArgMax() = %g", tab.ArgMax())
	}
	if !tab.IsMonotoneNonDecreasing() {
		t.Error("table should be monotone")
	}
}

func TestTable1DErrors(t *testing.T) {
	if _, err := NewTable1D(nil); err != ErrEmpty {
		t.Errorf("empty: got %v", err)
	}
	if _, err := NewTable1D([]Point{{1, 0}, {1, 1}}); err != ErrUnsorted {
		t.Errorf("duplicate x: got %v", err)
	}
	if _, err := NewTable1D([]Point{{2, 0}, {1, 1}}); err != ErrUnsorted {
		t.Errorf("descending x: got %v", err)
	}
	if _, err := NewTable1D([]Point{{math.NaN(), 0}}); err == nil {
		t.Error("NaN accepted")
	}
}

func TestTable1DPoints(t *testing.T) {
	pts := []Point{{1, 2}, {3, 4}}
	tab := MustTable1D(pts)
	got := tab.Points()
	got[0].Y = 99 // must not alias internal state
	if tab.At(1) != 2 {
		t.Error("Points() aliases internal storage")
	}
}

// Property: interpolated values never leave the sampled Y envelope, and the
// table reproduces its sample points exactly.
func TestTable1DProperty(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		if len(raw) < 2 {
			return true
		}
		pts := make([]Point, 0, len(raw))
		for i, y := range raw {
			if math.IsNaN(y) || math.IsInf(y, 0) || math.Abs(y) > 1e100 {
				// Extreme magnitudes lose the interpolation identity to
				// floating-point cancellation; the model domain is watts
				// and volts, nowhere near this.
				return true
			}
			pts = append(pts, Point{X: float64(i), Y: y})
		}
		tab := MustTable1D(pts)
		x := math.Mod(math.Abs(probe), float64(len(pts)))
		y := tab.At(x)
		span := math.Max(math.Abs(tab.MinY()), math.Abs(tab.MaxY()))
		tol := 1e-9 * math.Max(span, 1)
		if y < tab.MinY()-tol || y > tab.MaxY()+tol {
			return false
		}
		for _, p := range pts {
			if tab.At(p.X) != p.Y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFromFunc(t *testing.T) {
	sq := FromFunc(0, 10, 101, func(x float64) float64 { return x * x })
	if got := sq.At(5); math.Abs(got-25) > 0.1 {
		t.Errorf("At(5) = %g, want ~25", got)
	}
	log := FromFuncLog(0.1, 10, 50, math.Log10)
	if got := log.At(1); math.Abs(got) > 0.01 {
		t.Errorf("log At(1) = %g, want ~0", got)
	}
	if got := log.At(0.1); math.Abs(got+1) > 1e-9 {
		t.Errorf("log At(0.1) = %g, want -1", got)
	}
}

func TestFromFuncPanics(t *testing.T) {
	mustPanic := func(f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Error("expected panic")
			}
		}()
		f()
	}
	mustPanic(func() { FromFunc(0, 1, 1, func(float64) float64 { return 0 }) })
	mustPanic(func() { FromFuncLog(0, 1, 10, func(float64) float64 { return 0 }) })
	mustPanic(func() { FromFuncLog(2, 1, 10, func(float64) float64 { return 0 }) })
}

func TestTable2DBilinear(t *testing.T) {
	// z = x + 10y sampled on a 3x3 grid: bilinear interpolation of a linear
	// function must be exact.
	tab := FromFunc2D([]float64{0, 1, 2}, []float64{0, 1, 2}, func(x, y float64) float64 { return x + 10*y })
	cases := []struct{ x, y, want float64 }{
		{0, 0, 0}, {2, 2, 22}, {1, 1, 11},
		{0.5, 0.5, 5.5}, {1.5, 0.25, 4},
		{-1, 0, 0}, {5, 5, 22}, // clamping
	}
	for _, c := range cases {
		if got := tab.At(c.x, c.y); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g,%g) = %g, want %g", c.x, c.y, got, c.want)
		}
	}
}

func TestTable2DErrors(t *testing.T) {
	if _, err := NewTable2D(nil, []float64{1}, nil); err != ErrEmpty {
		t.Errorf("empty: %v", err)
	}
	if _, err := NewTable2D([]float64{1, 1}, []float64{1}, [][]float64{{1, 2}}); err != ErrUnsorted {
		t.Errorf("unsorted: %v", err)
	}
	if _, err := NewTable2D([]float64{1, 2}, []float64{1}, [][]float64{{1}}); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := NewTable2D([]float64{1, 2}, []float64{1, 2}, [][]float64{{1, 2}}); err == nil {
		t.Error("missing rows accepted")
	}
}

func TestTable2DAxes(t *testing.T) {
	tab := FromFunc2D([]float64{0, 1}, []float64{2, 3}, func(x, y float64) float64 { return 0 })
	xs := tab.XAxis()
	xs[0] = 99
	if tab.XAxis()[0] != 0 {
		t.Error("XAxis aliases internal storage")
	}
	if got := tab.YAxis(); got[0] != 2 || got[1] != 3 {
		t.Errorf("YAxis = %v", got)
	}
}
