package pmu

import (
	"testing"

	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/units"
	"repro/internal/workload"
)

func testManager(t *testing.T, tdp units.Watt) *Manager {
	t.Helper()
	plat := domain.NewClientPlatform()
	m := pdn.NewLDOModel(pdn.DefaultParams())
	return NewManager(plat, m, tdp)
}

func TestAllocateFitsTDP(t *testing.T) {
	for _, tdp := range []units.Watt{4, 18, 50} {
		mg := testManager(t, tdp)
		for _, wt := range workload.Types() {
			a, err := mg.Allocate(wt, 0.6)
			if err != nil {
				t.Fatalf("%v @ %gW: %v", wt, tdp, err)
			}
			// Floor exception: at very low TDP the minimum DVFS point may
			// exceed the budget; otherwise the allocation must fit.
			core := mg.Platform.Domain(domain.Core0)
			if a.CoreFreq > core.Params().FMin && a.PIn > tdp*1.001 {
				t.Errorf("%v @ %gW: allocation draws %.2fW", wt, tdp, a.PIn)
			}
			if a.ETEE <= 0 || a.ETEE >= 1 {
				t.Errorf("%v @ %gW: ETEE %g", wt, tdp, a.ETEE)
			}
		}
	}
}

func TestHigherTDPMeansHigherFrequency(t *testing.T) {
	mg := testManager(t, 4)
	low, err := mg.Allocate(workload.MultiThread, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if err := mg.SetTDP(50); err != nil {
		t.Fatal(err)
	}
	high, err := mg.Allocate(workload.MultiThread, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if !(high.CoreFreq > low.CoreFreq) {
		t.Errorf("cTDP 4->50W should raise core frequency: %g -> %g", low.CoreFreq, high.CoreFreq)
	}
	if !(high.CoreBudget > low.CoreBudget) {
		t.Error("higher TDP should grant more core budget")
	}
}

func TestBetterPDNMeansHigherFrequency(t *testing.T) {
	// The §3.3 mechanism end-to-end: a PDN with higher ETEE at 4W leaves
	// more budget and therefore sustains a higher clock.
	plat := domain.NewClientPlatform()
	params := pdn.DefaultParams()
	ivr := NewManager(plat, pdn.NewIVRModel(params), 4)
	ldo := NewManager(plat, pdn.NewLDOModel(params), 4)
	ai, err := ivr.Allocate(workload.MultiThread, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	al, err := ldo.Allocate(workload.MultiThread, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if !(al.CoreFreq >= ai.CoreFreq) {
		t.Errorf("LDO (ETEE %.2f) should sustain >= frequency than IVR (ETEE %.2f): %g vs %g",
			al.ETEE, ai.ETEE, al.CoreFreq, ai.CoreFreq)
	}
}

func TestGraphicsAllocation(t *testing.T) {
	mg := testManager(t, 18)
	a, err := mg.Allocate(workload.Graphics, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if a.GfxBudget <= 0 {
		t.Error("graphics workload granted no GFX budget")
	}
	// §7.1: graphics gets most of the compute budget.
	if !(a.GfxBudget > a.CoreBudget) {
		t.Errorf("GFX budget %.2fW should exceed core budget %.2fW", a.GfxBudget, a.CoreBudget)
	}
}

func TestAllocateErrors(t *testing.T) {
	mg := testManager(t, 18)
	if _, err := mg.Allocate(workload.MultiThread, 0); err == nil {
		t.Error("zero AR accepted")
	}
	if _, err := mg.Allocate(workload.BatteryLife, 0.5); err == nil {
		t.Error("battery-life type accepted")
	}
	if err := mg.SetTDP(0); err == nil {
		t.Error("zero cTDP accepted")
	}
}
