// Package pmu models the power-management unit's power-budget management
// (PBM) algorithm referenced throughout the paper (§3.4, §6): the PMU
// allocates a fixed budget to the narrow-range SA/IO domains, reserves the
// PDN's conversion loss, and divides the remaining compute budget between
// the CPU cores and the graphics engines according to the running workload,
// picking the highest sustainable DVFS points.
//
// The package also exposes the configurable-TDP (cTDP) mechanism the paper's
// introduction leans on: client platforms reconfigure their TDP at runtime
// ("cTDP up/down"), which is why one PDN must serve a wide power range —
// and why FlexWatts' predictor takes TDP as a runtime input.
package pmu

import (
	"fmt"

	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/units"
	"repro/internal/workload"
)

// Allocation is the PBM outcome for one evaluation interval.
type Allocation struct {
	// CoreFreq and GfxFreq are the selected DVFS points.
	CoreFreq, GfxFreq units.Hertz
	// CoreBudget and GfxBudget are the nominal-power budgets granted.
	CoreBudget, GfxBudget units.Watt
	// UncoreBudget covers SA+IO (fixed per state).
	UncoreBudget units.Watt
	// PDNLossBudget is the input power reserved for conversion loss at the
	// PDN's estimated ETEE.
	PDNLossBudget units.Watt
	// ETEE is the PDN efficiency estimate used for the reservation.
	ETEE float64
	// PIn is the resulting total platform input power (≤ the TDP).
	PIn units.Watt
}

// Manager implements the PBM loop for one platform + PDN pairing.
type Manager struct {
	Platform *domain.Platform
	PDN      pdn.Model
	// TDP is the current (configurable) thermal design power.
	TDP units.Watt
	// GfxShare is the fraction of the compute budget granted to graphics
	// for graphics workloads (§7.1: "10% to 20% of the processor's
	// power-budget is allocated to the CPU cores, while the rest is
	// allocated to the graphics engines").
	GfxShare float64
}

// NewManager returns a PBM manager with the paper's graphics split.
func NewManager(plat *domain.Platform, m pdn.Model, tdp units.Watt) *Manager {
	return &Manager{Platform: plat, PDN: m, TDP: tdp, GfxShare: 0.85}
}

// SetTDP reconfigures the TDP at runtime (cTDP). It returns an error for
// non-positive values.
func (mg *Manager) SetTDP(tdp units.Watt) error {
	if tdp <= 0 {
		return fmt.Errorf("pmu: cTDP must be positive, got %g", tdp)
	}
	mg.TDP = tdp
	return nil
}

// Allocate runs one PBM evaluation: find the highest DVFS points whose
// end-to-end platform power fits the TDP for the given workload type and
// AR. The search walks the compute frequency down from maximum until the
// PDN-evaluated input power fits, mirroring how real PMUs resolve budget
// overshoot (they throttle, they don't model).
func (mg *Manager) Allocate(t workload.Type, ar float64) (Allocation, error) {
	if !(ar > 0 && ar <= 1) {
		return Allocation{}, fmt.Errorf("pmu: AR %g outside (0,1]", ar)
	}
	tj := domain.JunctionTemp(mg.TDP, false)
	core := mg.Platform.Domain(domain.Core0)
	gfx := mg.Platform.Domain(domain.GFX)

	try := func(cf, gf units.Hertz) (Allocation, error) {
		op := pdn.OperatingPoint{
			CState: domain.C0, Tj: tj,
			CoreFreq: cf, CoreAR: ar,
			LLCAR: 0.5,
		}
		switch t {
		case workload.SingleThread:
			op.ActiveCores = 1
		case workload.MultiThread:
			op.ActiveCores = 2
		case workload.Graphics:
			op.ActiveCores = 2
			op.CoreAR = ar * 0.4 // cores lightly loaded during graphics
			op.GfxActive = true
			op.GfxFreq = gf
			op.GfxAR = ar
			op.LLCFreq = gf * 3 // LLC tracks graphics bandwidth demand
		default:
			return Allocation{}, fmt.Errorf("pmu: cannot budget %v", t)
		}
		s := pdn.BuildScenario(mg.Platform, op)
		r, err := mg.PDN.Evaluate(s)
		if err != nil {
			return Allocation{}, err
		}
		return Allocation{
			CoreFreq:      cf,
			GfxFreq:       gf,
			CoreBudget:    s.LoadFor(domain.Core0).PNom + s.LoadFor(domain.Core1).PNom,
			GfxBudget:     s.LoadFor(domain.GFX).PNom,
			UncoreBudget:  s.LoadFor(domain.SA).PNom + s.LoadFor(domain.IO).PNom,
			PDNLossBudget: r.PIn - r.PNomTotal,
			ETEE:          r.ETEE,
			PIn:           r.PIn,
		}, nil
	}

	cp, gp := core.Params(), gfx.Params()
	cf, gf := cp.FMax, gp.FMax
	if t == workload.Graphics {
		// Cores idle along at low clock during graphics workloads (§5
		// Observation 2); the compute budget goes to the engines.
		cf = core.ClampFreq(units.GigaHertz(1.0))
	}
	for {
		a, err := try(cf, gf)
		if err != nil {
			return Allocation{}, err
		}
		if a.PIn <= mg.TDP {
			return a, nil
		}
		// Throttle the domain that dominates this workload first; stop at
		// the floor.
		switch {
		case t == workload.Graphics && gf > gp.FMin:
			gf = gfx.ClampFreq(gf - gp.FStep)
		case cf > cp.FMin:
			cf = core.ClampFreq(cf - cp.FStep)
		case t == workload.Graphics && cf <= cp.FMin && gf <= gp.FMin:
			return a, nil // floor: TDP unreachable, report the floor point
		default:
			return a, nil
		}
	}
}
