package vr

import (
	"math"
	"testing"

	"repro/internal/units"
)

// TestBuckCompileBitwise pins the grid-path contract: a compiled BuckOp
// returns the exact float64 bits of Buck.Efficiency at every operating
// point. The sweep covers all catalog parts, every power state, input
// voltages from battery to IVR rail, and currents that exercise the
// iout<=0 floor, the single-phase and multi-phase shedding branches, the
// MaxPhases clamp, and the duty>maxBuckDuty headroom branch.
func TestBuckCompileBitwise(t *testing.T) {
	parts := map[string]*Buck{
		"vin":   NewVinVR(40),
		"board": NewBoardVR("V_Cores", 60),
		"small": NewSmallRailVR("V_SA", 10),
		"ivr":   NewIVR("IVR_Core0", 50),
	}
	vins := []units.Volt{0, 0.9, 1.05, 1.8, 7.2, 12, 20}
	vouts := []units.Volt{0, 0.55, 0.75, 1.0, 1.1, 1.7, 1.79, 1.8}
	iouts := []units.Amp{-1, 0, 1e-9, 0.01, 0.3, 0.999, 1, 2.5, 3.001, 7, 12.5, 40, 100}
	for name, b := range parts {
		for _, vin := range vins {
			var states BuckStates
			statesReady := false
			for ps := PS0; ps <= PS4; ps++ {
				op := b.Compile(vin, ps)
				for _, vout := range vouts {
					for _, iout := range iouts {
						want := b.Efficiency(OperatingPoint{Vin: vin, Vout: vout, Iout: iout, State: ps})
						got := op.Efficiency(vout, iout)
						if math.Float64bits(got) != math.Float64bits(want) {
							t.Fatalf("%s Compile(%g,%v).Efficiency(%g,%g) = %x, scalar %x",
								name, vin, ps, vout, iout,
								math.Float64bits(got), math.Float64bits(want))
						}
						if !statesReady {
							states = b.CompileStates(vin)
							statesReady = true
						}
						if got2 := states.Efficiency(ps, vout, iout); math.Float64bits(got2) != math.Float64bits(want) {
							t.Fatalf("%s CompileStates(%g).Efficiency(%v,%g,%g) = %x, scalar %x",
								name, vin, ps, vout, iout,
								math.Float64bits(got2), math.Float64bits(want))
						}
					}
				}
			}
		}
	}
}

// TestBuckCompileDenseSweep crosses the branch boundaries with a dense
// (vout, iout) sweep at the catalog's real operating voltages, so a future
// reordering of loss terms — numerically close but not bit-identical —
// cannot hide between the coarse grid points above.
func TestBuckCompileDenseSweep(t *testing.T) {
	b := NewIVR("IVR_GFX", 50)
	const vin = 1.8
	for ps := PS0; ps <= PS4; ps++ {
		op := b.Compile(vin, ps)
		for vout := units.Volt(0.4); vout <= 1.85; vout += 0.013 {
			for iout := units.Amp(0.001); iout < 45; iout *= 1.7 {
				want := b.Efficiency(OperatingPoint{Vin: vin, Vout: vout, Iout: iout, State: ps})
				got := op.Efficiency(vout, iout)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("dense: Efficiency(vout=%g, iout=%g, %v) = %x, scalar %x",
						vout, iout, ps, math.Float64bits(got), math.Float64bits(want))
				}
			}
		}
	}
}
