// Package vr models the voltage regulators that compose the power delivery
// networks studied in the FlexWatts paper (§2.2): switching VRs (buck
// converters, used both on the motherboard and integrated on die as IVRs),
// low-dropout (LDO) linear regulators, and power gates.
//
// The paper drives its ETEE models with measured efficiency curves
// η(Vin, Vout, Iout, power-state) (Fig 3, Table 2). Real hardware is not
// available to this reproduction, so this package generates the curves from
// a physically-grounded parametric loss model:
//
//	Ploss = Pctl(PS) + Psw(Vin, PS) + Kovl·Vin·Iout + Vdt·(1−D)·Iout
//	      + Kdrv·Iout + Rds(phases)·Iout²
//
// The controller and switching terms dominate at light load (efficiency
// droop on the left of Fig 3), the switch-overlap term Kovl·Vin·Iout and the
// dead-time/freewheel term Vdt·(1−D)·Iout (D = Vout/Vin duty cycle) penalize
// large single-stage conversion ratios — the physical reason the IVR PDN's
// two-stage topology wins at high power — and the I²R conduction term
// dominates at heavy load, with phase shedding flattening the top. The
// parameters for each concrete regulator are calibrated so the resulting
// curves land in the ranges the paper reports: off-chip 72–93 %, IVR
// 81–88 %, LDO ≈ (Vout/Vin)·99.1 %.
package vr

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// PowerState identifies a voltage-regulator power state (not a processor
// C-state). PS0 is the full-performance state; higher states trade peak
// capability for lower fixed losses at light load. The V_IN VR in the paper
// supports PS0, PS1, PS3 and PS4 (§4.2).
type PowerState int

// Voltage-regulator power states.
const (
	PS0 PowerState = iota // full performance, all phases available
	PS1                   // light-load: fewer phases, diode emulation
	PS2                   // unused by the modeled parts; kept for numbering
	PS3                   // deep light-load: minimum switching activity
	PS4                   // standby: regulation duty-cycled
)

// String returns the conventional name, e.g. "PS0".
func (ps PowerState) String() string { return fmt.Sprintf("PS%d", int(ps)) }

// Valid reports whether ps is one of the modeled states.
func (ps PowerState) Valid() bool { return ps >= PS0 && ps <= PS4 }

// OperatingPoint is a single electrical operating point of a regulator.
type OperatingPoint struct {
	Vin   units.Volt // input voltage
	Vout  units.Volt // regulated output voltage
	Iout  units.Amp  // load current drawn from the output
	State PowerState // regulator power state
}

// Regulator is the common interface of every VR model. Efficiency returns
// the power-conversion efficiency η = Pout/Pin at the operating point;
// InputPower returns the power drawn from the regulator's input for a given
// output power at the point's voltages.
type Regulator interface {
	// Name identifies the regulator instance (e.g. "V_IN", "IVR_Core0").
	Name() string
	// Efficiency returns η in (0, 1] for the operating point.
	Efficiency(op OperatingPoint) float64
	// MaxCurrent returns the electrical design limit Iccmax of the part.
	MaxCurrent() units.Amp
}

// InputPower converts an output power demand into input power using the
// regulator's efficiency at the implied operating point. Zero output power
// in a non-standby state still pays the regulator's fixed losses, which is
// modeled by evaluating the efficiency at a small keep-alive current.
func InputPower(r Regulator, vin, vout units.Volt, pout units.Watt, ps PowerState) units.Watt {
	units.CheckNonNegative("pout", pout)
	if pout == 0 {
		return 0
	}
	iout := pout / vout
	eta := r.Efficiency(OperatingPoint{Vin: vin, Vout: vout, Iout: iout, State: ps})
	return pout / eta
}

// BuckParams parameterizes the switching-VR loss model. All power terms are
// in watts at the reference conditions noted per field.
type BuckParams struct {
	// PControl is the fixed controller/housekeeping loss in PS0.
	PControl units.Watt
	// PControlLight is the fixed loss in light-load states (PS1+); real
	// parts duty-cycle their control loop, so this is much smaller.
	PControlLight units.Watt
	// KSwitch scales the switching loss term Psw = KSwitch · Vin². It
	// captures gate-charge and V·I overlap losses, which grow with input
	// voltage. Light-load states reduce the effective switching frequency;
	// the model divides this term by LightSwitchDiv in PS1+.
	KSwitch float64
	// LightSwitchDiv divides the switching loss in light-load states.
	LightSwitchDiv float64
	// KOverlap scales the switch V·I overlap loss Povl = KOverlap·Vin·Iout.
	// It grows with both input voltage and load current, which is what makes
	// a single large step-down stage (7.2 V in, tens of amperes out) pay
	// more than two cascaded stages that each see either high voltage or
	// high current, but not both.
	KOverlap float64
	// VDeadTime is the effective freewheel/dead-time voltage: the loss is
	// Pdt = VDeadTime·(1−D)·Iout with duty cycle D = Vout/Vin, penalizing
	// low-duty (large conversion ratio) operation.
	VDeadTime units.Volt
	// KDriver scales the per-ampere driver/diode loss: Pdrv = KDriver·Iout.
	KDriver float64
	// RSeries is the per-phase series resistance (bridge + inductor DCR)
	// responsible for conduction loss Rds_eff · Iout².
	RSeries units.Ohm
	// PhaseCurrent is the per-phase current at which another phase is
	// activated; phase shedding divides the effective series resistance.
	PhaseCurrent units.Amp
	// MaxPhases bounds the number of phases.
	MaxPhases int
	// Iccmax is the electrical design limit of the part.
	Iccmax units.Amp
	// EtaFloor bounds efficiency from below; physical converters never
	// report arbitrarily small efficiency in their datasheet operating
	// region, and the floor keeps the model numerically safe at nA loads.
	EtaFloor float64
}

// validate panics on nonsensical parameters; BuckParams are static
// configuration, so errors here are programming errors.
func (p BuckParams) validate() {
	units.CheckNonNegative("PControl", p.PControl)
	units.CheckNonNegative("PControlLight", p.PControlLight)
	units.CheckNonNegative("KSwitch", p.KSwitch)
	units.CheckNonNegative("KOverlap", p.KOverlap)
	units.CheckNonNegative("VDeadTime", p.VDeadTime)
	units.CheckNonNegative("KDriver", p.KDriver)
	units.CheckNonNegative("RSeries", p.RSeries)
	units.CheckPositive("PhaseCurrent", p.PhaseCurrent)
	if p.MaxPhases < 1 {
		panic("vr: MaxPhases must be >= 1")
	}
	units.CheckPositive("Iccmax", p.Iccmax)
	if p.LightSwitchDiv < 1 {
		panic("vr: LightSwitchDiv must be >= 1")
	}
	units.CheckFraction("EtaFloor", p.EtaFloor)
}

// Buck is a step-down switching voltage regulator (SVR). The same model
// serves motherboard VRs and integrated VRs (IVRs); they differ only in
// parameters (IVRs have smaller fixed losses but higher series resistance
// from air-core inductors and on-die routing).
type Buck struct {
	name   string
	params BuckParams
}

// NewBuck constructs a switching VR with the given parameters.
func NewBuck(name string, p BuckParams) *Buck {
	p.validate()
	return &Buck{name: name, params: p}
}

// Name implements Regulator.
func (b *Buck) Name() string { return b.name }

// MaxCurrent implements Regulator.
func (b *Buck) MaxCurrent() units.Amp { return b.params.Iccmax }

// Params returns the loss-model parameters (a copy).
func (b *Buck) Params() BuckParams { return b.params }

// phases returns the number of active phases for a load current under the
// phase-shedding policy: enough phases to keep per-phase current at or below
// PhaseCurrent, capped at MaxPhases. Light-load power states force a single
// phase.
func (b *Buck) phases(iout units.Amp, ps PowerState) int {
	if ps >= PS1 {
		return 1
	}
	n := int(math.Ceil(iout / b.params.PhaseCurrent))
	if n < 1 {
		n = 1
	}
	if n > b.params.MaxPhases {
		n = b.params.MaxPhases
	}
	return n
}

// Loss returns the total conversion loss in watts at the operating point.
func (b *Buck) Loss(op OperatingPoint) units.Watt { return b.loss(&op) }

// loss is the pointer-argument form Efficiency uses on the hot path (one
// OperatingPoint copy per call adds up across millions of evaluations).
func (b *Buck) loss(op *OperatingPoint) units.Watt {
	p := b.params
	var fixed, sw units.Watt
	if op.State >= PS1 {
		fixed = p.PControlLight
		sw = p.KSwitch * op.Vin * op.Vin / p.LightSwitchDiv
		// Deeper states duty-cycle the regulator further.
		if op.State >= PS3 {
			sw /= 4
			fixed /= 2
		}
	} else {
		fixed = p.PControl
		sw = p.KSwitch * op.Vin * op.Vin
	}
	n := b.phases(op.Iout, op.State)
	rEff := p.RSeries / float64(n)
	ovl := p.KOverlap * op.Vin * op.Iout
	duty := 0.0
	if op.Vin > 0 {
		duty = units.Clamp(op.Vout/op.Vin, 0, 1)
	}
	dt := p.VDeadTime * (1 - duty) * op.Iout
	drv := p.KDriver * op.Iout
	cond := rEff * op.Iout * op.Iout
	// Headroom penalty: a buck cannot regulate with the output close to
	// the input (§2.2: SVRs "require a large difference in the
	// input/output voltage levels"). Past ~85% duty the minimum off-time
	// forces cycle skipping and the conversion degrades sharply.
	var head units.Watt
	if duty > maxBuckDuty {
		head = headroomLossK * op.Vout * op.Iout * (duty - maxBuckDuty) / (1 - maxBuckDuty)
	}
	return fixed + sw + ovl + dt + drv + cond + head
}

// Buck headroom constants: regulation degrades beyond 85% duty cycle, with
// the penalty reaching headroomLossK of the output power at 100% duty.
const (
	maxBuckDuty   = 0.85
	headroomLossK = 0.25
)

// Efficiency implements Regulator. It returns Pout/(Pout+Ploss) bounded
// below by EtaFloor.
func (b *Buck) Efficiency(op OperatingPoint) float64 {
	if op.Iout <= 0 {
		return b.params.EtaFloor
	}
	pout := op.Vout * op.Iout
	eta := pout / (pout + b.loss(&op))
	if eta < b.params.EtaFloor {
		eta = b.params.EtaFloor
	}
	return eta
}

// LDOParams parameterizes the low-dropout linear regulator model.
type LDOParams struct {
	// CurrentEfficiency is Iout/Iin, typically ≈ 0.991 for modern LDOs
	// (paper Table 2: (Vout/Vin)·99.1 %).
	CurrentEfficiency float64
	// BypassEfficiency applies in bypass mode, where the input is shorted
	// to the output through the power switch; only its tiny series drop is
	// paid. Typically ≈ 0.999.
	BypassEfficiency float64
	// DropoutVoltage is the minimum Vin-Vout headroom in regulation mode.
	DropoutVoltage units.Volt
	// Iccmax is the electrical design limit.
	Iccmax units.Amp
}

func (p LDOParams) validate() {
	units.CheckFraction("CurrentEfficiency", p.CurrentEfficiency)
	units.CheckFraction("BypassEfficiency", p.BypassEfficiency)
	units.CheckNonNegative("DropoutVoltage", p.DropoutVoltage)
	units.CheckPositive("Iccmax", p.Iccmax)
}

// LDO is a low-dropout linear regulator. Its efficiency is the voltage
// ratio times the current efficiency (paper §2.2/§3.1, Eq. 10). An LDO can
// also operate in bypass mode (input connected straight to output) and as a
// power gate when its domain idles.
type LDO struct {
	name   string
	params LDOParams
}

// NewLDO constructs an LDO VR.
func NewLDO(name string, p LDOParams) *LDO {
	p.validate()
	return &LDO{name: name, params: p}
}

// Name implements Regulator.
func (l *LDO) Name() string { return l.name }

// MaxCurrent implements Regulator.
func (l *LDO) MaxCurrent() units.Amp { return l.params.Iccmax }

// Params returns the model parameters (a copy).
func (l *LDO) Params() LDOParams { return l.params }

// Efficiency implements Regulator: η = (Vout/Vin)·Ie in regulation mode.
// When Vout is within the dropout voltage of Vin the regulator behaves as in
// bypass and returns BypassEfficiency (the paper's AMD-style LDO PDN runs
// the highest-voltage domain in bypass, §2.3).
func (l *LDO) Efficiency(op OperatingPoint) float64 {
	if op.Vin <= 0 || op.Vout <= 0 {
		return l.params.BypassEfficiency
	}
	if op.Vout >= op.Vin-l.params.DropoutVoltage {
		return l.params.BypassEfficiency
	}
	return op.Vout / op.Vin * l.params.CurrentEfficiency
}

// PowerGate models the on-chip switch that disconnects an idle domain. When
// conducting it contributes a series impedance (1–2 mΩ per Table 2) that the
// guardband model turns into extra supply voltage; this type only carries
// the impedance and design limit.
type PowerGate struct {
	name      string
	impedance units.Ohm
	iccmax    units.Amp
}

// NewPowerGate constructs a power gate with the given series impedance.
func NewPowerGate(name string, impedance units.Ohm, iccmax units.Amp) *PowerGate {
	units.CheckPositive("impedance", impedance)
	units.CheckPositive("iccmax", iccmax)
	return &PowerGate{name: name, impedance: impedance, iccmax: iccmax}
}

// Name returns the gate's name.
func (g *PowerGate) Name() string { return g.name }

// Impedance returns the series resistance of the conducting gate.
func (g *PowerGate) Impedance() units.Ohm { return g.impedance }

// MaxCurrent returns the gate's design limit.
func (g *PowerGate) MaxCurrent() units.Amp { return g.iccmax }

// Drop returns the voltage drop across the conducting gate at the given
// current.
func (g *PowerGate) Drop(i units.Amp) units.Volt { return g.impedance * i }
