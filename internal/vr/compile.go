package vr

import (
	"math"

	"repro/internal/units"
)

// This file implements compiled buck operating points: the per-(Vin, power
// state) invariants of the loss model hoisted out of the per-evaluation
// call. On a grid sweep the input voltage and the candidate power states of
// a rail are fixed while Vout/Iout vary per point, so the fixed controller
// loss, the Vin²-scaled switching loss and the KOverlap·Vin prefix can be
// computed once per grid instead of once per point — and the BuckParams
// struct copy that dominates the scalar path's profile disappears entirely.
//
// Bitwise contract: BuckOp.Efficiency returns the exact float64 bits of
// Buck.Efficiency at the same operating point. Every hoisted term is a
// prefix of the original left-associative expression — (KOverlap·Vin)·Iout
// is the same operation sequence as KOverlap·Vin·Iout — and every term that
// is not a pure prefix (the duty-cycle division, the dead-time product)
// stays per-call in the original order. compile_test.go pins the equality
// exhaustively across states, voltages and currents.

// BuckOp is a Buck's loss model compiled for one (Vin, PowerState) pair.
// The zero value is not meaningful; obtain one from Buck.Compile.
type BuckOp struct {
	fixed    units.Watt // controller loss at this state
	sw       units.Watt // switching loss at this Vin and state
	kovlVin  float64    // KOverlap·Vin (overlap-loss prefix)
	vin      units.Volt
	vdt      units.Volt
	kdrv     float64
	rser     units.Ohm
	phaseCur units.Amp
	maxPh    int
	etaFloor float64
	light    bool // state >= PS1: single phase forced
}

// Compile hoists the (vin, ps)-dependent terms of the loss model. The
// arithmetic mirrors Buck.loss term by term so the compiled constants carry
// the same float64 bits the scalar path computes per call.
func (b *Buck) Compile(vin units.Volt, ps PowerState) BuckOp {
	p := b.params
	var fixed, sw units.Watt
	if ps >= PS1 {
		fixed = p.PControlLight
		sw = p.KSwitch * vin * vin / p.LightSwitchDiv
		if ps >= PS3 {
			sw /= 4
			fixed /= 2
		}
	} else {
		fixed = p.PControl
		sw = p.KSwitch * vin * vin
	}
	return BuckOp{
		fixed:    fixed,
		sw:       sw,
		kovlVin:  p.KOverlap * vin,
		vin:      vin,
		vdt:      p.VDeadTime,
		kdrv:     p.KDriver,
		rser:     p.RSeries,
		phaseCur: p.PhaseCurrent,
		maxPh:    p.MaxPhases,
		etaFloor: p.EtaFloor,
		light:    ps >= PS1,
	}
}

// loss mirrors Buck.loss with the compiled constants substituted.
func (o *BuckOp) loss(vout units.Volt, iout units.Amp) units.Watt {
	n := 1
	if !o.light {
		n = int(math.Ceil(iout / o.phaseCur))
		if n < 1 {
			n = 1
		}
		if n > o.maxPh {
			n = o.maxPh
		}
	}
	rEff := o.rser / float64(n)
	ovl := o.kovlVin * iout
	duty := 0.0
	if o.vin > 0 {
		duty = units.Clamp(vout/o.vin, 0, 1)
	}
	dt := o.vdt * (1 - duty) * iout
	drv := o.kdrv * iout
	cond := rEff * iout * iout
	var head units.Watt
	if duty > maxBuckDuty {
		head = headroomLossK * vout * iout * (duty - maxBuckDuty) / (1 - maxBuckDuty)
	}
	return o.fixed + o.sw + ovl + dt + drv + cond + head
}

// Efficiency returns exactly Buck.Efficiency(OperatingPoint{Vin, Vout,
// Iout, State}) for the compiled (Vin, State), bit for bit.
func (o *BuckOp) Efficiency(vout units.Volt, iout units.Amp) float64 {
	if iout <= 0 {
		return o.etaFloor
	}
	pout := vout * iout
	eta := pout / (pout + o.loss(vout, iout))
	if eta < o.etaFloor {
		eta = o.etaFloor
	}
	return eta
}

// BuckStates holds one compiled operating point per modeled power state
// (PS0–PS4) at a fixed Vin, so grid kernels can select by the per-point
// VR state without recompiling.
type BuckStates struct {
	ops [PS4 + 1]BuckOp
}

// CompileStates compiles the buck at vin for every power state.
func (b *Buck) CompileStates(vin units.Volt) BuckStates {
	var s BuckStates
	for ps := PS0; ps <= PS4; ps++ {
		s.ops[ps] = b.Compile(vin, ps)
	}
	return s
}

// Efficiency evaluates the compiled operating point for ps.
func (s *BuckStates) Efficiency(ps PowerState, vout units.Volt, iout units.Amp) float64 {
	return s.ops[ps].Efficiency(vout, iout)
}
