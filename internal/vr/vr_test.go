package vr

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func testBuck() *Buck { return NewVinVR(45) }

func TestBuckEfficiencyBounds(t *testing.T) {
	b := testBuck()
	for _, vin := range []float64{7.2, 12} {
		for _, vout := range []float64{0.6, 0.7, 1.0, 1.8} {
			for i := 0.05; i <= 30; i *= 1.5 {
				for _, ps := range []PowerState{PS0, PS1, PS3, PS4} {
					eta := b.Efficiency(OperatingPoint{Vin: vin, Vout: vout, Iout: i, State: ps})
					if !(eta > 0 && eta <= 1) {
						t.Fatalf("eta(%g,%g,%g,%v) = %g outside (0,1]", vin, vout, i, ps, eta)
					}
				}
			}
		}
	}
}

func TestBuckLightLoadStates(t *testing.T) {
	b := testBuck()
	// At light load, PS1 must beat PS0 (that is its purpose), and deeper
	// states must not be worse than PS1.
	op := OperatingPoint{Vin: 7.2, Vout: 1.0, Iout: 0.2}
	op.State = PS0
	e0 := b.Efficiency(op)
	op.State = PS1
	e1 := b.Efficiency(op)
	op.State = PS3
	e3 := b.Efficiency(op)
	if !(e1 > e0) {
		t.Errorf("PS1 (%.3f) should beat PS0 (%.3f) at light load", e1, e0)
	}
	if !(e3 >= e1) {
		t.Errorf("PS3 (%.3f) should be >= PS1 (%.3f) at light load", e3, e1)
	}
}

func TestBuckHeavyLoadPrefersPS0(t *testing.T) {
	b := testBuck()
	op := OperatingPoint{Vin: 7.2, Vout: 1.0, Iout: 12}
	op.State = PS0
	e0 := b.Efficiency(op)
	op.State = PS1
	e1 := b.Efficiency(op)
	if !(e0 > e1) {
		t.Errorf("PS0 (%.3f) should beat PS1 (%.3f) at heavy load (single phase hurts)", e0, e1)
	}
}

func TestBuckTwoStageAdvantageAtHighPower(t *testing.T) {
	// The architectural claim behind the IVR PDN: delivering ~27 W to a
	// ~1.1 V domain via 7.2→1.8 V plus an on-die 1.8→1.1 V stage beats the
	// single 7.2→1.1 V conversion at high current.
	board := testBuck()
	ivr := NewIVR("ivr", 45)
	const pout = 27.0
	direct := board.Efficiency(OperatingPoint{Vin: 7.2, Vout: 1.1, Iout: pout / 1.1, State: PS0})
	stage2 := ivr.Efficiency(OperatingPoint{Vin: 1.8, Vout: 1.1, Iout: pout / 1.1, State: PS0})
	stage1 := board.Efficiency(OperatingPoint{Vin: 7.2, Vout: 1.8, Iout: pout / stage2 / 1.8, State: PS0})
	if !(stage1*stage2 > direct) {
		t.Errorf("two-stage %.3f*%.3f=%.3f should beat direct %.3f at %gW",
			stage1, stage2, stage1*stage2, direct, pout)
	}
	// And the opposite at light load: single stage wins.
	const plight = 2.0
	directL := board.Efficiency(OperatingPoint{Vin: 7.2, Vout: 0.6, Iout: plight / 0.6, State: PS0})
	stage2L := ivr.Efficiency(OperatingPoint{Vin: 1.8, Vout: 0.6, Iout: plight / 0.6, State: PS0})
	stage1L := board.Efficiency(OperatingPoint{Vin: 7.2, Vout: 1.8, Iout: plight / stage2L / 1.8, State: PS0})
	if !(directL > stage1L*stage2L) {
		t.Errorf("direct %.3f should beat two-stage %.3f at %gW",
			directL, stage1L*stage2L, plight)
	}
}

func TestOffChipRangeMatchesTable2(t *testing.T) {
	// Table 2: off-chip VR efficiency 72-93% over the evaluation's
	// operating points (auto power-state selection, 0.5-10 A, the rail
	// voltages the platform uses).
	b := testBuck()
	lo, hi := 1.0, 0.0
	for _, vout := range []float64{0.6, 0.85, 1.05, 1.8} {
		for i := 0.5; i <= 10; i *= 1.3 {
			eta := b.Efficiency(OperatingPoint{Vin: 7.2, Vout: vout, Iout: i, State: AutoState(i)})
			lo = math.Min(lo, eta)
			hi = math.Max(hi, eta)
		}
	}
	if lo < 0.62 || hi > 0.95 {
		t.Errorf("off-chip efficiency range [%.1f%%, %.1f%%] strays too far from Table 2's 72-93%%",
			lo*100, hi*100)
	}
}

func TestIVRRangeMatchesTable2(t *testing.T) {
	// Table 2: IVR efficiency 81-88% over its typical load range (we allow
	// a slightly wider modeled envelope).
	ivr := NewIVR("ivr", 45)
	lo, hi := 1.0, 0.0
	for _, vout := range []float64{0.6, 0.8, 1.0, 1.1} {
		for i := 2.0; i <= 25; i *= 1.4 {
			eta := ivr.Efficiency(OperatingPoint{Vin: 1.8, Vout: vout, Iout: i, State: PS0})
			lo = math.Min(lo, eta)
			hi = math.Max(hi, eta)
		}
	}
	// The modeled envelope is a little wider than the paper's measured
	// range (their DFT-mode measurement covers fewer corners).
	if lo < 0.70 || hi > 0.92 {
		t.Errorf("IVR efficiency range [%.1f%%, %.1f%%] strays too far from Table 2's 81-88%%",
			lo*100, hi*100)
	}
}

func TestLDOEfficiency(t *testing.T) {
	l := NewPlatformLDO("ldo", 45)
	// Regulation mode: eta = Vout/Vin * 0.991 (Table 2).
	got := l.Efficiency(OperatingPoint{Vin: 1.0, Vout: 0.5})
	want := 0.5 * 0.991
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("regulation eta = %g, want %g", got, want)
	}
	// Bypass: Vout within dropout of Vin.
	if got := l.Efficiency(OperatingPoint{Vin: 0.9, Vout: 0.9}); got != 0.999 {
		t.Errorf("bypass eta = %g, want 0.999", got)
	}
	if got := l.Efficiency(OperatingPoint{Vin: 0.9, Vout: 0.89}); got != 0.999 {
		t.Errorf("within-dropout eta = %g, want bypass 0.999", got)
	}
	// Degenerate voltages fall back to bypass behaviour.
	if got := l.Efficiency(OperatingPoint{Vin: 0, Vout: 0.5}); got != 0.999 {
		t.Errorf("zero-Vin eta = %g", got)
	}
}

func TestLDOEfficiencyProperty(t *testing.T) {
	l := NewPlatformLDO("ldo", 45)
	f := func(vinRaw, voutRaw float64) bool {
		vin := 0.5 + math.Mod(math.Abs(vinRaw), 1.5)
		vout := 0.3 + math.Mod(math.Abs(voutRaw), vin)
		eta := l.Efficiency(OperatingPoint{Vin: vin, Vout: vout})
		return eta > 0 && eta <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowerGate(t *testing.T) {
	g := NewPowerGate("pg", units.MilliOhm(1.5), 40)
	if got := g.Drop(10); math.Abs(got-0.015) > 1e-12 {
		t.Errorf("Drop(10A) = %g, want 15mV", got)
	}
	if g.Impedance() != 0.0015 || g.MaxCurrent() != 40 || g.Name() != "pg" {
		t.Error("accessor mismatch")
	}
}

func TestInputPower(t *testing.T) {
	b := testBuck()
	if got := InputPower(b, 7.2, 1.0, 0, PS0); got != 0 {
		t.Errorf("zero output power should draw zero, got %g", got)
	}
	pin := InputPower(b, 7.2, 1.0, 10, PS0)
	if !(pin > 10) {
		t.Errorf("input power %g must exceed output 10", pin)
	}
}

func TestEfficiencyCurveShape(t *testing.T) {
	b := testBuck()
	c := EfficiencyCurve(b, 7.2, 1.0, PS0, 0.1, 10, 25)
	// The PS0 curve must rise from light load toward its peak.
	if !(c.At(0.1) < c.At(3)) {
		t.Errorf("PS0 curve should rise from light load: %.3f !< %.3f", c.At(0.1), c.At(3))
	}
	if lo, hi := c.Domain(); lo != 0.1 || math.Abs(hi-10) > 1e-9 {
		t.Errorf("domain [%g, %g]", lo, hi)
	}
}

func TestBuckEfficiencyMonotoneBelowPeak(t *testing.T) {
	// Property: at fixed voltages/state, efficiency is unimodal — it rises
	// up to the curve's peak. Check the rising part with random pairs.
	b := testBuck()
	c := EfficiencyCurve(b, 7.2, 1.8, PS0, 0.05, 40, 200)
	peak := c.ArgMax()
	f := func(aRaw, bRaw float64) bool {
		x := 0.05 + math.Mod(math.Abs(aRaw), peak-0.05)
		y := 0.05 + math.Mod(math.Abs(bRaw), peak-0.05)
		if x > y {
			x, y = y, x
		}
		// Phase-shedding boundaries cause small local dips just before a
		// phase engages; the rise must hold within that tolerance.
		return c.At(x) <= c.At(y)+0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuckParamValidation(t *testing.T) {
	mustPanic := func(name string, p BuckParams) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		NewBuck("bad", p)
	}
	good := testBuck().Params()
	bad := good
	bad.MaxPhases = 0
	mustPanic("MaxPhases=0", bad)
	bad = good
	bad.PhaseCurrent = 0
	mustPanic("PhaseCurrent=0", bad)
	bad = good
	bad.Iccmax = 0
	mustPanic("Iccmax=0", bad)
	bad = good
	bad.LightSwitchDiv = 0.5
	mustPanic("LightSwitchDiv<1", bad)
	bad = good
	bad.EtaFloor = 2
	mustPanic("EtaFloor>1", bad)
}

func TestPowerStateString(t *testing.T) {
	if PS0.String() != "PS0" || PS4.String() != "PS4" {
		t.Error("PowerState.String mismatch")
	}
	if !PS1.Valid() || PowerState(9).Valid() {
		t.Error("Valid mismatch")
	}
}

func TestAutoState(t *testing.T) {
	if AutoState(0.5) != PS1 {
		t.Error("light load should select PS1")
	}
	if AutoState(5) != PS0 {
		t.Error("heavy load should select PS0")
	}
}
