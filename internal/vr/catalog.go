package vr

import (
	"repro/internal/curves"
	"repro/internal/units"
)

// This file instantiates the concrete regulators of the modeled platform
// (paper Fig 1 and Table 2). Parameters are calibrated so the generated
// efficiency curves land in the published ranges:
//
//   - off-chip VRs: 72–93 % over the evaluation's operating points (Fig 3
//     additionally shows light-load PS0 points down to ~50 %),
//   - IVR: 81–88 % over its typical load range,
//   - LDO: (Vout/Vin)·99.1 %.
//
// Tests in catalog_test.go pin these ranges.

// NewVinVR returns the first-stage motherboard VR (V_IN in Fig 1(a,c)) that
// converts battery/PSU voltage (7.2–20 V) down to the chip input rail. In
// the IVR PDN it produces 1.8 V; in the LDO PDN and FlexWatts' LDO-Mode it
// produces the maximum domain voltage (0.6–1.1 V).
func NewVinVR(iccmax units.Amp) *Buck {
	return NewBuck("V_IN", BuckParams{
		PControl:       0.050,
		PControlLight:  0.010,
		KSwitch:        0.0020,
		LightSwitchDiv: 8,
		KOverlap:       0.008,
		VDeadTime:      units.MilliVolt(50),
		KDriver:        0.002,
		RSeries:        units.MilliOhm(21),
		PhaseCurrent:   4,
		MaxPhases:      2,
		Iccmax:         iccmax,
		EtaFloor:       0.05,
	})
}

// NewBoardVR returns a one-stage motherboard VR that feeds a processor
// domain directly at core voltage (V_Cores, V_GFX in the MBVR PDN of
// Fig 1(b)). Electrically it is the same class of part as V_IN.
func NewBoardVR(name string, iccmax units.Amp) *Buck {
	return NewBuck(name, BuckParams{
		PControl:       0.050,
		PControlLight:  0.010,
		KSwitch:        0.0020,
		LightSwitchDiv: 8,
		KOverlap:       0.008,
		VDeadTime:      units.MilliVolt(50),
		KDriver:        0.002,
		RSeries:        units.MilliOhm(21),
		PhaseCurrent:   4,
		MaxPhases:      2,
		Iccmax:         iccmax,
		EtaFloor:       0.05,
	})
}

// NewSmallRailVR returns a low-current motherboard VR for the SA and IO
// domains, whose power is low and narrow across TDPs (paper §6: "it is more
// energy-efficient to place each of them on a dedicated off-chip VR").
// Smaller switches mean lower fixed losses, so these rails are efficient at
// their sub-ampere typical loads.
func NewSmallRailVR(name string, iccmax units.Amp) *Buck {
	return NewBuck(name, BuckParams{
		PControl:       0.015,
		PControlLight:  0.004,
		KSwitch:        0.0008,
		LightSwitchDiv: 8,
		KOverlap:       0.008,
		VDeadTime:      units.MilliVolt(50),
		KDriver:        0.002,
		RSeries:        units.MilliOhm(25),
		PhaseCurrent:   4,
		MaxPhases:      2,
		Iccmax:         iccmax,
		EtaFloor:       0.05,
	})
}

// NewIVR returns an integrated (on-die) switching VR, the second stage of
// the IVR PDN (Fig 1(a)). Compared to board VRs it has small fixed losses
// but pays higher conduction loss through air-core inductors and on-die
// metal, and its switching loss coefficient is larger relative to its low
// 1.8 V input.
func NewIVR(name string, iccmax units.Amp) *Buck {
	return NewBuck(name, BuckParams{
		PControl:       0.090,
		PControlLight:  0.008,
		KSwitch:        0.030,
		LightSwitchDiv: 8,
		KOverlap:       0.030,
		VDeadTime:      units.MilliVolt(120),
		KDriver:        0.002,
		RSeries:        units.MilliOhm(6),
		PhaseCurrent:   3,
		MaxPhases:      10,
		Iccmax:         iccmax,
		EtaFloor:       0.05,
	})
}

// NewPlatformLDO returns the on-chip LDO VR used by the LDO PDN and by
// FlexWatts' LDO-Mode, with the paper's 99.1 % current efficiency.
func NewPlatformLDO(name string, iccmax units.Amp) *LDO {
	return NewLDO(name, LDOParams{
		CurrentEfficiency: 0.991,
		BypassEfficiency:  0.999,
		DropoutVoltage:    units.MilliVolt(20),
		Iccmax:            iccmax,
	})
}

// AutoState returns the power state a real VR's light-load controller would
// select for the given load current: heavy loads run PS0, light loads PS1.
// The threshold is where the PS0 and PS1 curves cross (around 1 A for the
// modeled parts, consistent with Fig 3).
func AutoState(iout units.Amp) PowerState {
	if iout < 1.0 {
		return PS1
	}
	return PS0
}

// EfficiencyCurve samples a regulator's efficiency over a log-spaced load
// current range at fixed voltages and power state, producing the curves of
// Fig 3. The returned table maps Iout → η.
func EfficiencyCurve(r Regulator, vin, vout units.Volt, ps PowerState, iMin, iMax units.Amp, n int) *curves.Table1D {
	return curves.FromFuncLog(iMin, iMax, n, func(i float64) float64 {
		return r.Efficiency(OperatingPoint{Vin: vin, Vout: vout, Iout: i, State: ps})
	})
}
