package vr

import (
	"testing"

	"repro/internal/units"
)

// These tests pin the calibration promises made in catalog.go for each
// concrete part.

func TestVinVRNamedCorrectly(t *testing.T) {
	if got := NewVinVR(45).Name(); got != "V_IN" {
		t.Errorf("name %q", got)
	}
	if got := NewBoardVR("V_Cores", 60).Name(); got != "V_Cores" {
		t.Errorf("name %q", got)
	}
}

func TestSmallRailEfficientAtLightLoad(t *testing.T) {
	// The SA/IO rails exist because they are efficient at sub-ampere
	// loads where a big board VR would waste its fixed losses.
	small := NewSmallRailVR("V_SA", 6)
	big := NewBoardVR("V_Cores", 60)
	op := OperatingPoint{Vin: 7.2, Vout: 0.85, Iout: 0.9, State: PS0}
	if !(small.Efficiency(op) > big.Efficiency(op)) {
		t.Errorf("small rail %.3f should beat big rail %.3f at 0.9A",
			small.Efficiency(op), big.Efficiency(op))
	}
}

func TestIVRLowFixedLossShare(t *testing.T) {
	// The IVR's fixed losses matter at light load: at 0.5A its efficiency
	// must still be usable in PS1 (the C0MIN regime).
	ivr := NewIVR("ivr", 45)
	eta := ivr.Efficiency(OperatingPoint{Vin: 1.8, Vout: 0.6, Iout: 0.5, State: PS1})
	if eta < 0.55 {
		t.Errorf("IVR PS1 light-load efficiency %.3f too low", eta)
	}
}

func TestLDOBetterThanIVRNearUnityRatio(t *testing.T) {
	// §2.2: an LDO beats an SVR when input and output voltages are close.
	ldo := NewPlatformLDO("ldo", 45)
	ivr := NewIVR("ivr", 45)
	op := OperatingPoint{Vin: 1.0, Vout: 0.9, Iout: 10, State: PS0}
	if !(ldo.Efficiency(op) > ivr.Efficiency(op)) {
		t.Errorf("LDO %.3f should beat IVR %.3f at 1.0V->0.9V",
			ldo.Efficiency(op), ivr.Efficiency(op))
	}
	// ...and loses badly on a large ratio.
	opBig := OperatingPoint{Vin: 1.0, Vout: 0.5, Iout: 10, State: PS0}
	if !(ivr.Efficiency(opBig) > ldo.Efficiency(opBig)) {
		t.Errorf("IVR %.3f should beat LDO %.3f at 1.0V->0.5V",
			ivr.Efficiency(opBig), ldo.Efficiency(opBig))
	}
}

func TestVoutOrderingAtModerateLoad(t *testing.T) {
	// Fig 3: at a given current, higher output voltage converts more
	// efficiently (same loss amortized over more power).
	b := NewVinVR(45)
	prev := 0.0
	for _, vout := range []units.Volt{0.6, 0.7, 1.0, 1.8} {
		eta := b.Efficiency(OperatingPoint{Vin: 7.2, Vout: vout, Iout: 3, State: PS0})
		if eta <= prev {
			t.Errorf("Vout %.1f: eta %.3f not above lower-voltage curve", vout, eta)
		}
		prev = eta
	}
}

func TestIccmaxPropagates(t *testing.T) {
	if NewVinVR(45).MaxCurrent() != 45 {
		t.Error("VIN Iccmax")
	}
	if NewSmallRailVR("x", 6).MaxCurrent() != 6 {
		t.Error("small rail Iccmax")
	}
	if NewPlatformLDO("x", 40).MaxCurrent() != 40 {
		t.Error("LDO Iccmax")
	}
}
