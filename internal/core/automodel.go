package core

import (
	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/units"
	"repro/internal/workload"
)

// AutoModel is FlexWatts with Algorithm 1 in the loop: every evaluation
// estimates the predictor inputs from the scenario the way the PMU does at
// runtime (§6, "Runtime Estimation of the Algorithm Inputs") and evaluates
// the hybrid PDN in the predicted mode. It implements pdn.Model, so the
// experiment drivers treat it exactly like the static baselines.
type AutoModel struct {
	M *Model
	P *Predictor
	// TDP is the platform's configured thermal design power, which the PMU
	// knows at runtime (cTDP is software-visible, §6).
	TDP units.Watt
}

// NewAutoModel wires a FlexWatts model to its predictor at a TDP.
func NewAutoModel(m *Model, p *Predictor, tdp units.Watt) *AutoModel {
	return &AutoModel{M: m, P: p, TDP: tdp}
}

// Kind implements pdn.Model.
func (a *AutoModel) Kind() pdn.Kind { return pdn.FlexWatts }

// Evaluate implements pdn.Model: predict the mode, then evaluate it.
func (a *AutoModel) Evaluate(s pdn.Scenario) (pdn.Result, error) {
	in := InputsFromScenario(s, a.TDP)
	mode := a.P.Predict(in)
	a.M.SetMode(mode)
	return a.M.EvaluateMode(s, mode)
}

// InputsFromScenario estimates Algorithm 1's inputs from a scenario the way
// the PMU does (§6): the workload type comes from which domains are
// powered (graphics active → graphics workload; both cores → multi-threaded),
// and the AR proxy is the power-weighted application ratio of the active
// compute domains, standing in for the calibrated activity-sensor sum.
func InputsFromScenario(s pdn.Scenario, tdp units.Watt) Inputs {
	in := Inputs{TDP: tdp, CState: s.CState, Type: workload.SingleThread, AR: 0.5}
	if !s.CState.ComputeActive() {
		return in
	}
	if s.LoadFor(domain.GFX).Active() {
		in.Type = workload.Graphics
	} else if s.LoadFor(domain.Core1).Active() {
		in.Type = workload.MultiThread
	}
	var p, ppeak units.Watt
	for _, k := range domain.ComputeKinds() {
		l := s.LoadFor(k)
		if !l.Active() {
			continue
		}
		p += l.PNom
		ppeak += l.PNom / l.AR
	}
	if ppeak > 0 {
		in.AR = p / ppeak
	}
	return in
}
