package core

import (
	"math"
	"testing"

	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/units"
	"repro/internal/workload"
)

func testSetup(t *testing.T) (*domain.Platform, *Model, *Predictor) {
	t.Helper()
	plat := domain.NewClientPlatform()
	m := NewModel(pdn.DefaultParams())
	pred, err := NewPredictor(plat, m, DefaultPredictorConfig())
	if err != nil {
		t.Fatal(err)
	}
	return plat, m, pred
}

func TestModesDiffer(t *testing.T) {
	plat, m, _ := testSetup(t)
	// At 4W LDO-Mode must win; at 50W MT IVR-Mode must win.
	s4, err := workload.TDPScenario(plat, 4, workload.MultiThread, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := m.EvaluateMode(s4, IVRMode)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := m.EvaluateMode(s4, LDOMode)
	if err != nil {
		t.Fatal(err)
	}
	if !(rl.ETEE > ri.ETEE) {
		t.Errorf("4W: LDO-Mode %.3f should beat IVR-Mode %.3f", rl.ETEE, ri.ETEE)
	}
	s50, _ := workload.TDPScenario(plat, 50, workload.MultiThread, 0.6)
	ri, _ = m.EvaluateMode(s50, IVRMode)
	rl, _ = m.EvaluateMode(s50, LDOMode)
	if !(ri.ETEE > rl.ETEE) {
		t.Errorf("50W: IVR-Mode %.3f should beat LDO-Mode %.3f", ri.ETEE, rl.ETEE)
	}
}

func TestPredictorMatchesOracle(t *testing.T) {
	// Algorithm 1's table lookup must agree with brute-force best-mode
	// evaluation on nearly the whole (type, TDP, AR) grid; table
	// interpolation may flip near-crossover points where both modes are
	// within a whisker.
	plat, m, pred := testSetup(t)
	total, agree, disagreeCost := 0, 0, 0.0
	for _, wt := range workload.Types() {
		for tdp := 4.0; tdp <= 50; tdp += 3.5 {
			for ar := 0.3; ar <= 0.9; ar += 0.1 {
				s, err := workload.TDPScenario(plat, tdp, wt, ar)
				if err != nil {
					t.Fatal(err)
				}
				oracle, ri, rl, err := m.BestMode(s)
				if err != nil {
					t.Fatal(err)
				}
				got := pred.Predict(Inputs{TDP: tdp, AR: ar, Type: wt, CState: domain.C0})
				total++
				if got == oracle {
					agree++
				} else {
					disagreeCost += math.Abs(ri.ETEE - rl.ETEE)
				}
			}
		}
	}
	rate := float64(agree) / float64(total)
	if rate < 0.95 {
		t.Errorf("predictor agrees with oracle on %.1f%% of grid, want >= 95%%", rate*100)
	}
	if total-agree > 0 {
		avgCost := disagreeCost / float64(total-agree)
		if avgCost > 0.01 {
			t.Errorf("mispredictions cost %.2f%% ETEE on average, want < 1%%", avgCost*100)
		}
	}
}

func TestPredictorIdleStates(t *testing.T) {
	// Battery-life states run LDO-Mode (or tie): the IVR path pays its
	// two-stage losses even when idle.
	_, _, pred := testSetup(t)
	in := Inputs{CState: domain.C0MIN}
	if pred.ETEE(LDOMode, in) < pred.ETEE(IVRMode, in) {
		t.Error("C0MIN: LDO-Mode should not be worse than IVR-Mode")
	}
}

func TestFlexTracksBest(t *testing.T) {
	// §7.1: FlexWatts stays within ~1-2% of the best static PDN everywhere.
	plat, m, pred := testSetup(t)
	params := pdn.DefaultParams()
	statics := []pdn.Model{}
	for _, k := range pdn.Kinds() {
		sm, err := pdn.New(k, params)
		if err != nil {
			t.Fatal(err)
		}
		statics = append(statics, sm)
	}
	for _, wt := range workload.Types() {
		for _, tdp := range workload.StandardTDPs() {
			s, err := workload.TDPScenario(plat, tdp, wt, 0.6)
			if err != nil {
				t.Fatal(err)
			}
			best := 0.0
			for _, sm := range statics {
				r, err := sm.Evaluate(s)
				if err != nil {
					t.Fatal(err)
				}
				best = math.Max(best, r.ETEE)
			}
			mode := pred.Predict(Inputs{TDP: tdp, AR: 0.6, Type: wt, CState: domain.C0})
			r, err := m.EvaluateMode(s, mode)
			if err != nil {
				t.Fatal(err)
			}
			if r.ETEE < best-0.02 {
				t.Errorf("%v %gW: FlexWatts %.3f trails best static %.3f by > 2%%",
					wt, tdp, r.ETEE, best)
			}
		}
	}
}

func TestSwitchFlowLatency(t *testing.T) {
	f := DefaultSwitchFlow()
	// §6: 45 + 19 + 30 = 94 us.
	if !units.ApproxEqual(f.Latency(), units.MicroSecond(94), 1e-9) {
		t.Errorf("switch latency = %g, want 94us", f.Latency())
	}
	if f.Energy() <= 0 {
		t.Error("switch energy must be positive")
	}
}

func TestControllerHysteresis(t *testing.T) {
	_, _, pred := testSetup(t)
	ctrl := NewController(pred, DefaultSwitchFlow())
	// Inputs that want LDO-Mode at 4W.
	inLDO := Inputs{TDP: 4, AR: 0.6, Type: workload.MultiThread, CState: domain.C0}
	// Inputs that want IVR-Mode at 50W.
	inIVR := Inputs{TDP: 50, AR: 0.6, Type: workload.MultiThread, CState: domain.C0}

	mode, overhead, energy := ctrl.Step(0.01, inLDO)
	if mode != LDOMode || overhead <= 0 || energy <= 0 {
		t.Fatalf("first step should switch to LDO-Mode with overhead, got %v %g %g", mode, overhead, energy)
	}
	// Immediately asking for the other mode is blocked by MinResidency...
	mode, overhead, _ = ctrl.Step(0.001, inIVR)
	if mode != LDOMode || overhead != 0 {
		t.Fatalf("hysteresis should hold LDO-Mode, got %v overhead %g", mode, overhead)
	}
	// ...but allowed once the residency elapses.
	mode, overhead, _ = ctrl.Step(0.02, inIVR)
	if mode != IVRMode || overhead <= 0 {
		t.Fatalf("after residency should switch to IVR-Mode, got %v overhead %g", mode, overhead)
	}
	if ctrl.Switches() != 2 {
		t.Errorf("switch count = %d, want 2", ctrl.Switches())
	}
}

func TestAutoModelInference(t *testing.T) {
	plat, m, pred := testSetup(t)
	am := NewAutoModel(m, pred, 4)
	if am.Kind() != pdn.FlexWatts {
		t.Error("AutoModel kind")
	}
	// Graphics scenario must be classified as graphics.
	s, _ := workload.TDPScenario(plat, 18, workload.Graphics, 0.6)
	in := InputsFromScenario(s, 18)
	if in.Type != workload.Graphics {
		t.Errorf("graphics scenario classified as %v", in.Type)
	}
	// Two active cores without GFX is multi-threaded.
	s, _ = workload.TDPScenario(plat, 18, workload.MultiThread, 0.6)
	in = InputsFromScenario(s, 18)
	if in.Type != workload.MultiThread {
		t.Errorf("MT scenario classified as %v", in.Type)
	}
	if math.Abs(in.AR-0.6) > 0.05 {
		t.Errorf("AR estimate %.2f, want ~0.60", in.AR)
	}
	// One core is single-threaded.
	s, _ = workload.TDPScenario(plat, 18, workload.SingleThread, 0.6)
	in = InputsFromScenario(s, 18)
	if in.Type != workload.SingleThread {
		t.Errorf("ST scenario classified as %v", in.Type)
	}
	// AutoModel evaluation at 4W lands in LDO-Mode.
	s, _ = workload.TDPScenario(plat, 4, workload.MultiThread, 0.6)
	if _, err := am.Evaluate(s); err != nil {
		t.Fatal(err)
	}
	if am.M.Mode() != LDOMode {
		t.Errorf("4W auto evaluation left mode %v, want LDO-Mode", am.M.Mode())
	}
}

func TestEvaluateModeErrors(t *testing.T) {
	_, m, _ := testSetup(t)
	if _, err := m.EvaluateMode(pdn.NewScenario(), IVRMode); err == nil {
		t.Error("empty scenario accepted")
	}
	plat := domain.NewClientPlatform()
	s, _ := workload.TDPScenario(plat, 18, workload.MultiThread, 0.6)
	if _, err := m.EvaluateMode(s, Mode(9)); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestPredictorConfigValidation(t *testing.T) {
	plat, m, _ := testSetup(t)
	if _, err := NewPredictor(plat, m, PredictorConfig{TDPGrid: []units.Watt{4}, ARPoints: 9}); err == nil {
		t.Error("single TDP grid point accepted")
	}
	if _, err := NewPredictor(plat, m, PredictorConfig{TDPGrid: []units.Watt{4, 50}, ARPoints: 1}); err == nil {
		t.Error("single AR point accepted")
	}
}

func TestModeString(t *testing.T) {
	if IVRMode.String() != "IVR-Mode" || LDOMode.String() != "LDO-Mode" {
		t.Error("Mode.String mismatch")
	}
	if len(Modes()) != 2 {
		t.Error("Modes() size")
	}
}
