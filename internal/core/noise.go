package core

import (
	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/units"
)

// This file models the voltage-noise argument behind FlexWatts' C6-based
// mode-switch flow (§6, "Voltage Noise-Free Mode-Switching"). Switching the
// hybrid VR reconfigures the regulation topology and retargets the shared
// V_IN rail between very different levels (1.8 V in IVR-Mode versus the
// 0.6–1.1 V maximum compute voltage in LDO-Mode). During the reconfiguration
// window the hybrid VR cannot regulate, so an active domain's load current
// discharges the decoupling capacitance:
//
//	droop ≈ I_load · t_reconfigure / C_decap
//
// With amperes of load current this droop dwarfs the tolerance band — a
// voltage emergency. Parking the compute domains in package C6 first drops
// the load current to (nearly) zero, which is what makes the flow
// noise-free.

// NoiseParams characterizes the hybrid VR's switching transient.
type NoiseParams struct {
	// Reconfigure is the dead time while the hybrid VR changes topology
	// (§6 assumes ≤2 µs for on-chip VR retargeting).
	Reconfigure units.Second
	// Decap is the effective die+package decoupling capacitance per
	// compute domain rail.
	Decap float64 // farads
	// LeakCurrent is the residual current drawn by a C6-parked domain
	// (retention SRAM on the always-on rail is excluded; this is gate
	// leakage through the disabled power switches).
	LeakCurrent units.Amp
	// Tolerance is the voltage excursion budget (the VR tolerance band;
	// exceeding it is a voltage emergency).
	Tolerance units.Volt
}

// DefaultNoiseParams returns the modeled client-platform transient
// characteristics.
func DefaultNoiseParams() NoiseParams {
	return NoiseParams{
		Reconfigure: units.MicroSecond(2),
		Decap:       40e-6, // 40 µF die+package per compute rail
		LeakCurrent: 0.02,
		Tolerance:   units.MilliVolt(20),
	}
}

// SwitchNoise is the predicted worst-case supply excursion for one mode
// switch.
type SwitchNoise struct {
	// Excursion is the worst-case droop across compute domains.
	Excursion units.Volt
	// Emergency reports whether the excursion exceeds the tolerance band.
	Emergency bool
}

// ModeSwitchNoise predicts the supply droop if the hybrid PDN switched
// modes under the given scenario's load. With inC6 the compute domains are
// parked (the FlexWatts flow); without, the switch happens live — the
// naive alternative the paper's flow exists to avoid.
func ModeSwitchNoise(s pdn.Scenario, p NoiseParams, inC6 bool) SwitchNoise {
	var worst units.Amp
	for _, k := range domain.ComputeKinds() {
		l := s.LoadFor(k)
		if !l.Active() {
			continue
		}
		i := l.PNom / l.VNom
		if inC6 {
			i = p.LeakCurrent
		}
		if i > worst {
			worst = i
		}
	}
	if worst == 0 {
		worst = p.LeakCurrent
	}
	droop := worst * p.Reconfigure / p.Decap
	return SwitchNoise{
		Excursion: droop,
		Emergency: droop > p.Tolerance,
	}
}
