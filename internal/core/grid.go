package core

import (
	"fmt"

	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/units"
)

// Batch evaluation for the hybrid PDN, built from the same kernel runners
// as the baseline models (internal/pdn/grid.go) and carrying the same
// contract: for every point i, the result is bitwise identical to
// EvaluateMode(g.At(i), mode), and the first invalid point stops the run
// with the scalar error wrapped by its index.

// Kind sets in the scalar EvaluateMode's iteration order.
var (
	gridComputeKinds = []domain.Kind{domain.Core0, domain.Core1, domain.LLC, domain.GFX}
	gridSAKinds      = []domain.Kind{domain.SA}
	gridIOKinds      = []domain.Kind{domain.IO}
)

// EvaluateGrid evaluates every grid point into out[:g.Len()] using the
// currently configured mode, bitwise identical to per-point Evaluate.
func (m *Model) EvaluateGrid(g *pdn.Grid, out []pdn.Result) error {
	return m.EvaluateGridMode(g, out, m.Mode())
}

// EvaluateGridMode evaluates every grid point in the given hybrid mode,
// bitwise identical to per-point EvaluateMode: the compute stage runs with
// the hybrid VR compiled at its fixed input rail (IVR-Mode) or the
// state-free LDO model (LDO-Mode) behind a previous-point stage memo, and
// the SA/IO board rails behind whole-rail memos.
func (m *Model) EvaluateGridMode(g *pdn.Grid, out []pdn.Result, mode Mode) error {
	if err := pdn.CheckGridOut(g, out); err != nil {
		return err
	}
	p := m.params
	var ivrStage pdn.IVRStageRun
	var ldoStage pdn.LDOStageRun
	var rll units.Ohm
	switch mode {
	case IVRMode:
		ivrStage = pdn.NewIVRStageRun(m.ivr, gridComputeKinds, p.TOBIVR, p.VINLevel)
		rll = p.IVRInLL * p.FlexSharePenalty
	case LDOMode:
		ldoStage = pdn.NewLDOStageRun(m.ldo, gridComputeKinds, p.TOBLDO)
		rll = p.LDOInLL * p.FlexSharePenalty
	default:
		return fmt.Errorf("core: unknown mode %v", mode)
	}
	vinRail := pdn.NewVinRailRun(m.vin)
	sa := pdn.NewBoardRailRun(m.sa, gridSAKinds, p.TOBLDO, p.RPG, p.SALL, false)
	io := pdn.NewBoardRailRun(m.io, gridIOKinds, p.TOBLDO, p.RPG, p.IOLL, false)
	pdn.ClearResults(out[:g.Len()])
	var pt pdn.GridPointRun
	var st pdn.StageOut
	var masks [pdn.GridMaskBlock]uint16
	for base := 0; base < g.Len(); base += pdn.GridMaskBlock {
		blk := g.Len() - base
		if blk > pdn.GridMaskBlock {
			blk = pdn.GridMaskBlock
		}
		g.ChangeMasks(base, masks[:blk])
		for j := 0; j < blk; j++ {
			i := base + j
			mk := masks[j]
			if err := pt.Validate(g, i, mk); err != nil {
				return pdn.GridPointError(i, err)
			}
			var vinLevel units.Volt
			switch mode {
			case IVRMode:
				vinLevel = p.VINLevel
				ivrStage.EvalInto(&st, g, i, mk)
			case LDOMode:
				vinLevel = ldoStage.EvalInto(&st, g, i, mk)
			}
			res := &out[i]
			var pin units.Watt
			if st.PIn > 0 {
				res.Breakdown.AddFrom(&st.Breakdown)
				pin += vinRail.EvalInto(&st, vinLevel, rll, g.PSUAt(i), g.CStateAt(i), 1, &res.Breakdown, &res.Rails)
			}
			saP := sa.EvalInto(g, i, mk, &res.Breakdown, &res.Rails)
			ioP := io.EvalInto(g, i, mk, &res.Breakdown, &res.Rails)
			pin += saP + ioP
			pdn.FinishGrid(res, pdn.FlexWatts, pt.TotalNominal(), pin, rll)
		}
	}
	return nil
}
