package core

import (
	"testing"

	"repro/internal/domain"
	"repro/internal/workload"
)

func TestLiveSwitchCausesEmergency(t *testing.T) {
	// Switching modes while an 18W multi-threaded workload runs would
	// droop the compute rails far past the tolerance band — the reason
	// FlexWatts routes the switch through package C6.
	plat := domain.NewClientPlatform()
	s, err := workload.TDPScenario(plat, 18, workload.MultiThread, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultNoiseParams()

	live := ModeSwitchNoise(s, p, false)
	if !live.Emergency {
		t.Errorf("live switch at 18W should be a voltage emergency (droop %.1fmV vs TOB %.0fmV)",
			live.Excursion*1e3, p.Tolerance*1e3)
	}

	parked := ModeSwitchNoise(s, p, true)
	if parked.Emergency {
		t.Errorf("C6-parked switch should be noise-free, droop %.2fmV", parked.Excursion*1e3)
	}
	if !(parked.Excursion < live.Excursion/10) {
		t.Errorf("C6 should cut the excursion by orders of magnitude: %.3fmV vs %.1fmV",
			parked.Excursion*1e3, live.Excursion*1e3)
	}
}

func TestNoiseScalesWithLoad(t *testing.T) {
	plat := domain.NewClientPlatform()
	p := DefaultNoiseParams()
	s4, _ := workload.TDPScenario(plat, 4, workload.MultiThread, 0.6)
	s50, _ := workload.TDPScenario(plat, 50, workload.MultiThread, 0.6)
	n4 := ModeSwitchNoise(s4, p, false)
	n50 := ModeSwitchNoise(s50, p, false)
	if !(n50.Excursion > n4.Excursion) {
		t.Errorf("droop should grow with load: %.2fmV (4W) vs %.2fmV (50W)",
			n4.Excursion*1e3, n50.Excursion*1e3)
	}
}

func TestIdleScenarioNoise(t *testing.T) {
	// With no compute load at all the droop is the leakage floor.
	plat := domain.NewClientPlatform()
	s := workload.CStateScenario(plat, domain.C8)
	n := ModeSwitchNoise(s, DefaultNoiseParams(), false)
	if n.Emergency {
		t.Errorf("idle switch should not be an emergency, droop %.3fmV", n.Excursion*1e3)
	}
}
