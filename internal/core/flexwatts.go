// Package core implements FlexWatts, the paper's contribution (§6): a
// power- and workload-aware hybrid adaptive PDN.
//
// FlexWatts rests on three ideas:
//
//  1. The wide-power-range compute domains (cores, LLC, GFX) sit behind
//     hybrid VRs that share the IVR's high-side power switch, decoupling
//     capacitors, routing, and the off-chip V_IN VR between an IVR-Mode
//     (two-stage, V_IN at 1.8 V) and an LDO-Mode (V_IN at the maximum
//     compute voltage, on-chip LDOs regulating down or bypassing).
//  2. The narrow-power-range SA and IO domains get dedicated off-chip VRs,
//     as in the LDO PDN.
//  3. A runtime prediction algorithm (Algorithm 1, predictor.go) selects
//     the mode with the higher predicted ETEE from firmware curve tables,
//     and a voltage-noise-free switching flow (switchflow.go) carries out
//     the transition through package C6.
//
// The resource sharing costs a slightly higher input load-line in both
// modes (Params.FlexSharePenalty), which is why FlexWatts trails the best
// static PDN by under 1 % while beating the worst by 20 %+.
package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/domain"
	"repro/internal/pdn"
	"repro/internal/units"
	"repro/internal/vr"
)

// Mode is the hybrid PDN's operating mode (§6).
type Mode int

// The two modes of the hybrid VR.
const (
	// IVRMode runs the compute domains' hybrid VRs as integrated switching
	// regulators from a 1.8 V input rail — efficient at high power.
	IVRMode Mode = iota
	// LDOMode runs them as LDOs (or bypass switches) from an input rail at
	// the maximum compute voltage — efficient at low power.
	LDOMode
)

// Modes lists both modes.
func Modes() []Mode { return []Mode{IVRMode, LDOMode} }

// String names the mode as in the paper.
func (m Mode) String() string {
	switch m {
	case IVRMode:
		return "IVR-Mode"
	case LDOMode:
		return "LDO-Mode"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Model is the FlexWatts PDN. It implements pdn.Model; Evaluate uses the
// currently configured mode, while EvaluateMode evaluates a specific one
// (used by the predictor's offline table generation and by oracle
// baselines). The zero mode is IVRMode.
type Model struct {
	params pdn.Params
	ivr    *vr.Buck
	ldo    *vr.LDO
	vin    *vr.Buck
	sa     *vr.Buck
	io     *vr.Buck
	// mode is atomic because sweep workers share one Model: AutoModel
	// records the mode it evaluates, and concurrent evaluations must not
	// race on the field (each evaluation passes its mode explicitly).
	mode atomic.Int32
}

// NewModel constructs a FlexWatts PDN with the given PDNspot parameters.
func NewModel(p pdn.Params) *Model {
	return &Model{
		params: p,
		ivr:    vr.NewIVR("HybridIVR", p.IVRIccmax),
		ldo:    vr.NewPlatformLDO("HybridLDO", p.IVRIccmax),
		vin:    vr.NewVinVR(p.VINIccmax),
		sa:     vr.NewSmallRailVR("V_SA", p.SAIccmax),
		io:     vr.NewSmallRailVR("V_IO", p.IOIccmax),
	}
}

// Kind implements pdn.Model.
func (m *Model) Kind() pdn.Kind { return pdn.FlexWatts }

// Mode returns the currently configured hybrid mode.
func (m *Model) Mode() Mode { return Mode(m.mode.Load()) }

// SetMode configures the hybrid mode. The electrical transition itself is
// modeled by SwitchFlow; SetMode only changes which mode Evaluate uses.
func (m *Model) SetMode(mode Mode) { m.mode.Store(int32(mode)) }

// Evaluate implements pdn.Model using the current mode.
func (m *Model) Evaluate(s pdn.Scenario) (pdn.Result, error) {
	return m.EvaluateMode(s, m.Mode())
}

// EvaluateMode computes the end-to-end power flow with the hybrid VRs in
// the given mode. In both modes the SA and IO domains ride their dedicated
// board VRs; the compute domains go through the shared V_IN rail whose
// load-line is the corresponding static PDN's times the sharing penalty.
func (m *Model) EvaluateMode(s pdn.Scenario, mode Mode) (pdn.Result, error) {
	if err := pdn.Validate(&s); err != nil {
		return pdn.Result{}, err
	}
	p := m.params
	compute := []pdn.Load{
		s.Loads[domain.Core0], s.Loads[domain.Core1],
		s.Loads[domain.LLC], s.Loads[domain.GFX],
	}

	var st pdn.StageOut
	var vinLevel units.Volt
	var rll units.Ohm
	switch mode {
	case IVRMode:
		vinLevel = p.VINLevel
		st = pdn.IVRStage(compute, m.ivr, p.TOBIVR, vinLevel, s.CState)
		rll = p.IVRInLL * p.FlexSharePenalty
	case LDOMode:
		vinLevel, st = pdn.LDOStage(compute, m.ldo, p.TOBLDO)
		rll = p.LDOInLL * p.FlexSharePenalty
	default:
		return pdn.Result{}, fmt.Errorf("core: unknown mode %v", mode)
	}

	var pin units.Watt
	var bd pdn.Breakdown
	var rails pdn.RailSet
	if st.PIn > 0 {
		rail := pdn.VinRail(m.vin, st, vinLevel, rll, s.PSU, s.CState, 1)
		pin += rail.PIn
		bd.Add(st.Breakdown)
		bd.Add(rail.Breakdown)
		rails.Append(rail.Rail)
	}
	saOut := pdn.BoardRail(m.sa, []pdn.Load{s.Loads[domain.SA]}, p.TOBLDO, p.RPG, p.SALL, s.PSU, s.CState, false)
	ioOut := pdn.BoardRail(m.io, []pdn.Load{s.Loads[domain.IO]}, p.TOBLDO, p.RPG, p.IOLL, s.PSU, s.CState, false)
	pin += saOut.PIn + ioOut.PIn
	bd.Add(saOut.Breakdown)
	bd.Add(ioOut.Breakdown)
	rails.Append(saOut.Rail)
	rails.Append(ioOut.Rail)

	return pdn.Finish(pdn.FlexWatts, s.TotalNominal(), pin, bd, rails, rll), nil
}

// BestMode evaluates both modes on the scenario and returns the one with
// the higher ETEE together with both results. This is the oracle selection
// used to bound the predictor's quality in the ablation benches.
func (m *Model) BestMode(s pdn.Scenario) (Mode, pdn.Result, pdn.Result, error) {
	ri, err := m.EvaluateMode(s, IVRMode)
	if err != nil {
		return IVRMode, pdn.Result{}, pdn.Result{}, err
	}
	rl, err := m.EvaluateMode(s, LDOMode)
	if err != nil {
		return IVRMode, pdn.Result{}, pdn.Result{}, err
	}
	if ri.ETEE >= rl.ETEE {
		return IVRMode, ri, rl, nil
	}
	return LDOMode, ri, rl, nil
}
