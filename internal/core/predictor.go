package core

import (
	"fmt"

	"repro/internal/curves"
	"repro/internal/domain"
	"repro/internal/units"
	"repro/internal/workload"
)

// Predictor implements the paper's Algorithm 1: it stores two sets of ETEE
// curves in (modeled) PMU firmware — one per hybrid mode — and at every
// evaluation interval picks the mode whose predicted ETEE is higher for the
// current (TDP, AR, workload type, power state).
//
// A curve set is a multidimensional table: for each workload type a 2-D
// surface ETEE(AR, TDP), plus one curve over package power states for the
// battery-life conditions (Fig 4(j)). The tables are generated offline by
// evaluating the FlexWatts model itself in each mode over a grid — exactly
// how a vendor would characterize the curves pre-silicon and burn them into
// PMU firmware (§6: "A modern PMU implements multiple curves (as tables)").
type Predictor struct {
	ivrSurf map[workload.Type]*curves.Table2D // ETEE(AR, TDP) in IVR-Mode
	ldoSurf map[workload.Type]*curves.Table2D // ETEE(AR, TDP) in LDO-Mode
	ivrIdle map[domain.CState]float64
	ldoIdle map[domain.CState]float64
}

// PredictorConfig controls the firmware table resolution. Coarser grids are
// cheaper to store but predict less accurately (ablated by
// BenchmarkAblationTableRes).
type PredictorConfig struct {
	// TDPGrid lists the TDP axis points (watts). Defaults to the seven
	// design points of Fig 2/8.
	TDPGrid []units.Watt
	// ARPoints is the number of AR samples in [0.2, 1.0]. Defaults to 9.
	ARPoints int
}

// DefaultPredictorConfig returns the configuration used in the evaluation.
func DefaultPredictorConfig() PredictorConfig {
	return PredictorConfig{TDPGrid: workload.StandardTDPs(), ARPoints: 9}
}

// NewPredictor characterizes the given FlexWatts model over the
// configuration grid and returns the firmware predictor.
func NewPredictor(plat *domain.Platform, m *Model, cfg PredictorConfig) (*Predictor, error) {
	if len(cfg.TDPGrid) < 2 {
		return nil, fmt.Errorf("core: predictor needs >= 2 TDP grid points")
	}
	if cfg.ARPoints < 2 {
		return nil, fmt.Errorf("core: predictor needs >= 2 AR points")
	}
	arGrid := make([]float64, cfg.ARPoints)
	for i := range arGrid {
		arGrid[i] = 0.2 + 0.8*float64(i)/float64(cfg.ARPoints-1)
	}
	tdpGrid := make([]float64, len(cfg.TDPGrid))
	copy(tdpGrid, cfg.TDPGrid)

	p := &Predictor{
		ivrSurf: make(map[workload.Type]*curves.Table2D),
		ldoSurf: make(map[workload.Type]*curves.Table2D),
		ivrIdle: make(map[domain.CState]float64),
		ldoIdle: make(map[domain.CState]float64),
	}
	for _, t := range workload.Types() {
		surf := func(mode Mode) (*curves.Table2D, error) {
			zs := make([][]float64, len(tdpGrid))
			for ti, tdp := range tdpGrid {
				row := make([]float64, len(arGrid))
				for ai, ar := range arGrid {
					s, err := workload.TDPScenario(plat, tdp, t, ar)
					if err != nil {
						return nil, err
					}
					r, err := m.EvaluateMode(s, mode)
					if err != nil {
						return nil, err
					}
					row[ai] = r.ETEE
				}
				zs[ti] = row
			}
			return curves.NewTable2D(arGrid, tdpGrid, zs)
		}
		var err error
		if p.ivrSurf[t], err = surf(IVRMode); err != nil {
			return nil, fmt.Errorf("core: characterizing %v IVR-Mode: %w", t, err)
		}
		if p.ldoSurf[t], err = surf(LDOMode); err != nil {
			return nil, fmt.Errorf("core: characterizing %v LDO-Mode: %w", t, err)
		}
	}
	for _, c := range domain.CStates() {
		if c == domain.C0 {
			continue
		}
		s := workload.CStateScenario(plat, c)
		ri, err := m.EvaluateMode(s, IVRMode)
		if err != nil {
			return nil, err
		}
		rl, err := m.EvaluateMode(s, LDOMode)
		if err != nil {
			return nil, err
		}
		p.ivrIdle[c] = ri.ETEE
		p.ldoIdle[c] = rl.ETEE
	}
	return p, nil
}

// Inputs are the runtime estimates Algorithm 1 consumes, produced by the
// PMU: the configured TDP (cTDP is runtime-visible), the activity-sensor AR
// proxy, the workload type inferred from domain power states, and the
// package power state.
type Inputs struct {
	TDP    units.Watt
	AR     float64
	Type   workload.Type
	CState domain.CState
}

// ETEE returns the predicted ETEE for a mode at the given inputs.
func (p *Predictor) ETEE(mode Mode, in Inputs) float64 {
	if in.CState != domain.C0 {
		// Battery-life curve: one entry per package state (Fig 4(j)).
		if mode == IVRMode {
			return p.ivrIdle[in.CState]
		}
		return p.ldoIdle[in.CState]
	}
	t := in.Type
	if t == workload.BatteryLife {
		t = workload.SingleThread
	}
	var surf *curves.Table2D
	if mode == IVRMode {
		surf = p.ivrSurf[t]
	} else {
		surf = p.ldoSurf[t]
	}
	return surf.At(in.AR, in.TDP)
}

// Predict implements Algorithm 1: it returns the mode with the higher
// predicted ETEE (IVR-Mode on ties, matching the algorithm's >= test).
func (p *Predictor) Predict(in Inputs) Mode {
	if p.ETEE(IVRMode, in) >= p.ETEE(LDOMode, in) {
		return IVRMode
	}
	return LDOMode
}
